package fetcher

import (
	"context"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
	"whowas/internal/scanner"
	"whowas/internal/store"
)

func TestSameSitePaths(t *testing.T) {
	body := `<a href="http://shop.example/about">About</a>
<a href="http://shop.example/contact">Contact</a>
<a href="http://shop.example/">Home</a>
<a href="http://shop.example/about">About again</a>
<script src="http://www.google-analytics.com/ga.js"></script>
<a href="http://platform.twitter.com/widgets.js">tw</a>`
	got := SameSitePaths(body, 10)
	want := []string{"/about", "/contact"}
	if len(got) != len(want) {
		t.Fatalf("SameSitePaths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Cap respected.
	if capped := SameSitePaths(body, 1); len(capped) != 1 {
		t.Errorf("capped = %v", capped)
	}
	if empty := SameSitePaths("", 5); empty != nil {
		t.Errorf("empty body paths = %v", empty)
	}
}

func TestFollowLinksFetchesSubpages(t *testing.T) {
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(1024, 52))
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(net, Config{Workers: 2, Timeout: 5 * time.Second, FollowLinks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Find a healthy 200 HTML page with subpages.
	var ip ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if !(st.Bound && st.Web && !st.Slow && !st.HTTPFail && !st.Down && st.Ports == cloudsim.HTTPBoth) {
			return true
		}
		prof, _, ok := cloud.PageOn(0, a)
		if ok && !prof.RobotsDeny && len(prof.SubpagePaths()) > 0 {
			ip, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no crawlable page in sample")
	}
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP})
	if page.Err != nil || page.Status != 200 {
		t.Fatalf("fetch: status=%d err=%v", page.Status, page.Err)
	}
	if len(page.SubPages) == 0 {
		t.Fatal("no subpages followed")
	}
	okCount := 0
	for _, sub := range page.SubPages {
		if sub.Status == 200 && len(sub.Body) > 0 {
			okCount++
		}
	}
	if okCount == 0 {
		t.Errorf("no subpage returned content: %+v", page.SubPages)
	}
}

func TestFollowLinksOffByDefault(t *testing.T) {
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(1024, 53))
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(net, Config{Workers: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var ip ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Web && !st.Slow && !st.HTTPFail && !st.Down && st.Ports == cloudsim.HTTPBoth {
			ip, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no web IP")
	}
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP})
	if len(page.SubPages) != 0 {
		t.Errorf("paper-default fetch followed %d links", len(page.SubPages))
	}
}
