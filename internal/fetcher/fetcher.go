// Package fetcher implements WhoWas's webpage fetcher (§4): a worker
// pool that, for each IP the scanner reports with an open web port,
// fetches robots.txt, honors a top-level disallow, and then issues at
// most one GET for the root URL. The URL scheme is "http://" when port
// 80 answered and "https://" when only 443 did.
//
// Per the paper's ethics stance (§7), the User-Agent identifies the
// measurement as research and carries a contact address; at most two
// GETs are made per IP per round; and only textual content is stored,
// truncated to 512 KB.
package fetcher

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"net/url"

	"whowas/internal/htmlparse"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/netsim"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// DefaultUserAgent is the research-identifying UA string (§7).
const DefaultUserAgent = "WhoWas-Research-Scanner/1.0 (measurement study; contact: whowas@example.edu; opt-out honored)"

// MaxBodyBytes caps stored content at 512 KB (§4).
const MaxBodyBytes = 512 * 1024

// Config tunes the fetcher. Zero fields take the paper's defaults
// (250 workers, 10 s HTTP timeout).
type Config struct {
	Workers int
	Timeout time.Duration
	MaxBody int
	// UserAgent identifies the fetcher. Per the §7 ethics stance it
	// must name the measurement as research and carry a contact
	// address that honors opt-outs; the empty string resolves to
	// DefaultUserAgent, which does. Callers overriding it must keep
	// those properties.
	UserAgent string
	// Attempts is the maximum tries per GET. Transient transport
	// errors — timeouts, mid-stream resets, truncated responses — are
	// retried with a fresh per-attempt deadline of Timeout; refusals
	// (a definitive answer from the instance) and cancellations are
	// not. Default 1, the paper's single-shot exchange.
	Attempts int
	// RetryBackoff is the delay before the first retry, doubling on
	// each further attempt. Default 100ms when Attempts > 1.
	RetryBackoff time.Duration
	// DisableKeepAlives turns off connection reuse across the GETs of
	// one exchange. Determinism-sensitive chaos campaigns set it: the
	// transport returns idle connections to its pool asynchronously,
	// so whether the next GET reuses or redials is a race — with reuse
	// off, every GET is exactly one dial and the fault layer's
	// per-attempt decisions replay identically run to run.
	DisableKeepAlives bool
	// FollowLinks enables the §9 future-work extension: after the
	// top-level GET of a 200 HTML page, follow up to this many
	// same-site links (fetched by path on the same IP). 0 preserves
	// the paper's behaviour — "the fetcher does not follow links".
	FollowLinks int
	// Metrics, when non-nil, receives the fetcher's instrumentation:
	// the fetcher.* counters and the get/fetch latency histograms.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records sampled per-IP "get" spans
	// (attributes: ip, region, prefix, scheme, status, robots_denied,
	// error) as children of the span carried by the fetch context; the
	// fault layer annotates them with the faults it injects into their
	// dials. The per-IP sampling decision is the tracer's, shared with
	// the scanner, so one IP's probe and GET spans appear together.
	Tracer *trace.Tracer
	// RegionOf labels sampled GET spans with the target's cloud
	// region; nil omits the attribute.
	RegionOf func(ipaddr.Addr) string
}

// DefaultWorkers is the resolved worker-pool size when Config.Workers
// is zero: scaled with the hardware (64 workers per scheduler core —
// fetches spend their time blocked on the network) and floored at the
// paper's 250.
func DefaultWorkers() int {
	w := 64 * runtime.GOMAXPROCS(0)
	if w < 250 {
		w = 250
	}
	return w
}

// WithDefaults returns the config with zero fields resolved to the
// paper's defaults (DefaultWorkers workers, 10 s timeout, 512 KB body
// cap, the research UA). New applies it internally; it is exported so
// callers and tests can observe the resolved values instead of
// re-stating them.
func (c Config) WithDefaults() Config {
	out := c
	if out.Workers <= 0 {
		out.Workers = DefaultWorkers()
	}
	if out.Timeout <= 0 {
		out.Timeout = 10 * time.Second
	}
	if out.MaxBody <= 0 {
		out.MaxBody = MaxBodyBytes
	}
	if out.UserAgent == "" {
		out.UserAgent = DefaultUserAgent
	}
	if out.Attempts <= 0 {
		out.Attempts = 1
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 100 * time.Millisecond
	}
	return out
}

// SubPage is one followed link's outcome (FollowLinks > 0).
type SubPage struct {
	Path   string
	Status int
	Body   []byte
}

// Page is the outcome of fetching one IP in one round.
type Page struct {
	IP           ipaddr.Addr
	OpenPorts    uint8 // copied from the scan result
	Scheme       string
	Status       int // 0 when no HTTP response was obtained
	Header       http.Header
	ContentType  string
	Body         []byte    // truncated, textual content only
	BodySkipped  bool      // non-text content: headers kept, body not downloaded
	RobotsDenied bool      // robots.txt disallows "/": no page GET was made
	SubPages     []SubPage // followed links, when the extension is enabled
	Err          error     // transport-level failure, nil on any HTTP response
}

// Available mirrors the paper's availability definition: the HTTP(S)
// request for the root URL succeeded.
func (p *Page) Available() bool { return p.Status != 0 }

// Fetcher fetches pages through a Dialer.
type Fetcher struct {
	cfg       Config
	client    *http.Client
	transport *http.Transport

	// Instrumentation handles; all nil (no-op) without a registry.
	mGets         *metrics.Counter   // HTTP GETs issued (robots + pages)
	mRobotsDenied *metrics.Counter   // IPs whose robots.txt disallowed "/"
	mErrors       *metrics.Counter   // transport-level failures
	mRetries      *metrics.Counter   // GETs retried after transient errors
	mBodyBytes    *metrics.Counter   // body bytes downloaded (post-truncation)
	mPages        *metrics.Counter   // per-IP exchanges completed
	mGetLat       *metrics.Histogram // per-GET latency
	mFetchLat     *metrics.Histogram // per-IP exchange latency
}

// CloseIdle drops pooled keep-alive connections. The platform calls it
// between rounds: rounds are days apart, and no real server keeps a
// connection open that long — without this, a pooled connection could
// observe a dead IP as still serving.
func (f *Fetcher) CloseIdle() { f.transport.CloseIdleConnections() }

// New builds a fetcher over the given dialer.
func New(dialer netsim.Dialer, cfg Config) (*Fetcher, error) {
	if dialer == nil {
		return nil, fmt.Errorf("fetcher: nil dialer")
	}
	c := cfg.WithDefaults()
	transport := &http.Transport{
		DialContext:         dialer.DialContext,
		TLSClientConfig:     &tls.Config{InsecureSkipVerify: true}, // cloud IPs serve self-signed certs
		MaxIdleConnsPerHost: 1,
		DisableCompression:  true,
		DisableKeepAlives:   c.DisableKeepAlives,
	}
	f := &Fetcher{
		cfg:       c,
		transport: transport,
		client: &http.Client{
			Transport: transport,
			Timeout:   c.Timeout,
			// The paper's fetcher does not follow links or redirects
			// off the measured IP.
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
	if r := c.Metrics; r != nil {
		f.mGets = r.Counter("fetcher.gets")
		f.mRobotsDenied = r.Counter("fetcher.robots_denied")
		f.mErrors = r.Counter("fetcher.transport_errors")
		f.mRetries = r.Counter("fetcher.retries")
		f.mBodyBytes = r.Counter("fetcher.body_bytes")
		f.mPages = r.Counter("fetcher.pages")
		f.mGetLat = r.Histogram("fetcher.get_latency")
		f.mFetchLat = r.Histogram("fetcher.fetch_latency")
	}
	return f, nil
}

// textualType reports whether a content type's body is stored. The
// paper forgoes application/*, audio/*, image/* and video/* content,
// with the structured-text exceptions that appear in its Table 5.
func textualType(ctype string) bool {
	ct := strings.ToLower(strings.TrimSpace(strings.SplitN(ctype, ";", 2)[0]))
	if strings.HasPrefix(ct, "text/") {
		return true
	}
	switch ct {
	case "application/json", "application/xml", "application/xhtml+xml":
		return true
	}
	return false
}

// get performs one GET, recording status/headers and, for textual
// types, the truncated body.
func (f *Fetcher) get(ctx context.Context, url string) (*Page, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("User-Agent", f.cfg.UserAgent)
	f.mGets.Inc()
	var start time.Time
	if f.mGetLat != nil {
		start = time.Now()
	}
	resp, err := f.client.Do(req)
	if f.mGetLat != nil {
		f.mGetLat.Observe(time.Since(start))
	}
	if err != nil {
		f.mErrors.Inc()
		return nil, err
	}
	defer resp.Body.Close()
	page := &Page{
		Status:      resp.StatusCode,
		Header:      resp.Header,
		ContentType: resp.Header.Get("Content-Type"),
	}
	if textualType(page.ContentType) {
		// A read error mid-body keeps what arrived; the response
		// itself succeeded.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, int64(f.cfg.MaxBody)))
		page.Body = body
		f.mBodyBytes.Add(int64(len(body)))
	} else {
		page.BodySkipped = true
	}
	return page, nil
}

// IsTransient reports whether a transport error is worth retrying:
// timeouts (dropped SYNs, stalled reads), mid-stream resets, and
// truncated responses are; refusals — a definitive answer from the
// instance — and cancellations are not.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// Walk the whole chain rather than stopping at the first net.Error:
	// the HTTP transport wraps a mid-stream reset as
	// url.Error > transport error > net.Error, and the outer url.Error
	// reports Timeout/Temporary false without consulting the cause.
	for e := err; e != nil; e = errors.Unwrap(e) {
		if ne, ok := e.(net.Error); ok && (ne.Timeout() || ne.Temporary()) { //nolint:staticcheck // simulated errors define Temporary meaningfully
			return true
		}
	}
	// Transport errors that flatten the cause into the message.
	return strings.Contains(err.Error(), "connection reset")
}

// sleepCtx sleeps for d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// getRetry runs the bounded retry schedule for one URL: up to
// Config.Attempts GETs, each under its own Timeout deadline, retrying
// only transient transport errors with exponential backoff.
func (f *Fetcher) getRetry(ctx context.Context, url string) (*Page, error) {
	var page *Page
	var err error
	for attempt := 0; attempt < f.cfg.Attempts; attempt++ {
		if attempt > 0 {
			f.mRetries.Inc()
			if serr := sleepCtx(ctx, f.cfg.RetryBackoff<<uint(attempt-1)); serr != nil {
				return nil, err
			}
		}
		actx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
		page, err = f.get(actx, url)
		cancel()
		if err == nil {
			return page, nil
		}
		if !IsTransient(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, err
}

// startGetSpan opens the sampled per-IP exchange span, or nil when
// the IP is unsampled (or tracing is off). The span parents to the
// round's fetch span carried by ctx.
func (f *Fetcher) startGetSpan(ctx context.Context, ip ipaddr.Addr) *trace.Span {
	if !f.cfg.Tracer.SampleIP(uint64(ip)) {
		return nil
	}
	attrs := []trace.Attr{
		trace.String("ip", ip.String()),
		trace.String("prefix", ip.Prefix22().String()),
	}
	if f.cfg.RegionOf != nil {
		attrs = append(attrs, trace.String("region", f.cfg.RegionOf(ip)))
	}
	return f.cfg.Tracer.Start("get", trace.FromContext(ctx), attrs...)
}

// errClass compresses a transport error into a span attribute value.
func errClass(err error) string {
	switch {
	case scanner.IsTimeout(err):
		return "timeout"
	case IsTransient(err):
		return "transient"
	default:
		return "error"
	}
}

// FetchIP runs the §4 exchange for one responsive IP: robots.txt
// first, then at most one GET for "/". With Config.Attempts > 1 each
// GET gets the bounded retry schedule; "at most one GET" still holds
// in the §7 sense — one successful page exchange per IP per round.
// Sampled IPs get a "get" span wrapping the exchange; the fault
// injector sees it through the request contexts and annotates the
// faults it injects.
func (f *Fetcher) FetchIP(ctx context.Context, res scanner.Result) Page {
	sp := f.startGetSpan(ctx, res.IP)
	if sp != nil {
		ctx = trace.NewContext(ctx, sp)
	}
	page := f.fetchIP(ctx, res)
	if sp != nil {
		sp.SetAttr(
			trace.String("scheme", page.Scheme),
			trace.Int("status", page.Status),
			trace.Bool("robots_denied", page.RobotsDenied),
		)
		if page.Err != nil {
			sp.SetAttr(trace.String("error", errClass(page.Err)))
		}
		sp.End()
	}
	return page
}

func (f *Fetcher) fetchIP(ctx context.Context, res scanner.Result) Page {
	if f.mFetchLat != nil {
		start := time.Now()
		defer func() { f.mFetchLat.Observe(time.Since(start)) }()
	}
	f.mPages.Inc()
	scheme := "http"
	if res.OpenPorts&store.PortHTTP == 0 {
		scheme = "https"
	}
	out := Page{IP: res.IP, OpenPorts: res.OpenPorts, Scheme: scheme}
	base := fmt.Sprintf("%s://%s", scheme, res.IP)

	robots, err := f.getRetry(ctx, base+"/robots.txt")
	if err == nil && robots.Status == 200 && len(robots.Body) > 0 {
		if RobotsDisallowsRoot(string(robots.Body), f.cfg.UserAgent) {
			out.RobotsDenied = true
			f.mRobotsDenied.Inc()
			return out
		}
	}

	page, err := f.getRetry(ctx, base+"/")
	if err != nil {
		out.Err = err
		return out
	}
	out.Status = page.Status
	out.Header = page.Header
	out.ContentType = page.ContentType
	out.Body = page.Body
	out.BodySkipped = page.BodySkipped

	// §9 extension: follow same-site links from the front page.
	if f.cfg.FollowLinks > 0 && out.Status == 200 && len(out.Body) > 0 &&
		strings.HasPrefix(strings.ToLower(out.ContentType), "text/html") {
		for _, path := range SameSitePaths(string(out.Body), f.cfg.FollowLinks) {
			sub, err := f.getRetry(ctx, base+path)
			if err != nil {
				continue
			}
			out.SubPages = append(out.SubPages, SubPage{Path: path, Status: sub.Status, Body: sub.Body})
		}
	}
	return out
}

// SameSitePaths extracts up to max distinct link paths from page
// markup, dropping the root, fragments, and off-page artifacts. Links
// to the site's own domain are followed by path on the measured IP —
// WhoWas visits by address, not by name.
func SameSitePaths(body string, max int) []string {
	var out []string
	seen := map[string]bool{}
	for _, u := range htmlparse.Parse(body).Links {
		parsed, err := url.Parse(u)
		if err != nil || parsed.Path == "" || parsed.Path == "/" {
			continue
		}
		// Skip links that are clearly third-party assets (tracker
		// scripts and CDNs live on well-known hosts, not the site).
		if strings.Contains(parsed.Host, "google-analytics") ||
			strings.Contains(parsed.Host, "facebook") ||
			strings.Contains(parsed.Host, "twitter") ||
			strings.Contains(parsed.Host, "doubleclick") {
			continue
		}
		p := parsed.Path
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
		if len(out) >= max {
			break
		}
	}
	return out
}

// Exchange runs one scan result through the §4 exchange and is the
// unit of work a pipeline fetch stage performs per item: SSH-only IPs
// pass straight through as bare responsive pages (nothing to fetch,
// but the record of the responsive IP still flows downstream), web IPs
// go through FetchIP.
func (f *Fetcher) Exchange(ctx context.Context, res scanner.Result) Page {
	if res.OpenPorts&(store.PortHTTP|store.PortHTTPS) == 0 {
		return Page{IP: res.IP, OpenPorts: res.OpenPorts}
	}
	return f.FetchIP(ctx, res)
}

// Run consumes scan results and produces Pages with the configured
// worker pool, closing out when in is exhausted.
func (f *Fetcher) Run(ctx context.Context, in <-chan scanner.Result, out chan<- Page) {
	var wg sync.WaitGroup
	for w := 0; w < f.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for res := range in {
				page := f.Exchange(ctx, res)
				select {
				case out <- page:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
}

// RobotsDisallowsRoot parses a robots.txt body and reports whether the
// root path is disallowed for the given user agent (matching the
// agent's product token or the wildcard group). Only a "Disallow: /"
// rule blocks the top-level fetch, which is the exclusion the paper
// honors.
func RobotsDisallowsRoot(body, userAgent string) bool {
	token := strings.ToLower(strings.SplitN(userAgent, "/", 2)[0])
	var inWildcard, inOurs bool
	denyWildcard, denyOurs := false, false
	sawAnyGroup := false
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		switch field {
		case "user-agent":
			v := strings.ToLower(value)
			// A new group starts; reset membership when we had already
			// collected rules for the previous group run.
			if sawAnyGroup {
				inWildcard, inOurs = false, false
				sawAnyGroup = false
			}
			if v == "*" {
				inWildcard = true
			}
			if v != "*" && strings.Contains(token, v) {
				inOurs = true
			}
		case "disallow":
			sawAnyGroup = true
			if value == "/" {
				if inWildcard {
					denyWildcard = true
				}
				if inOurs {
					denyOurs = true
				}
			}
		case "allow":
			sawAnyGroup = true
			if value == "/" {
				if inOurs {
					return false
				}
				if inWildcard {
					denyWildcard = false
				}
			}
		}
	}
	if denyOurs {
		return true
	}
	return denyWildcard
}
