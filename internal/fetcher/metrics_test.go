package fetcher

import (
	"context"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/metrics"
	"whowas/internal/scanner"
	"whowas/internal/store"
)

func TestWithDefaults(t *testing.T) {
	got := Config{}.WithDefaults()
	if got.Workers != 250 || got.Timeout != 10*time.Second || got.MaxBody != MaxBodyBytes {
		t.Errorf("resolved defaults = %+v", got)
	}
	if got.UserAgent != DefaultUserAgent {
		t.Errorf("default UA = %q", got.UserAgent)
	}
	custom := Config{Workers: 5, UserAgent: "Custom-Research/1.0 (contact: x@example.org)"}.WithDefaults()
	if custom.Workers != 5 || custom.UserAgent == DefaultUserAgent {
		t.Errorf("custom config clobbered: %+v", custom)
	}
	base := Config{}
	_ = base.WithDefaults()
	if base.Workers != 0 {
		t.Error("WithDefaults mutated its receiver")
	}
}

func TestFetcherMetrics(t *testing.T) {
	cloud, net, _ := testSetup(t)
	reg := metrics.NewRegistry()
	f, err := New(net, Config{Workers: 8, Timeout: 5 * time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ip := findIP(t, cloud, webPred(cloudsim.HTTPBoth))
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP | store.PortHTTPS})
	if page.Err != nil {
		t.Fatalf("fetch failed: %v", page.Err)
	}
	snap := reg.Snapshot()
	// robots.txt + page GET.
	if got := snap.Counters["fetcher.gets"]; got < 1 || got > 2 {
		t.Errorf("fetcher.gets = %d, want 1-2", got)
	}
	if snap.Counters["fetcher.pages"] != 1 {
		t.Errorf("fetcher.pages = %d", snap.Counters["fetcher.pages"])
	}
	if page.Status == 200 && len(page.Body) > 0 && snap.Counters["fetcher.body_bytes"] <= 0 {
		t.Errorf("fetcher.body_bytes = %d with %d-byte body", snap.Counters["fetcher.body_bytes"], len(page.Body))
	}
	if snap.Histograms["fetcher.fetch_latency"].Count != 1 {
		t.Errorf("fetch_latency count = %d", snap.Histograms["fetcher.fetch_latency"].Count)
	}
	if gl := snap.Histograms["fetcher.get_latency"]; gl.Count != snap.Counters["fetcher.gets"] {
		t.Errorf("get_latency count %d != gets %d", gl.Count, snap.Counters["fetcher.gets"])
	}
}

func TestFetcherMetricsTransportError(t *testing.T) {
	cloud, net, _ := testSetup(t)
	reg := metrics.NewRegistry()
	f, err := New(net, Config{Workers: 8, Timeout: 2 * time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// An unbound IP refuses every connection: both GETs fail.
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return !s.Bound })
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP})
	if page.Err == nil {
		t.Fatal("fetch of unbound IP succeeded")
	}
	snap := reg.Snapshot()
	if snap.Counters["fetcher.transport_errors"] < 1 {
		t.Errorf("fetcher.transport_errors = %d", snap.Counters["fetcher.transport_errors"])
	}
}
