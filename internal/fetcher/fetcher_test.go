package fetcher

import (
	"context"
	"fmt"
	"io"
	"net/url"
	"strings"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/faults"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/netsim"
	"whowas/internal/scanner"
	"whowas/internal/store"
)

func testSetup(t testing.TB) (*cloudsim.Cloud, *netsim.Network, *Fetcher) {
	t.Helper()
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(1024, 51))
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(net, Config{Workers: 32, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return cloud, net, f
}

func findIP(t testing.TB, cloud *cloudsim.Cloud, pred func(cloudsim.IPState) bool) ipaddr.Addr {
	t.Helper()
	var out ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		if pred(cloud.StateAt(0, a)) {
			out, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no IP matches predicate in sample cloud")
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil dialer accepted")
	}
	_, net, _ := testSetup(t)
	f, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.Workers != DefaultWorkers() || f.cfg.Timeout != 10*time.Second || f.cfg.MaxBody != MaxBodyBytes {
		t.Errorf("defaults = %+v", f.cfg)
	}
	// The hardware-scaled pool never shrinks below the paper's 250.
	if DefaultWorkers() < 250 {
		t.Errorf("DefaultWorkers() = %d, want >= 250", DefaultWorkers())
	}
	if !strings.Contains(f.cfg.UserAgent, "contact:") {
		t.Error("default User-Agent lacks contact note (§7)")
	}
}

func webPred(port cloudsim.PortProfile) func(cloudsim.IPState) bool {
	return func(s cloudsim.IPState) bool {
		return s.Bound && s.Web && s.Ports == port && !s.Slow && !s.HTTPFail && !s.Down
	}
}

func TestFetchHTTPPage(t *testing.T) {
	cloud, _, f := testSetup(t)
	ip := findIP(t, cloud, webPred(cloudsim.HTTPBoth))
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP | store.PortHTTPS})
	prof, rev, ok := cloud.PageOn(0, ip)
	if !ok {
		t.Fatal("ground truth has no page")
	}
	if page.Scheme != "http" {
		t.Errorf("scheme = %q, want http (port 80 open)", page.Scheme)
	}
	if page.RobotsDenied != prof.RobotsDeny {
		t.Errorf("RobotsDenied = %v, ground truth %v", page.RobotsDenied, prof.RobotsDeny)
	}
	if prof.RobotsDeny {
		if page.Status != 0 {
			t.Error("denied page still fetched")
		}
		return
	}
	if page.Status != prof.StatusCode {
		t.Errorf("status = %d, want %d", page.Status, prof.StatusCode)
	}
	wantBody := prof.RenderPage(rev)
	if string(page.Body) != wantBody {
		t.Errorf("body len = %d, want %d", len(page.Body), len(wantBody))
	}
}

func TestFetchHTTPSOnly(t *testing.T) {
	cloud, _, f := testSetup(t)
	ip := findIP(t, cloud, webPred(cloudsim.HTTPSOnly))
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTPS})
	if page.Scheme != "https" {
		t.Fatalf("scheme = %q, want https", page.Scheme)
	}
	if page.Err != nil {
		t.Fatalf("https fetch failed: %v", page.Err)
	}
	if !page.RobotsDenied && page.Status == 0 {
		t.Error("no HTTP response on https-only fetch")
	}
}

func TestFetchFailingIP(t *testing.T) {
	cloud, _, f := testSetup(t)
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool {
		return s.Bound && s.Web && s.HTTPFail && !s.Slow && s.Ports == cloudsim.HTTPBoth
	})
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP})
	// The backend answers 503 (or resets); either way the IP must not
	// look like a healthy 200.
	if page.Status == 200 {
		t.Errorf("failing IP returned 200")
	}
}

func TestBodyTruncation(t *testing.T) {
	cloud, net, _ := testSetup(t)
	f, err := New(net, Config{Workers: 1, Timeout: 5 * time.Second, MaxBody: 64})
	if err != nil {
		t.Fatal(err)
	}
	var ip ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if !(st.Bound && st.Web && !st.Slow && st.Ports == cloudsim.HTTPBoth) {
			return true
		}
		prof, rev, ok := cloud.PageOn(0, a)
		if ok && !prof.RobotsDeny && prof.StatusCode == 200 && len(prof.RenderPage(rev)) > 64 {
			ip, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no suitable IP")
	}
	page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP})
	if len(page.Body) > 64 {
		t.Errorf("body = %d bytes, cap 64", len(page.Body))
	}
}

func TestRunPool(t *testing.T) {
	cloud, _, f := testSetup(t)
	// Feed a batch of mixed results through the pool.
	in := make(chan scanner.Result, 64)
	out := make(chan Page, 64)
	go f.Run(context.Background(), in, out)

	// Producer runs concurrently: filling `in` from the main goroutine
	// before draining `out` would deadlock once both buffers fill.
	want := make(chan int, 1)
	go func() {
		n, count := 0, 0
		cloud.Ranges().Each(func(a ipaddr.Addr) bool {
			st := cloud.StateAt(0, a)
			if !st.Bound || st.Slow {
				return true
			}
			var ports uint8
			switch st.Ports {
			case cloudsim.SSHOnly:
				ports = store.PortSSH
			case cloudsim.HTTPOnly:
				ports = store.PortHTTP
			case cloudsim.HTTPSOnly:
				ports = store.PortHTTPS
			case cloudsim.HTTPBoth:
				ports = store.PortHTTP | store.PortHTTPS
			}
			in <- scanner.Result{IP: a, OpenPorts: ports}
			n++
			count++
			return count < 200
		})
		close(in)
		want <- n
	}()
	got := 0
	sshPages, webPages := 0, 0
	for page := range out {
		got++
		if page.OpenPorts&(store.PortHTTP|store.PortHTTPS) == 0 {
			sshPages++
			if page.Status != 0 {
				t.Error("SSH-only page has HTTP status")
			}
		} else {
			webPages++
		}
	}
	if w := <-want; got != w {
		t.Errorf("pool emitted %d pages, want %d", got, w)
	}
	if sshPages == 0 || webPages == 0 {
		t.Errorf("page mix: ssh=%d web=%d", sshPages, webPages)
	}
}

func TestTextualType(t *testing.T) {
	cases := map[string]bool{
		"text/html":                true,
		"text/html; charset=utf-8": true,
		"TEXT/PLAIN":               true,
		"application/json":         true,
		"application/xml":          true,
		"application/xhtml+xml":    true,
		"application/octet-stream": false,
		"image/png":                false,
		"video/mp4":                false,
		"audio/mpeg":               false,
		"application/pdf":          false,
		"":                         false,
	}
	for in, want := range cases {
		if got := textualType(in); got != want {
			t.Errorf("textualType(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRobotsDisallowsRoot(t *testing.T) {
	ua := DefaultUserAgent
	cases := []struct {
		name, body string
		want       bool
	}{
		{"empty", "", false},
		{"wildcard deny", "User-agent: *\nDisallow: /\n", true},
		{"wildcard deny subpath only", "User-agent: *\nDisallow: /admin/\n", false},
		{"deny other agent", "User-agent: Googlebot\nDisallow: /\n", false},
		{"deny us by name", "User-agent: whowas-research-scanner\nDisallow: /\n", true},
		{"allow overrides for us", "User-agent: whowas-research-scanner\nAllow: /\nUser-agent: *\nDisallow: /\n", false},
		{"comments and case", "# block all\nUSER-AGENT: *\nDISALLOW: /\n", true},
		{"empty disallow allows", "User-agent: *\nDisallow:\n", false},
		{"multiple groups", "User-agent: a\nDisallow: /x\n\nUser-agent: *\nDisallow: /\n", true},
	}
	for _, c := range cases {
		if got := RobotsDisallowsRoot(c.body, ua); got != c.want {
			t.Errorf("%s: RobotsDisallowsRoot = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPageAvailable(t *testing.T) {
	p := Page{}
	if p.Available() {
		t.Error("zero page available")
	}
	p.Status = 404
	if !p.Available() {
		t.Error("404 page not available (any response counts, §4)")
	}
}

func BenchmarkFetchIP(b *testing.B) {
	cloud, _, f := testSetup(b)
	var ip ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Web && !st.Slow && !st.HTTPFail && !st.Down && st.Ports == cloudsim.HTTPBoth {
			ip, found = a, true
			return false
		}
		return true
	})
	if !found {
		b.Skip("no suitable IP")
	}
	res := scanner.Result{IP: ip, OpenPorts: store.PortHTTP | store.PortHTTPS}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FetchIP(context.Background(), res)
	}
}

func TestIsTransient(t *testing.T) {
	timeout := netsim.NewTimeoutError("54.0.0.1:80")
	refused := netsim.NewRefusedError("54.0.0.1:80")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"timeout", timeout, true},
		{"refused", refused, false},
		{"url-wrapped timeout", &url.Error{Op: "Get", URL: "http://x/", Err: timeout}, true},
		{"url-wrapped refusal", &url.Error{Op: "Get", URL: "http://x/", Err: refused}, false},
		{"unexpected EOF", io.ErrUnexpectedEOF, true},
		{"wrapped unexpected EOF", fmt.Errorf("read body: %w", io.ErrUnexpectedEOF), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, true},
		{"plain error", fmt.Errorf("parse failure"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// faultedWebIPs returns up to max clean HTTP web IPs for chaos tests.
func faultedWebIPs(cloud *cloudsim.Cloud, max int) []ipaddr.Addr {
	var out []ipaddr.Addr
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Web && st.Ports == cloudsim.HTTPBoth && !st.Slow && !st.HTTPFail && !st.Down {
			out = append(out, a)
		}
		return len(out) < max
	})
	return out
}

func TestRetriesRecoverResets(t *testing.T) {
	cloud, net, _ := testSetup(t)
	ips := faultedWebIPs(cloud, 40)
	if len(ips) < 20 {
		t.Skip("not enough clean web IPs")
	}
	sc := faults.Scenario{Seed: 23, ResetPerMille: 500, ResetAfterBytes: 32}

	run := func(attempts int) (errs int, retries int64) {
		inj, err := faults.Wrap(net, sc, faults.Options{Day: net.Day})
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		f, err := New(inj, Config{
			Workers: 1, Timeout: 5 * time.Second,
			Attempts: attempts, RetryBackoff: time.Microsecond,
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ip := range ips {
			page := f.FetchIP(context.Background(), scanner.Result{IP: ip, OpenPorts: store.PortHTTP})
			if page.Err != nil {
				errs++
			}
		}
		return errs, reg.Snapshot().Counters["fetcher.retries"]
	}

	errs1, retries1 := run(1)
	errs4, retries4 := run(4)
	if retries1 != 0 {
		t.Errorf("single-attempt fetcher recorded %d retries", retries1)
	}
	if retries4 == 0 {
		t.Error("retrying fetcher recorded zero retries under 50% resets")
	}
	// Half the connections are armed with a reset. A page is lost when
	// the robots conn resets (forcing a fresh dial for the root GET)
	// and that second conn resets too — ~25% single-attempt; retries
	// drive it toward zero.
	if errs1 < len(ips)/8 {
		t.Errorf("single-attempt errors = %d of %d; expected heavy reset loss", errs1, len(ips))
	}
	if errs4 >= errs1 {
		t.Errorf("retries did not reduce errors: %d -> %d", errs1, errs4)
	}
	if float64(errs4) > 0.15*float64(len(ips)) {
		t.Errorf("retried errors = %d of %d, want under 15%%", errs4, len(ips))
	}
}

func TestPerAttemptDeadlineBoundsStalls(t *testing.T) {
	cloud, net, _ := testSetup(t)
	ips := faultedWebIPs(cloud, 1)
	if len(ips) == 0 {
		t.Skip("no clean web IP")
	}
	// Every connection stalls for 5s on its first read; the fetcher's
	// 60ms per-attempt deadline must cut each attempt short so the
	// whole exchange (robots + root, 2 attempts each) stays bounded.
	inj, err := faults.Wrap(net, faults.Scenario{Seed: 7, StallPerMille: 1000, StallMS: 5000}, faults.Options{Day: net.Day})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(inj, Config{
		Workers: 1, Timeout: 60 * time.Millisecond,
		Attempts: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	page := f.FetchIP(context.Background(), scanner.Result{IP: ips[0], OpenPorts: store.PortHTTP})
	elapsed := time.Since(start)
	if page.Err == nil {
		t.Error("fully stalled IP produced a page")
	}
	if !IsTransient(page.Err) {
		t.Errorf("stall error %v not classified transient", page.Err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("stalled exchange took %v; per-attempt deadlines not enforced", elapsed)
	}
}

func TestSameSitePathsEdgeCases(t *testing.T) {
	body := `<html><body>
	<a href="http://site.example/about#team">About</a>
	<a href="http://site.example/#top">Top</a>
	<a href="http://site.example/about">About again</a>
	<a href="http://site.example/">Home</a>
	<a href="https://www.google-analytics.com/collect?v=1">tracker</a>
	<a href="docs/guide#install">relative, not extracted</a>
	<a href="http://site.example/a">A</a>
	<a href="http://site.example/b">B</a>
	<a href="http://site.example/c">C</a>
	</body></html>`
	got := SameSitePaths(body, 10)
	// "/about#team" and "/about" are one path (the fragment is not part
	// of the path), "#top" and "/" resolve to the root and are dropped,
	// the tracker host is skipped, and the relative href never leaves
	// the parser (WhoWas follows absolute links by path, on the IP).
	want := []string{"/about", "/a", "/b", "/c"}
	if len(got) != len(want) {
		t.Fatalf("paths = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, p := range got {
		if strings.Contains(p, "#") {
			t.Errorf("path %q retains fragment", p)
		}
	}
	// The cap truncates, keeping document order.
	if capped := SameSitePaths(body, 2); len(capped) != 2 || capped[0] != "/about" || capped[1] != "/a" {
		t.Errorf("capped paths = %q", capped)
	}
	if got := SameSitePaths("", 5); len(got) != 0 {
		t.Errorf("empty body yielded paths %q", got)
	}
}

func TestRobotsDisallowsRootEdgeCases(t *testing.T) {
	ua := DefaultUserAgent
	cases := []struct {
		name, body string
		want       bool
	}{
		{"whitespace-only body", "  \n\t\n", false},
		{"CRLF line endings", "User-agent: *\r\nDisallow: /\r\n", true},
		{"mixed-case user-agent field", "uSeR-aGeNt: *\nDiSaLlOw: /\n", true},
		{"mixed-case agent value", "User-agent: WHOWAS-RESEARCH-SCANNER\nDisallow: /\n", true},
		{"no trailing newline", "User-agent: *\nDisallow: /", true},
		{"disallow before any group", "Disallow: /\n", false},
		{"rule split by blank line stays in group", "User-agent: *\n\nDisallow: /\n", true},
		{"trailing spaces on values", "User-agent: *   \nDisallow: /   \n", true},
	}
	for _, c := range cases {
		if got := RobotsDisallowsRoot(c.body, ua); got != c.want {
			t.Errorf("%s: RobotsDisallowsRoot = %v, want %v", c.name, got, c.want)
		}
	}
}
