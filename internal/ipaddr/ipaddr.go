// Package ipaddr supplies the IPv4 address-space utilities WhoWas
// needs: parsing provider-advertised CIDR ranges (the EC2/Azure public
// ranges that seed the scanner, §4/§6), prefix aggregation at /22 and
// /24 granularity (Table 2 counts VPC usage by /22; the §4 timeout
// experiment samples per /24), range iteration for task lists, and
// opt-out blacklists.
//
// Addresses are represented as uint32 in host order, which keeps range
// arithmetic and set membership allocation-free across millions of IPs.
package ipaddr

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("ipaddr: %w", err)
	}
	if !a.Is4() {
		return 0, fmt.Errorf("ipaddr: %q is not IPv4", s)
	}
	b := a.As4()
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])), nil
}

// MustParseAddr is ParseAddr, panicking on error; for constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as dotted-quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix24 returns the address's /24 prefix (the low 8 bits cleared).
func (a Addr) Prefix24() Prefix { return Prefix{Addr: a &^ 0xff, Bits: 24} }

// Prefix22 returns the address's /22 prefix.
func (a Addr) Prefix22() Prefix { return Prefix{Addr: a &^ 0x3ff, Bits: 22} }

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Addr Addr // network address (host bits zero)
	Bits int  // prefix length, 0..32
}

// ParsePrefix parses "a.b.c.d/n" CIDR notation and normalizes the
// network address (host bits cleared).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipaddr: prefix %q missing '/'", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	var bits int
	if _, err := fmt.Sscanf(s[slash+1:], "%d", &bits); err != nil || bits < 0 || bits > 32 ||
		fmt.Sprintf("%d", bits) != s[slash+1:] {
		return Prefix{}, fmt.Errorf("ipaddr: prefix %q has bad length", s)
	}
	return Prefix{Addr: addr & Mask(bits), Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix, panicking on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask for a prefix length.
func Mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return 0xffffffff
	}
	return Addr(^uint32(0) << uint(32-bits))
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Contains reports whether a falls inside p.
func (p Prefix) Contains(a Addr) bool { return a&Mask(p.Bits) == p.Addr }

// Size returns the number of addresses in the prefix.
func (p Prefix) Size() uint64 { return uint64(1) << uint(32-p.Bits) }

// First returns the first address of the block.
func (p Prefix) First() Addr { return p.Addr }

// Last returns the last address of the block.
func (p Prefix) Last() Addr { return p.Addr + Addr(p.Size()-1) }

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Addr) || q.Contains(p.Addr)
}

// RangeList is an ordered set of prefixes, e.g. a provider's advertised
// public IP ranges. Prefixes are kept sorted by network address.
type RangeList struct {
	prefixes []Prefix
	total    uint64
}

// NewRangeList builds a range list, rejecting overlapping prefixes
// (provider range files never overlap; an overlap indicates operator
// error and would double-count IPs in every percentage the analyses
// report).
func NewRangeList(prefixes []Prefix) (*RangeList, error) {
	ps := append([]Prefix(nil), prefixes...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Addr < ps[j].Addr })
	var total uint64
	for i, p := range ps {
		if i > 0 && ps[i-1].Overlaps(p) {
			return nil, fmt.Errorf("ipaddr: overlapping prefixes %s and %s", ps[i-1], p)
		}
		total += p.Size()
	}
	return &RangeList{prefixes: ps, total: total}, nil
}

// ParseRangeList parses newline-separated CIDR blocks, ignoring blank
// lines and '#' comments — the format of the provider range files the
// scanner is seeded with.
func ParseRangeList(text string) (*RangeList, error) {
	var ps []Prefix
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		ps = append(ps, p)
	}
	return NewRangeList(ps)
}

// Prefixes returns the sorted prefixes (shared slice; callers must not
// modify).
func (r *RangeList) Prefixes() []Prefix { return r.prefixes }

// Total returns the number of addresses covered.
func (r *RangeList) Total() uint64 { return r.total }

// Contains reports membership via binary search.
func (r *RangeList) Contains(a Addr) bool {
	i := sort.Search(len(r.prefixes), func(i int) bool { return r.prefixes[i].Last() >= a })
	return i < len(r.prefixes) && r.prefixes[i].Contains(a)
}

// Each calls fn for every address in the list, in ascending order,
// stopping early if fn returns false.
func (r *RangeList) Each(fn func(Addr) bool) {
	for _, p := range r.prefixes {
		last := p.Last()
		for a := p.First(); ; a++ {
			if !fn(a) {
				return
			}
			if a == last {
				break
			}
		}
	}
}

// Index returns the ordinal position (0-based) of a within the list's
// address enumeration, or -1 when absent. It is the inverse of AtIndex.
func (r *RangeList) Index(a Addr) int64 {
	var before uint64
	for _, p := range r.prefixes {
		if p.Contains(a) {
			return int64(before + uint64(a-p.First()))
		}
		if p.Addr > a {
			return -1
		}
		before += p.Size()
	}
	return -1
}

// AtIndex returns the idx-th address of the enumeration.
func (r *RangeList) AtIndex(idx int64) (Addr, error) {
	if idx < 0 || uint64(idx) >= r.total {
		return 0, fmt.Errorf("ipaddr: index %d out of range [0,%d)", idx, r.total)
	}
	rem := uint64(idx)
	for _, p := range r.prefixes {
		if rem < p.Size() {
			return p.First() + Addr(rem), nil
		}
		rem -= p.Size()
	}
	panic("ipaddr: unreachable")
}

// GroupBy24 returns the set of /24 prefixes the list covers (each
// covered at least partially), ascending. The §4 timeout experiment
// samples 5% of IPs from each /24.
func (r *RangeList) GroupBy24() []Prefix {
	var out []Prefix
	for _, p := range r.prefixes {
		first := p.First() &^ 0xff
		last := p.Last() &^ 0xff
		for a := first; ; a += 256 {
			out = append(out, Prefix{Addr: a, Bits: 24})
			if a == last {
				break
			}
		}
	}
	return out
}

// Set is a mutable set of addresses, used for the scanner's opt-out
// blacklist (§4: "a blacklist of IP addresses that should not be
// scanned") and for analysis scratch sets.
type Set struct {
	m map[Addr]struct{}
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[Addr]struct{})} }

// Add inserts an address.
func (s *Set) Add(a Addr) { s.m[a] = struct{}{} }

// Remove deletes an address.
func (s *Set) Remove(a Addr) { delete(s.m, a) }

// Contains reports membership. A nil set contains nothing, so an
// absent blacklist is simply nil.
func (s *Set) Contains(a Addr) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[a]
	return ok
}

// Len returns the element count; 0 for nil.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Addrs returns the members in ascending order.
func (s *Set) Addrs() []Addr {
	if s == nil {
		return nil
	}
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
