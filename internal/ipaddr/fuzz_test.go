package ipaddr

import (
	"testing"
)

// FuzzParseIPRange throws arbitrary text at the provider-range-file
// parser. Accepted inputs must yield a coherent RangeList: canonical
// prefixes that round-trip through their string form, sorted and
// non-overlapping, with Total equal to the sum of prefix sizes and
// Contains agreeing with the prefix arithmetic at both range ends.
func FuzzParseIPRange(f *testing.F) {
	f.Add("172.16.0.0/12\n# amazon\n\n10.0.0.0/8")
	f.Add("23.20.0.0/14")
	f.Add("0.0.0.0/0")
	f.Add("255.255.255.255/32")
	f.Add("999.1.2.3/8")
	f.Add("1.2.3.4/33")
	f.Add("10.0.0.0/8\n10.1.0.0/16")
	f.Add("1.2.3.4")
	f.Add("# only comments\n")
	f.Fuzz(func(t *testing.T, text string) {
		r, err := ParseRangeList(text)
		if err != nil {
			return
		}
		var total uint64
		prev := Prefix{Bits: -1}
		for i, p := range r.Prefixes() {
			if p.Bits < 0 || p.Bits > 32 {
				t.Fatalf("prefix %s has impossible length", p)
			}
			if p.Addr&^Mask(p.Bits) != 0 {
				t.Errorf("prefix %s has host bits set", p)
			}
			back, err := ParsePrefix(p.String())
			if err != nil || back != p {
				t.Errorf("prefix round-trip %s -> %v (err %v)", p, back, err)
			}
			if i > 0 {
				if p.Addr < prev.Addr {
					t.Errorf("prefixes out of order: %s before %s", prev, p)
				}
				if prev.Overlaps(p) {
					t.Errorf("accepted overlapping prefixes %s and %s", prev, p)
				}
			}
			if !p.Contains(p.First()) || !p.Contains(p.Last()) {
				t.Errorf("prefix %s does not contain its own ends", p)
			}
			if !r.Contains(p.First()) || !r.Contains(p.Last()) {
				t.Errorf("range list loses the ends of %s", p)
			}
			total += p.Size()
			prev = p
		}
		if total != r.Total() {
			t.Errorf("Total = %d, sum of prefix sizes = %d", r.Total(), total)
		}

		// Address parsing must round-trip for every accepted line too.
		a, err := ParseAddr("203.0.113.7")
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("addr round-trip %v -> %v (err %v)", a, back, err)
		}
	})
}
