package ipaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("54.208.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "54.208.0.1" {
		t.Errorf("round trip = %q", a.String())
	}
	for _, bad := range []string{"", "1.2.3", "256.1.1.1", "::1", "1.2.3.4.5", "a.b.c.d"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) succeeded", bad)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	prop := func(v uint32) bool {
		a := Addr(v)
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixParse(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.1.2.0/24" { // host bits cleared
		t.Errorf("normalized = %q", p.String())
	}
	if p.Size() != 256 {
		t.Errorf("Size = %d", p.Size())
	}
	for _, bad := range []string{"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "10.0.0.0/08"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.168.4.0/22")
	if !p.Contains(MustParseAddr("192.168.4.0")) || !p.Contains(MustParseAddr("192.168.7.255")) {
		t.Error("endpoints not contained")
	}
	if p.Contains(MustParseAddr("192.168.8.0")) || p.Contains(MustParseAddr("192.168.3.255")) {
		t.Error("outside addresses contained")
	}
	if p.First() != MustParseAddr("192.168.4.0") || p.Last() != MustParseAddr("192.168.7.255") {
		t.Errorf("First/Last = %v/%v", p.First(), p.Last())
	}
}

func TestMaskEdges(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0)")
	}
	if Mask(32) != 0xffffffff {
		t.Error("Mask(32)")
	}
	if Mask(24) != 0xffffff00 {
		t.Error("Mask(24)")
	}
}

func TestPrefix22And24(t *testing.T) {
	a := MustParseAddr("54.208.37.200")
	if got := a.Prefix24().String(); got != "54.208.37.0/24" {
		t.Errorf("Prefix24 = %s", got)
	}
	if got := a.Prefix22().String(); got != "54.208.36.0/22" {
		t.Errorf("Prefix22 = %s", got)
	}
}

func TestRangeListRejectsOverlap(t *testing.T) {
	_, err := NewRangeList([]Prefix{
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.0.4.0/24"),
	})
	if err == nil {
		t.Fatal("overlapping prefixes accepted")
	}
}

func TestParseRangeList(t *testing.T) {
	text := `
# EC2 sample ranges
54.208.0.0/21

23.20.0.0/22
`
	rl, err := ParseRangeList(text)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Total() != 2048+1024 {
		t.Errorf("Total = %d", rl.Total())
	}
	// Sorted by network address: 23.20/22 first.
	if rl.Prefixes()[0].String() != "23.20.0.0/22" {
		t.Errorf("first prefix = %s", rl.Prefixes()[0])
	}
	if _, err := ParseRangeList("not a cidr"); err == nil {
		t.Error("bad range list accepted")
	}
}

func TestRangeListContains(t *testing.T) {
	rl, _ := NewRangeList([]Prefix{
		MustParsePrefix("23.20.0.0/22"),
		MustParsePrefix("54.208.0.0/21"),
	})
	cases := []struct {
		addr string
		want bool
	}{
		{"23.20.0.0", true}, {"23.20.3.255", true}, {"23.20.4.0", false},
		{"54.208.0.1", true}, {"54.208.7.255", true}, {"54.208.8.0", false},
		{"8.8.8.8", false},
	}
	for _, c := range cases {
		if got := rl.Contains(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestRangeListEachCount(t *testing.T) {
	rl, _ := NewRangeList([]Prefix{
		MustParsePrefix("10.0.0.0/30"),
		MustParsePrefix("10.0.1.0/31"),
	})
	var seen []Addr
	rl.Each(func(a Addr) bool {
		seen = append(seen, a)
		return true
	})
	if len(seen) != 6 {
		t.Fatalf("Each visited %d addrs, want 6", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("Each not ascending")
		}
	}
	// Early stop.
	n := 0
	rl.Each(func(Addr) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestIndexAtIndexInverse(t *testing.T) {
	rl, _ := NewRangeList([]Prefix{
		MustParsePrefix("23.20.0.0/30"),
		MustParsePrefix("54.208.0.0/29"),
	})
	total := int64(rl.Total())
	if total != 12 {
		t.Fatalf("Total = %d", total)
	}
	for i := int64(0); i < total; i++ {
		a, err := rl.AtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := rl.Index(a); got != i {
			t.Errorf("Index(AtIndex(%d)) = %d", i, got)
		}
	}
	if _, err := rl.AtIndex(total); err == nil {
		t.Error("AtIndex(total) succeeded")
	}
	if _, err := rl.AtIndex(-1); err == nil {
		t.Error("AtIndex(-1) succeeded")
	}
	if rl.Index(MustParseAddr("8.8.8.8")) != -1 {
		t.Error("Index of absent address != -1")
	}
}

func TestGroupBy24(t *testing.T) {
	rl, _ := NewRangeList([]Prefix{
		MustParsePrefix("10.0.0.0/22"), // 4 /24s
		MustParsePrefix("10.1.0.128/25"),
	})
	got := GroupStrings(rl.GroupBy24())
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24", "10.1.0.0/24"}
	if len(got) != len(want) {
		t.Fatalf("GroupBy24 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("GroupBy24[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// GroupStrings is a test helper rendering prefixes as strings.
func GroupStrings(ps []Prefix) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a := MustParseAddr("1.2.3.4")
	if s.Contains(a) || s.Len() != 0 {
		t.Error("fresh set not empty")
	}
	s.Add(a)
	s.Add(a)
	if !s.Contains(a) || s.Len() != 1 {
		t.Error("Add failed or double-counted")
	}
	s.Remove(a)
	if s.Contains(a) || s.Len() != 0 {
		t.Error("Remove failed")
	}
}

func TestNilSet(t *testing.T) {
	var s *Set
	if s.Contains(0) {
		t.Error("nil set contains address")
	}
	if s.Len() != 0 {
		t.Error("nil set Len != 0")
	}
	if s.Addrs() != nil {
		t.Error("nil set Addrs != nil")
	}
}

func TestSetAddrsSorted(t *testing.T) {
	s := NewSet()
	for _, a := range []string{"9.9.9.9", "1.1.1.1", "5.5.5.5"} {
		s.Add(MustParseAddr(a))
	}
	got := s.Addrs()
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Addrs not ascending: %v", got)
		}
	}
}

func BenchmarkRangeListContains(b *testing.B) {
	var ps []Prefix
	for i := 0; i < 256; i++ {
		ps = append(ps, Prefix{Addr: Addr(uint32(i) << 16), Bits: 22})
	}
	rl, err := NewRangeList(ps)
	if err != nil {
		b.Fatal(err)
	}
	a := MustParseAddr("0.128.1.2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rl.Contains(a)
	}
}
