//go:build race

package coord

// raceDetectorOn reports whether this test binary was built with
// -race. The detector effectively serializes the socket-heavy
// distributed campaigns, so the shared fixture runs a shorter round
// schedule and a smaller cloud to keep `go test -race
// ./internal/coord` inside the default test timeout.
const raceDetectorOn = true
