//go:build !race

package coord

// raceDetectorOn is false without -race; see race_on_test.go.
const raceDetectorOn = false
