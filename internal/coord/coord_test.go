package coord

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/core"
	"whowas/internal/metrics"
	"whowas/internal/websim"
)

// The coord suite runs whole distributed campaigns — a real
// whowas-cloudd-equivalent cloudapi.Server, a coordinator, and N
// in-process workers over real sockets — and holds them to the same
// acceptance bar as every other execution mode: the store digest must
// be byte-identical to a single-process run of the same seed.

// coordDays is the round schedule every campaign here runs. The race
// detector slows the socket-heavy campaigns ~10x, so it gets a
// shorter schedule (the identity property is per-round; two rounds
// exercise it as well as three).
var coordDays = func() []int {
	if raceDetectorOn {
		return []int{0, 2}
	}
	return []int{0, 2, 4}
}()

// campaignTimeout bounds one distributed campaign, with headroom for
// the race detector's slowdown.
func campaignTimeout() time.Duration {
	if raceDetectorOn {
		return 10 * time.Minute
	}
	return 4 * time.Minute
}

// coordCloudConfig is a tiny two-region EC2-like cloud, small enough
// to probe over real sockets several times per test run.
func coordCloudConfig() cloudapi.SimConfig {
	return cloudapi.SimConfig{
		Name:      "coord-ec2",
		Kind:      websim.EC2Like,
		Days:      8,
		Seed:      91,
		BaseOctet: 54,
		Regions: []cloudapi.RegionConfig{
			{Name: "east", Prefixes22: 1, VPC22: 1},
			{Name: "south", Prefixes22: 1, VPC22: 0},
		},
		Population: cloudapi.PopulationConfig{
			TargetResponsive:     0.237,
			Growth:               0.033,
			SSHOnly:              0.259,
			HTTPOnly:             0.380,
			HTTPSOnly:            0.055,
			HTTPBoth:             0.306,
			HTTPFailRate:         0.006,
			DailyBackgroundChurn: 0.05,
			SingletonFrac:        0.788,
			SmallFrac:            0.208,
			MediumFrac:           0.0028,
			EphemeralFrac:        0.114,
			WebClusters:          250,
			VPCClusterShare:      0.27,
			RegisteredDNSShare:   0.55,
		},
	}
}

// startCloudd stands up the shared cloud daemon and returns its
// control address. Shutdown is registered as test cleanup.
func startCloudd(t *testing.T) string {
	t.Helper()
	backing, err := cloudapi.NewInProcess(coordCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := cloudapi.NewServer(backing, cloudapi.ServerConfig{DataListeners: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return addr
}

var (
	baselineOnce   sync.Once
	baselineResult string
	baselineErr    error
)

// baselineDigest runs the reference single-process campaign (the
// exact configuration a worker reconstructs from its RegisterReply)
// over an in-process cloud and returns the store digest. Computed
// once; every distributed run must reproduce it byte for byte.
func baselineDigest(t *testing.T) string {
	t.Helper()
	baselineOnce.Do(func() {
		cloud, err := cloudapi.NewInProcess(coordCloudConfig())
		if err != nil {
			baselineErr = err
			return
		}
		p, err := core.NewPlatformCloud(cloud)
		if err != nil {
			baselineErr = err
			return
		}
		cfg := core.FastCampaign()
		cfg.RoundDays = coordDays
		ctx, cancel := context.WithTimeout(context.Background(), campaignTimeout())
		defer cancel()
		if err := p.RunCampaign(ctx, cfg); err != nil {
			baselineErr = err
			return
		}
		baselineResult, baselineErr = p.Store.Digest()
	})
	if baselineErr != nil {
		t.Fatalf("baseline campaign: %v", baselineErr)
	}
	return baselineResult
}

// runFleet drives one distributed campaign: a coordinator over the
// given cloudd plus n workers, returning the coordinator (shut down
// at cleanup) after Run and DrainWorkers complete.
func runFleet(t *testing.T, clouddAddr string, cfg Config, n int) *Server {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), campaignTimeout())
	t.Cleanup(cancel)
	srv, err := NewServer(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator: addr,
			ID:          fmt.Sprintf("w%d", i),
			Metrics:     metrics.NewRegistry(),
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if err := w.Close(); err != nil {
					t.Errorf("worker %s close: %v", w.ID(), err)
				}
			}()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.ID(), err)
			}
		}()
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator run: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator run timed out")
	}
	dctx, dcancel := context.WithTimeout(ctx, 30*time.Second)
	defer dcancel()
	if err := srv.DrainWorkers(dctx); err != nil {
		t.Fatalf("draining workers: %v", err)
	}
	wg.Wait()
	return srv
}

// TestCoordinatorDigestIdentity is the tentpole acceptance gate: the
// same seeded campaign run by 1, 2 and 4 workers (across shard
// layouts, including more workers than shards and a budget tighter
// than the fleet) must reproduce the single-process store digest
// byte for byte.
func TestCoordinatorDigestIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed identity campaigns skipped in -short mode")
	}
	want := baselineDigest(t)
	cases := []struct {
		workers    int
		shards     int
		maxWorkers int
	}{
		{workers: 1, shards: 0, maxWorkers: 8},
		// Three workers contending for two lease slices: the third
		// blocks on 409 until the campaign's end frees a slice.
		{workers: 3, shards: 0, maxWorkers: 2},
		{workers: 4, shards: 1, maxWorkers: 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("workers=%d_shards=%d_max=%d", tc.workers, tc.shards, tc.maxWorkers), func(t *testing.T) {
			clouddAddr := startCloudd(t)
			srv := runFleet(t, clouddAddr, Config{
				CloudAddr:  clouddAddr,
				Rounds:     coordDays,
				Shards:     tc.shards,
				MaxWorkers: tc.maxWorkers,
				LeaseTTL:   5 * time.Second,
				Metrics:    metrics.NewRegistry(),
			}, tc.workers)
			if n := srv.Store().NumRounds(); n != len(coordDays) {
				t.Fatalf("rounds collected = %d, want %d", n, len(coordDays))
			}
			got, err := srv.Store().Digest()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("distributed digest %s != single-process digest %s", got, want)
			}
			if holders := srv.Budget().Holders(); len(holders) != 0 {
				t.Errorf("leases outstanding after drain: %v", holders)
			}
			reports := srv.Reports()
			if len(reports) != len(coordDays) {
				t.Fatalf("reports = %d, want %d", len(reports), len(coordDays))
			}
			for _, r := range reports {
				if r.Degraded {
					t.Errorf("round %d degraded in a healthy campaign", r.Round)
				}
				if r.Records == 0 || r.Probed == 0 {
					t.Errorf("round %d empty: %+v", r.Round, r)
				}
				if len(r.Regions) != 2 {
					t.Errorf("round %d regions = %d, want 2", r.Round, len(r.Regions))
				}
			}
		})
	}
}

// TestCoordinatorStatus exercises the introspection surface during
// and after a campaign.
func TestCoordinatorStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed campaign skipped in -short mode")
	}
	clouddAddr := startCloudd(t)
	srv := runFleet(t, clouddAddr, Config{
		CloudAddr: clouddAddr,
		Rounds:    []int{0},
		LeaseTTL:  5 * time.Second,
		Metrics:   metrics.NewRegistry(),
	}, 2)
	if got := srv.NumShards(); got != 2 {
		t.Errorf("NumShards = %d, want 2", got)
	}
	if got := srv.ScheduledRounds(); got != 1 {
		t.Errorf("ScheduledRounds = %d, want 1", got)
	}
}
