package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/core"
	"whowas/internal/fleetobs"
	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// WorkerConfig drives one worker process (or goroutine).
type WorkerConfig struct {
	// Coordinator is the coordinator's protocol address
	// ("host:port" or "http://host:port").
	Coordinator string
	// ID names the worker (and its lease). Empty means a PID-derived
	// default; fleets must keep IDs unique.
	ID string
	// PollInterval paces the /coord/next loop while waiting for work.
	// 0 means the coordinator-suggested interval.
	PollInterval time.Duration
	// Metrics, when non-nil, instruments the worker's scanner/fetcher.
	Metrics *metrics.Registry
	// TraceSamplePerMille sets the worker tracer's per-IP sampling
	// rate (trace.Config.SamplePerMille): 0 takes the default,
	// negative disables per-IP spans.
	TraceSamplePerMille int
	// Logf, when non-nil, receives one line per lifecycle event
	// (registered, assigned, submitted, re-registering).
	Logf func(format string, args ...any)
}

// errReregister signals a lost lease mid-session: the worker's state
// is stale and it must register again.
var errReregister = errors.New("coord: lease lost; re-registering")

// Worker leases a slice of the coordinator's probe budget and runs
// assigned shards until the campaign is done. Run blocks; Close is
// idempotent and releases the cloud connections.
type Worker struct {
	cfg    WorkerConfig
	base   string
	hc     *http.Client
	tracer *trace.Tracer
	spans  *trace.Buffer
	col    *fleetobs.Collector

	mu     sync.Mutex
	closed bool
	cloud  *cloudapi.Client

	// testOnAssign, when set, runs before each assignment executes —
	// the in-process chaos tests inject worker death through it.
	testOnAssign func(Assignment)
}

// NewWorker validates the config and builds a worker. No network
// traffic happens until Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("coord: Coordinator address required")
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	base := cfg.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	// The worker's spans land in an in-memory buffer drained into each
	// shard submission; the coordinator owns the durable journal.
	spans := trace.NewBuffer(4096)
	tracer := trace.New(trace.Config{
		RingSize:       1024,
		SamplePerMille: cfg.TraceSamplePerMille,
		Journal:        spans,
	})
	return &Worker{
		cfg:    cfg,
		base:   base,
		hc:     &http.Client{Timeout: 2 * time.Minute},
		tracer: tracer,
		spans:  spans,
		col:    &fleetobs.Collector{Worker: cfg.ID, Metrics: cfg.Metrics, Tracer: tracer},
	}, nil
}

// ID returns the worker's (possibly defaulted) identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Tracer exposes the worker's tracer (tests assert on its spans).
func (w *Worker) Tracer() *trace.Tracer { return w.tracer }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run registers with the coordinator, leases its budget slice, dials
// the shared cloud, and loops next → run shard → submit until the
// campaign is done (nil) or ctx is cancelled. A lost lease (410) at
// any point re-registers and continues; a shard execution failure
// returns the error — the worker dies and the coordinator's lease
// expiry re-assigns its work, which is the designed failure path.
func (w *Worker) Run(ctx context.Context) error {
	defer w.closeIdle()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.session(ctx)
		if errors.Is(err, errReregister) {
			w.logf("worker %s: %v", w.cfg.ID, err)
			continue
		}
		return err
	}
}

// session is one register → work cycle. It returns nil when the
// campaign is done, errReregister when the lease was lost, and a
// terminal error otherwise.
func (w *Worker) session(ctx context.Context) error {
	reg, err := w.register(ctx)
	if err != nil {
		return err
	}
	w.logf("worker %s: registered (rate %.0f pps, unlimited=%v, ttl %dms)",
		w.cfg.ID, reg.Rate, reg.Unlimited, reg.TTLMS)
	cloud, err := w.dialCloud(ctx, reg.CloudAddr)
	if err != nil {
		return err
	}
	runner, err := core.NewShardRunner(cloud, w.shardConfig(reg))
	if err != nil {
		return err
	}
	defer runner.CloseIdle()

	// The heartbeat keeps the lease alive across long shards; it is
	// tied to the session context so Run's return always reaps it.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	var hbMu sync.Mutex
	var hbErr error
	ttl := time.Duration(reg.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-inner.Done():
				return
			case <-t.C:
				if err := w.heartbeat(inner); err != nil {
					hbMu.Lock()
					hbErr = err
					hbMu.Unlock()
					cancel()
					return
				}
			}
		}
	}()
	err = w.work(inner, runner)
	cancel()
	wg.Wait()
	// A heartbeat failure cancelled the work loop from outside; its
	// verdict (re-register vs. terminal) wins over the induced
	// context error.
	hbMu.Lock()
	defer hbMu.Unlock()
	if hbErr != nil && ctx.Err() == nil {
		return hbErr
	}
	return err
}

// work loops assignments until done, a lost lease, or cancellation.
func (w *Worker) work(ctx context.Context, runner *core.ShardRunner) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		a, err := w.next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, errReregister) {
				return err
			}
			// The coordinator may be briefly unreachable (restart,
			// listen backlog); keep polling until ctx says otherwise.
			w.logf("worker %s: next: %v", w.cfg.ID, err)
			if err := sleepCtx(ctx, 500*time.Millisecond); err != nil {
				return err
			}
			continue
		}
		switch a.State {
		case StateDone:
			w.logf("worker %s: campaign done", w.cfg.ID)
			return nil
		case StateWait:
			d := w.cfg.PollInterval
			if d <= 0 {
				d = time.Duration(a.RetryMS) * time.Millisecond
			}
			if d <= 0 {
				d = defaultRetryMS * time.Millisecond
			}
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
		case StateRun:
			if w.testOnAssign != nil {
				w.testOnAssign(*a)
			}
			w.logf("worker %s: running round %d shard %d (%s)",
				w.cfg.ID, a.Round, a.Shard, strings.Join(a.Regions, ","))
			res, err := runner.RunShard(ctx, a.Regions)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("coord: worker %s shard %d: %w", w.cfg.ID, a.Shard, err)
			}
			accepted, err := w.submit(ctx, *a, res)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
			w.logf("worker %s: submitted round %d shard %d (%d records, accepted=%v)",
				w.cfg.ID, a.Round, a.Shard, len(res.Records), accepted)
		default:
			return fmt.Errorf("coord: unknown assignment state %q", a.State)
		}
	}
}

// shardConfig builds the worker's campaign config from the
// coordinator's directives, on the same base a single-process
// simulation campaign uses so the records match byte for byte.
func (w *Worker) shardConfig(reg *RegisterReply) core.CampaignConfig {
	cfg := core.FastCampaign()
	if !reg.Unlimited {
		cfg.Scanner.Rate = reg.Rate
	}
	if reg.Attempts > 0 {
		cfg.Scanner.Attempts = reg.Attempts
		cfg.Fetcher.Attempts = reg.Attempts
	}
	cfg.KeepBodies = reg.KeepBodies
	cfg.RoundTimeout = time.Duration(reg.RoundTimeoutMS) * time.Millisecond
	cfg.Faults = reg.Faults
	cfg.Scanner.Metrics = w.cfg.Metrics
	cfg.Fetcher.Metrics = w.cfg.Metrics
	cfg.Scanner.Tracer = w.tracer
	cfg.Fetcher.Tracer = w.tracer
	return cfg
}

// dialCloud dials the shared cloud daemon once and caches the client
// across re-registrations.
func (w *Worker) dialCloud(ctx context.Context, addr string) (*cloudapi.Client, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("coord: worker closed")
	}
	if w.cloud != nil {
		return w.cloud, nil
	}
	cloud, err := cloudapi.Dial(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("coord: dialing cloud: %w", err)
	}
	w.cloud = cloud
	return cloud, nil
}

// register acquires a lease, retrying while the coordinator is not up
// yet or its budget is momentarily full (a dead predecessor's lease
// may need to expire first).
func (w *Worker) register(ctx context.Context) (*RegisterReply, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var reply RegisterReply
		code, err := w.post(ctx, "/coord/register", RegisterRequest{Worker: w.cfg.ID}, &reply)
		switch {
		case err == nil && code == http.StatusOK:
			return &reply, nil
		case code == http.StatusConflict:
			w.logf("worker %s: budget full; retrying", w.cfg.ID)
		case err != nil:
			w.logf("worker %s: register: %v", w.cfg.ID, err)
		default:
			return nil, fmt.Errorf("coord: register: unexpected status %d", code)
		}
		if err := sleepCtx(ctx, 200*time.Millisecond); err != nil {
			return nil, err
		}
	}
}

func (w *Worker) heartbeat(ctx context.Context) error {
	var reply HeartbeatReply
	code, err := w.post(ctx, "/coord/heartbeat",
		HeartbeatRequest{Worker: w.cfg.ID, Obs: w.col.Report()}, &reply)
	if code == http.StatusGone {
		return errReregister
	}
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("coord: heartbeat: unexpected status %d", code)
	}
	return nil
}

func (w *Worker) next(ctx context.Context) (*Assignment, error) {
	var a Assignment
	code, err := w.post(ctx, "/coord/next", NextRequest{Worker: w.cfg.ID}, &a)
	if code == http.StatusGone {
		return nil, errReregister
	}
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("coord: next: unexpected status %d", code)
	}
	return &a, nil
}

func (w *Worker) submit(ctx context.Context, a Assignment, res *core.ShardResult) (bool, error) {
	var reply SubmitReply
	req := SubmitRequest{
		Worker: w.cfg.ID,
		Round:  a.Round,
		Shard:  a.Shard,
		Result: *res,
		Obs:    w.col.Report(),
		Spans:  w.spans.Drain(),
	}
	code, err := w.post(ctx, "/coord/submit", req, &reply)
	if code == http.StatusGone {
		return false, errReregister
	}
	if err != nil {
		return false, err
	}
	if code != http.StatusOK {
		return false, fmt.Errorf("coord: submit: unexpected status %d", code)
	}
	return reply.Accepted, nil
}

// post sends one JSON request and decodes the JSON reply. The status
// code is returned even on non-200 answers so callers can react to
// protocol statuses (409, 410).
func (w *Worker) post(ctx context.Context, path string, body, reply any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
		return resp.StatusCode, fmt.Errorf("coord: decoding %s reply: %w", path, err)
	}
	return resp.StatusCode, nil
}

// closeIdle drops pooled connections without marking the worker
// closed (Run's exit path; Run may be retried).
func (w *Worker) closeIdle() {
	w.hc.CloseIdleConnections()
	w.mu.Lock()
	cloud := w.cloud
	w.mu.Unlock()
	if cloud != nil {
		_ = cloud.Close()
	}
}

// Close releases the worker's connections. Idempotent; safe
// concurrently with Run (whose requests then fail and surface as a
// terminal error).
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	cloud := w.cloud
	w.cloud = nil
	w.mu.Unlock()
	w.hc.CloseIdleConnections()
	if cloud != nil {
		return cloud.Close()
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
