package coord

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"whowas/internal/metrics"
)

// TestWorkerDeathReassignment kills a worker the moment it receives
// its first shard assignment — before it probes or heartbeats — and
// asserts the coordinator's lease machinery does its job: the lease
// expires, its budget tokens return to the pool, the orphaned shard
// is re-queued, the surviving worker finishes the campaign, and the
// final digest is still byte-identical to a single-process run.
func TestWorkerDeathReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed chaos campaign skipped in -short mode")
	}
	want := baselineDigest(t)
	clouddAddr := startCloudd(t)

	ctx, cancel := context.WithTimeout(context.Background(), campaignTimeout())
	defer cancel()
	reg := metrics.NewRegistry()
	srv, err := NewServer(ctx, Config{
		CloudAddr: clouddAddr,
		Rounds:    coordDays,
		LeaseTTL:  time.Second,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	// The victim registers alone, takes the round's first shard, and
	// its context is cancelled right there: no probes, no submit, no
	// further heartbeats. From the coordinator's view it just died.
	vctx, vkill := context.WithCancel(ctx)
	defer vkill()
	victim, err := NewWorker(WorkerConfig{Coordinator: addr, ID: "victim", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	died := make(chan struct{})
	var once sync.Once
	victim.testOnAssign = func(Assignment) {
		once.Do(func() {
			vkill()
			close(died)
		})
	}
	victimErr := make(chan error, 1)
	go func() {
		defer func() {
			if err := victim.Close(); err != nil {
				t.Errorf("victim close: %v", err)
			}
		}()
		victimErr <- victim.Run(vctx)
	}()
	select {
	case <-died:
	case <-time.After(time.Minute):
		t.Fatal("victim never received an assignment")
	}
	if err := <-victimErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("victim run = %v, want context.Canceled", err)
	}

	// The victim's lease must expire and return its tokens to the
	// budget while the campaign is still running.
	deadline := time.Now().Add(15 * time.Second)
	for holds(srv.Budget().Holders(), "victim") {
		if time.Now().After(deadline) {
			t.Fatal("victim lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A lone survivor inherits the orphaned shard and every one after.
	survivor, err := NewWorker(WorkerConfig{Coordinator: addr, ID: "survivor", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if err := survivor.Close(); err != nil {
				t.Errorf("survivor close: %v", err)
			}
		}()
		if err := survivor.Run(ctx); err != nil {
			t.Errorf("survivor: %v", err)
		}
	}()

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator run: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator run timed out")
	}
	dctx, dcancel := context.WithTimeout(ctx, 30*time.Second)
	defer dcancel()
	if err := srv.DrainWorkers(dctx); err != nil {
		t.Fatalf("draining workers: %v", err)
	}
	wg.Wait()

	if got := reg.Counter("coord.leases_expired").Load(); got < 1 {
		t.Errorf("coord.leases_expired = %d, want >= 1", got)
	}
	if got := reg.Counter("coord.shards_reassigned").Load(); got < 1 {
		t.Errorf("coord.shards_reassigned = %d, want >= 1", got)
	}
	// The death must be visible in the status history: a lease_expired
	// record naming the victim, with the re-assignment tallied.
	expired := false
	for _, rec := range srv.Aggregator().History().Snapshot() {
		if rec.Event == "lease_expired" && rec.Worker == "victim" {
			expired = true
			if rec.ShardsReassigned < 1 {
				t.Errorf("lease_expired record shows %d reassignments, want >= 1", rec.ShardsReassigned)
			}
		}
	}
	if !expired {
		t.Error("status history never recorded the victim's lease expiry")
	}
	if holders := srv.Budget().Holders(); len(holders) != 0 {
		t.Errorf("leases outstanding after drain: %v", holders)
	}
	for _, r := range srv.Reports() {
		if r.Degraded {
			t.Errorf("round %d degraded: re-assignment should recover, not degrade", r.Round)
		}
	}
	got, err := srv.Store().Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-death digest %s != single-process digest %s", got, want)
	}
}

// TestWorkerRejoinAfterDeath is the second half of the failure model:
// a worker that re-registers under its old identity (a restarted
// process) must get a fresh lease — not double-count the budget — and
// its previous session's orphaned shards must be re-queued rather
// than waiting on a now-live lease that never expires.
func TestWorkerRejoinAfterDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed chaos campaign skipped in -short mode")
	}
	want := baselineDigest(t)
	clouddAddr := startCloudd(t)

	ctx, cancel := context.WithTimeout(context.Background(), campaignTimeout())
	defer cancel()
	reg := metrics.NewRegistry()
	srv, err := NewServer(ctx, Config{
		CloudAddr:  clouddAddr,
		Rounds:     coordDays,
		MaxWorkers: 1, // one lease slice: a rejoin must reuse it, not leak it
		LeaseTTL:   time.Second,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	// First incarnation: takes a shard and dies on the spot.
	vctx, vkill := context.WithCancel(ctx)
	defer vkill()
	first, err := NewWorker(WorkerConfig{Coordinator: addr, ID: "phoenix", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	died := make(chan struct{})
	first.testOnAssign = func(Assignment) {
		once.Do(func() {
			vkill()
			close(died)
		})
	}
	firstErr := make(chan error, 1)
	go func() {
		defer func() { _ = first.Close() }()
		firstErr <- first.Run(vctx)
	}()
	select {
	case <-died:
	case <-time.After(time.Minute):
		t.Fatal("first incarnation never received an assignment")
	}
	if err := <-firstErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("first incarnation run = %v, want context.Canceled", err)
	}

	// Second incarnation rejoins under the SAME identity. Register must
	// replace the dead lease in place (not stack a second one) and
	// re-queue the orphaned shard — a shard left owned by the now-live
	// lease would never expire and the round would hang. Budget is
	// MaxWorkers=1, so any token leak would wedge registration forever.
	second, err := NewWorker(WorkerConfig{Coordinator: addr, ID: "phoenix", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if err := second.Close(); err != nil {
				t.Errorf("second incarnation close: %v", err)
			}
		}()
		if err := second.Run(ctx); err != nil {
			t.Errorf("second incarnation: %v", err)
		}
	}()

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator run: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator run timed out")
	}
	dctx, dcancel := context.WithTimeout(ctx, 30*time.Second)
	defer dcancel()
	if err := srv.DrainWorkers(dctx); err != nil {
		t.Fatalf("draining workers: %v", err)
	}
	wg.Wait()

	if got := reg.Counter("coord.shards_reassigned").Load(); got < 1 {
		t.Errorf("coord.shards_reassigned = %d, want >= 1", got)
	}
	got, err := srv.Store().Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-rejoin digest %s != single-process digest %s", got, want)
	}
}

func holds(ids []string, id string) bool {
	for _, h := range ids {
		if h == id {
			return true
		}
	}
	return false
}
