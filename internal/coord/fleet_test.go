package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// journalBuffer is a goroutine-safe in-memory trace journal. The
// tracer writes it under its own lock, but the test reads it while the
// shutdown path may still hold a reference, so lock anyway.
type journalBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (j *journalBuffer) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.buf.Write(p)
}

func (j *journalBuffer) Bytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.buf.Bytes()...)
}

// TestFleetObservability runs a two-worker campaign with the full
// observability surface wired and asserts the tentpole contract: the
// fleet view aggregates per-worker metrics, the Prometheus exposition
// carries worker labels, the status history records the campaign's
// lifecycle, and the coordinator's merged trace journal attributes
// every worker span to its worker — parented under the round spans —
// so the distributed campaign reads like a single-process one.
func TestFleetObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed campaign skipped in -short mode")
	}
	clouddAddr := startCloudd(t)
	journal := &journalBuffer{}
	tracer := trace.New(trace.Config{Journal: journal})
	reg := metrics.NewRegistry()
	srv := runFleet(t, clouddAddr, Config{
		CloudAddr: clouddAddr,
		Rounds:    []int{0, 2},
		LeaseTTL:  5 * time.Second,
		Metrics:   reg,
		Tracer:    tracer,
	}, 2)

	// The contract is the HTTP surface, so assert through it.
	base := "http://" + srv.Addr()

	// --- /coord/fleet ---
	var fleet Fleet
	getJSON(t, base+"/coord/fleet", &fleet)
	if !fleet.Status.Done {
		t.Errorf("fleet status not done: %+v", fleet.Status)
	}
	if len(fleet.Workers) != 2 {
		t.Fatalf("fleet workers = %d, want 2", len(fleet.Workers))
	}
	var probeSum int64
	for i, wv := range fleet.Workers {
		if want := fmt.Sprintf("w%d", i); wv.Worker != want {
			t.Errorf("worker row %d is %q, want %q", i, wv.Worker, want)
		}
		if wv.Probes <= 0 {
			t.Errorf("worker %s reported no probes", wv.Worker)
		}
		probeSum += wv.Probes
	}
	if got := fleet.Fleet.Counters["scanner.probes"]; got != probeSum {
		t.Errorf("fleet merged probes = %d, want sum of workers %d", got, probeSum)
	}
	if fleet.HistoryTotal <= 0 || len(fleet.History) == 0 {
		t.Fatalf("history empty: total=%d len=%d", fleet.HistoryTotal, len(fleet.History))
	}
	events := map[string]int{}
	for _, rec := range fleet.History {
		events[rec.Event]++
	}
	for _, want := range []string{"register", "round_begin", "submit", "round_end", "campaign_done"} {
		if events[want] == 0 {
			t.Errorf("history missing %q events (got %v)", want, events)
		}
	}
	// Two rounds, two shards each: four accepted submissions.
	if events["submit"] != 4 {
		t.Errorf("history submit events = %d, want 4", events["submit"])
	}

	// --- /metrics/prom: worker-labeled fleet exposition ---
	prom := getBody(t, base+"/metrics/prom")
	for _, want := range []string{
		`whowas_coord_rounds_total 2`,
		`whowas_scanner_probes_total{worker="w0"}`,
		`whowas_scanner_probes_total{worker="w1"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	// One TYPE declaration per metric name, no matter how many series.
	if n := strings.Count(prom, "# TYPE whowas_scanner_probes_total "); n != 1 {
		t.Errorf("TYPE whowas_scanner_probes_total declared %d times, want 1", n)
	}

	// --- merged trace journal: worker attribution under round spans ---
	spans := decodeJournal(t, journal.Bytes())
	byID := make(map[uint64]trace.SpanSnapshot, len(spans))
	rounds := 0
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "round" {
			rounds++
		}
	}
	if rounds != 2 {
		t.Errorf("journal has %d round spans, want 2", rounds)
	}
	workerSpans := 0
	seenWorkers := map[string]bool{}
	for _, s := range spans {
		wid := s.Attrs["worker"]
		if wid == "" {
			continue
		}
		workerSpans++
		seenWorkers[wid] = true
		if s.Attrs["round"] == "" || s.Attrs["shard"] == "" {
			t.Errorf("span %q missing round/shard stamp: %v", s.Name, s.Attrs)
		}
		parent, ok := byID[s.Parent]
		for ok && parent.Name != "round" {
			parent, ok = byID[parent.Parent]
		}
		if !ok {
			t.Errorf("span %q (worker %s) does not resolve to a round span", s.Name, wid)
		}
	}
	if workerSpans == 0 {
		t.Fatal("journal has no worker-attributed spans")
	}
	if !seenWorkers["w0"] || !seenWorkers["w1"] {
		t.Errorf("journal attributes spans to %v, want both w0 and w1", seenWorkers)
	}
	// The merged spans join the ring too, so /trace/slowest sees them.
	stamped := false
	for _, s := range tracer.Slowest(100) {
		if s.Attrs["worker"] != "" {
			stamped = true
			break
		}
	}
	if !stamped {
		t.Error("no worker-stamped span in the coordinator tracer's ring")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// decodeJournal parses a JSONL trace journal.
func decodeJournal(t *testing.T, data []byte) []trace.SpanSnapshot {
	t.Helper()
	var out []trace.SpanSnapshot
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var s trace.SpanSnapshot
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		out = append(out, s)
	}
	return out
}
