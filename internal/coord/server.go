package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/core"
	"whowas/internal/faults"
	"whowas/internal/fleetobs"
	"whowas/internal/metrics"
	"whowas/internal/ops"
	"whowas/internal/ratelimit"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/store/colstore"
	"whowas/internal/trace"
)

// Config drives one distributed campaign.
type Config struct {
	// CloudAddr is the control-plane address of the shared
	// whowas-cloudd daemon. The coordinator dials it to own the day
	// schedule; workers dial it to probe.
	CloudAddr string
	// Rounds are the campaign day offsets; nil means the paper's §6
	// schedule over the cloud's campaign length.
	Rounds []int
	// MaxRounds caps the schedule (after Rounds defaulting); 0 means
	// no cap. Mirrors the CLIs' -rounds flag.
	MaxRounds int
	// Shards sets how many region shards each round is split into
	// (regions are round-robined across shards, exactly like the
	// in-process round's lanes). 0 means one shard per region. The
	// store digest is byte-identical for any value.
	Shards int
	// MaxWorkers bounds the fleet: the global probe budget is divided
	// into MaxWorkers equal lease slices, and the MaxWorkers+1'th
	// register attempt is refused (409) until a lease frees up.
	// 0 means DefaultMaxWorkers.
	MaxWorkers int
	// Rate is the global §7 probe budget in probes per second, shared
	// by the whole fleet. <= 0 means simulation speed (workers scan
	// unthrottled, as core.FastCampaign does); the lease machinery
	// still runs for liveness.
	Rate float64
	// LeaseTTL is how long a worker lease lives without renewal; a
	// silent worker expires after it and its shards are re-queued.
	// 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// RoundTimeout bounds each round's wall-clock time. A round whose
	// shards have not all been submitted by then finalizes degraded
	// with the shards that did complete — mirroring the in-process
	// round's graceful degradation — instead of hanging on a dead
	// fleet. It is also forwarded to workers as their per-shard
	// deadline. 0 means no deadline.
	RoundTimeout time.Duration
	// Attempts, KeepBodies and Faults mirror CampaignConfig and are
	// forwarded to every worker so the fleet's records match a
	// single-process run byte for byte.
	Attempts   int
	KeepBodies bool
	Faults     *faults.Scenario
	// StoreDir, when non-empty, backs the coordinator's store with the
	// on-disk columnar engine (internal/store/colstore) in that
	// directory instead of holding every round in memory. Digests are
	// byte-identical either way.
	StoreDir string
	// Metrics receives the coord.* counters and backs the ops surface.
	Metrics *metrics.Registry
	// Tracer, when non-nil, is the fleet's merged flight recorder: the
	// coordinator opens one "round" span per round, renumbers every
	// accepted submission's worker spans under it (stamped with worker
	// identity), and journals the lot — so whowas-query trace
	// reconstructs the distributed campaign from this one journal.
	Tracer *trace.Tracer
	// HistorySize bounds the status-history ring (default 512).
	HistorySize int
	// Observer, when non-nil, receives each completed round's report.
	Observer func(core.RoundReport)
	// Clock feeds the lease budget (tests install a fake). Nil means
	// the real clock.
	Clock ratelimit.Clock
}

// Defaults for the zero Config values.
const (
	DefaultMaxWorkers = 8
	DefaultLeaseTTL   = 10 * time.Second
	// defaultRetryMS is the poll interval handed to waiting workers.
	defaultRetryMS = 50
)

// roundState is one in-flight round's assignment ledger.
type roundState struct {
	idx, day int
	start    time.Time
	pending  []int    // unassigned shard indexes, FIFO
	owner    []string // assigned shard -> worker ID ("" = unassigned)
	done     []bool
	results  []*core.ShardResult
	nDone    int
	degraded bool
	// span is the coordinator's root span for the round; accepted
	// submissions parent their worker spans under it.
	span *trace.Span
}

// Server is the campaign coordinator. Build with NewServer, bind the
// protocol with Start, drive the rounds with Run, and stop with
// Shutdown.
type Server struct {
	cfg       Config
	cloud     *cloudapi.Client
	st        *store.Store
	budget    *ratelimit.Budget
	ops       *ops.Server
	opsAddr   string
	slice     float64 // per-worker lease slice
	unlimited bool
	days      []int
	shards    [][]string // region names per shard, fixed per campaign
	notify    chan struct{}
	agg       *fleetobs.Aggregator

	mu           sync.Mutex
	round        *roundState
	roundsDone   int
	campaignDone bool
	reports      []core.RoundReport

	closeOnce sync.Once
	closeErr  error

	mRounds     *metrics.Counter
	mAssigned   *metrics.Counter
	mCompleted  *metrics.Counter
	mReassigned *metrics.Counter
	mExpired    *metrics.Counter
	mRegistered *metrics.Counter
	mRejected   *metrics.Counter
}

// NewServer dials the shared cloud daemon and assembles the
// coordinator: the store the shards merge into, the leased-quota
// budget, the shard layout, and the round schedule.
func NewServer(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.CloudAddr == "" {
		return nil, fmt.Errorf("coord: CloudAddr required")
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = DefaultMaxWorkers
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	cloud, err := cloudapi.Dial(ctx, cfg.CloudAddr)
	if err != nil {
		return nil, fmt.Errorf("coord: dialing cloud: %w", err)
	}
	regions, err := core.CloudRegionNames(cloud)
	if err != nil {
		cloud.Close()
		return nil, err
	}
	nShards := cfg.Shards
	if nShards <= 0 || nShards > len(regions) {
		nShards = len(regions)
	}
	shards := make([][]string, nShards)
	for i, name := range regions {
		shards[i%nShards] = append(shards[i%nShards], name)
	}
	days := cfg.Rounds
	if days == nil {
		days = core.DefaultRoundSchedule(cloud.Days())
	}
	if cfg.MaxRounds > 0 && cfg.MaxRounds < len(days) {
		days = days[:cfg.MaxRounds]
	}
	for _, day := range days {
		if day < 0 || day >= cloud.Days() {
			cloud.Close()
			return nil, fmt.Errorf("coord: round day %d outside campaign [0,%d)", day, cloud.Days())
		}
	}
	rate, unlimited := cfg.Rate, false
	if rate <= 0 {
		rate, unlimited = scanner.UnlimitedRate, true
	}
	budget, err := ratelimit.NewBudget(rate, cfg.LeaseTTL, cfg.Clock)
	if err != nil {
		cloud.Close()
		return nil, err
	}
	st := store.New(cloud.Info().Name)
	if cfg.StoreDir != "" {
		backend, err := colstore.Open(cfg.StoreDir, colstore.Options{CloudName: cloud.Info().Name})
		if err != nil {
			cloud.Close()
			return nil, fmt.Errorf("coord: opening store dir: %w", err)
		}
		st = store.NewWithBackend(cloud.Info().Name, backend)
	}
	st.KeepBodies = cfg.KeepBodies
	st.SetMetrics(cfg.Metrics)
	if cfg.Tracer != nil {
		// Store finalize spans join the merged journal too.
		st.SetTracer(cfg.Tracer)
	}
	return &Server{
		cfg:         cfg,
		cloud:       cloud,
		st:          st,
		budget:      budget,
		slice:       rate / float64(cfg.MaxWorkers),
		unlimited:   unlimited,
		days:        days,
		shards:      shards,
		notify:      make(chan struct{}, 1),
		agg:         fleetobs.NewAggregator(cfg.HistorySize),
		mRounds:     cfg.Metrics.Counter("coord.rounds"),
		mAssigned:   cfg.Metrics.Counter("coord.shards_assigned"),
		mCompleted:  cfg.Metrics.Counter("coord.shards_completed"),
		mReassigned: cfg.Metrics.Counter("coord.shards_reassigned"),
		mExpired:    cfg.Metrics.Counter("coord.leases_expired"),
		mRegistered: cfg.Metrics.Counter("coord.workers_registered"),
		mRejected:   cfg.Metrics.Counter("coord.submits_rejected"),
	}, nil
}

// Store returns the coordinator's store (the campaign's single source
// of truth; digest it after Run).
func (s *Server) Store() *store.Store { return s.st }

// Budget exposes the lease budget (tests assert on Leased()).
func (s *Server) Budget() *ratelimit.Budget { return s.budget }

// NumShards reports the per-round shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ScheduledRounds reports how many rounds the campaign will run.
func (s *Server) ScheduledRounds() int { return len(s.days) }

// Reports returns a copy of the completed rounds' reports.
func (s *Server) Reports() []core.RoundReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.RoundReport(nil), s.reports...)
}

// Start binds the coordinator protocol (plus the standard ops
// observability surface) on addr and serves in the background,
// returning the bound address. /metrics/prom serves the fleet-wide
// exposition: the coordinator's own instruments unlabeled, then every
// worker's last-reported snapshot under a worker label.
func (s *Server) Start(addr string) (string, error) {
	s.ops = ops.New(ops.Config{
		Metrics: s.cfg.Metrics,
		Tracer:  s.cfg.Tracer,
		Rounds:  s.Reports,
		Prom:    s.writeProm,
		Extra: map[string]http.HandlerFunc{
			"/coord/register":  s.handleRegister,
			"/coord/heartbeat": s.handleHeartbeat,
			"/coord/next":      s.handleNext,
			"/coord/submit":    s.handleSubmit,
			"/coord/status":    s.handleStatus,
			"/coord/fleet":     s.handleFleet,
		},
	})
	bound, err := s.ops.Start(addr)
	if err == nil {
		s.opsAddr = bound
	}
	return bound, err
}

// Addr reports the bound protocol address ("" before Start).
func (s *Server) Addr() string { return s.opsAddr }

// Aggregator exposes the fleet-view aggregator (tests assert on it).
func (s *Server) Aggregator() *fleetobs.Aggregator { return s.agg }

// now reads the coordinator's clock — the configured test clock when
// present, so lease-expiry arithmetic in views matches the budget's.
func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock.Now()
	}
	return time.Now()
}

// leaseStates snapshots the budget's live leases as wire-form states.
func (s *Server) leaseStates(now time.Time) []fleetobs.LeaseState {
	leases := s.budget.Leases()
	out := make([]fleetobs.LeaseState, len(leases))
	for i, l := range leases {
		out[i] = fleetobs.LeaseState{
			Worker:      l.ID,
			Rate:        l.Rate,
			ExpiresInMS: l.Expires.Sub(now).Milliseconds(),
		}
	}
	return out
}

// writeProm renders the fleet-wide Prometheus exposition.
func (s *Server) writeProm(w io.Writer) error {
	series := []metrics.LabeledSnapshot{{Snap: s.cfg.Metrics.Snapshot()}}
	snaps := s.agg.Snapshots()
	ids := make([]string, 0, len(snaps))
	for id := range snaps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		series = append(series, metrics.LabeledSnapshot{
			Labels: []metrics.Label{{Key: "worker", Value: id}},
			Snap:   snaps[id],
		})
	}
	return metrics.WritePromSeries(w, "whowas", series)
}

// recordLocked appends one status-history record for the given event.
// Callers hold s.mu; the history ring and the budget take only leaf
// locks, so the ordering s.mu → history/budget is safe.
func (s *Server) recordLocked(event, worker string) {
	s.agg.History().Append(s.statusRecordLocked(event, worker))
}

// recordRoundEndLocked appends the round_end record. It runs after
// s.round was cleared, so the finished round's identity comes from r.
func (s *Server) recordRoundEndLocked(r *roundState, degraded bool) {
	rec := s.statusRecordLocked("round_end", "")
	rec.Round = r.idx
	rec.Day = r.day
	rec.ShardsDone = r.nDone
	rec.Degraded = degraded
	s.agg.History().Append(rec)
}

// statusRecordLocked builds a history record from live state; callers
// hold s.mu.
func (s *Server) statusRecordLocked(event, worker string) fleetobs.StatusRecord {
	now := s.now()
	rec := fleetobs.StatusRecord{
		TimeMS:           now.UnixMilli(),
		Event:            event,
		Worker:           worker,
		Round:            -1,
		RoundsDone:       s.roundsDone,
		LeasesExpired:    s.mExpired.Load(),
		ShardsReassigned: s.mReassigned.Load(),
		Rate:             s.budget.Rate(),
		LeasedRate:       s.budget.Leased(),
		Leases:           s.leaseStates(now),
	}
	if r := s.round; r != nil {
		rec.Round = r.idx
		rec.Day = r.day
		rec.ShardsPending = len(r.pending)
		rec.ShardsDone = r.nDone
		rec.ShardsAssigned = len(s.shards) - len(r.pending) - r.nDone
		rec.Degraded = r.degraded
	}
	if !s.unlimited && rec.Rate > 0 {
		rec.QuotaUtilization = rec.LeasedRate / rec.Rate
	}
	return rec
}

// wake nudges the round loop after a state change. Always called with
// s.mu released — a send under the lock would invert the loop's
// lock/recv order.
func (s *Server) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// reapLocked expires dead leases and re-queues their unfinished
// shards, recording each expiry in the status history. Callers hold
// s.mu.
func (s *Server) reapLocked() {
	for _, id := range s.budget.Reap() {
		s.mExpired.Inc()
		s.requeueLocked(id)
		s.recordLocked("lease_expired", id)
	}
}

// requeueLocked returns a worker's assigned-but-unfinished shards to
// the pending queue. Callers hold s.mu.
func (s *Server) requeueLocked(worker string) {
	r := s.round
	if r == nil {
		return
	}
	for shard, owner := range r.owner {
		if owner == worker && !r.done[shard] {
			r.owner[shard] = ""
			r.pending = append(r.pending, shard)
			s.mReassigned.Inc()
		}
	}
}

// Run drives the campaign: one round per scheduled day, each waiting
// until every shard has been submitted (re-assigning as leases die),
// then finalizing through the same store path as the in-process
// round. After the last round, workers asking for work are told to
// exit.
func (s *Server) Run(ctx context.Context) error {
	for i, day := range s.days {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.runRound(ctx, i, day); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.campaignDone = true
	s.recordLocked("campaign_done", "")
	s.mu.Unlock()
	s.wake()
	return nil
}

func (s *Server) runRound(ctx context.Context, idx, day int) error {
	if err := s.cloud.SetDay(ctx, day); err != nil {
		return fmt.Errorf("coord: round %d: %w", idx, err)
	}
	if _, err := s.st.BeginRound(day); err != nil {
		return err
	}
	r := &roundState{
		idx:     idx,
		day:     day,
		start:   time.Now(),
		pending: make([]int, len(s.shards)),
		owner:   make([]string, len(s.shards)),
		done:    make([]bool, len(s.shards)),
		results: make([]*core.ShardResult, len(s.shards)),
	}
	for i := range s.shards {
		r.pending[i] = i
	}
	// The coordinator's round span mirrors the in-process round's root:
	// accepted worker spans reparent under it, so the merged journal's
	// per-round breakdown reads like a single-process campaign's.
	r.span = s.cfg.Tracer.Start("round", nil,
		trace.Int("round", idx), trace.Int("day", day))
	s.mu.Lock()
	s.round = r
	s.recordLocked("round_begin", "")
	s.mu.Unlock()

	// Reap on a quarter-TTL cadence so a dead worker's shards are
	// back in the queue well before the survivors go idle.
	reapTick := time.NewTicker(s.cfg.LeaseTTL / 4)
	defer reapTick.Stop()
	var deadline <-chan time.Time
	if s.cfg.RoundTimeout > 0 {
		t := time.NewTimer(s.cfg.RoundTimeout)
		defer t.Stop()
		deadline = t.C
	}
	timedOut := false
	for {
		s.mu.Lock()
		s.reapLocked()
		complete := r.nDone == len(s.shards)
		s.mu.Unlock()
		if complete || timedOut {
			break
		}
		select {
		case <-ctx.Done():
			// A cancelled campaign must not wedge the store on an open
			// round; drop the partial round like runRound does.
			s.mu.Lock()
			s.round = nil
			s.mu.Unlock()
			_ = s.st.AbortRound()
			r.span.SetAttr(trace.String("error", "cancelled"))
			r.span.End()
			return ctx.Err()
		case <-deadline:
			timedOut = true
		case <-s.notify:
		case <-reapTick.C:
		}
	}

	s.mu.Lock()
	s.round = nil
	degraded := r.degraded || timedOut
	s.mu.Unlock()

	var probed int64
	for _, res := range r.results {
		if res == nil {
			continue
		}
		for _, reg := range res.Regions {
			probed += reg.Stats.Probed
		}
	}
	s.st.AddProbed(probed)
	if degraded {
		if err := s.st.MarkDegraded(); err != nil {
			r.span.End()
			return err
		}
	}
	if err := s.st.EndRound(); err != nil {
		r.span.End()
		return err
	}

	report := s.buildReport(r, degraded)
	r.span.SetAttr(
		trace.Int64("records", report.Records),
		trace.Bool("degraded", degraded),
	)
	r.span.End()
	s.mu.Lock()
	s.reports = append(s.reports, report)
	s.roundsDone++
	s.recordRoundEndLocked(r, degraded)
	s.mu.Unlock()
	s.mRounds.Inc()
	if s.cfg.Observer != nil {
		s.cfg.Observer(report)
	}
	return nil
}

// buildReport folds the accepted shard results into a RoundReport
// with regions in address-range order, matching the in-process
// round's report shape. A region whose shard never completed (the
// round timed out first) reports zero counts and Degraded.
func (s *Server) buildReport(r *roundState, degraded bool) core.RoundReport {
	byRegion := make(map[string]core.RegionResult)
	shardDegraded := make(map[string]bool)
	for shard, res := range r.results {
		if res == nil {
			for _, name := range s.shards[shard] {
				shardDegraded[name] = true
			}
			continue
		}
		for _, reg := range res.Regions {
			byRegion[reg.Region] = reg
			if res.Degraded && !reg.ScanDone {
				shardDegraded[reg.Region] = true
			}
		}
	}
	report := core.RoundReport{
		Round:    r.idx,
		Day:      r.day,
		Degraded: degraded,
		Total:    time.Since(r.start),
	}
	for _, name := range flatten(s.shards) {
		rr, ok := byRegion[name]
		reg := core.RegionReport{
			Region:   name,
			Degraded: degraded && (!ok || shardDegraded[name]),
		}
		if ok {
			reg.Probed = rr.Stats.Probed
			reg.Skipped = rr.Stats.Skipped
			reg.Responsive = rr.Stats.Responsive
			reg.Fetched = rr.Fetched
			reg.Records = rr.Records
			report.Probes += rr.Stats.Probes
			report.Retries += rr.Stats.Retries
			report.RobotsDenied += rr.RobotsDenied
			report.FetchErrors += rr.FetchErrors
			report.BodyBytes += rr.BodyBytes
		}
		report.Regions = append(report.Regions, reg)
		report.Probed += reg.Probed
		report.Skipped += reg.Skipped
		report.Responsive += reg.Responsive
		report.Fetched += reg.Fetched
		report.Records += reg.Records
	}
	return report
}

// flatten restores the region address-range order from the
// round-robin shard layout (shard i holds regions i, i+n, i+2n, ...).
func flatten(shards [][]string) []string {
	var out []string
	for col := 0; ; col++ {
		added := false
		for _, sh := range shards {
			if col < len(sh) {
				out = append(out, sh[col])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

// DrainWorkers blocks until every worker has been told the campaign
// is done and released its lease (or ctx expires). Call after Run so
// a clean shutdown leaves no orphaned workers polling.
func (s *Server) DrainWorkers(ctx context.Context) error {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		if len(s.budget.Holders()) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.notify:
		case <-tick.C:
		}
	}
}

// Shutdown stops the protocol server, closes the cloud client and
// releases the store backend. Idempotent; safe on a server never
// started.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		if s.ops != nil {
			s.closeErr = s.ops.Shutdown(ctx)
		}
		if err := s.cloud.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		// A shutdown mid-round abandons the open round — the backend
		// holds only finalized rounds either way — so the abort error
		// ("no open round" in the normal case) is deliberately ignored.
		_ = s.st.AbortRound()
		if err := s.st.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// --- protocol handlers ---

func decodeBody(w http.ResponseWriter, req *http.Request, v any) bool {
	if err := json.NewDecoder(req.Body).Decode(v); err != nil {
		ops.WriteError(w, http.StatusBadRequest, fmt.Sprintf("coord: bad request: %v", err))
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, req *http.Request) {
	var rr RegisterRequest
	if !decodeBody(w, req, &rr) {
		return
	}
	if rr.Worker == "" {
		ops.WriteError(w, http.StatusBadRequest, "coord: worker ID required")
		return
	}
	s.mu.Lock()
	s.reapLocked()
	_, err := s.budget.Acquire(rr.Worker, s.slice)
	if err == nil {
		// A re-registering worker lost its session state; its old
		// assignments must go back in the queue.
		s.requeueLocked(rr.Worker)
		s.recordLocked("register", rr.Worker)
	}
	s.mu.Unlock()
	if err != nil {
		ops.WriteError(w, http.StatusConflict, err.Error())
		return
	}
	s.mRegistered.Inc()
	s.wake()
	ops.WriteJSON(w, RegisterReply{
		Lease:          rr.Worker,
		Rate:           s.slice,
		Unlimited:      s.unlimited,
		TTLMS:          s.cfg.LeaseTTL.Milliseconds(),
		CloudAddr:      s.cfg.CloudAddr,
		Attempts:       s.cfg.Attempts,
		KeepBodies:     s.cfg.KeepBodies,
		RoundTimeoutMS: s.cfg.RoundTimeout.Milliseconds(),
		Faults:         s.cfg.Faults,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var hb HeartbeatRequest
	if !decodeBody(w, req, &hb) {
		return
	}
	if _, err := s.budget.Renew(hb.Worker); err != nil {
		ops.WriteError(w, http.StatusGone, err.Error())
		return
	}
	s.agg.Observe(hb.Obs, s.now())
	ops.WriteJSON(w, HeartbeatReply{ExpiresInMS: s.cfg.LeaseTTL.Milliseconds()})
}

func (s *Server) handleNext(w http.ResponseWriter, req *http.Request) {
	var nr NextRequest
	if !decodeBody(w, req, &nr) {
		return
	}
	if _, err := s.budget.Renew(nr.Worker); err != nil {
		ops.WriteError(w, http.StatusGone, err.Error())
		return
	}
	var a Assignment
	released := false
	s.mu.Lock()
	switch r := s.round; {
	case r != nil && len(r.pending) > 0:
		shard := r.pending[0]
		r.pending = r.pending[1:]
		r.owner[shard] = nr.Worker
		a = Assignment{
			State:   StateRun,
			Round:   r.idx,
			Day:     r.day,
			Shard:   shard,
			Regions: s.shards[shard],
		}
		s.mAssigned.Inc()
	case s.campaignDone && s.round == nil:
		a = Assignment{State: StateDone}
		released = s.budget.Release(nr.Worker) == nil
	default:
		a = Assignment{State: StateWait, RetryMS: defaultRetryMS}
	}
	s.mu.Unlock()
	if released {
		s.wake()
	}
	ops.WriteJSON(w, a)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var sr SubmitRequest
	if !decodeBody(w, req, &sr) {
		return
	}
	accepted := false
	var putErr error
	var rootID uint64
	s.mu.Lock()
	r := s.round
	if r != nil && sr.Round == r.idx &&
		sr.Shard >= 0 && sr.Shard < len(r.done) &&
		!r.done[sr.Shard] && r.owner[sr.Shard] == sr.Worker {
		if putErr = s.st.PutBatch(sr.Result.Records); putErr == nil {
			res := sr.Result
			r.done[sr.Shard] = true
			r.results[sr.Shard] = &res
			r.nDone++
			if res.Degraded {
				r.degraded = true
			}
			accepted = true
			rootID = r.span.ID()
			s.recordLocked("submit", sr.Worker)
		}
	}
	s.mu.Unlock()
	if putErr != nil {
		ops.WriteError(w, http.StatusInternalServerError, putErr.Error())
		return
	}
	s.agg.Observe(sr.Obs, s.now())
	if accepted {
		// Merge the shard's spans into the coordinator's journal:
		// renumber into this tracer's ID space, parent under the round
		// span, and stamp with the worker identity. Stale submissions'
		// spans are discarded with the records.
		if s.cfg.Tracer != nil && len(sr.Spans) > 0 {
			base := s.cfg.Tracer.ReserveIDs(len(sr.Spans))
			s.cfg.Tracer.Record(fleetobs.RestampSpans(sr.Spans, base, rootID,
				fleetobs.WorkerAttrs(sr.Worker, sr.Round, sr.Shard))...)
		}
		s.mCompleted.Inc()
		s.wake()
	} else {
		s.mRejected.Inc()
	}
	ops.WriteJSON(w, SubmitReply{Accepted: accepted})
}

// statusDoc assembles the live Status document.
func (s *Server) statusDoc() Status {
	s.mu.Lock()
	st := Status{
		Cloud:           s.st.CloudName,
		RoundsTotal:     len(s.days),
		RoundsCompleted: s.roundsDone,
		Done:            s.campaignDone,
		Round:           -1,
		Rate:            s.budget.Rate(),
		Unlimited:       s.unlimited,
	}
	if r := s.round; r != nil {
		st.Round = r.idx
		st.Day = r.day
		st.ShardsPending = len(r.pending)
		st.ShardsDone = r.nDone
		st.ShardsAssigned = len(s.shards) - len(r.pending) - r.nDone
	}
	s.mu.Unlock()
	st.Workers = s.budget.Holders()
	st.LeasedRate = s.budget.Leased()
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	ops.WriteJSON(w, s.statusDoc())
}

// handleFleet serves the aggregated fleet view: the live status plus
// per-worker throughput, lease states, merged fleet metrics, and the
// status-history tail.
func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	now := s.now()
	ops.WriteJSON(w, Fleet{
		Status:    s.statusDoc(),
		FleetView: s.agg.View(now, s.leaseStates(now)),
	})
}
