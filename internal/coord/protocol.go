// Package coord is the distributed campaign: a coordinator that owns
// the round schedule, the region-shard assignment, the one store, and
// the global §7 probe-rate budget as a leased-quota service
// (internal/ratelimit.Budget), plus the worker that leases a slice of
// that budget and runs assigned shards through core.ShardRunner
// against a shared whowas-cloudd.
//
// The protocol is internal/ops-style JSON over HTTP, mounted on an
// ops.Server beside the standard observability surface:
//
//	POST /coord/register   RegisterRequest  → RegisterReply (409 when the budget is full)
//	POST /coord/heartbeat  HeartbeatRequest → HeartbeatReply (410 when the lease is gone)
//	POST /coord/next       NextRequest      → Assignment     (410 when the lease is gone)
//	POST /coord/submit     SubmitRequest    → SubmitReply
//	GET  /coord/status                      → Status
//
// Liveness is the lease: a worker that stops renewing (heartbeat or
// /next, both renew) expires after the TTL, its tokens return to the
// global budget, and its unfinished shards are re-queued for the
// surviving workers — a killed worker degrades the fleet exactly like
// a blackout scenario degrades the network, and the round completes
// under RoundTimeout instead of hanging. The coordinator merges shard
// submissions through the same store path EndRound always used, so
// the round digest is byte-identical for any worker count.
package coord

import (
	"whowas/internal/core"
	"whowas/internal/faults"
	"whowas/internal/fleetobs"
	"whowas/internal/trace"
)

// RegisterRequest announces a worker and asks for a budget lease.
// Re-registering under the same worker ID replaces the old lease and
// re-queues any shards the previous session left unfinished.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterReply grants a lease and carries everything the worker
// needs to build its shard runner: where the shared cloud daemon
// lives and the campaign knobs that must match across the fleet for
// the digest to stay byte-identical.
type RegisterReply struct {
	Lease string `json:"lease"` // lease ID (the worker ID)
	// Rate is the worker's leased slice of the global §7 probe budget,
	// in probes per second. When Unlimited is set the campaign runs at
	// simulation speed and the worker uses scanner.UnlimitedRate
	// instead.
	Rate      float64 `json:"rate"`
	Unlimited bool    `json:"unlimited"`
	// TTLMS is the lease lifetime; heartbeat well inside it.
	TTLMS     int64  `json:"ttl_ms"`
	CloudAddr string `json:"cloud_addr"`
	// Campaign knobs mirrored from the coordinator's config.
	Attempts       int              `json:"attempts,omitempty"`
	KeepBodies     bool             `json:"keep_bodies,omitempty"`
	RoundTimeoutMS int64            `json:"round_timeout_ms,omitempty"`
	Faults         *faults.Scenario `json:"faults,omitempty"`
}

// HeartbeatRequest renews a worker's lease. Obs, when present, is the
// worker's current observability report — the fleet view's freshness
// rides on the same cadence as liveness.
type HeartbeatRequest struct {
	Worker string                 `json:"worker"`
	Obs    *fleetobs.WorkerReport `json:"obs,omitempty"`
}

// HeartbeatReply reports the renewed lease's remaining lifetime.
type HeartbeatReply struct {
	ExpiresInMS int64 `json:"expires_in_ms"`
}

// NextRequest asks for the worker's next assignment (renewing the
// lease as a side effect).
type NextRequest struct {
	Worker string `json:"worker"`
}

// Assignment states.
const (
	// StateRun carries a shard to execute.
	StateRun = "run"
	// StateWait means nothing is assignable right now; poll again
	// after RetryMS.
	StateWait = "wait"
	// StateDone means the campaign is complete; the lease has been
	// released and the worker should exit.
	StateDone = "done"
)

// Assignment is the coordinator's answer to /coord/next.
type Assignment struct {
	State   string   `json:"state"` // StateRun, StateWait or StateDone
	Round   int      `json:"round,omitempty"`
	Day     int      `json:"day,omitempty"`
	Shard   int      `json:"shard,omitempty"`
	Regions []string `json:"regions,omitempty"`
	RetryMS int64    `json:"retry_ms,omitempty"`
}

// SubmitRequest streams one completed shard back. The coordinator
// accepts exactly one submission per (round, shard), and only from
// the shard's current owner — a stale submission after re-assignment
// or a round timeout is answered Accepted=false and discarded.
type SubmitRequest struct {
	Worker string           `json:"worker"`
	Round  int              `json:"round"`
	Shard  int              `json:"shard"`
	Result core.ShardResult `json:"result"`
	// Obs is the worker's observability report as of this submission.
	Obs *fleetobs.WorkerReport `json:"obs,omitempty"`
	// Spans is the worker's span buffer drained for this shard: the
	// coordinator renumbers them into its own tracer, parents them
	// under the round's span, and stamps each with the worker identity
	// — so its journal reconstructs the distributed campaign alone.
	// Spans from an unaccepted (stale) submission are discarded with it.
	Spans []trace.SpanSnapshot `json:"spans,omitempty"`
}

// SubmitReply acknowledges a submission.
type SubmitReply struct {
	Accepted bool `json:"accepted"`
}

// Status is the coordinator's live state document (GET /coord/status).
type Status struct {
	Cloud           string   `json:"cloud"`
	RoundsTotal     int      `json:"rounds_total"`
	RoundsCompleted int      `json:"rounds_completed"`
	Done            bool     `json:"done"`
	Round           int      `json:"round"` // current round index, -1 when idle
	Day             int      `json:"day,omitempty"`
	ShardsPending   int      `json:"shards_pending"`
	ShardsAssigned  int      `json:"shards_assigned"`
	ShardsDone      int      `json:"shards_done"`
	Workers         []string `json:"workers"` // live lease holders, sorted
	Rate            float64  `json:"rate"`
	LeasedRate      float64  `json:"leased_rate"`
	Unlimited       bool     `json:"unlimited,omitempty"`
}

// Fleet is the /coord/fleet document: the live Status plus the
// aggregated per-worker and fleet-total observability view (metrics,
// probe throughput, lease states, and the status-history tail).
type Fleet struct {
	Status Status `json:"status"`
	fleetobs.FleetView
}
