package coord

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/metrics"
)

// TestShutdownReleasesGoroutines cancels a campaign mid-round — a
// worker mid-shard, the coordinator mid-wait — then shuts everything
// down and asserts the whole stack (coordinator ops server, worker
// HTTP client, cloud clients, cloudd fleet) unwinds: no goroutines
// leak and every Close/Shutdown is idempotent.
func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	backing, err := cloudapi.NewInProcess(coordCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	cloudd := cloudapi.NewServer(backing, cloudapi.ServerConfig{DataListeners: 2})
	clouddAddr, err := cloudd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, Config{
		CloudAddr: clouddAddr,
		Rounds:    []int{0},
		LeaseTTL:  5 * time.Second,
		Metrics:   metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	w, err := NewWorker(WorkerConfig{Coordinator: addr, ID: "leakcheck"})
	if err != nil {
		t.Fatal(err)
	}
	assigned := make(chan struct{})
	w.testOnAssign = func(Assignment) {
		select {
		case <-assigned:
		default:
			close(assigned)
		}
	}
	workErr := make(chan error, 1)
	go func() { workErr <- w.Run(ctx) }()

	select {
	case <-assigned:
	case <-time.After(time.Minute):
		t.Fatal("worker never received an assignment")
	}
	// Let the shard get into flight, then pull the plug on everyone.
	time.Sleep(50 * time.Millisecond)
	cancel()

	if err := <-runErr; !errors.Is(err, context.Canceled) {
		t.Errorf("coordinator run = %v, want context.Canceled", err)
	}
	if err := <-workErr; !errors.Is(err, context.Canceled) {
		t.Errorf("worker run = %v, want context.Canceled", err)
	}
	// An aborted campaign must leave the store unwedged (no open round).
	if _, err := srv.Store().Digest(); err != nil {
		t.Errorf("store digest after abort: %v", err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Errorf("coordinator shutdown: %v", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		t.Errorf("second coordinator shutdown: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("worker close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second worker close: %v", err)
	}
	if err := cloudd.Shutdown(sctx); err != nil {
		t.Errorf("cloudd shutdown: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines: %d before, %d after shutdown", before, n)
	}
}
