package blacklist

import (
	"testing"

	"whowas/internal/cloudsim"
	"whowas/internal/websim"
)

func buildTestFeeds(t testing.TB, kind string) (*Feeds, *cloudsim.Cloud) {
	t.Helper()
	var cfg cloudsim.Config
	if kind == "azure" {
		cfg = cloudsim.DefaultAzureConfig(64, 31)
	} else {
		cfg = cloudsim.DefaultEC2Config(512, 31)
	}
	cloud, err := cloudsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return BuildFeeds(cloud), cloud
}

func TestSafeBrowsingFlagsKnownURLs(t *testing.T) {
	feeds, cloud := buildTestFeeds(t, "ec2")
	if feeds.SafeBrowsing.KnownURLs() == 0 {
		t.Fatal("Safe Browsing knows no URLs")
	}
	// Every malicious service URL must be flagged on some day.
	flagged := 0
	for _, svc := range cloud.MaliciousServices() {
		for _, u := range svc.Malicious.AllURLs() {
			for d := 0; d < cloud.Days(); d++ {
				if feeds.SafeBrowsing.Lookup(u, d) != OK {
					flagged++
					break
				}
			}
		}
	}
	if flagged == 0 {
		t.Error("no ground-truth URL ever flagged")
	}
}

func TestSafeBrowsingLag(t *testing.T) {
	feeds, cloud := buildTestFeeds(t, "ec2")
	// Detection must lag content: a URL must not be flagged before its
	// service first serves it.
	for _, svc := range cloud.MaliciousServices() {
		mb := &svc.Malicious
		for _, u := range mb.AllURLs() {
			first, _ := urlActiveWindow(mb, u, cloud.Days())
			if first < 0 {
				continue
			}
			for d := 0; d < first; d++ {
				if feeds.SafeBrowsing.Lookup(u, d) != OK {
					t.Fatalf("URL %q flagged on day %d, first served day %d", u, d, first)
				}
			}
		}
	}
}

func TestSafeBrowsingVerdictKinds(t *testing.T) {
	feeds, cloud := buildTestFeeds(t, "ec2")
	var sawPhishing, sawMalware bool
	for _, svc := range cloud.MaliciousServices() {
		for _, u := range svc.Malicious.AllURLs() {
			for d := 0; d < cloud.Days(); d += 3 {
				switch feeds.SafeBrowsing.Lookup(u, d) {
				case PhishingVerdict:
					sawPhishing = true
					if svc.Malicious.Kind != websim.Phishing {
						t.Fatalf("URL %q verdict phishing but service kind %v", u, svc.Malicious.Kind)
					}
				case MalwareVerdict:
					sawMalware = true
					if svc.Malicious.Kind != websim.Malware {
						t.Fatalf("URL %q verdict malware but service kind %v", u, svc.Malicious.Kind)
					}
				}
			}
		}
	}
	if !sawMalware {
		t.Error("no malware verdicts")
	}
	if !sawPhishing {
		t.Error("no phishing verdicts")
	}
}

func TestSafeBrowsingUnknownURL(t *testing.T) {
	feeds, _ := buildTestFeeds(t, "ec2")
	if v := feeds.SafeBrowsing.Lookup("http://benign.example.com/", 10); v != OK {
		t.Errorf("unknown URL verdict = %v", v)
	}
}

func TestVirusTotalConsensusFiltersNoise(t *testing.T) {
	feeds, cloud := buildTestFeeds(t, "ec2")
	vt := feeds.VirusTotal
	all := vt.AllReports()
	if len(all) == 0 {
		t.Fatal("no VT reports")
	}
	consensus := vt.MaliciousIPs(2)
	if len(consensus) == 0 {
		t.Fatal("no >=2-engine malicious IPs")
	}
	if len(consensus) >= len(all) {
		t.Error("consensus rule filtered nothing; noise reports missing")
	}
	// Every consensus IP must belong to a malicious service on its
	// first-detection day (no false positives past the filter).
	for _, ip := range consensus {
		rep := vt.Report(ip)
		day := rep.FirstDetection()
		st := cloud.StateAt(day, ip)
		svc := cloud.ServiceByID(st.ServiceID)
		if svc == nil || svc.Malicious.Type == 0 {
			t.Errorf("consensus IP %s not on a malicious service on day %d", ip, day)
		}
	}
}

func TestVirusTotalReportAccessors(t *testing.T) {
	feeds, _ := buildTestFeeds(t, "ec2")
	ips := feeds.VirusTotal.MaliciousIPs(2)
	rep := feeds.VirusTotal.Report(ips[0])
	if rep == nil {
		t.Fatal("nil report for consensus IP")
	}
	if rep.Engines() < 2 {
		t.Errorf("Engines = %d", rep.Engines())
	}
	if len(rep.URLs()) == 0 {
		t.Error("no URLs in report")
	}
	if rep.FirstDetection() < 0 || rep.LastDetection() < rep.FirstDetection() {
		t.Errorf("detection window [%d,%d]", rep.FirstDetection(), rep.LastDetection())
	}
	var empty Report
	if empty.FirstDetection() != -1 || empty.LastDetection() != -1 {
		t.Error("empty report detections not -1")
	}
}

func TestAzureHasNoVTReportsOfConsensus(t *testing.T) {
	feeds, _ := buildTestFeeds(t, "azure")
	if got := feeds.VirusTotal.MaliciousIPs(2); len(got) != 0 {
		t.Errorf("Azure has %d VT consensus IPs, want 0 (paper found none)", len(got))
	}
	// Safe Browsing still sees Azure malware.
	if feeds.SafeBrowsing.KnownURLs() == 0 {
		t.Error("Azure Safe Browsing feed empty")
	}
}

func TestDetectionLagDistribution(t *testing.T) {
	// Types 1/3 should be detected faster than type 2 on average.
	var sum13, n13, sum2, n2 int
	for i := uint64(0); i < 2000; i++ {
		sum13 += detectionLag(1, 1, i)
		n13++
		sum13 += detectionLag(1, 3, i*7+3)
		n13++
		sum2 += detectionLag(1, 2, i*13+5)
		n2++
	}
	avg13 := float64(sum13) / float64(n13)
	avg2 := float64(sum2) / float64(n2)
	if avg13 >= avg2 {
		t.Errorf("type-1/3 lag %.2f not below type-2 lag %.2f", avg13, avg2)
	}
	if avg13 > 3.5 {
		t.Errorf("type-1/3 mean lag %.2f too slow (paper: ~90%% within 3 days)", avg13)
	}
}

func TestDomainOf(t *testing.T) {
	cases := map[string]string{
		"http://dl.dropbox.com/s/abc": "dl.dropbox.com",
		"https://tr.im/x":             "tr.im",
		"http://host.example:8080/p":  "host.example",
		"not a url at all ::":         "",
		"":                            "",
		"/relative/path":              "",
	}
	for in, want := range cases {
		if got := DomainOf(in); got != want {
			t.Errorf("DomainOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMaliciousDomainsSkewToFileHosting(t *testing.T) {
	feeds, _ := buildTestFeeds(t, "ec2")
	counts := map[string]int{}
	for u := range feeds.SafeBrowsing.byURL {
		counts[DomainOf(u)]++
	}
	// Table 18: dropbox domains dominate.
	dropbox := counts["dl.dropboxusercontent.com"] + counts["dl.dropbox.com"]
	if dropbox == 0 {
		t.Error("no dropbox-family malicious URLs generated")
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if frac := float64(dropbox) / float64(total); frac < 0.2 {
		t.Errorf("dropbox-family share = %.3f, want dominant (~0.5)", frac)
	}
}

func BenchmarkBuildFeeds(b *testing.B) {
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(512, 31))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFeeds(cloud)
	}
}
