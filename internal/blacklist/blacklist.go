// Package blacklist simulates the two threat-intelligence feeds the
// paper joins WhoWas data against in §8.2: a Google-Safe-Browsing-like
// URL lookup service and a VirusTotal-like multi-engine IP report
// aggregator.
//
// Both feeds are built from the cloud simulator's malicious ground
// truth, with per-URL/per-engine detection lag so the paper's lag-time
// analysis (Figure 19) has something real to measure: blacklists see a
// malicious page some days after it goes up, and keep reporting it for
// a while after it goes down.
package blacklist

import (
	"net/url"
	"sort"
	"strings"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// Verdict is a Safe-Browsing lookup result.
type Verdict int

// Safe-Browsing verdicts per the API the paper used.
const (
	OK Verdict = iota
	PhishingVerdict
	MalwareVerdict
)

func (v Verdict) String() string {
	switch v {
	case PhishingVerdict:
		return "phishing"
	case MalwareVerdict:
		return "malware"
	default:
		return "ok"
	}
}

// urlRecord is the flagging window of one malicious URL.
type urlRecord struct {
	kind        websim.MaliciousKind
	flaggedFrom int // first day the feed flags the URL
	flaggedTo   int // first day the feed no longer flags it
}

// SafeBrowsing answers URL lookups with day-dependent verdicts.
type SafeBrowsing struct {
	byURL map[string]urlRecord
	// Lookups counts queries (the paper queried ~3.2M distinct URLs
	// per round).
	Lookups int64
}

// StaticEntry is one URL's flagging window for NewSafeBrowsingStatic.
type StaticEntry struct {
	Kind websim.MaliciousKind
	// FlaggedFrom/FlaggedTo bound the days the feed flags the URL
	// (half-open interval).
	FlaggedFrom, FlaggedTo int
}

// NewSafeBrowsingStatic builds a feed from explicit entries — for
// tests, and for loading an externally collected blacklist instead of
// the simulated one.
func NewSafeBrowsingStatic(entries map[string]StaticEntry) *SafeBrowsing {
	sb := &SafeBrowsing{byURL: make(map[string]urlRecord, len(entries))}
	for u, e := range entries {
		sb.byURL[u] = urlRecord{kind: e.Kind, flaggedFrom: e.FlaggedFrom, flaggedTo: e.FlaggedTo}
	}
	return sb
}

// Lookup returns the verdict for a URL on a given day.
func (sb *SafeBrowsing) Lookup(rawURL string, day int) Verdict {
	sb.Lookups++
	rec, ok := sb.byURL[rawURL]
	if !ok || day < rec.flaggedFrom || day >= rec.flaggedTo {
		return OK
	}
	if rec.kind == websim.Phishing {
		return PhishingVerdict
	}
	return MalwareVerdict
}

// KnownURLs returns how many URLs the feed ever flags.
func (sb *SafeBrowsing) KnownURLs() int { return len(sb.byURL) }

// Engine names for the VirusTotal-like aggregator.
var engineNames = []string{
	"UrlHaus", "PhishGuard", "NetShield", "CleanWeb", "SiteCheck",
	"MalDomain", "ThreatSeer", "WebSentry", "DarkList", "SafeGate",
}

// Detection is one engine's record of malicious activity on an IP.
type Detection struct {
	Engine   string
	FirstDay int // first day the engine flagged the IP
	LastDay  int // last day the engine still flagged it
	URL      string
}

// Report is a VirusTotal-like IP report.
type Report struct {
	IP         ipaddr.Addr
	Detections []Detection
	// Domains is the passive-DNS section of the report.
	Domains []string
}

// Engines returns the number of distinct engines with detections.
func (r *Report) Engines() int {
	seen := map[string]bool{}
	for _, d := range r.Detections {
		seen[d.Engine] = true
	}
	return len(seen)
}

// URLs returns the distinct malicious URLs across detections.
func (r *Report) URLs() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range r.Detections {
		if d.URL != "" && !seen[d.URL] {
			seen[d.URL] = true
			out = append(out, d.URL)
		}
	}
	sort.Strings(out)
	return out
}

// FirstDetection returns the earliest detection day, or -1.
func (r *Report) FirstDetection() int {
	first := -1
	for _, d := range r.Detections {
		if first == -1 || d.FirstDay < first {
			first = d.FirstDay
		}
	}
	return first
}

// LastDetection returns the latest detection day, or -1.
func (r *Report) LastDetection() int {
	last := -1
	for _, d := range r.Detections {
		if d.LastDay > last {
			last = d.LastDay
		}
	}
	return last
}

// VirusTotal holds per-IP reports collected after the campaign (the
// paper pulled reports in Feb 2014 covering Sep 30–Dec 31 2013).
type VirusTotal struct {
	reports map[ipaddr.Addr]*Report
}

// Report returns the report for an IP, or nil when the aggregator has
// nothing on it.
func (vt *VirusTotal) Report(ip ipaddr.Addr) *Report { return vt.reports[ip] }

// MaliciousIPs returns IPs flagged by at least minEngines engines (the
// paper uses 2 to reduce false positives).
func (vt *VirusTotal) MaliciousIPs(minEngines int) []ipaddr.Addr {
	var out []ipaddr.Addr
	for ip, r := range vt.reports {
		if r.Engines() >= minEngines {
			out = append(out, ip)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllReports returns every report, sorted by IP.
func (vt *VirusTotal) AllReports() []*Report {
	var out []*Report
	for _, r := range vt.reports {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// hashDet derives deterministic per-entity draws for lags.
func hashDet(seed int64, parts ...uint64) uint64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		x ^= p
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
	}
	return x
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Feeds bundles both blacklists for one cloud.
type Feeds struct {
	SafeBrowsing *SafeBrowsing
	VirusTotal   *VirusTotal
}

// BuildFeeds constructs the blacklists from the cloud's malicious
// ground truth. Detection lags: most pages are flagged within three
// days of going up (Figure 19 left: ~90% of type 1/3 within 3 days,
// type 2 slower); delisting lags a few days behind content removal.
func BuildFeeds(cloud *cloudsim.Cloud) *Feeds {
	seed := cloud.Config().Seed
	sb := &SafeBrowsing{byURL: make(map[string]urlRecord)}
	vt := &VirusTotal{reports: make(map[ipaddr.Addr]*Report)}

	for _, svc := range cloud.MaliciousServices() {
		mb := &svc.Malicious
		// Per-URL Safe-Browsing windows.
		for _, u := range mb.AllURLs() {
			upFrom, upTo := urlActiveWindow(mb, u, cloud.Days())
			if upFrom < 0 {
				continue
			}
			lag := detectionLag(seed, mb.Type, hashString(u))
			delist := 2 + int(hashDet(seed, hashString(u), 77)%5)
			sb.byURL[u] = urlRecord{
				kind:        mb.Kind,
				flaggedFrom: upFrom + lag,
				flaggedTo:   upTo + delist,
			}
		}
		// VirusTotal engine detections per IP the service held while
		// malicious. Azure-like clouds produced no VT hits in the
		// paper; reproduce that by skipping them.
		if cloud.Config().Kind == websim.AzureLike {
			continue
		}
		for day := mb.ActiveFrom; day < mb.ActiveTo && day < cloud.Days(); day++ {
			urls, active := mb.ActiveOn(day)
			if !active {
				continue
			}
			for _, ip := range cloud.AssignedIPs(day, svc.ID) {
				// Coverage is per-IP incomplete: aggregators see the
				// URLs and whichever addresses their crawls resolved,
				// not a deployment's full footprint. The unseen IPs
				// are exactly what the paper's co-clustering expansion
				// (+191 IPs) recovers.
				if hashDet(seed, svc.ID, uint64(ip))%100 < 30 {
					continue
				}
				rep := vt.reports[ip]
				if rep == nil {
					rep = &Report{IP: ip}
					vt.reports[ip] = rep
				}
				recordEngines(rep, seed, svc.ID, day, urls, mb.ActiveFrom, mb.Type)
			}
		}
	}

	// Add passive-DNS domains and single-engine noise.
	if cloud.Config().Kind != websim.AzureLike {
		addNoiseReports(cloud, vt, seed)
	}
	for ip, rep := range vt.reports {
		st := cloud.StateAt(rep.FirstDetection(), ip)
		if svc := cloud.ServiceByID(st.ServiceID); svc != nil && svc.Profile.Domain != "" {
			rep.Domains = append(rep.Domains, svc.Profile.Domain)
		}
	}
	return &Feeds{SafeBrowsing: sb, VirusTotal: vt}
}

// urlActiveWindow finds the first and last day a URL is served.
func urlActiveWindow(mb *cloudsim.MaliciousBehavior, u string, days int) (from, to int) {
	from, to = -1, -1
	for d := mb.ActiveFrom; d < mb.ActiveTo && d < days; d++ {
		urls, active := mb.ActiveOn(d)
		if !active {
			continue
		}
		for _, x := range urls {
			if x == u {
				if from < 0 {
					from = d
				}
				to = d + 1
			}
		}
	}
	return from, to
}

// detectionLag draws how many days pass before a blacklist first flags
// a page. Types 1 and 3 are detected fast (~90% within 3 days); the
// flickering type 2 takes longer (~50% within 3 days).
func detectionLag(seed int64, mtype int, h uint64) int {
	r := hashDet(seed, h, uint64(mtype)) % 100
	if mtype == 2 {
		switch {
		case r < 50:
			return int(hashDet(seed, h, 1) % 4) // 0-3 days
		case r < 80:
			return 4 + int(hashDet(seed, h, 2)%6)
		default:
			return 10 + int(hashDet(seed, h, 3)%15)
		}
	}
	switch {
	case r < 90:
		return int(hashDet(seed, h, 4) % 4)
	case r < 98:
		return 4 + int(hashDet(seed, h, 5)%5)
	default:
		return 9 + int(hashDet(seed, h, 6)%10)
	}
}

// recordEngines updates a report with this day's detections. Each
// malicious service is watched by 2-5 engines (deterministic per
// service); an engine first flags the page some days after it went up
// (Figure 19 left: type 1/3 are caught fast, the flickering type 2
// slower) and tracks it for a bounded window (Figure 19 right: pages —
// especially type 2 — often stay up after the last detection).
func recordEngines(rep *Report, seed int64, svcID uint64, day int, urls []string, activeFrom, mtype int) {
	nEngines := 2 + int(hashDet(seed, svcID, 11)%4)
	for e := 0; e < nEngines; e++ {
		engineIdx := int(hashDet(seed, svcID, uint64(100+e)) % uint64(len(engineNames)))
		engine := engineNames[engineIdx]
		lag := detectionLag(seed, mtype, hashDet(seed, svcID, uint64(200+e)))
		if day < activeFrom+lag { // the engine hasn't caught it yet
			continue
		}
		// Tracking window: type-2 flicker makes engines delist early;
		// steady pages are tracked much longer.
		track := 30 + int(hashDet(seed, svcID, uint64(400+e))%90)
		if mtype == 2 {
			track = 7 + int(hashDet(seed, svcID, uint64(400+e))%21)
		}
		if day > activeFrom+lag+track { // the engine stopped tracking
			continue
		}
		u := ""
		if len(urls) > 0 {
			u = urls[int(hashDet(seed, svcID, uint64(300+e))%uint64(len(urls)))]
		}
		// Find or create the engine's detection entry.
		found := false
		for i := range rep.Detections {
			if rep.Detections[i].Engine == engine && rep.Detections[i].URL == u {
				if day > rep.Detections[i].LastDay {
					rep.Detections[i].LastDay = day
				}
				if day < rep.Detections[i].FirstDay {
					rep.Detections[i].FirstDay = day
				}
				found = true
				break
			}
		}
		if !found {
			rep.Detections = append(rep.Detections, Detection{
				Engine: engine, FirstDay: day, LastDay: day, URL: u,
			})
		}
	}
}

// addNoiseReports sprinkles single-engine false positives over clean
// IPs; the analysis's >=2-engine rule must filter these out.
func addNoiseReports(cloud *cloudsim.Cloud, vt *VirusTotal, seed int64) {
	rl := cloud.Ranges()
	total := int64(rl.Total())
	n := int(total / 500) // ~0.2% of the space gets a stray report
	for i := 0; i < n; i++ {
		idx := int64(hashDet(seed, uint64(i), 999) % uint64(total))
		ip, err := rl.AtIndex(idx)
		if err != nil {
			continue
		}
		if vt.reports[ip] != nil {
			continue // don't dilute real reports
		}
		day := int(hashDet(seed, uint64(i), 1000) % uint64(cloud.Days()))
		engine := engineNames[int(hashDet(seed, uint64(i), 1001)%uint64(len(engineNames)))]
		vt.reports[ip] = &Report{
			IP: ip,
			Detections: []Detection{{
				Engine:   engine,
				FirstDay: day,
				LastDay:  day,
				URL:      "http://fp.example/" + ip.String(),
			}},
		}
	}
}

// DomainOf extracts the hostname of a URL ("" when unparsable); the
// Table 18 analysis aggregates malicious URLs by domain.
func DomainOf(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return ""
	}
	host := u.Host
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return host
}
