// The coordinator-side half: an Aggregator folds worker reports into
// the fleet view behind /coord/fleet and the worker-labeled Prometheus
// exposition. Throughput is derived, not reported — the aggregator
// differentiates each worker's scanner.probes counter across report
// arrivals, so a worker that stops reporting visibly decays to its
// last known rate with a growing "seen ago" age rather than lying
// about current speed.
package fleetobs

import (
	"sort"
	"sync"
	"time"

	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// probesCounter is the registry key throughput derives from.
const probesCounter = "scanner.probes"

// WorkerView is one worker's row in the fleet dashboard.
type WorkerView struct {
	Worker string `json:"worker"`
	// SeenAgoMS is how long ago the worker last reported.
	SeenAgoMS int64 `json:"seen_ago_ms"`
	// ProbesPerSec is the probe rate over the most recent report
	// interval (0 until two reports have arrived).
	ProbesPerSec float64 `json:"probes_per_sec"`
	Probes       int64   `json:"probes"`
	Responsive   int64   `json:"responsive"`
	Pages        int64   `json:"pages"`
	FetchErrors  int64   `json:"fetch_errors"`
	Retries      int64   `json:"retries"`
	// Lease is the worker's current budget slice, when it holds one.
	Lease *LeaseState `json:"lease,omitempty"`
	// Metrics is the worker's full last-reported snapshot.
	Metrics metrics.Snapshot `json:"metrics"`
	// Slowest is the worker's self-reported slowest-span window.
	Slowest []trace.SpanSnapshot `json:"slowest,omitempty"`
}

// FleetView is the /coord/fleet document body: per-worker rows plus
// fleet totals.
type FleetView struct {
	Workers []WorkerView `json:"workers"`
	// Fleet is every worker's snapshot merged (MergeSnapshots — exact
	// for counters and stages, count-weighted for quantiles).
	Fleet metrics.Snapshot `json:"fleet"`
	// ProbesPerSec sums the per-worker rates.
	ProbesPerSec float64 `json:"probes_per_sec"`
	// HistoryTotal counts status records ever appended; History holds
	// the retained tail, oldest first.
	HistoryTotal int64          `json:"history_total"`
	History      []StatusRecord `json:"history"`
}

// workerState is the aggregator's per-worker bookkeeping.
type workerState struct {
	report   WorkerReport
	lastSeen time.Time
	// prev* hold the probes counter at the previous report, for rate
	// differentiation.
	prevProbes int64
	prevTime   time.Time
	rate       float64
}

// Aggregator folds WorkerReports into the fleet view. Safe for
// concurrent use; its mutex is a leaf (no calls out while held).
type Aggregator struct {
	mu      sync.Mutex
	workers map[string]*workerState
	history *History
}

// NewAggregator builds an aggregator whose status history keeps
// historyMax records (default 512).
func NewAggregator(historyMax int) *Aggregator {
	return &Aggregator{
		workers: make(map[string]*workerState),
		history: NewHistory(historyMax),
	}
}

// History returns the aggregator's status-history ring.
func (a *Aggregator) History() *History {
	if a == nil {
		return nil
	}
	return a.history
}

// Observe folds one worker report in at the given instant. Nil
// reports and reports without a worker identity are ignored.
func (a *Aggregator) Observe(rep *WorkerReport, now time.Time) {
	if a == nil || rep == nil || rep.Worker == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ws, ok := a.workers[rep.Worker]
	if !ok {
		ws = &workerState{}
		a.workers[rep.Worker] = ws
	}
	probes := rep.Metrics.Counters[probesCounter]
	if !ws.prevTime.IsZero() {
		if dt := now.Sub(ws.prevTime); dt >= 200*time.Millisecond {
			// Differentiate over the report interval. A restarted worker
			// (counter went backwards) resets the baseline instead of
			// reporting a negative rate.
			if d := probes - ws.prevProbes; d >= 0 {
				ws.rate = float64(d) / dt.Seconds()
			} else {
				ws.rate = 0
			}
			ws.prevProbes, ws.prevTime = probes, now
		}
	} else {
		ws.prevProbes, ws.prevTime = probes, now
	}
	ws.report = *rep
	ws.lastSeen = now
}

// Snapshots returns every worker's last-reported snapshot keyed by
// worker, for the labeled Prometheus exposition.
func (a *Aggregator) Snapshots() map[string]metrics.Snapshot {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]metrics.Snapshot, len(a.workers))
	for id, ws := range a.workers {
		out[id] = ws.report.Metrics
	}
	return out
}

// View assembles the fleet view at the given instant. The caller
// supplies the current lease states (the coordinator reads them off
// its ratelimit.Budget) so each worker row can show its slice.
func (a *Aggregator) View(now time.Time, leases []LeaseState) FleetView {
	var view FleetView
	if a == nil {
		return view
	}
	byWorker := make(map[string]*LeaseState, len(leases))
	for i := range leases {
		byWorker[leases[i].Worker] = &leases[i]
	}
	a.mu.Lock()
	snaps := make([]metrics.Snapshot, 0, len(a.workers))
	for _, id := range sortedWorkers(a.workers) {
		ws := a.workers[id]
		c := ws.report.Metrics.Counters
		view.Workers = append(view.Workers, WorkerView{
			Worker:       id,
			SeenAgoMS:    now.Sub(ws.lastSeen).Milliseconds(),
			ProbesPerSec: ws.rate,
			Probes:       c[probesCounter],
			Responsive:   c["scanner.responsive_ips"],
			Pages:        c["fetcher.pages"],
			FetchErrors:  c["fetcher.transport_errors"],
			Retries:      c["scanner.retries"] + c["fetcher.retries"],
			Lease:        byWorker[id],
			Metrics:      ws.report.Metrics,
			Slowest:      ws.report.Slowest,
		})
		view.ProbesPerSec += ws.rate
		snaps = append(snaps, ws.report.Metrics)
	}
	a.mu.Unlock()
	view.Fleet = metrics.MergeSnapshots(snaps...)
	view.History = a.history.Snapshot()
	view.HistoryTotal = a.history.Total()
	return view
}

func sortedWorkers(m map[string]*workerState) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
