package fleetobs

import (
	"testing"
	"time"

	"whowas/internal/metrics"
	"whowas/internal/trace"
)

func report(worker string, probes int64) *WorkerReport {
	r := metrics.NewRegistry()
	r.Counter("scanner.probes").Add(probes)
	r.Counter("scanner.responsive_ips").Add(probes / 2)
	r.Counter("fetcher.pages").Add(probes / 4)
	return &WorkerReport{Worker: worker, Metrics: r.Snapshot()}
}

func TestCollectorReport(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("scanner.probes").Add(42)
	tr := trace.New(trace.Config{})
	tr.Start("scan", nil).End()

	c := &Collector{Worker: "w0", Metrics: reg, Tracer: tr}
	rep := c.Report()
	if rep.Worker != "w0" {
		t.Errorf("worker = %q", rep.Worker)
	}
	if rep.Metrics.Counters["scanner.probes"] != 42 {
		t.Errorf("metrics not snapshotted: %+v", rep.Metrics)
	}
	if len(rep.Slowest) != 1 || rep.Slowest[0].Name != "scan" {
		t.Errorf("slowest = %+v", rep.Slowest)
	}

	// Nil receiver and nil components must be inert.
	var nc *Collector
	if nc.Report() != nil {
		t.Error("nil collector produced a report")
	}
	empty := (&Collector{Worker: "w1"}).Report()
	if empty.Metrics.Counters != nil || empty.Slowest != nil {
		t.Errorf("collector without sources not empty: %+v", empty)
	}
}

func TestRestampSpans(t *testing.T) {
	in := []trace.SpanSnapshot{
		{ID: 3, Name: "scan", Attrs: map[string]string{"regions": "r1"}},
		{ID: 4, Parent: 3, Name: "probe"},
		{ID: 9, Parent: 77, Name: "orphan"}, // parent outside the batch
	}
	out := RestampSpans(in, 100, 50, WorkerAttrs("w0", 2, 1))
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].ID != 100 || out[1].ID != 101 || out[2].ID != 102 {
		t.Errorf("ids not renumbered: %d %d %d", out[0].ID, out[1].ID, out[2].ID)
	}
	if out[0].Parent != 50 {
		t.Errorf("root span not parented onto round: %d", out[0].Parent)
	}
	if out[1].Parent != 100 {
		t.Errorf("in-batch parent not remapped: %d", out[1].Parent)
	}
	if out[2].Parent != 50 {
		t.Errorf("dangling parent not reparented onto round: %d", out[2].Parent)
	}
	for i, s := range out {
		if s.Attrs["worker"] != "w0" || s.Attrs["round"] != "2" || s.Attrs["shard"] != "1" {
			t.Errorf("span %d missing stamp: %+v", i, s.Attrs)
		}
	}
	if out[0].Attrs["regions"] != "r1" {
		t.Errorf("original attrs lost: %+v", out[0].Attrs)
	}
	// Input untouched.
	if in[0].ID != 3 || in[0].Attrs["worker"] != "" {
		t.Errorf("input mutated: %+v", in[0])
	}
	if RestampSpans(nil, 1, 2, nil) != nil {
		t.Error("empty restamp not nil")
	}
}

func TestAggregatorRatesAndView(t *testing.T) {
	a := NewAggregator(8)
	t0 := time.Unix(1000, 0)
	a.Observe(report("w0", 100), t0)
	a.Observe(report("w1", 0), t0)
	// One second later w0 probed 50 more; w1 sat idle.
	a.Observe(report("w0", 150), t0.Add(time.Second))
	a.Observe(report("w1", 0), t0.Add(time.Second))

	leases := []LeaseState{{Worker: "w0", Rate: 200, ExpiresInMS: 900}}
	view := a.View(t0.Add(2*time.Second), leases)
	if len(view.Workers) != 2 {
		t.Fatalf("workers = %d", len(view.Workers))
	}
	w0 := view.Workers[0]
	if w0.Worker != "w0" {
		t.Fatalf("rows not sorted: %q first", w0.Worker)
	}
	if w0.ProbesPerSec < 49 || w0.ProbesPerSec > 51 {
		t.Errorf("w0 rate = %g, want ~50", w0.ProbesPerSec)
	}
	if w0.Probes != 150 || w0.Responsive != 75 {
		t.Errorf("w0 counters: %+v", w0)
	}
	if w0.Lease == nil || w0.Lease.Rate != 200 {
		t.Errorf("w0 lease missing: %+v", w0.Lease)
	}
	if view.Workers[1].Lease != nil {
		t.Error("w1 shows a lease it does not hold")
	}
	if w0.SeenAgoMS != 1000 {
		t.Errorf("seen ago = %dms, want 1000", w0.SeenAgoMS)
	}
	if view.Fleet.Counters["scanner.probes"] != 150 {
		t.Errorf("fleet merge: %+v", view.Fleet.Counters)
	}
	if view.ProbesPerSec != w0.ProbesPerSec {
		t.Errorf("fleet rate %g != sum of worker rates", view.ProbesPerSec)
	}

	// A counter that goes backwards (worker restart) must not produce
	// a negative rate.
	a.Observe(report("w0", 10), t0.Add(3*time.Second))
	view = a.View(t0.Add(3*time.Second), nil)
	if view.Workers[0].ProbesPerSec != 0 {
		t.Errorf("restart rate = %g, want 0", view.Workers[0].ProbesPerSec)
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	for i := 0; i < 5; i++ {
		h.Append(StatusRecord{TimeMS: int64(i), Event: "submit", Round: i})
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	recs := h.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Round != i+2 {
			t.Errorf("record %d is round %d, want %d (oldest-first tail)", i, r.Round, i+2)
		}
	}

	var nh *History
	nh.Append(StatusRecord{})
	if nh.Snapshot() != nil || nh.Total() != 0 {
		t.Error("nil history not inert")
	}
}

func TestAggregatorNilAndUnknown(t *testing.T) {
	var a *Aggregator
	a.Observe(report("w0", 1), time.Now())
	if v := a.View(time.Now(), nil); len(v.Workers) != 0 {
		t.Error("nil aggregator produced workers")
	}
	if a.History() != nil || a.Snapshots() != nil {
		t.Error("nil aggregator not inert")
	}

	real := NewAggregator(0)
	real.Observe(nil, time.Now())
	real.Observe(&WorkerReport{}, time.Now())
	if len(real.Snapshots()) != 0 {
		t.Error("anonymous report folded in")
	}
}
