// The coordinator's status-history ring: every interesting campaign
// event (round begins and ends, shard submits, lease expiries, worker
// registrations) appends one StatusRecord, and the bounded ring keeps
// the most recent window. The history is what makes a SIGKILLed
// worker legible after the fact — its lease expiry and the resulting
// shard reassignment are records, not just log lines.
package fleetobs

import "sync"

// LeaseState is one worker's slice of the probe budget at a moment in
// time: the leased rate and how long until the lease lapses unless
// renewed. A negative ExpiresInMS marks a lease already past due.
type LeaseState struct {
	Worker      string  `json:"worker"`
	Rate        float64 `json:"rate"`
	ExpiresInMS int64   `json:"expires_in_ms"`
}

// StatusRecord is one entry in the coordinator's status history: a
// timestamped campaign-progress snapshot tagged with the event that
// produced it.
type StatusRecord struct {
	// TimeMS is the wall-clock instant, in Unix milliseconds.
	TimeMS int64 `json:"time_ms"`
	// Event names what happened: "register", "round_begin", "submit",
	// "lease_expired", "round_end", "campaign_done".
	Event string `json:"event"`
	// Worker is the worker the event concerns, when there is one.
	Worker string `json:"worker,omitempty"`

	Round          int  `json:"round"`
	Day            int  `json:"day"`
	RoundsDone     int  `json:"rounds_done"`
	ShardsPending  int  `json:"shards_pending"`
	ShardsAssigned int  `json:"shards_assigned"`
	ShardsDone     int  `json:"shards_done"`
	Degraded       bool `json:"degraded,omitempty"`

	// Cumulative campaign counters, so any single record tells the
	// whole reassignment story up to its instant.
	LeasesExpired    int64 `json:"leases_expired"`
	ShardsReassigned int64 `json:"shards_reassigned"`

	// Quota state: the global §7 rate, the slice currently leased, and
	// their ratio (0 when unlimited), plus the per-worker leases.
	Rate             float64      `json:"rate"`
	LeasedRate       float64      `json:"leased_rate"`
	QuotaUtilization float64      `json:"quota_utilization"`
	Leases           []LeaseState `json:"leases,omitempty"`
}

// History is a bounded, concurrency-safe ring of StatusRecords. The
// zero value is unusable; construct with NewHistory. Its mutex is a
// leaf: no History method calls out while holding it.
type History struct {
	mu    sync.Mutex
	max   int
	buf   []StatusRecord
	next  int // ring cursor once len(buf) == max
	total int64
}

// NewHistory builds a ring keeping the most recent max records
// (default 512).
func NewHistory(max int) *History {
	if max <= 0 {
		max = 512
	}
	return &History{max: max}
}

// Append files one record, dropping the oldest at capacity. Nil-safe.
func (h *History) Append(rec StatusRecord) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	if len(h.buf) < h.max {
		h.buf = append(h.buf, rec)
		return
	}
	h.buf[h.next] = rec
	h.next = (h.next + 1) % len(h.buf)
}

// Snapshot returns the retained records oldest-first.
func (h *History) Snapshot() []StatusRecord {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]StatusRecord, 0, len(h.buf))
	out = append(out, h.buf[h.next:]...)
	out = append(out, h.buf[:h.next]...)
	return out
}

// Total returns how many records were ever appended (the ring keeps
// only the most recent of them).
func (h *History) Total() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}
