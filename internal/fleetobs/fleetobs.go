// Package fleetobs spans the process boundary that distributed
// campaigns (internal/coord) opened in the platform's observability:
// each worker owns a metrics Registry and a span Tracer, but the
// operator runs one coordinator — so the workers fold compact
// WorkerReports into every heartbeat and submit, and the coordinator
// side of this package aggregates them into a fleet view (per-worker
// and fleet-total metrics, probe throughput, slowest spans), a bounded
// history of status records (round progress, lease states, quota
// utilization, reassignments), and a merged trace journal whose shard
// spans carry worker identity.
//
// The package deliberately stays a leaf: it imports only metrics and
// trace, never coord, so both sides of the protocol can embed its
// types in their wire documents.
package fleetobs

import (
	"strconv"

	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// WorkerReport is the compact observability payload a worker attaches
// to /coord/heartbeat and /coord/submit: its full metrics snapshot
// (scanner/fetcher/store/faults counters and stage-timer quantiles)
// plus its slowest sampled spans so far.
type WorkerReport struct {
	Worker  string               `json:"worker"`
	Metrics metrics.Snapshot     `json:"metrics"`
	Slowest []trace.SpanSnapshot `json:"slowest,omitempty"`
}

// Collector is the worker-side half: it snapshots the worker's
// registry and tracer into a WorkerReport on demand.
type Collector struct {
	// Worker is the reporting worker's identity.
	Worker string
	// Metrics is the worker's registry (nil yields empty snapshots).
	Metrics *metrics.Registry
	// Tracer supplies the slowest-span window (nil yields none).
	Tracer *trace.Tracer
	// SlowestN bounds the slowest spans per report (default 8).
	SlowestN int
}

// Report builds the worker's current observability payload.
func (c *Collector) Report() *WorkerReport {
	if c == nil {
		return nil
	}
	n := c.SlowestN
	if n <= 0 {
		n = 8
	}
	return &WorkerReport{
		Worker:  c.Worker,
		Metrics: c.Metrics.Snapshot(),
		Slowest: c.Tracer.Slowest(n),
	}
}

// RestampSpans renumbers a worker's drained spans into a foreign
// tracer's ID space and stamps each with the given attributes (worker
// identity, round, shard). IDs map in order onto [base, base+len);
// parents that point inside the batch follow the remap, while parents
// outside it — the worker's stage spans are roots, and a bounded
// buffer may have dropped an ancestor — reparent onto root (the
// coordinator's round span), so every merged span hangs off the round
// it ran under. The input is not modified.
func RestampSpans(spans []trace.SpanSnapshot, base, root uint64, attrs map[string]string) []trace.SpanSnapshot {
	if len(spans) == 0 {
		return nil
	}
	idMap := make(map[uint64]uint64, len(spans))
	for i, s := range spans {
		idMap[s.ID] = base + uint64(i)
	}
	out := make([]trace.SpanSnapshot, len(spans))
	for i, s := range spans {
		s.ID = base + uint64(i)
		if p, ok := idMap[s.Parent]; ok && s.Parent != 0 {
			s.Parent = p
		} else {
			s.Parent = root
		}
		if len(attrs) > 0 {
			merged := make(map[string]string, len(s.Attrs)+len(attrs))
			for k, v := range s.Attrs {
				merged[k] = v
			}
			for k, v := range attrs {
				merged[k] = v
			}
			s.Attrs = merged
		}
		out[i] = s
	}
	return out
}

// WorkerAttrs builds the attribute stamp RestampSpans applies to one
// shard submission's spans.
func WorkerAttrs(worker string, round, shard int) map[string]string {
	return map[string]string{
		"worker": worker,
		"round":  strconv.Itoa(round),
		"shard":  strconv.Itoa(shard),
	}
}
