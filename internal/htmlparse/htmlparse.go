// Package htmlparse provides a small, fault-tolerant HTML scanner used
// by the WhoWas feature generator (§4). The standard library contains
// no HTML parser, so the package implements a forgiving tokenizer that
// extracts exactly what WhoWas needs from fetched pages:
//
//   - the <title> string
//   - <meta name="description|keywords|generator" content="..."> values
//   - Google Analytics IDs embedded in tracking snippets
//   - absolute URLs appearing in href/src attributes and in script text
//     (for the malicious-URL analysis of §8.2)
//   - third-party tracker fingerprint matching (§8.3)
//   - the visible text, for simhash fingerprinting
//
// Malformed markup (unclosed tags, bare ampersands, attribute soup from
// 2013-era templates) must not cause failures: the tokenizer never
// returns an error, it extracts what it can.
package htmlparse

import (
	"strings"
)

// Document holds everything WhoWas extracts from one HTML page.
type Document struct {
	Title       string   // first <title> contents, whitespace-collapsed
	Description string   // <meta name="description" content>
	Keywords    string   // <meta name="keywords" content>
	Generator   string   // <meta name="generator" content> (web template, e.g. "WordPress 3.5.1")
	AnalyticsID string   // first Google Analytics ID (UA-xxxx-n), "" if none
	Links       []string // absolute http(s) URLs from href/src attributes and script bodies
	Text        string   // visible text with tags stripped
}

// Parse scans page markup and extracts Document fields. It never fails;
// missing pieces are left zero-valued, matching the paper's "unknown"
// convention for absent features.
func Parse(html string) Document {
	var doc Document
	var text strings.Builder
	seenLink := map[string]bool{}

	addLink := func(u string) {
		u = strings.TrimSpace(u)
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return
		}
		if !seenLink[u] {
			seenLink[u] = true
			doc.Links = append(doc.Links, u)
		}
	}

	i := 0
	n := len(html)
	for i < n {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			text.WriteString(html[i:])
			break
		}
		text.WriteString(html[i : i+lt])
		i += lt
		// Comments: skip to -->.
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		gt := strings.IndexByte(html[i:], '>')
		if gt < 0 {
			// Unterminated tag at EOF: treat remainder as discarded markup.
			break
		}
		tag := html[i+1 : i+gt]
		i += gt + 1

		name, attrs := splitTag(tag)
		switch name {
		case "title":
			body, rest := untilClose(html[i:], "title")
			if doc.Title == "" {
				doc.Title = CollapseSpace(body)
			}
			text.WriteString(body)
			text.WriteByte(' ')
			i += rest
		case "script":
			body, rest := untilClose(html[i:], "script")
			for _, u := range ExtractURLs(body) {
				addLink(u)
			}
			if doc.AnalyticsID == "" {
				doc.AnalyticsID = FindAnalyticsID(body)
			}
			i += rest
		case "style":
			_, rest := untilClose(html[i:], "style")
			i += rest
		case "meta":
			metaName := strings.ToLower(attrValue(attrs, "name"))
			content := attrValue(attrs, "content")
			switch metaName {
			case "description":
				if doc.Description == "" {
					doc.Description = CollapseSpace(content)
				}
			case "keywords":
				if doc.Keywords == "" {
					doc.Keywords = CollapseSpace(content)
				}
			case "generator":
				if doc.Generator == "" {
					doc.Generator = CollapseSpace(content)
				}
			}
		case "a", "link", "img", "iframe", "frame", "embed", "source", "form":
			for _, attr := range []string{"href", "src", "action"} {
				if v := attrValue(attrs, attr); v != "" {
					addLink(v)
				}
			}
		case "br", "p", "div", "li", "tr", "td", "th", "h1", "h2", "h3", "h4", "h5", "h6":
			text.WriteByte(' ')
		}
	}
	doc.Text = CollapseSpace(text.String())
	if doc.AnalyticsID == "" {
		doc.AnalyticsID = FindAnalyticsID(html)
	}
	return doc
}

// splitTag splits a raw tag body ("meta name=... content=...") into the
// lowercase element name and its attribute region. Closing tags and
// doctype declarations yield their name with the leading '/' or '!'.
func splitTag(tag string) (name, attrs string) {
	tag = strings.TrimSpace(tag)
	end := len(tag)
	for j := 0; j < len(tag); j++ {
		c := tag[j]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			end = j
			break
		}
	}
	name = strings.ToLower(strings.TrimSuffix(tag[:end], "/"))
	attrs = tag[end:]
	return name, attrs
}

// untilClose returns the run of text up to (not including) the closing
// tag </name> in s, plus the number of bytes consumed including the
// closing tag. If the closing tag is missing, the rest of s is the body.
func untilClose(s, name string) (body string, consumed int) {
	idx := indexFoldASCII(s, "</"+name)
	if idx < 0 {
		return s, len(s)
	}
	gt := strings.IndexByte(s[idx:], '>')
	if gt < 0 {
		return s[:idx], len(s)
	}
	return s[:idx], idx + gt + 1
}

// attrValue extracts a (case-insensitive) attribute value from a tag's
// attribute region, handling single-, double- and un-quoted forms.
func attrValue(attrs, name string) string {
	needle := name + "="
	from := 0
	for {
		idx := indexFoldASCII(attrs[from:], needle)
		if idx < 0 {
			return ""
		}
		idx += from
		// Must be at a word boundary (start or preceded by whitespace).
		if idx > 0 {
			prev := attrs[idx-1]
			if prev != ' ' && prev != '\t' && prev != '\n' && prev != '\r' && prev != '\'' && prev != '"' {
				from = idx + len(needle)
				continue
			}
		}
		rest := attrs[idx+len(needle):]
		if rest == "" {
			return ""
		}
		switch rest[0] {
		case '"':
			if end := strings.IndexByte(rest[1:], '"'); end >= 0 {
				return rest[1 : 1+end]
			}
			return rest[1:]
		case '\'':
			if end := strings.IndexByte(rest[1:], '\''); end >= 0 {
				return rest[1 : 1+end]
			}
			return rest[1:]
		default:
			end := strings.IndexAny(rest, " \t\n\r>")
			if end < 0 {
				return rest
			}
			return rest[:end]
		}
	}
}

// indexFoldASCII returns the byte index of the first occurrence of
// needle in s, matching ASCII letters case-insensitively. Searching
// strings.ToLower(s) instead would be wrong here: ToLower re-encodes
// invalid UTF-8 as U+FFFD, so its indices do not line up with s on the
// byte-soup pages this package promises to survive.
func indexFoldASCII(s, needle string) int {
	if len(needle) == 0 {
		return 0
	}
	for i := 0; i+len(needle) <= len(s); i++ {
		if asciiEqualFold(s[i:i+len(needle)], needle) {
			return i
		}
	}
	return -1
}

// asciiEqualFold reports whether two equal-length strings match with
// ASCII letters compared case-insensitively.
func asciiEqualFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// CollapseSpace trims and collapses runs of whitespace to single spaces.
func CollapseSpace(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' {
			space = true
			continue
		}
		if space && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		space = false
		sb.WriteRune(r)
	}
	return sb.String()
}

// ExtractURLs returns every absolute http(s) URL appearing in raw text
// (script bodies, attributes already handled separately). A URL runs
// until whitespace, quote, or markup delimiter.
func ExtractURLs(s string) []string {
	var urls []string
	for i := 0; i < len(s); {
		idx := strings.Index(s[i:], "http")
		if idx < 0 {
			break
		}
		i += idx
		rest := s[i:]
		var scheme int
		switch {
		case strings.HasPrefix(rest, "https://"):
			scheme = len("https://")
		case strings.HasPrefix(rest, "http://"):
			scheme = len("http://")
		default:
			i += 4
			continue
		}
		end := scheme
		for end < len(rest) && isURLByte(rest[end]) {
			end++
		}
		if end > scheme {
			urls = append(urls, strings.TrimRight(rest[:end], ".,;)"))
		}
		i += end
	}
	return urls
}

func isURLByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '"', '\'', '<', '>', '\\', '`', '{', '}', '|', '^':
		return false
	}
	return c > 0x20 && c < 0x7f
}

// FindAnalyticsID locates the first Google Analytics tracking ID
// ("UA-<digits>-<digits>") in s, returning "" if none is present.
// WhoWas uses these IDs both as a clustering feature and to estimate
// website counts per user account (§8.3).
func FindAnalyticsID(s string) string {
	for i := 0; i < len(s); {
		idx := strings.Index(s[i:], "UA-")
		if idx < 0 {
			return ""
		}
		i += idx
		j := i + 3
		start := j
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == start || j >= len(s) || s[j] != '-' {
			i += 3
			continue
		}
		k := j + 1
		start2 := k
		for k < len(s) && s[k] >= '0' && s[k] <= '9' {
			k++
		}
		if k == start2 {
			i += 3
			continue
		}
		return s[i:k]
	}
	return ""
}

// SplitAnalyticsID splits "UA-12345-2" into the account part ("12345")
// and profile part ("2"). ok is false when id is not a well-formed GA ID.
func SplitAnalyticsID(id string) (account, profile string, ok bool) {
	if !strings.HasPrefix(id, "UA-") {
		return "", "", false
	}
	rest := id[3:]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 || dash == len(rest)-1 {
		return "", "", false
	}
	account, profile = rest[:dash], rest[dash+1:]
	for _, part := range []string{account, profile} {
		for i := 0; i < len(part); i++ {
			if part[i] < '0' || part[i] > '9' {
				return "", "", false
			}
		}
	}
	return account, profile, true
}
