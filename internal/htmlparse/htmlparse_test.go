package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html lang="en">
<head>
  <title>  My   Cloud   Shop  </title>
  <meta name="description" content="Buy widgets   in the cloud">
  <meta name="keywords" content="widgets,cloud,shop">
  <meta name="generator" content="WordPress 3.5.1">
  <link rel="stylesheet" href="https://cdn.example.com/style.css">
  <script>
    var _gaq = _gaq || [];
    _gaq.push(['_setAccount', 'UA-123456-2']);
    (function() {
      var ga = document.createElement('script');
      ga.src = 'http://www.google-analytics.com/ga.js';
    })();
  </script>
</head>
<body>
  <h1>Welcome</h1>
  <p>Best prices on <a href="http://shop.example.com/catalog">widgets</a>.</p>
  <img src="https://img.example.com/logo.png">
  <!-- hidden <a href="http://comment.example.com/x"> -->
</body>
</html>`

func TestParseSamplePage(t *testing.T) {
	doc := Parse(samplePage)
	if doc.Title != "My Cloud Shop" {
		t.Errorf("Title = %q", doc.Title)
	}
	if doc.Description != "Buy widgets in the cloud" {
		t.Errorf("Description = %q", doc.Description)
	}
	if doc.Keywords != "widgets,cloud,shop" {
		t.Errorf("Keywords = %q", doc.Keywords)
	}
	if doc.Generator != "WordPress 3.5.1" {
		t.Errorf("Generator = %q", doc.Generator)
	}
	if doc.AnalyticsID != "UA-123456-2" {
		t.Errorf("AnalyticsID = %q", doc.AnalyticsID)
	}
	wantLinks := map[string]bool{
		"https://cdn.example.com/style.css":     true,
		"http://www.google-analytics.com/ga.js": true,
		"http://shop.example.com/catalog":       true,
		"https://img.example.com/logo.png":      true,
	}
	for _, l := range doc.Links {
		if !wantLinks[l] {
			t.Errorf("unexpected link %q", l)
		}
		delete(wantLinks, l)
	}
	for l := range wantLinks {
		t.Errorf("missing link %q", l)
	}
	if strings.Contains(doc.Text, "_gaq") {
		t.Error("script body leaked into visible text")
	}
	if !strings.Contains(doc.Text, "Best prices on") {
		t.Errorf("visible text missing body content: %q", doc.Text)
	}
	if strings.Contains(doc.Text, "comment.example.com") {
		t.Error("comment content leaked into text")
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"<",
		"<<<>>>",
		"<html",
		"no markup at all",
		"<title>unclosed title",
		"<script>var x = 'http://a.example.com/x'",
		strings.Repeat("<div>", 1000),
	} {
		doc := Parse(in) // must not panic
		_ = doc
	}
}

func TestParseUnclosedTitle(t *testing.T) {
	doc := Parse("<title>Dangling")
	if doc.Title != "Dangling" {
		t.Errorf("Title = %q, want %q", doc.Title, "Dangling")
	}
}

func TestParseFirstTitleWins(t *testing.T) {
	doc := Parse("<title>First</title><title>Second</title>")
	if doc.Title != "First" {
		t.Errorf("Title = %q, want First", doc.Title)
	}
}

func TestParseCaseInsensitiveTags(t *testing.T) {
	doc := Parse(`<TITLE>Upper</TITLE><META NAME="Description" CONTENT="desc here">`)
	if doc.Title != "Upper" {
		t.Errorf("Title = %q", doc.Title)
	}
	if doc.Description != "desc here" {
		t.Errorf("Description = %q", doc.Description)
	}
}

func TestAttrValueQuoting(t *testing.T) {
	cases := []struct {
		attrs, name, want string
	}{
		{` name="double"`, "name", "double"},
		{` name='single'`, "name", "single"},
		{` name=bare`, "name", "bare"},
		{` name=bare other=x`, "name", "bare"},
		{` content="has = sign" name="n"`, "content", "has = sign"},
		{` filename="decoy" name="real"`, "name", "real"},
		{``, "name", ""},
		{` name=`, "name", ""},
		{` name="unterminated`, "name", "unterminated"},
	}
	for _, c := range cases {
		if got := attrValue(c.attrs, c.name); got != c.want {
			t.Errorf("attrValue(%q, %q) = %q, want %q", c.attrs, c.name, got, c.want)
		}
	}
}

func TestCollapseSpace(t *testing.T) {
	cases := map[string]string{
		"":              "",
		"   ":           "",
		"a":             "a",
		"  a  b  ":      "a b",
		"a\t\nb\r\nc":   "a b c",
		"already clean": "already clean",
	}
	for in, want := range cases {
		if got := CollapseSpace(in); got != want {
			t.Errorf("CollapseSpace(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractURLs(t *testing.T) {
	in := `visit http://a.example.com/page and https://b.example.com/x?q=1, also
		"http://quoted.example.com/y" but not ftp://nope or httpx://bad`
	got := ExtractURLs(in)
	want := []string{
		"http://a.example.com/page",
		"https://b.example.com/x?q=1",
		"http://quoted.example.com/y",
	}
	if len(got) != len(want) {
		t.Fatalf("ExtractURLs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ExtractURLs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestExtractURLsNeverPanics(t *testing.T) {
	prop := func(s string) bool {
		_ = ExtractURLs(s)
		_ = Parse(s)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFindAnalyticsID(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"_setAccount', 'UA-123456-1'", "UA-123456-1"},
		{"no id here", ""},
		{"UA- not an id", ""},
		{"UA-12 not complete", ""},
		{"UA-12-", ""},
		{"prefix UA-9-9 suffix", "UA-9-9"},
		{"two UA-1-1 then UA-2-2", "UA-1-1"},
		{"ga('create', 'UA-4433-12', 'auto')", "UA-4433-12"},
	}
	for _, c := range cases {
		if got := FindAnalyticsID(c.in); got != c.want {
			t.Errorf("FindAnalyticsID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitAnalyticsID(t *testing.T) {
	acct, prof, ok := SplitAnalyticsID("UA-12345-2")
	if !ok || acct != "12345" || prof != "2" {
		t.Errorf("SplitAnalyticsID = %q,%q,%v", acct, prof, ok)
	}
	for _, bad := range []string{"", "UA-", "UA-1", "UA-1-", "UA--2", "GA-1-2", "UA-1a-2", "UA-1-2b"} {
		if _, _, ok := SplitAnalyticsID(bad); ok {
			t.Errorf("SplitAnalyticsID(%q) ok, want failure", bad)
		}
	}
}

func TestStyleStripped(t *testing.T) {
	doc := Parse("<style>body{color:red}</style><p>visible</p>")
	if strings.Contains(doc.Text, "color") {
		t.Errorf("style leaked into text: %q", doc.Text)
	}
	if !strings.Contains(doc.Text, "visible") {
		t.Errorf("body text missing: %q", doc.Text)
	}
}

func TestBlockTagsSeparateWords(t *testing.T) {
	doc := Parse("<div>one</div><div>two</div>")
	if doc.Text != "one two" {
		t.Errorf("Text = %q, want %q", doc.Text, "one two")
	}
}

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(samplePage)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(samplePage)
	}
}
