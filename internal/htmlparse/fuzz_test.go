package htmlparse

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseHTML feeds arbitrary markup through the tolerant tokenizer.
// Parse promises it never fails on malformed 2013-era markup; the fuzz
// target additionally pins the structural invariants extraction relies
// on: determinism, collapsed title whitespace, deduplicated absolute
// links, and analytics IDs that the splitter accepts.
func FuzzParseHTML(f *testing.F) {
	f.Add("<html><head><title>Shop</title></head><body><p>hello</p></body></html>")
	f.Add(`<meta name="description" content="a store"><meta name="generator" content="WordPress 3.5.1">`)
	f.Add(`<a href="http://example.com/a">x</a><img src="https://cdn.example.com/i.png">`)
	f.Add(`<script>var _gaq=_gaq||[];_gaq.push(['_setAccount','UA-12345-2']);</script>`)
	f.Add("<title>unclosed <b>soup")
	f.Add("< not a tag > & bare ampersand <>")
	f.Add("")
	f.Add("\x00\xff<\x01>")
	f.Fuzz(func(t *testing.T, html string) {
		doc := Parse(html)

		if again := Parse(html); !reflect.DeepEqual(doc, again) {
			t.Fatalf("Parse is nondeterministic for %q", html)
		}
		if doc.Title != CollapseSpace(doc.Title) {
			t.Errorf("title %q is not whitespace-collapsed", doc.Title)
		}
		seen := map[string]bool{}
		for _, u := range doc.Links {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				t.Errorf("link %q is not an absolute http(s) URL", u)
			}
			if seen[u] {
				t.Errorf("link %q extracted twice", u)
			}
			seen[u] = true
		}
		if doc.AnalyticsID != "" {
			if _, _, ok := SplitAnalyticsID(doc.AnalyticsID); !ok {
				t.Errorf("extracted analytics ID %q does not split", doc.AnalyticsID)
			}
		}
		if id := FindAnalyticsID(html); id != "" {
			if _, _, ok := SplitAnalyticsID(id); !ok {
				t.Errorf("FindAnalyticsID returned %q, which SplitAnalyticsID rejects", id)
			}
		}
		if c := CollapseSpace(html); CollapseSpace(c) != c {
			t.Errorf("CollapseSpace is not idempotent on %q", html)
		}
	})
}
