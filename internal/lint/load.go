// The package loader: a small module-aware front end over go/parser
// and go/types. It resolves the module root from go.mod, parses each
// package directory (non-test files), and type-checks packages
// recursively — module-internal imports load from source, standard
// library imports come from the toolchain's export data via
// go/importer. No golang.org/x/tools dependency.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: syntax plus type
// information, which is what the analyzers consume.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset positions every file in the loader's file set.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the resolved identifier uses, definitions,
	// selections and expression types.
	Info *types.Info
}

// Loader loads and type-checks packages of one module.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	cache      map[string]*Package
	loading    map[string]bool
}

// NewLoader builds a loader for the module containing dir: it walks up
// from dir to the nearest go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePathOf(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.Default(),
		cache:      map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleRoot returns the directory holding the module's go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's declared import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// Load resolves the given patterns to packages and type-checks them.
// Supported patterns: "./..." (every package under the module root), a
// module-relative directory like "./internal/store", or a full import
// path like "whowas/internal/store".
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.packageDirs(l.moduleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.pathOfDir(d))
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dirs, err := l.packageDirs(l.dirOfPattern(base))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.pathOfDir(d))
			}
		default:
			add(l.pathOfDir(l.dirOfPattern(pat)))
		}
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// dirOfPattern maps a pattern (import path or ./-relative dir) to a
// directory under the module root.
func (l *Loader) dirOfPattern(pat string) string {
	if pat == l.modulePath {
		return l.moduleRoot
	}
	if rest, ok := strings.CutPrefix(pat, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
	}
	return filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
}

// pathOfDir maps a directory under the module root to its import path.
func (l *Loader) pathOfDir(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// packageDirs walks root collecting every directory holding non-test
// Go files, skipping testdata, vendor and hidden directories.
func (l *Loader) packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(out) == 0 || out[len(out)-1] != dir {
				out = append(out, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", root, err)
	}
	sort.Strings(out)
	return out, nil
}

// loadPackage parses and type-checks one package by import path,
// caching the result. Returns (nil, nil) for a directory with no
// non-test Go files.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOfPattern(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.cache[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == l.modulePath || strings.HasPrefix(imp, l.modulePath+"/") {
				pkg, err := l.loadPackage(imp)
				if err != nil {
					return nil, err
				}
				if pkg == nil {
					return nil, fmt.Errorf("no Go files in %s", imp)
				}
				return pkg.Types, nil
			}
			return l.std.Import(imp)
		}),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
