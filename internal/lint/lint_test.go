package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current analyzer output")

// fixturePackages loads one package of the fixture module under
// testdata/src/fixture. The fixture module's import paths end in the
// same suffixes the default options match, so DefaultSuite runs over
// it exactly as it runs over the real module.
func fixturePackage(t *testing.T, pattern string) (*Package, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if got := loader.ModulePath(); got != "fixture" {
		t.Fatalf("fixture module path = %q, want %q", got, "fixture")
	}
	pkgs, err := loader.Load(pattern)
	if err != nil {
		t.Fatalf("Load(%q): %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%q) returned %d packages, want 1", pattern, len(pkgs))
	}
	return pkgs[0], root
}

// render formats diagnostics with fixture-root-relative slash paths so
// the golden files are stable across machines.
func render(diags []Diagnostic, root string) string {
	var b strings.Builder
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestAnalyzerGoldens runs the default suite over each fixture package
// and compares the surviving diagnostics against a golden file.
// Regenerate with `go test ./internal/lint -run Goldens -update`.
func TestAnalyzerGoldens(t *testing.T) {
	cases := []struct {
		name    string // golden file stem
		pattern string // fixture package
	}{
		{"determinism", "./internal/cloudsim"},
		{"nilsafe", "./internal/metrics"},
		{"ctxfirst", "./internal/scanner"},
		{"errcheck_source", "./internal/atomicfile"},
		{"errcheck_lockdisc", "./internal/pipeline"},
		{"errcheck_forwarder", "./internal/relay"},
		{"goleak", "./internal/fleet"},
		{"wiretag", "./internal/ops"},
		{"atomicwrite", "./internal/trace"},
		{"budgetpath", "./internal/core"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, root := fixturePackage(t, tc.pattern)
			got := render(DefaultSuite().Run([]*Package{pkg}), root)
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestCleanFixtureStaysClean pins the negative space: the fixture
// store package contains no violations and must produce no
// diagnostics.
func TestCleanFixtureStaysClean(t *testing.T) {
	pkg, root := fixturePackage(t, "./internal/store")
	if got := render(DefaultSuite().Run([]*Package{pkg}), root); got != "" {
		t.Errorf("clean fixture produced diagnostics:\n%s", got)
	}
}

// TestRepoHeadClean is the gate the CLI enforces in CI, as a test: the
// module at HEAD must lint clean. Skipped under -short because it
// type-checks the whole module.
func TestRepoHeadClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from the module root")
	}
	for _, d := range DefaultSuite().Run(pkgs) {
		if rel, err := filepath.Rel(loader.ModuleRoot(), d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		t.Errorf("repo HEAD is not lint-clean: %s", d)
	}
}
