// Shared AST/type-resolution helpers for the analyzers.
package lint

import (
	"go/ast"
	"go/types"
)

// pkgRef resolves a selector like time.Now to its (package path,
// object) when X names an imported package; ok is false otherwise.
func pkgRef(pkg *Package, sel *ast.SelectorExpr) (path string, obj types.Object, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", nil, false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", nil, false
	}
	return pn.Imported().Path(), pkg.Info.Uses[sel.Sel], true
}

// calleeOf resolves a call expression's callee object (a *types.Func
// for method and function calls), or nil.
func calleeOf(pkg *Package, call *ast.CallExpr) types.Object {
	return calleeOfInfo(pkg.Info, call)
}

// calleeOfInfo is calleeOf for code holding only the type info (the
// call-graph-backed analyzers work on callgraph nodes, whose packages
// are not lint Packages).
func calleeOfInfo(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// baseObj resolves the object an expression names: a plain identifier
// (local, parameter, package var) or a selector's field/method object
// (s.srv resolves to the srv field). nil when the expression is more
// complex than a name.
func baseObj(info *types.Info, expr ast.Expr) types.Object {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return obj
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// inspectOwnBody walks a function body without descending into nested
// function literals — a literal's statements belong to the literal's
// own call-graph node, not its encloser's.
func inspectOwnBody(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// returnsError reports whether the object is a function whose result
// list includes an error.
func returnsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

// objPkgPath returns the import path of the package the object belongs
// to ("" for builtins and universe-scope objects).
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// typeHasLock reports whether t is, or directly contains (through
// struct fields, arrays, and embedding), a sync.Mutex or sync.RWMutex.
// Pointers, slices, maps and channels stop the search — holding a
// pointer to a lock is fine; holding the lock itself by value is what
// copying breaks.
func typeHasLock(t types.Type) bool {
	return hasLock(t, map[types.Type]bool{})
}

func hasLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return hasLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return hasLock(u.Elem(), seen)
	}
	return false
}

// recvIdent returns a method's named receiver identifier, or nil for
// functions and unnamed/blank receivers.
func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// recvTypeName returns the receiver's named type and whether it is a
// pointer receiver.
func recvTypeName(fd *ast.FuncDecl) (name string, pointer bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		pointer = true
		t = star.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name, pointer
	case *ast.IndexExpr: // generic receiver
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name, pointer
		}
	case *ast.IndexListExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name, pointer
		}
	}
	return "", pointer
}

// isNilCheckOf reports whether an expression contains a comparison of
// the named receiver against nil (either == or !=, possibly inside
// && / || chains).
func isNilCheckOf(expr ast.Expr, recv string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op.String() != "==" && be.Op.String() != "!=" {
			return true
		}
		x, xok := ast.Unparen(be.X).(*ast.Ident)
		y, yok := ast.Unparen(be.Y).(*ast.Ident)
		if xok && yok &&
			((x.Name == recv && y.Name == "nil") || (y.Name == recv && x.Name == "nil")) {
			found = true
			return false
		}
		return true
	})
	return found
}

// diag builds a Diagnostic at a node's position.
func diag(pkg *Package, n ast.Node, rule, msg string) Diagnostic {
	return Diagnostic{Pos: pkg.Fset.Position(n.Pos()), Rule: rule, Msg: msg}
}
