// The wiretag analyzer. The coord protocol, the ops endpoints, the
// cloudapi control plane and the fleetobs reports are all JSON wire
// formats consumed by peers that are not this binary — other fleet
// versions mid-upgrade, dashboards, scripted clients. A struct field
// without an explicit `json` tag puts the Go identifier itself on the
// wire, so an innocent rename becomes a silent protocol break. The
// analyzer finds every struct that can reach a wire boundary and
// demands the format be written down:
//
//	wiretag/tag — an exported, non-embedded field of a wire-crossing
//	    struct has no json tag. Wire-crossing is computed, not
//	    declared: the types at encoding/json call sites (and the ops
//	    Write helpers) inside the wire packages seed a closure that
//	    follows exported field types across package boundaries —
//	    store.Record is wire-crossing because coord's SubmitRequest
//	    embeds a ShardResult that carries records.
//	wiretag/maporder — a wire package ranges over a map and writes
//	    inside the loop body. encoding/json sorts map keys itself, but
//	    a hand-rolled loop writes in random order; wire bytes must not
//	    depend on map iteration.
package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"whowas/internal/lint/callgraph"
)

// WireTagAnalyzer makes every wire-crossing struct's JSON shape
// explicit.
var WireTagAnalyzer = &Analyzer{
	Name:      "wiretag",
	Doc:       "structs crossing a wire boundary carry explicit json tags; no map iteration feeds an encoder",
	RunModule: runWireTag,
}

func runWireTag(pkgs []*Package, g *callgraph.Graph, opts Options) []Diagnostic {
	byTypes := map[*types.Package]*Package{}
	for _, p := range pkgs {
		byTypes[p.Types] = p
	}

	var out []Diagnostic
	var seeds []*types.Named
	seen := map[*types.Named]bool{}
	add := func(t types.Type) {
		collectNamedStructs(t, func(n *types.Named) {
			if !seen[n] {
				seen[n] = true
				seeds = append(seeds, n)
			}
		}, map[types.Type]bool{})
	}

	sinks := wireSinks(g, opts)
	for _, pkg := range pkgs {
		if !matchPkg(pkg.Path, opts.WirePackages) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				params := sinkParams(pkg.Info, call, sinks, opts)
				for i := range params {
					if i >= len(call.Args) {
						continue
					}
					if tv, ok := pkg.Info.Types[call.Args[i]]; ok && tv.Type != nil {
						add(tv.Type)
					}
				}
				return true
			})
		}
		out = append(out, wireMapOrderDiags(pkg)...)
	}

	// Closure over exported (and embedded) field types, flagging
	// untagged exported fields as we go. Only structs whose defining
	// package is loaded are audited — stdlib types marshal themselves.
	for i := 0; i < len(seeds); i++ {
		named := seeds[i]
		owner := byTypes[named.Obj().Pkg()]
		if owner == nil {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			field := st.Field(j)
			if field.Embedded() {
				add(field.Type()) // promoted fields are audited in the embedded type
				continue
			}
			if !field.Exported() {
				continue
			}
			if !hasJSONTag(st.Tag(j)) {
				out = append(out, Diagnostic{
					Pos:  owner.Fset.Position(field.Pos()),
					Rule: "wiretag/tag",
					Msg: "exported field " + field.Name() + " of wire-crossing struct " + named.Obj().Name() +
						" has no json tag; the wire format must be explicit, not the Go identifier",
				})
			}
			add(field.Type())
		}
	}
	return out
}

// wireSinks computes, for every module function, which of its
// parameters reach a JSON encoder — directly (json.Marshal(v)) or
// through other module helpers (post wraps Marshal, writeJSON wraps
// WriteJSON wraps Encode), by propagating over the call graph to a
// fixpoint. This is what lets coord's generic post(ctx, path, body,
// reply) helper seed the closure with the concrete types its callers
// pass.
func wireSinks(g *callgraph.Graph, opts Options) map[*types.Func]map[int]bool {
	sinks := map[*types.Func]map[int]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if n.Func == nil || n.Decl == nil {
				continue
			}
			params := paramObjects(n.Decl, n.Pkg.Info)
			if len(params) == 0 {
				continue
			}
			body := n.Body()
			if body == nil {
				continue
			}
			inspectOwnBody(body, func(node ast.Node) {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return
				}
				idxs := sinkParams(n.Pkg.Info, call, sinks, opts)
				for i := range idxs {
					if i >= len(call.Args) {
						continue
					}
					pi, ok := paramIndexOf(n.Pkg.Info, call.Args[i], params)
					if !ok {
						continue
					}
					if sinks[n.Func] == nil {
						sinks[n.Func] = map[int]bool{}
					}
					if !sinks[n.Func][pi] {
						sinks[n.Func][pi] = true
						changed = true
					}
				}
			})
		}
	}
	return sinks
}

// sinkParams returns the argument indices of a call that flow to a
// JSON encoder: the encoding/json entry points, the propagated module
// helpers, and the configured extra sinks (all of whose parameters are
// treated as wire-bound).
func sinkParams(info *types.Info, call *ast.CallExpr, sinks map[*types.Func]map[int]bool, opts Options) map[int]bool {
	fn, ok := calleeOfInfo(info, call).(*types.Func)
	if !ok {
		return nil
	}
	if objPkgPath(fn) == "encoding/json" {
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode", "Decode":
			return map[int]bool{0: true}
		case "Unmarshal":
			return map[int]bool{1: true}
		}
	}
	if idxs := sinks[fn]; idxs != nil {
		return idxs
	}
	for _, sink := range opts.WireSinks {
		dot := strings.LastIndex(sink, ".")
		if dot < 0 {
			continue
		}
		if fn.Name() == sink[dot+1:] && matchPkg(objPkgPath(fn), []string{sink[:dot]}) {
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return nil
			}
			all := map[int]bool{}
			for i := 0; i < sig.Params().Len(); i++ {
				all[i] = true
			}
			return all
		}
	}
	return nil
}

// paramObjects maps a declaration's parameter objects to their index.
func paramObjects(fd *ast.FuncDecl, info *types.Info) map[types.Object]int {
	out := map[types.Object]int{}
	if fd.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// paramIndexOf resolves an argument expression to the enclosing
// function's parameter it references (unwrapping a leading &).
func paramIndexOf(info *types.Info, arg ast.Expr, params map[types.Object]int) (int, bool) {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	if obj := info.Uses[id]; obj != nil {
		if i, ok := params[obj]; ok {
			return i, true
		}
	}
	return 0, false
}

// collectNamedStructs walks a type, calling visit for every named
// struct type reachable without following a method (pointers, slices,
// arrays, maps and channels are unwrapped).
func collectNamedStructs(t types.Type, visit func(*types.Named), seen map[types.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		if _, ok := tt.Underlying().(*types.Struct); ok {
			visit(tt)
		}
	case *types.Pointer:
		collectNamedStructs(tt.Elem(), visit, seen)
	case *types.Slice:
		collectNamedStructs(tt.Elem(), visit, seen)
	case *types.Array:
		collectNamedStructs(tt.Elem(), visit, seen)
	case *types.Map:
		collectNamedStructs(tt.Key(), visit, seen)
		collectNamedStructs(tt.Elem(), visit, seen)
	case *types.Chan:
		collectNamedStructs(tt.Elem(), visit, seen)
	}
}

// hasJSONTag reports whether a struct tag carries an explicit json
// key (including `json:"-"` — an explicit exclusion is a decision).
func hasJSONTag(tag string) bool {
	_, ok := reflect.StructTag(tag).Lookup("json")
	return ok
}

// wireMapOrderDiags flags range-over-map loops that write inside the
// loop body within a wire package.
func wireMapOrderDiags(pkg *Package) []Diagnostic {
	var out []Diagnostic
	writerCalls := map[string]bool{
		"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
		"Fprintf": true, "Fprint": true, "Fprintln": true, "Encode": true,
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, ok := calleeOf(pkg, call).(*types.Func); ok && writerCalls[fn.Name()] {
					out = append(out, diag(pkg, rs, "wiretag/maporder",
						"map iteration writes to the wire inside a wire package; iteration order is random — sort the keys into a slice first"))
					return false
				}
				return true
			})
			return true
		})
	}
	return out
}
