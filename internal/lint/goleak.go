// The goleak analyzer. Twice in this repo's history a goroutine was
// spawned with no path to termination — the PR 4 fetcher fan-in that
// outlived its pipeline, and the PR 7 worker heartbeat that kept
// beating for a dead lease — and both were found late, by chaos tests,
// after the leak had already shipped. The property is interprocedural
// (the join lives in the spawner, the Done in the body, the Close in a
// different file), so an AST check per function cannot see it; the
// call graph can. One rule:
//
//	goleak/join — every `go` statement's goroutine must provably reach
//	    a join or cancel path. The analyzer accepts five shapes, each
//	    taken from a real pattern in this codebase:
//	      1. the body (or a function it directly calls) calls Done or
//	         Wait on a sync.WaitGroup — the worker-pool shape;
//	      2. the body receives from a context's Done channel — the
//	         cancellation-loop shape;
//	      3. the body sends on or closes a channel that the spawner
//	         itself receives from or ranges over — the handshake shape;
//	      4. the body's work is a method call on an object (commonly a
//	         struct field like s.srv) on which some loaded code calls
//	         Close, Shutdown or Stop — the managed-server shape;
//	      5. the body defers Close on a net.Conn it was handed — the
//	         connection-scoped handler shape, which ends when the peer
//	         hangs up.
//	    Package main is exempt: a CLI's top-level goroutines die with
//	    the process.
package lint

import (
	"go/ast"
	"go/types"

	"whowas/internal/lint/callgraph"
)

// GoLeakAnalyzer proves every spawned goroutine can terminate.
var GoLeakAnalyzer = &Analyzer{
	Name:      "goleak",
	Doc:       "every go statement's goroutine must reach a join or cancel path the spawner controls",
	RunModule: runGoLeak,
}

func runGoLeak(pkgs []*Package, g *callgraph.Graph, opts Options) []Diagnostic {
	closed := closedObjects(pkgs)
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}

	var out []Diagnostic
	for _, n := range g.Nodes() {
		pkg := byPath[n.Pkg.Path]
		if pkg == nil || pkg.Types.Name() == "main" {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		inspectOwnBody(body, func(node ast.Node) {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return
			}
			targets := g.CalleesAt(n, gs.Call)
			if len(targets) == 0 {
				out = append(out, diag(pkg, gs, "goleak/join",
					"goroutine target cannot be resolved (function value flowed more than one level); spawn a named function or literal so the join path is provable"))
				return
			}
			for _, t := range targets {
				if !joined(g, t, n, closed) {
					out = append(out, diag(pkg, gs, "goleak/join",
						"goroutine "+t.Name()+" has no provable join or cancel path (WaitGroup Done/Wait, ctx.Done receive, channel handshake with the spawner, a managed object's Close/Shutdown, or a conn-scoped defer Close)"))
				}
			}
		})
	}
	return out
}

// joined reports whether the spawned node (or a function it directly
// calls — one level, matching the call graph's value-tracking depth)
// exhibits one of the accepted termination shapes.
func joined(g *callgraph.Graph, spawned, spawner *callgraph.Node, closed map[types.Object]bool) bool {
	bodies := []*callgraph.Node{spawned}
	for _, e := range g.CallsFrom(spawned) {
		bodies = append(bodies, e.Callee)
	}
	for _, b := range bodies {
		if wgJoin(b) || ctxJoin(b) || connScoped(b) || closeManaged(b, closed) {
			return true
		}
	}
	// The handshake shape relates the spawned body to its spawner, so
	// it is checked on the spawned node only.
	return chanHandshake(spawned, spawner)
}

// wgJoin: the body calls Done or Wait on a sync.WaitGroup.
func wgJoin(n *callgraph.Node) bool {
	return bodyHasCall(n, func(info *types.Info, call *ast.CallExpr) bool {
		fn, ok := calleeOfInfo(info, call).(*types.Func)
		if !ok || (fn.Name() != "Done" && fn.Name() != "Wait") {
			return false
		}
		return recvIsNamed(fn, "sync", "WaitGroup")
	})
}

// ctxJoin: the body calls Done on a context.Context (the result is
// only useful received, so a call is taken as the cancellation hook).
func ctxJoin(n *callgraph.Node) bool {
	return bodyHasCall(n, func(info *types.Info, call *ast.CallExpr) bool {
		fn, ok := calleeOfInfo(info, call).(*types.Func)
		return ok && fn.Name() == "Done" && objPkgPath(fn) == "context"
	})
}

// connScoped: the body defers Close on a net.Conn-typed value.
func connScoped(n *callgraph.Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	found := false
	inspectOwnBody(body, func(node ast.Node) {
		ds, ok := node.(*ast.DeferStmt)
		if !ok || found {
			return
		}
		sel, ok := ast.Unparen(ds.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return
		}
		if tv, ok := n.Pkg.Info.Types[sel.X]; ok && tv.Type != nil && tv.Type.String() == "net.Conn" {
			found = true
		}
	})
	return found
}

// closeManaged: the body calls a method on an object (local, package
// var, or struct field) that some loaded code calls Close, Shutdown or
// Stop on — the http.Server-style managed loop.
func closeManaged(n *callgraph.Node, closed map[types.Object]bool) bool {
	return bodyHasCall(n, func(info *types.Info, call *ast.CallExpr) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := baseObj(info, sel.X)
		return obj != nil && closed[obj]
	})
}

// chanHandshake: the spawned body sends on or closes a channel that
// the spawner's own body receives from or ranges over.
func chanHandshake(spawned, spawner *callgraph.Node) bool {
	sent := map[types.Object]bool{}
	if body := spawned.Body(); body != nil {
		inspectOwnBody(body, func(node ast.Node) {
			switch st := node.(type) {
			case *ast.SendStmt:
				if obj := baseObj(spawned.Pkg.Info, st.Chan); obj != nil {
					sent[obj] = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "close" && len(st.Args) == 1 {
					if obj := baseObj(spawned.Pkg.Info, st.Args[0]); obj != nil {
						sent[obj] = true
					}
				}
			}
		})
	}
	if len(sent) == 0 || spawner == nil {
		return false
	}
	received := false
	if body := spawner.Body(); body != nil {
		inspectOwnBody(body, func(node ast.Node) {
			switch st := node.(type) {
			case *ast.UnaryExpr:
				if st.Op.String() == "<-" {
					if obj := baseObj(spawner.Pkg.Info, st.X); obj != nil && sent[obj] {
						received = true
					}
				}
			case *ast.RangeStmt:
				if obj := baseObj(spawner.Pkg.Info, st.X); obj != nil && sent[obj] {
					received = true
				}
			}
		})
	}
	return received
}

// closedObjects collects every object (variable or struct field) that
// any loaded code calls Close, Shutdown or Stop on.
func closedObjects(pkgs []*Package) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Close", "Shutdown", "Stop":
					if obj := baseObj(pkg.Info, sel.X); obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// bodyHasCall reports whether the node's own body contains a call
// matching pred.
func bodyHasCall(n *callgraph.Node, pred func(*types.Info, *ast.CallExpr) bool) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	found := false
	inspectOwnBody(body, func(node ast.Node) {
		if found {
			return
		}
		if call, ok := node.(*ast.CallExpr); ok && pred(n.Pkg.Info, call) {
			found = true
		}
	})
	return found
}

// recvIsNamed reports whether fn is a method whose receiver's base
// type is the named type pkgPath.name.
func recvIsNamed(fn *types.Func, pkgPath, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
