// Package ops is a lint fixture wire package for the wiretag
// analyzer: documents reach the encoder through a sink helper's any
// parameter, so the closure is seeded from call-site types, not
// declarations.
package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Health is fully tagged: not flagged.
type Health struct {
	OK     bool   `json:"ok"`
	Uptime int64  `json:"uptime_ms"`
	detail string // unexported: exempt
}

// Status reaches the wire through WriteDoc's any parameter; Round has
// no tag: flagged.
type Status struct {
	Round int
	Hosts []Host `json:"hosts"`
}

// Host enters the closure through Status's field type; Name has no
// tag: flagged.
type Host struct {
	Name string
	Port int `json:"port"`
}

// WriteDoc is a sink helper: its v parameter flows to json.Marshal,
// so argument types at its call sites seed the closure.
func WriteDoc(w io.Writer, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Emit hands both documents to the helper.
func Emit(w io.Writer) error {
	if err := WriteDoc(w, Health{OK: true, detail: "up"}); err != nil {
		return err
	}
	return WriteDoc(w, Status{})
}

// Legacy keeps its Go field name on the wire; the suppression records
// why: not flagged.
type Legacy struct {
	//lint:allow wiretag/tag pre-tag peers still parse the Go identifier; retire with the v1 protocol
	Seq int
}

// EmitLegacy keeps Legacy wire-reachable.
func EmitLegacy(w io.Writer) error { return WriteDoc(w, Legacy{}) }

// DumpUnsorted iterates a map straight into the writer; iteration
// order is random: flagged.
func DumpUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// DumpSorted collects the keys first and writes from the sorted
// slice: not flagged.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
