// Package cloudsim is a lint fixture for the determinism analyzer:
// deliberate wall-clock, randomness and map-order violations next to
// the sanctioned patterns the analyzer must leave alone.
package cloudsim

import (
	crand "crypto/rand"
	"math/rand"
	"sort"
	"time"
)

// Bad reads the host clock and the global RNG.
func Bad() int64 {
	start := time.Now()
	elapsed := time.Since(start)
	return int64(elapsed) + rand.Int63()
}

// Entropy reaches for crypto/rand, which can never feed the digest.
func Entropy(buf []byte) {
	_, _ = crand.Read(buf)
}

// Seeded draws from an explicitly seeded generator: the sanctioned
// path, not flagged.
func Seeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

// Keys collects then sorts: map order never escapes, not flagged.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Leak lets map iteration order escape through an unsorted slice and
// a channel send.
func Leak(m map[string]int, out chan<- string) []string {
	var order []string
	for k := range m {
		order = append(order, k)
		out <- k
	}
	return order
}

// Local accumulates into a loop-local slice: order cannot escape, not
// flagged.
func Local(m map[string]int) int {
	n := 0
	for _, v := range m {
		batch := []int{v}
		batch = append(batch, v)
		n += len(batch)
	}
	return n
}

// Timestamp is excused with a written reason: suppressed cleanly.
func Timestamp() time.Time {
	//lint:allow determinism/wallclock fixture: header timestamp, never part of the digest
	return time.Now()
}

// CategoryAllowed demonstrates category-level suppression.
func CategoryAllowed() int64 {
	//lint:allow determinism fixture: category-level suppression example
	return rand.Int63()
}

// MissingReason carries a reasonless suppression: the suppression is
// rejected (lint/allow) and the wallclock finding still fires.
func MissingReason() time.Time {
	//lint:allow determinism/wallclock
	return time.Now()
}

//lint:allow determinism/rand fixture: stale suppression, the draw below it is gone
var Unused = 1
