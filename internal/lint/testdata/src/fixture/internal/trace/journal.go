// Package trace is a lint fixture persistence package for the
// atomicwrite analyzer: durable writes must go through the module's
// atomicfile layer; append-only opens are the one direct form allowed.
package trace

import (
	"os"

	"fixture/internal/atomicfile"
)

// AppendEntry opens the journal append-only — no truncation window:
// not flagged.
func AppendEntry(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Checkpoint rewrites the snapshot through the atomic layer: not
// flagged.
func Checkpoint(path string) error {
	a, err := atomicfile.Create(path)
	if err != nil {
		return err
	}
	return a.Commit()
}

// RewriteDirect truncates the live snapshot in place: flagged.
func RewriteDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Reset creates over the target: flagged.
func Reset(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// Compact opens the journal with O_TRUNC: flagged.
func Compact(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// Scratch writes a throwaway debug dump; the suppression records why:
// not flagged.
func Scratch(path string, data []byte) error {
	//lint:allow atomicwrite/direct scratch debug dump outside the durability contract
	return os.WriteFile(path, data, 0o644)
}
