// Package atomicfile is a lint fixture standing in for the real
// crash-safety layer. Inside an error-source package every bare error
// discard is flagged; an explicit `_ =` assignment is exempt.
package atomicfile

import "os"

// File wraps a temp file that commits by rename.
type File struct{ f *os.File }

// Create opens the temp file.
func Create(path string) (*File, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	return &File{f: f}, nil
}

// Commit syncs and closes; the bare Close on the error path is a
// discard inside a crash-safety package: flagged.
func (a *File) Commit() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}

// Abort discards explicitly: the `_ =` form is visible in review and
// exempt.
func (a *File) Abort() {
	_ = a.f.Close()
	_ = os.Remove(a.f.Name())
}
