// Package fleet is a lint fixture for the goleak analyzer: one
// goroutine per accepted termination shape, one leak, and one audited
// fire-and-forget.
package fleet

import (
	"context"
	"net"
	"sync"
)

// Pool joins its workers through a WaitGroup: not flagged.
func Pool(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Watch spawns a loop whose exit is the ctx.Done receive: not flagged.
func Watch(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// Handshake's goroutine closes a channel the spawner ranges over: not
// flagged.
func Handshake() int {
	out := make(chan int)
	go func() {
		out <- 1
		close(out)
	}()
	n := 0
	for v := range out {
		n += v
	}
	return n
}

// Server owns a managed serve loop.
type Server struct{ srv *loop }

type loop struct{ n int }

// Serve blocks until Shutdown.
func (l *loop) Serve() { l.n++ }

// Shutdown stops Serve.
func (l *loop) Shutdown() { l.n-- }

// Start's goroutine serves s.srv, whose Shutdown is called by Stop —
// the managed-server shape: not flagged.
func (s *Server) Start() {
	go func() { s.srv.Serve() }()
}

// Stop is the join path Start relies on.
func (s *Server) Stop() { s.srv.Shutdown() }

// Handle is connection-scoped: the deferred Close bounds the
// goroutine's life to the peer's: not flagged.
func Handle(c net.Conn) {
	go func() {
		defer c.Close()
		buf := make([]byte, 1)
		_, _ = c.Read(buf)
	}()
}

// Leak spawns a goroutine that sends forever on a channel the spawner
// never drains — no join, no cancel: flagged.
func Leak(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}

// Fire is a sanctioned one-shot; the suppression records why: not
// flagged.
func Fire() {
	//lint:allow goleak/join one-shot best-effort notification; process exit bounds it
	go func() {
		notify()
	}()
}

func notify() {}
