// Package relay is a lint fixture for the errcheck forwarder rule: a
// helper whose return statement hands back a store mutation's error
// is as load-bearing as the mutation itself, and bare-discarding it
// is flagged even though the helper lives outside the store package.
package relay

import "fixture/internal/store"

// Checkpoint forwards the store flush error to its caller.
func Checkpoint(db *store.DB) error { return db.Flush() }

// Tick bare-discards the forwarder: flagged.
func Tick(db *store.DB) {
	Checkpoint(db)
}

// TickAudited discards explicitly; the `_ =` form is visible in
// review and exempt.
func TickAudited(db *store.DB) {
	_ = Checkpoint(db)
}
