// Package store is a lint fixture error-method package: callers that
// bare-discard its error returns are flagged at the call site.
package store

// DB is a fixture store handle.
type DB struct{ dirty bool }

// Flush persists pending mutations.
func (d *DB) Flush() error {
	d.dirty = false
	return nil
}
