// Package pipeline is a lint fixture for the caller-side errcheck
// rules and for lock discipline: discarded crash-safety errors,
// write-path closes, mutex copies, and sends under a held lock.
package pipeline

import (
	"os"
	"sync"

	"fixture/internal/atomicfile"
	"fixture/internal/store"
)

// Flush bare-discards an atomic-write outcome and a store mutation:
// both flagged. The `_ =` on Create's error is explicit and exempt.
func Flush(db *store.DB, path string) {
	f, _ := atomicfile.Create(path)
	f.Commit()
	db.Flush()
}

// Dump opens a file for writing and throws away the deferred Close
// error: flagged (a failed close loses buffered data silently).
func Dump(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	_, _ = f.Write(data)
}

// Shard carries a mutex; copying it forks the lock.
type Shard struct {
	mu sync.Mutex
	n  int
}

// Grow copies its lock-containing receiver: flagged.
func (s Shard) Grow() int { return s.n + 1 }

// Sum copies each lock-containing element while ranging: flagged on
// the range value. The slice parameter itself is behind a slice
// header and not flagged.
func Sum(shards []Shard) int {
	total := 0
	for _, s := range shards {
		total += s.n
	}
	return total
}

// Clone dereferences a lock-containing pointer into a copy: flagged.
func Clone(s *Shard) int {
	dup := *s
	return dup.n
}

// Publish sends on a channel while the shard lock is held: flagged.
func Publish(s *Shard, out chan<- int) {
	s.mu.Lock()
	out <- s.n
	s.mu.Unlock()
}

// Drain releases the lock before sending: compliant.
func Drain(s *Shard, out chan<- int) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	out <- n
}
