// Package scanner is a lint fixture for the ctxfirst analyzer:
// context-position and context-minting violations in an I/O package.
package scanner

import "context"

// Probe takes its context first: compliant.
func Probe(ctx context.Context, host string) error {
	_ = host
	return ctx.Err()
}

// Sweep buries the context in second position: flagged.
func Sweep(hosts []string, ctx context.Context) error {
	_ = hosts
	return ctx.Err()
}

// Run mints its own root context, cutting off the caller's
// cancellation: flagged.
func Run(host string) error {
	ctx := context.Background()
	return Probe(ctx, host)
}

// helper is unexported; minting a placeholder context there is
// tolerated.
func helper() context.Context { return context.TODO() }
