// Package metrics is a lint fixture for the nilsafe analyzer: handle
// types whose exported pointer-receiver methods must open with a
// nil-receiver guard, delegate to one, or be flagged.
package metrics

// Counter is a configured handle type.
type Counter struct{ n int64 }

// Add carries the canonical guard: not flagged.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc is a single-statement delegation through the receiver; Add
// carries the guard. Not flagged.
func (c *Counter) Inc() { c.Add(1) }

// Value dereferences a possibly-nil receiver with no guard: flagged.
func (c *Counter) Value() int64 { return c.n }

// reset is unexported and out of the contract's scope.
func (c *Counter) reset() { c.n = 0 }

// Report delegates through a multi-statement body; the call graph
// proves every receiver use lands in guarded Add. Not flagged.
func (c *Counter) Report(deltas []int64) {
	for _, d := range deltas {
		c.Add(d)
	}
}

// Drain delegates to unguarded reset, so the delegation does not
// discharge the contract: flagged.
func (c *Counter) Drain() { c.reset() }

// Gauge is a configured handle type.
type Gauge struct{ v float64 }

// Set establishes its guard within the two-statement window
// (Snapshot-style methods declare a zero value first): not flagged.
func (g *Gauge) Set(v float64) {
	clamped := v
	if g == nil {
		return
	}
	g.v = clamped
}

// Meter is NOT a configured handle type; its unguarded method is out
// of scope.
type Meter struct{ n int }

// Bump has no guard but Meter carries no nil-safety contract.
func (m *Meter) Bump() { m.n++ }
