// Package core is a lint fixture budget package for the budgetpath
// analyzer: every DialContext call must be dominated by a ratelimit
// acquisition — in its own body, or on every caller path into the
// helper that dials.
package core

import (
	"context"
	"net"

	"fixture/internal/ratelimit"
)

// Prober dials probe targets under a budget.
type Prober struct {
	dialer  net.Dialer
	limiter *ratelimit.Limiter
}

// ProbeOne acquires before dialing in the same body: not flagged.
func (p *Prober) ProbeOne(ctx context.Context, addr string) error {
	if err := p.limiter.Wait(ctx); err != nil {
		return err
	}
	conn, err := p.dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// dial is a helper with no acquisition of its own, so every caller
// path must be budgeted. Rush below is not, so this dial is flagged.
func (p *Prober) dial(ctx context.Context, addr string) (net.Conn, error) {
	return p.dialer.DialContext(ctx, "tcp", addr)
}

// wait reaches the ratelimit root one call level down.
func (p *Prober) wait(ctx context.Context) error { return p.limiter.Wait(ctx) }

// ProbeVia acquires through the wait helper before calling dial: this
// caller path is budgeted.
func (p *Prober) ProbeVia(ctx context.Context, addr string) error {
	if err := p.wait(ctx); err != nil {
		return err
	}
	conn, err := p.dial(ctx, addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// Rush calls the dial helper with no acquisition anywhere on the
// path: the helper's dial is flagged for it.
func (p *Prober) Rush(ctx context.Context, addr string) error {
	conn, err := p.dial(ctx, addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// Burst dials directly with no acquisition: flagged.
func (p *Prober) Burst(ctx context.Context, addr string) error {
	conn, err := p.dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// Calibrate dials the loopback to measure the local stack — outside
// the probe budget by design; the suppression records why: not
// flagged.
func (p *Prober) Calibrate(ctx context.Context) error {
	//lint:allow budgetpath/unbudgeted loopback self-measurement sends no probe at the cloud
	conn, err := p.dialer.DialContext(ctx, "tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	return conn.Close()
}
