// Package ratelimit is the fixture budget layer: Wait, Allow and
// Acquire are the acquisition roots the budgetpath analyzer
// recognizes by package suffix and name.
package ratelimit

import "context"

// Limiter hands out probe tokens.
type Limiter struct{ rate float64 }

// Wait blocks until a token is available.
func (l *Limiter) Wait(ctx context.Context) error { return ctx.Err() }

// Allow reports whether a token is free right now.
func (l *Limiter) Allow() bool { return l.rate > 0 }

// Budget is a leased share of the fleet-wide rate.
type Budget struct{ held int }

// Acquire leases one probe slot.
func (b *Budget) Acquire(ctx context.Context) error {
	b.held++
	return ctx.Err()
}
