// The lockdisc analyzer: lock discipline in the concurrency-bearing
// layers. Two rules:
//
//	lockdisc/copy — no sync.Mutex or sync.RWMutex reaches a function
//	    by value, leaves one by value, or is copied by a range loop or
//	    a pointer dereference. A copied mutex is two mutexes that both
//	    think they guard the same state — the store's per-shard locks
//	    and the pipeline's failure latch both die silently this way.
//	    Checked module-wide.
//	lockdisc/chansend — in the pipeline and store packages, no channel
//	    send while a mutex is lexically held. The pipeline's bounded
//	    streams exert backpressure by design; a send under a lock
//	    turns that backpressure into a deadlock the moment the
//	    consumer needs the same lock. The analysis is lexical (a
//	    Lock() earlier in the statement list without an intervening
//	    Unlock()) — it sees through blocks and branches but not
//	    function boundaries, which matches how the round pipeline
//	    actually takes its locks.
package lint

import (
	"go/ast"
)

// LockDiscAnalyzer enforces mutex copy and hold-across-send
// discipline.
var LockDiscAnalyzer = &Analyzer{
	Name: "lockdisc",
	Doc:  "no mutex value copies; no channel send while holding a lock in pipeline/store/colstore",
	Run:  runLockDisc,
}

func runLockDisc(pkg *Package, opts Options) []Diagnostic {
	var out []Diagnostic
	checkSends := matchPkg(pkg.Path, opts.LockSendPackages)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, lockCopyDiags(pkg, fd)...)
			if checkSends && fd.Body != nil {
				out = append(out, sendUnderLockDiags(pkg, fd.Body, false)...)
			}
		}
	}
	return out
}

// lockCopyDiags flags lock-containing values crossing a function
// boundary or being copied by a range or dereference.
func lockCopyDiags(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	flagFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pkg.Info.TypeOf(field.Type)
			// typeHasLock stops at pointers itself, so *T params pass.
			if t != nil && typeHasLock(t) {
				out = append(out, diag(pkg, field.Type, "lockdisc/copy",
					fd.Name.Name+" passes a lock-containing value as a "+what+"; use a pointer"))
			}
		}
	}
	flagFields(fd.Recv, "receiver")
	flagFields(fd.Type.Params, "parameter")
	flagFields(fd.Type.Results, "result")
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.RangeStmt:
			if nn.Value == nil {
				return true
			}
			if t := pkg.Info.TypeOf(nn.Value); t != nil && typeHasLock(t) {
				out = append(out, diag(pkg, nn.Value, "lockdisc/copy",
					"range copies a lock-containing element; iterate by index"))
			}
		case *ast.AssignStmt:
			for _, rhs := range nn.Rhs {
				star, ok := ast.Unparen(rhs).(*ast.StarExpr)
				if !ok {
					continue
				}
				if t := pkg.Info.TypeOf(star); t != nil && typeHasLock(t) {
					out = append(out, diag(pkg, rhs, "lockdisc/copy",
						"dereference copies a lock-containing value; keep the pointer"))
				}
			}
		}
		return true
	})
	return out
}

// sendUnderLockDiags walks a statement block tracking whether a mutex
// is lexically held, flagging channel sends (including select send
// cases) made while it is. Function literals reset the held state —
// they run later, on a goroutine whose lock state this analysis cannot
// know.
func sendUnderLockDiags(pkg *Package, block *ast.BlockStmt, held bool) []Diagnostic {
	var out []Diagnostic
	walkStmts(pkg, block.List, held, &out)
	return out
}

func walkStmts(pkg *Package, stmts []ast.Stmt, held bool, out *[]Diagnostic) {
	for _, st := range stmts {
		held = walkStmt(pkg, st, held, out)
	}
}

// walkStmt processes one statement, returning the held state after it.
func walkStmt(pkg *Package, st ast.Stmt, held bool, out *[]Diagnostic) bool {
	switch nn := st.(type) {
	case *ast.ExprStmt:
		switch lockCallKind(nn.X) {
		case "lock":
			return true
		case "unlock":
			return false
		}
		checkSendsIn(pkg, nn.X, held, out)
	case *ast.SendStmt:
		if held {
			*out = append(*out, diag(pkg, nn, "lockdisc/chansend",
				"channel send while a mutex is held; backpressure on the receiver becomes a deadlock"))
		}
		checkSendsIn(pkg, nn.Value, held, out)
	case *ast.BlockStmt:
		walkStmts(pkg, nn.List, held, out)
	case *ast.IfStmt:
		walkStmts(pkg, nn.Body.List, held, out)
		if nn.Else != nil {
			walkStmt(pkg, nn.Else, held, out)
		}
	case *ast.ForStmt:
		walkStmts(pkg, nn.Body.List, held, out)
	case *ast.RangeStmt:
		walkStmts(pkg, nn.Body.List, held, out)
	case *ast.SwitchStmt:
		for _, c := range nn.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pkg, cc.Body, held, out)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range nn.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pkg, cc.Body, held, out)
			}
		}
	case *ast.SelectStmt:
		for _, c := range nn.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && held {
				*out = append(*out, diag(pkg, send, "lockdisc/chansend",
					"select send case while a mutex is held; backpressure on the receiver becomes a deadlock"))
			}
			walkStmts(pkg, cc.Body, held, out)
		}
	case *ast.LabeledStmt:
		return walkStmt(pkg, nn.Stmt, held, out)
	case *ast.GoStmt, *ast.DeferStmt:
		// Deferred/spawned bodies run under their own lock state.
	case *ast.AssignStmt:
		for _, rhs := range nn.Rhs {
			checkSendsIn(pkg, rhs, held, out)
		}
	}
	return held
}

// checkSendsIn flags sends hidden inside expressions (function
// literals excepted — they execute later).
func checkSendsIn(pkg *Package, expr ast.Expr, held bool, out *[]Diagnostic) {
	if !held || expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			*out = append(*out, diag(pkg, nn, "lockdisc/chansend",
				"channel send while a mutex is held; backpressure on the receiver becomes a deadlock"))
		}
		return true
	})
}

// lockCallKind classifies an expression as a mutex lock or unlock
// call.
func lockCallKind(expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}
