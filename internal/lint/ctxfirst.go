// The ctxfirst analyzer. The I/O packages — scanner, fetcher, core,
// pipeline — are the layers a campaign cancels through: the §7 ethics
// contract ("stop probing when told to stop") is only as good as
// context propagation. Two rules keep that propagation structural:
//
//	ctxfirst/param — a function taking a context.Context takes it as
//	    its first parameter, so call sites and wrappers compose
//	    mechanically.
//	ctxfirst/background — an exported function does not mint its own
//	    context.Background()/TODO(); it must accept the caller's
//	    context, or cancellation silently stops at its boundary.
//	    (package main is exempt: the process entry point is where a
//	    root context is legitimately born.)
package lint

import (
	"go/ast"
	"strconv"
)

// CtxFirstAnalyzer enforces context-first signatures and forbids
// context minting in the I/O packages.
var CtxFirstAnalyzer = &Analyzer{
	Name: "ctxfirst",
	Doc:  "I/O-package functions take context.Context first and never mint their own",
	Run:  runCtxFirst,
}

func runCtxFirst(pkg *Package, opts Options) []Diagnostic {
	if !matchPkg(pkg.Path, opts.CtxPackages) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, ctxParamDiags(pkg, fd)...)
			if fd.Name.IsExported() && fd.Body != nil && pkg.Types.Name() != "main" {
				out = append(out, ctxMintDiags(pkg, fd)...)
			}
		}
	}
	return out
}

// ctxParamDiags flags context.Context parameters in any position but
// the first.
func ctxParamDiags(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	if fd.Type.Params == nil {
		return nil
	}
	var out []Diagnostic
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pkg.Info.TypeOf(field.Type)
		if t != nil && t.String() == "context.Context" && pos > 0 {
			out = append(out, diag(pkg, field.Type, "ctxfirst/param",
				fd.Name.Name+" takes context.Context in position "+strconv.Itoa(pos)+"; it must be the first parameter"))
		}
		pos += n
	}
	return out
}

// ctxMintDiags flags context.Background()/TODO() calls inside exported
// library functions.
func ctxMintDiags(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgRef(pkg, sel)
		if !ok || path != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			out = append(out, diag(pkg, call, "ctxfirst/background",
				"exported "+fd.Name.Name+" mints context."+sel.Sel.Name+"(); accept the caller's context so cancellation propagates"))
		}
		return true
	})
	return out
}
