// The atomicwrite analyzer. The durability contract — a crash at any
// instant leaves every store file either old-and-intact or
// new-and-complete — holds only because every persistence-layer write
// goes through internal/atomicfile's temp-fsync-rename protocol. A
// single direct os.Create in the store or the trace journal reopens
// the torn-write window the protocol exists to close. One rule:
//
//	atomicwrite/direct — a persistence package (store, colstore, the
//	    trace journal) opens a file destructively itself: os.Create,
//	    os.WriteFile, or os.OpenFile with O_TRUNC. The atomicfile
//	    package is the one place allowed to do that, because it does
//	    it to a temp file and renames over the target.
package lint

import (
	"go/ast"
)

// AtomicWriteAnalyzer keeps destructive file opens out of the
// persistence packages.
var AtomicWriteAnalyzer = &Analyzer{
	Name: "atomicwrite",
	Doc:  "persistence packages never open files destructively; durable writes go through internal/atomicfile",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pkg *Package, opts Options) []Diagnostic {
	if matchPkg(pkg.Path, opts.AtomicPackages) || !matchPkg(pkg.Path, opts.PersistPackages) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, _, ok := pkgRef(pkg, sel)
			if !ok || path != "os" {
				return true
			}
			switch sel.Sel.Name {
			case "Create", "WriteFile":
				out = append(out, diag(pkg, call, "atomicwrite/direct",
					"os."+sel.Sel.Name+" in a persistence package truncates in place; a crash mid-write tears the file — use internal/atomicfile"))
			case "OpenFile":
				if hasTruncFlag(call) {
					out = append(out, diag(pkg, call, "atomicwrite/direct",
						"os.OpenFile with O_TRUNC in a persistence package tears the file on a crash mid-write — use internal/atomicfile"))
				}
			}
			return true
		})
	}
	return out
}

// hasTruncFlag reports whether an os.OpenFile call's flag argument
// mentions O_TRUNC.
func hasTruncFlag(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_TRUNC" {
			found = true
			return false
		}
		return true
	})
	return found
}
