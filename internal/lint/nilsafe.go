// The nilsafe analyzer. The metrics and trace packages promise that a
// nil handle is a valid no-op: a nil *Registry hands out nil handles,
// instrumented components branch nowhere, and an untraced campaign
// pays one nil check per site. The whole platform is threaded on that
// contract, so a single exported method without its guard is a latent
// nil-pointer crash in every pipeline stage. The rule:
//
//	nilsafe/guard — every exported method with a pointer receiver on a
//	    configured handle type must establish its nil-receiver check
//	    within its first two statements, or delegate: a method whose
//	    receiver is only ever used as the receiver of calls to methods
//	    that are themselves guarded (resolved through the call graph)
//	    inherits their guards — the Inc-calls-Add pattern, and the
//	    WriteJSON-wraps-Snapshot pattern, without suppressions.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"whowas/internal/lint/callgraph"
)

// NilSafeAnalyzer enforces the nil-receiver-guard contract on the
// metrics/trace handle types.
var NilSafeAnalyzer = &Analyzer{
	Name:      "nilsafe",
	Doc:       "exported methods on metrics/trace handle types begin with a nil-receiver guard or delegate to one",
	RunModule: runNilSafe,
}

// guardWindow is how many leading statements may precede the nil
// check (Snapshot-style methods declare their zero return value
// first).
const guardWindow = 2

func runNilSafe(pkgs []*Package, g *callgraph.Graph, opts Options) []Diagnostic {
	ns := &nilSafe{g: g, state: map[*ast.FuncDecl]int8{}}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var typeNames []string
		for suffix, names := range opts.NilSafe {
			if matchPkg(pkg.Path, []string{suffix}) {
				typeNames = append(typeNames, names...)
			}
		}
		if len(typeNames) == 0 {
			continue
		}
		guarded := map[string]bool{}
		for _, n := range typeNames {
			guarded[n] = true
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				tname, pointer := recvTypeName(fd)
				if !pointer || !guarded[tname] {
					continue
				}
				if !ns.safe(fd, pkg.Info) {
					out = append(out, diag(pkg, fd.Name, "nilsafe/guard",
						"exported method (*"+tname+")."+fd.Name.Name+" does not begin with a nil-receiver guard or delegate to a guarded method; a nil "+tname+" handle must be a no-op"))
				}
			}
		}
	}
	return out
}

// nilSafe memoizes per-method safety across the recursive delegation
// check.
type nilSafe struct {
	g     *callgraph.Graph
	state map[*ast.FuncDecl]int8 // 0 unknown, 1 safe, -1 unsafe, 2 visiting
}

// safe reports whether the method is nil-receiver safe: it guards, it
// never dereferences its receiver, or every receiver use is a call to
// a method that is itself safe.
func (ns *nilSafe) safe(fd *ast.FuncDecl, info *types.Info) bool {
	switch ns.state[fd] {
	case 1, 2: // visiting counts as safe: a guard anywhere on the cycle covers it
		return true
	case -1:
		return false
	}
	ns.state[fd] = 2
	ok := ns.check(fd, info)
	if ok {
		ns.state[fd] = 1
	} else {
		ns.state[fd] = -1
	}
	return ok
}

func (ns *nilSafe) check(fd *ast.FuncDecl, info *types.Info) bool {
	recv := recvIdent(fd)
	if recv == nil {
		// An unnamed receiver cannot be dereferenced, so the method is
		// trivially nil-safe.
		return true
	}
	if hasNilGuard(fd, recv.Name) {
		return true
	}
	recvObj := info.Defs[recv]
	if recvObj == nil {
		return false
	}
	// Delegation: collect the receiver uses that are safe — appearing
	// in a nil comparison, or as the receiver of a call to a method
	// that carries its own guard.
	okUse := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || info.Uses[id] != recvObj {
				return true
			}
			if ns.delegateSafe(sel, fd, info) {
				okUse[id] = true
			}
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			xi, xok := ast.Unparen(x.X).(*ast.Ident)
			yi, yok := ast.Unparen(x.Y).(*ast.Ident)
			if xok && yok {
				if info.Uses[xi] == recvObj && yi.Name == "nil" {
					okUse[xi] = true
				}
				if info.Uses[yi] == recvObj && xi.Name == "nil" {
					okUse[yi] = true
				}
			}
		}
		return true
	})
	unsafe := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == recvObj && !okUse[id] {
			unsafe = true
		}
		return !unsafe
	})
	return !unsafe
}

// delegateSafe reports whether the method a selector call resolves to
// (through the call graph) is a pointer-receiver method on the same
// type that is itself nil-safe.
func (ns *nilSafe) delegateSafe(sel *ast.SelectorExpr, caller *ast.FuncDecl, info *types.Info) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	node := ns.g.NodeOf(fn)
	if node == nil || node.Decl == nil {
		return false
	}
	calleeType, calleePtr := recvTypeName(node.Decl)
	callerType, _ := recvTypeName(caller)
	if !calleePtr || calleeType != callerType {
		// A value-receiver method (or a promoted method on an embedded
		// type) dereferences the pointer at the call — no guard can
		// save that.
		return false
	}
	return ns.safe(node.Decl, node.Pkg.Info)
}

// hasNilGuard reports whether one of the method's first guardWindow
// statements compares the receiver against nil.
func hasNilGuard(fd *ast.FuncDecl, recv string) bool {
	stmts := fd.Body.List
	for i := 0; i < len(stmts) && i < guardWindow; i++ {
		ifs, ok := stmts[i].(*ast.IfStmt)
		if ok && isNilCheckOf(ifs.Cond, recv) {
			return true
		}
	}
	return false
}
