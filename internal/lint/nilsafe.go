// The nilsafe analyzer. The metrics and trace packages promise that a
// nil handle is a valid no-op: a nil *Registry hands out nil handles,
// instrumented components branch nowhere, and an untraced campaign
// pays one nil check per site. The whole platform is threaded on that
// contract, so a single exported method without its guard is a latent
// nil-pointer crash in every pipeline stage. The rule:
//
//	nilsafe/guard — every exported method with a pointer receiver on a
//	    configured handle type must establish its nil-receiver check
//	    within its first two statements, or consist of a single
//	    statement delegating to another method on the same receiver
//	    (which carries the guard).
package lint

import (
	"go/ast"
)

// NilSafeAnalyzer enforces the nil-receiver-guard contract on the
// metrics/trace handle types.
var NilSafeAnalyzer = &Analyzer{
	Name: "nilsafe",
	Doc:  "exported methods on metrics/trace handle types begin with a nil-receiver guard",
	Run:  runNilSafe,
}

// guardWindow is how many leading statements may precede the nil
// check (Snapshot-style methods declare their zero return value
// first).
const guardWindow = 2

func runNilSafe(pkg *Package, opts Options) []Diagnostic {
	var typeNames []string
	for suffix, names := range opts.NilSafe {
		if matchPkg(pkg.Path, []string{suffix}) {
			typeNames = append(typeNames, names...)
		}
	}
	if len(typeNames) == 0 {
		return nil
	}
	guarded := map[string]bool{}
	for _, n := range typeNames {
		guarded[n] = true
	}

	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			tname, pointer := recvTypeName(fd)
			if !pointer || !guarded[tname] {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				// An unnamed receiver cannot be dereferenced, so the
				// method is trivially nil-safe.
				continue
			}
			if hasNilGuard(fd, recv.Name) || delegates(fd, recv.Name) {
				continue
			}
			out = append(out, diag(pkg, fd.Name, "nilsafe/guard",
				"exported method (*"+tname+")."+fd.Name.Name+" does not begin with a nil-receiver guard; a nil "+tname+" handle must be a no-op"))
		}
	}
	return out
}

// hasNilGuard reports whether one of the method's first guardWindow
// statements compares the receiver against nil.
func hasNilGuard(fd *ast.FuncDecl, recv string) bool {
	stmts := fd.Body.List
	for i := 0; i < len(stmts) && i < guardWindow; i++ {
		ifs, ok := stmts[i].(*ast.IfStmt)
		if ok && isNilCheckOf(ifs.Cond, recv) {
			return true
		}
	}
	return false
}

// delegates reports whether the method body is a single statement
// whose work is a call through the same receiver — the Inc-calls-Add
// pattern, where the callee carries the guard.
func delegates(fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	found := false
	ast.Inspect(fd.Body.List[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}
