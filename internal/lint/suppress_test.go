package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOnly builds a Package with syntax but no type information —
// enough for the suppression machinery, which never consults types.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Path: "fixture/p", Fset: fset, Files: []*ast.File{f}}
}

func TestCollectAllows(t *testing.T) {
	pkg := parseOnly(t, `package p

//lint:allow determinism/wallclock stage timers never feed the digest
var a = 1

//lint:allow errcheck
var b = 2

//lint:allow
var c = 3
`)
	allows, diags := collectAllows(pkg)

	if len(allows) != 1 {
		t.Fatalf("got %d well-formed allows, want 1", len(allows))
	}
	if allows[0].rule != "determinism/wallclock" {
		t.Errorf("rule = %q, want determinism/wallclock", allows[0].rule)
	}
	if allows[0].reason != "stage timers never feed the digest" {
		t.Errorf("reason = %q", allows[0].reason)
	}

	if len(diags) != 2 {
		t.Fatalf("got %d malformed-suppression diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "lint/allow" {
			t.Errorf("malformed suppression reported as %s, want lint/allow", d.Rule)
		}
	}
	if !strings.Contains(diags[0].Msg, "no reason") {
		t.Errorf("reasonless suppression message = %q", diags[0].Msg)
	}
	if !strings.Contains(diags[1].Msg, "no rule") {
		t.Errorf("ruleless suppression message = %q", diags[1].Msg)
	}
}

func TestAllowMatching(t *testing.T) {
	a := &allow{
		pos:  token.Position{Filename: "x.go", Line: 10},
		rule: "determinism/wallclock",
	}
	d := func(file string, line int, rule string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line}, Rule: rule}
	}

	if !a.matches(d("x.go", 10, "determinism/wallclock")) {
		t.Error("same line, exact rule: want match")
	}
	if !a.matches(d("x.go", 11, "determinism/wallclock")) {
		t.Error("line below, exact rule: want match")
	}
	if a.matches(d("x.go", 12, "determinism/wallclock")) {
		t.Error("two lines below: want no match")
	}
	if a.matches(d("x.go", 9, "determinism/wallclock")) {
		t.Error("line above the comment: want no match")
	}
	if a.matches(d("y.go", 10, "determinism/wallclock")) {
		t.Error("other file: want no match")
	}
	if a.matches(d("x.go", 10, "determinism/rand")) {
		t.Error("other rule in category: want no match for a full-ID allow")
	}

	cat := &allow{pos: token.Position{Filename: "x.go", Line: 10}, rule: "determinism"}
	if !cat.matches(d("x.go", 10, "determinism/rand")) {
		t.Error("category allow: want match on any rule in the category")
	}
	if cat.matches(d("x.go", 10, "errcheck/discard")) {
		t.Error("category allow: want no match outside the category")
	}
}

func TestApplyAndUnusedAllows(t *testing.T) {
	used := &allow{pos: token.Position{Filename: "x.go", Line: 5}, rule: "nilsafe/guard"}
	stale := &allow{pos: token.Position{Filename: "x.go", Line: 40}, rule: "errcheck"}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 6}, Rule: "nilsafe/guard", Msg: "m"},
		{Pos: token.Position{Filename: "x.go", Line: 20}, Rule: "nilsafe/guard", Msg: "kept"},
	}

	kept := applyAllows(diags, []*allow{used, stale})
	if len(kept) != 1 || kept[0].Msg != "kept" {
		t.Fatalf("applyAllows kept %v, want only the uncovered diagnostic", kept)
	}

	unused := unusedAllows([]*allow{used, stale})
	if len(unused) != 1 {
		t.Fatalf("got %d unused-allow diagnostics, want 1", len(unused))
	}
	if unused[0].Rule != "lint/unused-allow" || unused[0].Pos.Line != 40 {
		t.Errorf("unused-allow diagnostic = %+v", unused[0])
	}
}
