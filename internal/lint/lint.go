// Package lint is WhoWas's project-invariant static-analysis suite: a
// dependency-free framework on the standard library's go/ast, go/parser
// and go/types that machine-checks the invariants the compiler cannot —
// the properties the platform's headline claims rest on.
//
// WhoWas promises byte-identical round digests across shard counts and
// reruns (the clustering-reproducibility contract), a probe budget that
// never exceeds the ethics envelope, and nil-safe metrics/trace handles
// threaded through every pipeline stage. After several generations of
// concurrency growth those invariants were enforced only by convention;
// this package turns each one into an analyzer that fails the build:
//
//   - determinism — no wall-clock reads, argless math/rand draws, or
//     map-iteration-order-dependent output in the packages whose output
//     feeds the store digest (cloudsim, cluster, features, simhash,
//     store, colstore).
//   - nilsafe — every exported method on the metrics/trace handle
//     types begins with a nil-receiver guard (or delegates to one),
//     keeping the "nil handle is a no-op" contract true forever.
//   - ctxfirst — functions in the I/O packages (scanner, fetcher,
//     core, pipeline) take context.Context as their first parameter and
//     exported functions never mint their own context.Background.
//   - errcheck — no silently discarded error returns from the
//     crash-safety layer (atomicfile, store mutations, trace journal)
//     or from closing files opened for writing.
//   - lockdisc — lock discipline: no sync.Mutex/RWMutex value copies,
//     and no channel send while a mutex is held in pipeline/store
//     (colstore included).
//
// A finding the code is genuinely right to ignore is suppressed in
// place with a written reason:
//
//	//lint:allow <rule> <reason>
//
// on the flagged line or the line above it. A suppression without a
// reason, or one that matches nothing, is itself a diagnostic — the
// suppression inventory stays honest.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos  token.Position
	Rule string // e.g. "determinism/wallclock"
	Msg  string
}

// String renders the diagnostic in the conventional
// file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the rule category; individual diagnostics carry rule IDs
	// of the form "<Name>/<check>".
	Name string
	// Doc is a one-line description shown by `whowas-lint -rules`.
	Doc string
	// Run inspects one package and returns its findings.
	Run func(pkg *Package, opts Options) []Diagnostic
}

// Options scopes the analyzers to the packages whose invariants they
// guard. Packages are matched by import-path suffix (so the same suite
// runs over the real module and over test fixtures).
type Options struct {
	// Deterministic lists the packages whose output feeds the store
	// digest; the determinism analyzer runs only there.
	Deterministic []string
	// NilSafe maps a package suffix to the handle type names whose
	// exported pointer-receiver methods must start with a nil guard.
	NilSafe map[string][]string
	// CtxPackages lists the I/O packages held to the context-first
	// convention.
	CtxPackages []string
	// ErrSourcePackages lists packages (like atomicfile) all of whose
	// error returns must be checked by callers — and inside which no
	// error may be discarded at all (they are pure write path).
	ErrSourcePackages []string
	// ErrMethodPackages lists packages whose exported error-returning
	// methods must never be bare-discarded (store mutations, the trace
	// journal).
	ErrMethodPackages []string
	// LockSendPackages lists the packages checked for channel sends
	// under a held mutex.
	LockSendPackages []string
}

// DefaultOptions returns the suite configuration for the WhoWas module
// itself.
func DefaultOptions() Options {
	return Options{
		Deterministic: []string{
			"internal/cloudsim",
			"internal/cluster",
			"internal/features",
			"internal/simhash",
			"internal/store",
			"internal/store/colstore",
		},
		NilSafe: map[string][]string{
			"internal/metrics": {"Counter", "Gauge", "Stage", "Histogram", "Registry"},
			"internal/trace":   {"Tracer", "Span"},
		},
		CtxPackages: []string{
			"internal/scanner",
			"internal/fetcher",
			"internal/core",
			"internal/pipeline",
			"internal/cloudapi",
			"internal/coord",
		},
		ErrSourcePackages: []string{"internal/atomicfile"},
		ErrMethodPackages: []string{"internal/store", "internal/store/colstore", "internal/trace"},
		LockSendPackages:  []string{"internal/pipeline", "internal/store", "internal/store/colstore", "internal/coord", "internal/fleetobs"},
	}
}

// matchPkg reports whether a package import path matches one of the
// configured suffixes (exactly, or as a "/"-delimited suffix).
func matchPkg(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Suite is an ordered set of analyzers plus the options they run
// under.
type Suite struct {
	Analyzers []*Analyzer
	Opts      Options
}

// NewSuite assembles the full analyzer suite under the given options.
func NewSuite(opts Options) *Suite {
	return &Suite{
		Analyzers: []*Analyzer{
			DeterminismAnalyzer,
			NilSafeAnalyzer,
			CtxFirstAnalyzer,
			ErrCheckAnalyzer,
			LockDiscAnalyzer,
		},
		Opts: opts,
	}
}

// DefaultSuite is NewSuite(DefaultOptions()).
func DefaultSuite() *Suite { return NewSuite(DefaultOptions()) }

// Run executes every analyzer over every package, applies the
// //lint:allow suppressions, and returns the surviving diagnostics
// sorted by position. Malformed or unused suppressions are reported as
// lint/* diagnostics alongside the analyzers' own.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg)
		var raw []Diagnostic
		for _, a := range s.Analyzers {
			raw = append(raw, a.Run(pkg, s.Opts)...)
		}
		out = append(out, applyAllows(raw, allows)...)
		out = append(out, allowDiags...)
		out = append(out, unusedAllows(allows)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
