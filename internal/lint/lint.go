// Package lint is WhoWas's project-invariant static-analysis suite: a
// dependency-free framework on the standard library's go/ast, go/parser
// and go/types that machine-checks the invariants the compiler cannot —
// the properties the platform's headline claims rest on.
//
// WhoWas promises byte-identical round digests across shard counts and
// reruns (the clustering-reproducibility contract), a probe budget that
// never exceeds the ethics envelope, and nil-safe metrics/trace handles
// threaded through every pipeline stage. After several generations of
// concurrency growth those invariants were enforced only by convention;
// this package turns each one into an analyzer that fails the build:
//
//   - determinism — no wall-clock reads, argless math/rand draws, or
//     map-iteration-order-dependent output in the packages whose output
//     feeds the store digest (cloudsim, cluster, features, simhash,
//     store, colstore).
//   - nilsafe — every exported method on the metrics/trace handle
//     types begins with a nil-receiver guard (or delegates to one),
//     keeping the "nil handle is a no-op" contract true forever.
//   - ctxfirst — functions in the I/O packages (scanner, fetcher,
//     core, pipeline) take context.Context as their first parameter and
//     exported functions never mint their own context.Background.
//   - errcheck — no silently discarded error returns from the
//     crash-safety layer (atomicfile, store mutations, trace journal)
//     or from closing files opened for writing.
//   - lockdisc — lock discipline: no sync.Mutex/RWMutex value copies,
//     and no channel send while a mutex is held in pipeline/store
//     (colstore included).
//
// A second generation of analyzers runs over the whole module at once,
// powered by the conservative call graph in internal/lint/callgraph
// (static calls, interface method sets, function values tracked one
// level):
//
//   - goleak — every goroutine spawned by a `go` statement must reach
//     a join or cancel path: a WaitGroup Done/Wait, a receive from a
//     context's Done channel, a close/send on a channel the spawner
//     receives from, a server loop whose Close/Shutdown is called
//     elsewhere, or a connection-scoped handler that defers Close on
//     the conn it owns. The exact shape of the PR 4 fetcher leak and
//     the PR 7 coordinator leak.
//   - wiretag — every struct that crosses a wire boundary (the coord
//     protocol, ops JSON documents, the cloudapi control plane,
//     fleetobs reports — found by tracing encoder call sites and
//     closing over field types) carries explicit `json` tags on all
//     exported fields, and no wire package iterates a map straight
//     into an encoder.
//   - atomicwrite — the persistence packages (store, colstore, the
//     trace journal) never open a file destructively themselves
//     (os.Create / os.WriteFile / O_TRUNC); every durable write goes
//     through internal/atomicfile's temp-and-rename protocol.
//   - budgetpath — every probe-issuing DialContext in scanner, core
//     and coord is dominated by a rate-budget token acquisition
//     (ratelimit.Limiter.Wait and friends), directly or through every
//     caller path, so no new code path can bypass the §7 envelope.
//
// A finding the code is genuinely right to ignore is suppressed in
// place with a written reason:
//
//	//lint:allow <rule> <reason>
//
// on the flagged line or the line above it. A suppression without a
// reason, or one that matches nothing, is itself a diagnostic — the
// suppression inventory stays honest.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"whowas/internal/lint/callgraph"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos  token.Position
	Rule string // e.g. "determinism/wallclock"
	Msg  string
}

// String renders the diagnostic in the conventional
// file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one named check. Intraprocedural analyzers set Run and
// are invoked once per package; interprocedural analyzers set
// RunModule and are invoked once over every loaded package plus the
// call graph built from them. Exactly one of the two is set.
type Analyzer struct {
	// Name is the rule category; individual diagnostics carry rule IDs
	// of the form "<Name>/<check>".
	Name string
	// Doc is a one-line description shown by `whowas-lint -rules`.
	Doc string
	// Run inspects one package and returns its findings.
	Run func(pkg *Package, opts Options) []Diagnostic
	// RunModule inspects the whole load at once with the call graph.
	RunModule func(pkgs []*Package, g *callgraph.Graph, opts Options) []Diagnostic
}

// Options scopes the analyzers to the packages whose invariants they
// guard. Packages are matched by import-path suffix (so the same suite
// runs over the real module and over test fixtures).
type Options struct {
	// Deterministic lists the packages whose output feeds the store
	// digest; the determinism analyzer runs only there.
	Deterministic []string
	// NilSafe maps a package suffix to the handle type names whose
	// exported pointer-receiver methods must start with a nil guard.
	NilSafe map[string][]string
	// CtxPackages lists the I/O packages held to the context-first
	// convention.
	CtxPackages []string
	// ErrSourcePackages lists packages (like atomicfile) all of whose
	// error returns must be checked by callers — and inside which no
	// error may be discarded at all (they are pure write path).
	ErrSourcePackages []string
	// ErrMethodPackages lists packages whose exported error-returning
	// methods must never be bare-discarded (store mutations, the trace
	// journal).
	ErrMethodPackages []string
	// LockSendPackages lists the packages checked for channel sends
	// under a held mutex.
	LockSendPackages []string
	// WirePackages lists the packages whose JSON encoder/decoder call
	// sites seed the wiretag closure — the wire boundaries.
	WirePackages []string
	// WireSinks lists additional wire sinks as "pkgsuffix.Func" (the
	// ops helpers that wrap json.Encoder); any argument type at a call
	// site seeds the wiretag closure.
	WireSinks []string
	// PersistPackages lists the packages that must route every durable
	// write through AtomicPackages (atomicwrite analyzer).
	PersistPackages []string
	// AtomicPackages lists the packages allowed to open files
	// destructively — the temp-and-rename layer itself.
	AtomicPackages []string
	// BudgetPackages lists the packages whose DialContext calls must be
	// dominated by a budget acquisition (budgetpath analyzer).
	BudgetPackages []string
	// BudgetAcquire lists token acquisitions as "pkgsuffix.Func"; a
	// call reaching one of these (directly or through the call graph)
	// satisfies budgetpath.
	BudgetAcquire []string
}

// DefaultOptions returns the suite configuration for the WhoWas module
// itself.
func DefaultOptions() Options {
	return Options{
		Deterministic: []string{
			"internal/cloudsim",
			"internal/cluster",
			"internal/features",
			"internal/simhash",
			"internal/store",
			"internal/store/colstore",
		},
		NilSafe: map[string][]string{
			"internal/metrics": {"Counter", "Gauge", "Stage", "Histogram", "Registry"},
			"internal/trace":   {"Tracer", "Span"},
		},
		CtxPackages: []string{
			"internal/scanner",
			"internal/fetcher",
			"internal/core",
			"internal/pipeline",
			"internal/cloudapi",
			"internal/coord",
		},
		ErrSourcePackages: []string{"internal/atomicfile"},
		ErrMethodPackages: []string{"internal/store", "internal/store/colstore", "internal/trace"},
		LockSendPackages:  []string{"internal/pipeline", "internal/store", "internal/store/colstore", "internal/coord", "internal/fleetobs"},
		WirePackages: []string{
			"internal/coord",
			"internal/ops",
			"internal/cloudapi",
			"internal/fleetobs",
		},
		WireSinks: []string{
			"internal/ops.WriteJSON",
			"internal/ops.writeJSON",
		},
		PersistPackages: []string{"internal/store", "internal/store/colstore", "internal/trace"},
		AtomicPackages:  []string{"internal/atomicfile"},
		BudgetPackages:  []string{"internal/scanner", "internal/core", "internal/coord"},
		BudgetAcquire: []string{
			"internal/ratelimit.Wait",
			"internal/ratelimit.Allow",
			"internal/ratelimit.Acquire",
		},
	}
}

// matchPkg reports whether a package import path matches one of the
// configured suffixes (exactly, or as a "/"-delimited suffix).
func matchPkg(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Suite is an ordered set of analyzers plus the options they run
// under.
type Suite struct {
	Analyzers []*Analyzer
	Opts      Options
}

// NewSuite assembles the full analyzer suite under the given options.
func NewSuite(opts Options) *Suite {
	return &Suite{
		Analyzers: []*Analyzer{
			DeterminismAnalyzer,
			NilSafeAnalyzer,
			CtxFirstAnalyzer,
			ErrCheckAnalyzer,
			LockDiscAnalyzer,
			GoLeakAnalyzer,
			WireTagAnalyzer,
			AtomicWriteAnalyzer,
			BudgetPathAnalyzer,
		},
		Opts: opts,
	}
}

// Select narrows the suite to the named analyzers (the whowas-lint
// -analyzers flag). Unknown names are reported, not ignored.
func (s *Suite) Select(names []string) error {
	byName := map[string]*Analyzer{}
	for _, a := range s.Analyzers {
		byName[a.Name] = a
	}
	var kept []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return fmt.Errorf("unknown analyzer %q", name)
		}
		kept = append(kept, a)
	}
	s.Analyzers = kept
	return nil
}

// DefaultSuite is NewSuite(DefaultOptions()).
func DefaultSuite() *Suite { return NewSuite(DefaultOptions()) }

// Run executes every analyzer over every package, applies the
// //lint:allow suppressions, and returns the surviving diagnostics
// sorted by position. Malformed or unused suppressions are reported as
// lint/* diagnostics alongside the analyzers' own.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	// Suppressions are collected module-wide up front: module-level
	// analyzers report across package boundaries, and allow.matches
	// compares filenames, so applying the whole set to every finding
	// is exact.
	var allows []*allow
	var out []Diagnostic
	for _, pkg := range pkgs {
		pkgAllows, allowDiags := collectAllows(pkg)
		allows = append(allows, pkgAllows...)
		out = append(out, allowDiags...)
	}

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range s.Analyzers {
			if a.Run != nil {
				raw = append(raw, a.Run(pkg, s.Opts)...)
			}
		}
	}
	if s.needsGraph() {
		g := callgraph.Build(graphPkgs(pkgs))
		for _, a := range s.Analyzers {
			if a.RunModule != nil {
				raw = append(raw, a.RunModule(pkgs, g, s.Opts)...)
			}
		}
	}
	out = append(out, applyAllows(raw, allows)...)
	out = append(out, unusedAllows(allows)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// needsGraph reports whether any selected analyzer is interprocedural.
func (s *Suite) needsGraph() bool {
	for _, a := range s.Analyzers {
		if a.RunModule != nil {
			return true
		}
	}
	return false
}

// graphPkgs adapts the loader's packages to the call-graph builder's
// input shape.
func graphPkgs(pkgs []*Package) []*callgraph.Pkg {
	out := make([]*callgraph.Pkg, 0, len(pkgs))
	for _, p := range pkgs {
		out = append(out, &callgraph.Pkg{Path: p.Path, Files: p.Files, Info: p.Info, Types: p.Types})
	}
	return out
}
