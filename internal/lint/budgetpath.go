// The budgetpath analyzer. The §7 measurement-ethics envelope is a
// number: probes per second, fleet-wide, enforced by the ratelimit
// package's token acquisitions. Every network dial the scanner issues
// must sit behind one — and that property is about paths, not call
// sites: a helper that dials correctly today is one new caller away
// from an unbudgeted probe. The analyzer walks the call graph so the
// envelope cannot be bypassed by a code path nobody thought about:
//
//	budgetpath/unbudgeted — a probe-issuing dial (a DialContext with
//	    the (ctx, network, address) → (net.Conn, error) shape) in a
//	    budget-scoped package is not dominated by a rate-budget token
//	    acquisition. Dominated means: an acquisition (a call that
//	    reaches ratelimit Wait/Allow/Acquire through the call graph)
//	    lexically precedes the dial in the same body, or every caller
//	    path into the enclosing function performs one before the call
//	    site. A dial whose enclosing function has no resolved callers
//	    is flagged — an unreferenced dial path is exactly the hole the
//	    rule exists to close. Recursion is treated optimistically (a
//	    retry loop re-entering its own budgeted body is fine).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"whowas/internal/lint/callgraph"
)

// BudgetPathAnalyzer proves every probe dial sits behind the rate
// budget.
var BudgetPathAnalyzer = &Analyzer{
	Name:      "budgetpath",
	Doc:       "every probe-issuing DialContext is dominated by a ratelimit token acquisition on all caller paths",
	RunModule: runBudgetPath,
}

func runBudgetPath(pkgs []*Package, g *callgraph.Graph, opts Options) []Diagnostic {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	bp := &budgetPath{g: g, opts: opts, acquires: map[*callgraph.Node]int8{}}

	var out []Diagnostic
	for _, n := range g.Nodes() {
		pkg := byPath[n.Pkg.Path]
		if pkg == nil || !matchPkg(n.Pkg.Path, opts.BudgetPackages) {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		inspectOwnBody(body, func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok || !isProbeDial(n.Pkg.Info, call) {
				return
			}
			if !bp.pathBudgeted(n, call.Pos(), map[*callgraph.Node]bool{}) {
				out = append(out, diag(pkg, call, "budgetpath/unbudgeted",
					"probe dial in "+n.Name()+" is not dominated by a rate-budget acquisition on every caller path; acquire a ratelimit token before dialing"))
			}
		})
	}
	return out
}

// budgetPath memoizes acquire-reachability per node across queries.
type budgetPath struct {
	g        *callgraph.Graph
	opts     Options
	acquires map[*callgraph.Node]int8 // 0 unknown, 1 yes, -1 no
}

// pathBudgeted reports whether every execution path reaching pos
// inside n performs a budget acquisition first: either one lexically
// precedes pos in n's own body, or every resolved caller of n is
// itself budgeted before its call site. visiting breaks cycles
// optimistically.
func (bp *budgetPath) pathBudgeted(n *callgraph.Node, pos token.Pos, visiting map[*callgraph.Node]bool) bool {
	if bp.budgetedBefore(n, pos) {
		return true
	}
	if visiting[n] {
		return true // recursion: the outer frame decides
	}
	visiting[n] = true
	defer delete(visiting, n)
	callers := bp.g.CallersOf(n)
	if len(callers) == 0 {
		return false
	}
	for _, e := range callers {
		if !bp.pathBudgeted(e.Caller, e.Call.Pos(), visiting) {
			return false
		}
	}
	return true
}

// budgetedBefore reports whether n's own body performs (or calls into)
// a budget acquisition lexically before pos.
func (bp *budgetPath) budgetedBefore(n *callgraph.Node, pos token.Pos) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	found := false
	inspectOwnBody(body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok || found || call.Pos() >= pos {
			return
		}
		if isAcquireCall(n.Pkg.Info, call, bp.opts) {
			found = true
			return
		}
		for _, callee := range bp.g.CalleesAt(n, call) {
			if bp.acquirePerforming(callee) {
				found = true
				return
			}
		}
	})
	return found
}

// acquirePerforming reports whether the node transitively reaches a
// budget acquisition.
func (bp *budgetPath) acquirePerforming(n *callgraph.Node) bool {
	switch bp.acquires[n] {
	case 1:
		return true
	case -1:
		return false
	}
	bp.acquires[n] = -1 // cycle default: not acquiring
	ok := bp.g.Reaches(n, func(m *callgraph.Node) bool {
		return bodyHasCall(m, func(info *types.Info, call *ast.CallExpr) bool {
			return isAcquireCall(info, call, bp.opts)
		})
	})
	if ok {
		bp.acquires[n] = 1
	}
	return ok
}

// isAcquireCall reports whether the call resolves to one of the
// configured "pkgsuffix.Func" budget acquisitions.
func isAcquireCall(info *types.Info, call *ast.CallExpr, opts Options) bool {
	fn, ok := calleeOfInfo(info, call).(*types.Func)
	if !ok {
		return false
	}
	for _, spec := range opts.BudgetAcquire {
		dot := strings.LastIndex(spec, ".")
		if dot < 0 {
			continue
		}
		if fn.Name() == spec[dot+1:] && matchPkg(objPkgPath(fn), []string{spec[:dot]}) {
			return true
		}
	}
	return false
}

// isProbeDial reports whether the call is a probe-issuing dial: a
// method or function named DialContext with the canonical
// (context.Context, string, string) → (net.Conn, error) shape.
func isProbeDial(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeOfInfo(info, call).(*types.Func)
	if !ok || fn.Name() != "DialContext" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 3 || sig.Results().Len() != 2 {
		return false
	}
	return sig.Params().At(0).Type().String() == "context.Context" &&
		sig.Results().At(0).Type().String() == "net.Conn"
}
