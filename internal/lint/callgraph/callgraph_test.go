package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one import-free source file into a Pkg.
func load(t *testing.T, src string) *Pkg {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Pkg{Path: "x", Files: []*ast.File{f}, Info: info, Types: tpkg}
}

// nodeByName finds a declared function node.
func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Func != nil && n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

// calleeNames flattens a node's outgoing edges to callee names.
func calleeNames(n *Node) map[string]bool {
	out := map[string]bool{}
	for _, e := range n.calls {
		if e.Callee.Func != nil {
			out[e.Callee.Func.Name()] = true
		} else {
			out["<lit>"] = true
		}
	}
	return out
}

func TestStaticCallsAndCallers(t *testing.T) {
	pkg := load(t, `package x
func a() { b(); c() }
func b() { c() }
func c() {}
`)
	g := Build([]*Pkg{pkg})
	a, c := nodeByName(t, g, "a"), nodeByName(t, g, "c")
	got := calleeNames(a)
	if !got["b"] || !got["c"] {
		t.Fatalf("a's callees = %v, want b and c", got)
	}
	callers := map[string]bool{}
	for _, e := range g.CallersOf(c) {
		callers[e.Caller.Func.Name()] = true
	}
	if !callers["a"] || !callers["b"] || len(callers) != 2 {
		t.Fatalf("c's callers = %v, want exactly a and b", callers)
	}
}

// TestMethodSetResolution pins the conservative interface expansion: a
// call through an interface method gets an edge to every loaded
// implementation, value and pointer receivers alike.
func TestMethodSetResolution(t *testing.T) {
	pkg := load(t, `package x
type closer interface{ close() }
type fileImpl struct{}
func (fileImpl) close() {}
type connImpl struct{ n int }
func (c *connImpl) close() { c.n++ }
type unrelated struct{}
func (unrelated) open() {}
func shutdown(c closer) { c.close() }
`)
	g := Build([]*Pkg{pkg})
	sd := nodeByName(t, g, "shutdown")
	impls := map[string]bool{}
	for _, e := range g.CallsFrom(sd) {
		if e.Callee.Func != nil {
			sig := e.Callee.Func.Type().(*types.Signature)
			if sig.Recv() != nil {
				impls[sig.Recv().Type().String()] = true
			}
		}
	}
	if len(impls) != 2 {
		t.Fatalf("interface call resolved to %v, want the 2 close implementations", impls)
	}
}

// TestFuncValueOneLevel pins single-level function-value tracking:
// f := func(){...} / f := named, then f().
func TestFuncValueOneLevel(t *testing.T) {
	pkg := load(t, `package x
func target() {}
func viaLit() {
	f := func() { target() }
	f()
}
func viaName() {
	g := target
	g()
}
`)
	g := Build([]*Pkg{pkg})
	target := nodeByName(t, g, "target")

	// viaLit -> literal edge, and the literal -> target edge.
	vl := nodeByName(t, g, "viaLit")
	if got := calleeNames(vl); !got["<lit>"] {
		t.Fatalf("viaLit callees = %v, want the assigned literal", got)
	}
	// viaName -> target directly through the value.
	vn := nodeByName(t, g, "viaName")
	if got := calleeNames(vn); !got["target"] {
		t.Fatalf("viaName callees = %v, want target", got)
	}
	// Reachability sees target from both.
	pred := func(n *Node) bool { return n == target }
	if !g.Reaches(vl, pred) {
		t.Error("viaLit does not reach target through the literal")
	}
	if !g.Reaches(vn, pred) {
		t.Error("viaName does not reach target through the value")
	}
}

// TestLiteralNodesOwnTheirCalls pins the node-per-literal split: calls
// inside a literal belong to the literal's node, not its encloser's,
// and Encl points back.
func TestLiteralNodesOwnTheirCalls(t *testing.T) {
	pkg := load(t, `package x
func helper() {}
func spawn() {
	go func() { helper() }()
}
`)
	g := Build([]*Pkg{pkg})
	sp := nodeByName(t, g, "spawn")
	if got := calleeNames(sp); got["helper"] {
		t.Fatalf("spawn owns the literal's helper call: %v", got)
	}
	var lit *Node
	for _, n := range g.Nodes() {
		if n.Lit != nil {
			lit = n
		}
	}
	if lit == nil {
		t.Fatal("no literal node built")
	}
	if lit.Encl != sp {
		t.Fatalf("literal's encloser = %v, want spawn", lit.Encl)
	}
	if got := calleeNames(lit); !got["helper"] {
		t.Fatalf("literal callees = %v, want helper", got)
	}
}
