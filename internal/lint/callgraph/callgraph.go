// Package callgraph builds a conservative, dependency-free call graph
// over go/types for the lint suite's interprocedural analyzers. Three
// resolution strategies, in increasing order of conservatism:
//
//   - static calls — a call whose callee resolves to a declared
//     function or concrete method gets one edge to it.
//   - method sets — a call through an interface method gets an edge to
//     every loaded concrete method that implements it (computed from
//     the method sets of every named type in the loaded packages), so
//     "the spawner calls Close on the Dialer" still reaches every
//     Close body the program could run.
//   - function values, tracked one level — a local variable assigned a
//     function literal or a declared function exactly as a value
//     (f := func(){...}; f()) resolves calls through that variable to
//     the assigned bodies. Deeper value flow (through fields, channels,
//     or returns) is out of scope; analyzers treat unresolved calls
//     conservatively.
//
// The graph is syntax+types only: no SSA, no golang.org/x/tools. That
// keeps the lint suite stdlib-only and the resolution rules simple
// enough to audit — which matters, because analyzers derive "must hold"
// claims (a goroutine joins, a dial is budgeted) from reachability
// over these edges.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pkg is one loaded package: the syntax, type info and package object
// the builder consumes. It mirrors the lint loader's Package without
// importing it (the lint package imports this one).
type Pkg struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Node is one function body in the graph: a declared function or
// method (Func and Decl set) or a function literal (Lit set). Literals
// are their own nodes — code inside a literal runs under the literal's
// lifetime, not its encloser's — with Encl pointing back to the node
// whose source encloses them.
type Node struct {
	Func *types.Func   // declared function/method object; nil for literals
	Decl *ast.FuncDecl // declaration with body; nil for literals
	Lit  *ast.FuncLit  // literal body; nil for declared functions
	Encl *Node         // lexically enclosing node (literals only)
	Pkg  *Pkg          // package the body lives in

	calls   []*Edge // outgoing edges, in source order
	callers []*Edge // incoming edges
}

// Body returns the node's statement block.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// Name returns a human-readable identifier for diagnostics.
func (n *Node) Name() string {
	if n.Func != nil {
		return n.Func.Name()
	}
	if n.Encl != nil {
		return "func literal in " + n.Encl.Name()
	}
	return "func literal"
}

// Edge is one resolved call site: Caller's body contains Call, which
// may run Callee.
type Edge struct {
	Caller *Node
	Callee *Node
	Call   *ast.CallExpr
}

// Graph is the module's call graph.
type Graph struct {
	byFunc map[*types.Func]*Node
	byLit  *litMap
	nodes  []*Node

	// implsOf maps an interface method to the concrete loaded methods
	// that implement it.
	implsOf map[*types.Func][]*types.Func
}

// litMap is a tiny identity map for literal nodes (FuncLit pointers).
type litMap struct{ m map[*ast.FuncLit]*Node }

// Build constructs the graph over the loaded packages.
func Build(pkgs []*Pkg) *Graph {
	g := &Graph{
		byFunc:  map[*types.Func]*Node{},
		byLit:   &litMap{m: map[*ast.FuncLit]*Node{}},
		implsOf: map[*types.Func][]*types.Func{},
	}
	// Pass 1: one node per declared function and per literal.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &Node{Func: fn, Decl: fd, Pkg: pkg}
				g.byFunc[fn] = node
				g.nodes = append(g.nodes, node)
				g.addLiterals(pkg, node, fd.Body)
			}
		}
	}
	g.buildMethodSets(pkgs)
	// Pass 2: edges.
	for _, n := range g.nodes {
		if n.Lit == nil { // literals' bodies are walked by their own nodes
			g.addEdges(n)
		}
	}
	for _, n := range g.nodes {
		if n.Lit != nil {
			g.addEdges(n)
		}
	}
	return g
}

// addLiterals creates nodes for every function literal in body, each
// parented to the nearest enclosing node.
func (g *Graph) addLiterals(pkg *Pkg, encl *Node, body *ast.BlockStmt) {
	var walk func(n ast.Node, encl *Node) bool
	walk = func(n ast.Node, encl *Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		node := &Node{Lit: lit, Encl: encl, Pkg: pkg}
		g.byLit.m[lit] = node
		g.nodes = append(g.nodes, node)
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			if inner == lit.Body {
				return true
			}
			return walk(inner, node)
		})
		return false // the recursive Inspect above handles nested literals
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, encl) })
}

// buildMethodSets records, for every interface method of every
// interface type the loaded packages declare or use, the loaded
// concrete methods implementing it.
func (g *Graph) buildMethodSets(pkgs []*Pkg) {
	// Collect the named concrete types defined in the loaded packages.
	var concrete []types.Type
	var ifaces []*types.Interface
	seenIface := map[*types.Interface]bool{}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			t := tn.Type()
			if it, ok := t.Underlying().(*types.Interface); ok {
				if !seenIface[it] {
					seenIface[it] = true
					ifaces = append(ifaces, it)
				}
				continue
			}
			concrete = append(concrete, t)
		}
		// Interfaces from imported packages show up through uses; the
		// analyzers only need the ones whose methods are actually
		// called, which Info.Uses resolves — collect them lazily below.
		for _, obj := range pkg.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if it, ok := sig.Recv().Type().Underlying().(*types.Interface); ok && !seenIface[it] {
				seenIface[it] = true
				ifaces = append(ifaces, it)
			}
		}
	}
	for _, it := range ifaces {
		for i := 0; i < it.NumMethods(); i++ {
			im := it.Method(i)
			for _, ct := range concrete {
				for _, recv := range []types.Type{ct, types.NewPointer(ct)} {
					if !types.Implements(recv, it) {
						continue
					}
					obj, _, _ := types.LookupFieldOrMethod(recv, true, im.Pkg(), im.Name())
					if m, ok := obj.(*types.Func); ok {
						g.implsOf[im] = appendUniqueFunc(g.implsOf[im], m)
					}
					break // pointer method set ⊇ value method set
				}
			}
		}
	}
}

func appendUniqueFunc(fns []*types.Func, fn *types.Func) []*types.Func {
	for _, f := range fns {
		if f == fn {
			return fns
		}
	}
	return append(fns, fn)
}

// addEdges resolves every call in the node's own body (excluding
// nested literals, which own their calls).
func (g *Graph) addEdges(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	// funcValues tracks one level of function-value flow local to this
	// body: variable object -> nodes assigned to it.
	funcValues := g.localFuncValues(n, body)
	inspectOwn(body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, callee := range g.resolve(n, call, funcValues) {
			e := &Edge{Caller: n, Callee: callee, Call: call}
			n.calls = append(n.calls, e)
			callee.callers = append(callee.callers, e)
		}
	})
}

// inspectOwn walks a body but does not descend into nested function
// literals.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// localFuncValues collects single-level function-value bindings in the
// body: `f := func(){...}`, `var f = func(){...}`, `f := pkg.G`. A
// variable assigned more than once maps to every assigned body
// (conservative union).
func (g *Graph) localFuncValues(n *Node, body *ast.BlockStmt) map[types.Object][]*Node {
	out := map[types.Object][]*Node{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := n.Pkg.Info.Defs[id]
		if obj == nil {
			obj = n.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			if ln := g.byLit.m[r]; ln != nil {
				out[obj] = append(out[obj], ln)
			}
		case *ast.Ident:
			if fn, ok := n.Pkg.Info.Uses[r].(*types.Func); ok {
				if fnode := g.byFunc[fn]; fnode != nil {
					out[obj] = append(out[obj], fnode)
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := n.Pkg.Info.Uses[r.Sel].(*types.Func); ok {
				if fnode := g.byFunc[fn]; fnode != nil {
					out[obj] = append(out[obj], fnode)
				}
			}
		}
	}
	inspectOwn(body, func(node ast.Node) {
		switch st := node.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					bind(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					bind(st.Names[i], st.Values[i])
				}
			}
		}
	})
	return out
}

// resolve returns the possible callee nodes of one call expression.
func (g *Graph) resolve(n *Node, call *ast.CallExpr, funcValues map[types.Object][]*Node) []*Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := n.Pkg.Info.Uses[fun]
		if fn, ok := obj.(*types.Func); ok {
			return g.funcNodes(fn)
		}
		if obj != nil {
			return funcValues[obj] // one-level function value
		}
	case *ast.SelectorExpr:
		if fn, ok := n.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return g.funcNodes(fn)
		}
	case *ast.FuncLit:
		if ln := g.byLit.m[fun]; ln != nil {
			return []*Node{ln}
		}
	}
	return nil
}

// funcNodes maps a callee object to graph nodes: the static target
// when its body is loaded, plus — for interface methods — every loaded
// implementation.
func (g *Graph) funcNodes(fn *types.Func) []*Node {
	var out []*Node
	if node := g.byFunc[fn]; node != nil {
		out = append(out, node)
	}
	for _, impl := range g.implsOf[fn] {
		if node := g.byFunc[impl]; node != nil {
			out = append(out, node)
		}
	}
	return out
}

// NodeOf returns the node for a declared function object, or nil when
// its body was not loaded.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node for a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit.m[lit] }

// Nodes returns every node, declared functions first, in load order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// CalleesAt returns the possible callee nodes of one call expression
// appearing inside from's body.
func (g *Graph) CalleesAt(from *Node, call *ast.CallExpr) []*Node {
	var out []*Node
	for _, e := range from.calls {
		if e.Call == call {
			out = append(out, e.Callee)
		}
	}
	return out
}

// CallersOf returns every resolved call site that may run n.
func (g *Graph) CallersOf(n *Node) []*Edge { return n.callers }

// CallsFrom returns n's outgoing edges in source order.
func (g *Graph) CallsFrom(n *Node) []*Edge { return n.calls }

// Reaches reports whether pred holds for n or any node transitively
// callable from n. It memoizes per call, so analyzers can probe many
// roots cheaply.
func (g *Graph) Reaches(n *Node, pred func(*Node) bool) bool {
	return g.reaches(n, pred, map[*Node]bool{})
}

func (g *Graph) reaches(n *Node, pred func(*Node) bool, seen map[*Node]bool) bool {
	if n == nil || seen[n] {
		return false
	}
	seen[n] = true
	if pred(n) {
		return true
	}
	for _, e := range n.calls {
		if g.reaches(e.Callee, pred, seen) {
			return true
		}
	}
	return false
}

// PosOf returns the position of the node's body for diagnostics.
func (n *Node) PosOf() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}
