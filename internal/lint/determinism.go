// The determinism analyzer. WhoWas's clustering-reproducibility claim
// is operationalized as byte-identical store digests for same-seed
// campaigns, whatever the shard count, host, or wall-clock time. That
// only holds if the packages whose output feeds the digest — cloudsim,
// cluster, features, simhash, store — never consult a source of
// nondeterminism. Three rules:
//
//	determinism/wallclock — no reference to the time package's clock
//	    (Now, Since, Until, After, Sleep, tickers, timers). Durations
//	    and time arithmetic on injected values are fine; reading the
//	    host clock is not.
//	determinism/rand — no argless math/rand draws (the global RNG is
//	    seeded from the clock) and no crypto/rand at all. Explicitly
//	    seeded generators (rand.New(rand.NewSource(seed))) are the
//	    sanctioned path.
//	determinism/maporder — no map-iteration loop that appends to an
//	    outer slice or sends on a channel, unless the slice is passed
//	    through sort.* in the same function. Go randomizes map
//	    iteration order per run, so unsorted escapes are exactly the
//	    digest-divergence bug class.
package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package references that read or schedule
// against the host clock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// seededRandFuncs are the math/rand package-level names that construct
// explicitly seeded generators rather than drawing from the global RNG.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// DeterminismAnalyzer guards the digest-feeding packages against
// wall-clock reads, unseeded randomness, and map-order-dependent
// output.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, unseeded randomness, or map-iteration-order output in digest-feeding packages",
	Run:  runDeterminism,
}

func runDeterminism(pkg *Package, opts Options) []Diagnostic {
	if !matchPkg(pkg.Path, opts.Deterministic) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.SelectorExpr:
				path, obj, ok := pkgRef(pkg, nn)
				if !ok {
					return true
				}
				switch path {
				case "time":
					if wallclockFuncs[nn.Sel.Name] {
						out = append(out, diag(pkg, nn, "determinism/wallclock",
							"time."+nn.Sel.Name+" reads the host clock in a digest-feeding package; inject the campaign clock or move the timing into metrics"))
					}
				case "math/rand", "math/rand/v2":
					if _, isFunc := obj.(*types.Func); isFunc && !seededRandFuncs[nn.Sel.Name] {
						out = append(out, diag(pkg, nn, "determinism/rand",
							"rand."+nn.Sel.Name+" draws from the global clock-seeded RNG; use rand.New(rand.NewSource(seed))"))
					}
				case "crypto/rand":
					out = append(out, diag(pkg, nn, "determinism/rand",
						"crypto/rand is nondeterministic by design and must not feed the digest"))
				}
			case *ast.FuncDecl:
				if nn.Body != nil {
					out = append(out, mapOrderDiags(pkg, nn)...)
				}
			}
			return true
		})
	}
	return out
}

// mapOrderDiags flags range-over-map loops whose bodies let the
// iteration order escape: appends to a slice declared outside the loop
// (unless that slice is sorted later in the same function) and channel
// sends.
func mapOrderDiags(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(b ast.Node) bool {
			switch bn := b.(type) {
			case *ast.SendStmt:
				out = append(out, diag(pkg, bn, "determinism/maporder",
					"channel send inside a map-iteration loop leaks map order; collect and sort instead"))
			case *ast.CallExpr:
				id, isIdent := bn.Fun.(*ast.Ident)
				if !isIdent || id.Name != "append" || len(bn.Args) == 0 {
					return true
				}
				target := ast.Unparen(bn.Args[0])
				if declaredWithin(pkg, target, rs) {
					return true
				}
				if sortedLater(pkg, fd, target) {
					return true
				}
				out = append(out, diag(pkg, bn, "determinism/maporder",
					"append inside a map-iteration loop leaks map order into "+types.ExprString(target)+"; sort it before it escapes"))
			}
			return true
		})
		return true
	})
	return out
}

// declaredWithin reports whether an append target is a variable
// declared inside the range statement itself (loop-local accumulation
// cannot leak order beyond the loop's own logic).
func declaredWithin(pkg *Package, target ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// sortedLater reports whether the function contains a sort.* or
// slices.Sort* call over the same expression the loop appends to — the
// canonical collect-then-sort pattern that restores determinism.
func sortedLater(pkg *Package, fd *ast.FuncDecl, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgRef(pkg, sel)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(ast.Unparen(arg)) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
