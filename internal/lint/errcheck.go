// The errcheck-lite analyzer. WhoWas's durability story is the
// crash-safe write path: atomicfile's temp-and-rename protocol, the
// store's finalize/save sequence, and the trace journal's flush-close.
// An error silently dropped on any of those paths converts "the report
// is either old-and-intact or new-and-complete" into "the report may
// be garbage" — so discards there are compile-adjacent errors, not
// style. One rule:
//
//	errcheck/discard — a bare call statement (or defer) that throws
//	    away an error returned by (a) anything from an error-source
//	    package like atomicfile, (b) an error-returning function from
//	    the store or trace packages, (c) Close/Sync on an os.File
//	    that this function opened for writing, or (d) a forwarder — a
//	    function anywhere in the module whose return statement hands
//	    back an error it got from (a) or (b), found through the call
//	    graph so wrapping a store mutation in a helper does not launder
//	    the discard. An explicit `_ = call` is intentional and exempt —
//	    the discard is visible in review. Inside an error-source
//	    package itself, every bare discard is flagged (the whole
//	    package is write path).
package lint

import (
	"go/ast"
	"go/types"

	"whowas/internal/lint/callgraph"
)

// ErrCheckAnalyzer flags discarded errors on crash-safety write paths.
var ErrCheckAnalyzer = &Analyzer{
	Name:      "errcheck",
	Doc:       "no discarded errors from atomicfile, store/colstore/trace mutations, their forwarders, or write-path file closes",
	RunModule: runErrCheck,
}

func runErrCheck(pkgs []*Package, g *callgraph.Graph, opts Options) []Diagnostic {
	forwarders := errForwarders(g, opts)
	var out []Diagnostic
	for _, pkg := range pkgs {
		insideSource := matchPkg(pkg.Path, opts.ErrSourcePackages)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				writeFiles := writeOpenedFiles(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					var call *ast.CallExpr
					switch nn := n.(type) {
					case *ast.ExprStmt:
						call, _ = nn.X.(*ast.CallExpr)
					case *ast.DeferStmt:
						call = nn.Call
					}
					if call == nil {
						return true
					}
					obj := calleeOf(pkg, call)
					if obj == nil || !returnsError(obj) {
						return true
					}
					calleePkg := objPkgPath(obj)
					switch {
					case insideSource:
						out = append(out, diag(pkg, call, "errcheck/discard",
							"error from "+obj.Name()+" discarded inside a crash-safety package; handle it or assign it to _ explicitly"))
					case matchPkg(calleePkg, opts.ErrSourcePackages):
						out = append(out, diag(pkg, call, "errcheck/discard",
							"error from "+calleePkg+"."+obj.Name()+" discarded; the atomic-write protocol's outcome must be checked"))
					case matchPkg(calleePkg, opts.ErrMethodPackages):
						out = append(out, diag(pkg, call, "errcheck/discard",
							"error from "+calleePkg+"."+obj.Name()+" discarded; store/journal mutations must surface their failures"))
					case forwarderDiscard(obj, forwarders):
						out = append(out, diag(pkg, call, "errcheck/discard",
							"error from "+obj.Name()+" discarded; it forwards a crash-path error from "+forwarders[obj.(*types.Func)]+" — wrapping the mutation in a helper does not make the failure ignorable"))
					case isWritePathClose(pkg, call, obj, writeFiles):
						out = append(out, diag(pkg, call, "errcheck/discard",
							"error from Close on a file opened for writing discarded; a failed close loses buffered data silently"))
					}
					return true
				})
			}
		}
	}
	return out
}

// errForwarders finds module functions whose return statements hand
// back the error of a crash-path call — the one-level helpers whose
// discard is as dangerous as discarding the underlying mutation. The
// map value names the forwarded package for the diagnostic.
func errForwarders(g *callgraph.Graph, opts Options) map[*types.Func]string {
	out := map[*types.Func]string{}
	crashPath := append(append([]string{}, opts.ErrSourcePackages...), opts.ErrMethodPackages...)
	for _, n := range g.Nodes() {
		if n.Func == nil || !returnsError(n.Func) {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		info := n.Pkg.Info
		inspectOwnBody(body, func(node ast.Node) {
			ret, ok := node.(*ast.ReturnStmt)
			if ok {
				for _, res := range ret.Results {
					ast.Inspect(res, func(inner ast.Node) bool {
						call, ok := inner.(*ast.CallExpr)
						if !ok {
							return true
						}
						obj := calleeOfInfo(info, call)
						if obj != nil && returnsError(obj) && matchPkg(objPkgPath(obj), crashPath) {
							out[n.Func] = objPkgPath(obj)
						}
						return true
					})
				}
			}
		})
	}
	return out
}

// forwarderDiscard reports whether the discarded callee is a known
// crash-path forwarder (and is not itself in a crash-path package,
// which the earlier cases already cover).
func forwarderDiscard(obj types.Object, forwarders map[*types.Func]string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	_, isFwd := forwarders[fn]
	return isFwd
}

// writeOpenedFiles collects the variables in this function that hold
// files opened for writing: assigned from os.Create, or os.OpenFile
// with O_WRONLY / O_RDWR / O_APPEND in its flags.
func writeOpenedFiles(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgRef(pkg, sel)
		if !ok || path != "os" {
			return true
		}
		if sel.Sel.Name != "Create" && !(sel.Sel.Name == "OpenFile" && hasWriteFlag(call)) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// hasWriteFlag reports whether an os.OpenFile call's flag argument
// mentions a write-mode constant.
func hasWriteFlag(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
			found = true
			return false
		}
		return true
	})
	return found
}

// isWritePathClose reports whether the call is Close or Sync on one of
// the function's write-opened files.
func isWritePathClose(pkg *Package, call *ast.CallExpr, obj types.Object, writeFiles map[types.Object]bool) bool {
	if obj.Name() != "Close" && obj.Name() != "Sync" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	recv := pkg.Info.Uses[id]
	return recv != nil && writeFiles[recv]
}
