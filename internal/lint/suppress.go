// Suppression comments. A finding the code is right to ignore is
// silenced in place, with the reason written down next to the code it
// excuses:
//
//	//lint:allow determinism/wallclock stage timers never reach the digest
//
// The comment suppresses matching diagnostics on its own line and on
// the line directly below it (so it can trail the offending statement
// or sit on its own line above). The rule field is either a full rule
// ID ("determinism/wallclock") or a whole category ("determinism");
// everything after it is the mandatory reason. Suppressions are
// themselves audited: one without a reason, or one that matches no
// diagnostic, is reported.
package lint

import (
	"go/token"
	"strings"
)

// allowDirective is the comment prefix that marks a suppression.
const allowDirective = "//lint:allow"

// allow is one parsed suppression comment.
type allow struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// collectAllows parses every //lint:allow comment in the package,
// returning the well-formed suppressions plus diagnostics for the
// malformed ones (which suppress nothing).
func collectAllows(pkg *Package) ([]*allow, []Diagnostic) {
	var allows []*allow
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Pos: pos, Rule: "lint/allow",
						Msg: "suppression names no rule (want //lint:allow <rule> <reason>)",
					})
					continue
				}
				rule := fields[0]
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), rule))
				if reason == "" {
					diags = append(diags, Diagnostic{
						Pos: pos, Rule: "lint/allow",
						Msg: "suppression of " + rule + " carries no reason (want //lint:allow <rule> <reason>)",
					})
					continue
				}
				allows = append(allows, &allow{pos: pos, rule: rule, reason: reason})
			}
		}
	}
	return allows, diags
}

// matches reports whether the allow covers a diagnostic: same file,
// the comment's own line or the line directly below it, and a rule
// field equal to the diagnostic's rule ID or its category.
func (a *allow) matches(d Diagnostic) bool {
	if a.pos.Filename != d.Pos.Filename {
		return false
	}
	if d.Pos.Line != a.pos.Line && d.Pos.Line != a.pos.Line+1 {
		return false
	}
	if a.rule == d.Rule {
		return true
	}
	cat, _, _ := strings.Cut(d.Rule, "/")
	return a.rule == cat
}

// applyAllows drops every diagnostic covered by a suppression, marking
// the suppressions that did work.
func applyAllows(diags []Diagnostic, allows []*allow) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.matches(d) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// unusedAllows reports suppressions that matched nothing — stale
// comments that would otherwise hide future regressions silently.
func unusedAllows(allows []*allow) []Diagnostic {
	var out []Diagnostic
	for _, a := range allows {
		if !a.used {
			out = append(out, Diagnostic{
				Pos: a.pos, Rule: "lint/unused-allow",
				Msg: "suppression of " + a.rule + " matches no diagnostic; delete it",
			})
		}
	}
	return out
}
