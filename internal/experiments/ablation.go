package experiments

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/cloudapi"
	"whowas/internal/cluster"
	"whowas/internal/core"
)

// ClusteringAccuracy evaluates the §5 clustering against the
// simulator's ground truth — an evaluation the paper could not run on
// the real clouds, where true service boundaries are unknown. For
// every final cluster it computes purity (the share of member records
// whose ground-truth service matches the cluster's majority service),
// and for every web service the number of clusters its observations
// were split across.
func (s *Suite) ClusteringAccuracy() string {
	var sb strings.Builder
	for _, pc := range []struct {
		p     *core.Platform
		cloud string
	}{{s.EC2, "ec2"}, {s.Azure, "azure"}} {
		p := pc.p
		sim := cloudapi.Sim(p.Cloud)
		var puritySum float64
		var clusters int
		svcClusters := map[uint64]map[int64]bool{}
		for _, c := range p.Clusters.Clusters {
			counts := map[uint64]int{}
			for _, rec := range c.Records {
				st := sim.StateAt(rec.Day, rec.IP)
				counts[st.ServiceID]++
				if st.ServiceID != 0 {
					if svcClusters[st.ServiceID] == nil {
						svcClusters[st.ServiceID] = map[int64]bool{}
					}
					svcClusters[st.ServiceID][c.ID] = true
				}
			}
			best := 0
			for _, n := range counts {
				if n > best {
					best = n
				}
			}
			puritySum += float64(best) / float64(len(c.Records))
			clusters++
		}
		oneCluster := 0
		var fragments []float64
		for _, set := range svcClusters {
			if len(set) == 1 {
				oneCluster++
			}
			fragments = append(fragments, float64(len(set)))
		}
		sort.Float64s(fragments)
		var fragSum float64
		for _, f := range fragments {
			fragSum += f
		}
		fmt.Fprintf(&sb, "Clustering accuracy (%s): purity %.3f over %d clusters; %d/%d services in one cluster (mean fragmentation %.2f)\n",
			pc.cloud, puritySum/float64(maxInt(clusters, 1)), clusters,
			oneCluster, len(svcClusters), fragSum/float64(maxInt(len(svcClusters), 1)))
	}
	return sb.String()
}

// AblationClustering re-runs the EC2 clustering under the design
// variants §5 discusses: fixed thresholds instead of the gap
// statistic, disabling the merge heuristic, and the "only using
// Analytics IDs" alternative goal.
func (s *Suite) AblationClustering() (string, error) {
	var sb strings.Builder
	st := s.EC2.Store

	runVariant := func(name string, cfg cluster.Config) error {
		res, err := cluster.Run(st, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "  %-28s threshold=%2d  L1=%d  L2=%d  final=%d  removed=%d\n",
			name, res.Threshold, res.TopLevel, res.SecondLevel, res.Final, len(res.RemovedClusters))
		return nil
	}

	sb.WriteString("Clustering ablation (ec2):\n")
	if err := runVariant("gap-statistic threshold", cluster.Config{Seed: 1}); err != nil {
		return "", err
	}
	for _, th := range []int{1, 3, 6, 12} {
		if err := runVariant(fmt.Sprintf("fixed threshold %d", th), cluster.Config{Threshold: th}); err != nil {
			return "", err
		}
	}
	// Merge heuristic disabled: distance 1 below any real revision gap
	// effectively never merges (MergeDistance cannot be 0 — it would
	// take the default — so compare at the minimum useful value).
	if err := runVariant("merge distance 1", cluster.Config{Threshold: 3, MergeDistance: 1}); err != nil {
		return "", err
	}
	if err := runVariant("no cleaning (cutoff 1e9)", cluster.Config{Threshold: 3, CleanMinAvgIPs: 1e9}); err != nil {
		return "", err
	}

	// GA-ID-only association, the paper's alternative goal: count how
	// many final clusters share a Google Analytics ID (related content
	// across distinct page families).
	byGA := map[string]int{}
	for _, c := range s.EC2.Clusters.Clusters {
		if c.AnalyticsID != "" {
			byGA[c.AnalyticsID]++
		}
	}
	multi := 0
	for _, n := range byGA {
		if n > 1 {
			multi++
		}
	}
	fmt.Fprintf(&sb, "  GA-ID-only view: %d distinct IDs across clusters, %d IDs spanning multiple clusters\n",
		len(byGA), multi)

	// Restore the platform's canonical clustering labels (the ablation
	// variants overwrote record.Cluster fields).
	if err := s.EC2.RunClustering(cluster.Config{}); err != nil {
		return "", err
	}
	return sb.String(), nil
}
