package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// tinySuite runs the full experiment pipeline at a much-reduced scale,
// shared across the package's tests.
var (
	tinyOnce sync.Once
	tinyVal  *Suite
	tinyErr  error
)

func tinySuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	tinyOnce.Do(func() {
		tinyVal, tinyErr = Run(context.Background(), Options{EC2Scale: 1024, AzureScale: 256, Seed: 11})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyVal
}

func TestOptionsDefaults(t *testing.T) {
	o := (&Options{}).withDefaults()
	if o.EC2Scale != 128 || o.AzureScale != 32 || o.Seed == 0 {
		t.Errorf("defaults = %+v", o)
	}
	t.Setenv("WHOWAS_SCALE", "4")
	o = (&Options{}).withDefaults()
	if o.EC2Scale != 512 || o.AzureScale != 128 {
		t.Errorf("WHOWAS_SCALE not applied: %+v", o)
	}
	t.Setenv("WHOWAS_SCALE", "junk")
	o = (&Options{}).withDefaults()
	if o.EC2Scale != 128 {
		t.Errorf("junk WHOWAS_SCALE changed scale: %+v", o)
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	s := tinySuite(t)
	all, err := s.All(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 23 {
		t.Errorf("experiment count = %d, want 23", len(all))
	}
	seen := map[string]bool{}
	for _, exp := range all {
		if exp.ID == "" || exp.Title == "" {
			t.Errorf("experiment missing metadata: %+v", exp)
		}
		if seen[exp.ID] {
			t.Errorf("duplicate experiment ID %q", exp.ID)
		}
		seen[exp.ID] = true
		if strings.TrimSpace(exp.Output) == "" {
			t.Errorf("experiment %s produced no output", exp.ID)
		}
		if strings.Contains(exp.Output, "%!") {
			t.Errorf("experiment %s has broken formatting:\n%s", exp.ID, exp.Output)
		}
	}
	// Spot-check that each paper artifact is present.
	for _, id := range []string{"table2", "table7", "figure9", "table11", "figure16", "table17-18", "sec83", "table20", "baseline", "sec4-timeout"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestFigureCSVs(t *testing.T) {
	s := tinySuite(t)
	csvs := s.FigureCSVs()
	want := []string{
		"figure8-ec2", "figure8-azure", "figure9-ec2", "figure9-azure",
		"figure10-ec2", "figure10-azure", "figure12-ec2", "figure12-azure",
		"figure13-ec2", "figure14-ec2", "figure16-ec2", "figure16-azure",
		"figure19-ec2",
	}
	for _, k := range want {
		data, ok := csvs[k]
		if !ok {
			t.Errorf("missing CSV %q", k)
			continue
		}
		lines := strings.Split(strings.TrimSpace(data), "\n")
		if len(lines) < 2 {
			t.Errorf("CSV %q has no data rows", k)
			continue
		}
		cols := strings.Count(lines[0], ",") + 1
		for i, line := range lines[1:] {
			if strings.Count(line, ",")+1 != cols {
				t.Errorf("CSV %q row %d has wrong column count: %q", k, i+1, line)
				break
			}
		}
	}
}

func TestTable7Shape(t *testing.T) {
	s := tinySuite(t)
	out := s.Table7()
	for _, want := range []string{"Table 7 (ec2)", "Table 7 (azure)", "Overall growth", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 7 output missing %q:\n%s", want, out)
		}
	}
}

func TestTimeoutExperimentShape(t *testing.T) {
	s := tinySuite(t)
	out, err := s.Sec4TimeoutExperiment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2s timeout", "8s timeout", "5 probes"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeout experiment missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	s := tinySuite(t)
	out, err := s.BaselineComparison(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ec2") || !strings.Contains(out, "azure") || !strings.Contains(out, "coverage") {
		t.Errorf("baseline output:\n%s", out)
	}
}
