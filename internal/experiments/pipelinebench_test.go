package experiments

import (
	"strings"
	"testing"
)

// benchResult builds a healthy baseline-shaped result.
func benchResult() *PipelineBenchResult {
	return &PipelineBenchResult{
		Cloud:        "ec2",
		Regions:      8,
		Rounds:       11,
		Records:      4000,
		Shards:       8,
		BaselineNS:   2e9,
		ShardedNS:    1e9,
		Speedup:      2.0,
		DigestsMatch: true,
		Digest:       "sha256:abc",
	}
}

func TestComparePipelineBench(t *testing.T) {
	base := benchResult()

	if err := ComparePipelineBench(benchResult(), base, 0); err != nil {
		t.Errorf("identical results failed the gate: %v", err)
	}

	// Slower but inside tolerance passes; beyond tolerance fails.
	slow := benchResult()
	slow.ShardedNS = int64(1e9 * 1.2)
	if err := ComparePipelineBench(slow, base, 0.35); err != nil {
		t.Errorf("20%% slowdown rejected at 35%% tolerance: %v", err)
	}
	slower := benchResult()
	slower.ShardedNS = int64(1e9 * 3)
	err := ComparePipelineBench(slower, base, 0.35)
	if err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Errorf("3x slowdown passed the gate: %v", err)
	}

	// Digest drift is a hard failure no matter the timing.
	drift := benchResult()
	drift.Digest = "sha256:def"
	if err := ComparePipelineBench(drift, base, 0); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("digest drift passed the gate: %v", err)
	}

	// Internal divergence (sharded != unsharded) is a hard failure.
	div := benchResult()
	div.DigestsMatch = false
	if err := ComparePipelineBench(div, base, 0); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("internal divergence passed the gate: %v", err)
	}

	// Shape changes demand a baseline regeneration.
	shape := benchResult()
	shape.Regions = 4
	if err := ComparePipelineBench(shape, base, 0); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("shape change passed the gate: %v", err)
	}

	// Record-count drift at identical digest should be impossible, but
	// the gate checks it independently.
	recs := benchResult()
	recs.Records = 4001
	if err := ComparePipelineBench(recs, base, 0); err == nil || !strings.Contains(err.Error(), "record count") {
		t.Errorf("record drift passed the gate: %v", err)
	}

	if err := ComparePipelineBench(nil, base, 0); err == nil {
		t.Error("nil fresh result passed the gate")
	}
}
