package experiments

import (
	"fmt"
	"strings"

	"whowas/internal/analysis"
	"whowas/internal/core"
	"whowas/internal/timeseries"
)

// FigureCSVs renders every figure's underlying data series as CSV, so
// the paper's plots can be regenerated with any plotting tool. Keys
// are file stems ("figure8-ec2", "figure16-ec2", ...).
func (s *Suite) FigureCSVs() map[string]string {
	out := map[string]string{}
	for _, pc := range []struct {
		p     *core.Platform
		cloud string
	}{{s.EC2, "ec2"}, {s.Azure, "azure"}} {
		p, cloud := pc.p, pc.cloud

		// Figure 8: usage time series.
		u := analysis.Usage(p.Store)
		var sb strings.Builder
		sb.WriteString("round,day,responsive,available,clusters\n")
		for i := range u.Days {
			fmt.Fprintf(&sb, "%d,%d,%.0f,%.0f,%.0f\n", i, u.Days[i],
				u.RespSeries[i], u.AvailSeries[i], u.ClusterSeries[i])
		}
		out["figure8-"+cloud] = sb.String()

		// Figure 9: churn series.
		churn := analysis.Churn(p.Store)
		sb.Reset()
		sb.WriteString("round,day,responsiveness_pct,availability_pct,cluster_pct,overall_pct\n")
		for _, pt := range churn.Points {
			fmt.Fprintf(&sb, "%d,%d,%.4f,%.4f,%.4f,%.4f\n", pt.Round, pt.Day,
				100*pt.Responsiveness, 100*pt.Availability, 100*pt.ClusterChange, 100*pt.Overall)
		}
		out["figure9-"+cloud] = sb.String()

		// Figure 10: cluster availability change.
		av := analysis.ClusterAvailability(p.Store, p.Clusters)
		out["figure10-"+cloud] = pointsCSV("round,change_pct", av.Points, 100)

		// Figure 12: IP uptime CDF.
		up := analysis.IPUptimes(p.Clusters)
		out["figure12-"+cloud] = pointsCSV("uptime_pct,cdf", up.CDF.Points(), 1)

		// Figure 16: malicious lifetime CDFs.
		sbStudy := analysis.SafeBrowsing(p.Store, p.Feeds.SafeBrowsing)
		sb.Reset()
		sb.WriteString("lifetime_days,cdf_all,cdf_classic,cdf_vpc\n")
		for d := 1; d <= p.Cloud.Days(); d++ {
			fmt.Fprintf(&sb, "%d,%.4f,%.4f,%.4f\n", d,
				sbStudy.LifetimeAll.At(float64(d)),
				sbStudy.LifetimeClassic.At(float64(d)),
				sbStudy.LifetimeVPC.At(float64(d)))
		}
		out["figure16-"+cloud] = sb.String()
	}

	// Figures 13/14 are EC2-only.
	v := analysis.VPCUsage(s.EC2.Store)
	var sb strings.Builder
	sb.WriteString("round,classic_responsive,classic_available,vpc_responsive,vpc_available\n")
	for i, r := range v.Rounds {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d\n", r,
			v.ClassicResponsive[i], v.ClassicAvailable[i], v.VPCResponsive[i], v.VPCAvailable[i])
	}
	out["figure13-ec2"] = sb.String()

	vc := analysis.VPCClusters(s.EC2.Store, s.EC2.Clusters)
	sb.Reset()
	sb.WriteString("round,classic_only,vpc_only,mixed\n")
	for i, r := range vc.Rounds {
		fmt.Fprintf(&sb, "%d,%d,%d,%d\n", r, vc.ClassicOnly[i], vc.VPCOnly[i], vc.Mixed[i])
	}
	out["figure14-ec2"] = sb.String()

	// Figure 19: detection lag CDFs by behaviour type.
	study := vtStudy(s.EC2)
	sb.Reset()
	sb.WriteString("days,lag_type1,lag_type2,lag_type3,tail_type1,tail_type2,tail_type3\n")
	at := func(c *timeseries.CDF, d int) float64 {
		if c == nil {
			return 0
		}
		return c.At(float64(d))
	}
	for d := 0; d <= 40; d++ {
		fmt.Fprintf(&sb, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", d,
			at(study.LagCDF[analysis.Type1], d), at(study.LagCDF[analysis.Type2], d), at(study.LagCDF[analysis.Type3], d),
			at(study.TailCDF[analysis.Type1], d), at(study.TailCDF[analysis.Type2], d), at(study.TailCDF[analysis.Type3], d))
	}
	out["figure19-ec2"] = sb.String()
	return out
}

func pointsCSV(header string, pts []timeseries.Point, yScale float64) string {
	var sb strings.Builder
	sb.WriteString(header + "\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%.4f,%.4f\n", p.X, yScale*p.Y)
	}
	return sb.String()
}
