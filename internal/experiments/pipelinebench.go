package experiments

import (
	"context"
	"fmt"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/core"
)

// PipelineBenchResult is the round-pipeline sharding smoke benchmark's
// JSON document (the whowas-bench -pipeline-bench flag; CI uploads it
// as BENCH_pipeline.json). DigestsMatch is the hard correctness gate —
// the sharded and unsharded campaigns must produce byte-identical
// stores — while Speedup is informational: it depends on the host's
// core count, and a single-core runner legitimately reports ~1.0.
type PipelineBenchResult struct {
	Cloud        string  `json:"cloud"`
	Regions      int     `json:"regions"`
	Rounds       int     `json:"rounds"`
	Records      int64   `json:"records"`
	Shards       int     `json:"shards"`
	BaselineNS   int64   `json:"baseline_ns"` // shards=1 campaign wall time
	ShardedNS    int64   `json:"sharded_ns"`  // shards=regions campaign wall time
	Speedup      float64 `json:"speedup"`
	DigestsMatch bool    `json:"digests_match"`
	Digest       string  `json:"digest"`
}

// PipelineBench runs the same small multi-region campaign twice — one
// lane (the unsharded round) versus one lane per region — and compares
// wall time and store digests. Scale divides the cloud size as in
// Options; 0 takes a default sized for a sub-minute run.
func PipelineBench(ctx context.Context, scale int, seed int64) (*PipelineBenchResult, error) {
	if scale <= 0 {
		scale = 256
	}
	if seed == 0 {
		seed = 20131130
	}
	cfg := cloudsim.DefaultEC2Config(scale, seed)

	run := func(shards int) (string, int64, time.Duration, int, error) {
		p, err := core.NewPlatform(cfg)
		if err != nil {
			return "", 0, 0, 0, err
		}
		camp := core.FastCampaign()
		camp.PipelineShards = shards
		start := time.Now()
		if err := p.RunCampaign(ctx, camp); err != nil {
			return "", 0, 0, 0, fmt.Errorf("experiments: pipeline bench (shards=%d): %w", shards, err)
		}
		elapsed := time.Since(start)
		digest, err := p.Store.Digest()
		if err != nil {
			return "", 0, 0, 0, err
		}
		var records int64
		for _, r := range p.Reports {
			records += r.Records
		}
		return digest, records, elapsed, len(p.Reports[0].Regions), nil
	}

	baseDigest, records, baseDur, regions, err := run(1)
	if err != nil {
		return nil, err
	}
	shardDigest, _, shardDur, _, err := run(0) // 0 = one lane per region
	if err != nil {
		return nil, err
	}

	res := &PipelineBenchResult{
		Cloud:        cfg.Name,
		Regions:      regions,
		Rounds:       len(core.DefaultRoundSchedule(cfg.Days)),
		Records:      records,
		Shards:       regions,
		BaselineNS:   baseDur.Nanoseconds(),
		ShardedNS:    shardDur.Nanoseconds(),
		DigestsMatch: baseDigest == shardDigest,
		Digest:       baseDigest,
	}
	if shardDur > 0 {
		res.Speedup = float64(baseDur) / float64(shardDur)
	}
	return res, nil
}

// DefaultBenchTolerance is the allowed fractional throughput
// regression against a committed baseline. Wall time varies across
// hosts and runner load far more than across code changes, so the
// tolerance is wide; the digest comparison is the exact gate.
const DefaultBenchTolerance = 0.35

// ComparePipelineBench holds a fresh benchmark result to a committed
// baseline (BENCH_pipeline.json): the campaign shape and store digest
// must match exactly — a digest change means the pipeline now produces
// different records, not just different timing — and the sharded run's
// record throughput must be within tolerance (fraction, <= 0 for the
// default) of the baseline's. Returns nil when the gate passes.
func ComparePipelineBench(fresh, baseline *PipelineBenchResult, tolerance float64) error {
	if fresh == nil || baseline == nil {
		return fmt.Errorf("experiments: bench gate: missing result")
	}
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	if !fresh.DigestsMatch {
		return fmt.Errorf("experiments: bench gate: sharded and unsharded digests diverged")
	}
	if fresh.Cloud != baseline.Cloud || fresh.Regions != baseline.Regions || fresh.Rounds != baseline.Rounds {
		return fmt.Errorf("experiments: bench gate: campaign shape changed: fresh %s/%d regions/%d rounds, baseline %s/%d/%d (regenerate the baseline if intentional)",
			fresh.Cloud, fresh.Regions, fresh.Rounds, baseline.Cloud, baseline.Regions, baseline.Rounds)
	}
	if fresh.Digest != baseline.Digest {
		return fmt.Errorf("experiments: bench gate: store digest drifted from baseline: fresh %s, baseline %s",
			fresh.Digest, baseline.Digest)
	}
	if fresh.Records != baseline.Records {
		return fmt.Errorf("experiments: bench gate: record count drifted: fresh %d, baseline %d",
			fresh.Records, baseline.Records)
	}
	freshTP := throughput(fresh.Records, fresh.ShardedNS)
	baseTP := throughput(baseline.Records, baseline.ShardedNS)
	if baseTP > 0 && freshTP < baseTP*(1-tolerance) {
		return fmt.Errorf("experiments: bench gate: sharded throughput regressed beyond %.0f%%: fresh %.1f rec/s, baseline %.1f rec/s",
			100*tolerance, freshTP, baseTP)
	}
	return nil
}

// throughput is records per second over a wall-time measurement.
func throughput(records, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(records) / (float64(ns) / 1e9)
}
