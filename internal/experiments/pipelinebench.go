package experiments

import (
	"context"
	"fmt"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/core"
)

// PipelineBenchResult is the round-pipeline sharding smoke benchmark's
// JSON document (the whowas-bench -pipeline-bench flag; CI uploads it
// as BENCH_pipeline.json). DigestsMatch is the hard correctness gate —
// the sharded and unsharded campaigns must produce byte-identical
// stores — while Speedup is informational: it depends on the host's
// core count, and a single-core runner legitimately reports ~1.0.
type PipelineBenchResult struct {
	Cloud        string  `json:"cloud"`
	Regions      int     `json:"regions"`
	Rounds       int     `json:"rounds"`
	Records      int64   `json:"records"`
	Shards       int     `json:"shards"`
	BaselineNS   int64   `json:"baseline_ns"` // shards=1 campaign wall time
	ShardedNS    int64   `json:"sharded_ns"`  // shards=regions campaign wall time
	Speedup      float64 `json:"speedup"`
	DigestsMatch bool    `json:"digests_match"`
	Digest       string  `json:"digest"`
}

// PipelineBench runs the same small multi-region campaign twice — one
// lane (the unsharded round) versus one lane per region — and compares
// wall time and store digests. Scale divides the cloud size as in
// Options; 0 takes a default sized for a sub-minute run.
func PipelineBench(ctx context.Context, scale int, seed int64) (*PipelineBenchResult, error) {
	if scale <= 0 {
		scale = 256
	}
	if seed == 0 {
		seed = 20131130
	}
	cfg := cloudsim.DefaultEC2Config(scale, seed)

	run := func(shards int) (string, int64, time.Duration, int, error) {
		p, err := core.NewPlatform(cfg)
		if err != nil {
			return "", 0, 0, 0, err
		}
		camp := core.FastCampaign()
		camp.PipelineShards = shards
		start := time.Now()
		if err := p.RunCampaign(ctx, camp); err != nil {
			return "", 0, 0, 0, fmt.Errorf("experiments: pipeline bench (shards=%d): %w", shards, err)
		}
		elapsed := time.Since(start)
		digest, err := p.Store.Digest()
		if err != nil {
			return "", 0, 0, 0, err
		}
		var records int64
		for _, r := range p.Reports {
			records += r.Records
		}
		return digest, records, elapsed, len(p.Reports[0].Regions), nil
	}

	baseDigest, records, baseDur, regions, err := run(1)
	if err != nil {
		return nil, err
	}
	shardDigest, _, shardDur, _, err := run(0) // 0 = one lane per region
	if err != nil {
		return nil, err
	}

	res := &PipelineBenchResult{
		Cloud:        cfg.Name,
		Regions:      regions,
		Rounds:       len(core.DefaultRoundSchedule(cfg.Days)),
		Records:      records,
		Shards:       regions,
		BaselineNS:   baseDur.Nanoseconds(),
		ShardedNS:    shardDur.Nanoseconds(),
		DigestsMatch: baseDigest == shardDigest,
		Digest:       baseDigest,
	}
	if shardDur > 0 {
		res.Speedup = float64(baseDur) / float64(shardDur)
	}
	return res, nil
}
