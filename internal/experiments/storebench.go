package experiments

import (
	"fmt"
	"os"
	"time"

	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
	"whowas/internal/store/colstore"
)

// StoreBackendBench is one backend's row in the store benchmark: the
// per-record cost of the store frontend's write path (Put, PutBatch,
// EndRound), the query paths (History, Digest), and the campaign's
// on-disk footprint. The digest ties the row to the data it measured.
type StoreBackendBench struct {
	Name         string `json:"name"`
	PutNsOp      int64  `json:"put_ns_op"`
	PutBatchNsOp int64  `json:"put_batch_ns_op"`
	EndRoundNsOp int64  `json:"end_round_ns_op"` // per record of the round
	HistoryNsOp  int64  `json:"history_ns_op"`   // per looked-up IP
	DigestNsOp   int64  `json:"digest_ns_op"`    // per record in the store
	BytesOnDisk  int64  `json:"bytes_on_disk"`
	Digest       string `json:"digest"`
}

// StoreBenchResult is the store engine benchmark's JSON document (the
// whowas-bench -store-bench flag; CI commits it as BENCH_store.json).
// DigestsMatch is the hard correctness gate — the in-memory and
// columnar backends must digest identically — and BytesOnDisk is exact
// (both encodings are deterministic); the ns/op figures are tolerant,
// like every wall-time gate in the repo.
type StoreBenchResult struct {
	Rounds       int                 `json:"rounds"`
	Records      int64               `json:"records"`
	DigestsMatch bool                `json:"digests_match"`
	Backends     []StoreBackendBench `json:"backends"`
}

// benchRecord synthesizes one deterministic record. The field mix
// mirrors a collected campaign: a small server/template vocabulary
// (dictionary-friendly), per-IP titles and analytics IDs (not), and
// sparse link/tracker lists.
func benchRecord(idx, round int) *store.Record {
	ip := ipaddr.Addr(0x0a000000 + uint32(idx)*13)
	servers := []string{"Apache/2.2.22", "nginx/1.4.1", "Microsoft-IIS/7.5", "lighttpd/1.4.31"}
	templates := []string{"", "WordPress 3.5.1", "Drupal 7", ""}
	rec := &store.Record{
		IP:          ip,
		OpenPorts:   store.PortHTTP,
		Fetched:     true,
		Scheme:      "http",
		HTTPStatus:  200,
		ContentType: "text/html",
		BodyLen:     2048 + idx%512,
		Server:      servers[idx%len(servers)],
		Template:    templates[idx%len(templates)],
		Title:       fmt.Sprintf("site-%d", idx),
		HeaderNames: "Content-Type,Date,Server",
		Simhash:     simhash.Fingerprint{Hi: uint32(idx * 2654435761), Lo: uint64(idx)*0x9e3779b97f4a7c15 + uint64(round)},
		Subpages:    idx % 4,
	}
	if idx%5 == 0 {
		rec.Trackers = []string{"google-analytics.com"}
		rec.AnalyticsID = fmt.Sprintf("UA-%d-1", idx%1000)
	}
	if idx%3 == 0 {
		rec.Links = []string{"cdn.example.com", fmt.Sprintf("img-%d.example.com", idx%50)}
	}
	return rec
}

// benchRound synthesizes round r's records: roughly 6/7 of the IP pool
// responds each round, the churn rotating with the round index so
// History sees arrivals and departures.
func benchRound(r, perRound int) []*store.Record {
	recs := make([]*store.Record, 0, perRound)
	for idx := 0; idx < perRound; idx++ {
		if (idx+r)%7 == 0 {
			continue
		}
		recs = append(recs, benchRecord(idx, r))
	}
	return recs
}

// benchStore runs the synthetic campaign against one store and times
// each frontend path. Even rounds insert record-by-record (Put), odd
// rounds in one batch (PutBatch) — the single-process and coordinator
// merge paths respectively.
func benchStore(name string, st *store.Store, rounds, perRound int, bytesOnDisk func() (int64, error)) (StoreBackendBench, error) {
	out := StoreBackendBench{Name: name}
	var putOps, batchOps, endOps int64
	var putNS, batchNS, endNS time.Duration
	for r := 0; r < rounds; r++ {
		recs := benchRound(r, perRound)
		if _, err := st.BeginRound(r * 3); err != nil {
			return out, err
		}
		if r%2 == 0 {
			start := time.Now()
			for _, rec := range recs {
				if err := st.Put(rec); err != nil {
					return out, err
				}
			}
			putNS += time.Since(start)
			putOps += int64(len(recs))
		} else {
			start := time.Now()
			if err := st.PutBatch(recs); err != nil {
				return out, err
			}
			batchNS += time.Since(start)
			batchOps += int64(len(recs))
		}
		st.AddProbed(int64(perRound))
		start := time.Now()
		if err := st.EndRound(); err != nil {
			return out, err
		}
		endNS += time.Since(start)
		endOps += int64(len(recs))
	}

	// Point History queries against the columnar backend pay a full
	// round decode per touched segment (the default two-round cache
	// can't help an IP-ordered scan), so a few hundred probes measure
	// the path without dominating the benchmark's wall time.
	lookups := perRound / 4
	if lookups > 256 {
		lookups = 256
	}
	if lookups < 1 {
		lookups = 1
	}
	start := time.Now()
	for i := 0; i < lookups; i++ {
		ip := ipaddr.Addr(0x0a000000 + uint32(i*4)*13)
		_ = st.History(ip)
	}
	historyNS := time.Since(start)

	start = time.Now()
	digest, err := st.Digest()
	if err != nil {
		return out, err
	}
	digestNS := time.Since(start)

	out.Digest = digest
	out.PutNsOp = perOp(putNS, putOps)
	out.PutBatchNsOp = perOp(batchNS, batchOps)
	out.EndRoundNsOp = perOp(endNS, endOps)
	out.HistoryNsOp = perOp(historyNS, int64(lookups))
	out.DigestNsOp = perOp(digestNS, putOps+batchOps)
	if out.BytesOnDisk, err = bytesOnDisk(); err != nil {
		return out, err
	}
	return out, nil
}

func perOp(d time.Duration, ops int64) int64 {
	if ops <= 0 {
		return 0
	}
	return d.Nanoseconds() / ops
}

// StoreBench runs the same synthetic campaign through both store
// backends and reports their per-op costs, footprints, and digests.
// rounds/perRound <= 0 take defaults sized for a seconds-long run.
func StoreBench(rounds, perRound int) (*StoreBenchResult, error) {
	if rounds <= 0 {
		rounds = 10
	}
	if perRound <= 0 {
		perRound = 5000
	}
	res := &StoreBenchResult{Rounds: rounds}

	memStore := store.New("bench")
	memBench, err := benchStore("memory", memStore, rounds, perRound, func() (int64, error) {
		// The in-memory backend's "disk" form is its Save file.
		var n countWriter
		if err := memStore.Save(&n); err != nil {
			return 0, err
		}
		return int64(n), nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: store bench (memory): %w", err)
	}

	dir, err := os.MkdirTemp("", "whowas-storebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	backend, err := colstore.Open(dir, colstore.Options{CloudName: "bench"})
	if err != nil {
		return nil, err
	}
	colStore := store.NewWithBackend("bench", backend)
	colBench, err := benchStore("colstore", colStore, rounds, perRound, func() (int64, error) {
		var n int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				return 0, err
			}
			n += info.Size()
		}
		return n, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: store bench (colstore): %w", err)
	}
	if err := colStore.Close(); err != nil {
		return nil, err
	}

	for r := 0; r < rounds; r++ {
		res.Records += int64(len(benchRound(r, perRound)))
	}
	res.DigestsMatch = memBench.Digest == colBench.Digest
	res.Backends = []StoreBackendBench{memBench, colBench}
	return res, nil
}

// countWriter counts bytes written to it.
type countWriter int64

func (w *countWriter) Write(p []byte) (int, error) {
	*w += countWriter(len(p))
	return len(p), nil
}

// CompareStoreBench holds a fresh store benchmark to a committed
// baseline (BENCH_store.json): campaign shape, digests, and on-disk
// bytes must match exactly — all three are deterministic — and each
// backend's write-path latency (PutBatch + EndRound, the paths every
// record crosses) must be within tolerance of the baseline's. Returns
// nil when the gate passes.
func CompareStoreBench(fresh, baseline *StoreBenchResult, tolerance float64) error {
	if fresh == nil || baseline == nil {
		return fmt.Errorf("experiments: store gate: missing result")
	}
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	if !fresh.DigestsMatch {
		return fmt.Errorf("experiments: store gate: backend digests diverged")
	}
	if fresh.Rounds != baseline.Rounds || fresh.Records != baseline.Records {
		return fmt.Errorf("experiments: store gate: campaign shape changed: fresh %d rounds/%d records, baseline %d/%d (regenerate the baseline if intentional)",
			fresh.Rounds, fresh.Records, baseline.Rounds, baseline.Records)
	}
	for _, base := range baseline.Backends {
		var got *StoreBackendBench
		for i := range fresh.Backends {
			if fresh.Backends[i].Name == base.Name {
				got = &fresh.Backends[i]
				break
			}
		}
		if got == nil {
			return fmt.Errorf("experiments: store gate: backend %q missing from fresh run", base.Name)
		}
		if got.Digest != base.Digest {
			return fmt.Errorf("experiments: store gate: %s digest drifted from baseline: fresh %s, baseline %s",
				base.Name, got.Digest, base.Digest)
		}
		if got.BytesOnDisk != base.BytesOnDisk {
			return fmt.Errorf("experiments: store gate: %s on-disk bytes drifted: fresh %d, baseline %d (the encoding changed; regenerate the baseline if intentional)",
				base.Name, got.BytesOnDisk, base.BytesOnDisk)
		}
		freshWrite := got.PutBatchNsOp + got.EndRoundNsOp
		baseWrite := base.PutBatchNsOp + base.EndRoundNsOp
		if baseWrite > 0 && float64(freshWrite) > float64(baseWrite)*(1+tolerance) {
			return fmt.Errorf("experiments: store gate: %s write path regressed beyond %.0f%%: fresh %d ns/record, baseline %d ns/record",
				base.Name, 100*tolerance, freshWrite, baseWrite)
		}
	}
	return nil
}
