// Package experiments regenerates every table and figure of the
// paper's evaluation (§4 calibration, §6 dataset, §8 analyses) over
// freshly simulated EC2- and Azure-like clouds. The benchmark harness
// (bench_test.go) and the whowas-bench CLI both drive this package, so
// `go test -bench .` and the CLI print identical reports.
//
// DESIGN.md's experiment index maps each output here back to the
// paper; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"whowas/internal/analysis"
	"whowas/internal/baseline"
	"whowas/internal/blacklist"
	"whowas/internal/carto"
	"whowas/internal/cloudapi"
	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
	"whowas/internal/dnssim"
	"whowas/internal/faults"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/plot"
	"whowas/internal/ratelimit"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// Options sizes the experiment suite.
type Options struct {
	// EC2Scale / AzureScale divide the real clouds' address spaces
	// (defaults 128 and 32: ~37k and ~16k probed IPs, a dual campaign
	// in a few minutes on one core). The WHOWAS_SCALE environment
	// variable multiplies both (e.g. WHOWAS_SCALE=4 shrinks 4x).
	EC2Scale, AzureScale int
	Seed                 int64
	// Faults, when non-nil, replays both campaigns through the
	// deterministic fault-injection layer (the whowas-bench -faults
	// flag): the evaluation then reports what the paper's analyses look
	// like when collected over a degraded network.
	Faults *faults.Scenario
	// RoundTimeout bounds each campaign round when positive; rounds
	// that exceed it finalize degraded instead of wedging the suite.
	RoundTimeout time.Duration
	// Retries overrides the scan/fetch attempt count (the whowas-bench
	// -retries flag). 0 keeps the defaults: 1 attempt on a clean
	// network, 3 when Faults is set.
	Retries int
	// PipelineShards sets the round pipeline's region-lane count on
	// both campaigns (the -pipeline-shards flag); 0 means one lane per
	// region. See core.CampaignConfig.PipelineShards.
	PipelineShards int
	// Metrics, when non-nil, replaces both platforms' own registries
	// so a live observer (the ops server) sees one combined view.
	Metrics *metrics.Registry
	// Tracer, when non-nil, is installed on both platforms: the
	// campaigns, cartography and clustering record spans through it.
	Tracer *trace.Tracer
	// Progress receives per-round log lines when non-nil.
	Progress func(format string, args ...any)
	// Observe, when non-nil, receives each completed round's report
	// tagged with its cloud, alongside Progress (the ops server's
	// /rounds feed).
	Observe func(cloud string, r core.RoundReport)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.EC2Scale <= 0 {
		out.EC2Scale = 128
	}
	if out.AzureScale <= 0 {
		out.AzureScale = 32
	}
	if out.Seed == 0 {
		out.Seed = 20131130
	}
	if mult := os.Getenv("WHOWAS_SCALE"); mult != "" {
		if m, err := strconv.Atoi(mult); err == nil && m > 0 {
			out.EC2Scale *= m
			out.AzureScale *= m
		}
	}
	return out
}

func (o *Options) logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Suite holds the two measured clouds and their analyses' inputs.
type Suite struct {
	EC2, Azure *core.Platform
	opts       Options
}

// Run builds both clouds, runs the full §6 campaigns, the cartography
// sweep (EC2), and the clustering on both.
func Run(ctx context.Context, opts Options) (*Suite, error) {
	opts = opts.withDefaults()
	s := &Suite{opts: opts}
	start := time.Now()

	build := func(name string, cfg cloudsim.Config) (*core.Platform, error) {
		p, err := core.NewPlatform(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s platform: %w", name, err)
		}
		if opts.Metrics != nil {
			p.Metrics = opts.Metrics
			p.Store.SetMetrics(opts.Metrics)
		}
		p.Tracer = opts.Tracer
		camp := core.FastCampaign()
		camp.Faults = opts.Faults
		camp.RoundTimeout = opts.RoundTimeout
		camp.PipelineShards = opts.PipelineShards
		if opts.Faults != nil {
			// Resilience defaults for faulty runs; a clean network keeps
			// the single-attempt fast path.
			camp.Scanner.Attempts = 3
			camp.Fetcher.Attempts = 3
		}
		if opts.Retries > 0 {
			camp.Scanner.Attempts = opts.Retries
			camp.Fetcher.Attempts = opts.Retries
		}
		camp.Observer = func(r core.RoundReport) {
			suffix := ""
			if r.Degraded {
				suffix = " [degraded]"
			}
			opts.logf("%s round %d (day %d): %d responsive, %d fetched, scan %s%s",
				name, r.Round, r.Day, r.Responsive, r.Fetched, r.Scan.Round(time.Millisecond), suffix)
			if opts.Observe != nil {
				opts.Observe(name, r)
			}
		}
		if err := p.RunCampaign(ctx, camp); err != nil {
			return nil, fmt.Errorf("experiments: %s campaign: %w", name, err)
		}
		return p, nil
	}

	var err error
	if s.EC2, err = build("ec2", cloudsim.DefaultEC2Config(opts.EC2Scale, opts.Seed)); err != nil {
		return nil, err
	}
	if s.Azure, err = build("azure", cloudsim.DefaultAzureConfig(opts.AzureScale, opts.Seed+1)); err != nil {
		return nil, err
	}
	opts.logf("campaigns done in %s; running cartography", time.Since(start))
	if err := s.EC2.RunCartography(ctx, carto.Config{Rate: 1e6}); err != nil {
		return nil, fmt.Errorf("experiments: cartography: %w", err)
	}
	opts.logf("clustering ec2 (%d rounds)", s.EC2.Store.NumRounds())
	if err := s.EC2.RunClustering(cluster.Config{}); err != nil {
		return nil, fmt.Errorf("experiments: ec2 clustering: %w", err)
	}
	opts.logf("clustering azure (%d rounds)", s.Azure.Store.NumRounds())
	if err := s.Azure.RunClustering(cluster.Config{}); err != nil {
		return nil, fmt.Errorf("experiments: azure clustering: %w", err)
	}
	opts.logf("suite ready in %s", time.Since(start))
	return s, nil
}

// suiteCache shares one Suite across benchmark functions in a single
// `go test -bench` process.
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

// Shared returns the process-wide suite, building it on first use.
func Shared() (*Suite, error) {
	suiteOnce.Do(func() {
		opts := Options{}
		if os.Getenv("WHOWAS_BENCH_VERBOSE") != "" {
			opts.Progress = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "[suite] "+format+"\n", args...)
			}
		}
		suiteVal, suiteErr = Run(context.Background(), opts)
	})
	return suiteVal, suiteErr
}

// both runs an analysis for each cloud and joins the outputs.
func (s *Suite) both(fn func(p *core.Platform, cloud string) string) string {
	return fn(s.EC2, "ec2") + "\n" + fn(s.Azure, "azure")
}

// CampaignReports returns the per-cloud observability documents (round
// reports plus registry snapshots) for the suite's two campaigns; the
// whowas-bench -metrics flag serializes this map.
func (s *Suite) CampaignReports() map[string]core.CampaignReport {
	return map[string]core.CampaignReport{
		"ec2":   s.EC2.Report(),
		"azure": s.Azure.Report(),
	}
}

// Table2 regenerates the VPC prefix breakdown via the cartography map.
func (s *Suite) Table2() string {
	regionSizes := map[string]int{}
	for _, r := range s.EC2.Cloud.Info().Regions {
		regionSizes[r.Name] = r.Prefixes22
	}
	vpc := map[ipaddr.Addr]bool{}
	seen := map[ipaddr.Addr]bool{}
	s.EC2.Cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		p22 := a.Prefix22().Addr
		if !seen[p22] {
			seen[p22] = true
			vpc[p22] = s.EC2.CartoMap.IsVPC(a)
		}
		return true
	})
	rows := analysis.VPCPrefixTable(vpc, s.EC2.Cloud.RegionOf, regionSizes)
	return analysis.FormatVPCPrefixes(rows)
}

// Table3 regenerates the open-port mix.
func (s *Suite) Table3() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Ports(p.Store).Format(cloud)
	})
}

// Table4 regenerates the HTTP status mix.
func (s *Suite) Table4() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Statuses(p.Store).Format(cloud)
	})
}

// Table5 regenerates the content-type mix.
func (s *Suite) Table5() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.FormatContentTypes(cloud, analysis.ContentTypes(p.Store, 5))
	})
}

// Table6 regenerates the clustering summary.
func (s *Suite) Table6() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Clustering(p.Store, p.Clusters).Format(cloud)
	})
}

// Table7 regenerates the usage summary.
func (s *Suite) Table7() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Usage(p.Store).Format(cloud)
	})
}

// Figure8 regenerates the usage time series.
func (s *Suite) Figure8() string {
	return s.both(func(p *core.Platform, cloud string) string {
		u := analysis.Usage(p.Store)
		var sb strings.Builder
		fmt.Fprintf(&sb, "Figure 8 (%s): per-round responsive / available IPs and clusters\n", cloud)
		for i := range u.Days {
			fmt.Fprintf(&sb, "  round %2d (day %2d): %7.0f responsive  %7.0f available  %6.0f clusters\n",
				i, u.Days[i], u.RespSeries[i], u.AvailSeries[i], u.ClusterSeries[i])
		}
		sb.WriteString(plot.Line(fmt.Sprintf("Figure 8 (%s) sketch", cloud), []plot.Series{
			{Name: "responsive", Points: u.RespSeries, Marker: '*'},
			{Name: "available", Points: u.AvailSeries, Marker: '+'},
			{Name: "clusters", Points: u.ClusterSeries, Marker: 'o'},
		}, 64, 12))
		// The dips' anatomy: the clusters that leave and never return.
		sb.WriteString(analysis.FormatDepartures(cloud, analysis.Departures(p.Store, p.Clusters, 6)))
		return sb.String()
	})
}

// Figure9 regenerates the churn series.
func (s *Suite) Figure9() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Churn(p.Store).Format(cloud)
	})
}

// Figure10 regenerates the cluster availability-change series.
func (s *Suite) Figure10() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.ClusterAvailability(p.Store, p.Clusters).Format(cloud)
	})
}

// Table11 regenerates the size-change pattern table.
func (s *Suite) Table11() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.SizePatterns(p.Store, p.Clusters, p.Cloud.Days()).Format(cloud, 8)
	})
}

// Figure12 regenerates the IP-uptime CDF.
func (s *Suite) Figure12() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.IPUptimes(p.Clusters).Format(cloud)
	})
}

// Figure13 regenerates the VPC/classic IP series (EC2 only).
func (s *Suite) Figure13() string {
	return analysis.VPCUsage(s.EC2.Store).Format("ec2")
}

// Figure14 regenerates the VPC/classic cluster series (EC2 only).
func (s *Suite) Figure14() string {
	return analysis.VPCClusters(s.EC2.Store, s.EC2.Clusters).Format("ec2")
}

// Table15 regenerates the top-cluster table (EC2, as in the paper).
func (s *Suite) Table15() string {
	rows := analysis.TopClusters(s.EC2.Clusters, 10, s.EC2.Cloud.RegionOf)
	return analysis.FormatTopClusters("ec2", rows)
}

// Figure16 regenerates the Safe-Browsing malicious-lifetime CDFs.
func (s *Suite) Figure16() string {
	return s.both(func(p *core.Platform, cloud string) string {
		study := analysis.SafeBrowsing(p.Store, p.Feeds.SafeBrowsing)
		out := study.Format(cloud)
		days := p.Cloud.Days()
		all := make([]float64, days)
		classic := make([]float64, days)
		vpc := make([]float64, days)
		for d := 1; d <= days; d++ {
			all[d-1] = study.LifetimeAll.At(float64(d))
			classic[d-1] = study.LifetimeClassic.At(float64(d))
			vpc[d-1] = study.LifetimeVPC.At(float64(d))
		}
		out += plot.CDF(fmt.Sprintf("Figure 16 (%s) sketch (x = lifetime days)", cloud), []plot.Series{
			{Name: "all", Points: all, Marker: '*'},
			{Name: "classic", Points: classic, Marker: '+'},
			{Name: "vpc", Points: vpc, Marker: 'o'},
		}, 64, 10)
		return out
	})
}

// vtStudy joins VirusTotal data for a platform.
func vtStudy(p *core.Platform) analysis.VTStudy {
	months := analysis.DefaultMonths(p.Cloud.Days())
	return analysis.VirusTotal(p.Store, p.Feeds.VirusTotal, p.Clusters, p.Cloud.RegionOf, months, 2)
}

// Table17And18 regenerates the VirusTotal region/domain tables plus
// Figure 19 and the §8.2 behaviour/cluster-expansion results.
func (s *Suite) Table17And18() string {
	ec2 := vtStudy(s.EC2)
	az := vtStudy(s.Azure)
	return ec2.Format("ec2") + "\n" +
		fmt.Sprintf("VirusTotal (azure): %d malicious IPs (paper found none)\n", az.MaliciousIPs)
}

// Figure19 is reported within Table17And18's VTStudy output; this
// accessor isolates it for the bench harness.
func (s *Suite) Figure19() string {
	study := vtStudy(s.EC2)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 19 (ec2): behaviour types t1=%d t2=%d t3=%d\n",
		study.TypeCounts[analysis.Type1], study.TypeCounts[analysis.Type2], study.TypeCounts[analysis.Type3])
	for _, b := range []analysis.VTBehavior{analysis.Type1, analysis.Type2, analysis.Type3} {
		if cdf := study.LagCDF[b]; cdf != nil && cdf.N() > 0 {
			fmt.Fprintf(&sb, "  type%d lag:  P(<=1d)=%.2f P(<=3d)=%.2f P(<=7d)=%.2f P(<=14d)=%.2f (n=%d)\n",
				b, cdf.At(1), cdf.At(3), cdf.At(7), cdf.At(14), cdf.N())
		}
	}
	for _, b := range []analysis.VTBehavior{analysis.Type1, analysis.Type2, analysis.Type3} {
		if cdf := study.TailCDF[b]; cdf != nil && cdf.N() > 0 {
			fmt.Fprintf(&sb, "  type%d tail: P(0d)=%.2f P(<=3d)=%.2f P(<=7d)=%.2f (n=%d)\n",
				b, cdf.At(0), cdf.At(3), cdf.At(7), cdf.N())
		}
	}
	fmt.Fprintf(&sb, "  cluster expansion: +%d IPs via co-clustering\n", study.ExpandedIPs)
	return sb.String()
}

// Sec83Census regenerates the software ecosystem census.
func (s *Suite) Sec83Census() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Census(p.Store).Format(cloud)
	})
}

// Table20 regenerates the tracker table.
func (s *Suite) Table20() string {
	return s.both(func(p *core.Platform, cloud string) string {
		return analysis.Trackers(p.Store).Format(cloud)
	})
}

// Sec81Extras prints the remaining §8.1 quantities: size mix, region
// usage, cross-cloud overlap.
func (s *Suite) Sec81Extras() string {
	var sb strings.Builder
	sb.WriteString(analysis.Sizes(s.EC2.Clusters).Format("ec2") + "\n")
	sb.WriteString(analysis.Sizes(s.Azure.Clusters).Format("azure") + "\n")
	ru := analysis.Regions(s.EC2.Clusters, s.EC2.Cloud.RegionOf)
	fmt.Fprintf(&sb, "Region usage (ec2): %.1f%% of %d clusters use a single region\n", 100*ru.SingleRegion, ru.Total)
	sb.WriteString(analysis.ClusterUptimes(s.EC2.Clusters).Format("ec2") + "\n")
	sb.WriteString(analysis.ClusterUptimes(s.Azure.Clusters).Format("azure") + "\n")
	sb.WriteString(analysis.RegionChanges(s.EC2.Clusters, s.EC2.Cloud.RegionOf).Format("ec2") + "\n")
	sb.WriteString(analysis.VPCTransitions(s.EC2.Clusters).Format("ec2") + "\n")
	fmt.Fprintf(&sb, "Cross-cloud overlap: %d clusters matched across EC2 and Azure\n",
		analysis.CrossCloudOverlap(s.EC2.Clusters, s.Azure.Clusters))
	return sb.String()
}

// Linchpins reports the §8.2 linchpin-IP analysis over the EC2 store.
func (s *Suite) Linchpins() string {
	sb := s.EC2.Feeds.SafeBrowsing
	lps := analysis.Linchpins(s.EC2.Store, 20, func(u string, day int) bool {
		return sb.Lookup(u, day) != blacklist.OK
	})
	return analysis.FormatLinchpins("ec2", lps)
}

// Sec4TimeoutExperiment reproduces the §4 calibration: sample 5% of
// IPs from each /24, compare 2 s vs 8 s probe timeouts, then probe the
// 2 s non-responders four more times.
func (s *Suite) Sec4TimeoutExperiment(ctx context.Context) (string, error) {
	p := s.EC2
	scn, err := scanner.New(p.Cloud, scanner.Config{Rate: scanner.UnlimitedRate, Workers: 64,
		Clock: ratelimit.NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		return "", err
	}
	// Run on a day no campaign round scanned, so per-host transient-loss
	// windows are fresh: the retry schedule's gain is exactly what the
	// paper's +0.27% measured.
	if err := p.Cloud.SetDay(ctx, 1); err != nil {
		return "", err
	}

	// Sample: every 10th address of each /24 (10%; the paper used 5%
	// of a 4.7M-IP space — the denser draw keeps the rare slow/lossy
	// hosts represented at simulation scale).
	var sample []ipaddr.Addr
	for _, p24 := range p.Cloud.Ranges().GroupBy24() {
		for i := 0; i < 256; i += 10 {
			sample = append(sample, p24.First()+ipaddr.Addr(i))
		}
	}

	probeSeq := func(ip ipaddr.Addr, timeout time.Duration) (bool, error) {
		for _, port := range []int{80, 443} {
			ok, err := scn.ProbeOnce(ctx, ip, port, timeout)
			if err != nil || ok {
				return ok, err
			}
		}
		return scn.ProbeOnce(ctx, ip, 22, timeout)
	}

	var resp2, resp8, respRetry int
	var nonResponders []ipaddr.Addr
	for _, ip := range sample {
		ok, err := probeSeq(ip, 2*time.Second)
		if err != nil {
			return "", err
		}
		if ok {
			resp2++
		} else {
			nonResponders = append(nonResponders, ip)
		}
	}
	for _, ip := range sample {
		ok, err := probeSeq(ip, 8*time.Second)
		if err != nil {
			return "", err
		}
		if ok {
			resp8++
		}
	}
	// Retry schedule: four more 2 s attempts for 2 s non-responders
	// (the paper re-probed at +200 s and then three times at 100 s
	// intervals; spacing is immaterial to the simulated loss model).
	recovered := map[ipaddr.Addr]bool{}
	for attempt := 0; attempt < 4; attempt++ {
		for _, ip := range nonResponders {
			if recovered[ip] {
				continue
			}
			ok, err := probeSeq(ip, 2*time.Second)
			if err != nil {
				return "", err
			}
			if ok {
				recovered[ip] = true
			}
		}
	}
	respRetry = resp2 + len(recovered)

	gain8 := 100 * float64(resp8-resp2) / float64(maxInt(resp2, 1))
	gainRetry := 100 * float64(respRetry-resp2) / float64(maxInt(resp2, 1))
	return fmt.Sprintf(
		"§4 timeout experiment (ec2): sampled %d IPs (5%% of each /24)\n"+
			"  responsive with 2s timeout: %d\n"+
			"  responsive with 8s timeout: %d (+%.2f%%; paper: +0.61%%)\n"+
			"  responsive after 5 probes:  %d (+%.2f%%; paper: +0.27%%)\n",
		len(sample), resp2, resp8, gain8, respRetry, gainRetry), nil
}

// BaselineComparison contrasts DNS interrogation with direct probing.
func (s *Suite) BaselineComparison(ctx context.Context) (string, error) {
	var sb strings.Builder
	for _, pc := range []struct {
		p     *core.Platform
		cloud string
	}{{s.EC2, "ec2"}, {s.Azure, "azure"}} {
		day := 0
		resolver := dnssim.NewResolver(cloudapi.Sim(pc.p.Cloud), day)
		res, err := baseline.Sweep(ctx, resolver, day,
			baseline.Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0)), SeedShare: 0.8})
		if err != nil {
			return "", err
		}
		// Direct probing's web IPs on the first round.
		direct := 0
		pc.p.Store.Round(0).Each(func(rec *store.Record) bool {
			if rec.WebOpen() {
				direct++
			}
			return true
		})
		res.DirectWebIPs = direct
		sb.WriteString(res.Format(pc.cloud) + "\n")
	}
	return sb.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Experiment pairs an identifier with its regenerated output.
type Experiment struct {
	ID, Title, Output string
}

// All regenerates every experiment, in paper order.
func (s *Suite) All(ctx context.Context) ([]Experiment, error) {
	timeout, err := s.Sec4TimeoutExperiment(ctx)
	if err != nil {
		return nil, err
	}
	baselineOut, err := s.BaselineComparison(ctx)
	if err != nil {
		return nil, err
	}
	return []Experiment{
		{"sec4-timeout", "§4 probe timeout and retry calibration", timeout},
		{"table2", "Table 2: VPC prefixes by region", s.Table2()},
		{"table3", "Table 3: open-port mix", s.Table3()},
		{"table4", "Table 4: HTTP status mix", s.Table4()},
		{"table5", "Table 5: content types", s.Table5()},
		{"table6", "Table 6: clustering summary", s.Table6()},
		{"table7", "Table 7: usage summary", s.Table7()},
		{"figure8", "Figure 8: usage over time", s.Figure8()},
		{"figure9", "Figure 9: IP status churn", s.Figure9()},
		{"figure10", "Figure 10: cluster availability churn", s.Figure10()},
		{"table11", "Table 11: size-change patterns", s.Table11()},
		{"figure12", "Figure 12: IP uptime CDF", s.Figure12()},
		{"figure13", "Figure 13: VPC vs classic IPs", s.Figure13()},
		{"figure14", "Figure 14: VPC vs classic clusters", s.Figure14()},
		{"table15", "Table 15: top clusters", s.Table15()},
		{"sec81", "§8.1 extras: sizes, regions, overlap", s.Sec81Extras()},
		{"figure16", "Figure 16: malicious IP lifetimes (Safe Browsing)", s.Figure16()},
		{"table17-18", "Tables 17/18: VirusTotal regions and domains", s.Table17And18()},
		{"figure19", "Figure 19: detection lag CDFs", s.Figure19()},
		{"linchpins", "§8.2: linchpin IPs aggregating malicious URLs", s.Linchpins()},
		{"sec83", "§8.3: software census", s.Sec83Census()},
		{"table20", "Table 20: third-party trackers", s.Table20()},
		{"baseline", "DNS-interrogation baseline comparison", baselineOut},
	}, nil
}
