package ops

// Handler-contract tests: every endpoint's content type, method
// validation, parameter bounds, and the JSON error shape scripted
// clients rely on.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"whowas/internal/metrics"
)

// do issues an arbitrary-method request against the handler.
func do(t *testing.T, h http.Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestContentTypes(t *testing.T) {
	s, _, _ := testServer(t)
	for path, want := range map[string]string{
		"/healthz":       "application/json",
		"/metrics":       "application/json",
		"/metrics/prom":  "text/plain; version=0.0.4",
		"/rounds":        "application/json",
		"/trace/active":  "application/json",
		"/trace/slowest": "application/json",
	} {
		rr := do(t, s.Handler(), "GET", path)
		if rr.Code != 200 {
			t.Errorf("%s status %d", path, rr.Code)
		}
		if got := rr.Header().Get("Content-Type"); got != want {
			t.Errorf("%s content type %q, want %q", path, got, want)
		}
	}
}

func TestMethodValidation(t *testing.T) {
	s, _, _ := testServer(t)
	for _, path := range []string{
		"/healthz", "/metrics", "/metrics/prom", "/rounds", "/trace/active", "/trace/slowest",
	} {
		for _, method := range []string{"POST", "PUT", "DELETE"} {
			rr := do(t, s.Handler(), method, path)
			if rr.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s status %d, want 405", method, path, rr.Code)
				continue
			}
			if allow := rr.Header().Get("Allow"); !strings.Contains(allow, "GET") {
				t.Errorf("%s %s Allow header %q", method, path, allow)
			}
			assertErrorDoc(t, rr)
		}
		// HEAD rides the GET path.
		if rr := do(t, s.Handler(), "HEAD", path); rr.Code != 200 {
			t.Errorf("HEAD %s status %d, want 200", path, rr.Code)
		}
	}
}

func TestTraceSlowestBounds(t *testing.T) {
	s, _, tr := testServer(t)
	tr.Start("scan", nil).End()

	for _, q := range []string{"n=0", "n=-3", "n=bogus", "n=10001", "n=9999999999999999999"} {
		rr := do(t, s.Handler(), "GET", "/trace/slowest?"+q)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("?%s status %d, want 400", q, rr.Code)
			continue
		}
		assertErrorDoc(t, rr)
	}
	// The bounds are inclusive.
	for _, q := range []string{"n=1", "n=10000", ""} {
		rr := do(t, s.Handler(), "GET", "/trace/slowest?"+q)
		if rr.Code != 200 {
			t.Errorf("?%s status %d, want 200", q, rr.Code)
		}
	}
}

// assertErrorDoc checks a failure response carries the JSON error
// shape with a non-empty message.
func assertErrorDoc(t *testing.T, rr *httptest.ResponseRecorder) {
	t.Helper()
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("error content type %q, want application/json", ct)
	}
	body, _ := io.ReadAll(rr.Result().Body)
	var doc ErrorDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Errorf("error body not an ErrorDoc: %q (%v)", body, err)
		return
	}
	if doc.Error == "" {
		t.Errorf("error doc has empty message: %q", body)
	}
}

func TestPromOverride(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("scanner.probes").Add(5)
	s := New(Config{
		Metrics: reg,
		Prom: func(w io.Writer) error {
			_, err := io.WriteString(w, "custom_exposition 1\n")
			return err
		},
	})
	rr := do(t, s.Handler(), "GET", "/metrics/prom")
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	body, _ := io.ReadAll(rr.Result().Body)
	if string(body) != "custom_exposition 1\n" {
		t.Errorf("override ignored: %q", body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("content type %q", ct)
	}
}
