// Package ops is the platform's live operations endpoint: a small
// HTTP server an operator points a browser or curl at while a
// campaign runs. It exposes liveness, the metrics registry (JSON and
// Prometheus text), the completed rounds' reports, the tracer's
// active and slowest spans, and Go's pprof handlers. Everything is
// read-only and safe to serve concurrently with a running campaign.
//
// The server is opt-in: the CLIs only start it when -ops-addr is set,
// and a zero Config serves degraded-but-valid answers (empty metrics,
// no rounds, no spans).
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"whowas/internal/core"
	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// Config wires the server to the campaign's observability state. Any
// field may be nil; the corresponding endpoints then serve empty
// documents rather than errors.
type Config struct {
	// Metrics backs /metrics (JSON snapshot) and /metrics/prom
	// (Prometheus text exposition).
	Metrics *metrics.Registry
	// Tracer backs /trace/active and /trace/slowest.
	Tracer *trace.Tracer
	// Rounds supplies the completed rounds for /rounds
	// (Platform.RoundReports fits directly).
	Rounds func() []core.RoundReport
	// Extra mounts additional routes on the server's mux. The
	// coordinator rides an ops server this way: its control protocol
	// (/coord/*) serves beside the standard observability surface, so
	// one address answers both workers and operators.
	Extra map[string]http.HandlerFunc
}

// Server is the live ops endpoint.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	srv   *http.Server
	start time.Time
}

// New builds a server; call Start to bind it, or use Handler directly
// (tests mount it on httptest servers).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prom", s.handleMetricsProm)
	s.mux.HandleFunc("/rounds", s.handleRounds)
	s.mux.HandleFunc("/trace/active", s.handleTraceActive)
	s.mux.HandleFunc("/trace/slowest", s.handleTraceSlowest)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range cfg.Extra {
		s.mux.HandleFunc(pattern, h)
	}
	return s
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (e.g. "127.0.0.1:8377", or ":0" for an ephemeral
// port) and serves in a background goroutine, returning the bound
// address. Shut it down with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server, waiting for in-flight requests up to the
// context's deadline. A server never started shuts down trivially.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// WriteJSON writes v as indented JSON with the conventional content
// type — the package's house answer format, exported for the handlers
// Config.Extra mounts.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) { WriteJSON(w, v) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start).Nanoseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.cfg.Metrics.Snapshot())
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.cfg.Metrics.Snapshot().WriteProm(w, "whowas")
}

func (s *Server) handleRounds(w http.ResponseWriter, _ *http.Request) {
	rounds := []core.RoundReport{}
	if s.cfg.Rounds != nil {
		if r := s.cfg.Rounds(); r != nil {
			rounds = r
		}
	}
	writeJSON(w, rounds)
}

func (s *Server) handleTraceActive(w http.ResponseWriter, _ *http.Request) {
	spans := s.cfg.Tracer.Active()
	if spans == nil {
		spans = []trace.SpanSnapshot{}
	}
	writeJSON(w, spans)
}

func (s *Server) handleTraceSlowest(w http.ResponseWriter, r *http.Request) {
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "ops: n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	spans := s.cfg.Tracer.Slowest(n)
	if spans == nil {
		spans = []trace.SpanSnapshot{}
	}
	writeJSON(w, spans)
}
