// Package ops is the platform's live operations endpoint: a small
// HTTP server an operator points a browser or curl at while a
// campaign runs. It exposes liveness, the metrics registry (JSON and
// Prometheus text), the completed rounds' reports, the tracer's
// active and slowest spans, and Go's pprof handlers. Everything is
// read-only and safe to serve concurrently with a running campaign.
//
// The server is opt-in: the CLIs only start it when -ops-addr is set,
// and a zero Config serves degraded-but-valid answers (empty metrics,
// no rounds, no spans).
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"whowas/internal/core"
	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// Config wires the server to the campaign's observability state. Any
// field may be nil; the corresponding endpoints then serve empty
// documents rather than errors.
type Config struct {
	// Metrics backs /metrics (JSON snapshot) and /metrics/prom
	// (Prometheus text exposition).
	Metrics *metrics.Registry
	// Tracer backs /trace/active and /trace/slowest.
	Tracer *trace.Tracer
	// Rounds supplies the completed rounds for /rounds
	// (Platform.RoundReports fits directly).
	Rounds func() []core.RoundReport
	// Extra mounts additional routes on the server's mux. The
	// coordinator rides an ops server this way: its control protocol
	// (/coord/*) serves beside the standard observability surface, so
	// one address answers both workers and operators.
	Extra map[string]http.HandlerFunc
	// Prom, when non-nil, replaces the /metrics/prom body. The mux
	// panics on duplicate patterns, so overriding the exposition must
	// be a hook, not an Extra route — the coordinator substitutes its
	// fleet-wide, worker-labeled exposition here.
	Prom func(w io.Writer) error
}

// Server is the live ops endpoint.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	srv   *http.Server
	start time.Time
}

// New builds a server; call Start to bind it, or use Handler directly
// (tests mount it on httptest servers).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prom", s.handleMetricsProm)
	s.mux.HandleFunc("/rounds", s.handleRounds)
	s.mux.HandleFunc("/trace/active", s.handleTraceActive)
	s.mux.HandleFunc("/trace/slowest", s.handleTraceSlowest)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range cfg.Extra {
		s.mux.HandleFunc(pattern, h)
	}
	return s
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (e.g. "127.0.0.1:8377", or ":0" for an ephemeral
// port) and serves in a background goroutine, returning the bound
// address. Shut it down with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server, waiting for in-flight requests up to the
// context's deadline. A server never started shuts down trivially.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// WriteJSON writes v as indented JSON with the conventional content
// type — the package's house answer format, exported for the handlers
// Config.Extra mounts.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) { WriteJSON(w, v) }

// ErrorDoc is the house error shape: every handler failure is a JSON
// document, never bare text, so scripted clients can always decode the
// body.
type ErrorDoc struct {
	Error string `json:"error"`
}

// WriteError writes an ErrorDoc with the given status — exported for
// the handlers Config.Extra mounts, so the whole surface shares one
// error shape.
func WriteError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ErrorDoc{Error: msg})
}

// requireGet rejects non-GET/HEAD methods with a JSON 405. The
// read-only surface answers nothing else.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	WriteError(w, http.StatusMethodNotAllowed, "ops: "+r.Method+" not allowed; use GET")
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start).Nanoseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, s.cfg.Metrics.Snapshot())
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.cfg.Prom != nil {
		_ = s.cfg.Prom(w)
		return
	}
	_ = s.cfg.Metrics.Snapshot().WriteProm(w, "whowas")
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	rounds := []core.RoundReport{}
	if s.cfg.Rounds != nil {
		if rr := s.cfg.Rounds(); rr != nil {
			rounds = rr
		}
	}
	writeJSON(w, rounds)
}

func (s *Server) handleTraceActive(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	spans := s.cfg.Tracer.Active()
	if spans == nil {
		spans = []trace.SpanSnapshot{}
	}
	writeJSON(w, spans)
}

// maxSlowest bounds /trace/slowest?n=: the ring holds a few thousand
// spans at most, so anything beyond this is a typo, not a query.
const maxSlowest = 10000

func (s *Server) handleTraceSlowest(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > maxSlowest {
			WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("ops: n must be an integer in [1, %d], got %q", maxSlowest, q))
			return
		}
		n = v
	}
	spans := s.cfg.Tracer.Slowest(n)
	if spans == nil {
		spans = []trace.SpanSnapshot{}
	}
	writeJSON(w, spans)
}
