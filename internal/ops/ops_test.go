package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whowas/internal/core"
	"whowas/internal/metrics"
	"whowas/internal/trace"
)

func testServer(t *testing.T) (*Server, *metrics.Registry, *trace.Tracer) {
	t.Helper()
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Config{SamplePerMille: 1000})
	rounds := []core.RoundReport{{Round: 0, Day: 0, Probed: 100, Responsive: 7}}
	s := New(Config{
		Metrics: reg,
		Tracer:  tr,
		Rounds:  func() []core.RoundReport { return rounds },
	})
	return s, reg, tr
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	body, _ := io.ReadAll(rr.Result().Body)
	return rr.Code, string(body)
}

func TestHealthz(t *testing.T) {
	s, _, _ := testServer(t)
	code, body := get(t, s.Handler(), "/healthz")
	if code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	var doc struct {
		Status   string `json:"status"`
		UptimeNS int64  `json:"uptime_ns"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.UptimeNS < 0 {
		t.Errorf("healthz doc %+v", doc)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	s, reg, _ := testServer(t)
	reg.Counter("scanner.probes").Add(42)

	code, body := get(t, s.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["scanner.probes"] != 42 {
		t.Errorf("snapshot counters %v", snap.Counters)
	}

	code, body = get(t, s.Handler(), "/metrics/prom")
	if code != 200 {
		t.Fatalf("/metrics/prom status %d", code)
	}
	if !strings.Contains(body, "whowas_scanner_probes_total 42") {
		t.Errorf("prom exposition missing counter:\n%s", body)
	}
}

func TestRounds(t *testing.T) {
	s, _, _ := testServer(t)
	code, body := get(t, s.Handler(), "/rounds")
	if code != 200 {
		t.Fatalf("/rounds status %d", code)
	}
	var rounds []core.RoundReport
	if err := json.Unmarshal([]byte(body), &rounds); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 || rounds[0].Responsive != 7 {
		t.Errorf("rounds %+v", rounds)
	}
}

func TestTraceEndpoints(t *testing.T) {
	s, _, tr := testServer(t)

	active := tr.Start("round", nil, trace.Int("round", 0))
	done := tr.Start("scan", active)
	time.Sleep(time.Millisecond)
	done.End()

	code, body := get(t, s.Handler(), "/trace/active")
	if code != 200 {
		t.Fatalf("/trace/active status %d", code)
	}
	var spans []trace.SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "round" || !spans[0].Active {
		t.Errorf("active spans %+v", spans)
	}

	code, body = get(t, s.Handler(), "/trace/slowest?n=5")
	if code != 200 {
		t.Fatalf("/trace/slowest status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "scan" || spans[0].DurNS <= 0 {
		t.Errorf("slowest spans %+v", spans)
	}

	if code, _ := get(t, s.Handler(), "/trace/slowest?n=bogus"); code != 400 {
		t.Errorf("bogus n status %d, want 400", code)
	}
	active.End()
}

func TestNilConfigServesEmpty(t *testing.T) {
	s := New(Config{})
	for _, path := range []string{"/healthz", "/metrics", "/metrics/prom", "/rounds", "/trace/active", "/trace/slowest"} {
		if code, _ := get(t, s.Handler(), path); code != 200 {
			t.Errorf("%s status %d with zero config", path, code)
		}
	}
}

func TestPprofMounted(t *testing.T) {
	s, _, _ := testServer(t)
	code, body := get(t, s.Handler(), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestStartAndShutdown(t *testing.T) {
	s, reg, _ := testServer(t)
	reg.Counter("core.rounds").Inc()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("live healthz status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
