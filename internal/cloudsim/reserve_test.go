package cloudsim

import (
	"testing"

	"whowas/internal/ipaddr"
)

// TestElasticReserveStability: a deployment that shrinks and later
// grows again should re-bind the addresses it parked (Elastic-IP
// semantics, §2), not churn through fresh ones.
func TestElasticReserveStability(t *testing.T) {
	cfg := DefaultEC2Config(512, 83)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a bump-pattern multi-IP service: size rises then falls back.
	for _, svc := range c.Services() {
		if svc.Pattern != "0,1,0,-1,0" || svc.DailyChurn > 0 || svc.SizeOn(0) < 3 {
			continue
		}
		// IPs held at the start should be held again at the end: the
		// bump's extra IPs come and go, but the base set is stable.
		start := map[ipaddr.Addr]bool{}
		for _, a := range c.AssignedIPs(svc.StartDay, svc.ID) {
			start[a] = true
		}
		endDay := svc.EndDay - 1
		endIPs := c.AssignedIPs(endDay, svc.ID)
		if len(endIPs) == 0 {
			continue
		}
		kept := 0
		for _, a := range endIPs {
			if start[a] {
				kept++
			}
		}
		if frac := float64(kept) / float64(len(endIPs)); frac < 0.9 {
			t.Errorf("service %d (no churn, bump pattern): only %.0f%% of final IPs from the original set", svc.ID, 100*frac)
		}
		return
	}
	t.Skip("no suitable bump service in sample")
}

// TestMigrationFlipsNetworking: a migrating service must hold classic
// IPs before its migration day and VPC IPs after.
func TestMigrationFlipsNetworking(t *testing.T) {
	cfg := DefaultEC2Config(256, 84)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	for _, svc := range c.Services() {
		if svc.MigrateDay == 0 || svc.MigrateVPCShare != 1 {
			continue
		}
		before := c.AssignedIPs(svc.MigrateDay-1, svc.ID)
		after := c.AssignedIPs(svc.MigrateDay, svc.ID)
		if len(before) == 0 || len(after) == 0 {
			continue
		}
		for _, a := range before {
			if c.IsVPC(a) {
				t.Errorf("service %d: pre-migration IP %s is VPC", svc.ID, a)
			}
		}
		vpcAfter := 0
		for _, a := range after {
			if c.IsVPC(a) {
				vpcAfter++
			}
		}
		// Pool pressure may force a classic fallback, but the bulk
		// must land on VPC prefixes.
		if vpcAfter == 0 {
			t.Errorf("service %d: no VPC IPs after migration", svc.ID)
		}
		checked = true
	}
	if !checked {
		t.Skip("no classic->VPC migration with IPs on both sides in sample")
	}
}

// TestSharedServicesMatchAcrossClouds: the cross-cloud population must
// carry identical identities (domain, title, GA ID) on both clouds.
func TestSharedServicesMatchAcrossClouds(t *testing.T) {
	ec2, err := New(DefaultEC2Config(512, 85))
	if err != nil {
		t.Fatal(err)
	}
	az, err := New(DefaultAzureConfig(128, 86))
	if err != nil {
		t.Fatal(err)
	}
	key := func(c *Cloud) map[string]bool {
		out := map[string]bool{}
		for _, svc := range c.Services() {
			if svc.Profile.ID >= 1<<40 { // shared identity space
				out[svc.Profile.Domain+"|"+svc.Profile.Title+"|"+svc.Profile.AnalyticsID] = true
			}
		}
		return out
	}
	a, b := key(ec2), key(az)
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("shared services missing: ec2=%d azure=%d", len(a), len(b))
	}
	overlap := 0
	for k := range a {
		if b[k] {
			overlap++
		}
	}
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	if overlap != min {
		t.Errorf("shared overlap = %d, want %d (identical profiles)", overlap, min)
	}
}
