package cloudsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// Cloud is a fully materialized simulated IaaS cloud: a ground-truth
// timeline of every public IP's state across the campaign. It is
// immutable after New, so the network, DNS and blacklist simulators
// can share it concurrently.
type Cloud struct {
	cfg      Config
	space    *addressSpace
	services []*Service
	byID     map[uint64]*Service
	days     []daySnapshot
}

// daySnapshot holds the bindings for one day, sorted by address for
// binary-search lookup.
type daySnapshot struct {
	addrs    []ipaddr.Addr
	bindings []bindingVal
}

type bindingVal struct {
	svcID uint32 // 0 = background (non-web) instance
	ports PortProfile
}

// IPState is the ground-truth state of one IP on one day.
type IPState struct {
	Bound     bool        // an instance holds the IP
	Ports     PortProfile // which probed ports answer
	Web       bool        // serves HTTP(S) content
	ServiceID uint64      // owning web service, 0 for background
	Region    string
	VPC       bool
	Slow      bool // answers probes only after >2 s (the §4 timeout tail)
	HTTPFail  bool // transient HTTP-layer failure today
	Down      bool // service-wide maintenance window today
}

// New builds the cloud: generates the tenant population and steps the
// assignment engine through every campaign day.
func New(cfg Config) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	space, err := newAddressSpace(&cfg)
	if err != nil {
		return nil, err
	}
	popRng := rand.New(rand.NewSource(cfg.Seed))
	services := buildPopulation(&cfg, popRng)
	c := &Cloud{
		cfg:      cfg,
		space:    space,
		services: services,
		byID:     make(map[uint64]*Service, len(services)),
	}
	for _, s := range services {
		if s.ID > uint64(^uint32(0)) {
			return nil, fmt.Errorf("cloudsim: service ID %d exceeds uint32", s.ID)
		}
		c.byID[s.ID] = s
	}
	c.step(rand.New(rand.NewSource(cfg.Seed + 1)))
	return c, nil
}

// step runs the per-day assignment engine, producing c.days.
func (c *Cloud) step(rng *rand.Rand) {
	pool := newPool(c.space, rng)
	assigned := make(map[uint64][]ipaddr.Addr) // svcID -> current IPs
	classOf := make(map[ipaddr.Addr]poolKey)   // where to release an IP back
	// reserve models Elastic/Reserved IPs (§2): addresses a deployment
	// released while downsizing stay allocated to the tenant and are
	// re-bound first when it scales back up, so size fluctuations do
	// not churn ownership.
	reserve := make(map[uint64][]ipaddr.Addr)

	type bgInst struct {
		addr     ipaddr.Addr
		deathDay int
	}
	var bg []bgInst

	p := c.cfg.Population
	total := float64(c.cfg.regionIPTotal())
	responsive0 := total * p.TargetResponsive
	lastDay := c.cfg.Days - 1
	// Per-day web IP usage is known in advance from the schedules.
	webByDay := make([]int, c.cfg.Days)
	for _, s := range c.services {
		for d := s.StartDay; d < s.EndDay && d < c.cfg.Days; d++ {
			webByDay[d] += s.SizeOn(d)
		}
	}
	// The background population absorbs the *smooth trend* of web
	// growth so the total responsive curve follows Table 7's target,
	// while sharp web events (the Friday departure dips of Figure 8)
	// still show through. A 21-day centered moving average separates
	// trend from event.
	webTrend := movingAverage(webByDay, 10)
	bgTarget := func(d int) int {
		target := responsive0
		if lastDay > 0 {
			target = responsive0 * (1 + p.Growth*float64(d)/float64(lastDay))
		}
		n := int(target) - int(webTrend[d])
		if n < 0 {
			n = 0
		}
		return n
	}
	geomLifetime := func() int {
		churn := p.DailyBackgroundChurn
		if churn <= 0 {
			return c.cfg.Days + 1
		}
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		life := int(math.Log(u)/math.Log(1-churn)) + 1
		if life < 1 {
			life = 1
		}
		return life
	}

	acquireFor := func(s *Service) (ipaddr.Addr, bool) {
		region := s.Regions[rng.Intn(len(s.Regions))]
		vpc := rng.Float64() < s.VPCShare
		if a, ok := pool.acquire(region, vpc); ok {
			classOf[a] = poolKey{region, vpc}
			return a, true
		}
		// Fall back to the other class, then to any region.
		if a, ok := pool.acquire(region, !vpc); ok {
			classOf[a] = poolKey{region, !vpc}
			return a, true
		}
		for _, r := range c.cfg.Regions {
			for _, v := range []bool{vpc, !vpc} {
				if a, ok := pool.acquire(r.Name, v); ok {
					classOf[a] = poolKey{r.Name, v}
					return a, true
				}
			}
		}
		return 0, false
	}
	release := func(a ipaddr.Addr) {
		k := classOf[a]
		delete(classOf, a)
		pool.release(a, k.region, k.vpc)
	}

	c.days = make([]daySnapshot, c.cfg.Days)
	for d := 0; d < c.cfg.Days; d++ {
		// Service transitions, in deterministic (ID) order.
		for _, s := range c.services {
			cur := assigned[s.ID]
			target := s.SizeOn(d)
			// Classic->VPC migration (§8.1, Figure 14): the deployment
			// relaunches all instances on its migration day, drawing
			// fresh addresses from the other networking type.
			if s.MigrateDay == d && len(cur) > 0 {
				for _, a := range cur {
					release(a)
				}
				cur = cur[:0]
				for _, a := range reserve[s.ID] {
					release(a)
				}
				delete(reserve, s.ID)
				s.VPCShare = s.MigrateVPCShare
			}
			// Intra-deployment IP churn: replace a fraction of IPs
			// (genuine relinquishment — the addresses return to the
			// provider pool, not to the tenant's reserve).
			if d > s.StartDay && s.DailyChurn > 0 && len(cur) > 0 && target > 0 {
				keep := cur[:0]
				replaced := 0
				for _, a := range cur {
					if rng.Float64() < s.DailyChurn {
						release(a)
						replaced++
					} else {
						keep = append(keep, a)
					}
				}
				cur = keep
				for i := 0; i < replaced; i++ {
					if a, ok := acquireFor(s); ok {
						cur = append(cur, a)
					}
				}
			}
			// Resize toward the day's target. Downsizing terminates the
			// newest instances first (autoscaling keeps the long-lived
			// base) and parks their IPs in the tenant's reserve
			// (Elastic-IP semantics); a deployment that ends releases
			// everything.
			for len(cur) > target {
				idx := len(cur) - 1
				if target == 0 {
					release(cur[idx])
				} else {
					reserve[s.ID] = append(reserve[s.ID], cur[idx])
				}
				cur = cur[:idx]
			}
			if target == 0 && len(reserve[s.ID]) > 0 {
				for _, a := range reserve[s.ID] {
					release(a)
				}
				delete(reserve, s.ID)
			}
			for len(cur) < target {
				if rs := reserve[s.ID]; len(rs) > 0 {
					cur = append(cur, rs[len(rs)-1])
					reserve[s.ID] = rs[:len(rs)-1]
					continue
				}
				a, ok := acquireFor(s)
				if !ok {
					break
				}
				cur = append(cur, a)
			}
			assigned[s.ID] = cur
		}

		// Background population lifecycle.
		live := bg[:0]
		for _, inst := range bg {
			if inst.deathDay <= d {
				release(inst.addr)
			} else {
				live = append(live, inst)
			}
		}
		bg = live
		for len(bg) < bgTarget(d) {
			// Background instances spread across all regions; a share
			// sits on VPC prefixes once VPC exists.
			region := c.cfg.Regions[rng.Intn(len(c.cfg.Regions))].Name
			vpc := rng.Float64() < p.VPCClusterShare*0.8
			a, ok := pool.acquire(region, vpc)
			if !ok {
				if a, ok = pool.acquire(region, !vpc); !ok {
					break
				}
				vpc = !vpc
			}
			classOf[a] = poolKey{region, vpc}
			bg = append(bg, bgInst{addr: a, deathDay: d + geomLifetime()})
		}

		// Materialize the snapshot.
		snap := daySnapshot{}
		for _, s := range c.services {
			for _, a := range assigned[s.ID] {
				snap.addrs = append(snap.addrs, a)
				snap.bindings = append(snap.bindings, bindingVal{svcID: uint32(s.ID), ports: s.Ports})
			}
		}
		for _, inst := range bg {
			snap.addrs = append(snap.addrs, inst.addr)
			snap.bindings = append(snap.bindings, bindingVal{svcID: 0, ports: SSHOnly})
		}
		sortSnapshot(&snap)
		c.days[d] = snap
	}
}

// movingAverage returns the centered moving average of xs with the
// given half-window (window = 2*half+1). Near the edges the window
// shrinks *symmetrically*: an asymmetric window would bias the trend
// toward interior values and distort the growth the background
// population compensates for.
func movingAverage(xs []int, half int) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		h := half
		if i < h {
			h = i
		}
		if len(xs)-1-i < h {
			h = len(xs) - 1 - i
		}
		sum := 0
		for j := i - h; j <= i+h; j++ {
			sum += xs[j]
		}
		out[i] = float64(sum) / float64(2*h+1)
	}
	return out
}

func sortSnapshot(s *daySnapshot) {
	idx := make([]int, len(s.addrs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s.addrs[idx[i]] < s.addrs[idx[j]] })
	addrs := make([]ipaddr.Addr, len(s.addrs))
	binds := make([]bindingVal, len(s.bindings))
	for i, k := range idx {
		addrs[i] = s.addrs[k]
		binds[i] = s.bindings[k]
	}
	s.addrs = addrs
	s.bindings = binds
}

// hash64 is a deterministic per-(cloud, ip, day, salt) hash for
// transient-event draws (HTTP failures, slow hosts).
func (c *Cloud) hash64(ip ipaddr.Addr, day int, salt uint64) uint64 {
	x := uint64(ip)<<32 ^ uint64(uint32(day))<<8 ^ salt ^ uint64(c.cfg.Seed)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Config returns the cloud's configuration.
func (c *Cloud) Config() Config { return c.cfg }

// Days returns the campaign length in days.
func (c *Cloud) Days() int { return c.cfg.Days }

// Ranges returns the probed address space.
func (c *Cloud) Ranges() *ipaddr.RangeList { return c.space.ranges }

// Services exposes the ground-truth tenant population (shared slice;
// callers must not modify).
func (c *Cloud) Services() []*Service { return c.services }

// ServiceByID looks up one service.
func (c *Cloud) ServiceByID(id uint64) *Service { return c.byID[id] }

// RegionOf returns the region owning an address, or "".
func (c *Cloud) RegionOf(a ipaddr.Addr) string {
	if pi := c.space.lookup(a); pi != nil {
		return pi.region
	}
	return ""
}

// IsVPC reports the ground-truth VPC flag of an address's prefix.
func (c *Cloud) IsVPC(a ipaddr.Addr) bool {
	pi := c.space.lookup(a)
	return pi != nil && pi.vpc
}

// VPCPrefixes22 returns, per region, how many /22 prefixes are VPC
// (ground truth behind Table 2).
func (c *Cloud) VPCPrefixes22() map[string]int {
	out := map[string]int{}
	for _, r := range c.cfg.Regions {
		out[r.Name] = r.VPC22
	}
	return out
}

// StateAt returns the ground-truth state of ip on the given day.
func (c *Cloud) StateAt(day int, ip ipaddr.Addr) IPState {
	var st IPState
	if day < 0 || day >= len(c.days) {
		return st
	}
	pi := c.space.lookup(ip)
	if pi == nil {
		return st
	}
	st.Region = pi.region
	st.VPC = pi.vpc
	snap := &c.days[day]
	i := sort.Search(len(snap.addrs), func(i int) bool { return snap.addrs[i] >= ip })
	if i >= len(snap.addrs) || snap.addrs[i] != ip {
		return st
	}
	b := snap.bindings[i]
	st.Bound = true
	st.Ports = b.ports
	st.ServiceID = uint64(b.svcID)
	st.Web = b.ports.Web() && b.svcID != 0
	// ~0.5% of live hosts are persistently slow (only answer patient
	// probes); keyed by IP+service so the set is stable day to day.
	st.Slow = c.hash64(ip, 0, uint64(b.svcID)*31+7)%1000 < 4
	if st.Web {
		svc := c.byID[st.ServiceID]
		if svc != nil {
			st.Down = svc.DownOn(day)
		}
		failPermille := uint64(c.cfg.Population.HTTPFailRate * 1000)
		st.HTTPFail = c.hash64(ip, day, 13)%1000 < failPermille
	}
	return st
}

// PageOn returns the content profile an IP serves on a day, with the
// content revision in effect. ok is false when the IP serves no web
// content that day (unbound, SSH-only, service down, or HTTP failure).
func (c *Cloud) PageOn(day int, ip ipaddr.Addr) (profile websim.Profile, revision int, ok bool) {
	st := c.StateAt(day, ip)
	if !st.Web || st.Down || st.HTTPFail {
		return websim.Profile{}, 0, false
	}
	svc := c.byID[st.ServiceID]
	if svc == nil {
		return websim.Profile{}, 0, false
	}
	p, ok := svc.PageOn(day)
	if !ok {
		return websim.Profile{}, 0, false
	}
	return p, svc.RevisionOn(day), true
}

// AssignedIPs returns the IPs a service holds on a day (ground truth
// for calibration tests and the blacklist feeds).
func (c *Cloud) AssignedIPs(day int, svcID uint64) []ipaddr.Addr {
	if day < 0 || day >= len(c.days) {
		return nil
	}
	snap := &c.days[day]
	var out []ipaddr.Addr
	for i, a := range snap.addrs {
		if uint64(snap.bindings[i].svcID) == svcID {
			out = append(out, a)
		}
	}
	return out
}

// BoundCount returns how many IPs are bound on a day (responsive
// ground truth).
func (c *Cloud) BoundCount(day int) int {
	if day < 0 || day >= len(c.days) {
		return 0
	}
	return len(c.days[day].addrs)
}

// MaliciousServices returns services carrying malicious behaviour.
func (c *Cloud) MaliciousServices() []*Service {
	var out []*Service
	for _, s := range c.services {
		if s.Malicious.Type != 0 {
			out = append(out, s)
		}
	}
	return out
}
