package cloudsim

import (
	"math/rand"
	"testing"

	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// testEC2 builds a small EC2-like cloud shared by the tests.
func testEC2(t testing.TB) *Cloud {
	t.Helper()
	cfg := DefaultEC2Config(256, 1) // ~18k IPs: fast enough for unit tests
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testAzure(t testing.TB) *Cloud {
	t.Helper()
	cfg := DefaultAzureConfig(64, 2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultEC2Config(64, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Days = 0
	if err := bad.Validate(); err == nil {
		t.Error("Days=0 accepted")
	}
	bad = good
	bad.Regions = nil
	if err := bad.Validate(); err == nil {
		t.Error("no regions accepted")
	}
	bad = good
	bad.Population.TargetResponsive = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("TargetResponsive=1.5 accepted")
	}
	bad = good
	bad.Population.SSHOnly = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("port mix != 1 accepted")
	}
	bad = good
	bad.Population.WebClusters = 0
	if err := bad.Validate(); err == nil {
		t.Error("WebClusters=0 accepted")
	}
}

func TestDefaultConfigsScale(t *testing.T) {
	ec2 := DefaultEC2Config(64, 1)
	total := ec2.regionIPTotal()
	if total < 60000 || total > 90000 {
		t.Errorf("EC2 1:64 total IPs = %d, want ~73k", total)
	}
	if len(ec2.Regions) != 8 {
		t.Errorf("EC2 regions = %d, want 8", len(ec2.Regions))
	}
	az := DefaultAzureConfig(16, 1)
	if az.regionIPTotal() < 25000 || az.regionIPTotal() > 40000 {
		t.Errorf("Azure 1:16 total IPs = %d, want ~31k", az.regionIPTotal())
	}
	if az.Days != 62 || ec2.Days != 93 {
		t.Errorf("campaign lengths = %d/%d, want 93/62", ec2.Days, az.Days)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultEC2Config(512, 7)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.services) != len(b.services) {
		t.Fatalf("service counts differ: %d vs %d", len(a.services), len(b.services))
	}
	for d := 0; d < cfg.Days; d += 17 {
		if a.BoundCount(d) != b.BoundCount(d) {
			t.Errorf("day %d bound counts differ: %d vs %d", d, a.BoundCount(d), b.BoundCount(d))
		}
	}
	// Spot-check states across the space.
	rl := a.Ranges()
	for i := int64(0); i < int64(rl.Total()); i += 997 {
		ip, _ := rl.AtIndex(i)
		sa := a.StateAt(30, ip)
		sb := b.StateAt(30, ip)
		if sa != sb {
			t.Fatalf("state mismatch at %s: %+v vs %+v", ip, sa, sb)
		}
	}
}

func TestResponsiveCalibration(t *testing.T) {
	c := testEC2(t)
	total := float64(c.Ranges().Total())
	frac0 := float64(c.BoundCount(0)) / total
	if frac0 < 0.20 || frac0 > 0.28 {
		t.Errorf("day-0 responsive fraction = %.3f, want ~0.237", frac0)
	}
	// Growth over the campaign (paper: +3.3% responsive on EC2).
	last := c.Days() - 1
	growth := float64(c.BoundCount(last)-c.BoundCount(0)) / float64(c.BoundCount(0))
	if growth < 0.0 || growth > 0.09 {
		t.Errorf("responsive growth = %.3f, want ~0.033", growth)
	}
}

func TestPortMixCalibration(t *testing.T) {
	c := testEC2(t)
	counts := map[PortProfile]int{}
	rl := c.Ranges()
	day := c.Days() / 2
	rl.Each(func(a ipaddr.Addr) bool {
		st := c.StateAt(day, a)
		if st.Bound {
			counts[st.Ports]++
		}
		return true
	})
	totalResp := 0
	for _, n := range counts {
		totalResp += n
	}
	sshFrac := float64(counts[SSHOnly]) / float64(totalResp)
	if sshFrac < 0.18 || sshFrac > 0.34 {
		t.Errorf("SSH-only fraction = %.3f, want ~0.259", sshFrac)
	}
	webFrac := 1 - sshFrac
	if webFrac < 0.66 || webFrac > 0.82 {
		t.Errorf("web fraction = %.3f, want ~0.741", webFrac)
	}
	if counts[HTTPOnly] <= counts[HTTPSOnly] {
		t.Errorf("80-only (%d) should dominate 443-only (%d)", counts[HTTPOnly], counts[HTTPSOnly])
	}
}

func TestStateAtUnboundAndOutside(t *testing.T) {
	c := testEC2(t)
	outside := ipaddr.MustParseAddr("8.8.8.8")
	if st := c.StateAt(0, outside); st.Bound || st.Region != "" {
		t.Errorf("outside address state = %+v", st)
	}
	if st := c.StateAt(-1, 0); st.Bound {
		t.Error("negative day bound")
	}
	if st := c.StateAt(c.Days(), 0); st.Bound {
		t.Error("past-end day bound")
	}
}

func TestRegionAndVPCLookup(t *testing.T) {
	// Use the default campaign scale (1:64), where Table 2's region
	// proportions survive rounding; the layout needs no day stepping.
	cfg := DefaultEC2Config(64, 1)
	space, err := newAddressSpace(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	vpcCount, total := 0, 0
	regions := map[string]int{}
	space.ranges.Each(func(a ipaddr.Addr) bool {
		pi := space.lookup(a)
		if pi == nil {
			t.Fatalf("address %s has no prefix info", a)
		}
		regions[pi.region]++
		if pi.vpc {
			vpcCount++
		}
		total++
		return true
	})
	if len(regions) != 8 {
		t.Errorf("regions seen = %d, want 8", len(regions))
	}
	vpcFrac := float64(vpcCount) / float64(total)
	// Real EC2: 22.7% of IPs on VPC prefixes (weighted from Table 2).
	if vpcFrac < 0.12 || vpcFrac > 0.35 {
		t.Errorf("VPC IP fraction = %.3f, want ~0.23", vpcFrac)
	}
	// us-east-1 must be the largest region (Table 2).
	for r, n := range regions {
		if r != "us-east-1" && n > regions["us-east-1"] {
			t.Errorf("region %s (%d IPs) larger than us-east-1 (%d)", r, n, regions["us-east-1"])
		}
	}
	// Addresses below/above the space have no info.
	if space.lookup(space.prefixes[0].prefix.Addr-1) != nil {
		t.Error("lookup below space succeeded")
	}
}

func TestServiceIPsMatchSnapshot(t *testing.T) {
	c := testEC2(t)
	day := 10
	for _, svc := range c.services[:20] {
		ips := c.AssignedIPs(day, svc.ID)
		want := svc.SizeOn(day)
		// Assignment may fall short only under pool exhaustion, which
		// must not happen at default utilization.
		if len(ips) != want {
			t.Errorf("service %d: assigned %d IPs, target %d", svc.ID, len(ips), want)
		}
		for _, ip := range ips {
			st := c.StateAt(day, ip)
			if !st.Bound || st.ServiceID != svc.ID {
				t.Errorf("service %d: snapshot disagrees at %s: %+v", svc.ID, ip, st)
			}
		}
	}
}

func TestClusterSizeMix(t *testing.T) {
	// The paper buckets clusters by *average* size per round (§8.1:
	// 78.8% average one IP, 20.8% average 2-20 on EC2). Compute each
	// web service's average size over the days it is alive.
	c := testEC2(t)
	var single, small, total int
	for _, svc := range c.services {
		if !svc.Ports.Web() {
			continue
		}
		sum, days := 0, 0
		for d := 0; d < c.Days(); d++ {
			if n := svc.SizeOn(d); n > 0 {
				sum += n
				days++
			}
		}
		if days == 0 {
			continue
		}
		avg := float64(sum) / float64(days)
		total++
		switch {
		case avg < 1.5:
			single++
		case avg <= 20:
			small++
		}
	}
	singleFrac := float64(single) / float64(total)
	if singleFrac < 0.70 || singleFrac > 0.88 {
		t.Errorf("singleton cluster fraction = %.3f, want ~0.79", singleFrac)
	}
	smallFrac := float64(small) / float64(total)
	if smallFrac < 0.10 || smallFrac > 0.30 {
		t.Errorf("small cluster fraction = %.3f, want ~0.21", smallFrac)
	}
}

func TestGiantsPresent(t *testing.T) {
	c := testEC2(t)
	day := c.Days() / 2
	maxSize := 0
	for _, svc := range c.services {
		if n := svc.SizeOn(day); n > maxSize {
			maxSize = n
		}
	}
	// At 1:256 the top PaaS cluster should still hold ~129 IPs.
	if maxSize < 60 {
		t.Errorf("largest service size = %d, want >= 60", maxSize)
	}
}

func TestPageOnRendersContent(t *testing.T) {
	c := testEC2(t)
	day := 5
	found := 0
	for _, svc := range c.services {
		if !svc.Ports.Web() || svc.SizeOn(day) == 0 {
			continue
		}
		ips := c.AssignedIPs(day, svc.ID)
		if len(ips) == 0 {
			continue
		}
		prof, rev, ok := c.PageOn(day, ips[0])
		st := c.StateAt(day, ips[0])
		if st.Down || st.HTTPFail {
			if ok {
				t.Errorf("service %d: PageOn ok despite down/fail", svc.ID)
			}
			continue
		}
		if !ok {
			t.Errorf("service %d: PageOn not ok for live web IP", svc.ID)
			continue
		}
		if body := prof.RenderPage(rev); body == "" {
			t.Errorf("service %d: empty page", svc.ID)
		}
		found++
		if found >= 50 {
			break
		}
	}
	if found == 0 {
		t.Fatal("no web pages rendered")
	}
}

func TestMaliciousBehaviorTypes(t *testing.T) {
	c := testEC2(t)
	mal := c.MaliciousServices()
	if len(mal) == 0 {
		t.Fatal("no malicious services generated")
	}
	types := map[int]int{}
	for _, svc := range mal {
		types[svc.Malicious.Type]++
		if len(svc.Malicious.AllURLs()) == 0 {
			t.Errorf("malicious service %d has no URLs", svc.ID)
		}
	}
	for _, typ := range []int{1, 2, 3} {
		if types[typ] == 0 {
			t.Errorf("no type-%d malicious services", typ)
		}
	}
}

func TestMaliciousFlickerType2(t *testing.T) {
	mb := MaliciousBehavior{
		Kind: websim.Malware, Type: 2,
		ActiveFrom: 10, ActiveTo: 50, FlickerPeriod: 8,
		URLSets: [][]string{{"http://evil.example/a"}},
	}
	onDays, offDays := 0, 0
	for d := 10; d < 50; d++ {
		if _, active := mb.ActiveOn(d); active {
			onDays++
		} else {
			offDays++
		}
	}
	if onDays == 0 || offDays == 0 {
		t.Errorf("type-2 behaviour not flickering: on=%d off=%d", onDays, offDays)
	}
	if _, active := mb.ActiveOn(9); active {
		t.Error("active before window")
	}
	if _, active := mb.ActiveOn(50); active {
		t.Error("active after window")
	}
}

func TestMaliciousRotationType3(t *testing.T) {
	mb := MaliciousBehavior{
		Kind: websim.Malware, Type: 3,
		ActiveFrom: 0, ActiveTo: 40, RotateEvery: 10,
		URLSets: [][]string{{"http://a.example/1"}, {"http://b.example/2"}},
	}
	u0, _ := mb.ActiveOn(0)
	u1, _ := mb.ActiveOn(10)
	u2, _ := mb.ActiveOn(20)
	if u0[0] == u1[0] {
		t.Error("type-3 did not rotate at period boundary")
	}
	if u0[0] != u2[0] {
		t.Error("type-3 did not cycle back")
	}
	if got := mb.AllURLs(); len(got) != 2 {
		t.Errorf("AllURLs = %v", got)
	}
}

func TestDipDaysDepartures(t *testing.T) {
	c := testEC2(t)
	dips := c.cfg.Population.DipDays
	if len(dips) == 0 {
		t.Skip("no dips configured")
	}
	// Count services ending exactly on each dip day; should be >= the
	// configured batch (other patterns may coincide).
	for _, day := range dips {
		n := 0
		for _, svc := range c.services {
			if svc.EndDay == day {
				n++
			}
		}
		if n < c.cfg.Population.DipClusters {
			t.Errorf("dip day %d: %d departures, want >= %d", day, n, c.cfg.Population.DipClusters)
		}
	}
}

func TestIPChurnOwnershipChanges(t *testing.T) {
	c := testEC2(t)
	// Across the campaign, some IP must be owned by different services
	// on different days (the churn WhoWas exists to measure).
	owners := map[ipaddr.Addr]map[uint64]bool{}
	for d := 0; d < c.Days(); d += 7 {
		snap := &c.days[d]
		for i, a := range snap.addrs {
			if snap.bindings[i].svcID == 0 {
				continue
			}
			if owners[a] == nil {
				owners[a] = map[uint64]bool{}
			}
			owners[a][uint64(snap.bindings[i].svcID)] = true
		}
	}
	multi := 0
	for _, m := range owners {
		if len(m) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no IP ever changed web-service ownership; churn model broken")
	}
}

func TestSlowHostsRareButPresent(t *testing.T) {
	c := testEC2(t)
	rl := c.Ranges()
	slow, bound := 0, 0
	rl.Each(func(a ipaddr.Addr) bool {
		st := c.StateAt(0, a)
		if st.Bound {
			bound++
			if st.Slow {
				slow++
			}
		}
		return true
	})
	frac := float64(slow) / float64(bound)
	if frac <= 0 || frac > 0.02 {
		t.Errorf("slow-host fraction = %.4f, want (0, 0.02]", frac)
	}
}

func TestHTTPFailTransient(t *testing.T) {
	c := testEC2(t)
	// An IP failing on one day should usually recover later: the fail
	// flag must not be constant per IP.
	rl := c.Ranges()
	var failsSomeday, failsAlways int
	checked := 0
	rl.Each(func(a ipaddr.Addr) bool {
		st := c.StateAt(0, a)
		if !st.Web {
			return true
		}
		checked++
		if checked > 2000 {
			return false
		}
		fails := 0
		days := 0
		for d := 0; d < c.Days(); d += 5 {
			s := c.StateAt(d, a)
			if !s.Web {
				continue
			}
			days++
			if s.HTTPFail {
				fails++
			}
		}
		if fails > 0 {
			failsSomeday++
			if fails == days {
				failsAlways++
			}
		}
		return true
	})
	if failsSomeday == 0 {
		t.Error("no transient HTTP failures generated")
	}
	if failsAlways > failsSomeday/2 {
		t.Errorf("HTTP failures not transient: %d/%d always fail", failsAlways, failsSomeday)
	}
}

func TestAzureNoVPCNoVT(t *testing.T) {
	c := testAzure(t)
	rl := c.Ranges()
	rl.Each(func(a ipaddr.Addr) bool {
		if c.IsVPC(a) {
			t.Fatalf("Azure address %s marked VPC", a)
		}
		return true
	})
	for _, svc := range c.MaliciousServices() {
		if svc.Malicious.Type != 1 && svc.Malicious.Type != 2 && svc.Malicious.Type != 3 {
			t.Errorf("unexpected malicious type %d", svc.Malicious.Type)
		}
	}
}

func TestSizeScheduleShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	days := 93
	flat := sizeSchedule(rng, "0", 10, days, 0)
	for _, v := range flat {
		if v != 10 {
			t.Fatalf("stable schedule varies: %v", flat)
		}
	}
	up := sizeSchedule(rng, "0,1,0", 10, days, 0)
	if up[0] >= up[days-1] {
		t.Errorf("step-up schedule: first=%d last=%d", up[0], up[days-1])
	}
	down := sizeSchedule(rng, "0,-1,0", 10, days, 0)
	if down[0] <= down[days-1] {
		t.Errorf("step-down schedule: first=%d last=%d", down[0], down[days-1])
	}
	bump := sizeSchedule(rng, "0,1,0,-1,0", 10, days, 0)
	if bump[days/2] <= bump[0] || bump[days-1] != bump[0] {
		t.Errorf("bump schedule: start=%d mid=%d end=%d", bump[0], bump[days/2], bump[days-1])
	}
	dip := sizeSchedule(rng, "0,-1,1,0", 10, days, 0)
	if dip[days/2] >= dip[0] {
		t.Errorf("dip schedule: start=%d mid=%d", dip[0], dip[days/2])
	}
	if v := sizeSchedule(rng, "0", 0, 5, 0); v[0] != 1 {
		t.Errorf("base<1 not clamped: %v", v)
	}
}

func TestServiceDownWindows(t *testing.T) {
	svc := &Service{ID: 3, DownPeriod: 10, DownLen: 2}
	downDays := 0
	for d := 0; d < 100; d++ {
		if svc.DownOn(d) {
			downDays++
		}
	}
	if downDays != 20 {
		t.Errorf("down days = %d, want 20", downDays)
	}
	never := &Service{ID: 4}
	for d := 0; d < 50; d++ {
		if never.DownOn(d) {
			t.Fatal("service with no window reports down")
		}
	}
}

func TestRevisionOn(t *testing.T) {
	svc := &Service{ID: 1, RevisionEvery: 10}
	if svc.RevisionOn(0) != 0 || svc.RevisionOn(9) != 0 || svc.RevisionOn(10) != 1 {
		t.Error("revision cadence wrong")
	}
	fixed := &Service{ID: 2}
	if fixed.RevisionOn(55) != 0 {
		t.Error("no-revision service revised")
	}
}

func BenchmarkStateAt(b *testing.B) {
	c := testEC2(b)
	rl := c.Ranges()
	ip, _ := rl.AtIndex(int64(rl.Total() / 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StateAt(i%c.Days(), ip)
	}
}

func BenchmarkNewCloud(b *testing.B) {
	cfg := DefaultEC2Config(512, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
