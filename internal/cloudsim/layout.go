package cloudsim

import (
	"fmt"

	"whowas/internal/ipaddr"
)

// PrefixInfo is the ground-truth layout of one /22 block: where it
// sits, which region advertises it, and whether it is VPC networking.
// The slice form is the cloud's entire address plan, which is what the
// wire client needs to answer RegionOf/IsVPC/Ranges locally instead of
// paying a round trip per address.
type PrefixInfo struct {
	Prefix ipaddr.Prefix `json:"prefix"`
	Region string        `json:"region"`
	VPC    bool          `json:"vpc"`
}

// Prefixes returns the cloud's /22 layout in address order (shared
// ground truth behind RegionOf and IsVPC).
func (c *Cloud) Prefixes() []PrefixInfo {
	out := make([]PrefixInfo, len(c.space.prefixes))
	for i, pi := range c.space.prefixes {
		out[i] = PrefixInfo{Prefix: pi.prefix, Region: pi.region, VPC: pi.vpc}
	}
	return out
}

// Layout computes the /22 address plan implied by a base octet and a
// region list without materializing a cloud: contiguous /22 blocks
// from baseOctet.0.0.0, each region taking its configured share with
// the leading VPC22 blocks marked VPC. This is exactly the plan New
// builds internally, exported so a remote cloud's client can
// reconstruct region and VPC lookups from the daemon's advertised
// configuration.
func Layout(baseOctet byte, regions []RegionConfig) ([]PrefixInfo, *ipaddr.RangeList, error) {
	next := uint32(baseOctet) << 24
	var infos []PrefixInfo
	var prefixes []ipaddr.Prefix
	for _, r := range regions {
		for i := 0; i < r.Prefixes22; i++ {
			p := ipaddr.Prefix{Addr: ipaddr.Addr(next), Bits: 22}
			infos = append(infos, PrefixInfo{Prefix: p, Region: r.Name, VPC: i < r.VPC22})
			prefixes = append(prefixes, p)
			next += 1024
		}
	}
	rl, err := ipaddr.NewRangeList(prefixes)
	if err != nil {
		return nil, nil, fmt.Errorf("cloudsim: building address layout: %w", err)
	}
	return infos, rl, nil
}
