package cloudsim

import (
	"math/rand"
	"sort"

	"whowas/internal/ipaddr"
)

// prefixInfo records the ground truth for one /22 block.
type prefixInfo struct {
	prefix ipaddr.Prefix
	region string
	vpc    bool
}

// addressSpace lays the configured regions out over contiguous /22
// blocks and answers region/VPC lookups for any address.
type addressSpace struct {
	prefixes []prefixInfo
	ranges   *ipaddr.RangeList
	regions  []string
}

// newAddressSpace carves BaseOctet.0.0.0 onward into consecutive /22
// blocks, assigning each region its configured share and marking the
// leading VPC22 blocks of each region as VPC. The plan itself comes
// from Layout so remote clients reconstructing it stay in lockstep.
func newAddressSpace(cfg *Config) (*addressSpace, error) {
	infos, rl, err := Layout(cfg.BaseOctet, cfg.Regions)
	if err != nil {
		return nil, err
	}
	as := &addressSpace{ranges: rl}
	for _, r := range cfg.Regions {
		as.regions = append(as.regions, r.Name)
	}
	as.prefixes = make([]prefixInfo, len(infos))
	for i, pi := range infos {
		as.prefixes[i] = prefixInfo{prefix: pi.Prefix, region: pi.Region, vpc: pi.VPC}
	}
	return as, nil
}

// lookup returns the prefix info covering a, or nil when a is outside
// the cloud.
func (as *addressSpace) lookup(a ipaddr.Addr) *prefixInfo {
	// Prefixes are contiguous /22s starting at prefixes[0]; index directly.
	if len(as.prefixes) == 0 {
		return nil
	}
	base := as.prefixes[0].prefix.Addr
	if a < base {
		return nil
	}
	idx := int((a - base) >> 10)
	if idx >= len(as.prefixes) {
		return nil
	}
	return &as.prefixes[idx]
}

// pool hands out free addresses per (region, vpc) class. Acquisition is
// random (seeded) so released IPs are reassigned unpredictably, which
// is what creates cross-tenant IP churn.
type pool struct {
	rng  *rand.Rand
	free map[poolKey][]ipaddr.Addr
}

type poolKey struct {
	region string
	vpc    bool
}

func newPool(as *addressSpace, rng *rand.Rand) *pool {
	p := &pool{rng: rng, free: make(map[poolKey][]ipaddr.Addr)}
	for _, pi := range as.prefixes {
		k := poolKey{pi.region, pi.vpc}
		last := pi.prefix.Last()
		for a := pi.prefix.First(); ; a++ {
			p.free[k] = append(p.free[k], a)
			if a == last {
				break
			}
		}
	}
	// Shuffle each free list once so sequential acquisition is already
	// scattered across the region's prefixes. Iterate classes in a
	// deterministic order: map iteration order would otherwise consume
	// the rng differently on every run.
	keys := make([]poolKey, 0, len(p.free))
	for k := range p.free {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		return !keys[i].vpc && keys[j].vpc
	})
	for _, k := range keys {
		list := p.free[k]
		p.rng.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
	}
	return p
}

// acquire removes and returns one free address of the given class.
func (p *pool) acquire(region string, vpc bool) (ipaddr.Addr, bool) {
	k := poolKey{region, vpc}
	list := p.free[k]
	if len(list) == 0 {
		return 0, false
	}
	a := list[len(list)-1]
	p.free[k] = list[:len(list)-1]
	return a, true
}

// release returns an address to its class's free list at a random
// position, so the next tenant to acquire from the region may receive
// a recently released IP (ownership churn) or a long-idle one.
func (p *pool) release(a ipaddr.Addr, region string, vpc bool) {
	k := poolKey{region, vpc}
	list := append(p.free[k], a)
	// Swap the new tail with a random element to avoid LIFO reuse.
	i := p.rng.Intn(len(list))
	list[i], list[len(list)-1] = list[len(list)-1], list[i]
	p.free[k] = list
}

// freeCount reports the available addresses in a class.
func (p *pool) freeCount(region string, vpc bool) int {
	return len(p.free[poolKey{region, vpc}])
}
