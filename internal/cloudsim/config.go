// Package cloudsim simulates an IaaS cloud (EC2- or Azure-like) as the
// measurement substrate for WhoWas. The paper measured the real Amazon
// EC2 and Microsoft Azure clouds during Sep–Dec 2013; this package
// stands in for them, generating a ground-truth timeline of every
// public IP's state (bound/unbound, open ports, hosted web service and
// its content) day by day.
//
// The simulation is calibrated to the distributions the paper reports
// (DESIGN.md §5 lists them): address-space utilization and growth
// (Table 7), open-port mix (Table 3), HTTP status mix (Table 4),
// cluster-size mix and churn (§8.1), size-change patterns (Table 11),
// VPC uptake (Table 2, Figures 13/14), Friday departure dips
// (Figure 8), and malicious activity (§8.2). Everything is driven by a
// single seed, so campaigns are reproducible.
package cloudsim

import (
	"fmt"

	"whowas/internal/websim"
)

// RegionConfig sizes one cloud region. EC2 regions carve their address
// space into classic and VPC /22 prefixes (Table 2); Azure has no VPC
// distinction.
// The json tags are pinned: region configs cross the cloudapi control
// plane inside a CloudSpec.
type RegionConfig struct {
	Name       string `json:"name"`
	Prefixes22 int    `json:"prefixes_22"` // total /22 blocks advertised by the region
	VPC22      int    `json:"vpc_22"`      // of which are VPC prefixes (EC2 only)
}

// GiantConfig describes one very large deployment, mirroring a row of
// Table 15.
type GiantConfig struct {
	MeanSize   int     // average IPs per round
	SizeJitter float64 // relative day-to-day size noise
	DailyChurn float64 // fraction of the IP set replaced per day
	Regions    int     // number of regions used
	VPCShare   float64 // fraction of its IPs drawn from VPC prefixes
	Category   websim.Category
}

// MaliciousConfig sizes the §8.2 malicious-activity ground truth.
type MaliciousConfig struct {
	// SafeBrowsing-visible services: pages containing phishing/malware
	// links (EC2: 196 IPs in 51 clusters; Azure: 13 IPs in 11 clusters).
	SBServices int
	// VirusTotal-flagged services by behaviour type (§8.2: 34 hold the
	// same page, 42 flicker, 22 rotate pages). Zero for Azure.
	VTType1, VTType2, VTType3 int
	// Linchpin services aggregating very many malicious URLs.
	Linchpins int
	// LinchpinURLs is how many malicious URLs a linchpin page carries.
	LinchpinURLs int
}

// PopulationConfig controls the synthetic tenant population.
type PopulationConfig struct {
	// TargetResponsive is the average fraction of the probed address
	// space that responds to probes (Table 7: 0.237 EC2, 0.239 Azure).
	TargetResponsive float64
	// Growth is the relative increase in responsive IPs over the
	// campaign (Table 7: 0.033 EC2, 0.073 Azure).
	Growth float64
	// Port mix among responsive IPs (Table 3).
	SSHOnly, HTTPOnly, HTTPSOnly, HTTPBoth float64
	// HTTPFailRate is the per-round probability that a web-open IP
	// fails at the HTTP layer (timeout/reset), making it unavailable.
	HTTPFailRate float64
	// DailyBackgroundChurn is the per-day probability that a background
	// (single-instance) deployment stops and is replaced, driving the
	// responsiveness churn of Figure 9.
	DailyBackgroundChurn float64
	// Cluster-size mix (§8.1): fractions of clusters by avg-size band.
	SingletonFrac, SmallFrac, MediumFrac float64 // 1, 2–20, 21–50; remainder >50
	// EphemeralFrac is the fraction of clusters that appear for only a
	// few days (§8.1: 0.114 EC2, 0.131 Azure).
	EphemeralFrac float64
	// WebClusters is the approximate number of web services (clusters)
	// alive at any time, before ephemerals.
	WebClusters int
	// Giants instantiates Table 15-style deployments.
	Giants []GiantConfig
	// DipDays lists campaign day offsets on which a batch of services
	// departs permanently (the paper's Friday/Saturday dips).
	DipDays []int
	// DipClusters is how many clusters leave on each dip day.
	DipClusters int
	// Malicious activity knobs.
	Malicious MaliciousConfig
	// VPCClusterShare is the fraction of new services placed on VPC
	// prefixes (only meaningful for EC2-like clouds). The paper found
	// 24.5% VPC-only clusters plus 2.6% mixed, with classic declining.
	VPCClusterShare float64
	// RegisteredDNSShare is the fraction of web services with a public
	// DNS record, used by the DNS-interrogation baseline comparison.
	RegisteredDNSShare float64
	// SharedServices is how many cross-cloud services this cloud
	// hosts; the same profiles (by shared index) appear on any other
	// cloud configured with SharedServices, reproducing the paper's
	// 980 clusters observed on both EC2 and Azure.
	SharedServices int
}

// Config fully specifies one simulated cloud.
type Config struct {
	Name       string // "ec2" or "azure"; used in labels and DNS names
	Kind       websim.CloudKind
	Days       int   // campaign length in days (93 EC2, 62 Azure)
	Seed       int64 // master seed; all randomness derives from it
	BaseOctet  byte  // first octet of the simulated address space
	Regions    []RegionConfig
	Population PopulationConfig
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("cloudsim: Days must be positive, have %d", c.Days)
	}
	if len(c.Regions) == 0 {
		return fmt.Errorf("cloudsim: no regions configured")
	}
	for _, r := range c.Regions {
		if r.Prefixes22 <= 0 {
			return fmt.Errorf("cloudsim: region %s has %d prefixes", r.Name, r.Prefixes22)
		}
		if r.VPC22 < 0 || r.VPC22 > r.Prefixes22 {
			return fmt.Errorf("cloudsim: region %s has VPC22=%d of %d", r.Name, r.VPC22, r.Prefixes22)
		}
	}
	p := c.Population
	if p.TargetResponsive <= 0 || p.TargetResponsive >= 1 {
		return fmt.Errorf("cloudsim: TargetResponsive %v outside (0,1)", p.TargetResponsive)
	}
	portSum := p.SSHOnly + p.HTTPOnly + p.HTTPSOnly + p.HTTPBoth
	if portSum < 0.99 || portSum > 1.01 {
		return fmt.Errorf("cloudsim: port mix sums to %v, want 1", portSum)
	}
	if p.WebClusters <= 0 {
		return fmt.Errorf("cloudsim: WebClusters must be positive")
	}
	return nil
}

// DefaultEC2Config returns an EC2-like cloud at 1/scaleDiv of the real
// September-2013 EC2 (4,702,208 IPs across 8 regions). scaleDiv=64
// yields 73,728 probed IPs, which a full 51-round campaign scans in
// seconds over the in-memory network. Region proportions and VPC
// shares follow Table 2.
func DefaultEC2Config(scaleDiv int, seed int64) Config {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	// Real region sizes in /22 blocks, derived from Table 2
	// (total = VPC prefixes / VPC share).
	type row struct {
		name       string
		total, vpc int
	}
	rows := []row{
		{"us-east-1", 2044, 280},
		{"us-west-2", 703, 256},
		{"eu-west-1", 596, 124},
		{"ap-northeast-1", 306, 98},
		{"ap-southeast-1", 242, 82},
		{"us-west-1", 320, 72},
		{"ap-southeast-2", 192, 64},
		{"sa-east-1", 176, 56},
	}
	var regions []RegionConfig
	for _, r := range rows {
		total := r.total / scaleDiv
		if total < 2 {
			total = 2
		}
		vpc := int(float64(total)*float64(r.vpc)/float64(r.total) + 0.5)
		if vpc < 1 {
			vpc = 1
		}
		if vpc >= total {
			vpc = total - 1
		}
		regions = append(regions, RegionConfig{Name: r.name, Prefixes22: total, VPC22: vpc})
	}
	total22 := 0
	for _, r := range regions {
		total22 += r.Prefixes22
	}
	totalIPs := total22 * 1024
	responsive := int(float64(totalIPs) * 0.237)
	// Web-open responsive IPs ≈ 74.1%; cluster count chosen so the
	// cluster-size mix covers them (mean non-giant cluster ≈ 2.1 IPs).
	giants := []GiantConfig{
		{MeanSize: 33145 / scaleDiv, SizeJitter: 0.03, DailyChurn: 0.004, Regions: 2, VPCShare: 0.0, Category: websim.CategoryPaaS},
		{MeanSize: 5597 / scaleDiv, SizeJitter: 0.02, DailyChurn: 0.02, Regions: 8, VPCShare: 0.24, Category: websim.CategoryCloudHosting},
		{MeanSize: 2029 / scaleDiv, SizeJitter: 0.06, DailyChurn: 0.012, Regions: 8, VPCShare: 0.66, Category: websim.CategoryVPN},
		{MeanSize: 1167 / scaleDiv, SizeJitter: 0.45, DailyChurn: 0.28, Regions: 6, VPCShare: 0.004, Category: websim.CategorySaaS},
		{MeanSize: 617 / scaleDiv, SizeJitter: 0.6, DailyChurn: 0.28, Regions: 1, VPCShare: 0, Category: websim.CategoryGame},
		{MeanSize: 529 / scaleDiv, SizeJitter: 0.25, DailyChurn: 0.07, Regions: 1, VPCShare: 0, Category: websim.CategoryShopping},
		{MeanSize: 370 / scaleDiv, SizeJitter: 0.35, DailyChurn: 0.25, Regions: 1, VPCShare: 0, Category: websim.CategoryPaaS},
		{MeanSize: 366 / scaleDiv, SizeJitter: 0.06, DailyChurn: 0.06, Regions: 2, VPCShare: 1.0, Category: websim.CategoryVideo},
		{MeanSize: 281 / scaleDiv, SizeJitter: 0.02, DailyChurn: 0.006, Regions: 1, VPCShare: 0, Category: websim.CategoryMarketing},
		{MeanSize: 255 / scaleDiv, SizeJitter: 0.3, DailyChurn: 0.22, Regions: 5, VPCShare: 0, Category: websim.CategoryCloudHosting},
	}
	var keptGiants []GiantConfig
	for _, g := range giants {
		if g.MeanSize >= 4 {
			keptGiants = append(keptGiants, g)
		}
	}
	giantIPs := 0
	for _, g := range keptGiants {
		giantIPs += g.MeanSize
	}
	webIPs := int(float64(responsive) * 0.741)
	webClusters := (webIPs - giantIPs) * 10 / 21 // mean non-giant size ≈ 2.1
	return Config{
		Name:      "ec2",
		Kind:      websim.EC2Like,
		Days:      93,
		Seed:      seed,
		BaseOctet: 54,
		Regions:   regions,
		Population: PopulationConfig{
			TargetResponsive:     0.237,
			Growth:               0.033,
			SSHOnly:              0.259,
			HTTPOnly:             0.380,
			HTTPSOnly:            0.055,
			HTTPBoth:             0.306,
			HTTPFailRate:         0.006,
			DailyBackgroundChurn: 0.05,
			SingletonFrac:        0.788,
			SmallFrac:            0.208,
			MediumFrac:           0.0028,
			EphemeralFrac:        0.114,
			WebClusters:          webClusters,
			Giants:               keptGiants,
			// Paper dips: Oct 4, Nov 8, Nov 30, Dec 14, Dec 28 with the
			// campaign starting Sep 30 -> day offsets 4, 39, 61, 75, 89.
			DipDays:     []int{4, 39, 61, 75, 89},
			DipClusters: scaleClusters(1945, scaleDiv), // avg of 3198,2767,1449,983,1327
			Malicious: MaliciousConfig{
				SBServices:   51,
				VTType1:      34,
				VTType2:      42,
				VTType3:      22,
				Linchpins:    5,
				LinchpinURLs: 128,
			},
			VPCClusterShare:    0.27,
			RegisteredDNSShare: 0.55,
			SharedServices:     scaleClusters(980, scaleDiv),
		},
	}
}

// DefaultAzureConfig returns an Azure-like cloud at 1/scaleDiv of the
// real October-2013 Azure (495,872 IPs). scaleDiv=16 yields 30,720
// probed IPs. Azure has no VPC distinction and offered only on-demand
// instances.
func DefaultAzureConfig(scaleDiv int, seed int64) Config {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	type row struct {
		name  string
		total int
	}
	rows := []row{
		{"us-east", 140},
		{"us-west", 96},
		{"eu-north", 76},
		{"eu-west", 68},
		{"asia-east", 56},
		{"asia-southeast", 48},
	}
	var regions []RegionConfig
	for _, r := range rows {
		total := r.total / scaleDiv
		if total < 1 {
			total = 1
		}
		regions = append(regions, RegionConfig{Name: r.name, Prefixes22: total})
	}
	total22 := 0
	for _, r := range regions {
		total22 += r.Prefixes22
	}
	totalIPs := total22 * 1024
	responsive := int(float64(totalIPs) * 0.239)
	webIPs := int(float64(responsive) * 0.907) // Table 3 Azure: 45.8+16.5+28.4
	webClusters := webIPs * 10 / 16            // Azure skews even smaller: mean ≈ 1.6
	return Config{
		Name:      "azure",
		Kind:      websim.AzureLike,
		Days:      62,
		Seed:      seed,
		BaseOctet: 137,
		Regions:   regions,
		Population: PopulationConfig{
			TargetResponsive:     0.239,
			Growth:               0.073,
			SSHOnly:              0.093,
			HTTPOnly:             0.458,
			HTTPSOnly:            0.165,
			HTTPBoth:             0.284,
			HTTPFailRate:         0.007,
			DailyBackgroundChurn: 0.045,
			SingletonFrac:        0.862,
			SmallFrac:            0.136,
			MediumFrac:           0.001,
			EphemeralFrac:        0.131,
			WebClusters:          webClusters,
			Giants: []GiantConfig{
				{MeanSize: 220 / scaleDiv, SizeJitter: 0.05, DailyChurn: 0.02, Regions: 2, Category: websim.CategorySaaS},
				{MeanSize: 150 / scaleDiv, SizeJitter: 0.1, DailyChurn: 0.05, Regions: 1, Category: websim.CategoryGame},
			},
			// Azure dips: Nov 29, Dec 7 with campaign start Oct 31 ->
			// day offsets 29 and 37. The paper lost ~1.4% of per-round
			// clusters per dip (372 of 27k).
			DipDays:     []int{29, 37},
			DipClusters: scaleClusters(372, scaleDiv),
			Malicious: MaliciousConfig{
				SBServices: 11, // 13 IPs in 11 clusters; no VT-flagged IPs
			},
			RegisteredDNSShare: 0.6,
			SharedServices:     scaleClusters(980, scaleDiv),
		},
	}
}

func scaleClusters(n, scaleDiv int) int {
	v := n / scaleDiv
	if v < 1 {
		v = 1
	}
	return v
}
