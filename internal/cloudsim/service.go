package cloudsim

import (
	"math"
	"math/rand"

	"whowas/internal/websim"
)

// PortProfile describes which of the three probed ports (§4: 80/tcp,
// 443/tcp, 22/tcp) an instance answers on.
type PortProfile int

// Port profiles per Table 3's breakdown of responsive IPs.
const (
	SSHOnly   PortProfile = iota // 22 only: live instance, no public web
	HTTPOnly                     // 80 only
	HTTPSOnly                    // 443 only
	HTTPBoth                     // 80 and 443
)

// OpensPort reports whether the profile answers on the given port.
func (p PortProfile) OpensPort(port int) bool {
	switch port {
	case 22:
		// Web instances typically also run SSH for administration.
		return true
	case 80:
		return p == HTTPOnly || p == HTTPBoth
	case 443:
		return p == HTTPSOnly || p == HTTPBoth
	}
	return false
}

// Web reports whether the profile serves HTTP(S) at all.
func (p PortProfile) Web() bool { return p != SSHOnly }

// MaliciousBehavior captures the §8.2 taxonomy of how malicious
// content evolves on a service's IPs over time.
type MaliciousBehavior struct {
	Kind websim.MaliciousKind
	// Type is the paper's behaviour type: 1 = same malicious page the
	// whole active window, 2 = the page flickers (removed after
	// detection, returns days later), 3 = multiple different malicious
	// pages over time. 0 = not malicious.
	Type int
	// ActiveFrom/ActiveTo bound the malicious window in campaign days
	// (half-open interval).
	ActiveFrom, ActiveTo int
	// FlickerPeriod is the on/off cycle length in days for type 2.
	FlickerPeriod int
	// RotateEvery is how often (days) a type-3 service swaps URL sets.
	RotateEvery int
	// URLSets holds the malicious URL groups; types 1 and 2 use only
	// URLSets[0], type 3 cycles through all of them.
	URLSets [][]string
}

// ActiveOn reports whether malicious URLs are present on the page on
// the given day, and which URL set.
func (m *MaliciousBehavior) ActiveOn(day int) (urls []string, active bool) {
	urls, _, active = m.ActiveSet(day)
	return urls, active
}

// ActiveSet is ActiveOn plus the index of the URL set in effect, which
// type-3 services use to render a genuinely different page per set.
func (m *MaliciousBehavior) ActiveSet(day int) (urls []string, setIdx int, active bool) {
	if m.Type == 0 || day < m.ActiveFrom || day >= m.ActiveTo || len(m.URLSets) == 0 {
		return nil, 0, false
	}
	switch m.Type {
	case 2:
		period := m.FlickerPeriod
		if period < 2 {
			period = 2
		}
		// On for the first ceil(period/2) days of each cycle.
		if (day-m.ActiveFrom)%period >= (period+1)/2 {
			return nil, 0, false
		}
		return m.URLSets[0], 0, true
	case 3:
		rot := m.RotateEvery
		if rot < 1 {
			rot = 1
		}
		idx := ((day - m.ActiveFrom) / rot) % len(m.URLSets)
		return m.URLSets[idx], idx, true
	default:
		return m.URLSets[0], 0, true
	}
}

// AllURLs returns every malicious URL the behaviour ever serves.
func (m *MaliciousBehavior) AllURLs() []string {
	var out []string
	seen := map[string]bool{}
	for _, set := range m.URLSets {
		for _, u := range set {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// Service is one tenant deployment: a set of IPs serving the same
// content (the ground truth behind a WhoWas cluster), or a non-web
// instance group (SSH-only background deployments).
type Service struct {
	ID      uint64
	Profile websim.Profile
	Ports   PortProfile
	// Regions the deployment draws IPs from (uniformly).
	Regions []string
	// VPCShare is the fraction of the deployment's IPs drawn from VPC
	// prefixes (EC2 only; 0 for classic-only, 1 for VPC-only).
	VPCShare float64
	// StartDay/EndDay bound the deployment's lifetime (half-open).
	StartDay, EndDay int
	// sizeByDay[d] is the target number of IPs on absolute day d; zero
	// outside the lifetime.
	sizeByDay []int
	// DailyChurn is the fraction of assigned IPs replaced each day.
	DailyChurn float64
	// DownPeriod/DownLen inject whole-service unavailability windows:
	// every DownPeriod days the service is down for DownLen days
	// (0 = never down). Drives cluster-availability churn (Figure 10).
	DownPeriod, DownLen int
	// RevisionEvery is the cadence (days) of content updates; 0 = never.
	RevisionEvery int
	// Malicious describes malicious content on this service, if any.
	Malicious MaliciousBehavior
	// HasDNS marks services visible to DNS interrogation (baseline).
	HasDNS bool
	// MigrateDay, when > 0, relaunches the deployment on that day with
	// MigrateVPCShare as its new networking mix (classic<->VPC
	// migrations, §8.1). 0 = never.
	MigrateDay      int
	MigrateVPCShare float64
	// Pattern is the intended size-change pattern label (ground truth
	// for Table 11 validation).
	Pattern string
	// Ephemeral marks services designed to appear only briefly.
	Ephemeral bool
}

// SizeOn returns the deployment's target IP count on day d.
func (s *Service) SizeOn(d int) int {
	if d < 0 || d >= len(s.sizeByDay) || d < s.StartDay || d >= s.EndDay {
		return 0
	}
	return s.sizeByDay[d]
}

// DownOn reports whether the whole service is unavailable on day d
// (instances up, HTTP serving suspended — maintenance windows).
func (s *Service) DownOn(d int) bool {
	if s.DownPeriod <= 0 || s.DownLen <= 0 {
		return false
	}
	phase := (d + int(s.ID%uint64(s.DownPeriod))) % s.DownPeriod
	return phase < s.DownLen
}

// RevisionOn returns the content revision in effect on day d.
func (s *Service) RevisionOn(d int) int {
	rev := 0
	if s.RevisionEvery > 0 {
		rev = d / s.RevisionEvery
	}
	if s.Malicious.Type == 3 && s.Malicious.RotateEvery > 0 && d >= s.Malicious.ActiveFrom {
		// Page rotation changes content beyond the URL swap.
		rev = rev*97 + (d-s.Malicious.ActiveFrom)/s.Malicious.RotateEvery
	}
	return rev
}

// PageOn materializes the profile to serve on day d, folding in the
// malicious URL set active that day. The bool reports whether the
// service serves web content at all.
func (s *Service) PageOn(d int) (websim.Profile, bool) {
	if !s.Ports.Web() {
		return websim.Profile{}, false
	}
	p := s.Profile
	if urls, setIdx, active := s.Malicious.ActiveSet(d); active {
		p.Malicious = s.Malicious.Kind
		p.MaliciousURLs = urls
		if s.Malicious.Type == 3 && setIdx > 0 {
			// A type-3 service hosts *multiple different malicious
			// webpages* (§8.2): each URL set is a distinct page, not a
			// revision, so shift the body-content identity.
			p.ID += uint64(setIdx) << 40
		}
	} else {
		p.Malicious = websim.NotMalicious
		p.MaliciousURLs = nil
	}
	return p, true
}

// sizeSchedule builds a per-day target-size vector exhibiting the
// requested pattern over a campaign of days length.
//
// Patterns correspond to Table 11's merged tendency vectors: "0"
// (stable), "0,1,0" (step up), "0,-1,0" (step down), "0,1,0,-1,0"
// (bump), "0,-1,1,0" (dip and recover). Any other label yields a
// noisy random walk ("other" patterns).
func sizeSchedule(rng *rand.Rand, pattern string, base, days int, jitter float64) []int {
	if base < 1 {
		base = 1
	}
	out := make([]int, days)
	level := func(d int) float64 {
		t := float64(d) / float64(days)
		switch pattern {
		case "0":
			return 1
		case "0,1,0":
			if t > 0.45 {
				return 1.8
			}
			return 1
		case "0,-1,0":
			if t > 0.45 {
				return 0.45
			}
			return 1
		case "0,1,0,-1,0":
			if t > 0.3 && t < 0.7 {
				return 1.9
			}
			return 1
		case "0,-1,1,0":
			if t > 0.35 && t < 0.6 {
				return 0.4
			}
			return 1
		default:
			// Random-walk "other" pattern: several level shifts.
			return 0.6 + 1.2*math.Abs(math.Sin(float64(d)*0.23+float64(base)))
		}
	}
	for d := 0; d < days; d++ {
		v := float64(base) * level(d)
		if jitter > 0 {
			v *= 1 + (rng.Float64()*2-1)*jitter
		}
		n := int(v + 0.5)
		if n < 1 {
			n = 1
		}
		out[d] = n
	}
	return out
}
