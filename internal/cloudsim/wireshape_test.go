package cloudsim

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestRegionConfigJSONWireShape pins the region-catalogue wire shape
// served through cloudapi: snake_case keys, not Go identifiers.
func TestRegionConfigJSONWireShape(t *testing.T) {
	buf, err := json.Marshal(RegionConfig{Name: "us-east-1", Prefixes22: 4, VPC22: 1})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"name", "prefixes_22", "vpc_22"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RegionConfig wire keys = %v, want %v", got, want)
	}
}
