package cloudsim

import (
	"math/rand"
	"sort"

	"whowas/internal/websim"
)

// patternMix reproduces Table 11's size-change pattern distribution.
// For single-IP clusters the pattern is realized through presence
// windows (a late start reads as "0,1,0", a mid-campaign departure as
// "0,-1,0"); multi-IP clusters additionally scale their size.
var patternMix = []struct {
	pattern string
	weight  int
}{
	{"0", 385},         // stable for the whole campaign (ephemerals add to "0" separately)
	{"0,1,0", 150},     // appears / grows mid-campaign
	{"0,-1,0", 137},    // departs / shrinks mid-campaign
	{"0,1,0,-1,0", 52}, // bump
	{"0,-1,1,0", 41},   // dip then recovery
	{"other", 121},     // irregular
}

// drawPattern picks a pattern label per the Table 11 mix.
func drawPattern(rng *rand.Rand) string {
	total := 0
	for _, p := range patternMix {
		total += p.weight
	}
	n := rng.Intn(total)
	for _, p := range patternMix {
		n -= p.weight
		if n < 0 {
			return p.pattern
		}
	}
	return "0"
}

// lifetimeFor translates a pattern into a presence window for the
// cluster. Multi-IP clusters keep a full window for most patterns and
// express the pattern through size; single-IP clusters express it
// through the window itself.
func lifetimeFor(rng *rand.Rand, pattern string, days, size int) (start, end int) {
	mid := days / 2
	switch pattern {
	case "0,1,0":
		if size == 1 {
			start = mid/2 + rng.Intn(mid) // appears somewhere in the middle
			return start, days
		}
		return 0, days
	case "0,-1,0":
		if size == 1 {
			end = mid/2 + rng.Intn(mid)
			return 0, end + mid/2
		}
		return 0, days
	case "0,1,0,-1,0":
		if size == 1 {
			start = days/5 + rng.Intn(days/5)
			end = start + days/4 + rng.Intn(days/4)
			if end > days {
				end = days
			}
			return start, end
		}
		return 0, days
	default:
		return 0, days
	}
}

// webPortProfile draws a web port profile with Table 3's relative mix
// among web-open IPs.
func webPortProfile(rng *rand.Rand, p *PopulationConfig) PortProfile {
	webTotal := p.HTTPOnly + p.HTTPSOnly + p.HTTPBoth
	r := rng.Float64() * webTotal
	switch {
	case r < p.HTTPOnly:
		return HTTPOnly
	case r < p.HTTPOnly+p.HTTPSOnly:
		return HTTPSOnly
	default:
		return HTTPBoth
	}
}

// categories for ordinary (non-giant) services, weighted towards the
// long tail the paper describes.
var ordinaryCategories = []struct {
	cat    websim.Category
	weight int
}{
	{websim.CategoryBlog, 24},
	{websim.CategoryCorporate, 22},
	{websim.CategoryShopping, 12},
	{websim.CategorySaaS, 12},
	{websim.CategoryDev, 12},
	{websim.CategoryMarketing, 6},
	{websim.CategoryGame, 5},
	{websim.CategoryVideo, 4},
	{websim.CategoryCloudHosting, 3},
}

func drawCategory(rng *rand.Rand) websim.Category {
	total := 0
	for _, c := range ordinaryCategories {
		total += c.weight
	}
	n := rng.Intn(total)
	for _, c := range ordinaryCategories {
		n -= c.weight
		if n < 0 {
			return c.cat
		}
	}
	return websim.CategoryCorporate
}

// populationBuilder accumulates the generated services.
type populationBuilder struct {
	cfg    *Config
	rng    *rand.Rand
	nextID uint64
	out    []*Service
}

func (b *populationBuilder) id() uint64 {
	b.nextID++
	return b.nextID
}

// newService constructs a service with a fresh profile.
func (b *populationBuilder) newService(cat websim.Category, ports PortProfile) *Service {
	id := b.id()
	svc := &Service{
		ID:     id,
		Ports:  ports,
		HasDNS: b.rng.Float64() < b.cfg.Population.RegisteredDNSShare,
	}
	if ports.Web() {
		svc.Profile = websim.GenProfile(b.rng, id, b.cfg.Kind, cat)
	}
	return svc
}

// pickRegions selects n distinct regions, weighted by size.
func (b *populationBuilder) pickRegions(n int) []string {
	regions := b.cfg.Regions
	if n >= len(regions) {
		out := make([]string, len(regions))
		for i, r := range regions {
			out[i] = r.Name
		}
		return out
	}
	// Weight by prefix count so us-east-1 dominates, as in EC2.
	chosen := map[string]bool{}
	var out []string
	for len(out) < n {
		total := 0
		for _, r := range regions {
			if !chosen[r.Name] {
				total += r.Prefixes22
			}
		}
		k := b.rng.Intn(total)
		for _, r := range regions {
			if chosen[r.Name] {
				continue
			}
			k -= r.Prefixes22
			if k < 0 {
				chosen[r.Name] = true
				out = append(out, r.Name)
				break
			}
		}
	}
	return out
}

// vpcShareFor draws a deployment's VPC usage: classic-only, VPC-only,
// or mixed. Late-starting deployments skew VPC (Figure 14's adoption
// trend; Amazon required VPC for accounts created after Dec 2013).
func (b *populationBuilder) vpcShareFor(startDay int) float64 {
	base := b.cfg.Population.VPCClusterShare
	if base <= 0 {
		return 0
	}
	// Adoption shifts ~20 points over the campaign for new arrivals
	// (Amazon required VPC for accounts created after Dec 2013).
	pVPC := base + 0.20*float64(startDay)/float64(b.cfg.Days)
	r := b.rng.Float64()
	switch {
	case r < pVPC:
		return 1 // VPC-only
	case r < pVPC+0.026:
		return 0.3 + b.rng.Float64()*0.4 // mixed
	default:
		return 0 // classic-only
	}
}

// buildGiants instantiates Table 15-scale deployments.
func (b *populationBuilder) buildGiants() {
	for _, g := range b.cfg.Population.Giants {
		svc := b.newService(g.Category, HTTPBoth)
		// Giants serve real content.
		svc.Profile.StatusCode = 200
		svc.Profile.ContentType = "text/html"
		svc.Profile.DefaultPage = false
		svc.Profile.MultiVhost = false
		svc.Regions = b.pickRegions(g.Regions)
		svc.VPCShare = g.VPCShare
		svc.StartDay, svc.EndDay = 0, b.cfg.Days
		svc.DailyChurn = g.DailyChurn
		svc.RevisionEvery = 7 + b.rng.Intn(21)
		svc.Pattern = "0"
		svc.sizeByDay = sizeSchedule(b.rng, "0", g.MeanSize, b.cfg.Days, g.SizeJitter)
		svc.HasDNS = true
		b.out = append(b.out, svc)
	}
}

// buildWebClusters generates the general web-service population until
// the average concurrent web-IP budget is met.
func (b *populationBuilder) buildWebClusters(webIPBudget float64) {
	p := &b.cfg.Population
	var sumConcurrent float64
	// Subtract what the giants already consume.
	for _, g := range p.Giants {
		sumConcurrent += float64(g.MeanSize)
	}
	days := b.cfg.Days
	for sumConcurrent < webIPBudget {
		// Size band per §8.1's cluster-size mix.
		r := b.rng.Float64()
		var size int
		switch {
		case r < p.SingletonFrac:
			size = 1
		case r < p.SingletonFrac+p.SmallFrac:
			// 2–20, skewed small (P(k) ~ 1/k^1.7).
			size = smallSize(b.rng)
		case r < p.SingletonFrac+p.SmallFrac+p.MediumFrac:
			size = 21 + b.rng.Intn(30)
		default:
			size = 51 + b.rng.Intn(100)
		}
		pattern := drawPattern(b.rng)
		ephemeral := b.rng.Float64() < p.EphemeralFrac
		svc := b.newService(drawCategory(b.rng), webPortProfile(b.rng, p))
		svc.Pattern = pattern
		if ephemeral {
			// Ephemerals: tiny, very brief (1-3 days: in-development
			// pages, tests — §8.1 found 92.8%% using one IP), pattern
			// effectively "0" since the PAA medians never leave zero.
			svc.Pattern = "0"
			svc.Ephemeral = true
			if size > 3 {
				size = 1 + b.rng.Intn(3)
			}
			svc.StartDay = b.rng.Intn(days - 1)
			svc.EndDay = svc.StartDay + 1 + b.rng.Intn(3)
			if svc.EndDay > days {
				svc.EndDay = days
			}
		} else {
			svc.StartDay, svc.EndDay = lifetimeFor(b.rng, pattern, days, size)
		}
		svc.Regions = b.pickRegions(b.regionCountFor(size))
		svc.VPCShare = b.vpcShareFor(svc.StartDay)
		svc.DailyChurn = b.churnFor(size)
		svc.RevisionEvery = b.revisionFor()
		// A small share of deployments migrates networking types
		// mid-campaign (§8.1: ~0.4% classic->VPC, ~0.2% the reverse).
		if b.cfg.Population.VPCClusterShare > 0 && !ephemeral && svc.EndDay == days {
			switch r := b.rng.Float64(); {
			case svc.VPCShare == 0 && r < 0.006:
				svc.MigrateDay = days/4 + b.rng.Intn(days/2)
				svc.MigrateVPCShare = 1
			case svc.VPCShare == 1 && r < 0.003:
				svc.MigrateDay = days/4 + b.rng.Intn(days/2)
				svc.MigrateVPCShare = 0
			}
		}
		if svc.Pattern == "0,-1,1,0" {
			// Dip-and-recover: a mid-campaign unavailability window.
			svc.DownPeriod = days
			svc.DownLen = 8 + b.rng.Intn(8)
		}
		// Single-IP clusters express their pattern through the presence
		// window alone; scaling a size-1 schedule would silently turn
		// them into 2-IP clusters.
		schedPattern := svc.Pattern
		if size == 1 {
			schedPattern = "0"
		}
		svc.sizeByDay = sizeSchedule(b.rng, schedPattern, size, days, b.jitterFor(size))
		b.out = append(b.out, svc)

		// Account the service's true average concurrent IP usage.
		sum := 0
		for d := svc.StartDay; d < svc.EndDay; d++ {
			sum += svc.SizeOn(d)
		}
		sumConcurrent += float64(sum) / float64(days)
	}
}

// smallSize draws a 2–20 cluster size with a heavy small-end skew.
func smallSize(rng *rand.Rand) int {
	for {
		k := 2 + int(18*rng.Float64()*rng.Float64()*rng.Float64())
		if k >= 2 && k <= 20 {
			return k
		}
	}
}

// regionCountFor: most clusters use a single region (97% in §8.1);
// larger ones sometimes more.
func (b *populationBuilder) regionCountFor(size int) int {
	if size >= 21 && b.rng.Float64() < 0.215 {
		return 2 + b.rng.Intn(2)
	}
	if b.rng.Float64() < 0.03 {
		return 2
	}
	return 1
}

// churnFor assigns intra-cluster IP turnover. §8.1: 75.3% of clusters
// have 100% average IP uptime (mostly singletons); larger clusters
// churn more (size >= 50 averages 62% IP uptime).
func (b *populationBuilder) churnFor(size int) float64 {
	switch {
	case size == 1:
		if b.rng.Float64() < 0.10 {
			return 0.01 // a tenth of singletons restart occasionally
		}
		return 0
	case size <= 20:
		if b.rng.Float64() < 0.5 {
			return 0
		}
		return 0.002 + b.rng.Float64()*0.02
	case size <= 50:
		return 0.005 + b.rng.Float64()*0.03
	default:
		return 0.01 + b.rng.Float64()*0.05
	}
}

// jitterFor sets day-to-day size noise. Small clusters hold steady
// (their size-change patterns come from lifecycle, not noise); only
// larger deployments fluctuate with load.
func (b *populationBuilder) jitterFor(size int) float64 {
	switch {
	case size <= 20:
		return 0
	case size <= 50:
		return 0.05
	default:
		return 0.1
	}
}

// revisionFor assigns a content-update cadence: most sites rarely
// change, some update often.
func (b *populationBuilder) revisionFor() int {
	r := b.rng.Float64()
	switch {
	case r < 0.5:
		return 0 // never during the campaign
	case r < 0.8:
		return 30 + b.rng.Intn(40)
	case r < 0.95:
		return 7 + b.rng.Intn(21)
	default:
		return 1 + b.rng.Intn(5)
	}
}

// buildDepartures makes DipClusters services end permanently on each
// configured dip day (the Friday/Saturday departures of Figure 8).
func (b *populationBuilder) buildDepartures() {
	p := &b.cfg.Population
	if len(p.DipDays) == 0 || p.DipClusters <= 0 {
		return
	}
	// Choose victims among ordinary full-lifetime clusters, skewed
	// toward classic-only deployments: the departures accelerate the
	// classic decline of Figure 14.
	var classic, other []*Service
	for _, s := range b.out {
		if !s.Ephemeral && s.EndDay == b.cfg.Days && s.MigrateDay == 0 &&
			s.SizeOn(0) >= 1 && s.SizeOn(0) <= 20 && len(s.sizeByDay) > 0 {
			if s.VPCShare == 0 {
				classic = append(classic, s)
			} else {
				other = append(other, s)
			}
		}
	}
	b.rng.Shuffle(len(classic), func(i, j int) { classic[i], classic[j] = classic[j], classic[i] })
	b.rng.Shuffle(len(other), func(i, j int) { other[i], other[j] = other[j], other[i] })
	candidates := append(classic, other...)
	idx := 0
	for _, day := range p.DipDays {
		for n := 0; n < p.DipClusters && idx < len(candidates); n++ {
			svc := candidates[idx]
			idx++
			svc.EndDay = day
			svc.Pattern = "0,-1,0"
		}
	}
}

// buildMalicious tags services with malicious behaviour per §8.2.
func (b *populationBuilder) buildMalicious() {
	m := b.cfg.Population.Malicious
	days := b.cfg.Days
	// Region weights for malicious placement follow Table 17.
	regionWeights := map[string]int{
		"us-east-1": 1422, "eu-west-1": 200, "us-west-2": 192,
		"us-west-1": 91, "sa-east-1": 57, "ap-southeast-1": 51,
		"ap-northeast-1": 35, "ap-southeast-2": 22,
	}
	pickMaliciousRegion := func() []string {
		if b.cfg.Kind != websim.EC2Like {
			return b.pickRegions(1)
		}
		total := 0
		for _, r := range b.cfg.Regions {
			total += regionWeights[r.Name]
		}
		if total == 0 {
			return b.pickRegions(1)
		}
		k := b.rng.Intn(total)
		for _, r := range b.cfg.Regions {
			k -= regionWeights[r.Name]
			if k < 0 {
				return []string{r.Name}
			}
		}
		return b.pickRegions(1)
	}

	genURLs := func(kind websim.MaliciousKind, n int) []string {
		p := websim.Profile{}
		websim.MarkMalicious(b.rng, &p, kind, n)
		return p.MaliciousURLs
	}

	addMalicious := func(kind websim.MaliciousKind, mtype, urlCount int) *Service {
		svc := b.newService(websim.CategoryDev, HTTPOnly)
		// Malicious pages must actually render links.
		svc.Profile.StatusCode = 200
		svc.Profile.ContentType = "text/html"
		svc.Profile.DefaultPage = false
		svc.Profile.MultiVhost = false
		svc.Regions = pickMaliciousRegion()
		svc.VPCShare = 0
		if b.cfg.Kind == websim.EC2Like && b.rng.Float64() < 0.24 { // 47 of 196 SB IPs were VPC
			svc.VPCShare = 1
		}
		size := 1
		if b.rng.Float64() < 0.3 {
			size = 2 + b.rng.Intn(4)
		}
		// Malicious activity grows over the campaign (Table 17):
		// windows open across the whole period with a late skew.
		svc.StartDay = b.rng.Intn(days * 4 / 5)
		if b.rng.Float64() < 0.35 {
			svc.StartDay = days/2 + b.rng.Intn(days*2/5)
		}
		svc.EndDay = days
		svc.sizeByDay = sizeSchedule(b.rng, "0", size, days, 0)
		svc.Pattern = "0"
		// Malicious window: lifetimes skew long (Figure 16: 62% of EC2
		// malicious IPs stay malicious >7 days, 46% >14 days).
		winLen := maliciousWindow(b.rng, days-svc.StartDay)
		mb := MaliciousBehavior{
			Kind:       kind,
			Type:       mtype,
			ActiveFrom: svc.StartDay,
			ActiveTo:   svc.StartDay + winLen,
		}
		switch mtype {
		case 2:
			mb.FlickerPeriod = 6 + b.rng.Intn(10)
			mb.URLSets = [][]string{genURLs(kind, urlCount)}
		case 3:
			mb.RotateEvery = 5 + b.rng.Intn(10)
			sets := 2 + b.rng.Intn(3)
			for i := 0; i < sets; i++ {
				mb.URLSets = append(mb.URLSets, genURLs(kind, urlCount))
			}
		default:
			mb.URLSets = [][]string{genURLs(kind, urlCount)}
		}
		svc.Malicious = mb
		b.out = append(b.out, svc)
		return svc
	}

	// Safe-Browsing-visible services: mostly malware links, some phishing.
	for i := 0; i < m.SBServices; i++ {
		kind := websim.Malware
		if b.rng.Float64() < 0.18 { // 9 of 51 EC2 SB clusters were phishing
			kind = websim.Phishing
		}
		addMalicious(kind, 1+b.rng.Intn(3), 1+b.rng.Intn(9))
	}
	// VirusTotal-flagged services by behaviour type.
	for i := 0; i < m.VTType1; i++ {
		addMalicious(websim.Malware, 1, 2+b.rng.Intn(8))
	}
	for i := 0; i < m.VTType2; i++ {
		addMalicious(websim.Malware, 2, 1+b.rng.Intn(6))
	}
	for i := 0; i < m.VTType3; i++ {
		addMalicious(websim.Malware, 3, 2+b.rng.Intn(6))
	}
	// Linchpin pages aggregating many malicious URLs (§8.2).
	for i := 0; i < m.Linchpins; i++ {
		svc := addMalicious(websim.Malware, 1, m.LinchpinURLs)
		svc.StartDay = 0
		svc.Malicious.ActiveFrom = 0
		svc.Malicious.ActiveTo = days
	}
}

// maliciousWindow draws how long malicious content stays up, matching
// Figure 16's long-tailed lifetime CDF.
func maliciousWindow(rng *rand.Rand, maxLen int) int {
	r := rng.Float64()
	var w int
	switch {
	case r < 0.25:
		w = 1 + rng.Intn(7) // short-lived
	case r < 0.55:
		w = 7 + rng.Intn(14)
	case r < 0.85:
		w = 14 + rng.Intn(30)
	default:
		w = 40 + rng.Intn(60) // very long; clipped below
	}
	if w > maxLen {
		w = maxLen
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sharedSeedBase seeds the cross-cloud shared-service profiles: both
// clouds derive the same profiles from it, so the same web application
// (same domain, title, GA ID, content) appears on EC2 and Azure —
// the paper found 980 such clusters.
const sharedSeedBase = 0x5ca1ab1e

// buildShared adds the cross-cloud service population. Profiles are
// generated from a cloud-independent seed per index, so any two
// default clouds share their first min(N, M) services.
func (b *populationBuilder) buildShared() {
	days := b.cfg.Days
	cats := []websim.Category{
		websim.CategorySaaS, websim.CategoryShopping, websim.CategoryVideo,
		websim.CategoryMarketing, websim.CategoryCorporate,
	}
	for i := 0; i < b.cfg.Population.SharedServices; i++ {
		shared := rand.New(rand.NewSource(sharedSeedBase + int64(i)))
		sharedID := uint64(1)<<40 + uint64(i)
		profile := websim.GenProfile(shared, sharedID, websim.EC2Like, cats[i%len(cats)])
		// Cross-cloud deployments serve real content on both clouds.
		profile.StatusCode = 200
		profile.ContentType = "text/html"
		profile.DefaultPage = false
		profile.MultiVhost = false
		size := 1 + shared.Intn(5)

		svc := b.newService(profile.Category, HTTPBoth)
		svc.Profile = profile // replace with the shared identity
		svc.Regions = b.pickRegions(1)
		svc.VPCShare = b.vpcShareFor(0)
		svc.StartDay, svc.EndDay = 0, days
		svc.Pattern = "0"
		svc.sizeByDay = sizeSchedule(b.rng, "0", size, days, 0)
		svc.HasDNS = true
		b.out = append(b.out, svc)
	}
}

// buildPopulation generates every service for the configured cloud.
// The background (non-web) deployments are handled separately by the
// day-stepper, which maintains their per-day population directly.
func buildPopulation(cfg *Config, rng *rand.Rand) []*Service {
	b := &populationBuilder{cfg: cfg, rng: rng}
	total := float64(cfg.regionIPTotal())
	responsive0 := total * cfg.Population.TargetResponsive
	webShare := cfg.Population.HTTPOnly + cfg.Population.HTTPSOnly + cfg.Population.HTTPBoth
	webIPBudget := responsive0 * webShare
	b.buildGiants()
	b.buildWebClusters(webIPBudget)
	b.buildShared()
	b.buildDepartures()
	b.buildMalicious()
	// Deterministic order for downstream seeding.
	sort.Slice(b.out, func(i, j int) bool { return b.out[i].ID < b.out[j].ID })
	return b.out
}

// regionIPTotal is the probed address-space size.
func (c *Config) regionIPTotal() int {
	total := 0
	for _, r := range c.Regions {
		total += r.Prefixes22 * 1024
	}
	return total
}
