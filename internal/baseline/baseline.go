// Package baseline implements the DNS-interrogation methodology of
// prior work (He et al., IMC 2013 — reference [2] of the paper), which
// WhoWas is contrasted against: instead of probing cloud address
// ranges directly, the baseline resolves a seed list of domains and
// counts the cloud IPs the answers land on.
//
// The comparison shows why the paper built WhoWas: DNS interrogation
// only sees deployments whose domains are (a) in the seed list and
// (b) resolvable, and it observes at most the answer-capped set of IPs
// per domain, while direct probing observes every publicly reachable
// deployment.
package baseline

import (
	"context"
	"fmt"

	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/ratelimit"
)

// Config tunes the baseline sweep.
type Config struct {
	// MaxAnswers caps IPs per DNS answer (authoritative servers
	// typically return a subset; default 8, mirroring common RR-set
	// limits).
	MaxAnswers int
	// SeedShare is the fraction of resolvable domains assumed to be in
	// the interrogator's seed list (prior work used Alexa top-million
	// subdomains; coverage of cloud tenants was partial). Default 1.0:
	// even with a perfect seed list the method undercounts.
	SeedShare float64
	// Rate caps DNS queries per second (default 500).
	Rate float64
	// Clock feeds the rate limiter (nil = wall clock).
	Clock ratelimit.Clock
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxAnswers <= 0 {
		out.MaxAnswers = 8
	}
	if out.SeedShare <= 0 || out.SeedShare > 1 {
		out.SeedShare = 1
	}
	if out.Rate <= 0 {
		out.Rate = 500
	}
	return out
}

// Result compares DNS-interrogation coverage against direct probing.
type Result struct {
	Domains     int // domains interrogated
	Resolved    int // domains that resolved to at least one cloud IP
	ObservedIPs int // distinct cloud IPs seen via DNS
	// DirectWebIPs is filled by the caller with the direct-probing
	// count for the same day, for the coverage ratio.
	DirectWebIPs int
}

// Coverage returns observed/direct (0 when direct unknown).
func (r *Result) Coverage() float64 {
	if r.DirectWebIPs == 0 {
		return 0
	}
	return float64(r.ObservedIPs) / float64(r.DirectWebIPs)
}

// Format renders the comparison.
func (r *Result) Format(cloud string) string {
	return fmt.Sprintf("DNS baseline (%s): %d domains, %d resolved, %d IPs observed vs %d via direct probing (coverage %.1f%%)",
		cloud, r.Domains, r.Resolved, r.ObservedIPs, r.DirectWebIPs, 100*r.Coverage())
}

// Sweep interrogates the resolvable domain universe on a given
// campaign day.
func Sweep(ctx context.Context, resolver *dnssim.Resolver, day int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	limiter, err := ratelimit.NewWithClock(cfg.Rate, 10, cfg.Clock)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	domains := resolver.Domains()
	// Truncate to the seed share: the interrogator only knows the
	// domains its seed list contains.
	n := int(float64(len(domains)) * cfg.SeedShare)
	domains = domains[:n]

	out := &Result{Domains: len(domains)}
	seen := map[ipaddr.Addr]bool{}
	for _, d := range domains {
		if err := limiter.Wait(ctx); err != nil {
			return nil, err
		}
		ips := resolver.LookupDomain(d, day, cfg.MaxAnswers)
		if len(ips) > 0 {
			out.Resolved++
		}
		for _, ip := range ips {
			seen[ip] = true
		}
	}
	out.ObservedIPs = len(seen)
	return out, nil
}
