package baseline

import (
	"context"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/ratelimit"
)

func testCloud(t testing.TB) *cloudsim.Cloud {
	t.Helper()
	c, err := cloudsim.New(cloudsim.DefaultEC2Config(512, 81))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSweepCoverageBelowDirect(t *testing.T) {
	cloud := testCloud(t)
	resolver := dnssim.NewResolver(cloud, 0)
	res, err := Sweep(context.Background(), resolver, 0,
		Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains == 0 || res.Resolved == 0 || res.ObservedIPs == 0 {
		t.Fatalf("empty sweep: %+v", res)
	}
	// Ground-truth direct web population on day 0.
	direct := 0
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		if cloud.StateAt(0, a).Web {
			direct++
		}
		return true
	})
	res.DirectWebIPs = direct
	cov := res.Coverage()
	// The paper's motivation: DNS interrogation sees strictly less
	// than direct probing (only registered domains, capped answers).
	if cov <= 0 || cov >= 1 {
		t.Errorf("coverage = %.2f, want in (0,1); observed=%d direct=%d", cov, res.ObservedIPs, direct)
	}
}

func TestSweepObservedIPsAreReal(t *testing.T) {
	cloud := testCloud(t)
	resolver := dnssim.NewResolver(cloud, 0)
	res, err := Sweep(context.Background(), resolver, 0,
		Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0)), MaxAnswers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObservedIPs == 0 {
		t.Fatal("no IPs observed")
	}
	_ = res
}

func TestSeedShareReducesCoverage(t *testing.T) {
	cloud := testCloud(t)
	full, err := Sweep(context.Background(), dnssim.NewResolver(cloud, 0), 0,
		Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Sweep(context.Background(), dnssim.NewResolver(cloud, 0), 0,
		Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0)), SeedShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if half.Domains >= full.Domains {
		t.Errorf("seed share did not reduce domains: %d vs %d", half.Domains, full.Domains)
	}
	if half.ObservedIPs >= full.ObservedIPs {
		t.Errorf("seed share did not reduce observed IPs: %d vs %d", half.ObservedIPs, full.ObservedIPs)
	}
}

func TestCoverageZeroWhenUnknownDirect(t *testing.T) {
	r := &Result{ObservedIPs: 10}
	if r.Coverage() != 0 {
		t.Error("coverage without direct count != 0")
	}
}

func TestSweepCancellation(t *testing.T) {
	cloud := testCloud(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, dnssim.NewResolver(cloud, 0), 0,
		Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0))})
	if err == nil {
		t.Error("cancelled sweep succeeded")
	}
}
