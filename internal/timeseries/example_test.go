package timeseries_test

import (
	"fmt"

	"whowas/internal/timeseries"
)

// Reduce a cluster's size series with PAA and Algorithm 1, exactly as
// Table 11 derives size-change patterns: a deployment that scales up
// mid-campaign and back down reads as the paper's "0,1,0,-1,0" bump.
func ExamplePattern() {
	var samples []timeseries.Sample
	for day := 0; day < 93; day++ {
		size := 2.0
		if day >= 30 && day < 60 {
			size = 10 // scaled up for a month
		}
		samples = append(samples, timeseries.Sample{Day: day, Value: size})
	}
	fmt.Println(timeseries.Pattern(samples, 93))
	// Output: 0,1,0,-1,0
}

// Algorithm 1 from the paper, on its own worked example.
func ExampleTendency() {
	d := []float64{1, 2, 3, 1, 1, 1}
	fmt.Println(timeseries.Tendency(d))
	fmt.Println(timeseries.MergeRuns(timeseries.Tendency(d)))
	// Output:
	// [1 1 -1 0 0]
	// [1 -1 0]
}
