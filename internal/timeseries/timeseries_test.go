package timeseries

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPAAEmpty(t *testing.T) {
	if got := PAA(nil, 0, 7); got != nil {
		t.Errorf("PAA with totalDays=0 = %v, want nil", got)
	}
	if got := PAA(nil, 93, 0); got != nil {
		t.Errorf("PAA with windowDays=0 = %v, want nil", got)
	}
	got := PAA(nil, 93, 7)
	if len(got) != 13 { // round(93/7), matching the paper's dimension-13 vector
		t.Fatalf("PAA frame count = %d, want 13", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Errorf("empty-sample frame %d = %v, want 0", i, v)
		}
	}
}

func TestPAAFrameCount(t *testing.T) {
	cases := []struct{ total, window, frames int }{
		{93, 7, 13}, // paper: EC2 campaign -> dimension 13
		{62, 7, 9},  // paper: Azure campaign -> dimension 9
		{7, 7, 1}, {8, 7, 1}, {11, 7, 2}, {1, 7, 1},
	}
	for _, c := range cases {
		if got := len(PAA(nil, c.total, c.window)); got != c.frames {
			t.Errorf("PAA(total=%d, window=%d) frames = %d, want %d", c.total, c.window, got, c.frames)
		}
	}
}

func TestPAAMedianPerWindow(t *testing.T) {
	// Paper example: frame one covers days 0-6, frame two days 7-13.
	samples := []Sample{
		{Day: 0, Value: 10}, {Day: 3, Value: 3}, {Day: 6, Value: 20},
		{Day: 7, Value: 1}, {Day: 9, Value: 2}, {Day: 11, Value: 8}, {Day: 13, Value: 9},
	}
	got := PAA(samples, 14, 7)
	if len(got) != 2 {
		t.Fatalf("frames = %d, want 2", len(got))
	}
	if got[0] != 10 { // median of 10,3,20
		t.Errorf("frame 0 = %v, want 10", got[0])
	}
	if got[1] != 5 { // median of 1,2,8,9 = (2+8)/2
		t.Errorf("frame 1 = %v, want 5", got[1])
	}
}

func TestPAAIgnoresOutOfRange(t *testing.T) {
	samples := []Sample{{Day: -1, Value: 100}, {Day: 14, Value: 100}, {Day: 2, Value: 5}}
	got := PAA(samples, 14, 7)
	if got[0] != 5 || got[1] != 0 {
		t.Errorf("PAA = %v, want [5 0]", got)
	}
}

func TestTendencyPaperExamples(t *testing.T) {
	// From §8.1: D' = (1,2,3,1,1,1) -> D'' = (1,1,-1,0,0)
	got := Tendency([]float64{1, 2, 3, 1, 1, 1})
	want := []int{1, 1, -1, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tendency = %v, want %v", got, want)
	}
	// D' = (1,10,0,5,4,2) -> D'' = (1,-1,1,-1,-1)
	got = Tendency([]float64{1, 10, 0, 5, 4, 2})
	want = []int{1, -1, 1, -1, -1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tendency = %v, want %v", got, want)
	}
}

func TestTendencyShort(t *testing.T) {
	if got := Tendency(nil); got != nil {
		t.Errorf("Tendency(nil) = %v", got)
	}
	if got := Tendency([]float64{5}); got != nil {
		t.Errorf("Tendency(1 elem) = %v", got)
	}
}

func TestMergeRunsPaperExample(t *testing.T) {
	// (0,1,1,0,-1,-1) becomes (0,1,0,-1)
	got := MergeRuns([]int{0, 1, 1, 0, -1, -1})
	want := []int{0, 1, 0, -1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeRuns = %v, want %v", got, want)
	}
}

func TestMergeRunsProperties(t *testing.T) {
	prop := func(raw []int8) bool {
		in := make([]int, len(raw))
		for i, v := range raw {
			in[i] = int(v) % 2 // values in {-1,0,1}
			if v%3 == 2 {
				in[i] = -1
			}
		}
		out := MergeRuns(in)
		// No two adjacent equal values.
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				return false
			}
		}
		// Idempotent.
		return reflect.DeepEqual(MergeRuns(out), out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPatternStable(t *testing.T) {
	var samples []Sample
	for d := 0; d < 93; d += 3 {
		samples = append(samples, Sample{Day: d, Value: 4})
	}
	if got := Pattern(samples, 93); got != "0" {
		t.Errorf("stable cluster pattern = %q, want \"0\"", got)
	}
}

func TestPatternGrowthSpike(t *testing.T) {
	// Flat, then up, then back: the paper's 0,1,0,-1,0 style pattern.
	var samples []Sample
	for d := 0; d < 93; d++ {
		v := 2.0
		if d >= 30 && d < 60 {
			v = 10
		}
		samples = append(samples, Sample{Day: d, Value: v})
	}
	got := Pattern(samples, 93)
	if got != "0,1,0,-1,0" {
		t.Errorf("spike pattern = %q, want \"0,1,0,-1,0\"", got)
	}
}

func TestPatternEphemeral(t *testing.T) {
	// A cluster seen on only one of the campaign's rounds has median 0
	// in every frame (the vector D carries zeros for absent rounds),
	// i.e. pattern "0" -- the paper's "ephemeral" subgroup of pattern 0.
	var samples []Sample
	for d := 0; d < 93; d += 3 {
		v := 0.0
		if d == 21 { // frame 3 holds samples for days 21, 24, 27: median 0
			v = 1
		}
		samples = append(samples, Sample{Day: d, Value: v})
	}
	if got := Pattern(samples, 93); got != "0" {
		t.Errorf("ephemeral pattern = %q, want \"0\"", got)
	}
}

func TestPatternStringAndParse(t *testing.T) {
	cases := []struct {
		vec []int
		s   string
	}{
		{nil, "0"},
		{[]int{0}, "0"},
		{[]int{0, 1, 0}, "0,1,0"},
		{[]int{0, -1, 1, 0}, "0,-1,1,0"},
	}
	for _, c := range cases {
		if got := PatternString(c.vec); got != c.s {
			t.Errorf("PatternString(%v) = %q, want %q", c.vec, got, c.s)
		}
	}
	vec, err := ParsePattern("0,-1,1,0")
	if err != nil || !reflect.DeepEqual(vec, []int{0, -1, 1, 0}) {
		t.Errorf("ParsePattern = %v, %v", vec, err)
	}
	for _, bad := range []string{"", "2", "a", "0,,1", "0,5"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) succeeded", bad)
		}
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile not NaN")
	}
	if pts := c.Points(); len(pts) != 0 {
		t.Errorf("empty CDF Points = %v", pts)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0.5); q != 30 {
		t.Errorf("median = %v, want 30", q)
	}
	if q := c.Quantile(0); q != 10 {
		t.Errorf("q0 = %v, want 10", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Errorf("q1 = %v, want 50", q)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	prop := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		pts := NewCDF(raw).Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Y < pts[i-1].Y {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1].Y == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCDFAtMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64() * 20)
	}
	c := NewCDF(vals)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for x := -1.0; x <= 21; x += 0.5 {
		count := 0
		for _, v := range vals {
			if v <= x {
				count++
			}
		}
		want := float64(count) / float64(len(vals))
		if got := c.At(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 || s.Mean != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", empty)
	}
}

func TestGrowth(t *testing.T) {
	abs, frac := Growth([]float64{100, 110, 103.3})
	if abs != 3.3000000000000114 && math.Abs(abs-3.3) > 1e-9 {
		t.Errorf("abs = %v", abs)
	}
	if math.Abs(frac-0.033) > 1e-9 {
		t.Errorf("frac = %v", frac)
	}
	if a, f := Growth(nil); a != 0 || f != 0 {
		t.Errorf("Growth(nil) = %v,%v", a, f)
	}
	if a, f := Growth([]float64{0, 10}); a != 10 || f != 0 {
		t.Errorf("Growth from 0 = %v,%v", a, f)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v", m)
	}
}

func BenchmarkPattern(b *testing.B) {
	var samples []Sample
	rng := rand.New(rand.NewSource(1))
	for d := 0; d < 93; d++ {
		samples = append(samples, Sample{Day: d, Value: float64(rng.Intn(100))})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pattern(samples, 93)
	}
}
