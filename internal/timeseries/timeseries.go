// Package timeseries implements the time-series reductions WhoWas uses
// to characterize cluster-size evolution (§8.1) and to summarize
// measurement campaigns:
//
//   - piecewise aggregate approximation (PAA) over irregular sampling,
//     with the paper's 7-day median windows,
//   - tendency vectors (Algorithm 1) and their run-length merge, whose
//     output is the "size-change pattern" of Table 11,
//   - empirical CDFs (Figures 12, 16, 19),
//   - summary statistics (min/max/mean/std) used by Table 7.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one observation of a series at a given day offset. Days
// need not be evenly spaced: the paper probed every 3 days in
// October–November 2013 and daily in December.
type Sample struct {
	Day   int     // day offset from campaign start, >= 0
	Value float64 // observed value (e.g. number of IPs in a cluster)
}

// PAA reduces irregular samples to fixed windows of windowDays,
// representing each window by the median of the samples that fall in
// it (the paper uses the median "so as to be robust in the face of
// outliers"). The frame count is round(totalDays/windowDays) — the
// paper derives dimension 13 for its 93-day EC2 campaign and 9 for the
// 62-day Azure campaign — with a trailing partial window folded into
// the last frame. Callers must supply a sample for every measured
// round, using value 0 for rounds where the subject was absent (the
// paper's vector D does the same); windows with no samples at all take
// value 0.
func PAA(samples []Sample, totalDays, windowDays int) []float64 {
	if windowDays <= 0 || totalDays <= 0 {
		return nil
	}
	frames := (totalDays + windowDays/2) / windowDays
	if frames < 1 {
		frames = 1
	}
	buckets := make([][]float64, frames)
	for _, s := range samples {
		if s.Day < 0 || s.Day >= totalDays {
			continue
		}
		f := s.Day / windowDays
		if f >= frames {
			f = frames - 1
		}
		buckets[f] = append(buckets[f], s.Value)
	}
	out := make([]float64, frames)
	for i, b := range buckets {
		out[i] = median(b)
	}
	return out
}

// median returns the median of vs, or 0 for an empty slice.
func median(vs []float64) float64 {
	switch len(vs) {
	case 0:
		return 0
	case 1:
		return vs[0]
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Tendency computes D” from D' per Algorithm 1 of the paper: element
// i is +1 if D'[i+1] > D'[i], 0 if equal, -1 otherwise. The result has
// len(d)-1 elements (nil for len(d) < 2).
func Tendency(d []float64) []int {
	if len(d) < 2 {
		return nil
	}
	out := make([]int, len(d)-1)
	for i := 0; i+1 < len(d); i++ {
		switch {
		case d[i+1] > d[i]:
			out[i] = 1
		case d[i+1] == d[i]:
			out[i] = 0
		default:
			out[i] = -1
		}
	}
	return out
}

// MergeRuns collapses consecutive repeats: (0,1,1,0,-1,-1) -> (0,1,0,-1).
// The merged tendency vector is the paper's size-change pattern.
func MergeRuns(t []int) []int {
	var out []int
	for i, v := range t {
		if i == 0 || v != t[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Pattern computes the size-change pattern of a cluster's size series:
// PAA with 7-day median windows, tendency vector, run-length merge.
// An empty or single-frame series yields the stable pattern "0".
func Pattern(samples []Sample, totalDays int) string {
	const windowDays = 7
	d := PAA(samples, totalDays, windowDays)
	merged := MergeRuns(Tendency(d))
	if len(merged) == 0 {
		return "0"
	}
	return PatternString(merged)
}

// PatternString renders a merged tendency vector as the paper writes
// patterns: comma-separated {-1, 0, 1} values ("0,1,0,-1,0").
func PatternString(t []int) string {
	if len(t) == 0 {
		return "0"
	}
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// ParsePattern parses a PatternString back to a vector; used by tests
// and analysis tables.
func ParsePattern(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("timeseries: empty pattern")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < -1 || v > 1 {
			return nil, fmt.Errorf("timeseries: bad pattern element %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// CDF is an empirical cumulative distribution over float64 values.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from values (copied and sorted).
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), or 0 for an empty CDF.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile for q in [0,1] (nearest-rank).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns (x, P(X<=x)) pairs at each distinct value, suitable
// for printing the paper's CDF figures.
func (c *CDF) Points() []Point {
	var pts []Point
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); i++ {
		// Emit at the last occurrence of each distinct value.
		if i+1 < len(c.sorted) && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		pts = append(pts, Point{X: c.sorted[i], Y: float64(i+1) / n})
	}
	return pts
}

// Point is one (x, y) pair of a rendered CDF or time-series figure.
type Point struct {
	X, Y float64
}

// Stats holds the summary block used by Table 7.
type Stats struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Summarize computes min/max/mean/population-std over values.
func Summarize(values []float64) Stats {
	var s Stats
	s.N = len(values)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// Growth returns (last-first, (last-first)/first) for a series; the
// fraction is 0 when the series is empty or starts at 0. Table 7's
// "overall growth" row uses this.
func Growth(values []float64) (abs, frac float64) {
	if len(values) == 0 {
		return 0, 0
	}
	first, last := values[0], values[len(values)-1]
	abs = last - first
	if first != 0 {
		frac = abs / first
	}
	return abs, frac
}
