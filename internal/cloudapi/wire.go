package cloudapi

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The data-plane wire protocol is a one-line preamble from client to
// daemon, a one-line status back, then a raw byte tunnel onto the
// simulated connection:
//
//	client: "WHOWAS1 <ip:port> <budget_ms>\n"
//	daemon: "OK\n" | "TIMEOUT\n" | "REFUSED\n" | "ERR <reason>\n"
//
// budget_ms is the dialer's remaining context budget (-1 when the
// context has no deadline). The daemon rebuilds an equivalent
// deadline before dialing the simulated network, which is what keeps
// deadline-sensitive semantics — the slow-host threshold, injected
// connect latency — identical across transports.
const (
	wireMagic     = "WHOWAS1"
	statusOK      = "OK"
	statusTimeout = "TIMEOUT"
	statusRefused = "REFUSED"
	statusErr     = "ERR"
)

// noBudget marks a dial without a context deadline.
const noBudget = int64(-1)

// formatPreamble renders the client's opening line.
func formatPreamble(address string, budgetMS int64) string {
	return fmt.Sprintf("%s %s %d\n", wireMagic, address, budgetMS)
}

// parsePreamble inverts formatPreamble. hasBudget is false for a
// dial without a deadline.
func parsePreamble(line string) (address string, budget time.Duration, hasBudget bool, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 || fields[0] != wireMagic {
		return "", 0, false, fmt.Errorf("cloudapi: bad preamble %.40q", line)
	}
	ms, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || ms < noBudget {
		return "", 0, false, fmt.Errorf("cloudapi: bad budget %q", fields[2])
	}
	if ms == noBudget {
		return fields[1], 0, false, nil
	}
	return fields[1], time.Duration(ms) * time.Millisecond, true, nil
}
