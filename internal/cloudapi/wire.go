package cloudapi

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"whowas/internal/netsim"
)

// The data-plane wire protocol is a one-line preamble from client to
// daemon, a one-line status back, then a raw byte tunnel onto the
// simulated connection:
//
//	client: "WHOWAS1 <ip:port> <budget_ms> [session]\n"
//	daemon: "OK\n" | "TIMEOUT\n" | "REFUSED\n" | "ERR <reason>\n"
//
// budget_ms is the dialer's remaining context budget (-1 when the
// context has no deadline). The daemon rebuilds an equivalent
// deadline before dialing the simulated network, which is what keeps
// deadline-sensitive semantics — the slow-host threshold, injected
// connect latency — identical across transports. session, when
// present, is the caller's probe session (netsim.WithProbeSession):
// the daemon re-stamps it server-side so the simulated network's
// per-(ip, day) transient-loss bookkeeping stays scoped per session
// across the wire, exactly as in-process.
const (
	wireMagic     = "WHOWAS1"
	statusOK      = "OK"
	statusTimeout = "TIMEOUT"
	statusRefused = "REFUSED"
	statusErr     = "ERR"
)

// noBudget marks a dial without a context deadline.
const noBudget = int64(-1)

// WithProbeSession scopes downstream dials to a probe session (see
// netsim.WithProbeSession). Re-exported so campaign code can stamp
// sessions without importing the simulator directly; the Client
// carries the session across the wire in the dial preamble.
func WithProbeSession(ctx context.Context, id string) context.Context {
	return netsim.WithProbeSession(ctx, id)
}

// formatPreamble renders the client's opening line. The session field
// is omitted when empty; any whitespace in it is folded to '_' so the
// preamble stays one line of space-separated fields.
func formatPreamble(address string, budgetMS int64, session string) string {
	if session == "" {
		return fmt.Sprintf("%s %s %d\n", wireMagic, address, budgetMS)
	}
	return fmt.Sprintf("%s %s %d %s\n", wireMagic, address, budgetMS,
		strings.Join(strings.Fields(session), "_"))
}

// parsePreamble inverts formatPreamble. hasBudget is false for a
// dial without a deadline; session is "" when the field is absent.
func parsePreamble(line string) (address string, budget time.Duration, hasBudget bool, session string, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if (len(fields) != 3 && len(fields) != 4) || fields[0] != wireMagic {
		return "", 0, false, "", fmt.Errorf("cloudapi: bad preamble %.40q", line)
	}
	if len(fields) == 4 {
		session = fields[3]
	}
	ms, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || ms < noBudget {
		return "", 0, false, "", fmt.Errorf("cloudapi: bad budget %q", fields[2])
	}
	if ms == noBudget {
		return fields[1], 0, false, session, nil
	}
	return fields[1], time.Duration(ms) * time.Millisecond, true, session, nil
}
