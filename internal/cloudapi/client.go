package cloudapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
)

// Client is the wire Cloud: it speaks the preamble protocol to a
// whowas-cloudd data plane and JSON over HTTP to its control plane.
// The address layout (Ranges/RegionOf/IsVPC) is reconstructed locally
// from the daemon's advertised configuration, so the hot path pays no
// control-plane round trips; only dials, day changes, snapshots, and
// DNS queries cross the wire.
type Client struct {
	base      string // control-plane base URL, e.g. "http://127.0.0.1:8390"
	hc        *http.Client
	info      Info
	ranges    *ipaddr.RangeList
	prefixes  []cloudsim.PrefixInfo
	day       atomic.Int64
	netDialer net.Dialer
}

// Dial connects to a daemon's control plane, fetches the cloud's
// configuration, and rebuilds the address layout locally.
func Dial(ctx context.Context, addr string) (*Client, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if _, err := url.Parse(base); err != nil {
		return nil, fmt.Errorf("cloudapi: bad address %q: %w", addr, err)
	}
	c := &Client{base: strings.TrimSuffix(base, "/"), hc: &http.Client{}}
	if err := c.getJSON(ctx, "/cloud/info", &c.info); err != nil {
		return nil, fmt.Errorf("cloudapi: fetching cloud info: %w", err)
	}
	if len(c.info.DataAddrs) == 0 {
		return nil, fmt.Errorf("cloudapi: daemon at %s advertises no data-plane listeners", addr)
	}
	infos, rl, err := cloudsim.Layout(c.info.BaseOctet, c.info.Regions)
	if err != nil {
		return nil, err
	}
	c.prefixes, c.ranges = infos, rl
	var doc struct {
		Day int `json:"day"`
	}
	if err := c.getJSON(ctx, "/cloud/day", &doc); err != nil {
		return nil, fmt.Errorf("cloudapi: fetching current day: %w", err)
	}
	c.day.Store(int64(doc.Day))
	return c, nil
}

// DialContext tunnels one dial through the daemon's data plane. The
// remaining context budget rides the preamble so deadline-dependent
// dial semantics (slow hosts, injected latency) match in-process
// behavior; TIMEOUT and REFUSED statuses map back onto the very error
// values netsim produces, keeping scanner classification identical.
func (c *Client) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("cloudapi: unsupported network %q", network)
	}
	raw, err := c.netDialer.DialContext(ctx, "tcp", c.pickData(address))
	if err != nil {
		return nil, fmt.Errorf("cloudapi: data plane: %w", err)
	}
	budget := noBudget
	dl, hasDL := ctx.Deadline()
	if hasDL {
		ms := time.Until(dl).Milliseconds()
		if ms < 0 {
			ms = 0
		}
		budget = ms
		_ = raw.SetDeadline(dl)
	}
	if _, err := io.WriteString(raw, formatPreamble(address, budget, netsim.ProbeSession(ctx))); err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("cloudapi: sending preamble: %w", err)
	}
	br := bufio.NewReader(raw)
	line, err := br.ReadString('\n')
	if err != nil {
		_ = raw.Close()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, netsim.NewTimeoutError(address)
		}
		return nil, fmt.Errorf("cloudapi: reading dial status: %w", err)
	}
	status := strings.TrimSpace(line)
	switch {
	case status == statusOK:
		if hasDL {
			_ = raw.SetDeadline(time.Time{})
		}
		return &wireConn{Conn: raw, br: br}, nil
	case status == statusTimeout:
		_ = raw.Close()
		return nil, netsim.NewTimeoutError(address)
	case status == statusRefused:
		_ = raw.Close()
		return nil, netsim.NewRefusedError(address)
	default:
		_ = raw.Close()
		return nil, fmt.Errorf("cloudapi: remote dial %s: %s", address, status)
	}
}

// wireConn is the tunneled connection; reads drain the status
// reader's buffer before touching the socket.
type wireConn struct {
	net.Conn
	br *bufio.Reader
}

func (w *wireConn) Read(p []byte) (int, error) { return w.br.Read(p) }

// pickData spreads dials across the daemon's listener fleet,
// deterministically per target address.
func (c *Client) pickData(address string) string {
	h := fnv.New32a()
	_, _ = io.WriteString(h, address)
	return c.info.DataAddrs[int(h.Sum32())%len(c.info.DataAddrs)]
}

// lookup finds the /22 covering a, or nil outside the cloud.
func (c *Client) lookup(a ipaddr.Addr) *cloudsim.PrefixInfo {
	if len(c.prefixes) == 0 {
		return nil
	}
	base := c.prefixes[0].Prefix.Addr
	if a < base {
		return nil
	}
	idx := int((a - base) >> 10)
	if idx >= len(c.prefixes) {
		return nil
	}
	return &c.prefixes[idx]
}

// Ranges returns the probed address space.
func (c *Client) Ranges() *ipaddr.RangeList { return c.ranges }

// RegionOf maps an address to its region ("" outside the cloud).
func (c *Client) RegionOf(a ipaddr.Addr) string {
	if pi := c.lookup(a); pi != nil {
		return pi.Region
	}
	return ""
}

// IsVPC reports VPC membership from the advertised layout.
func (c *Client) IsVPC(a ipaddr.Addr) bool {
	pi := c.lookup(a)
	return pi != nil && pi.VPC
}

// Info describes the remote cloud, including its data-plane addresses.
func (c *Client) Info() Info { return c.info }

// Days returns the campaign length in simulated days.
func (c *Client) Days() int { return c.info.Days }

// Day returns the locally cached current day (updated by SetDay).
func (c *Client) Day() int { return int(c.day.Load()) }

// SetDay advances the daemon's simulated day and the local cache.
func (c *Client) SetDay(ctx context.Context, day int) error {
	var doc struct {
		Day int `json:"day"`
	}
	doc.Day = day
	if err := c.postJSON(ctx, "/cloud/day", doc, &doc); err != nil {
		return err
	}
	c.day.Store(int64(doc.Day))
	return nil
}

// Snapshot fetches one day's ground-truth census.
func (c *Client) Snapshot(ctx context.Context, day int) (Snapshot, error) {
	var snap Snapshot
	err := c.getJSON(ctx, "/truth/snapshot?day="+strconv.Itoa(day), &snap)
	return snap, err
}

// Resolver returns a wire resolver pinned at day.
func (c *Client) Resolver(day int) Resolver { return &wireResolver{c: c, day: day} }

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	var doc struct {
		Status string `json:"status"`
	}
	if err := c.getJSON(ctx, "/healthz", &doc); err != nil {
		return err
	}
	if doc.Status != "ok" {
		return fmt.Errorf("cloudapi: daemon unhealthy: %q", doc.Status)
	}
	return nil
}

// Close releases pooled control-plane connections. Idempotent.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// wireResolver answers cartography lookups over the control plane.
type wireResolver struct {
	c   *Client
	day int
}

// LookupPublicName resolves an EC2-style name through the daemon.
func (r *wireResolver) LookupPublicName(ctx context.Context, name string) (dnssim.Response, error) {
	var resp dnssim.Response
	path := "/dns/public?day=" + strconv.Itoa(r.day) + "&name=" + url.QueryEscape(name)
	err := r.c.getJSON(ctx, path, &resp)
	return resp, err
}

// getJSON fetches path into out, surfacing non-200 bodies as errors.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("cloudapi: %w", err)
	}
	return c.doJSON(req, out)
}

// postJSON posts a JSON body to path and decodes the reply into out.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cloudapi: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("cloudapi: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSON(req, out)
}

func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cloudapi: control plane: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cloudapi: %s %s: %s: %s",
			req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cloudapi: decoding %s: %w", req.URL.Path, err)
	}
	return nil
}
