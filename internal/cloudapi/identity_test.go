package cloudapi_test

import (
	"context"
	"testing"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/core"
	"whowas/internal/faults"
	"whowas/internal/fetcher"
	"whowas/internal/scanner"
	"whowas/internal/websim"
)

// identityCloudConfig is the substrate for the acceptance gate: a
// two-region EC2-like cloud small enough to probe over real sockets.
func identityCloudConfig() cloudapi.SimConfig {
	return cloudapi.SimConfig{
		Name:      "identity-ec2",
		Kind:      websim.EC2Like,
		Days:      12,
		Seed:      91,
		BaseOctet: 54,
		Regions: []cloudapi.RegionConfig{
			{Name: "east", Prefixes22: 2, VPC22: 1},
			{Name: "south", Prefixes22: 1, VPC22: 0},
		},
		Population: cloudapi.PopulationConfig{
			TargetResponsive:     0.237,
			Growth:               0.033,
			SSHOnly:              0.259,
			HTTPOnly:             0.380,
			HTTPSOnly:            0.055,
			HTTPBoth:             0.306,
			HTTPFailRate:         0.006,
			DailyBackgroundChurn: 0.05,
			SingletonFrac:        0.788,
			SmallFrac:            0.208,
			MediumFrac:           0.0028,
			EphemeralFrac:        0.114,
			WebClusters:          250,
			VPCClusterShare:      0.27,
			RegisteredDNSShare:   0.55,
		},
	}
}

// identityCampaignConfig mirrors the chaos suite's resilient pipeline:
// retrying scanner and fetcher, keep-alives off so every GET maps to
// one dial, and the loss-ramp fault scenario injected client-side.
func identityCampaignConfig() core.CampaignConfig {
	return core.CampaignConfig{
		RoundDays: []int{0, 2, 4},
		Scanner: scanner.Config{
			Rate:         scanner.UnlimitedRate,
			Workers:      32,
			Timeout:      2 * time.Second,
			Attempts:     3,
			RetryBackoff: time.Microsecond,
		},
		Fetcher: fetcher.Config{
			Workers:           32,
			Timeout:           30 * time.Second,
			Attempts:          3,
			RetryBackoff:      time.Microsecond,
			DisableKeepAlives: true,
		},
		Faults: &faults.Scenario{
			Name:             "loss-ramp",
			Seed:             7,
			DialLossPerMille: 150,
			FlapPerMille:     100,
			FlapPeriodDays:   4,
			FlapDownDays:     2,
			Episodes: []faults.Episode{
				faults.LossRamp(0, 10, 0, 350),
				faults.SlowNetwork(4, 6, 5),
			},
		},
	}
}

// runIdentityCampaign runs the fixed-seed chaos campaign over the
// given cloud and returns the store digest.
func runIdentityCampaign(t *testing.T, cloud cloudapi.Cloud) string {
	t.Helper()
	p, err := core.NewPlatformCloud(cloud)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := p.RunCampaign(ctx, identityCampaignConfig()); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	digest, err := p.Store.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

// TestWireDigestIdentity is the boundary's acceptance gate: the same
// seeded campaign — same cloud config, same fault scenario — run
// in-process and against a live whowas-cloudd daemon must produce
// byte-identical store digests. Every transport-visible difference
// (dial outcomes, deadline semantics, page bytes, day scheduling)
// would surface here.
func TestWireDigestIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("wire identity campaign skipped in -short mode")
	}

	inproc, err := cloudapi.NewInProcess(identityCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	local := runIdentityCampaign(t, inproc)

	backing, err := cloudapi.NewInProcess(identityCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := cloudapi.NewServer(backing, cloudapi.ServerConfig{DataListeners: 4})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client, err := cloudapi.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire := runIdentityCampaign(t, client)

	if wire != local {
		t.Errorf("wire digest %s != in-process digest %s", wire, local)
	}
}
