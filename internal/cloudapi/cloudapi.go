// Package cloudapi is the transport-agnostic boundary between WhoWas
// and the cloud it measures. Everything above this seam — the
// campaign engine, the fault injector, the CLIs — consumes a cloud
// only through the Cloud interface, which splits into two planes:
//
//   - the data plane: the DialContext contract the scanner and
//     fetcher already speak (netsim.Dialer), behind which tenant
//     listeners serve HTTP/TLS/SSH;
//   - the control/introspection plane: configuration and address
//     layout (Info), day scheduling (SetDay), ground-truth snapshots,
//     DNS resolution for cartography, and health.
//
// Two implementations exist. InProcess wraps the simulators exactly
// as core composed them before this boundary existed, so in-process
// campaigns are bit-for-bit what they always were. Client speaks to a
// whowas-cloudd daemon over real TCP: the data plane tunnels dials
// through a small preamble protocol onto the daemon's simulated
// network, and the control plane is JSON over HTTP. The two are
// interchangeable by construction — the conformance suite runs both,
// and the cross-process identity gate requires a seeded campaign to
// produce byte-identical store digests either way.
package cloudapi

import (
	"context"
	"net"

	"whowas/internal/blacklist"
	"whowas/internal/cloudsim"
	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// Dialer is the data-plane contract, identical to netsim.Dialer and
// http.Transport.DialContext.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Resolver answers EC2-style public-DNS queries for the cartography
// sweep. *dnssim.Resolver satisfies it; the wire client answers over
// the daemon's control plane.
type Resolver interface {
	LookupPublicName(ctx context.Context, name string) (dnssim.Response, error)
}

// Cloud is the full scanner-facing cloud surface.
type Cloud interface {
	// Data plane.
	Dialer

	// Address layout. These are pure functions of the cloud's
	// configuration; the wire client answers them locally from Info.
	Ranges() *ipaddr.RangeList
	RegionOf(a ipaddr.Addr) string
	IsVPC(a ipaddr.Addr) bool

	// Control plane.
	Info() Info
	Days() int
	Day() int
	SetDay(ctx context.Context, day int) error
	Snapshot(ctx context.Context, day int) (Snapshot, error)
	Resolver(day int) Resolver
	Health(ctx context.Context) error
	Close() error
}

// Info describes a cloud's identity and static layout — everything a
// client needs to reconstruct Ranges/RegionOf/IsVPC without talking
// to the data plane.
type Info struct {
	Name      string           `json:"name"`
	Kind      websim.CloudKind `json:"kind"`
	Days      int              `json:"days"`
	Seed      int64            `json:"seed"`
	BaseOctet byte             `json:"base_octet"`
	Regions   []RegionConfig   `json:"regions"`
	// DataAddrs lists the daemon's data-plane listener addresses
	// (empty for in-process clouds).
	DataAddrs []string `json:"data_addrs,omitempty"`
}

// IsEC2Like reports whether the cloud follows EC2-style semantics
// (public DNS names, VPC-vs-classic cartography).
func (i Info) IsEC2Like() bool { return i.Kind == websim.EC2Like }

// Snapshot is a ground-truth census of one simulated day, served by
// the control plane for operational checks and accuracy baselines.
type Snapshot struct {
	Day      int            `json:"day"`
	Bound    int            `json:"bound"`
	Web      int            `json:"web"`
	Slow     int            `json:"slow"`
	HTTPFail int            `json:"http_fail"`
	Down     int            `json:"down"`
	Services int            `json:"services"`
	ByRegion map[string]int `json:"by_region"`
}

// The simulator configuration types are re-exported so packages above
// the boundary (core and its tests, the CLIs) can describe clouds
// without importing cloudsim directly.
type (
	// SimConfig configures an in-process simulated cloud.
	SimConfig = cloudsim.Config
	// RegionConfig is one region's address-layout share.
	RegionConfig = cloudsim.RegionConfig
	// PopulationConfig shapes the simulated tenant population.
	PopulationConfig = cloudsim.PopulationConfig
	// IPState is the per-(day, IP) ground truth record.
	IPState = cloudsim.IPState
	// Feeds bundles the simulated blacklist feeds.
	Feeds = blacklist.Feeds
)

// DefaultEC2Config returns the stock EC2-like simulation scaled down
// by scaleDiv.
func DefaultEC2Config(scaleDiv int, seed int64) SimConfig {
	return cloudsim.DefaultEC2Config(scaleDiv, seed)
}

// DefaultAzureConfig returns the stock Azure-like simulation scaled
// down by scaleDiv.
func DefaultAzureConfig(scaleDiv int, seed int64) SimConfig {
	return cloudsim.DefaultAzureConfig(scaleDiv, seed)
}

// Unwrapper is implemented by decorating clouds (WithFaults) so
// helpers can reach the underlying implementation.
type Unwrapper interface {
	Unwrap() Cloud
}

// Sim unwraps c to its in-process simulator, or nil when the cloud is
// remote. Ground-truth-hungry callers (accuracy tests, experiments)
// use it; campaign code must not, or it would break under wire mode.
func Sim(c Cloud) *cloudsim.Cloud {
	for c != nil {
		switch v := c.(type) {
		case *InProcess:
			return v.cloud
		case Unwrapper:
			c = v.Unwrap()
		default:
			return nil
		}
	}
	return nil
}

// FeedsOf returns the cloud's blacklist feeds when it has them
// locally (in-process clouds), else nil. Wire campaigns that need
// feed joins run them on the daemon side or rebuild feeds from the
// ground truth.
func FeedsOf(c Cloud) *Feeds {
	for c != nil {
		switch v := c.(type) {
		case *InProcess:
			return v.feeds
		case Unwrapper:
			c = v.Unwrap()
		default:
			return nil
		}
	}
	return nil
}
