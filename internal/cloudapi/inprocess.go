package cloudapi

import (
	"context"
	"fmt"
	"net"

	"whowas/internal/blacklist"
	"whowas/internal/cloudsim"
	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
)

// InProcess is the in-process Cloud: the cloudsim ground truth, the
// netsim virtual network, and the blacklist feeds, composed exactly
// as core built them before the boundary existed. Campaigns through
// it are bit-identical to the pre-cloudapi platform.
type InProcess struct {
	cloud *cloudsim.Cloud
	net   *netsim.Network
	feeds *blacklist.Feeds
}

// NewInProcess builds the simulated cloud, its network, and feeds.
func NewInProcess(cfg SimConfig) (*InProcess, error) {
	cloud, err := cloudsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("cloudapi: building cloud: %w", err)
	}
	nw, err := netsim.New(cloud)
	if err != nil {
		return nil, fmt.Errorf("cloudapi: building network: %w", err)
	}
	return &InProcess{cloud: cloud, net: nw, feeds: blacklist.BuildFeeds(cloud)}, nil
}

// DialContext implements the data plane over the virtual network.
func (p *InProcess) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return p.net.DialContext(ctx, network, address)
}

// Ranges returns the probed address space.
func (p *InProcess) Ranges() *ipaddr.RangeList { return p.cloud.Ranges() }

// RegionOf maps an address to its region ("" outside the cloud).
func (p *InProcess) RegionOf(a ipaddr.Addr) string { return p.cloud.RegionOf(a) }

// IsVPC reports ground-truth VPC membership.
func (p *InProcess) IsVPC(a ipaddr.Addr) bool { return p.cloud.IsVPC(a) }

// Info describes the simulated cloud's configuration.
func (p *InProcess) Info() Info {
	cfg := p.cloud.Config()
	return Info{
		Name:      cfg.Name,
		Kind:      cfg.Kind,
		Days:      cfg.Days,
		Seed:      cfg.Seed,
		BaseOctet: cfg.BaseOctet,
		Regions:   append([]RegionConfig(nil), cfg.Regions...),
	}
}

// Days returns the campaign length in simulated days.
func (p *InProcess) Days() int { return p.cloud.Days() }

// Day returns the network's current simulated day.
func (p *InProcess) Day() int { return p.net.Day() }

// SetDay advances the simulated day, dropping the previous day's
// transient-loss bookkeeping.
func (p *InProcess) SetDay(ctx context.Context, day int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if day < 0 || day >= p.cloud.Days() {
		return fmt.Errorf("cloudapi: day %d outside campaign [0,%d)", day, p.cloud.Days())
	}
	p.net.SetDay(day)
	return nil
}

// Snapshot censuses one day's ground truth.
func (p *InProcess) Snapshot(ctx context.Context, day int) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	if day < 0 || day >= p.cloud.Days() {
		return Snapshot{}, fmt.Errorf("cloudapi: day %d outside campaign [0,%d)", day, p.cloud.Days())
	}
	snap := Snapshot{Day: day, ByRegion: make(map[string]int)}
	services := make(map[uint64]struct{})
	p.cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := p.cloud.StateAt(day, a)
		if !st.Bound {
			return true
		}
		snap.Bound++
		snap.ByRegion[st.Region]++
		services[st.ServiceID] = struct{}{}
		if st.Web {
			snap.Web++
		}
		if st.Slow {
			snap.Slow++
		}
		if st.HTTPFail {
			snap.HTTPFail++
		}
		if st.Down {
			snap.Down++
		}
		return true
	})
	snap.Services = len(services)
	return snap, nil
}

// Resolver returns the ground-truth DNS resolver pinned at day.
func (p *InProcess) Resolver(day int) Resolver {
	return dnssim.NewResolver(p.cloud, day)
}

// Health always succeeds for a live in-process cloud.
func (p *InProcess) Health(ctx context.Context) error { return ctx.Err() }

// Close is a no-op: the in-process cloud holds no external resources.
func (p *InProcess) Close() error { return nil }

// Network exposes the underlying virtual network for tests that tune
// or instrument it (politeness accounting, loss rates).
func (p *InProcess) Network() *netsim.Network { return p.net }

// RecordProbes enables per-IP probe and request accounting.
func (p *InProcess) RecordProbes(on bool) { p.net.RecordProbes(on) }

// ProbeCount reports dials an IP received on a day (needs
// RecordProbes).
func (p *InProcess) ProbeCount(day int, ip ipaddr.Addr) int { return p.net.ProbeCount(day, ip) }

// RequestCount reports HTTP requests an IP served on a day (needs
// RecordProbes).
func (p *InProcess) RequestCount(day int, ip ipaddr.Addr) int { return p.net.RequestCount(day, ip) }
