package cloudapi

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"whowas/internal/faults"
	"whowas/internal/metrics"
	"whowas/internal/netsim"
)

// ServerConfig sizes the daemon's two listening surfaces.
type ServerConfig struct {
	// DataListeners is the size of the data-plane listener fleet
	// (default 2). Clients spread dials across the fleet.
	DataListeners int
	// DataHost is the data-plane bind host (default 127.0.0.1).
	DataHost string
	// DataBasePort, when positive, binds data listeners on
	// deterministic consecutive ports; zero uses ephemeral ports.
	DataBasePort int
	// Metrics, when non-nil, instruments the daemon (cloudd.* counters
	// and the active-tunnel gauge) and backs the /metrics and
	// /metrics/prom endpoints. The package cannot ride internal/ops
	// (ops imports core imports cloudapi), so the daemon mounts the
	// standard observability surface — metrics JSON, Prometheus text,
	// pprof — on its own control mux instead.
	Metrics *metrics.Registry
}

// Server is the daemon side of the wire cloud: it owns an InProcess
// cloud and serves its data plane over a TCP listener fleet and its
// control plane as JSON over HTTP (the internal/ops mux style).
type Server struct {
	cloud *InProcess
	cfg   ServerConfig
	fleet *netsim.Fleet
	mux   *http.ServeMux
	srv   *http.Server
	start time.Time

	mu       sync.Mutex
	dialer   Dialer // the cloud, or a fault injector around it
	scenario *faults.Scenario

	mDials        *metrics.Counter
	mDialErrs     *metrics.Counter
	mPreambleErrs *metrics.Counter
	mSessionDials *metrics.Counter
	mCtrlRequests *metrics.Counter
	gTunnels      *metrics.Gauge
}

// NewServer wraps an in-process cloud for wire serving; call Start to
// bind it.
func NewServer(cloud *InProcess, cfg ServerConfig) *Server {
	if cfg.DataListeners <= 0 {
		cfg.DataListeners = 2
	}
	s := &Server{
		cloud: cloud,
		cfg:   cfg,
		fleet: netsim.NewFleet(netsim.FleetConfig{
			Max:      cfg.DataListeners,
			Host:     cfg.DataHost,
			BasePort: cfg.DataBasePort,
		}),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		dialer: cloud,
	}
	s.mDials = cfg.Metrics.Counter("cloudd.dials")
	s.mDialErrs = cfg.Metrics.Counter("cloudd.dial_errors")
	s.mPreambleErrs = cfg.Metrics.Counter("cloudd.preamble_errors")
	s.mSessionDials = cfg.Metrics.Counter("cloudd.session_dials")
	s.mCtrlRequests = cfg.Metrics.Counter("cloudd.control_requests")
	s.gTunnels = cfg.Metrics.Gauge("cloudd.active_tunnels")
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/cloud/info", s.handleInfo)
	s.mux.HandleFunc("/cloud/day", s.handleDay)
	s.mux.HandleFunc("/truth/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/dns/public", s.handleDNS)
	s.mux.HandleFunc("/faults", s.handleFaults)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prom", s.handleMetricsProm)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the control-plane routing handler (tests mount it
// on httptest servers), with the control-request counter applied.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mCtrlRequests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

// Start binds the data-plane fleet and the control listener, serving
// both in background goroutines, and returns the bound control
// address. Shut down with Shutdown.
func (s *Server) Start(ctrlAddr string) (string, error) {
	for i := 0; i < s.cfg.DataListeners; i++ {
		if _, err := s.fleet.Listen(s.serveData); err != nil {
			_ = s.fleet.Close()
			return "", err
		}
	}
	ln, err := net.Listen("tcp", ctrlAddr)
	if err != nil {
		_ = s.fleet.Close()
		return "", fmt.Errorf("cloudapi: control listen %s: %w", ctrlAddr, err)
	}
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// DataAddrs returns the data-plane listener addresses.
func (s *Server) DataAddrs() []string { return s.fleet.Addrs() }

// Shutdown stops the control server and drains the data-plane fleet
// (closing live tunnels). Safe to call repeatedly.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(ctx)
	}
	if cerr := s.fleet.Close(); err == nil {
		err = cerr
	}
	return err
}

// currentDialer is the data plane with any active scenario applied.
func (s *Server) currentDialer() Dialer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dialer
}

// serveData handles one tunneled dial: preamble in, status out, then
// a bidirectional splice between the real socket and the simulated
// connection. The fleet closes the socket when this returns.
func (s *Server) serveData(c net.Conn) {
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	address, budget, hasBudget, session, err := parsePreamble(line)
	if err != nil {
		s.mPreambleErrs.Inc()
		writeStatus(c, statusErr+" "+sanitize(err.Error()))
		return
	}
	s.mDials.Inc()
	ctx := context.Background()
	if session != "" {
		s.mSessionDials.Inc()
		ctx = netsim.WithProbeSession(ctx, session)
	}
	cancel := func() {}
	if hasBudget {
		ctx, cancel = context.WithTimeout(ctx, budget)
	}
	inner, err := s.currentDialer().DialContext(ctx, "tcp", address)
	cancel()
	if err != nil {
		s.mDialErrs.Inc()
		writeStatus(c, classifyDialErr(err))
		return
	}
	defer inner.Close()
	s.gTunnels.Add(1)
	defer s.gTunnels.Add(-1)
	writeStatus(c, statusOK)

	// Splice: client->simulated runs in its own goroutine (draining
	// any bytes the client pipelined behind the preamble via br);
	// simulated->client runs inline. Closing both conns on the way
	// out unblocks whichever copy is still pending.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = io.Copy(inner, br)
		_ = inner.Close()
	}()
	_, _ = io.Copy(c, inner)
	_ = inner.Close()
	_ = c.Close()
	wg.Wait()
}

// classifyDialErr maps a simulated dial failure onto the wire status
// vocabulary so the client can resurface an equivalent error.
func classifyDialErr(err error) string {
	var nerr net.Error
	if errors.As(err, &nerr) {
		if nerr.Timeout() {
			return statusTimeout
		}
		return statusRefused
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return statusTimeout
	}
	return statusErr + " " + sanitize(err.Error())
}

func writeStatus(c net.Conn, status string) {
	_ = c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	_, _ = io.WriteString(c, status+"\n")
	_ = c.SetWriteDeadline(time.Time{})
}

// sanitize keeps wire error reasons single-line.
func sanitize(msg string) string {
	return strings.ReplaceAll(strings.ReplaceAll(msg, "\n", " "), "\r", " ")
}

// --- control plane ---

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.cfg.Metrics.Snapshot())
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.cfg.Metrics.Snapshot().WriteProm(w, "whowas")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":    "ok",
		"day":       s.cloud.Day(),
		"uptime_ns": time.Since(s.start).Nanoseconds(),
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := s.cloud.Info()
	info.DataAddrs = s.DataAddrs()
	writeJSON(w, info)
}

// dayDoc is the /cloud/day document, shared by GET and POST.
type dayDoc struct {
	Day int `json:"day"`
}

func (s *Server) handleDay(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, dayDoc{Day: s.cloud.Day()})
	case http.MethodPost:
		var doc dayDoc
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			http.Error(w, "cloudapi: bad day document: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.cloud.SetDay(r.Context(), doc.Day); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, dayDoc{Day: s.cloud.Day()})
	default:
		http.Error(w, "cloudapi: GET or POST", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	day := s.cloud.Day()
	if q := r.URL.Query().Get("day"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "cloudapi: day must be an integer", http.StatusBadRequest)
			return
		}
		day = v
	}
	snap, err := s.cloud.Snapshot(r.Context(), day)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, snap)
}

func (s *Server) handleDNS(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "cloudapi: name parameter required", http.StatusBadRequest)
		return
	}
	day := s.cloud.Day()
	if q := r.URL.Query().Get("day"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "cloudapi: day must be an integer", http.StatusBadRequest)
			return
		}
		day = v
	}
	resp, err := s.cloud.Resolver(day).LookupPublicName(r.Context(), name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

// faultsDoc is the /faults GET document.
type faultsDoc struct {
	Active   bool             `json:"active"`
	Scenario *faults.Scenario `json:"scenario,omitempty"`
}

// handleFaults manages a server-side scenario: POST a faults.Scenario
// to wrap the data plane, DELETE to restore the raw cloud. Campaigns
// normally inject client-side (WithFaults) for transport-identical
// digests; this endpoint is for operators degrading a shared daemon.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		doc := faultsDoc{Active: s.scenario != nil, Scenario: s.scenario}
		s.mu.Unlock()
		writeJSON(w, doc)
	case http.MethodPost:
		var sc faults.Scenario
		if err := json.NewDecoder(r.Body).Decode(&sc); err != nil {
			http.Error(w, "cloudapi: bad scenario: "+err.Error(), http.StatusBadRequest)
			return
		}
		inj, err := faults.Wrap(s.cloud, sc, faults.Options{
			Day:      s.cloud.Day,
			RegionOf: s.cloud.RegionOf,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.dialer, s.scenario = inj, &sc
		s.mu.Unlock()
		writeJSON(w, faultsDoc{Active: true, Scenario: &sc})
	case http.MethodDelete:
		s.mu.Lock()
		s.dialer, s.scenario = s.cloud, nil
		s.mu.Unlock()
		writeJSON(w, faultsDoc{Active: false})
	default:
		http.Error(w, "cloudapi: GET, POST or DELETE", http.StatusMethodNotAllowed)
	}
}
