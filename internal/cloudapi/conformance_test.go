package cloudapi

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// conformanceConfig is a tiny two-region EC2-like cloud shared by the
// boundary tests; small enough to exhaustively sweep.
func conformanceConfig() SimConfig {
	return SimConfig{
		Name:      "conf-ec2",
		Kind:      websim.EC2Like,
		Days:      6,
		Seed:      91,
		BaseOctet: 54,
		Regions: []cloudsim.RegionConfig{
			{Name: "east", Prefixes22: 2, VPC22: 1},
			{Name: "south", Prefixes22: 1, VPC22: 0},
		},
		Population: cloudsim.PopulationConfig{
			TargetResponsive:     0.237,
			Growth:               0.033,
			SSHOnly:              0.259,
			HTTPOnly:             0.380,
			HTTPSOnly:            0.055,
			HTTPBoth:             0.306,
			HTTPFailRate:         0.006,
			DailyBackgroundChurn: 0.05,
			SingletonFrac:        0.788,
			SmallFrac:            0.208,
			MediumFrac:           0.0028,
			EphemeralFrac:        0.114,
			WebClusters:          250,
			VPCClusterShare:      0.27,
			RegisteredDNSShare:   0.55,
		},
	}
}

// conformanceClouds builds one cloud per implementation under test:
// an InProcess used directly, and a Client speaking to a daemon that
// wraps a second, identically configured InProcess. Separate
// underlying simulators keep transient-loss bookkeeping independent,
// exactly as two real campaigns would be.
func conformanceClouds(t *testing.T) (truth *InProcess, impls map[string]Cloud) {
	t.Helper()
	direct, err := NewInProcess(conformanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	backing, err := NewInProcess(conformanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backing, ServerConfig{DataListeners: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	client, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return direct, map[string]Cloud{"inprocess": direct, "wire": client}
}

func TestCloudConformance(t *testing.T) {
	truth, impls := conformanceClouds(t)
	wantInfo := truth.Info()
	ctx := context.Background()

	for name, c := range impls {
		t.Run(name, func(t *testing.T) {
			info := c.Info()
			if name == "wire" && len(info.DataAddrs) != 2 {
				t.Errorf("wire info advertises %d data listeners, want 2", len(info.DataAddrs))
			}
			info.DataAddrs = nil
			if !reflect.DeepEqual(info, wantInfo) {
				t.Errorf("Info = %+v, want %+v", info, wantInfo)
			}
			if !info.IsEC2Like() {
				t.Error("EC2-like cloud reports IsEC2Like() == false")
			}
			if c.Days() != wantInfo.Days {
				t.Errorf("Days = %d, want %d", c.Days(), wantInfo.Days)
			}
			if err := c.Health(ctx); err != nil {
				t.Errorf("Health: %v", err)
			}

			// The address layout must agree with ground truth at every
			// address, plus the boundary just outside the range.
			if got, want := c.Ranges().Total(), truth.Ranges().Total(); got != want {
				t.Fatalf("Ranges().Total() = %d, want %d", got, want)
			}
			mismatches := 0
			truth.Ranges().Each(func(a ipaddr.Addr) bool {
				if c.RegionOf(a) != truth.RegionOf(a) || c.IsVPC(a) != truth.IsVPC(a) {
					mismatches++
				}
				return mismatches < 5
			})
			if mismatches > 0 {
				t.Errorf("%d addresses disagree with ground-truth layout", mismatches)
			}
			first, _ := truth.Ranges().AtIndex(0)
			outside := first - 1
			if c.RegionOf(outside) != "" || c.IsVPC(outside) {
				t.Errorf("address outside the cloud mapped to region %q", c.RegionOf(outside))
			}

			// Day scheduling round-trips; out-of-range days are rejected.
			if c.Day() != 0 {
				t.Errorf("initial Day = %d", c.Day())
			}
			if err := c.SetDay(ctx, 3); err != nil {
				t.Fatalf("SetDay(3): %v", err)
			}
			if c.Day() != 3 {
				t.Errorf("Day after SetDay(3) = %d", c.Day())
			}
			for _, bad := range []int{-1, wantInfo.Days} {
				if err := c.SetDay(ctx, bad); err == nil {
					t.Errorf("SetDay(%d) accepted", bad)
				}
			}
			if c.Day() != 3 {
				t.Errorf("rejected SetDay moved the day to %d", c.Day())
			}

			// Ground-truth snapshots match the direct census.
			for _, day := range []int{0, 3} {
				want, err := truth.Snapshot(ctx, day)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Snapshot(ctx, day)
				if err != nil {
					t.Fatalf("Snapshot(%d): %v", day, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Snapshot(%d) = %+v, want %+v", day, got, want)
				}
			}
			if _, err := c.Snapshot(ctx, wantInfo.Days); err == nil {
				t.Error("out-of-range snapshot accepted")
			}

			if err := c.SetDay(ctx, 0); err != nil {
				t.Fatal(err)
			}

			testResolverConformance(t, truth, c)
			testDialConformance(t, truth, c)

			// Close is idempotent.
			if err := c.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := c.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
		})
	}
}

// testResolverConformance compares DNS answers against the
// ground-truth resolver for a bound IP, an unbound IP, and junk.
func testResolverConformance(t *testing.T, truth *InProcess, c Cloud) {
	t.Helper()
	ctx := context.Background()
	day := 0
	boundIP, unboundIP := findConformanceIPs(t, truth, day)
	ref := truth.Resolver(day)
	r := c.Resolver(day)
	for _, ip := range []ipaddr.Addr{boundIP, unboundIP} {
		name := dnssim.PublicName(ip, truth.RegionOf(ip))
		want, wantErr := ref.LookupPublicName(ctx, name)
		got, gotErr := r.LookupPublicName(ctx, name)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("lookup %s: err %v, ground truth %v", name, gotErr, wantErr)
		}
		if got != want {
			t.Errorf("lookup %s = %+v, want %+v", name, got, want)
		}
	}
	if _, err := r.LookupPublicName(ctx, "not-an-ec2-name.example.com"); err == nil {
		t.Error("junk DNS name resolved")
	}
}

// findConformanceIPs picks, from ground truth on the given day, a
// clean web IP (HTTP on 80), an SSH-only IP (bound, 80 closed), and
// an unbound IP.
func findConformanceIPs(t *testing.T, truth *InProcess, day int) (web, unbound ipaddr.Addr) {
	t.Helper()
	web, unbound, _ = findConformanceIPs3(t, truth, day)
	return web, unbound
}

func findConformanceIPs3(t *testing.T, truth *InProcess, day int) (web, unbound, sshOnly ipaddr.Addr) {
	t.Helper()
	truth.Ranges().Each(func(a ipaddr.Addr) bool {
		st := truth.cloud.StateAt(day, a)
		switch {
		case web == 0 && st.Bound && st.Web && st.Ports.OpensPort(80) && !st.Slow && !st.HTTPFail && !st.Down:
			web = a
		case unbound == 0 && !st.Bound:
			unbound = a
		case sshOnly == 0 && st.Bound && !st.Ports.OpensPort(80):
			sshOnly = a
		}
		return web == 0 || unbound == 0 || sshOnly == 0
	})
	if web == 0 || unbound == 0 || sshOnly == 0 {
		t.Fatalf("population has no test IPs: web=%s unbound=%s ssh=%s", web, unbound, sshOnly)
	}
	return web, unbound, sshOnly
}

// dialRetry dials with retries to ride out the simulator's transient
// per-(ip,day) loss, which drops the first three attempts to a lossy
// host.
func dialRetry(ctx context.Context, c Cloud, addr string) (net.Conn, error) {
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		conn, err = c.DialContext(ctx, "tcp", addr)
		var nerr net.Error
		if err == nil || !errors.As(err, &nerr) || !nerr.Timeout() {
			return conn, err
		}
	}
	return conn, err
}

// testDialConformance drives the data plane: a web IP must serve the
// same page either way, an unbound IP must surface a timeout-class
// error, and a closed port a refusal-class error.
func testDialConformance(t *testing.T, truth *InProcess, c Cloud) {
	t.Helper()
	ctx := context.Background()
	day := 0
	webIP, unboundIP, sshIP := findConformanceIPs3(t, truth, day)

	wantStatus, wantBody := fetchRaw(t, truth, webIP)
	gotStatus, gotBody := fetchRaw(t, c, webIP)
	if gotStatus != wantStatus || gotBody != wantBody {
		t.Errorf("page for %s differs: status %d vs %d, %d vs %d body bytes",
			webIP, gotStatus, wantStatus, len(gotBody), len(wantBody))
	}

	// Unbound address: the scanner depends on a net.Error that reports
	// Timeout() == true.
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if conn, err := c.DialContext(dctx, "tcp", unboundIP.String()+":80"); err == nil {
		_ = conn.Close()
		t.Errorf("dial of unbound %s succeeded", unboundIP)
	} else {
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("unbound dial error = %v, want timeout net.Error", err)
		}
	}

	// Bound host, closed port: refusal, not timeout.
	if conn, err := dialRetry(ctx, c, sshIP.String()+":80"); err == nil {
		_ = conn.Close()
		t.Errorf("dial of closed port on %s succeeded", sshIP)
	} else {
		var nerr net.Error
		if !errors.As(err, &nerr) || nerr.Timeout() {
			t.Errorf("closed-port dial error = %v, want non-timeout net.Error", err)
		}
	}

	// Unsupported networks are rejected outright.
	if _, err := c.DialContext(ctx, "udp", webIP.String()+":53"); err == nil {
		t.Error("udp dial accepted")
	}
}

// fetchRaw issues one HTTP/1.1 GET over the cloud's data plane and
// returns the status and body.
func fetchRaw(t *testing.T, c Cloud, ip ipaddr.Addr) (int, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := dialRetry(ctx, c, ip.String()+":80")
	if err != nil {
		t.Fatalf("dial %s: %v", ip, err)
	}
	defer conn.Close()
	req, err := http.NewRequest(http.MethodGet, "http://"+ip.String()+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", "conformance-test")
	if err := req.Write(conn); err != nil {
		t.Fatalf("write request: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), req)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}
