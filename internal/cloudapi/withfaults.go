package cloudapi

import (
	"context"
	"net"

	"whowas/internal/faults"
	"whowas/internal/metrics"
)

// WithFaults wraps a cloud's data plane with a fault-injection
// scenario. This is the single wrap point for chaos campaigns: the
// injector sits between the campaign and whatever transport the cloud
// uses, so in-process and wire campaigns inject identically — the
// precondition for the cross-process digest identity gate. The
// control plane passes through untouched.
func WithFaults(c Cloud, sc faults.Scenario, reg *metrics.Registry) (Cloud, error) {
	inj, err := faults.Wrap(c, sc, faults.Options{
		Day:      c.Day,
		RegionOf: c.RegionOf,
		Metrics:  reg,
	})
	if err != nil {
		return nil, err
	}
	return &faultCloud{Cloud: c, inj: inj}, nil
}

// faultCloud overrides only the data plane.
type faultCloud struct {
	Cloud
	inj *faults.Injector
}

// DialContext routes every dial through the injector.
func (f *faultCloud) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return f.inj.DialContext(ctx, network, address)
}

// Unwrap exposes the undecorated cloud for Sim and FeedsOf.
func (f *faultCloud) Unwrap() Cloud { return f.Cloud }

// Injector exposes the wrapped injector (tests inspect counters).
func (f *faultCloud) Injector() *faults.Injector { return f.inj }
