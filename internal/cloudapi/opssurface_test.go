package cloudapi

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whowas/internal/metrics"
	"whowas/internal/netsim"
)

// TestDaemonOpsSurface proves the daemon carries the platform's
// standard observability surface on its control plane: /metrics and
// /metrics/prom backed by the cloudd.* instruments, pprof mounted, and
// the data-plane counters (dials, session dials, preamble errors)
// moving as traffic flows.
func TestDaemonOpsSurface(t *testing.T) {
	backing, err := NewInProcess(conformanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := NewServer(backing, ServerConfig{DataListeners: 1, Metrics: reg})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	client, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })

	// One ordinary dial and one session-stamped dial against a dead
	// port still count as dials (the tunnel opened; the simulated dial
	// failed). Use a short budget so the refused/timeout answer is fast.
	dial := func(session string) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if session != "" {
			ctx = netsim.WithProbeSession(ctx, session)
		}
		if c, err := client.DialContext(ctx, "tcp", "203.0.113.1:9"); err == nil {
			c.Close()
		}
	}
	dial("")
	dial("s1")

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics not a snapshot: %v", err)
	}
	if snap.Counters["cloudd.dials"] < 2 {
		t.Errorf("cloudd.dials = %d, want >= 2", snap.Counters["cloudd.dials"])
	}
	if snap.Counters["cloudd.session_dials"] < 1 {
		t.Errorf("cloudd.session_dials = %d, want >= 1", snap.Counters["cloudd.session_dials"])
	}
	if snap.Counters["cloudd.control_requests"] < 1 {
		t.Errorf("cloudd.control_requests = %d, want >= 1", snap.Counters["cloudd.control_requests"])
	}

	resp, body = get("/metrics/prom")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics/prom: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "whowas_cloudd_dials_total") {
		t.Errorf("prom exposition missing cloudd dials: %q", body)
	}

	if resp, _ = get("/debug/pprof/cmdline"); resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}

	// A garbage preamble counts as a preamble error.
	dataAddr := srv.DataAddrs()[0]
	conn, err := net.Dial("tcp", dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.WriteString(conn, "NOT-A-PREAMBLE\n")
	_, _ = io.ReadAll(conn)
	conn.Close()
	if got := reg.Counter("cloudd.preamble_errors").Load(); got < 1 {
		t.Errorf("cloudd.preamble_errors = %d, want >= 1", got)
	}

	// A metrics-less daemon serves the surface degraded, not broken.
	bare := NewServer(backing, ServerConfig{DataListeners: 1})
	rr := httptest.NewRecorder()
	bare.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Errorf("bare /metrics: %d", rr.Code)
	}
}
