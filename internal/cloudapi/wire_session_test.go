package cloudapi

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
)

// TestWireProbeSessionScoping proves the probe session crosses the
// dial preamble: distinct sessions stamped client-side get independent
// transient-loss windows on the daemon's simulated network, so a shard
// re-run by a different worker process behaves like a first
// measurement instead of inheriting a dead worker's attempt counts.
func TestWireProbeSessionScoping(t *testing.T) {
	backing, err := NewInProcess(conformanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backing, ServerConfig{DataListeners: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	client, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })

	// Find a responsive, fast host: a short-budget in-process dial
	// filters out slow hosts (they need ~5 s) and dead addresses.
	var ip ipaddr.Addr
	found := false
	backing.Ranges().Each(func(a ipaddr.Addr) bool {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		c, err := backing.DialContext(ctx, "tcp", a.String()+":22")
		cancel()
		if err == nil {
			c.Close()
			ip, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no responsive fast host in sample")
	}

	backing.Network().LossPerMille = 1000 // every host lossy from here on

	dial := func(session, label string, wantTimeout bool) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if session != "" {
			ctx = netsim.WithProbeSession(ctx, session)
		}
		c, err := client.DialContext(ctx, "tcp", ip.String()+":22")
		if wantTimeout {
			var ne net.Error
			if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
				t.Fatalf("%s = %v, want timeout", label, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		c.Close()
	}
	// A victim session burns part of its loss window, then "dies".
	dial("victim", "victim attempt 1", true)
	dial("victim", "victim attempt 2", true)
	// The re-run session starts from a clean window: the full three
	// drops, then recovery — exactly a first measurement.
	for i := 1; i <= 3; i++ {
		dial("rerun", "rerun drop", true)
	}
	dial("rerun", "rerun retry", false)
}
