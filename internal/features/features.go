// Package features implements WhoWas's feature generator (§4): after a
// round of scanning, it turns each fetched page into the ten features
// stored in the database —
//
//	(1) back-end technology from the x-powered-by header,
//	(2) the meta description,
//	(3) the sorted, "#"-joined HTTP response header-name string,
//	(4) the length of the returned body,
//	(5) the title string,
//	(6) the web template from the meta generator tag,
//	(7) the server type from the Server header,
//	(8) the meta keywords,
//	(9) any Google Analytics ID,
//	(10) a 96-bit simhash of the body —
//
// plus the absolute URLs appearing in the page (for the §8.2
// malicious-URL analysis) and third-party tracker matches (§8.3,
// Table 20). Missing features are stored as empty strings, the paper's
// "unknown".
package features

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"whowas/internal/fetcher"
	"whowas/internal/htmlparse"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

// TrackerFingerprint pairs a tracker's name with the URL substring
// that identifies its tracking code, following Mayer & Mitchell's
// catalogue as used by the paper's tracker census.
type TrackerFingerprint struct {
	Name string
	URL  string // substring matched against the page body
}

// TrackerFingerprints is the Table 20 tracker catalogue.
var TrackerFingerprints = []TrackerFingerprint{
	{"google-analytics", "google-analytics.com"},
	{"facebook", "connect.facebook.net"},
	{"twitter", "platform.twitter.com"},
	{"doubleclick", "doubleclick.net"},
	{"quantserve", "quantserve.com"},
	{"scorecardresearch", "scorecardresearch.com"},
	{"imrworldwide", "imrworldwide.com"},
	{"serving-sys", "serving-sys.com"},
	{"atdmt", "atdmt.com"},
	{"yieldmanager", "yieldmanager.com"},
	{"adnxs", "adnxs.com"},
}

// FromPage builds a store.Record from a fetch outcome, extracting all
// features. The record's Round/Day fields are filled by the store on
// insert.
func FromPage(p *fetcher.Page) *store.Record {
	rec := &store.Record{
		IP:           p.IP,
		OpenPorts:    p.OpenPorts,
		Fetched:      p.OpenPorts&(store.PortHTTP|store.PortHTTPS) != 0,
		RobotsDenied: p.RobotsDenied,
		Scheme:       p.Scheme,
		HTTPStatus:   p.Status,
		ContentType:  normalizeContentType(p.ContentType),
	}
	if p.Err != nil {
		rec.FetchErr = classifyErr(p.Err)
	}
	if p.Header != nil {
		rec.Server = p.Header.Get("Server")
		rec.PoweredBy = p.Header.Get("X-Powered-By")
		rec.HeaderNames = HeaderNameString(p.Header)
	}
	body := string(p.Body)
	rec.BodyLen = len(body)
	rec.Body = body
	if body != "" {
		ext := extractBody(body)
		rec.Title = ext.title
		rec.Description = ext.description
		rec.Keywords = ext.keywords
		rec.Template = ext.template
		rec.AnalyticsID = ext.analyticsID
		rec.Links = ext.links
		rec.Simhash = ext.simhash
		rec.Trackers = ext.trackers
	}
	// Deep-crawl extension: fold followed subpages' links in, so the
	// malicious-URL analysis sees URLs the front page does not carry.
	if len(p.SubPages) > 0 {
		rec.Subpages = len(p.SubPages)
		seen := map[string]bool{}
		// Copy before appending: rec.Links aliases the shared
		// extraction cache, which must stay immutable.
		merged := make([]string, 0, len(rec.Links)+4)
		for _, l := range rec.Links {
			seen[l] = true
			merged = append(merged, l)
		}
		for _, sub := range p.SubPages {
			if len(sub.Body) == 0 {
				continue
			}
			for _, l := range extractBody(string(sub.Body)).links {
				if !seen[l] {
					seen[l] = true
					merged = append(merged, l)
				}
			}
		}
		rec.Links = merged
	}
	return rec
}

// extracted caches the body-derived features. Identical bodies recur
// massively across IPs and rounds (a 500-IP deployment serves one page
// for weeks), so the campaign-level cache turns repeated parsing and
// simhashing into a lookup. Cached slices are shared and must not be
// mutated by callers.
type extracted struct {
	title, description, keywords, template, analyticsID string
	links, trackers                                     []string
	simhash                                             simhash.Fingerprint
}

type bodyKey struct {
	hash uint64
	size int
}

var (
	extractCache   sync.Map // bodyKey -> *extracted
	extractEntries atomic.Int64
)

// extractCacheCap bounds the cache; past it, extraction runs uncached
// (pathological inputs only — a dual-cloud campaign stays far below).
const extractCacheCap = 1 << 18

func extractBody(body string) *extracted {
	k := bodyKey{hash: fnv64a(body), size: len(body)}
	if v, ok := extractCache.Load(k); ok {
		return v.(*extracted)
	}
	doc := htmlparse.Parse(body)
	ext := &extracted{
		title:       doc.Title,
		description: doc.Description,
		keywords:    doc.Keywords,
		template:    doc.Generator,
		analyticsID: doc.AnalyticsID,
		links:       doc.Links,
		simhash:     simhash.Hash(body),
		trackers:    MatchTrackers(body),
	}
	if extractEntries.Load() < extractCacheCap {
		if _, loaded := extractCache.LoadOrStore(k, ext); !loaded {
			extractEntries.Add(1)
		}
	}
	return ext
}

func fnv64a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// HeaderNameString renders feature 3: all response header field names,
// sorted alphabetically and joined with "#".
func HeaderNameString(h map[string][]string) string {
	names := make([]string, 0, len(h))
	for k := range h {
		names = append(names, strings.ToLower(k))
	}
	sort.Strings(names)
	return strings.Join(names, "#")
}

// normalizeContentType strips parameters and lowercases the media type.
func normalizeContentType(ct string) string {
	return strings.ToLower(strings.TrimSpace(strings.SplitN(ct, ";", 2)[0]))
}

// classifyErr maps transport errors to the coarse classes stored in
// the database.
func classifyErr(err error) string {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "timeout") || strings.Contains(msg, "deadline"):
		return "timeout"
	case strings.Contains(msg, "refused"):
		return "refused"
	case strings.Contains(msg, "reset") || strings.Contains(msg, "EOF") || strings.Contains(msg, "closed"):
		return "reset"
	default:
		return "error"
	}
}

// MatchTrackers scans a page body for tracker fingerprints, returning
// matched tracker names in catalogue order. This mirrors the paper's
// fingerprint search over stored content.
func MatchTrackers(body string) []string {
	var out []string
	for _, tf := range TrackerFingerprints {
		if strings.Contains(body, tf.URL) {
			out = append(out, tf.Name)
		}
	}
	return out
}

// ServerFamily reduces a Server header to its product family
// ("Apache", "nginx", "Microsoft-IIS", ...), as used by the §8.3
// census. Unknown families return the first product token.
func ServerFamily(server string) string {
	s := strings.TrimSpace(server)
	if s == "" {
		return ""
	}
	switch {
	case strings.HasPrefix(s, "Apache"):
		return "Apache"
	case strings.HasPrefix(s, "nginx"):
		return "nginx"
	case strings.HasPrefix(s, "Microsoft-IIS"):
		return "Microsoft-IIS"
	case strings.HasPrefix(s, "MochiWeb"):
		return "MochiWeb"
	case strings.HasPrefix(s, "lighttpd"):
		return "lighttpd"
	case strings.HasPrefix(s, "Jetty"):
		return "Jetty"
	case strings.HasPrefix(s, "gunicorn"):
		return "gunicorn"
	}
	if i := strings.IndexAny(s, "/ "); i > 0 {
		return s[:i]
	}
	return s
}

// BackendFamily reduces an X-Powered-By value to its family (PHP,
// ASP.NET, ...).
func BackendFamily(poweredBy string) string {
	s := strings.TrimSpace(poweredBy)
	if s == "" {
		return ""
	}
	switch {
	case strings.HasPrefix(s, "PHP"):
		return "PHP"
	case strings.HasPrefix(s, "ASP.NET"):
		return "ASP.NET"
	case strings.HasPrefix(s, "Phusion"):
		return "Phusion Passenger"
	case strings.HasPrefix(s, "Express"):
		return "Express"
	case strings.HasPrefix(s, "Servlet"):
		return "Servlet"
	}
	if i := strings.IndexAny(s, "/ "); i > 0 {
		return s[:i]
	}
	return s
}

// TemplateFamily reduces a meta-generator value to its template family
// (WordPress, Joomla!, Drupal, ...).
func TemplateFamily(template string) string {
	s := strings.TrimSpace(template)
	if s == "" {
		return ""
	}
	switch {
	case strings.HasPrefix(s, "WordPress"):
		return "WordPress"
	case strings.HasPrefix(s, "Joomla!"):
		return "Joomla!"
	case strings.HasPrefix(s, "Drupal"):
		return "Drupal"
	}
	if i := strings.IndexAny(s, "/ "); i > 0 {
		return s[:i]
	}
	return s
}

// VersionOf extracts the version string following a product name, e.g.
// VersionOf("Apache/2.2.22 (Ubuntu)", "Apache") == "2.2.22". Empty when
// absent.
func VersionOf(value, product string) string {
	if !strings.HasPrefix(value, product) {
		return ""
	}
	rest := value[len(product):]
	if strings.HasPrefix(rest, "/") {
		rest = rest[1:]
	} else if strings.HasPrefix(rest, " ") {
		rest = strings.TrimLeft(rest, " ")
	} else if rest != "" && !strings.HasPrefix(rest, ".") {
		return ""
	}
	end := 0
	for end < len(rest) {
		c := rest[end]
		if (c >= '0' && c <= '9') || c == '.' {
			end++
			continue
		}
		break
	}
	return strings.Trim(rest[:end], ".")
}
