package features

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

func samplePage() *fetcher.Page {
	body := `<!DOCTYPE html>
<html><head>
<title>Acme Cloud Shop</title>
<meta name="description" content="widgets for everyone">
<meta name="keywords" content="widgets,acme">
<meta name="generator" content="WordPress 3.5.1">
<script>var _gaq=[['_setAccount','UA-55555-3']];
var s='http://www.google-analytics.com/ga.js';</script>
<script src="http://platform.twitter.com/widgets.js"></script>
</head><body>
<p>Buy <a href="http://acme.example/catalog">widgets</a></p>
<a href="http://dl.dropbox.com/s/evil">download</a>
</body></html>`
	return &fetcher.Page{
		IP:        ipaddr.MustParseAddr("54.1.2.3"),
		OpenPorts: store.PortHTTP,
		Scheme:    "http",
		Status:    200,
		Header: http.Header{
			"Server":       {"Apache/2.2.22 (Ubuntu)"},
			"X-Powered-By": {"PHP/5.3.10-1ubuntu3.9"},
			"Content-Type": {"text/html; charset=utf-8"},
			"Date":         {"Tue, 01 Oct 2013 00:00:00 GMT"},
		},
		ContentType: "text/html; charset=utf-8",
		Body:        []byte(body),
	}
}

func TestFromPageAllFeatures(t *testing.T) {
	rec := FromPage(samplePage())
	if rec.PoweredBy != "PHP/5.3.10-1ubuntu3.9" { // feature 1
		t.Errorf("PoweredBy = %q", rec.PoweredBy)
	}
	if rec.Description != "widgets for everyone" { // feature 2
		t.Errorf("Description = %q", rec.Description)
	}
	if rec.HeaderNames != "content-type#date#server#x-powered-by" { // feature 3
		t.Errorf("HeaderNames = %q", rec.HeaderNames)
	}
	if rec.BodyLen == 0 || rec.BodyLen != len(rec.Body) { // feature 4
		t.Errorf("BodyLen = %d, body %d", rec.BodyLen, len(rec.Body))
	}
	if rec.Title != "Acme Cloud Shop" { // feature 5
		t.Errorf("Title = %q", rec.Title)
	}
	if rec.Template != "WordPress 3.5.1" { // feature 6
		t.Errorf("Template = %q", rec.Template)
	}
	if rec.Server != "Apache/2.2.22 (Ubuntu)" { // feature 7
		t.Errorf("Server = %q", rec.Server)
	}
	if rec.Keywords != "widgets,acme" { // feature 8
		t.Errorf("Keywords = %q", rec.Keywords)
	}
	if rec.AnalyticsID != "UA-55555-3" { // feature 9
		t.Errorf("AnalyticsID = %q", rec.AnalyticsID)
	}
	if rec.Simhash == simhash.Zero { // feature 10
		t.Error("Simhash is zero")
	}
	if rec.ContentType != "text/html" {
		t.Errorf("ContentType = %q", rec.ContentType)
	}
	// Links include the malicious-looking dropbox URL.
	foundDropbox := false
	for _, l := range rec.Links {
		if strings.Contains(l, "dl.dropbox.com") {
			foundDropbox = true
		}
	}
	if !foundDropbox {
		t.Errorf("Links = %v, missing dropbox URL", rec.Links)
	}
	// Trackers matched.
	wantTrackers := map[string]bool{"google-analytics": true, "twitter": true}
	for _, tr := range rec.Trackers {
		if !wantTrackers[tr] {
			t.Errorf("unexpected tracker %q", tr)
		}
		delete(wantTrackers, tr)
	}
	for tr := range wantTrackers {
		t.Errorf("missing tracker %q", tr)
	}
}

func TestFromPageEmptyBody(t *testing.T) {
	p := &fetcher.Page{IP: 1, OpenPorts: store.PortHTTP, Status: 204}
	rec := FromPage(p)
	if rec.Simhash != simhash.Zero || rec.Title != "" || rec.BodyLen != 0 {
		t.Errorf("empty-body record = %+v", rec)
	}
	if !rec.Fetched {
		t.Error("web-port page not marked fetched")
	}
}

func TestFromPageSSHOnly(t *testing.T) {
	p := &fetcher.Page{IP: 2, OpenPorts: store.PortSSH}
	rec := FromPage(p)
	if rec.Fetched {
		t.Error("SSH-only record marked fetched")
	}
	if !rec.Responsive() || rec.Available() {
		t.Error("SSH-only predicates wrong")
	}
}

func TestFromPageError(t *testing.T) {
	cases := map[string]string{
		"dial tcp 1.2.3.4:80: i/o timeout":        "timeout",
		"context deadline exceeded":               "timeout",
		"dial tcp 1.2.3.4:80: connection refused": "refused",
		"read: connection reset by peer":          "reset",
		"unexpected EOF":                          "reset",
		"something strange":                       "error",
	}
	for msg, want := range cases {
		p := &fetcher.Page{IP: 3, OpenPorts: store.PortHTTP, Err: errors.New(msg)}
		if rec := FromPage(p); rec.FetchErr != want {
			t.Errorf("classify(%q) = %q, want %q", msg, rec.FetchErr, want)
		}
	}
}

func TestFromPageSubpageLinksMerged(t *testing.T) {
	p := samplePage()
	p.SubPages = []fetcher.SubPage{
		{Path: "/about", Status: 200, Body: []byte(`<a href="http://dl.dropbox.com/s/more">x</a><a href="http://acme.example/catalog">dup</a>`)},
		{Path: "/contact", Status: 200, Body: []byte(`<a href="http://tr.im/evil2">y</a>`)},
		{Path: "/empty", Status: 404, Body: nil},
	}
	rec := FromPage(p)
	if rec.Subpages != 3 {
		t.Errorf("Subpages = %d, want 3", rec.Subpages)
	}
	linkSet := map[string]bool{}
	for _, l := range rec.Links {
		if linkSet[l] {
			t.Errorf("duplicate merged link %q", l)
		}
		linkSet[l] = true
	}
	for _, want := range []string{"http://dl.dropbox.com/s/more", "http://tr.im/evil2", "http://acme.example/catalog"} {
		if !linkSet[want] {
			t.Errorf("merged links missing %q", want)
		}
	}
	// The extraction cache's slice must not have been mutated: a
	// second FromPage without subpages sees the original links only.
	p2 := samplePage()
	rec2 := FromPage(p2)
	for _, l := range rec2.Links {
		if l == "http://tr.im/evil2" {
			t.Error("extraction cache polluted by subpage merge")
		}
	}
}

func TestHeaderNameString(t *testing.T) {
	h := map[string][]string{"B": nil, "a": nil, "C": nil}
	if got := HeaderNameString(h); got != "a#b#c" {
		t.Errorf("HeaderNameString = %q", got)
	}
	if got := HeaderNameString(nil); got != "" {
		t.Errorf("HeaderNameString(nil) = %q", got)
	}
}

func TestServerFamily(t *testing.T) {
	cases := map[string]string{
		"Apache/2.2.22 (Ubuntu)":    "Apache",
		"Apache-Coyote/1.1":         "Apache",
		"nginx/1.4.1":               "nginx",
		"nginx":                     "nginx",
		"Microsoft-IIS/8.0":         "Microsoft-IIS",
		"MochiWeb/1.0 (Any of you)": "MochiWeb",
		"lighttpd/1.4.28":           "lighttpd",
		"Jetty(8.1.7.v20120910)":    "Jetty",
		"gunicorn/18.0":             "gunicorn",
		"CustomServer/9 extra":      "CustomServer",
		"":                          "",
	}
	for in, want := range cases {
		if got := ServerFamily(in); got != want {
			t.Errorf("ServerFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBackendFamily(t *testing.T) {
	cases := map[string]string{
		"PHP/5.3.10-1ubuntu3.9":    "PHP",
		"ASP.NET":                  "ASP.NET",
		"Phusion Passenger 4.0.29": "Phusion Passenger",
		"Express":                  "Express",
		"Servlet/3.0":              "Servlet",
		"":                         "",
	}
	for in, want := range cases {
		if got := BackendFamily(in); got != want {
			t.Errorf("BackendFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTemplateFamily(t *testing.T) {
	cases := map[string]string{
		"WordPress 3.5.1": "WordPress",
		"Joomla! 1.5 - Open Source Content Management": "Joomla!",
		"Drupal 7 (http://drupal.org)":                 "Drupal",
		"":                                             "",
	}
	for in, want := range cases {
		if got := TemplateFamily(in); got != want {
			t.Errorf("TemplateFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVersionOf(t *testing.T) {
	cases := []struct{ value, product, want string }{
		{"Apache/2.2.22 (Ubuntu)", "Apache", "2.2.22"},
		{"nginx/1.4.1", "nginx", "1.4.1"},
		{"PHP/5.3.10-1ubuntu3.9", "PHP", "5.3.10"},
		{"WordPress 3.5.1", "WordPress", "3.5.1"},
		{"Microsoft-IIS/8.0", "Microsoft-IIS", "8.0"},
		{"Apache", "Apache", ""},
		{"nginx/1.4.1", "Apache", ""},
		{"Apache-Coyote/1.1", "Apache", ""}, // different product
	}
	for _, c := range cases {
		if got := VersionOf(c.value, c.product); got != c.want {
			t.Errorf("VersionOf(%q, %q) = %q, want %q", c.value, c.product, got, c.want)
		}
	}
}

func TestMatchTrackers(t *testing.T) {
	body := `<script src="http://edge.quantserve.com/quant.js"></script>
<script src="http://b.scorecardresearch.com/beacon.js"></script>`
	got := MatchTrackers(body)
	if len(got) != 2 || got[0] != "quantserve" || got[1] != "scorecardresearch" {
		t.Errorf("MatchTrackers = %v", got)
	}
	if got := MatchTrackers("plain page"); got != nil {
		t.Errorf("MatchTrackers(plain) = %v", got)
	}
}

func BenchmarkFromPage(b *testing.B) {
	p := samplePage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromPage(p)
	}
}
