package simhash_test

import (
	"fmt"

	"whowas/internal/simhash"
)

// Fingerprint two near-duplicate pages and one unrelated page: the
// near-duplicates land within a small Hamming distance, the unrelated
// page far away — the property WhoWas's level-2 clustering builds on.
func Example() {
	base := "welcome to the acme widget shop best prices on widgets gadgets and gizmos " +
		"browse our catalog of premium tools and accessories for every workshop " +
		"fast delivery friendly support and a thirty day return policy on all orders " +
		"join our newsletter for weekly deals and seasonal discount announcements"
	revised := base + " now with free shipping"
	other := "quarterly financial report with revenue figures and audit statements " +
		"prepared for the board of directors covering fiscal year twenty thirteen"

	a := simhash.Hash(base)
	b := simhash.Hash(revised)
	c := simhash.Hash(other)

	fmt.Println("near-duplicate distance small:", simhash.Distance(a, b) <= 10)
	fmt.Println("unrelated distance large:", simhash.Distance(a, c) > 20)
	fmt.Println("identical distance:", simhash.Distance(a, a))
	// Output:
	// near-duplicate distance small: true
	// unrelated distance large: true
	// identical distance: 0
}

// Fingerprints survive text round-trips through their hex form, so the
// store can persist them as strings.
func ExampleParseFingerprint() {
	f := simhash.Hash("some page content")
	parsed, err := simhash.ParseFingerprint(f.String())
	fmt.Println(err, parsed == f)
	// Output: <nil> true
}
