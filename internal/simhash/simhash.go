// Package simhash implements Charikar's similarity-preserving hash
// (simhash) over text documents, as used by WhoWas to fingerprint the
// HTML content returned by cloud-hosted web servers (§4, feature 10).
//
// Two near-duplicate documents produce fingerprints at low Hamming
// distance; WhoWas uses 96-bit fingerprints and a distance threshold
// chosen with the gap statistic (§5) to group pages into clusters.
//
// The implementation is self-contained: tokenization, 64-bit FNV-based
// feature hashing extended to 96 bits, weighted vector accumulation and
// sign quantization, plus Hamming-distance helpers.
package simhash

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"unicode"
)

// Bits is the fingerprint width used throughout WhoWas.
const Bits = 96

// Fingerprint is a 96-bit simhash value. Hi holds the most significant
// 32 bits in its low word; Lo holds the least significant 64 bits. The
// json tags are pinned because fingerprints travel inside records on
// the coord submit wire.
type Fingerprint struct {
	Hi uint32 `json:"hi"`
	Lo uint64 `json:"lo"`
}

// Zero is the fingerprint of the empty document.
var Zero = Fingerprint{}

// String renders the fingerprint as 24 lowercase hex digits.
func (f Fingerprint) String() string {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], f.Hi)
	binary.BigEndian.PutUint64(b[4:12], f.Lo)
	return hex.EncodeToString(b[:])
}

// ParseFingerprint parses the hex form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	if len(s) != 24 {
		return Zero, fmt.Errorf("simhash: fingerprint %q: want 24 hex digits, have %d", s, len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("simhash: fingerprint %q: %w", s, err)
	}
	return Fingerprint{
		Hi: binary.BigEndian.Uint32(raw[0:4]),
		Lo: binary.BigEndian.Uint64(raw[4:12]),
	}, nil
}

// Distance returns the Hamming distance between f and g, in [0, 96].
func Distance(f, g Fingerprint) int {
	return bits.OnesCount32(f.Hi^g.Hi) + bits.OnesCount64(f.Lo^g.Lo)
}

// Bit reports bit i of the fingerprint, with bit 0 the least
// significant bit of Lo and bit 95 the most significant bit of Hi.
func (f Fingerprint) Bit(i int) uint {
	switch {
	case i < 0 || i >= Bits:
		panic(fmt.Sprintf("simhash: bit index %d out of range", i))
	case i < 64:
		return uint(f.Lo>>uint(i)) & 1
	default:
		return uint(f.Hi>>uint(i-64)) & 1
	}
}

// SetBit returns a copy of f with bit i set to v (0 or 1).
func (f Fingerprint) SetBit(i int, v uint) Fingerprint {
	if i < 0 || i >= Bits {
		panic(fmt.Sprintf("simhash: bit index %d out of range", i))
	}
	if i < 64 {
		mask := uint64(1) << uint(i)
		if v == 0 {
			f.Lo &^= mask
		} else {
			f.Lo |= mask
		}
		return f
	}
	mask := uint32(1) << uint(i-64)
	if v == 0 {
		f.Hi &^= mask
	} else {
		f.Hi |= mask
	}
	return f
}

// FlipBits returns a copy of f with the given bit positions flipped.
// It is used by tests and the cloud simulator to construct documents
// at a known Hamming distance.
func (f Fingerprint) FlipBits(positions ...int) Fingerprint {
	for _, i := range positions {
		f = f.SetBit(i, 1-f.Bit(i))
	}
	return f
}

// featureHash maps one token to a 96-bit hash. It runs two independent
// FNV-1a style passes with different offset bases so the two halves are
// decorrelated.
func featureHash(token string) Fingerprint {
	const (
		prime64   = 1099511628211
		offset64a = 14695981039346656037
		offset64b = 0x9e3779b97f4a7c15 // golden-ratio offset for the second stream
	)
	a := uint64(offset64a)
	b := uint64(offset64b)
	for i := 0; i < len(token); i++ {
		c := uint64(token[i])
		a = (a ^ c) * prime64
		b = (b ^ (c + 0x5b)) * prime64
	}
	// Extra avalanche so short tokens spread across all 96 bits.
	a ^= a >> 33
	a *= 0xff51afd7ed558ccd
	a ^= a >> 33
	b ^= b >> 29
	b *= 0x94d049bb133111eb
	b ^= b >> 32
	return Fingerprint{Hi: uint32(b), Lo: a}
}

// Hasher accumulates weighted features and quantizes them into a
// Fingerprint. The zero value is ready to use.
type Hasher struct {
	sums [Bits]int64
	n    int
}

// Add accumulates one feature with the given positive weight.
func (h *Hasher) Add(token string, weight int) {
	if weight <= 0 || token == "" {
		return
	}
	fp := featureHash(token)
	w := int64(weight)
	// Branchless accumulation: bit b contributes +w when set, -w when
	// clear, i.e. (2*bit-1)*w. This loop dominates campaign CPU, so it
	// avoids per-bit branches.
	lo := fp.Lo
	for i := 0; i < 64; i++ {
		h.sums[i] += (int64(lo&1)<<1 - 1) * w
		lo >>= 1
	}
	hi := fp.Hi
	for i := 64; i < Bits; i++ {
		h.sums[i] += (int64(hi&1)<<1 - 1) * w
		hi >>= 1
	}
	h.n++
}

// Features reports how many features have been added.
func (h *Hasher) Features() int { return h.n }

// Fingerprint quantizes the accumulated sums: bit i is 1 iff the i-th
// component is positive. The empty hasher yields Zero.
func (h *Hasher) Fingerprint() Fingerprint {
	var f Fingerprint
	if h.n == 0 {
		return f
	}
	for i := 0; i < 64; i++ {
		if h.sums[i] > 0 {
			f.Lo |= uint64(1) << uint(i)
		}
	}
	for i := 0; i < 32; i++ {
		if h.sums[64+i] > 0 {
			f.Hi |= uint32(1) << uint(i)
		}
	}
	return f
}

// Hash computes the simhash of a document using word-shingle features.
// Tokens are lowercased alphanumeric runs; features are the tokens
// themselves plus 2-shingles, each with weight 1, which matches the
// webpage-comparison usage cited by the paper [26-28].
func Hash(text string) Fingerprint {
	var h Hasher
	tokens := Tokenize(text)
	for _, t := range tokens {
		h.Add(t, 1)
	}
	for i := 0; i+1 < len(tokens); i++ {
		h.Add(tokens[i]+" "+tokens[i+1], 1)
	}
	return h.Fingerprint()
}

// Tokenize splits text into lowercase alphanumeric tokens. It is
// exported so callers (feature extraction, tests) share one definition
// of a "word".
func Tokenize(text string) []string {
	var tokens []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			tokens = append(tokens, sb.String())
			sb.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			sb.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// ErrEmpty is returned by HashReaderChunks when no content was supplied.
var ErrEmpty = errors.New("simhash: empty document")

// HashChunks computes a simhash over a document supplied in chunks,
// for callers that stream bounded page bodies (the fetcher caps bodies
// at 512 KB). Chunk boundaries must fall on byte boundaries; tokens
// spanning chunks are handled by carrying the trailing partial token.
func HashChunks(chunks [][]byte) (Fingerprint, error) {
	if len(chunks) == 0 {
		return Zero, ErrEmpty
	}
	var sb strings.Builder
	for _, c := range chunks {
		sb.Write(c)
	}
	return Hash(sb.String()), nil
}
