package simhash

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestFingerprintJSONWireShape pins the fingerprint's wire shape
// inside a submitted Record: explicit "hi"/"lo" keys.
func TestFingerprintJSONWireShape(t *testing.T) {
	buf, err := json.Marshal(Fingerprint{Hi: 7, Lo: 9})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"hi", "lo"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Fingerprint wire keys = %v, want %v", got, want)
	}
	var out Fingerprint
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out != (Fingerprint{Hi: 7, Lo: 9}) {
		t.Errorf("round trip changed the fingerprint: %+v", out)
	}
}
