package simhash

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroFingerprint(t *testing.T) {
	if got := Hash(""); got != Zero {
		t.Errorf("Hash(\"\") = %v, want Zero", got)
	}
	if d := Distance(Zero, Zero); d != 0 {
		t.Errorf("Distance(Zero, Zero) = %d, want 0", d)
	}
}

func TestHashDeterministic(t *testing.T) {
	doc := "<html><head><title>Welcome to nginx</title></head><body>It works!</body></html>"
	a := Hash(doc)
	b := Hash(doc)
	if a != b {
		t.Fatalf("Hash not deterministic: %v != %v", a, b)
	}
	if a == Zero {
		t.Fatal("nonempty document hashed to Zero")
	}
}

func TestIdenticalDocsZeroDistance(t *testing.T) {
	doc := strings.Repeat("cloud web service deployment measurement ", 40)
	if d := Distance(Hash(doc), Hash(doc)); d != 0 {
		t.Errorf("identical docs at distance %d, want 0", d)
	}
}

func TestSimilarDocsCloserThanDissimilar(t *testing.T) {
	base := strings.Repeat("wordpress blog entry about measuring clouds over time with probes ", 30)
	similar := base + " one extra sentence appended at the end"
	dissimilar := strings.Repeat("completely different corpus of financial ledger entries and invoices ", 30)

	dSim := Distance(Hash(base), Hash(similar))
	dDiff := Distance(Hash(base), Hash(dissimilar))
	if dSim >= dDiff {
		t.Errorf("similar distance %d not below dissimilar distance %d", dSim, dDiff)
	}
	if dSim > 10 {
		t.Errorf("near-duplicate documents at distance %d, want <= 10", dSim)
	}
	if dDiff < 20 {
		t.Errorf("unrelated documents at distance %d, want >= 20", dDiff)
	}
}

func TestDistanceBounds(t *testing.T) {
	all := Fingerprint{Hi: 0xffffffff, Lo: ^uint64(0)}
	if d := Distance(Zero, all); d != Bits {
		t.Errorf("Distance(Zero, all-ones) = %d, want %d", d, Bits)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Symmetry.
	sym := func(ah uint32, al uint64, bh uint32, bl uint64) bool {
		a := Fingerprint{Hi: ah, Lo: al}
		b := Fingerprint{Hi: bh, Lo: bl}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	// Identity of indiscernibles.
	ident := func(h uint32, l uint64) bool {
		f := Fingerprint{Hi: h, Lo: l}
		return Distance(f, f) == 0
	}
	if err := quick.Check(ident, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}
	// Triangle inequality.
	tri := func(ah uint32, al uint64, bh uint32, bl uint64, ch uint32, cl uint64) bool {
		a := Fingerprint{Hi: ah, Lo: al}
		b := Fingerprint{Hi: bh, Lo: bl}
		c := Fingerprint{Hi: ch, Lo: cl}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(tri, cfg); err != nil {
		t.Errorf("triangle: %v", err)
	}
	// Range.
	rng := func(ah uint32, al uint64, bh uint32, bl uint64) bool {
		d := Distance(Fingerprint{Hi: ah, Lo: al}, Fingerprint{Hi: bh, Lo: bl})
		return d >= 0 && d <= Bits
	}
	if err := quick.Check(rng, cfg); err != nil {
		t.Errorf("range: %v", err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	prop := func(h uint32, l uint64) bool {
		f := Fingerprint{Hi: h, Lo: l}
		got, err := ParseFingerprint(f.String())
		return err == nil && got == f
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseFingerprintErrors(t *testing.T) {
	for _, bad := range []string{"", "abc", strings.Repeat("0", 23), strings.Repeat("0", 25), strings.Repeat("zz", 12)} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) succeeded, want error", bad)
		}
	}
}

func TestBitAndSetBit(t *testing.T) {
	var f Fingerprint
	for _, i := range []int{0, 1, 31, 32, 63, 64, 65, 95} {
		g := f.SetBit(i, 1)
		if g.Bit(i) != 1 {
			t.Errorf("SetBit(%d,1).Bit(%d) = 0", i, i)
		}
		if d := Distance(f, g); d != 1 {
			t.Errorf("flipping bit %d changed distance by %d, want 1", i, d)
		}
		if h := g.SetBit(i, 0); h != f {
			t.Errorf("SetBit(%d,0) did not restore fingerprint", i)
		}
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{-1, 96, 200} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			Zero.Bit(i)
		}()
	}
}

func TestFlipBitsDistance(t *testing.T) {
	prop := func(h uint32, l uint64, rawPos []uint8) bool {
		f := Fingerprint{Hi: h, Lo: l}
		seen := map[int]bool{}
		var pos []int
		for _, p := range rawPos {
			i := int(p) % Bits
			if !seen[i] {
				seen[i] = true
				pos = append(pos, i)
			}
		}
		g := f.FlipBits(pos...)
		return Distance(f, g) == len(pos)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"  multiple   spaces\tand\nnewlines ", []string{"multiple", "spaces", "and", "newlines"}},
		{"CamelCase stays one token", []string{"camelcase", "stays", "one", "token"}},
		{"mixed123 tokens 456", []string{"mixed123", "tokens", "456"}},
		{"<html lang=\"en\">", []string{"html", "lang", "en"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestHasherWeights(t *testing.T) {
	// A heavily weighted feature should dominate the fingerprint.
	var h Hasher
	h.Add("dominant", 1000)
	h.Add("noise", 1)
	dominant := featureHash("dominant")
	if d := Distance(h.Fingerprint(), dominant); d != 0 {
		t.Errorf("weighted hasher at distance %d from dominant feature, want 0", d)
	}
}

func TestHasherIgnoresInvalid(t *testing.T) {
	var h Hasher
	h.Add("", 5)
	h.Add("tok", 0)
	h.Add("tok", -3)
	if h.Features() != 0 {
		t.Errorf("invalid adds counted: %d features", h.Features())
	}
	if h.Fingerprint() != Zero {
		t.Error("invalid adds produced nonzero fingerprint")
	}
}

func TestHashChunksMatchesWhole(t *testing.T) {
	doc := []byte(strings.Repeat("whowas measures web deployments on iaas clouds ", 64))
	whole := Hash(string(doc))
	for _, n := range []int{1, 2, 7, 64} {
		var chunks [][]byte
		sz := (len(doc) + n - 1) / n
		for i := 0; i < len(doc); i += sz {
			end := i + sz
			if end > len(doc) {
				end = len(doc)
			}
			chunks = append(chunks, doc[i:end])
		}
		got, err := HashChunks(chunks)
		if err != nil {
			t.Fatalf("HashChunks(%d chunks): %v", n, err)
		}
		if got != whole {
			t.Errorf("HashChunks(%d chunks) = %v, want %v", n, got, whole)
		}
	}
}

func TestHashChunksEmpty(t *testing.T) {
	if _, err := HashChunks(nil); err != ErrEmpty {
		t.Errorf("HashChunks(nil) err = %v, want ErrEmpty", err)
	}
}

func TestFeatureHashDispersion(t *testing.T) {
	// Feature hashes of distinct tokens should differ in roughly half
	// their bits on average; check the mean is within a loose band.
	rng := rand.New(rand.NewSource(1))
	const trials = 200
	var total int
	for i := 0; i < trials; i++ {
		a := featureHash(randWord(rng))
		b := featureHash(randWord(rng))
		total += Distance(a, b)
	}
	mean := float64(total) / trials
	if mean < 36 || mean > 60 {
		t.Errorf("mean pairwise feature-hash distance %.1f outside [36,60]", mean)
	}
}

func randWord(rng *rand.Rand) string {
	n := 3 + rng.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func BenchmarkHash4KB(b *testing.B) {
	doc := strings.Repeat("typical landing page markup with navigation and footer text ", 70)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(doc)
	}
}

func BenchmarkDistance(b *testing.B) {
	f := Hash("page one")
	g := Hash("page two")
	for i := 0; i < b.N; i++ {
		Distance(f, g)
	}
}
