package simhash

import (
	"reflect"
	"testing"
)

// FuzzSimhash pins the fingerprint algebra on arbitrary text: hashing
// is deterministic and chunking-independent, the hex form round-trips,
// Hamming distance is a metric on the bit representation, and the
// bit accessors are mutually consistent.
func FuzzSimhash(f *testing.F) {
	f.Add("welcome to our web store", 3)
	f.Add("the quick brown fox jumps over the lazy dog", 9)
	f.Add("", 0)
	f.Add("日本語テキスト with mixed scripts 123", 5)
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", 1)
	f.Fuzz(func(t *testing.T, text string, split int) {
		fp := Hash(text)

		if again := Hash(text); again != fp {
			t.Fatalf("Hash is nondeterministic for %q", text)
		}
		if !reflect.DeepEqual(Tokenize(text), Tokenize(text)) {
			t.Fatalf("Tokenize is nondeterministic for %q", text)
		}

		parsed, err := ParseFingerprint(fp.String())
		if err != nil {
			t.Fatalf("ParseFingerprint(%q): %v", fp.String(), err)
		}
		if parsed != fp {
			t.Fatalf("fingerprint round-trip: %v -> %q -> %v", fp, fp.String(), parsed)
		}

		if d := Distance(fp, fp); d != 0 {
			t.Errorf("Distance(f, f) = %d, want 0", d)
		}
		other := Hash(text + " trailer")
		if Distance(fp, other) != Distance(other, fp) {
			t.Errorf("Distance is asymmetric")
		}
		if d := Distance(fp, other); d < 0 || d > Bits {
			t.Errorf("Distance = %d, outside [0, %d]", d, Bits)
		}

		for i := 0; i < Bits; i++ {
			if got := fp.SetBit(i, fp.Bit(i)); got != fp {
				t.Fatalf("SetBit(%d, Bit(%d)) changed the fingerprint", i, i)
			}
			if d := Distance(fp, fp.FlipBits(i)); d != 1 {
				t.Fatalf("flipping bit %d moved the distance by %d, want 1", i, d)
			}
		}

		// Hashing a chunked body must equal hashing the concatenation,
		// wherever the boundary falls (the fetcher streams bodies).
		b := []byte(text)
		cut := 0
		if len(b) > 0 {
			cut = (split%len(b) + len(b)) % len(b)
		}
		chunked, err := HashChunks([][]byte{b[:cut], b[cut:]})
		if err != nil {
			t.Fatalf("HashChunks: %v", err)
		}
		if chunked != fp {
			t.Errorf("HashChunks split at %d = %v, Hash = %v", cut, chunked, fp)
		}
	})
}
