// Package metrics is WhoWas's pipeline instrumentation library: a
// small, dependency-free set of atomic counters, gauges, lock-cheap
// latency histograms and per-stage timers, collected under a named
// Registry that snapshots to a plain struct and marshals to JSON.
//
// The platform (internal/core) owns one Registry per measurement
// deployment and threads it through the scanner, fetcher, store,
// clustering and cartography configs; the CLIs dump its snapshot with
// the -metrics flag. The paper's pipeline (§4, Figure 1) is a
// long-running measurement campaign — knowing per round how fast
// scanning ran, what failed, and where time went is what makes the
// ROADMAP's "as fast as the hardware allows" goal measurable at all.
//
// Every handle type tolerates a nil receiver as a no-op, and a nil
// *Registry hands out nil handles, so instrumented code needs no
// branching: constructing a component with a nil registry yields the
// uninstrumented fast path (components skip clock reads when their
// latency handles are nil). All operations are safe for concurrent
// use; hot-path updates are single atomic adds.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; a nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Stage accumulates wall time spent in one named pipeline stage across
// passes — the "where did the round go" ledger. A nil *Stage is a
// valid no-op.
type Stage struct {
	ns     atomic.Int64
	passes atomic.Int64
}

// Add records one pass of duration d.
func (s *Stage) Add(d time.Duration) {
	if s != nil {
		s.ns.Add(int64(d))
		s.passes.Add(1)
	}
}

// Time starts a pass and returns a stop function that records its
// elapsed time. Usage: defer st.Time()().
func (s *Stage) Time() func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.Add(time.Since(start)) }
}

// Total returns the accumulated time across passes.
func (s *Stage) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.ns.Load())
}

// Passes returns how many times the stage ran.
func (s *Stage) Passes() int64 {
	if s == nil {
		return 0
	}
	return s.passes.Load()
}

// numBuckets covers 1 µs .. ~2.3 days in powers of two; observations
// beyond either end clamp into the edge buckets.
const numBuckets = 38

// Histogram is a lock-free latency histogram over exponential
// (power-of-two microsecond) buckets. Observing is two atomic adds
// plus one per-bucket add; quantiles are estimated at snapshot time by
// linear interpolation within the covering bucket. A nil *Histogram is
// a valid no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a duration to its power-of-two microsecond bucket:
// bucket i covers [2^(i-1) µs, 2^i µs), with i clamped to the edges.
func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for sub-microsecond observations
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// bucketBound returns the exclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Duration(uint64(time.Microsecond) << uint(i))
}

// Observe records one duration. Negative observations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by walking the bucket
// cumulative counts and interpolating linearly inside the covering
// bucket. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketBound(i - 1)
			}
			upper := bucketBound(i)
			// The top bucket is open-ended; its observations clamp into
			// it, so interpolate toward the observed max instead.
			if i == numBuckets-1 {
				if mx := time.Duration(h.max.Load()); mx > upper {
					upper = mx
				}
			}
			// Position of the rank inside this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(n)
			est := lower + time.Duration(frac*float64(upper-lower))
			// Never report beyond the observed extremes.
			if mx := time.Duration(h.max.Load()); est > mx {
				est = mx
			}
			if mn := time.Duration(h.min.Load()); est < mn {
				est = mn
			}
			return est
		}
		cum += n
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Registry is a named collection of instruments. Handles are created
// on first use and cached, so components look them up once at
// construction and pay only atomic-add costs afterwards. A nil
// *Registry hands out nil (no-op) handles, which is how instrumentation
// is disabled wholesale.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   map[string]*Stage
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		stages:   make(map[string]*Stage),
	}
}

// Counter returns the named counter, creating it if needed. Returns
// nil (a no-op handle) when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Stage returns the named stage timer, creating it if needed.
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[name]
	if !ok {
		s = &Stage{}
		r.stages[name] = s
	}
	return s
}

// HistogramSnapshot is one histogram's point-in-time summary.
// Durations are reported in milliseconds for JSON readability.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// StageSnapshot is one stage timer's point-in-time summary.
type StageSnapshot struct {
	Passes  int64   `json:"passes"`
	TotalMS float64 `json:"total_ms"`
}

// Snapshot is a plain, JSON-marshalable copy of every instrument in a
// registry. Map keys marshal in sorted order, so snapshots of the same
// registry state are byte-identical.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     map[string]StageSnapshot     `json:"stages,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Snapshot copies the registry's current state. A nil registry yields
// a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		out.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			out.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			out.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			out.Histograms[name] = HistogramSnapshot{
				Count:  h.Count(),
				MeanMS: ms(h.Mean()),
				MinMS:  ms(h.Min()),
				MaxMS:  ms(h.Max()),
				P50MS:  ms(h.Quantile(0.50)),
				P95MS:  ms(h.Quantile(0.95)),
				P99MS:  ms(h.Quantile(0.99)),
			}
		}
	}
	if len(r.stages) > 0 {
		out.Stages = make(map[string]StageSnapshot, len(r.stages))
		for name, s := range r.stages {
			out.Stages[name] = StageSnapshot{Passes: s.Passes(), TotalMS: ms(s.Total())}
		}
	}
	return out
}

// Names returns every registered instrument name, sorted; useful for
// diagnostics and tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.stages))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.hists {
		out = append(out, name)
	}
	for name := range r.stages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the registry snapshot as indented JSON. Nil-safe:
// a nil registry writes the zero snapshot ("{}") — the lint suite's
// call-graph delegation check verifies this through Snapshot's guard.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
