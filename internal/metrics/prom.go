// Prometheus text exposition for registry snapshots: the ops server's
// /metrics/prom endpoint renders a Snapshot in the format any
// Prometheus-compatible scraper ingests, without taking a client
// dependency. Output is sorted by metric name, so the same snapshot
// always renders byte-identically.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName maps a registry instrument name ("scanner.probe_latency")
// to a Prometheus metric name ("whowas_scanner_probe_latency").
func promName(ns, name string) string {
	s := strings.NewReplacer(".", "_", "-", "_", " ", "_").Replace(name)
	if ns == "" {
		return s
	}
	return ns + "_" + s
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format under the given namespace prefix (the ops server uses
// "whowas"). Counters gain the conventional _total suffix, latency
// histograms render as summaries in seconds, and stage timers render
// as a pair of counters (seconds spent, passes).
func (s Snapshot) WriteProm(w io.Writer, ns string) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(ns, name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(ns, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(ns, name) + "_seconds"
		secs := func(ms float64) float64 { return ms / 1000 }
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", h.P50MS}, {"0.95", h.P95MS}, {"0.99", h.P99MS}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, q.q, secs(q.v)); err != nil {
				return err
			}
		}
		sum := secs(h.MeanMS) * float64(h.Count)
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, sum, n, h.Count); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Stages) {
		st := s.Stages[name]
		n := promName(ns, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_seconds_total counter\n%s_seconds_total %g\n",
			n, n, st.TotalMS/1000); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_passes_total counter\n%s_passes_total %d\n",
			n, n, st.Passes); err != nil {
			return err
		}
	}
	return nil
}
