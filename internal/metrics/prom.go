// Prometheus text exposition for registry snapshots: the ops server's
// /metrics/prom endpoint renders a Snapshot in the format any
// Prometheus-compatible scraper ingests, without taking a client
// dependency. Output is sorted by metric name, so the same snapshot
// always renders byte-identically. WritePromSeries extends the format
// to several label-distinguished snapshots per metric — the
// coordinator exposes every worker's instruments under one scrape with
// a worker label this way.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName maps a registry instrument name ("scanner.probe_latency")
// to a Prometheus metric name ("whowas_scanner_probe_latency").
func promName(ns, name string) string {
	s := strings.NewReplacer(".", "_", "-", "_", " ", "_").Replace(name)
	if ns == "" {
		return s
	}
	return ns + "_" + s
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Label is one Prometheus label pair attached to every sample of a
// labeled snapshot.
type Label struct {
	Key   string
	Value string
}

// LabeledSnapshot pairs a label set with a snapshot. A series with no
// labels renders bare samples, so WriteProm is the single-element
// special case.
type LabeledSnapshot struct {
	Labels []Label
	Snap   Snapshot
}

// labelEscaper escapes label values per the text exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels formats a brace-enclosed label list, or "" when empty.
// Extra labels (the summary quantile) append after the series labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, labelEscaper.Replace(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format under the given namespace prefix (the ops server uses
// "whowas"). Counters gain the conventional _total suffix, latency
// histograms render as summaries in seconds, and stage timers render
// as a pair of counters (seconds spent, passes).
func (s Snapshot) WriteProm(w io.Writer, ns string) error {
	return WritePromSeries(w, ns, []LabeledSnapshot{{Snap: s}})
}

// WritePromSeries renders several label-distinguished snapshots as one
// exposition: each metric name appears once (with a single # TYPE
// line) followed by one sample per series that carries it, in series
// order. This is what Prometheus requires — repeating TYPE lines per
// worker would be a format violation — and what the coordinator's
// /metrics/prom serves: the fleet total first (no labels), then each
// worker's snapshot under a worker label.
func WritePromSeries(w io.Writer, ns string, series []LabeledSnapshot) error {
	// Collect each kind's name set across every series, then emit
	// grouped by name.
	counterNames := map[string]bool{}
	gaugeNames := map[string]bool{}
	histNames := map[string]bool{}
	stageNames := map[string]bool{}
	for _, ls := range series {
		for name := range ls.Snap.Counters {
			counterNames[name] = true
		}
		for name := range ls.Snap.Gauges {
			gaugeNames[name] = true
		}
		for name := range ls.Snap.Histograms {
			histNames[name] = true
		}
		for name := range ls.Snap.Stages {
			stageNames[name] = true
		}
	}
	for _, name := range sortedKeys(counterNames) {
		n := promName(ns, name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", n); err != nil {
			return err
		}
		for _, ls := range series {
			v, ok := ls.Snap.Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", n, renderLabels(ls.Labels), v); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(gaugeNames) {
		n := promName(ns, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", n); err != nil {
			return err
		}
		for _, ls := range series {
			v, ok := ls.Snap.Gauges[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", n, renderLabels(ls.Labels), v); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(histNames) {
		n := promName(ns, name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, ls := range series {
			h, ok := ls.Snap.Histograms[name]
			if !ok {
				continue
			}
			secs := func(ms float64) float64 { return ms / 1000 }
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", h.P50MS}, {"0.95", h.P95MS}, {"0.99", h.P99MS}} {
				if _, err := fmt.Fprintf(w, "%s%s %g\n", n,
					renderLabels(ls.Labels, Label{Key: "quantile", Value: q.q}), secs(q.v)); err != nil {
					return err
				}
			}
			sum := secs(h.MeanMS) * float64(h.Count)
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				n, renderLabels(ls.Labels), sum, n, renderLabels(ls.Labels), h.Count); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(stageNames) {
		n := promName(ns, name)
		if err := writeStageSeries(w, n+"_seconds_total", series, name, func(st StageSnapshot) string {
			return fmt.Sprintf("%g", st.TotalMS/1000)
		}); err != nil {
			return err
		}
		if err := writeStageSeries(w, n+"_passes_total", series, name, func(st StageSnapshot) string {
			return fmt.Sprintf("%d", st.Passes)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeStageSeries emits one of a stage timer's two counter metrics
// (seconds, passes) across every series carrying the stage.
func writeStageSeries(w io.Writer, n string, series []LabeledSnapshot, name string,
	value func(StageSnapshot) string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", n); err != nil {
		return err
	}
	for _, ls := range series {
		st, ok := ls.Snap.Stages[name]
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", n, renderLabels(ls.Labels), value(st)); err != nil {
			return err
		}
	}
	return nil
}
