package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("y")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	s := r.Stage("w")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	s.Add(time.Second)
	s.Time()()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || s.Passes() != 0 {
		t.Error("nil handles accumulated state")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("nil histogram reported non-zero stats")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Histograms != nil {
		t.Error("nil registry snapshot not empty")
	}
	if r.Names() != nil {
		t.Error("nil registry has names")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 1..1000 ms, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Mean(), 500500*time.Microsecond; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if h.Min() != time.Millisecond || h.Max() != time.Second {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Power-of-two buckets bound the relative error of a quantile
	// estimate by 2x; check p50/p95/p99 land within that envelope.
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo, hi := c.want/2, c.want*2
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	// Quantiles are clamped to the observed range.
	if h.Quantile(1.0) > h.Max() {
		t.Errorf("q1.0 = %v beyond max %v", h.Quantile(1.0), h.Max())
	}
	if h.Quantile(0.0001) < h.Min() {
		t.Errorf("q0.0001 = %v below min %v", h.Quantile(0.0001), h.Min())
	}
}

func TestHistogramEdgeObservations(t *testing.T) {
	h := newHistogram()
	h.Observe(-time.Second) // clamps to 0
	h.Observe(0)
	h.Observe(100 * time.Hour) // clamps into the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("min = %v, want 0", h.Min())
	}
	if h.Max() != 100*time.Hour {
		t.Errorf("max = %v", h.Max())
	}
	if q := h.Quantile(1.0); q != 100*time.Hour {
		t.Errorf("q1.0 = %v, want clamp to max", q)
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		0, time.Nanosecond, time.Microsecond, 10 * time.Microsecond,
		time.Millisecond, 100 * time.Millisecond, time.Second, time.Minute,
		time.Hour, 1000 * time.Hour,
	} {
		i := bucketIndex(d)
		if i < prev {
			t.Fatalf("bucketIndex(%v) = %d < previous %d", d, i, prev)
		}
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", d, i)
		}
		prev = i
	}
}

func TestStage(t *testing.T) {
	r := NewRegistry()
	s := r.Stage("scan")
	s.Add(2 * time.Second)
	s.Add(3 * time.Second)
	if s.Passes() != 2 || s.Total() != 5*time.Second {
		t.Errorf("stage = %d passes / %v", s.Passes(), s.Total())
	}
	stop := s.Time()
	stop()
	if s.Passes() != 3 {
		t.Errorf("Time() did not record a pass")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("scanner.probes").Add(42)
	r.Gauge("store.open_rounds").Set(1)
	r.Histogram("fetcher.get_latency").Observe(30 * time.Millisecond)
	r.Stage("core.scan").Add(time.Second)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v\n%s", err, buf.String())
	}
	if snap.Counters["scanner.probes"] != 42 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["store.open_rounds"] != 1 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	hs := snap.Histograms["fetcher.get_latency"]
	if hs.Count != 1 || hs.MaxMS != 30 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if math.Abs(hs.MeanMS-30) > 1e-9 {
		t.Errorf("mean_ms = %v", hs.MeanMS)
	}
	ss := snap.Stages["core.scan"]
	if ss.Passes != 1 || ss.TotalMS != 1000 {
		t.Errorf("stage snapshot = %+v", ss)
	}

	names := r.Names()
	want := []string{"core.scan", "fetcher.get_latency", "scanner.probes", "store.open_rounds"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestConcurrentUpdates exercises every instrument from many
// goroutines; run with -race to validate the lock-free hot paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			s := r.Stage("s")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
				s.Add(time.Microsecond)
				if i%500 == 0 {
					_ = r.Snapshot() // concurrent readers are allowed
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Stage("s").Passes(); got != workers*perWorker {
		t.Errorf("stage passes = %d, want %d", got, workers*perWorker)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += time.Microsecond
		}
	})
}
