package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWritePromRendersAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("scanner.probes").Add(123)
	r.Gauge("core.active-workers").Set(7)
	h := r.Histogram("fetcher.get_latency")
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	r.Stage("core.scan").Add(1500 * time.Millisecond)

	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb, "whowas"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE whowas_scanner_probes_total counter",
		"whowas_scanner_probes_total 123",
		"# TYPE whowas_core_active_workers gauge",
		"whowas_core_active_workers 7",
		"# TYPE whowas_fetcher_get_latency_seconds summary",
		`whowas_fetcher_get_latency_seconds{quantile="0.99"}`,
		"whowas_fetcher_get_latency_seconds_count 100",
		"# TYPE whowas_core_scan_seconds_total counter",
		"whowas_core_scan_seconds_total 1.5",
		"whowas_core_scan_passes_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "whowas_scanner.probes") {
		t.Error("unsanitized metric name in exposition")
	}

	// Deterministic rendering: same snapshot, same bytes.
	var sb2 strings.Builder
	if err := r.Snapshot().WriteProm(&sb2, "whowas"); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("two renders of the same snapshot differ")
	}
}

func TestWritePromEmptySnapshot(t *testing.T) {
	var sb strings.Builder
	if err := (Snapshot{}).WriteProm(&sb, "whowas"); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", sb.String())
	}
}
