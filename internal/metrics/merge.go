// Fleet-side snapshot arithmetic. Distributed campaigns (internal/
// coord) split one measurement across worker processes, each with its
// own Registry; the coordinator folds the workers' reported Snapshots
// into a single fleet-total view with MergeSnapshots. Merging plain
// snapshots — not live registries — keeps the wire format the thing
// being combined, so a fleet total can be computed from heartbeat
// payloads alone.
package metrics

// MergeSnapshots folds any number of snapshots into one combined
// snapshot. Counters, gauges, and stage timers add; histograms combine
// exactly for count/sum/min/max, while quantiles — which cannot be
// recovered from summaries — are approximated by the count-weighted
// mean of the per-snapshot quantiles. That approximation is faithful
// when workers see similar latency distributions (the homogeneous-
// fleet case) and clearly labeled as fleet-level in the docs; per-
// worker snapshots stay available for exact figures.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		for name, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]int64)
			}
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			if h.Count == 0 {
				continue
			}
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[name] = mergeHist(out.Histograms[name], h)
		}
		for name, st := range s.Stages {
			if out.Stages == nil {
				out.Stages = make(map[string]StageSnapshot)
			}
			acc := out.Stages[name]
			acc.Passes += st.Passes
			acc.TotalMS += st.TotalMS
			out.Stages[name] = acc
		}
	}
	return out
}

// mergeHist folds one non-empty histogram summary into an accumulator.
func mergeHist(acc, h HistogramSnapshot) HistogramSnapshot {
	if acc.Count == 0 {
		return h
	}
	total := acc.Count + h.Count
	wa := float64(acc.Count) / float64(total)
	wh := float64(h.Count) / float64(total)
	out := HistogramSnapshot{
		Count:  total,
		MeanMS: acc.MeanMS*wa + h.MeanMS*wh,
		MinMS:  acc.MinMS,
		MaxMS:  acc.MaxMS,
		P50MS:  acc.P50MS*wa + h.P50MS*wh,
		P95MS:  acc.P95MS*wa + h.P95MS*wh,
		P99MS:  acc.P99MS*wa + h.P99MS*wh,
	}
	if h.MinMS < out.MinMS {
		out.MinMS = h.MinMS
	}
	if h.MaxMS > out.MaxMS {
		out.MaxMS = h.MaxMS
	}
	return out
}
