package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMergeSnapshotsSums(t *testing.T) {
	a := NewRegistry()
	a.Counter("scanner.probes").Add(100)
	a.Gauge("core.active").Set(2)
	a.Stage("core.scan").Add(time.Second)
	b := NewRegistry()
	b.Counter("scanner.probes").Add(50)
	b.Counter("fetcher.fetched").Add(7)
	b.Gauge("core.active").Set(3)
	b.Stage("core.scan").Add(2 * time.Second)

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if got := m.Counters["scanner.probes"]; got != 150 {
		t.Errorf("scanner.probes = %d, want 150", got)
	}
	if got := m.Counters["fetcher.fetched"]; got != 7 {
		t.Errorf("fetcher.fetched = %d, want 7", got)
	}
	if got := m.Gauges["core.active"]; got != 5 {
		t.Errorf("core.active = %d, want 5", got)
	}
	st := m.Stages["core.scan"]
	if st.Passes != 2 || math.Abs(st.TotalMS-3000) > 1e-9 {
		t.Errorf("core.scan = %+v, want 2 passes / 3000ms", st)
	}
}

func TestMergeSnapshotsHistograms(t *testing.T) {
	a := NewRegistry()
	ha := a.Histogram("probe")
	for i := 0; i < 100; i++ {
		ha.Observe(10 * time.Millisecond)
	}
	b := NewRegistry()
	hb := b.Histogram("probe")
	for i := 0; i < 300; i++ {
		hb.Observe(30 * time.Millisecond)
	}

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	h := m.Histograms["probe"]
	if h.Count != 400 {
		t.Fatalf("count = %d, want 400", h.Count)
	}
	// Weighted mean: (100*10 + 300*30) / 400 = 25ms.
	if math.Abs(h.MeanMS-25) > 1 {
		t.Errorf("mean = %gms, want ~25ms", h.MeanMS)
	}
	if h.MinMS > 11 || h.MinMS <= 0 {
		t.Errorf("min = %gms, want ~10ms", h.MinMS)
	}
	if h.MaxMS < 29 {
		t.Errorf("max = %gms, want ~30ms", h.MaxMS)
	}
	// Quantiles are count-weighted approximations; with a 1:3 split
	// the merged p50 must land between the two inputs, closer to b.
	if h.P50MS <= a.Snapshot().Histograms["probe"].P50MS || h.P50MS > h.MaxMS {
		t.Errorf("p50 = %gms out of range", h.P50MS)
	}
}

func TestMergeSnapshotsEmptyAndZero(t *testing.T) {
	if m := MergeSnapshots(); m.Counters != nil || m.Histograms != nil {
		t.Errorf("merge of nothing not zero: %+v", m)
	}
	r := NewRegistry()
	r.Counter("c").Inc()
	m := MergeSnapshots(Snapshot{}, r.Snapshot(), Snapshot{})
	if m.Counters["c"] != 1 {
		t.Errorf("zero snapshots perturbed merge: %+v", m)
	}
	// Empty histograms (count 0) must not drag the min to zero.
	empty := Snapshot{Histograms: map[string]HistogramSnapshot{"h": {}}}
	full := NewRegistry()
	full.Histogram("h").Observe(5 * time.Millisecond)
	m = MergeSnapshots(empty, full.Snapshot())
	if h := m.Histograms["h"]; h.Count != 1 || h.MinMS <= 0 {
		t.Errorf("empty histogram polluted merge: %+v", h)
	}
}

func TestWritePromSeriesLabels(t *testing.T) {
	w0 := NewRegistry()
	w0.Counter("scanner.probes").Add(10)
	w0.Histogram("probe").Observe(time.Millisecond)
	w0.Stage("scan").Add(time.Second)
	w1 := NewRegistry()
	w1.Counter("scanner.probes").Add(20)

	var sb strings.Builder
	err := WritePromSeries(&sb, "whowas", []LabeledSnapshot{
		{Snap: MergeSnapshots(w0.Snapshot(), w1.Snapshot())},
		{Labels: []Label{{Key: "worker", Value: "w0"}}, Snap: w0.Snapshot()},
		{Labels: []Label{{Key: "worker", Value: "w1"}}, Snap: w1.Snapshot()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"whowas_scanner_probes_total 30",
		`whowas_scanner_probes_total{worker="w0"} 10`,
		`whowas_scanner_probes_total{worker="w1"} 20`,
		`whowas_probe_seconds{worker="w0",quantile="0.5"}`,
		`whowas_probe_seconds_count{worker="w0"} 1`,
		`whowas_scan_seconds_total{worker="w0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A metric name must carry exactly one TYPE line no matter how
	// many series report it — repeating it is a format violation.
	if n := strings.Count(out, "# TYPE whowas_scanner_probes_total counter"); n != 1 {
		t.Errorf("TYPE line for shared counter appears %d times, want 1:\n%s", n, out)
	}
}

func TestWritePromSeriesMatchesWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(4)
	r.Histogram("h").Observe(2 * time.Millisecond)
	r.Stage("s").Add(time.Second)
	snap := r.Snapshot()

	var a, b strings.Builder
	if err := snap.WriteProm(&a, "whowas"); err != nil {
		t.Fatal(err)
	}
	if err := WritePromSeries(&b, "whowas", []LabeledSnapshot{{Snap: snap}}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("single unlabeled series diverges from WriteProm:\n%q\nvs\n%q", a.String(), b.String())
	}
}

func TestWritePromSeriesEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	var sb strings.Builder
	err := WritePromSeries(&sb, "", []LabeledSnapshot{
		{Labels: []Label{{Key: "worker", Value: "a\"b\\c\nd"}}, Snap: r.Snapshot()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `worker="a\"b\\c\nd"`) {
		t.Errorf("label value not escaped: %q", sb.String())
	}
}
