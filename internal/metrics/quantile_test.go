package metrics

import (
	"testing"
	"time"
)

// Histogram quantile edge cases: empty, single-observation, and
// all-observations-in-one-bucket interpolation.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram extremes: min=%v max=%v mean=%v", h.Min(), h.Max(), h.Mean())
	}
	// A registry-created histogram behaves the same.
	r := NewRegistry()
	if got := r.Histogram("h").Quantile(0.5); got != 0 {
		t.Errorf("fresh registry histogram Quantile = %v", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := newHistogram()
	obs := 3 * time.Millisecond
	h.Observe(obs)
	// With one observation, every quantile is clamped to it: the
	// interpolated estimate may land anywhere in the covering bucket,
	// but the min/max clamps force the exact value.
	for _, q := range []float64{0.001, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != obs {
			t.Errorf("single-observation Quantile(%v) = %v, want %v", q, got, obs)
		}
	}
	if h.Min() != obs || h.Max() != obs {
		t.Errorf("min=%v max=%v, want both %v", h.Min(), h.Max(), obs)
	}
}

func TestQuantileAllInOneBucketInterpolates(t *testing.T) {
	// 1500µs and 1900µs both land in the (1024µs, 2048µs] bucket. The
	// interpolation inside the bucket is linear in rank, but the
	// min/max clamps must bound every estimate by the observed
	// extremes, and higher quantiles can never rank below lower ones.
	h := newHistogram()
	lo, hi := 1500*time.Microsecond, 1900*time.Microsecond
	for i := 0; i < 50; i++ {
		h.Observe(lo)
		h.Observe(hi)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 1} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v outside observed [%v, %v]", q, got, lo, hi)
		}
		if got < prev {
			t.Errorf("Quantile(%v) = %v < previous quantile %v", q, got, prev)
		}
		prev = got
	}
	if got := h.Quantile(1); got != hi {
		t.Errorf("Quantile(1) = %v, want observed max %v", got, hi)
	}
}

func TestQuantileSubMicrosecondBucket(t *testing.T) {
	// Sub-microsecond observations land in bucket 0 with lower bound
	// 0; the min clamp keeps estimates at the observed value.
	h := newHistogram()
	h.Observe(300 * time.Nanosecond)
	h.Observe(700 * time.Nanosecond)
	for _, q := range []float64{0.5, 1} {
		got := h.Quantile(q)
		if got < 300*time.Nanosecond || got > 700*time.Nanosecond {
			t.Errorf("Quantile(%v) = %v outside [300ns, 700ns]", q, got)
		}
	}
}

func TestQuantileTopBucketClampsToMax(t *testing.T) {
	// Observations beyond the last bucket bound clamp into the
	// open-ended top bucket; quantiles interpolate toward the observed
	// max rather than the bucket's nominal bound.
	h := newHistogram()
	huge := 100 * 24 * time.Hour
	h.Observe(huge)
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != huge {
			t.Errorf("top-bucket Quantile(%v) = %v, want %v", q, got, huge)
		}
	}
}
