package faults

import (
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/netsim"
	"whowas/internal/trace"
)

// Options wires an Injector to its environment. All fields are
// optional: a nil Day pins the scenario to day 0, a nil RegionOf
// disables regional matching (regional blackouts then never fire), and
// a nil Metrics disables the faults.* counters.
type Options struct {
	// Day supplies the current campaign day (netsim.Network.Day for
	// simulated campaigns).
	Day func() int
	// RegionOf maps an address to its cloud region, for regional
	// blackouts (cloudsim.Cloud.RegionOf).
	RegionOf func(ipaddr.Addr) string
	// Metrics receives the injection counters: faults.dials_dropped,
	// faults.blackout_drops, faults.flap_drops, faults.dials_delayed,
	// faults.resets, faults.stalls, faults.truncations.
	Metrics *metrics.Registry
}

// Injector wraps a Dialer with a Scenario's faults. Safe for
// concurrent use. Fault decisions are deterministic per (ip, port,
// day, attempt): the attempt index for a key advances on every dial of
// that key, so a retry of a lost dial rolls a fresh — but reproducible
// — decision, exactly like the §4 retry experiment's second probe.
type Injector struct {
	inner    netsim.Dialer
	sc       Scenario
	day      func() int
	regionOf func(ipaddr.Addr) string
	seed     uint64

	mu       sync.Mutex
	lastDay  int
	attempts map[dialKey]uint64

	mDropped   *metrics.Counter // dials lost to steady loss or ramps
	mBlackout  *metrics.Counter // dials swallowed by a blackout
	mFlapped   *metrics.Counter // dials to an IP inside its flap window
	mDelayed   *metrics.Counter // dials delayed by latency injection
	mResets    *metrics.Counter // connections armed with a mid-stream reset
	mStalls    *metrics.Counter // connections armed with a stalled first read
	mTruncated *metrics.Counter // connections armed with a truncated stream
}

type dialKey struct {
	ip   ipaddr.Addr
	port int
	day  int
}

// Wrap builds an injector over the given dialer.
func Wrap(inner netsim.Dialer, sc Scenario, opts Options) (*Injector, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: nil dialer")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	i := &Injector{
		inner:    inner,
		sc:       sc.WithDefaults(),
		day:      opts.Day,
		regionOf: opts.RegionOf,
		seed:     mix64(uint64(sc.Seed) ^ 0xd6e8feb86659fd93),
		lastDay:  -1,
		attempts: make(map[dialKey]uint64),
	}
	if i.day == nil {
		i.day = func() int { return 0 }
	}
	if r := opts.Metrics; r != nil {
		i.mDropped = r.Counter("faults.dials_dropped")
		i.mBlackout = r.Counter("faults.blackout_drops")
		i.mFlapped = r.Counter("faults.flap_drops")
		i.mDelayed = r.Counter("faults.dials_delayed")
		i.mResets = r.Counter("faults.resets")
		i.mStalls = r.Counter("faults.stalls")
		i.mTruncated = r.Counter("faults.truncations")
	}
	return i, nil
}

// Scenario returns the injector's resolved scenario.
func (i *Injector) Scenario() Scenario { return i.sc }

// Salts separating the fault families' hash streams.
const (
	saltLoss = iota + 1
	saltJitter
	saltReset
	saltStall
	saltTruncate
	saltFlap
	saltFlapPhase
)

// mix64 is the splitmix64 finalizer, the same mixing the cloud
// simulator uses for its per-day hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a deterministic value in [0,1000) for one fault family
// at one dial attempt.
func (i *Injector) roll(salt uint64, ip ipaddr.Addr, port, day int, attempt uint64) uint64 {
	h := mix64(i.seed ^ salt<<56 ^ uint64(ip))
	h = mix64(h ^ uint64(port)<<32 ^ uint64(uint32(day)))
	h = mix64(h ^ attempt)
	return h % 1000
}

// nextAttempt returns this dial's attempt index for its (ip, port,
// day) key — 0 for the first dial, 1 for the first retry, and so on.
// Stale keys are pruned when the day advances, bounding the map to one
// day's working set.
func (i *Injector) nextAttempt(ip ipaddr.Addr, port, day int) uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	if day != i.lastDay {
		i.attempts = make(map[dialKey]uint64)
		i.lastDay = day
	}
	k := dialKey{ip: ip, port: port, day: day}
	n := i.attempts[k]
	i.attempts[k] = n + 1
	return n
}

// lossPerMille is the effective dial loss on a day: the steady rate
// plus any active loss-ramp episodes, clamped to 1000.
func (i *Injector) lossPerMille(day int) int {
	pm := i.sc.DialLossPerMille
	for idx := range i.sc.Episodes {
		e := &i.sc.Episodes[idx]
		if e.Kind == KindLossRamp && e.active(day) {
			pm += e.rampLoss(day)
		}
	}
	if pm > 1000 {
		pm = 1000
	}
	return pm
}

// extraLatency is the active slow-network episodes' added connect
// latency on a day.
func (i *Injector) extraLatency(day int) time.Duration {
	var ms int
	for idx := range i.sc.Episodes {
		e := &i.sc.Episodes[idx]
		if e.Kind == KindSlowNetwork && e.active(day) {
			ms += e.ExtraLatencyMS
		}
	}
	return time.Duration(ms) * time.Millisecond
}

// blackout returns the active blackout episode covering (ip, day), or
// nil.
func (i *Injector) blackout(ip ipaddr.Addr, day int) *Episode {
	for idx := range i.sc.Episodes {
		e := &i.sc.Episodes[idx]
		if e.Kind != KindBlackout || !e.active(day) {
			continue
		}
		if e.Region == "" {
			return e
		}
		if i.regionOf != nil && i.regionOf(ip) == e.Region {
			return e
		}
	}
	return nil
}

// flapping reports whether ip is inside its flap down-window on day.
// Flappy IPs are selected by a day-independent hash; each one's window
// phase is seeded so flaps stagger across the population.
func (i *Injector) flapping(ip ipaddr.Addr, day int) bool {
	if i.sc.FlapPerMille <= 0 {
		return false
	}
	if i.roll(saltFlap, ip, 0, 0, 0) >= uint64(i.sc.FlapPerMille) {
		return false
	}
	phase := int(i.roll(saltFlapPhase, ip, 0, 0, 0)) % i.sc.FlapPeriodDays
	return (day+phase)%i.sc.FlapPeriodDays < i.sc.FlapDownDays
}

// dialDelay is the deterministic injected connect latency for one
// attempt: base latency ± jitter plus slow-network extras.
func (i *Injector) dialDelay(ip ipaddr.Addr, port, day int, attempt uint64) time.Duration {
	d := time.Duration(i.sc.DialLatencyMS)*time.Millisecond + i.extraLatency(day)
	if j := i.sc.DialJitterMS; j > 0 {
		// Roll in [0, 2j] ms, recentered to ±j around the base.
		r := i.roll(saltJitter, ip, port, day, attempt)
		d += time.Duration(int(r%uint64(2*j+1))-j) * time.Millisecond
	}
	if d < 0 {
		d = 0
	}
	return d
}

// DialContext implements netsim.Dialer, applying the scenario before
// and after delegating to the wrapped dialer. Non-address targets pass
// straight through.
func (i *Injector) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return i.inner.DialContext(ctx, network, address)
	}
	ip, err := ipaddr.ParseAddr(host)
	if err != nil {
		return i.inner.DialContext(ctx, network, address)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return i.inner.DialContext(ctx, network, address)
	}
	day := i.day()
	attempt := i.nextAttempt(ip, port, day)

	if e := i.blackout(ip, day); e != nil {
		i.mBlackout.Inc()
		annotate(ctx, "blackout")
		if e.Hold {
			// Dropped-SYN semantics: the dial burns the caller's whole
			// timeout, like a real unanswered probe.
			<-ctx.Done()
		}
		return nil, netsim.NewTimeoutError(address)
	}
	if i.flapping(ip, day) {
		i.mFlapped.Inc()
		annotate(ctx, "flap")
		return nil, netsim.NewTimeoutError(address)
	}
	if pm := i.lossPerMille(day); pm > 0 && i.roll(saltLoss, ip, port, day, attempt) < uint64(pm) {
		i.mDropped.Inc()
		annotate(ctx, "dial_loss")
		return nil, netsim.NewTimeoutError(address)
	}
	if d := i.dialDelay(ip, port, day, attempt); d > 0 {
		i.mDelayed.Inc()
		annotate(ctx, "delay")
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, netsim.NewTimeoutError(address)
		}
	}

	conn, err := i.inner.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}

	// Stream faults, one roll per family per accepted connection; the
	// first match wins so a connection carries at most one.
	sc := &i.sc
	switch {
	case sc.ResetPerMille > 0 && i.roll(saltReset, ip, port, day, attempt) < uint64(sc.ResetPerMille):
		i.mResets.Inc()
		annotate(ctx, "reset")
		return newFaultConn(conn, modeReset, sc.ResetAfterBytes, 0), nil
	case sc.StallPerMille > 0 && i.roll(saltStall, ip, port, day, attempt) < uint64(sc.StallPerMille):
		i.mStalls.Inc()
		annotate(ctx, "stall")
		return newFaultConn(conn, modeStall, 0, time.Duration(sc.StallMS)*time.Millisecond), nil
	case sc.TruncatePerMille > 0 && i.roll(saltTruncate, ip, port, day, attempt) < uint64(sc.TruncatePerMille):
		i.mTruncated.Inc()
		annotate(ctx, "truncate")
		return newFaultConn(conn, modeTruncate, sc.TruncateAfterBytes, 0), nil
	}
	return conn, nil
}

// annotate marks the span that initiated this dial — the scanner and
// fetcher thread their sampled per-IP spans through the dial context —
// with the injected fault kind. Unsampled dials carry no span and the
// call no-ops.
func annotate(ctx context.Context, kind string) {
	trace.FromContext(ctx).SetAttr(trace.Bool("fault."+kind, true))
}

// Stream fault modes.
const (
	modeReset    = iota // error out after the byte budget
	modeStall           // block the first read for the stall duration
	modeTruncate        // clean EOF after the byte budget
)

// resetError is the injected mid-stream reset, shaped like the
// kernel's ECONNRESET so transport code classifies it as transient.
type resetError struct{}

func (resetError) Error() string   { return "read: connection reset by peer" }
func (resetError) Timeout() bool   { return false }
func (resetError) Temporary() bool { return true }

// faultConn wraps a connection with one armed stream fault.
type faultConn struct {
	net.Conn
	mode   int
	budget int           // remaining bytes before reset/truncate
	stall  time.Duration // first-read stall
	first  bool          // stall not yet served
	fired  bool          // budget exhausted

	closeOnce sync.Once
	closed    chan struct{}
}

func newFaultConn(c net.Conn, mode, budget int, stall time.Duration) *faultConn {
	return &faultConn{Conn: c, mode: mode, budget: budget, stall: stall, first: true, closed: make(chan struct{})}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.mode == modeStall && c.first {
		c.first = false
		t := time.NewTimer(c.stall)
		select {
		case <-t.C:
		case <-c.closed:
			t.Stop()
			return 0, net.ErrClosed
		}
		return c.Conn.Read(p)
	}
	if c.mode == modeStall {
		return c.Conn.Read(p)
	}
	if c.fired {
		if c.mode == modeTruncate {
			return 0, io.EOF
		}
		return 0, resetError{}
	}
	if len(p) > c.budget {
		p = p[:c.budget]
	}
	n, err := c.Conn.Read(p)
	c.budget -= n
	if c.budget <= 0 {
		c.fired = true
		// Drop the underlying stream: a reset peer is gone, and a
		// truncated stream has nothing more to deliver.
		_ = c.Conn.Close()
		if err == nil {
			if c.mode == modeTruncate {
				err = io.EOF
			} else {
				err = resetError{}
			}
		}
	}
	return n, err
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
