// Package faults is WhoWas's deterministic fault-injection layer: a
// seeded wrapper around any netsim.Dialer that reproduces, on demand,
// the failure modes the paper's probes met on the live cloud (§4) —
// dropped SYNs, slow connects, mid-stream resets, stalled and
// truncated bodies, flapping hosts — plus campaign-scale episodes
// (loss ramps, regional blackouts, slow-network windows) described by
// a small JSON scenario DSL.
//
// Every fault decision is a pure function of (seed, ip, port, day,
// attempt), never of wall time or goroutine interleaving, so the same
// scenario over the same cloud yields byte-identical campaigns no
// matter how the scanner and fetcher workers race. That determinism is
// what lets the resilience logic (scanner retries, fetcher retries,
// round degradation) be tested as code: the chaos suite in
// internal/core replays whole campaigns under each scenario and
// asserts exact outcomes.
//
// Injection counts are exported through internal/metrics under the
// faults.* names, so a chaos run's -metrics report shows exactly what
// was injected next to what the pipeline recovered.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Episode kinds understood by the scenario DSL.
const (
	KindLossRamp    = "loss-ramp"    // dial loss interpolating across a day window
	KindBlackout    = "blackout"     // a region (or the whole cloud) stops answering
	KindSlowNetwork = "slow-network" // extra dial latency across a day window
)

// Episode is one campaign-scale fault window. Day bounds are inclusive
// campaign-day offsets, matching core.CampaignConfig.RoundDays.
type Episode struct {
	Kind    string `json:"kind"`
	FromDay int    `json:"from_day"`
	ToDay   int    `json:"to_day"`

	// Region limits a blackout to one cloud region (the name from the
	// cloud's RegionConfig); empty blacks out the whole cloud.
	Region string `json:"region,omitempty"`

	// StartPerMille/EndPerMille bound a loss ramp: the injected dial
	// loss interpolates linearly between them across the window.
	StartPerMille int `json:"start_per_mille,omitempty"`
	EndPerMille   int `json:"end_per_mille,omitempty"`

	// ExtraLatencyMS is a slow-network episode's added connect latency.
	ExtraLatencyMS int `json:"extra_latency_ms,omitempty"`

	// Hold makes a blackout swallow dials the way a real dropped SYN
	// does — the dial blocks until the caller's deadline — instead of
	// failing fast. Held dials are what push a round past its deadline
	// and into degraded finalization.
	Hold bool `json:"hold,omitempty"`
}

// active reports whether the episode covers the given day.
func (e *Episode) active(day int) bool { return day >= e.FromDay && day <= e.ToDay }

// rampLoss returns the interpolated per-mille loss of a loss-ramp
// episode on the given day.
func (e *Episode) rampLoss(day int) int {
	if e.FromDay == e.ToDay {
		return e.EndPerMille
	}
	frac := float64(day-e.FromDay) / float64(e.ToDay-e.FromDay)
	return e.StartPerMille + int(frac*float64(e.EndPerMille-e.StartPerMille))
}

// Scenario is one complete fault schedule: steady-state fault rates
// plus episodes. The zero Scenario injects nothing. All rates are
// per-mille (0–1000) and all decisions derive from Seed.
type Scenario struct {
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed"`

	// Dial-time faults.
	DialLossPerMille int `json:"dial_loss_per_mille,omitempty"` // steady transient dial loss
	DialLatencyMS    int `json:"dial_latency_ms,omitempty"`     // added to every successful dial
	DialJitterMS     int `json:"dial_jitter_ms,omitempty"`      // ± seeded jitter on that latency

	// Connection-stream faults, rolled once per accepted connection.
	ResetPerMille      int `json:"reset_per_mille,omitempty"`      // mid-stream reset after ResetAfterBytes
	ResetAfterBytes    int `json:"reset_after_bytes,omitempty"`    // default 256
	StallPerMille      int `json:"stall_per_mille,omitempty"`      // first read stalls for StallMS
	StallMS            int `json:"stall_ms,omitempty"`             // default 1000
	TruncatePerMille   int `json:"truncate_per_mille,omitempty"`   // body cut to an early EOF
	TruncateAfterBytes int `json:"truncate_after_bytes,omitempty"` // default 512

	// Flapping: FlapPerMille of the address space flaps — all dials to
	// a flapping IP fail during its recurring down-window. Each flappy
	// IP's window phase is seeded, so flaps are staggered like real
	// unstable hosts rather than synchronized.
	FlapPerMille   int `json:"flap_per_mille,omitempty"`
	FlapPeriodDays int `json:"flap_period_days,omitempty"` // default 4
	FlapDownDays   int `json:"flap_down_days,omitempty"`   // default 1

	Episodes []Episode `json:"episodes,omitempty"`
}

// WithDefaults resolves zero byte/duration knobs to their documented
// defaults. Rates stay as given (zero means the fault is off).
func (s Scenario) WithDefaults() Scenario {
	out := s
	if out.ResetAfterBytes <= 0 {
		out.ResetAfterBytes = 256
	}
	if out.StallMS <= 0 {
		out.StallMS = 1000
	}
	if out.TruncateAfterBytes <= 0 {
		out.TruncateAfterBytes = 512
	}
	if out.FlapPeriodDays <= 0 {
		out.FlapPeriodDays = 4
	}
	if out.FlapDownDays <= 0 {
		out.FlapDownDays = 1
	}
	return out
}

// Validate reports scenario errors.
func (s *Scenario) Validate() error {
	perMille := func(name string, v int) error {
		if v < 0 || v > 1000 {
			return fmt.Errorf("faults: %s = %d outside [0,1000]", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    int
	}{
		{"dial_loss_per_mille", s.DialLossPerMille},
		{"reset_per_mille", s.ResetPerMille},
		{"stall_per_mille", s.StallPerMille},
		{"truncate_per_mille", s.TruncatePerMille},
		{"flap_per_mille", s.FlapPerMille},
	}
	for _, c := range checks {
		if err := perMille(c.name, c.v); err != nil {
			return err
		}
	}
	if s.DialLatencyMS < 0 || s.DialJitterMS < 0 {
		return fmt.Errorf("faults: negative dial latency/jitter")
	}
	if s.DialJitterMS > 0 && s.DialJitterMS > s.DialLatencyMS {
		return fmt.Errorf("faults: dial_jitter_ms %d exceeds dial_latency_ms %d", s.DialJitterMS, s.DialLatencyMS)
	}
	if s.FlapDownDays > s.FlapPeriodDays && s.FlapPeriodDays > 0 {
		return fmt.Errorf("faults: flap_down_days %d exceeds flap_period_days %d", s.FlapDownDays, s.FlapPeriodDays)
	}
	for i, e := range s.Episodes {
		switch e.Kind {
		case KindLossRamp:
			if err := perMille(fmt.Sprintf("episode %d start_per_mille", i), e.StartPerMille); err != nil {
				return err
			}
			if err := perMille(fmt.Sprintf("episode %d end_per_mille", i), e.EndPerMille); err != nil {
				return err
			}
		case KindBlackout:
			// Region may be empty (whole cloud); nothing else to check.
		case KindSlowNetwork:
			if e.ExtraLatencyMS < 0 {
				return fmt.Errorf("faults: episode %d negative extra_latency_ms", i)
			}
		default:
			return fmt.Errorf("faults: episode %d has unknown kind %q", i, e.Kind)
		}
		if e.ToDay < e.FromDay {
			return fmt.Errorf("faults: episode %d window [%d,%d] inverted", i, e.FromDay, e.ToDay)
		}
	}
	return nil
}

// LossRamp builds a loss-ramp episode: injected dial loss climbs (or
// falls) linearly from startPM to endPM per-mille across [from,to].
func LossRamp(from, to, startPM, endPM int) Episode {
	return Episode{Kind: KindLossRamp, FromDay: from, ToDay: to, StartPerMille: startPM, EndPerMille: endPM}
}

// Blackout builds a regional blackout episode over [from,to]. An empty
// region blacks out the whole cloud. hold selects dropped-SYN
// semantics (the dial blocks until its deadline) over fail-fast.
func Blackout(region string, from, to int, hold bool) Episode {
	return Episode{Kind: KindBlackout, FromDay: from, ToDay: to, Region: region, Hold: hold}
}

// SlowNetwork builds a slow-network episode adding extraMS of connect
// latency across [from,to].
func SlowNetwork(from, to, extraMS int) Episode {
	return Episode{Kind: KindSlowNetwork, FromDay: from, ToDay: to, ExtraLatencyMS: extraMS}
}

// Load parses a JSON scenario and validates it.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parsing scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a JSON scenario from disk (the CLIs' -faults flag).
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return s, nil
}
