package faults

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/netsim"
	"whowas/internal/scanner"
)

func testNet(t testing.TB) (*cloudsim.Cloud, *netsim.Network) {
	t.Helper()
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(1024, 71))
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	return cloud, n
}

func wrap(t testing.TB, inner netsim.Dialer, sc Scenario, opts Options) *Injector {
	t.Helper()
	inj, err := Wrap(inner, sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func findWeb(t testing.TB, cloud *cloudsim.Cloud) ipaddr.Addr {
	t.Helper()
	var out ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Web && st.Ports.OpensPort(80) && !st.Slow && !st.HTTPFail && !st.Down {
			out, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no clean web IP in sample cloud")
	}
	return out
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil, Scenario{}, Options{}); err == nil {
		t.Error("nil dialer accepted")
	}
	_, n := testNet(t)
	if _, err := Wrap(n, Scenario{DialLossPerMille: 1500}, Options{}); err == nil {
		t.Error("out-of-range loss accepted")
	}
	if _, err := Wrap(n, Scenario{Episodes: []Episode{{Kind: "meteor"}}}, Options{}); err == nil {
		t.Error("unknown episode kind accepted")
	}
	if _, err := Wrap(n, Scenario{Episodes: []Episode{LossRamp(5, 2, 0, 100)}}, Options{}); err == nil {
		t.Error("inverted episode window accepted")
	}
}

func TestZeroScenarioIsTransparent(t *testing.T) {
	cloud, n := testNet(t)
	inj := wrap(t, n, Scenario{}, Options{})
	ip := findWeb(t, cloud)
	c, err := inj.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatalf("clean dial through zero scenario: %v", err)
	}
	c.Close()
}

// TestDialLossDeterministicAndRecoverable checks the core contract:
// the same (ip, port, day, attempt) always rolls the same decision,
// and a retry (next attempt) rolls an independent one, so heavy loss
// is recoverable by retrying.
func TestDialLossDeterministicAndRecoverable(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 3, DialLossPerMille: 400}
	mk := func() *Injector { return wrap(t, n, sc, Options{Day: n.Day}) }

	ctx := context.Background()
	outcome := func(inj *Injector, ip ipaddr.Addr) []bool {
		var out []bool
		for attempt := 0; attempt < 6; attempt++ {
			c, err := inj.DialContext(ctx, "tcp", ip.String()+":80")
			if c != nil {
				c.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}

	ip := findWeb(t, cloud)
	a := outcome(mk(), ip)
	b := outcome(mk(), ip)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d differs across identical injectors: %v vs %v", i, a, b)
		}
	}

	// Across many IPs: first-attempt failure rate ~40%, and nearly all
	// IPs succeed within 6 attempts (0.4^6 < 0.5%).
	var firstFail, neverOK, total int
	cloud.Ranges().Each(func(addr ipaddr.Addr) bool {
		st := cloud.StateAt(0, addr)
		if !st.Bound || !st.Web || !st.Ports.OpensPort(80) || st.Slow || st.HTTPFail || st.Down {
			return true
		}
		total++
		res := outcome(mk(), addr)
		if !res[0] {
			firstFail++
		}
		ok := false
		for _, r := range res {
			ok = ok || r
		}
		if !ok {
			neverOK++
		}
		return total < 500
	})
	if total < 100 {
		t.Skip("not enough web IPs")
	}
	frac := float64(firstFail) / float64(total)
	if frac < 0.30 || frac > 0.50 {
		t.Errorf("first-attempt loss %.3f, want ~0.40", frac)
	}
	if float64(neverOK) > 0.02*float64(total) {
		t.Errorf("%d/%d IPs never recovered within 6 attempts", neverOK, total)
	}
}

func TestLossRampEpisode(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 9, Episodes: []Episode{LossRamp(0, 10, 0, 1000)}}
	ctx := context.Background()

	lossAt := func(day int) float64 {
		n.SetDay(day)
		inj := wrap(t, n, sc, Options{Day: n.Day})
		var fail, total int
		cloud.Ranges().Each(func(addr ipaddr.Addr) bool {
			st := cloud.StateAt(day, addr)
			if !st.Bound || !st.Web || !st.Ports.OpensPort(80) || st.Slow || st.HTTPFail || st.Down {
				return true
			}
			total++
			c, err := inj.DialContext(ctx, "tcp", addr.String()+":80")
			if c != nil {
				c.Close()
			}
			if err != nil {
				fail++
			}
			return total < 400
		})
		return float64(fail) / float64(total)
	}

	early, mid, late := lossAt(0), lossAt(5), lossAt(10)
	n.SetDay(0)
	if early > 0.05 {
		t.Errorf("day 0 loss %.3f, want ~0 at ramp start", early)
	}
	if mid < 0.35 || mid > 0.65 {
		t.Errorf("day 5 loss %.3f, want ~0.5 mid-ramp", mid)
	}
	if late < 0.95 {
		t.Errorf("day 10 loss %.3f, want ~1.0 at ramp end", late)
	}
}

func TestRegionalBlackout(t *testing.T) {
	cloud, n := testNet(t)
	// Black out the region of the first address on days 2-3 only.
	first, _ := cloud.Ranges().AtIndex(0)
	region := cloud.RegionOf(first)
	reg := metrics.NewRegistry()
	sc := Scenario{Seed: 5, Episodes: []Episode{Blackout(region, 2, 3, false)}}
	inj := wrap(t, n, sc, Options{Day: n.Day, RegionOf: cloud.RegionOf, Metrics: reg})
	ctx := context.Background()

	dial := func(ip ipaddr.Addr) error {
		c, err := inj.DialContext(ctx, "tcp", ip.String()+":80")
		if c != nil {
			c.Close()
		}
		return err
	}

	// A web IP in the blacked-out region and one outside it.
	var inRegion, outRegion ipaddr.Addr
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(2, a)
		if !st.Bound || !st.Web || !st.Ports.OpensPort(80) || st.Slow || st.HTTPFail || st.Down {
			return true
		}
		if cloud.RegionOf(a) == region && inRegion == 0 {
			inRegion = a
		}
		if cloud.RegionOf(a) != region && outRegion == 0 {
			outRegion = a
		}
		return inRegion == 0 || outRegion == 0
	})
	if inRegion == 0 || outRegion == 0 {
		t.Skip("could not find IPs inside and outside the region")
	}

	n.SetDay(2)
	if err := dial(inRegion); !scanner.IsTimeout(err) {
		t.Errorf("blackout dial: err = %v, want timeout", err)
	}
	if err := dial(outRegion); err != nil {
		t.Errorf("out-of-region dial during blackout failed: %v", err)
	}
	n.SetDay(4)
	if err := dial(inRegion); err != nil {
		t.Errorf("post-blackout dial failed: %v", err)
	}
	n.SetDay(0)
	if got := reg.Snapshot().Counters["faults.blackout_drops"]; got != 1 {
		t.Errorf("faults.blackout_drops = %d, want 1", got)
	}
}

func TestBlackoutHoldBurnsDeadline(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 5, Episodes: []Episode{Blackout("", 0, 0, true)}}
	inj := wrap(t, n, sc, Options{Day: n.Day})
	ip := findWeb(t, cloud)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := inj.DialContext(ctx, "tcp", ip.String()+":80")
	if !scanner.IsTimeout(err) {
		t.Errorf("held dial err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("held dial returned after %v, want ~30ms (full deadline)", elapsed)
	}
}

func TestFlapWindows(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 11, FlapPerMille: 1000, FlapPeriodDays: 4, FlapDownDays: 1}
	inj := wrap(t, n, sc, Options{Day: n.Day})
	ip := findWeb(t, cloud)
	ctx := context.Background()

	// With every IP flapping 1 day in 4, exactly one day of any
	// 4-day window must fail, and the pattern must repeat with the
	// period.
	var downDays []int
	for day := 0; day < 8; day++ {
		n.SetDay(day)
		c, err := inj.DialContext(ctx, "tcp", ip.String()+":80")
		if c != nil {
			c.Close()
		}
		if err != nil {
			downDays = append(downDays, day)
		}
	}
	n.SetDay(0)
	if len(downDays) != 2 {
		t.Fatalf("down days in 8-day window = %v, want exactly 2", downDays)
	}
	if downDays[1]-downDays[0] != 4 {
		t.Errorf("flap windows %v not separated by the 4-day period", downDays)
	}
}

func TestSlowNetworkEpisodeDelaysDials(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 2, Episodes: []Episode{SlowNetwork(0, 0, 25)}}
	reg := metrics.NewRegistry()
	inj := wrap(t, n, sc, Options{Day: n.Day, Metrics: reg})
	ip := findWeb(t, cloud)

	start := time.Now()
	c, err := inj.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("dial took %v, want >= 25ms injected latency", elapsed)
	}
	// An impatient caller times out instead.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := inj.DialContext(ctx, "tcp", ip.String()+":80"); !scanner.IsTimeout(err) {
		t.Errorf("impatient dial err = %v, want timeout", err)
	}
	if got := reg.Snapshot().Counters["faults.dials_delayed"]; got != 2 {
		t.Errorf("faults.dials_delayed = %d, want 2", got)
	}
}

func TestMidStreamReset(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 7, ResetPerMille: 1000, ResetAfterBytes: 64}
	reg := metrics.NewRegistry()
	inj := wrap(t, n, sc, Options{Day: n.Day, Metrics: reg})
	ip := findWeb(t, cloud)

	c, err := inj.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := io.WriteString(c, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(c)
	if err == nil {
		t.Fatalf("read %d bytes with no reset", len(got))
	}
	if len(got) != 64 {
		t.Errorf("delivered %d bytes before reset, want exactly the 64-byte budget", len(got))
	}
	if !strings.Contains(err.Error(), "connection reset") {
		t.Errorf("reset error = %v", err)
	}
	if got := reg.Snapshot().Counters["faults.resets"]; got != 1 {
		t.Errorf("faults.resets = %d, want 1", got)
	}
}

func TestTruncatedStream(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 7, TruncatePerMille: 1000, TruncateAfterBytes: 48}
	inj := wrap(t, n, sc, Options{Day: n.Day})
	ip := findWeb(t, cloud)

	c, err := inj.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := io.WriteString(c, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("truncation must end in clean EOF, got %v", err)
	}
	if len(got) != 48 {
		t.Errorf("delivered %d bytes, want exactly the 48-byte budget", len(got))
	}
}

func TestStalledFirstRead(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 4, StallPerMille: 1000, StallMS: 40}
	inj := wrap(t, n, sc, Options{Day: n.Day})
	ip := findWeb(t, cloud)

	c, err := inj.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := io.WriteString(c, "GET /robots.txt HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Errorf("first read returned after %v, want >= 40ms stall", elapsed)
	}
	// Subsequent reads are not stalled.
	start = time.Now()
	_, _ = c.Read(buf)
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("second read stalled %v", elapsed)
	}
}

func TestStalledConnUnblocksOnClose(t *testing.T) {
	cloud, n := testNet(t)
	sc := Scenario{Seed: 4, StallPerMille: 1000, StallMS: 10_000}
	inj := wrap(t, n, sc, Options{Day: n.Day})
	ip := findWeb(t, cloud)
	c, err := inj.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := c.Read(buf)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on closed stalled conn returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not unblock on Close — this is the wedge the round deadline exists for")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	in := `{
		"name": "chaos",
		"seed": 42,
		"dial_loss_per_mille": 220,
		"flap_per_mille": 10,
		"episodes": [
			{"kind": "loss-ramp", "from_day": 0, "to_day": 30, "end_per_mille": 150},
			{"kind": "blackout", "from_day": 40, "to_day": 44, "region": "sa-east-1", "hold": true},
			{"kind": "slow-network", "from_day": 60, "to_day": 70, "extra_latency_ms": 3}
		]
	}`
	sc, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "chaos" || sc.Seed != 42 || sc.DialLossPerMille != 220 || len(sc.Episodes) != 3 {
		t.Errorf("parsed scenario = %+v", sc)
	}
	if sc.Episodes[1].Region != "sa-east-1" || !sc.Episodes[1].Hold {
		t.Errorf("blackout episode = %+v", sc.Episodes[1])
	}
	// Defaults resolve without clobbering configured values.
	r := sc.WithDefaults()
	if r.FlapPeriodDays != 4 || r.StallMS != 1000 || r.DialLossPerMille != 220 {
		t.Errorf("resolved defaults = %+v", r)
	}
	// Unknown fields and invalid scenarios are rejected.
	if _, err := Load(strings.NewReader(`{"seed": 1, "warp_factor": 9}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"seed": 1, "dial_loss_per_mille": -5}`)); err == nil {
		t.Error("negative rate accepted")
	}
}
