package dnssim

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestResponseJSONWireShape pins the cloudapi DNS-answer wire shape:
// explicit lower-case keys, not Go identifiers.
func TestResponseJSONWireShape(t *testing.T) {
	buf, err := json.Marshal(Response{Type: PublicA, Addr: 0x0A000001})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"addr", "type"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Response wire keys = %v, want %v", got, want)
	}
}
