// Package dnssim simulates the two DNS surfaces WhoWas uses:
//
//  1. Amazon's internal resolution of EC2-style public DNS names
//     ("ec2-1-2-3-4.compute-1.amazonaws.com"), which the cloud
//     cartography of §5 interrogates to separate VPC from classic
//     prefixes: a name with no active instance yields an SOA record,
//     a VPC instance resolves to its public IP, and a classic instance
//     (queried from inside EC2) resolves to its private IP.
//
//  2. Forward resolution of tenant web-service domains, which the
//     DNS-interrogation baseline (prior work the paper compares
//     against) uses to discover cloud deployments.
package dnssim

import (
	"context"
	"fmt"
	"strings"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
)

// ResponseType classifies a DNS answer.
type ResponseType int

const (
	// SOA means no DNS information exists for the name (NXDOMAIN with
	// a start-of-authority record), i.e. no active instance.
	SOA ResponseType = iota
	// PublicA means the name resolved to a public cloud IP (VPC).
	PublicA
	// PrivateA means the name resolved to a private 10/8 IP (classic,
	// as seen from inside the cloud).
	PrivateA
)

func (t ResponseType) String() string {
	switch t {
	case PublicA:
		return "public-a"
	case PrivateA:
		return "private-a"
	default:
		return "soa"
	}
}

// Response is one DNS answer. The json tags are pinned: responses
// cross the cloudapi control plane's resolve endpoint.
type Response struct {
	Type ResponseType `json:"type"`
	Addr ipaddr.Addr  `json:"addr"` // meaningful for PublicA (the public IP) and PrivateA (a 10/8 address)
}

// Resolver answers DNS queries from the simulated cloud's ground truth.
type Resolver struct {
	cloud *cloudsim.Cloud
	day   int
	// Queries counts lookups, for rate-limit verification in tests.
	Queries int64
}

// NewResolver builds a resolver pinned at the given campaign day (the
// cartography sweep is a one-time measurement).
func NewResolver(cloud *cloudsim.Cloud, day int) *Resolver {
	return &Resolver{cloud: cloud, day: day}
}

// PublicName renders the EC2-style public DNS name for an IP, matching
// the provider pattern described in §2: prefix "ec2-", dots replaced
// with hyphens, and a region-specific suffix.
func PublicName(ip ipaddr.Addr, region string) string {
	dashed := strings.ReplaceAll(ip.String(), ".", "-")
	suffix := region + ".compute.amazonaws.com"
	if region == "us-east-1" {
		suffix = "compute-1.amazonaws.com"
	}
	return fmt.Sprintf("ec2-%s.%s", dashed, suffix)
}

// ParsePublicName inverts PublicName, extracting the IP.
func ParsePublicName(name string) (ipaddr.Addr, error) {
	if !strings.HasPrefix(name, "ec2-") {
		return 0, fmt.Errorf("dnssim: %q is not an EC2-style name", name)
	}
	rest := name[len("ec2-"):]
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return 0, fmt.Errorf("dnssim: %q has no domain suffix", name)
	}
	quad := strings.ReplaceAll(rest[:dot], "-", ".")
	a, err := ipaddr.ParseAddr(quad)
	if err != nil {
		return 0, fmt.Errorf("dnssim: %q: %w", name, err)
	}
	return a, nil
}

// LookupPublicName resolves an EC2-style public DNS name as Amazon's
// internal DNS would for a query from a classic instance (§5):
//
//   - unbound IP -> SOA,
//   - VPC instance -> the public IP itself,
//   - classic instance -> the instance's private 10/8 address.
//
// The context carries the sweep's cancellation: remote resolvers
// (cloudapi) put a wire query behind the same signature.
func (r *Resolver) LookupPublicName(ctx context.Context, name string) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	r.Queries++
	ip, err := ParsePublicName(name)
	if err != nil {
		return Response{}, err
	}
	st := r.cloud.StateAt(r.day, ip)
	switch {
	case !st.Bound:
		return Response{Type: SOA}, nil
	case st.VPC:
		return Response{Type: PublicA, Addr: ip}, nil
	default:
		return Response{Type: PrivateA, Addr: privateFor(ip)}, nil
	}
}

// privateFor derives a deterministic private address for a classic
// instance.
func privateFor(ip ipaddr.Addr) ipaddr.Addr {
	return ipaddr.Addr(uint32(10)<<24 | uint32(ip)&0x00ffffff)
}

// LookupDomain resolves a tenant domain to the service's public IPs on
// a given day. Only services with a public DNS record resolve; this is
// what limits the DNS-interrogation baseline's coverage. At most max
// IPs are returned (authoritative servers cap answer sets; pass 0 for
// no cap).
func (r *Resolver) LookupDomain(domain string, day int, max int) []ipaddr.Addr {
	r.Queries++
	for _, svc := range r.cloud.Services() {
		if !svc.HasDNS || !svc.Ports.Web() || svc.Profile.Domain != domain {
			continue
		}
		ips := r.cloud.AssignedIPs(day, svc.ID)
		if max > 0 && len(ips) > max {
			ips = ips[:max]
		}
		return ips
	}
	return nil
}

// Domains lists every resolvable tenant domain (the baseline's seed
// list, standing in for the Alexa-derived domain lists prior work
// interrogated).
func (r *Resolver) Domains() []string {
	var out []string
	for _, svc := range r.cloud.Services() {
		if svc.HasDNS && svc.Ports.Web() && svc.Profile.Domain != "" {
			out = append(out, svc.Profile.Domain)
		}
	}
	return out
}
