package dnssim

import (
	"context"
	"testing"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
)

func testCloud(t testing.TB) *cloudsim.Cloud {
	t.Helper()
	c, err := cloudsim.New(cloudsim.DefaultEC2Config(512, 21))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicNameRoundTrip(t *testing.T) {
	ip := ipaddr.MustParseAddr("54.208.37.5")
	name := PublicName(ip, "us-east-1")
	if name != "ec2-54-208-37-5.compute-1.amazonaws.com" {
		t.Errorf("PublicName = %q", name)
	}
	got, err := ParsePublicName(name)
	if err != nil || got != ip {
		t.Errorf("ParsePublicName = %v, %v", got, err)
	}
	// Non us-east regions use the region in the suffix.
	name2 := PublicName(ip, "eu-west-1")
	if name2 != "ec2-54-208-37-5.eu-west-1.compute.amazonaws.com" {
		t.Errorf("PublicName eu = %q", name2)
	}
}

func TestParsePublicNameErrors(t *testing.T) {
	for _, bad := range []string{"", "foo.example.com", "ec2-1-2-3.compute-1.amazonaws.com", "ec2-nodots"} {
		if _, err := ParsePublicName(bad); err == nil {
			t.Errorf("ParsePublicName(%q) succeeded", bad)
		}
	}
}

func TestLookupSemantics(t *testing.T) {
	cloud := testCloud(t)
	r := NewResolver(cloud, 0)
	var sawSOA, sawPublic, sawPrivate bool
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		resp, err := r.LookupPublicName(context.Background(), PublicName(a, cloud.RegionOf(a)))
		if err != nil {
			t.Fatalf("lookup %s: %v", a, err)
		}
		switch {
		case !st.Bound:
			if resp.Type != SOA {
				t.Fatalf("%s unbound but response %v", a, resp.Type)
			}
			sawSOA = true
		case st.VPC:
			if resp.Type != PublicA || resp.Addr != a {
				t.Fatalf("%s VPC but response %v %v", a, resp.Type, resp.Addr)
			}
			sawPublic = true
		default:
			if resp.Type != PrivateA {
				t.Fatalf("%s classic but response %v", a, resp.Type)
			}
			if resp.Addr>>24 != 10 {
				t.Fatalf("classic private addr %v not in 10/8", resp.Addr)
			}
			sawPrivate = true
		}
		return sawSOA == false || sawPublic == false || sawPrivate == false
	})
	if !sawSOA || !sawPublic || !sawPrivate {
		t.Errorf("response coverage: soa=%v public=%v private=%v", sawSOA, sawPublic, sawPrivate)
	}
}

func TestQueriesCounted(t *testing.T) {
	cloud := testCloud(t)
	r := NewResolver(cloud, 0)
	ip, _ := cloud.Ranges().AtIndex(0)
	for i := 0; i < 5; i++ {
		_, _ = r.LookupPublicName(context.Background(), PublicName(ip, cloud.RegionOf(ip)))
	}
	if r.Queries != 5 {
		t.Errorf("Queries = %d, want 5", r.Queries)
	}
}

func TestLookupDomain(t *testing.T) {
	cloud := testCloud(t)
	r := NewResolver(cloud, 0)
	// Find a DNS-registered web service alive on day 0.
	var domain string
	var svcID uint64
	for _, svc := range cloud.Services() {
		if svc.HasDNS && svc.Ports.Web() && svc.SizeOn(0) > 0 {
			domain = svc.Profile.Domain
			svcID = svc.ID
			break
		}
	}
	if domain == "" {
		t.Fatal("no DNS-registered service found")
	}
	ips := r.LookupDomain(domain, 0, 0)
	want := cloud.AssignedIPs(0, svcID)
	if len(ips) != len(want) {
		t.Errorf("LookupDomain returned %d IPs, ground truth %d", len(ips), len(want))
	}
	// Cap respected.
	if len(want) > 0 {
		capped := r.LookupDomain(domain, 0, 1)
		if len(capped) != 1 {
			t.Errorf("capped lookup returned %d IPs", len(capped))
		}
	}
	if got := r.LookupDomain("no-such-domain.example", 0, 0); got != nil {
		t.Errorf("unknown domain resolved: %v", got)
	}
}

func TestDomainsList(t *testing.T) {
	cloud := testCloud(t)
	r := NewResolver(cloud, 0)
	domains := r.Domains()
	if len(domains) == 0 {
		t.Fatal("no resolvable domains")
	}
	// Every listed domain must resolve on some day.
	resolved := 0
	for _, d := range domains[:min(50, len(domains))] {
		for day := 0; day < cloud.Days(); day += 10 {
			if len(r.LookupDomain(d, day, 0)) > 0 {
				resolved++
				break
			}
		}
	}
	if resolved == 0 {
		t.Error("no listed domain ever resolves")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
