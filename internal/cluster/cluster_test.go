package cluster

import (
	"fmt"
	"strings"
	"testing"

	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
	"whowas/internal/store/colstore"
)

// page builds a record with the given level-1 features and content.
func page(ip string, title, server, body string) *store.Record {
	return &store.Record{
		IP:         ipaddr.MustParseAddr(ip),
		OpenPorts:  store.PortHTTP,
		HTTPStatus: 200,
		Title:      title,
		Server:     server,
		Simhash:    simhash.Hash(body),
		BodyLen:    len(body),
	}
}

// buildStore populates rounds from a matrix: rows[round] = records.
func buildStore(t *testing.T, rounds [][]*store.Record) *store.Store {
	t.Helper()
	s := store.New("test")
	for i, recs := range rounds {
		if _, err := s.BeginRound(i * 2); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			cp := *rec
			if err := s.Put(&cp); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const bodyA = "alpha web shop selling widgets gadgets and gizmos to everyone around the world every day"
const bodyB = "completely different corporate site with press releases investor relations and careers pages"

func TestSameContentSameCluster(t *testing.T) {
	st := buildStore(t, [][]*store.Record{
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.2", "Shop", "nginx", bodyA)},
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.2", "Shop", "nginx", bodyA)},
	})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 1 {
		t.Fatalf("Final = %d, want 1 (res=%+v)", res.Final, res)
	}
	var ids []int64
	for _, r := range st.Rounds() {
		r.Each(func(rec *store.Record) bool {
			ids = append(ids, rec.Cluster)
			return true
		})
	}
	for _, id := range ids {
		if id != ids[0] || id == 0 {
			t.Fatalf("cluster ids = %v, want all equal nonzero", ids)
		}
	}
}

func TestDifferentTitlesSplitAtLevel1(t *testing.T) {
	st := buildStore(t, [][]*store.Record{
		{page("1.0.0.1", "Shop A", "nginx", bodyA), page("1.0.0.2", "Shop B", "nginx", bodyA)},
	})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopLevel != 2 || res.Final != 2 {
		t.Errorf("TopLevel=%d Final=%d, want 2/2", res.TopLevel, res.Final)
	}
}

func TestDistantSimhashSplitsAtLevel2(t *testing.T) {
	st := buildStore(t, [][]*store.Record{
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.2", "Shop", "nginx", bodyB)},
	})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopLevel != 1 {
		t.Errorf("TopLevel = %d, want 1", res.TopLevel)
	}
	if res.SecondLevel != 2 || res.Final != 2 {
		t.Errorf("SecondLevel=%d Final=%d, want 2/2", res.SecondLevel, res.Final)
	}
}

func TestNearDuplicateStaysTogether(t *testing.T) {
	// Bodies at small Hamming distance must share a level-2 cluster.
	body2 := bodyA + " minor footer tweak"
	d := simhash.Distance(simhash.Hash(bodyA), simhash.Hash(body2))
	if d == 0 || d > 8 {
		t.Skipf("test bodies at distance %d, want 1..8", d)
	}
	st := buildStore(t, [][]*store.Record{
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.2", "Shop", "nginx", body2)},
	})
	res, err := Run(st, Config{Threshold: d})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 1 {
		t.Errorf("Final = %d, want 1 (distance %d)", res.Final, d)
	}
}

func TestMergeHeuristicAcrossRevisions(t *testing.T) {
	// One IP revises its page: title unchanged, simhash moves <= 3
	// bits between consecutive rounds but ends far from the start, and
	// the server header changes at the revision — splitting level 1.
	// The merge heuristic must rejoin the two clusters via the shared
	// IP + small simhash distance + equal title.
	h0 := simhash.Hash(bodyA)
	h1 := h0.FlipBits(0, 5) // distance 2 from h0
	recA := page("1.0.0.1", "Shop", "nginx/1.0", bodyA)
	recB := page("1.0.0.1", "Shop", "nginx/1.1", bodyA)
	recB.Simhash = h1
	st := buildStore(t, [][]*store.Record{
		{recA},
		{recB},
	})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecondLevel != 2 {
		t.Fatalf("SecondLevel = %d, want 2 (split by server)", res.SecondLevel)
	}
	if res.Final != 1 {
		t.Errorf("Final = %d, want 1 after merge", res.Final)
	}
}

func TestMergeRequiresSharedFeature(t *testing.T) {
	// Same IP, close simhashes, but every level-1 feature differs:
	// likely an ownership change; must NOT merge.
	h0 := simhash.Hash(bodyA)
	recA := page("1.0.0.1", "Shop A", "nginx", bodyA)
	recB := page("1.0.0.1", "Shop B", "apache", bodyA)
	recB.Simhash = h0.FlipBits(7)
	st := buildStore(t, [][]*store.Record{{recA}, {recB}})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 2 {
		t.Errorf("Final = %d, want 2 (no shared feature)", res.Final)
	}
}

func TestMergeRequiresCloseSimhash(t *testing.T) {
	// Same IP, same title, but content changed completely: the paper's
	// heuristic requires simhashes within 3 bits; distant pages stay
	// separate clusters.
	recA := page("1.0.0.1", "Shop", "nginx", bodyA)
	recB := page("1.0.0.1", "Shop", "apache", bodyB)
	st := buildStore(t, [][]*store.Record{{recA}, {recB}})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 2 {
		t.Errorf("Final = %d, want 2 (distant simhashes)", res.Final)
	}
}

func TestCleaningErrorTitles(t *testing.T) {
	st := buildStore(t, [][]*store.Record{
		{
			page("1.0.0.1", "404 Not Found", "nginx", "<h1>Not Found</h1>"),
			page("1.0.0.2", "Error 500", "nginx", "<h1>boom</h1>"),
			page("1.0.0.3", "Good Site", "nginx", bodyA),
		},
	})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 1 {
		t.Errorf("Final = %d, want 1 after cleaning error titles", res.Final)
	}
	if len(res.RemovedClusters) != 2 {
		t.Errorf("Removed = %d, want 2", len(res.RemovedClusters))
	}
	for _, c := range res.RemovedClusters {
		if c.RemovedReason != "error-title" {
			t.Errorf("RemovedReason = %q", c.RemovedReason)
		}
	}
	// Cleaned records carry Cluster = 0.
	st.Rounds()[0].Each(func(rec *store.Record) bool {
		if strings.Contains(rec.Title, "Found") && rec.Cluster != 0 {
			t.Errorf("cleaned record still assigned cluster %d", rec.Cluster)
		}
		return true
	})
}

func TestCleaningDefaultPagesOnlyWhenLarge(t *testing.T) {
	// A large default-page cluster (>20 avg IPs) is removed; a small
	// one survives.
	var largeRecs []*store.Record
	for i := 0; i < 25; i++ {
		largeRecs = append(largeRecs, page(fmt.Sprintf("2.0.0.%d", i+1), "Welcome-Apache", "Apache", "It works"))
	}
	smallRec := page("3.0.0.1", "Welcome to nginx!", "nginx", "welcome nginx page")
	st := buildStore(t, [][]*store.Record{append(largeRecs, smallRec)})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sawSmall bool
	for _, c := range res.Clusters {
		if strings.Contains(strings.ToLower(c.Title), "nginx") {
			sawSmall = true
		}
		if strings.Contains(strings.ToLower(c.Title), "apache") {
			t.Error("large default-page cluster survived cleaning")
		}
	}
	if !sawSmall {
		t.Error("small default-page cluster was removed")
	}
	if len(res.RemovedClusters) != 1 || res.RemovedClusters[0].RemovedReason != "default-page" {
		t.Errorf("RemovedClusters = %+v", res.RemovedClusters)
	}
}

func TestEmptyStoreErrors(t *testing.T) {
	st := store.New("empty")
	if _, err := Run(st, Config{Threshold: 3}); err == nil {
		t.Error("Run on empty store succeeded")
	}
}

func TestGapThresholdTuning(t *testing.T) {
	// Build a store with clear cluster structure: three page families,
	// members within each family at distance <= 2, families far apart.
	bodies := []string{bodyA, bodyB, "third family of pages entirely about video streaming and live sports events"}
	var recs []*store.Record
	n := 0
	for f, b := range bodies {
		base := simhash.Hash(b)
		for i := 0; i < 6; i++ {
			rec := page(fmt.Sprintf("9.0.%d.%d", f, i+1), "Mixed", "nginx", b)
			rec.Simhash = base.FlipBits(i % 3) // distance <= 1 within family
			if i%3 == 0 {
				rec.Simhash = base
			}
			recs = append(recs, rec)
			n++
		}
	}
	st := buildStore(t, [][]*store.Record{recs})
	res, err := Run(st, Config{}) // Threshold 0 -> gap statistic
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold < 1 || res.Threshold > 12 {
		t.Errorf("tuned threshold = %d", res.Threshold)
	}
	if res.Final != 3 {
		t.Errorf("Final = %d, want 3 families (threshold %d)", res.Final, res.Threshold)
	}
}

func TestClusterAccessors(t *testing.T) {
	st := buildStore(t, [][]*store.Record{
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.2", "Shop", "nginx", bodyA)},
		{page("1.0.0.1", "Shop", "nginx", bodyA)},
	})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Clusters[0]
	rounds := c.Rounds()
	if len(rounds) != 2 || rounds[0] != 0 || rounds[1] != 1 {
		t.Errorf("Rounds = %v", rounds)
	}
	if c.IPsInRound(0) != 2 || c.IPsInRound(1) != 1 {
		t.Errorf("IPsInRound = %d,%d", c.IPsInRound(0), c.IPsInRound(1))
	}
	if res.ByID(c.ID) != c {
		t.Error("ByID failed")
	}
	if res.ByID(9999) != nil {
		t.Error("ByID(9999) non-nil")
	}
}

func TestDeterministicClusterIDs(t *testing.T) {
	build := func() *Result {
		st := buildStore(t, [][]*store.Record{
			{
				page("1.0.0.1", "A", "nginx", bodyA),
				page("1.0.0.2", "B", "nginx", bodyB),
				page("1.0.0.3", "C", "apache", bodyA+" extra"),
			},
		})
		res, err := Run(st, Config{Threshold: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if a.Final != b.Final {
		t.Fatalf("Final differs: %d vs %d", a.Final, b.Final)
	}
	for i := range a.Clusters {
		if a.Clusters[i].Title != b.Clusters[i].Title || a.Clusters[i].ID != b.Clusters[i].ID {
			t.Errorf("cluster %d differs: %q/%d vs %q/%d", i,
				a.Clusters[i].Title, a.Clusters[i].ID, b.Clusters[i].Title, b.Clusters[i].ID)
		}
	}
}

func TestUnavailableRecordsExcluded(t *testing.T) {
	good := page("1.0.0.1", "Shop", "nginx", bodyA)
	sshOnly := &store.Record{IP: ipaddr.MustParseAddr("1.0.0.9"), OpenPorts: store.PortSSH}
	st := buildStore(t, [][]*store.Record{{good, sshOnly}})
	res, err := Run(st, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		for _, rec := range c.Records {
			if !rec.Available() {
				t.Error("unavailable record clustered")
			}
		}
	}
	_ = res
}

// TestRunPersistsThroughCachingBackend: clustering's write-back must
// reach the disk even when the backend's round cache holds the whole
// store — the cached records are the same pointers Run labels in
// place, so a naive changed-detection inside UpdateRounds would read
// its own mutation and skip every rewrite (regression: stale segments
// after a fully-cached columnar campaign).
func TestRunPersistsThroughCachingBackend(t *testing.T) {
	rounds := [][]*store.Record{
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.2", "Shop", "nginx", bodyA)},
		{page("1.0.0.1", "Shop", "nginx", bodyA), page("1.0.0.3", "Corp", "apache", bodyB)},
	}
	mem := buildStore(t, rounds)

	dir := t.TempDir()
	backend, err := colstore.Open(dir, colstore.Options{CloudName: "test", CacheRounds: len(rounds)})
	if err != nil {
		t.Fatal(err)
	}
	col := store.NewWithBackend("test", backend)
	for i, recs := range rounds {
		if _, err := col.BeginRound(i * 2); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			cp := *rec
			if err := col.Put(&cp); err != nil {
				t.Fatal(err)
			}
		}
		if err := col.EndRound(); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := Run(mem, Config{Threshold: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(col, Config{Threshold: 3}); err != nil {
		t.Fatal(err)
	}
	want, err := mem.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := col.Digest(); err != nil || got != want {
		t.Fatalf("columnar digest diverges before reopen: got %s (%v), want %s", got, err, want)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk alone: the cache is gone, so only rewritten
	// segments can reproduce the post-clustering digest.
	reBackend, err := colstore.Open(dir, colstore.Options{CloudName: "test"})
	if err != nil {
		t.Fatal(err)
	}
	re := store.NewWithBackend("test", reBackend)
	defer func() {
		if err := re.Close(); err != nil {
			t.Error(err)
		}
	}()
	got, err := re.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("on-disk digest after clustering = %s, want %s (write-back skipped on cached rounds)", got, want)
	}
}

func BenchmarkRun1000Records(b *testing.B) {
	var rounds [][]*store.Record
	for r := 0; r < 5; r++ {
		var recs []*store.Record
		for i := 0; i < 200; i++ {
			family := i % 40
			body := fmt.Sprintf("family %d content with shared words plus member specific token %d", family, i%3)
			recs = append(recs, page(fmt.Sprintf("7.%d.%d.%d", r, family, i), fmt.Sprintf("Site %d", family), "nginx", body))
		}
		rounds = append(rounds, recs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stCopy := store.New("bench")
		for ri, recs := range rounds {
			_, _ = stCopy.BeginRound(ri)
			for _, rec := range recs {
				cp := *rec
				_ = stCopy.Put(&cp)
			}
			_ = stCopy.EndRound()
		}
		b.StartTimer()
		if _, err := Run(stCopy, Config{Threshold: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
