package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

// randomStore generates a store of records with controlled structure:
// nFamilies page families, each rendered across several IPs and
// rounds with small revisions.
func randomStore(t *testing.T, seed int64, nFamilies, nRounds int) *store.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := store.New("prop")
	type family struct {
		title  string
		server string
		base   simhash.Fingerprint
		ips    []string
	}
	families := make([]family, nFamilies)
	for i := range families {
		f := family{
			title:  fmt.Sprintf("Family %d", i),
			server: []string{"nginx", "Apache", "Microsoft-IIS/8.0"}[rng.Intn(3)],
			base:   simhash.Hash(fmt.Sprintf("base content for family %d with unique words %d", i, rng.Int())),
		}
		for k := 0; k < 1+rng.Intn(4); k++ {
			f.ips = append(f.ips, fmt.Sprintf("10.%d.%d.%d", i/200, i%200, k+1))
		}
		families[i] = f
	}
	for r := 0; r < nRounds; r++ {
		if _, err := s.BeginRound(r * 2); err != nil {
			t.Fatal(err)
		}
		for _, f := range families {
			h := f.base
			if rng.Intn(3) == 0 {
				h = h.FlipBits(rng.Intn(96)) // small revision
			}
			for _, ip := range f.ips {
				if rng.Intn(10) == 0 {
					continue // occasionally unavailable
				}
				rec := &store.Record{
					IP:         ipaddr.MustParseAddr(ip),
					OpenPorts:  store.PortHTTP,
					HTTPStatus: 200,
					Title:      f.title,
					Server:     f.server,
					Simhash:    h,
					BodyLen:    100,
				}
				if err := s.Put(rec); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestClusteringInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		st := randomStore(t, seed, 60, 6)
		res, err := Run(st, Config{Threshold: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Invariant 1: every record belongs to at most one cluster, and
		// cluster membership matches the record label.
		seen := map[*store.Record]int64{}
		for _, c := range res.Clusters {
			for _, rec := range c.Records {
				if prev, dup := seen[rec]; dup {
					t.Fatalf("seed %d: record in clusters %d and %d", seed, prev, c.ID)
				}
				seen[rec] = c.ID
				if rec.Cluster != c.ID {
					t.Fatalf("seed %d: record label %d != cluster %d", seed, rec.Cluster, c.ID)
				}
			}
		}
		// Invariant 2: counts are consistent.
		if res.SecondLevel < res.TopLevel {
			t.Errorf("seed %d: L2 %d < L1 %d", seed, res.SecondLevel, res.TopLevel)
		}
		if res.Final > res.SecondLevel {
			t.Errorf("seed %d: final %d > L2 %d", seed, res.Final, res.SecondLevel)
		}
		if res.Final != len(res.Clusters) {
			t.Errorf("seed %d: Final %d != len(Clusters) %d", seed, res.Final, len(res.Clusters))
		}
		// Invariant 3: within a final cluster, all records share at
		// least the level-1 key lineage — title equality in this
		// fixture (merges require one shared feature, and the fixture
		// never reuses titles across families).
		for _, c := range res.Clusters {
			for _, rec := range c.Records {
				if rec.Title != c.Title {
					t.Fatalf("seed %d: cluster %d mixes titles %q and %q", seed, c.ID, c.Title, rec.Title)
				}
			}
		}
		// Invariant 4: determinism — rerunning yields identical counts.
		res2, err := Run(st, Config{Threshold: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Final != res.Final || res2.TopLevel != res.TopLevel || res2.SecondLevel != res.SecondLevel {
			t.Errorf("seed %d: rerun differs: %d/%d/%d vs %d/%d/%d", seed,
				res.TopLevel, res.SecondLevel, res.Final, res2.TopLevel, res2.SecondLevel, res2.Final)
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Raising the level-2 threshold can only merge more: the number of
	// second-level clusters must be non-increasing in the threshold.
	st := randomStore(t, 9, 40, 4)
	prev := -1
	for _, th := range []int{1, 2, 4, 8, 16} {
		res, err := Run(st, Config{Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.SecondLevel > prev {
			t.Errorf("threshold %d: L2 %d > previous %d", th, res.SecondLevel, prev)
		}
		prev = res.SecondLevel
	}
}
