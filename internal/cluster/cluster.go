// Package cluster implements WhoWas's webpage clustering (§5), which
// associates <IP, round> observations that are likely to host the same
// web application:
//
//  1. Level-1 clustering groups records by strict equality of five
//     features: title, template, server, keywords, and Google
//     Analytics ID.
//  2. Level-2 clustering splits each level-1 cluster by simhash, using
//     single-linkage over Hamming distance with a threshold tuned by
//     the gap statistic.
//  3. A merge heuristic rejoins clusters split by page revisions: two
//     records merge when they share the IP, their simhashes differ by
//     at most 3 bits, at least one level-1 feature matches, and the
//     clusters are temporally ordered.
//  4. Cleaning removes clusters whose titles indicate fetch failures
//     ("not found", "error", ...) and large clusters of default server
//     test pages ("welcome-apache", ...), which would otherwise lump
//     unrelated tenants together.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/simhash"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// Config tunes the clustering.
type Config struct {
	// Threshold is the level-2 Hamming distance threshold; 0 means
	// tune it with the gap statistic.
	Threshold int
	// MergeDistance is the max simhash distance for the merge
	// heuristic (3 in the paper, following Manku et al.).
	MergeDistance int
	// CleanMinAvgIPs is the average-size cutoff above which default
	// server pages are checked during cleaning (20 in the paper).
	CleanMinAvgIPs float64
	// Workers bounds level-2 clustering parallelism (0 = GOMAXPROCS
	// behaviour via a modest default).
	Workers int
	// Seed drives the gap statistic's reference draws.
	Seed int64
	// Metrics, when non-nil, receives the clustering instrumentation:
	// cluster.* counters and per-pass stage timings.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records a "cluster" root span with one
	// child per pass (level1, threshold, level2, merge, clean).
	Tracer *trace.Tracer
}

// WithDefaults returns the config with zero fields resolved to the
// paper's defaults (merge distance 3, clean cutoff 20, 8 workers). Run
// applies it internally; it is exported so callers and tests can
// observe the resolved values instead of re-stating them.
func (c Config) WithDefaults() Config {
	out := c
	if out.MergeDistance <= 0 {
		out.MergeDistance = 3
	}
	if out.CleanMinAvgIPs <= 0 {
		out.CleanMinAvgIPs = 20
	}
	if out.Workers <= 0 {
		out.Workers = 8
	}
	return out
}

// Cluster is one final cluster: a set of <IP, round> records believed
// to be the same web application.
type Cluster struct {
	ID      int64
	Records []*store.Record
	// Representative level-1 features (from the first member).
	Title, Template, Server, Keywords, AnalyticsID string
	// Removed marks clusters dropped by the cleaning step; their
	// records carry Cluster = 0.
	Removed bool
	// RemovedReason explains a removal ("error-title", "default-page").
	RemovedReason string
}

// Rounds returns the distinct rounds in which the cluster was
// observed, ascending.
func (c *Cluster) Rounds() []int {
	seen := map[int]bool{}
	for _, r := range c.Records {
		seen[r.Round] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// IPsInRound returns the distinct IPs associated with the cluster in a
// round.
func (c *Cluster) IPsInRound(round int) int {
	n := 0
	seen := map[uint32]bool{}
	for _, r := range c.Records {
		if r.Round == round && !seen[uint32(r.IP)] {
			seen[uint32(r.IP)] = true
			n++
		}
	}
	return n
}

// Result is the clustering output; Table 6 reports its counters.
type Result struct {
	TopLevel        int        // level-1 cluster count
	SecondLevel     int        // level-2 cluster count (before merge/clean)
	Final           int        // clusters after merging and cleaning
	Threshold       int        // level-2 distance threshold used
	UniqueHashes    int        // distinct simhashes across the input
	Clusters        []*Cluster // final clusters (Removed ones excluded)
	RemovedClusters []*Cluster
}

// ByID returns the final cluster with the given ID, or nil.
func (r *Result) ByID(id int64) *Cluster {
	for _, c := range r.Clusters {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// l1Key is the strict-equality level-1 grouping key.
type l1Key struct {
	title, template, server, keywords, gaID string
}

func keyOf(rec *store.Record) l1Key {
	return l1Key{rec.Title, rec.Template, rec.Server, rec.Keywords, rec.AnalyticsID}
}

// Run clusters every available record in the store and writes final
// cluster IDs back into the records' Cluster field (0 = not part of
// any final cluster).
func Run(st *store.Store, cfg Config) (*Result, error) {
	cfg = cfg.WithDefaults()
	reg := cfg.Metrics
	root := cfg.Tracer.Start("cluster", nil)

	// Collect the records to cluster: those with an HTTP response.
	spL1 := cfg.Tracer.Start("level1", root)
	stopLevel1 := reg.Stage("cluster.level1").Time()
	var records []*store.Record
	for _, round := range st.Rounds() {
		round.Each(func(rec *store.Record) bool {
			if rec.Available() {
				records = append(records, rec)
			}
			return true
		})
	}
	if len(records) == 0 {
		spL1.End()
		root.SetAttr(trace.String("error", "no-records"))
		root.End()
		return nil, fmt.Errorf("cluster: no available records to cluster")
	}
	reg.Counter("cluster.records_in").Add(int64(len(records)))

	// Level 1: strict equality on the five features.
	groups := make(map[l1Key][]*store.Record)
	hashSet := make(map[simhash.Fingerprint]struct{})
	for _, rec := range records {
		k := keyOf(rec)
		groups[k] = append(groups[k], rec)
		hashSet[rec.Simhash] = struct{}{}
	}
	stopLevel1()
	spL1.SetAttr(trace.Int("groups", len(groups)))
	spL1.End()

	// Threshold: explicit, or tuned by the gap statistic over the
	// observed level-1 groups.
	spThresh := cfg.Tracer.Start("threshold", root)
	stopThreshold := reg.Stage("cluster.threshold").Time()
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = gapThreshold(groups, cfg.Seed)
	}
	stopThreshold()
	spThresh.SetAttr(trace.Int("threshold", threshold))
	spThresh.End()

	// Level 2: split each level-1 group by simhash distance, in
	// parallel across groups.
	spL2 := cfg.Tracer.Start("level2", root)
	stopLevel2 := reg.Stage("cluster.level2").Time()
	type l2Out struct {
		key      l1Key
		clusters [][]*store.Record
	}
	keys := make([]l1Key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Deterministic order for stable cluster IDs.
	sort.Slice(keys, func(i, j int) bool { return l1Less(keys[i], keys[j]) })

	outs := make([]l2Out, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k l1Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i] = l2Out{key: k, clusters: splitBySimhash(groups[k], threshold)}
		}(i, k)
	}
	wg.Wait()

	secondLevel := 0
	var all []*Cluster
	var nextID int64 = 1
	for _, o := range outs {
		for _, members := range o.clusters {
			secondLevel++
			c := &Cluster{
				ID:          nextID,
				Records:     members,
				Title:       o.key.title,
				Template:    o.key.template,
				Server:      o.key.server,
				Keywords:    o.key.keywords,
				AnalyticsID: o.key.gaID,
			}
			nextID++
			all = append(all, c)
		}
	}
	stopLevel2()
	spL2.SetAttr(trace.Int("clusters", secondLevel))
	spL2.End()

	// Merge heuristic across clusters.
	spMerge := cfg.Tracer.Start("merge", root)
	stopMerge := reg.Stage("cluster.merge").Time()
	merged, nMerges := mergeClusters(all, cfg.MergeDistance)
	stopMerge()
	reg.Counter("cluster.merges").Add(int64(nMerges))
	spMerge.SetAttr(trace.Int("merges", nMerges))
	spMerge.End()

	// Cleaning.
	spClean := cfg.Tracer.Start("clean", root)
	stopClean := reg.Stage("cluster.clean").Time()
	rounds := st.NumRounds()
	var final, removed []*Cluster
	for _, c := range merged {
		if reason := cleanReason(c, rounds, cfg.CleanMinAvgIPs); reason != "" {
			c.Removed = true
			c.RemovedReason = reason
			removed = append(removed, c)
			continue
		}
		final = append(final, c)
	}
	stopClean()
	reg.Counter("cluster.removed").Add(int64(len(removed)))
	reg.Counter("cluster.final").Add(int64(len(final)))
	spClean.SetAttr(trace.Int("removed", len(removed)))
	spClean.End()
	root.SetAttr(trace.Int("records_in", len(records)), trace.Int("final", len(final)))
	root.End()

	// Re-number final clusters and label records. The collected copies
	// are mutated directly so the Result's cluster members carry their
	// IDs; the same assignment is then persisted through the store's
	// update path, which is what survives a lazy storage backend.
	type recKey struct {
		round int
		ip    ipaddr.Addr
	}
	// The changed-round set must be computed against the records'
	// pre-clustering IDs, before the in-place labeling below: on a
	// caching backend the records seen here and the records seen by
	// UpdateRounds can be the same pointers, so an after-the-fact
	// "did it change" comparison inside the update would read its own
	// mutation and skip the rewrite, leaving the on-disk round stale.
	assigned := make(map[recKey]int64, len(records))
	orig := make(map[recKey]int64, len(records))
	for _, rec := range records {
		k := recKey{rec.Round, rec.IP}
		orig[k] = rec.Cluster
		rec.Cluster = 0
		assigned[k] = 0
	}
	for i, c := range final {
		c.ID = int64(i + 1)
		for _, rec := range c.Records {
			rec.Cluster = c.ID
			assigned[recKey{rec.Round, rec.IP}] = c.ID
		}
	}
	changedRounds := make(map[int]bool)
	for k, id := range assigned {
		if orig[k] != id {
			changedRounds[k.round] = true
		}
	}
	err := st.UpdateRounds(func(round *store.Round) bool {
		changed := false
		round.Each(func(rec *store.Record) bool {
			if id, ok := assigned[recKey{rec.Round, rec.IP}]; ok {
				if rec.Cluster != id {
					rec.Cluster = id
					changed = true
				}
				if changedRounds[rec.Round] {
					changed = true
				}
			}
			return true
		})
		return changed
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: persisting assignments: %w", err)
	}

	return &Result{
		TopLevel:        len(groups),
		SecondLevel:     secondLevel,
		Final:           len(final),
		Threshold:       threshold,
		UniqueHashes:    len(hashSet),
		Clusters:        final,
		RemovedClusters: removed,
	}, nil
}

func l1Less(a, b l1Key) bool {
	if a.title != b.title {
		return a.title < b.title
	}
	if a.template != b.template {
		return a.template < b.template
	}
	if a.server != b.server {
		return a.server < b.server
	}
	if a.keywords != b.keywords {
		return a.keywords < b.keywords
	}
	return a.gaID < b.gaID
}

// splitBySimhash single-links a level-1 group's records by simhash
// distance. Identical fingerprints collapse first, so the pairwise
// phase runs over distinct hashes only.
func splitBySimhash(records []*store.Record, threshold int) [][]*store.Record {
	byHash := make(map[simhash.Fingerprint][]*store.Record)
	var hashes []simhash.Fingerprint
	for _, rec := range records {
		if _, ok := byHash[rec.Simhash]; !ok {
			hashes = append(hashes, rec.Simhash)
		}
		byHash[rec.Simhash] = append(byHash[rec.Simhash], rec)
	}
	uf := newUnionFind(len(hashes))
	for i := 0; i < len(hashes); i++ {
		for j := i + 1; j < len(hashes); j++ {
			if simhash.Distance(hashes[i], hashes[j]) <= threshold {
				uf.union(i, j)
			}
		}
	}
	byRoot := map[int][]*store.Record{}
	for i, h := range hashes {
		root := uf.find(i)
		byRoot[root] = append(byRoot[root], byHash[h]...)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]*store.Record, 0, len(byRoot))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// mergeClusters applies the §5 merge heuristic: records of the same IP
// in temporal order, simhash distance <= mergeDist, and at least one
// matching level-1 feature join their clusters. The second return is
// the number of cluster pairs actually joined.
func mergeClusters(clusters []*Cluster, mergeDist int) ([]*Cluster, int) {
	idx := map[*Cluster]int{}
	for i, c := range clusters {
		idx[c] = i
	}
	uf := newUnionFind(len(clusters))
	merges := 0

	// Build per-IP record lists with their cluster index.
	type obs struct {
		rec *store.Record
		ci  int
	}
	byIP := map[uint32][]obs{}
	for i, c := range clusters {
		for _, rec := range c.Records {
			byIP[uint32(rec.IP)] = append(byIP[uint32(rec.IP)], obs{rec, i})
		}
	}
	for _, list := range byIP {
		sort.Slice(list, func(i, j int) bool { return list[i].rec.Round < list[j].rec.Round })
		for i := 1; i < len(list); i++ {
			a, b := list[i-1], list[i]
			if a.ci == b.ci {
				continue
			}
			if simhash.Distance(a.rec.Simhash, b.rec.Simhash) > mergeDist {
				continue
			}
			if !oneFeatureEqual(a.rec, b.rec) {
				continue
			}
			if uf.union(a.ci, b.ci) {
				merges++
			}
		}
	}

	byRoot := map[int]*Cluster{}
	var order []int
	for i, c := range clusters {
		root := uf.find(i)
		if dst, ok := byRoot[root]; ok {
			dst.Records = append(dst.Records, c.Records...)
		} else {
			byRoot[root] = c
			order = append(order, root)
		}
	}
	out := make([]*Cluster, 0, len(byRoot))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out, merges
}

// oneFeatureEqual reports whether at least one of the five level-1
// features matches between two records (the merge condition tolerates
// revisions that changed the others).
func oneFeatureEqual(a, b *store.Record) bool {
	return (a.Title != "" && a.Title == b.Title) ||
		(a.Template != "" && a.Template == b.Template) ||
		(a.Server != "" && a.Server == b.Server) ||
		(a.Keywords != "" && a.Keywords == b.Keywords) ||
		(a.AnalyticsID != "" && a.AnalyticsID == b.AnalyticsID)
}

// errorTitleFragments flag clusters whose fetch returned no useful
// content (the paper's first cleaning script).
var errorTitleFragments = []string{
	"not found", "error", "forbidden", "unauthorized", "bad request",
	"moved permanently", "unavailable",
}

// defaultPageTitles flag stock server test pages (the paper's second
// cleaning pass, applied to clusters averaging > CleanMinAvgIPs IPs).
var defaultPageTitles = []string{
	"welcome-apache", "welcome to nginx", "iis windows server",
	"test page", "it works",
}

// cleanReason decides whether a cluster is removed, returning the
// reason or "".
func cleanReason(c *Cluster, rounds int, minAvgIPs float64) string {
	title := strings.ToLower(c.Title)
	for _, frag := range errorTitleFragments {
		if strings.Contains(title, frag) {
			return "error-title"
		}
	}
	if rounds > 0 {
		avg := float64(len(c.Records)) / float64(rounds)
		if avg > minAvgIPs {
			for _, frag := range defaultPageTitles {
				if strings.Contains(title, frag) {
					return "default-page"
				}
			}
		}
	}
	return ""
}

// unionFind is a plain weighted quick-union with path compression.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union joins two sets, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// gapThreshold tunes the level-2 distance threshold following the gap
// statistic's construction (Tibshirani et al., the "common method for
// estimating the number of clusters" the paper cites): for each
// candidate threshold it compares the log cluster count of the
// observed simhashes against the expectation under a null reference of
// uniformly random fingerprints (which never merge at small Hamming
// distances), and — per the standard one-standard-error rule — picks
// the smallest threshold whose gap is within s of the next one, i.e.
// the point where raising the threshold stops merging real structure.
func gapThreshold(groups map[l1Key][]*store.Record, seed int64) int {
	const maxT = 16
	// Collect distinct hashes deterministically (map iteration order
	// must not influence the threshold): gather, sort, subsample.
	seen := map[simhash.Fingerprint]bool{}
	for _, recs := range groups {
		for _, r := range recs {
			seen[r.Simhash] = true
		}
	}
	sample := make([]simhash.Fingerprint, 0, len(seen))
	for h := range seen {
		sample = append(sample, h)
	}
	sort.Slice(sample, func(i, j int) bool {
		if sample[i].Hi != sample[j].Hi {
			return sample[i].Hi < sample[j].Hi
		}
		return sample[i].Lo < sample[j].Lo
	})
	if len(sample) < 8 {
		return 3 // sensible default for tiny inputs
	}
	const maxSample = 900
	if len(sample) > maxSample {
		step := len(sample) / maxSample
		sub := make([]simhash.Fingerprint, 0, maxSample)
		for i := 0; i < len(sample) && len(sub) < maxSample; i += step {
			sub = append(sub, sample[i])
		}
		sample = sub
	}

	obs := clusterCounts(sample, maxT)

	rng := rand.New(rand.NewSource(seed + 42))
	const refDraws = 3
	refLog := make([][]float64, refDraws)
	for b := range refLog {
		ref := make([]simhash.Fingerprint, len(sample))
		for i := range ref {
			ref[i] = simhash.Fingerprint{Hi: rng.Uint32(), Lo: rng.Uint64()}
		}
		counts := clusterCounts(ref, maxT)
		refLog[b] = make([]float64, maxT+1)
		for t := 1; t <= maxT; t++ {
			refLog[b][t] = math.Log(float64(counts[t]))
		}
	}

	gap := make([]float64, maxT+1)
	sdev := make([]float64, maxT+1)
	for t := 1; t <= maxT; t++ {
		var mean float64
		for b := 0; b < refDraws; b++ {
			mean += refLog[b][t]
		}
		mean /= refDraws
		var ss float64
		for b := 0; b < refDraws; b++ {
			d := refLog[b][t] - mean
			ss += d * d
		}
		sd := math.Sqrt(ss/refDraws) * math.Sqrt(1+1.0/refDraws)
		// Floor the tolerance at ~1% of the count: the null reference
		// rarely merges at all, so its variance alone is degenerate.
		if floor := math.Log(1.01); sd < floor {
			sd = floor
		}
		gap[t] = mean - math.Log(float64(obs[t]))
		sdev[t] = sd
	}
	for t := 1; t < maxT; t++ {
		if gap[t] >= gap[t+1]-sdev[t+1] {
			return t
		}
	}
	return maxT
}

// clusterCounts returns, for every threshold 1..maxT, the number of
// single-linkage clusters over the hashes. Pairs within maxT are
// collected once and merged incrementally as the threshold rises.
func clusterCounts(hashes []simhash.Fingerprint, maxT int) []int {
	type pair struct {
		i, j, d int
	}
	var pairs []pair
	for i := 0; i < len(hashes); i++ {
		for j := i + 1; j < len(hashes); j++ {
			if d := simhash.Distance(hashes[i], hashes[j]); d <= maxT {
				pairs = append(pairs, pair{i, j, d})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
	uf := newUnionFind(len(hashes))
	comps := len(hashes)
	counts := make([]int, maxT+1)
	idx := 0
	for t := 1; t <= maxT; t++ {
		for idx < len(pairs) && pairs[idx].d <= t {
			if uf.union(pairs[idx].i, pairs[idx].j) {
				comps--
			}
			idx++
		}
		counts[t] = comps
	}
	return counts
}
