package scanner

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestStatsJSONWireShape pins the shard-submit wire shape of Stats:
// snake_case keys, not Go identifiers.
func TestStatsJSONWireShape(t *testing.T) {
	buf, err := json.Marshal(Stats{})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"probed", "probes", "responsive", "retries", "skipped"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Stats wire keys = %v, want %v", got, want)
	}
}
