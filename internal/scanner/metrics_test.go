package scanner

import (
	"testing"
	"time"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/ratelimit"
)

func TestWithDefaults(t *testing.T) {
	got := Config{}.WithDefaults()
	if got.Rate != 250 || got.Timeout != 2*time.Second || got.Workers != 64 {
		t.Errorf("resolved defaults = %+v", got)
	}
	// Caller-set fields survive.
	custom := Config{Rate: 10, Timeout: time.Second, Workers: 3}.WithDefaults()
	if custom.Rate != 10 || custom.Timeout != time.Second || custom.Workers != 3 {
		t.Errorf("custom config clobbered: %+v", custom)
	}
	// Value semantics: the receiver is untouched.
	base := Config{}
	_ = base.WithDefaults()
	if base.Rate != 0 {
		t.Error("WithDefaults mutated its receiver")
	}
}

func TestScannerMetrics(t *testing.T) {
	cloud, net := testSetup(t)
	reg := metrics.NewRegistry()
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	s, err := New(net, Config{Rate: 1e6, Workers: 32, Clock: clock, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	bl := ipaddr.NewSet()
	first, _ := cloud.Ranges().AtIndex(0)
	bl.Add(first)
	_, stats := collectScan(t, s, cloud.Ranges(), bl)

	snap := reg.Snapshot()
	if got := snap.Counters["scanner.probes"]; got != stats.Probes {
		t.Errorf("scanner.probes = %d, stats say %d", got, stats.Probes)
	}
	if got := snap.Counters["scanner.probed_ips"]; got != stats.Probed {
		t.Errorf("scanner.probed_ips = %d, stats say %d", got, stats.Probed)
	}
	if got := snap.Counters["scanner.skipped_ips"]; got != 1 {
		t.Errorf("scanner.skipped_ips = %d, want 1", got)
	}
	if got := snap.Counters["scanner.responsive_ips"]; got != stats.Responsive {
		t.Errorf("scanner.responsive_ips = %d, stats say %d", got, stats.Responsive)
	}
	lat := snap.Histograms["scanner.probe_latency"]
	if lat.Count != stats.Probes {
		t.Errorf("probe latency count = %d, want %d", lat.Count, stats.Probes)
	}
	if lat.P99MS < lat.P50MS {
		t.Errorf("latency percentiles inverted: %+v", lat)
	}
	// The rate limiter was active, so wait time was tracked.
	if snap.Stages["scanner.limiter_wait"].Passes != stats.Probes {
		t.Errorf("limiter_wait passes = %d, want %d", snap.Stages["scanner.limiter_wait"].Passes, stats.Probes)
	}
}

func TestScannerNilMetricsIsNoop(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	if s.mProbes != nil || s.mProbeLat != nil || s.mLimiterWait != nil {
		t.Error("scanner without a registry holds live handles")
	}
	// The uninstrumented path still scans correctly.
	got, stats := collectScan(t, s, cloud.Ranges(), nil)
	if int64(len(got)) != stats.Responsive || stats.Probed == 0 {
		t.Errorf("uninstrumented scan: %d results, stats %+v", len(got), stats)
	}
}
