package scanner

import (
	"context"
	"fmt"
	"net/url"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/faults"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
	"whowas/internal/ratelimit"
	"whowas/internal/store"
)

func testSetup(t testing.TB) (*cloudsim.Cloud, *netsim.Network) {
	t.Helper()
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(1024, 41))
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	return cloud, net
}

func fastScanner(t testing.TB, d netsim.Dialer) *Scanner {
	t.Helper()
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	s, err := New(d, Config{Rate: 1e6, Workers: 32, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil dialer accepted")
	}
	_, net := testSetup(t)
	s, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Rate != 250 || s.cfg.Timeout != 2*time.Second || s.cfg.Workers != DefaultWorkers() {
		t.Errorf("defaults = %+v", s.cfg)
	}
	// The hardware-scaled pool never shrinks below the paper's 64.
	if DefaultWorkers() < 64 {
		t.Errorf("DefaultWorkers() = %d, want >= 64", DefaultWorkers())
	}
}

// TestScanRangesInto: the lane entry point leaves the channel open and
// lets several scans share one stream; the union must equal one
// whole-range ScanRanges pass.
func TestScanRangesInto(t *testing.T) {
	cloud, net := testSetup(t)
	whole, _ := collectScan(t, fastScanner(t, net), cloud.Ranges(), nil)

	// A fresh network for the second pass: netsim's transient-loss
	// model is stateful per (ip, day) — rescanning the same network
	// recovers lossy hosts — so comparing scans needs equal substrates.
	_, net2 := testSetup(t)
	s := fastScanner(t, net2)
	results := make(chan Result, 1024)
	got := map[ipaddr.Addr]uint8{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			got[r.IP] = r.OpenPorts
		}
	}()
	var probed int64
	for _, p := range cloud.Ranges().Prefixes() {
		sub, err := ipaddr.NewRangeList([]ipaddr.Prefix{p})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := s.ScanRangesInto(context.Background(), sub, nil, results, 8)
		if err != nil {
			t.Fatal(err)
		}
		probed += stats.Probed
	}
	close(results)
	<-done
	if probed != int64(cloud.Ranges().Total()) {
		t.Errorf("per-prefix scans probed %d of %d", probed, cloud.Ranges().Total())
	}
	if len(got) != len(whole) {
		t.Fatalf("per-prefix scans found %d responsive, whole-range %d", len(got), len(whole))
	}
	for ip, ports := range whole {
		if got[ip] != ports {
			t.Errorf("IP %s: ports %d via lanes, %d via whole-range", ip, got[ip], ports)
		}
	}
}

func collectScan(t testing.TB, s *Scanner, ranges *ipaddr.RangeList, bl *ipaddr.Set) (map[ipaddr.Addr]uint8, *Stats) {
	t.Helper()
	results := make(chan Result, 1024)
	got := map[ipaddr.Addr]uint8{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			got[r.IP] = r.OpenPorts
		}
	}()
	stats, err := s.ScanRanges(context.Background(), ranges, bl, results)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	return got, stats
}

func TestScanMatchesGroundTruth(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	got, stats := collectScan(t, s, cloud.Ranges(), nil)

	if stats.Probed != int64(cloud.Ranges().Total()) {
		t.Errorf("Probed = %d, want %d", stats.Probed, cloud.Ranges().Total())
	}
	// Compare against ground truth: every bound, non-slow IP must be
	// found; transient loss may hide only first probes on lossy picks,
	// but the scan sends distinct probes per port so misses are rare.
	var missed, phantom int
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		_, seen := got[a]
		switch {
		case st.Bound && !st.Slow && !seen:
			missed++
		case !st.Bound && seen:
			phantom++
		}
		return true
	})
	if phantom > 0 {
		t.Errorf("%d unbound IPs reported responsive", phantom)
	}
	// Transient loss can drop ~0.3% of first probes; allow < 1%.
	if float64(missed) > 0.01*float64(stats.Responsive+1) {
		t.Errorf("missed %d live IPs of %d responsive", missed, stats.Responsive)
	}
}

func TestScanPortBits(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	got, _ := collectScan(t, s, cloud.Ranges(), nil)
	checked := 0
	for ip, ports := range got {
		st := cloud.StateAt(0, ip)
		if !st.Bound {
			continue
		}
		switch st.Ports {
		case cloudsim.SSHOnly:
			if ports&(store.PortHTTP|store.PortHTTPS) != 0 {
				t.Errorf("%s SSH-only but web bits %b", ip, ports)
			}
		case cloudsim.HTTPOnly:
			if ports&store.PortHTTP == 0 && ports != 0 {
				// First-probe loss can miss 80; then 443 fails and 22
				// answers, so PortSSH alone is possible but rare.
				continue
			}
			if ports&store.PortHTTPS != 0 {
				t.Errorf("%s HTTP-only but HTTPS bit set", ip)
			}
		case cloudsim.HTTPBoth:
			if ports&store.PortSSH != 0 {
				t.Errorf("%s web instance probed on 22 (got %b)", ip, ports)
			}
		}
		checked++
		if checked > 3000 {
			break
		}
	}
}

func TestSSHProbedOnlyWhenWebFails(t *testing.T) {
	cloud, net := testSetup(t)
	net.RecordProbes(true)
	s := fastScanner(t, net)
	_, _ = collectScan(t, s, cloud.Ranges(), nil)
	// Politeness (§4/§7): every IP receives at most 3 probes per round.
	violations := 0
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		if n := net.ProbeCount(0, a); n > 3 {
			violations++
		}
		return true
	})
	if violations > 0 {
		t.Errorf("%d IPs got more than 3 probes", violations)
	}
	// Web-answering IPs must get exactly 2 probes (80, 443), no SSH.
	var twoProbeOK, wrong int
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Ports == cloudsim.HTTPBoth && !st.Slow {
			if net.ProbeCount(0, a) == 2 {
				twoProbeOK++
			} else {
				wrong++
			}
		}
		return true
	})
	if wrong > twoProbeOK/50 {
		t.Errorf("probe counts off for web IPs: ok=%d wrong=%d", twoProbeOK, wrong)
	}
}

func TestBlacklistSkipped(t *testing.T) {
	cloud, net := testSetup(t)
	net.RecordProbes(true)
	s := fastScanner(t, net)
	bl := ipaddr.NewSet()
	// Blacklist the first 50 addresses.
	for i := int64(0); i < 50; i++ {
		a, _ := cloud.Ranges().AtIndex(i)
		bl.Add(a)
	}
	got, stats := collectScan(t, s, cloud.Ranges(), bl)
	if stats.Skipped != 50 {
		t.Errorf("Skipped = %d, want 50", stats.Skipped)
	}
	for i := int64(0); i < 50; i++ {
		a, _ := cloud.Ranges().AtIndex(i)
		if net.ProbeCount(0, a) != 0 {
			t.Errorf("blacklisted %s was probed", a)
		}
		if _, seen := got[a]; seen {
			t.Errorf("blacklisted %s in results", a)
		}
	}
}

func TestScanCancellation(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	ctx, cancel := context.WithCancel(context.Background())
	results := make(chan Result, 16)
	go func() {
		n := 0
		for range results {
			n++
			if n == 5 {
				cancel()
			}
		}
	}()
	_, err := s.ScanRanges(ctx, cloud.Ranges(), nil, results)
	if err == nil {
		t.Error("cancelled scan returned nil error")
	}
}

func TestRateLimitEnforced(t *testing.T) {
	cloud, net := testSetup(t)
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	s, err := New(net, Config{Rate: 250, Workers: 16, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Scan a small slice of the space and verify virtual elapsed time
	// implies <= 250 pps.
	prefixes := cloud.Ranges().Prefixes()[:1]
	sub, err := ipaddr.NewRangeList(prefixes)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan Result, 1024)
	go func() {
		for range results {
		}
	}()
	start := clock.Now()
	stats, err := s.ScanRanges(context.Background(), sub, nil, results)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start).Seconds()
	rate := float64(stats.Probes) / elapsed
	if rate > 260 { // small burst tolerance
		t.Errorf("effective probe rate %.1f pps exceeds 250", rate)
	}
}

func TestProbeOnceTimeoutSensitivity(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	// Find a slow live host: impatient probe fails, patient succeeds.
	var slow ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Slow {
			slow, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no slow host in sample")
	}
	ctx := context.Background()
	ok2, err := s.ProbeOnce(ctx, slow, 22, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ok8, err := s.ProbeOnce(ctx, slow, 22, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 || !ok8 {
		t.Errorf("slow host: 2s probe=%v (want false), 8s probe=%v (want true)", ok2, ok8)
	}
}

func TestIsTimeout(t *testing.T) {
	cloud, net := testSetup(t)
	var unbound, sshOnly ipaddr.Addr
	var haveU, haveS bool
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if !st.Bound && !haveU {
			unbound, haveU = a, true
		}
		if st.Bound && st.Ports == cloudsim.SSHOnly && !st.Slow && !haveS {
			sshOnly, haveS = a, true
		}
		return !(haveU && haveS)
	})
	_, err := net.DialContext(context.Background(), "tcp", unbound.String()+":80")
	if !IsTimeout(err) {
		t.Errorf("unbound dial: IsTimeout = false (%v)", err)
	}
	_, err = net.DialContext(context.Background(), "tcp", sshOnly.String()+":80")
	if IsTimeout(err) {
		t.Errorf("refused dial: IsTimeout = true (%v)", err)
	}
}

func BenchmarkScanRound(b *testing.B) {
	cloud, net := testSetup(b)
	s := fastScanner(b, net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make(chan Result, 1024)
		go func() {
			for range results {
			}
		}()
		if _, err := s.ScanRanges(context.Background(), cloud.Ranges(), nil, results); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIsTimeoutUnwrapsWrappedErrors(t *testing.T) {
	cloud, net := testSetup(t)
	var unbound, sshOnly ipaddr.Addr
	var haveU, haveS bool
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if !st.Bound && !haveU {
			unbound, haveU = a, true
		}
		if st.Bound && st.Ports == cloudsim.SSHOnly && !st.Slow && !haveS {
			sshOnly, haveS = a, true
		}
		return !(haveU && haveS)
	})
	_, rawTimeout := net.DialContext(context.Background(), "tcp", unbound.String()+":80")
	_, rawRefused := net.DialContext(context.Background(), "tcp", sshOnly.String()+":80")

	// The regression shape: the HTTP client hands back dial errors
	// wrapped in *url.Error, which is not itself assertable to
	// net.Error the way the raw dial error is. IsTimeout must classify
	// both shapes identically.
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"raw timeout", rawTimeout, true},
		{"url.Error timeout", &url.Error{Op: "Get", URL: "http://" + unbound.String() + "/", Err: rawTimeout}, true},
		{"fmt-wrapped timeout", fmt.Errorf("fetch root: %w", rawTimeout), true},
		{"raw refusal", rawRefused, false},
		{"url.Error refusal", &url.Error{Op: "Get", URL: "http://" + sshOnly.String() + "/", Err: rawRefused}, false},
		{"context deadline", context.DeadlineExceeded, true},
		{"context canceled", context.Canceled, false},
		{"nil", nil, false},
	}
	for _, c := range cases {
		if got := IsTimeout(c.err); got != c.want {
			t.Errorf("IsTimeout(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	_, net := testSetup(t)
	s, err := New(net, Config{Attempts: 4, RetryBackoff: 50 * time.Millisecond, RetryJitter: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		base := 50 * time.Millisecond << uint(attempt)
		d1 := s.retryDelay(ipaddr.Addr(0x36000001), 80, attempt)
		d2 := s.retryDelay(ipaddr.Addr(0x36000001), 80, attempt)
		if d1 != d2 {
			t.Errorf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 < base-20*time.Millisecond || d1 > base+20*time.Millisecond {
			t.Errorf("attempt %d: delay %v outside %v±20ms", attempt, d1, base)
		}
	}
	// Distinct probe identities should not all share one delay.
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[s.retryDelay(ipaddr.Addr(0x36000000+uint32(i)), 80, 0)] = true
	}
	if len(seen) < 2 {
		t.Error("jitter produced a single delay across 32 IPs")
	}
}

func TestRetriesOnlyOnTimeouts(t *testing.T) {
	cloud, net := testSetup(t)
	net.RecordProbes(true)
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	s, err := New(net, Config{
		Rate: 1e6, Workers: 1, Clock: clock,
		Attempts: 3, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var unbound, sshOnly ipaddr.Addr
	var haveU, haveS bool
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if !st.Bound && !haveU {
			unbound, haveU = a, true
		}
		if st.Bound && st.Ports == cloudsim.SSHOnly && !st.Slow && !haveS {
			sshOnly, haveS = a, true
		}
		return !(haveU && haveS)
	})
	ctx := context.Background()

	// Refusals are definitive: an SSH-only IP refuses 80 and 443 and
	// answers 22, so even with Attempts=3 it sees exactly 3 probes.
	stats := &Stats{}
	open, err := s.scanIP(ctx, sshOnly, stats)
	if err != nil {
		t.Fatal(err)
	}
	if open != store.PortSSH {
		t.Errorf("sshOnly open = %b, want SSH bit", open)
	}
	if got := net.ProbeCount(0, sshOnly); got != 3 {
		t.Errorf("sshOnly probe count = %d, want 3 (refusals must not retry)", got)
	}
	if stats.Retries != 0 {
		t.Errorf("sshOnly retries = %d, want 0", stats.Retries)
	}

	// Timeouts retry: an unbound IP times out on 80, 443 and 22, each
	// probed Attempts times.
	stats = &Stats{}
	if _, err := s.scanIP(ctx, unbound, stats); err != nil {
		t.Fatal(err)
	}
	if got := net.ProbeCount(0, unbound); got != 9 {
		t.Errorf("unbound probe count = %d, want 9 (3 ports x 3 attempts)", got)
	}
	if stats.Retries != 6 {
		t.Errorf("unbound retries = %d, want 6", stats.Retries)
	}
	if stats.Probes != 9 {
		t.Errorf("unbound probes = %d, want 9", stats.Probes)
	}
}

func TestRetriesRecoverInjectedLoss(t *testing.T) {
	cloud, net := testSetup(t)
	inj, err := faults.Wrap(net, faults.Scenario{Seed: 17, DialLossPerMille: 300}, faults.Options{Day: net.Day})
	if err != nil {
		t.Fatal(err)
	}
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	mk := func(attempts int) *Scanner {
		s, err := New(inj, Config{
			Rate: 1e6, Workers: 32, Clock: clock,
			Attempts: attempts, RetryBackoff: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	baseline := fastScanner(t, net)
	_, want := collectScan(t, baseline, cloud.Ranges(), nil)

	_, lossy := collectScan(t, mk(1), cloud.Ranges(), nil)
	_, retried := collectScan(t, mk(4), cloud.Ranges(), nil)

	// 30% per-attempt loss with no retries loses a visible slice of
	// the responsive population (a web IP vanishes only when both its
	// port probes are dropped, so the hit is ~10%, not 30%); four
	// attempts (0.3^4 < 1%) recover nearly all of it.
	if float64(lossy.Responsive) > 0.95*float64(want.Responsive) {
		t.Errorf("lossy single-attempt scan found %d of %d responsive; expected heavy loss",
			lossy.Responsive, want.Responsive)
	}
	if float64(retried.Responsive) < 0.97*float64(want.Responsive) {
		t.Errorf("retried scan found %d of %d responsive; retries did not recover loss",
			retried.Responsive, want.Responsive)
	}
	if retried.Retries == 0 {
		t.Error("retried scan reported zero retries")
	}
}
