package scanner

import (
	"context"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
	"whowas/internal/ratelimit"
	"whowas/internal/store"
)

func testSetup(t testing.TB) (*cloudsim.Cloud, *netsim.Network) {
	t.Helper()
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(1024, 41))
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	return cloud, net
}

func fastScanner(t testing.TB, d netsim.Dialer) *Scanner {
	t.Helper()
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	s, err := New(d, Config{Rate: 1e6, Workers: 32, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil dialer accepted")
	}
	_, net := testSetup(t)
	s, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Rate != 250 || s.cfg.Timeout != 2*time.Second || s.cfg.Workers != 64 {
		t.Errorf("defaults = %+v", s.cfg)
	}
}

func collectScan(t testing.TB, s *Scanner, ranges *ipaddr.RangeList, bl *ipaddr.Set) (map[ipaddr.Addr]uint8, *Stats) {
	t.Helper()
	results := make(chan Result, 1024)
	got := map[ipaddr.Addr]uint8{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			got[r.IP] = r.OpenPorts
		}
	}()
	stats, err := s.ScanRanges(context.Background(), ranges, bl, results)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	return got, stats
}

func TestScanMatchesGroundTruth(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	got, stats := collectScan(t, s, cloud.Ranges(), nil)

	if stats.Probed != int64(cloud.Ranges().Total()) {
		t.Errorf("Probed = %d, want %d", stats.Probed, cloud.Ranges().Total())
	}
	// Compare against ground truth: every bound, non-slow IP must be
	// found; transient loss may hide only first probes on lossy picks,
	// but the scan sends distinct probes per port so misses are rare.
	var missed, phantom int
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		_, seen := got[a]
		switch {
		case st.Bound && !st.Slow && !seen:
			missed++
		case !st.Bound && seen:
			phantom++
		}
		return true
	})
	if phantom > 0 {
		t.Errorf("%d unbound IPs reported responsive", phantom)
	}
	// Transient loss can drop ~0.3% of first probes; allow < 1%.
	if float64(missed) > 0.01*float64(stats.Responsive+1) {
		t.Errorf("missed %d live IPs of %d responsive", missed, stats.Responsive)
	}
}

func TestScanPortBits(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	got, _ := collectScan(t, s, cloud.Ranges(), nil)
	checked := 0
	for ip, ports := range got {
		st := cloud.StateAt(0, ip)
		if !st.Bound {
			continue
		}
		switch st.Ports {
		case cloudsim.SSHOnly:
			if ports&(store.PortHTTP|store.PortHTTPS) != 0 {
				t.Errorf("%s SSH-only but web bits %b", ip, ports)
			}
		case cloudsim.HTTPOnly:
			if ports&store.PortHTTP == 0 && ports != 0 {
				// First-probe loss can miss 80; then 443 fails and 22
				// answers, so PortSSH alone is possible but rare.
				continue
			}
			if ports&store.PortHTTPS != 0 {
				t.Errorf("%s HTTP-only but HTTPS bit set", ip)
			}
		case cloudsim.HTTPBoth:
			if ports&store.PortSSH != 0 {
				t.Errorf("%s web instance probed on 22 (got %b)", ip, ports)
			}
		}
		checked++
		if checked > 3000 {
			break
		}
	}
}

func TestSSHProbedOnlyWhenWebFails(t *testing.T) {
	cloud, net := testSetup(t)
	net.RecordProbes(true)
	s := fastScanner(t, net)
	_, _ = collectScan(t, s, cloud.Ranges(), nil)
	// Politeness (§4/§7): every IP receives at most 3 probes per round.
	violations := 0
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		if n := net.ProbeCount(0, a); n > 3 {
			violations++
		}
		return true
	})
	if violations > 0 {
		t.Errorf("%d IPs got more than 3 probes", violations)
	}
	// Web-answering IPs must get exactly 2 probes (80, 443), no SSH.
	var twoProbeOK, wrong int
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Ports == cloudsim.HTTPBoth && !st.Slow {
			if net.ProbeCount(0, a) == 2 {
				twoProbeOK++
			} else {
				wrong++
			}
		}
		return true
	})
	if wrong > twoProbeOK/50 {
		t.Errorf("probe counts off for web IPs: ok=%d wrong=%d", twoProbeOK, wrong)
	}
}

func TestBlacklistSkipped(t *testing.T) {
	cloud, net := testSetup(t)
	net.RecordProbes(true)
	s := fastScanner(t, net)
	bl := ipaddr.NewSet()
	// Blacklist the first 50 addresses.
	for i := int64(0); i < 50; i++ {
		a, _ := cloud.Ranges().AtIndex(i)
		bl.Add(a)
	}
	got, stats := collectScan(t, s, cloud.Ranges(), bl)
	if stats.Skipped != 50 {
		t.Errorf("Skipped = %d, want 50", stats.Skipped)
	}
	for i := int64(0); i < 50; i++ {
		a, _ := cloud.Ranges().AtIndex(i)
		if net.ProbeCount(0, a) != 0 {
			t.Errorf("blacklisted %s was probed", a)
		}
		if _, seen := got[a]; seen {
			t.Errorf("blacklisted %s in results", a)
		}
	}
}

func TestScanCancellation(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	ctx, cancel := context.WithCancel(context.Background())
	results := make(chan Result, 16)
	go func() {
		n := 0
		for range results {
			n++
			if n == 5 {
				cancel()
			}
		}
	}()
	_, err := s.ScanRanges(ctx, cloud.Ranges(), nil, results)
	if err == nil {
		t.Error("cancelled scan returned nil error")
	}
}

func TestRateLimitEnforced(t *testing.T) {
	cloud, net := testSetup(t)
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	s, err := New(net, Config{Rate: 250, Workers: 16, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Scan a small slice of the space and verify virtual elapsed time
	// implies <= 250 pps.
	prefixes := cloud.Ranges().Prefixes()[:1]
	sub, err := ipaddr.NewRangeList(prefixes)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan Result, 1024)
	go func() {
		for range results {
		}
	}()
	start := clock.Now()
	stats, err := s.ScanRanges(context.Background(), sub, nil, results)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start).Seconds()
	rate := float64(stats.Probes) / elapsed
	if rate > 260 { // small burst tolerance
		t.Errorf("effective probe rate %.1f pps exceeds 250", rate)
	}
}

func TestProbeOnceTimeoutSensitivity(t *testing.T) {
	cloud, net := testSetup(t)
	s := fastScanner(t, net)
	// Find a slow live host: impatient probe fails, patient succeeds.
	var slow ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Bound && st.Slow {
			slow, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no slow host in sample")
	}
	ctx := context.Background()
	ok2, err := s.ProbeOnce(ctx, slow, 22, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ok8, err := s.ProbeOnce(ctx, slow, 22, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 || !ok8 {
		t.Errorf("slow host: 2s probe=%v (want false), 8s probe=%v (want true)", ok2, ok8)
	}
}

func TestIsTimeout(t *testing.T) {
	cloud, net := testSetup(t)
	var unbound, sshOnly ipaddr.Addr
	var haveU, haveS bool
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if !st.Bound && !haveU {
			unbound, haveU = a, true
		}
		if st.Bound && st.Ports == cloudsim.SSHOnly && !st.Slow && !haveS {
			sshOnly, haveS = a, true
		}
		return !(haveU && haveS)
	})
	_, err := net.DialContext(context.Background(), "tcp", unbound.String()+":80")
	if !IsTimeout(err) {
		t.Errorf("unbound dial: IsTimeout = false (%v)", err)
	}
	_, err = net.DialContext(context.Background(), "tcp", sshOnly.String()+":80")
	if IsTimeout(err) {
		t.Errorf("refused dial: IsTimeout = true (%v)", err)
	}
}

func BenchmarkScanRound(b *testing.B) {
	cloud, net := testSetup(b)
	s := fastScanner(b, net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make(chan Result, 1024)
		go func() {
			for range results {
			}
		}()
		if _, err := s.ScanRanges(context.Background(), cloud.Ranges(), nil, results); err != nil {
			b.Fatal(err)
		}
	}
}
