// Package scanner implements WhoWas's probing engine (§4). For each
// target IP it sends lightweight TCP connection probes ("SYNs") first
// to port 80, then to 443; only if both fail does it probe 22, which
// identifies live instances without public web services. Probes time
// out after two seconds and by default are never retried — the paper
// measured that longer timeouts and retries change the responsive
// population by well under one percent (reproduced by the §4 timeout
// experiment in this repository's bench suite). Config.Attempts turns
// on the paper's calibration schedule for faulty-network runs: a
// timed-out probe is retried with exponential backoff and
// deterministic jitter, while a refusal — a definitive answer from the
// instance — never is.
//
// A token-bucket limiter enforces the global probe budget (250 probes
// per second by default — deliberately far below Internet-scanner
// rates, §4/§7) across all workers, and a per-IP opt-out blacklist is
// honored before any probe is sent.
package scanner

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/netsim"
	"whowas/internal/ratelimit"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// Config tunes the scanner. Zero fields take the paper's defaults.
type Config struct {
	Rate    float64       // global probes per second (default 250)
	Timeout time.Duration // per-probe timeout (default 2s)
	Workers int           // concurrent probing workers (default 64)
	Clock   ratelimit.Clock

	// Attempts is the maximum dial attempts per port probe. The default
	// of 1 is the paper's production schedule (no retries); chaos and
	// calibration runs raise it. Only timeouts are retried — a refusal
	// is a definitive answer from the instance.
	Attempts int
	// RetryBackoff is the delay before the first retry; it doubles on
	// each further attempt. Default 100ms when Attempts > 1.
	RetryBackoff time.Duration
	// RetryJitter bounds the ± adjustment applied to each backoff
	// delay. The jitter is derived from (ip, port, attempt), never from
	// a shared RNG, so identical scans sleep identically. Default 0.
	RetryJitter time.Duration
	// Metrics, when non-nil, receives the scanner's instrumentation:
	// the scanner.* counters, the scanner.probe_latency histogram and
	// the scanner.limiter_wait stage. Nil disables instrumentation
	// (including the per-probe clock reads).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records sampled per-IP "probe" spans
	// (attributes: ip, region, prefix, ports, probes) as children of
	// the span carried by the scan context. The fault layer annotates
	// these spans with the faults it injects into their dials. Nil
	// disables tracing; which IPs are sampled is the tracer's
	// deterministic per-IP decision.
	Tracer *trace.Tracer
	// RegionOf labels sampled probe spans with the target's cloud
	// region (cloudsim.Cloud.RegionOf); nil omits the attribute.
	RegionOf func(ipaddr.Addr) string
}

// DefaultWorkers is the resolved worker-pool size when Config.Workers
// is zero: scaled with the hardware (16 workers per scheduler core —
// probing is latency-bound, so the pool runs far wider than the CPU
// count) and floored at the paper's 64.
func DefaultWorkers() int {
	w := 16 * runtime.GOMAXPROCS(0)
	if w < 64 {
		w = 64
	}
	return w
}

// WithDefaults returns the config with zero fields resolved to the
// paper's defaults (250 pps, 2 s probe timeout, DefaultWorkers
// workers). New applies it internally; it is exported so callers and
// tests can observe the resolved values instead of re-stating them.
func (c Config) WithDefaults() Config {
	out := c
	if out.Rate <= 0 {
		out.Rate = 250
	}
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Second
	}
	if out.Workers <= 0 {
		out.Workers = DefaultWorkers()
	}
	if out.Attempts <= 0 {
		out.Attempts = 1
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 100 * time.Millisecond
	}
	return out
}

// Result reports one responsive IP's open ports. Unresponsive IPs
// produce no Result.
type Result struct {
	IP        ipaddr.Addr
	OpenPorts uint8 // store.PortSSH / PortHTTP / PortHTTPS bits
}

// Stats summarizes one scan round. It rides the coord submit wire
// inside a RegionResult, so the JSON field names are pinned.
type Stats struct {
	Probed     int64 `json:"probed"`     // IPs probed
	Skipped    int64 `json:"skipped"`    // IPs skipped via the opt-out blacklist
	Probes     int64 `json:"probes"`     // individual port probes sent (retries included)
	Retries    int64 `json:"retries"`    // probes that were retries of a timed-out attempt
	Responsive int64 `json:"responsive"` // IPs that answered at least one probe
}

// Scanner probes cloud address ranges through a Dialer.
type Scanner struct {
	dialer  netsim.Dialer
	cfg     Config
	limiter *ratelimit.Limiter

	// Instrumentation handles; all nil (no-op) without a registry.
	mProbes      *metrics.Counter   // individual port probes sent
	mProbedIPs   *metrics.Counter   // IPs fully probed
	mSkipped     *metrics.Counter   // IPs skipped via the blacklist
	mResponsive  *metrics.Counter   // IPs that answered a probe
	mRetries     *metrics.Counter   // retry probes after timeouts
	mProbeLat    *metrics.Histogram // per-probe dial latency
	mLimiterWait *metrics.Stage     // time blocked on the rate limiter
}

// UnlimitedRate disables rate limiting entirely when passed as
// Config.Rate. Only simulated campaigns use it — probing real networks
// unthrottled would violate the §7 politeness stance.
const UnlimitedRate = 1e9

// New builds a scanner over the given dialer.
func New(dialer netsim.Dialer, cfg Config) (*Scanner, error) {
	if dialer == nil {
		return nil, fmt.Errorf("scanner: nil dialer")
	}
	c := cfg.WithDefaults()
	s := &Scanner{dialer: dialer, cfg: c}
	if r := c.Metrics; r != nil {
		s.mProbes = r.Counter("scanner.probes")
		s.mProbedIPs = r.Counter("scanner.probed_ips")
		s.mSkipped = r.Counter("scanner.skipped_ips")
		s.mResponsive = r.Counter("scanner.responsive_ips")
		s.mRetries = r.Counter("scanner.retries")
		s.mProbeLat = r.Histogram("scanner.probe_latency")
		s.mLimiterWait = r.Stage("scanner.limiter_wait")
	}
	if c.Rate < UnlimitedRate {
		lim, err := ratelimit.NewWithClock(c.Rate, intMax(1, int(c.Rate/10)), c.Clock)
		if err != nil {
			return nil, fmt.Errorf("scanner: %w", err)
		}
		s.limiter = lim
	}
	return s, nil
}

// wait blocks for the global probe budget; a nil limiter means the
// unlimited simulation mode.
func (s *Scanner) wait(ctx context.Context) error {
	if s.limiter == nil {
		return ctx.Err()
	}
	if s.mLimiterWait == nil {
		return s.limiter.Wait(ctx)
	}
	start := time.Now()
	err := s.limiter.Wait(ctx)
	s.mLimiterWait.Add(time.Since(start))
	return err
}

// timedProbe wraps probe with the latency histogram, skipping the
// clock reads when instrumentation is off.
func (s *Scanner) timedProbe(ctx context.Context, ip ipaddr.Addr, port int, timeout time.Duration) (bool, error) {
	if s.mProbeLat == nil {
		return s.probe(ctx, ip, port, timeout)
	}
	start := time.Now()
	ok, err := s.probe(ctx, ip, port, timeout)
	s.mProbeLat.Observe(time.Since(start))
	return ok, err
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// probe sends one connection probe, returning whether the port
// answered and, when it did not, the dial error so callers can tell a
// timeout (retryable) from a refusal. Connection-refused counts as a
// response from the instance for liveness purposes only at the TCP
// level; the paper's scanner records a port as open only when the SYN
// is answered with SYN-ACK, so refusals report false here.
func (s *Scanner) probe(ctx context.Context, ip ipaddr.Addr, port int, timeout time.Duration) (bool, error) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := s.dialer.DialContext(pctx, "tcp", fmt.Sprintf("%s:%d", ip, port))
	if err != nil {
		return false, err
	}
	conn.Close()
	return true, nil
}

// probePort runs the full retry schedule for one (ip, port): up to
// Config.Attempts probes, retrying only on timeouts, with exponential
// backoff and deterministic jitter between attempts. Every attempt
// pays the rate-limiter toll and counts as a probe; the returned count
// is how many probes this port consumed.
func (s *Scanner) probePort(ctx context.Context, ip ipaddr.Addr, port int, stats *Stats) (bool, int64, error) {
	for attempt := 0; ; attempt++ {
		if err := s.wait(ctx); err != nil {
			return false, int64(attempt), err
		}
		atomic.AddInt64(&stats.Probes, 1)
		s.mProbes.Inc()
		ok, perr := s.timedProbe(ctx, ip, port, s.cfg.Timeout)
		if ok {
			return true, int64(attempt + 1), nil
		}
		if attempt+1 >= s.cfg.Attempts || !IsTimeout(perr) {
			return false, int64(attempt + 1), nil
		}
		atomic.AddInt64(&stats.Retries, 1)
		s.mRetries.Inc()
		if err := sleepCtx(ctx, s.retryDelay(ip, port, attempt)); err != nil {
			return false, int64(attempt + 1), err
		}
	}
}

// retryDelay is the pause before retry number attempt+1: RetryBackoff
// doubled per prior attempt, adjusted by a jitter derived from
// (ip, port, attempt) so the schedule is a pure function of the probe
// identity and identical scans sleep identically.
func (s *Scanner) retryDelay(ip ipaddr.Addr, port, attempt int) time.Duration {
	d := s.cfg.RetryBackoff << uint(attempt)
	if j := s.cfg.RetryJitter; j > 0 {
		h := mix64(uint64(ip)<<24 ^ uint64(port)<<8 ^ uint64(attempt))
		span := uint64(2*j + 1)
		d += time.Duration(h%span) - j
	}
	if d < 0 {
		d = 0
	}
	return d
}

// mix64 is the splitmix64 finalizer (the same mixing netsim and the
// fault layer use for their seeded decisions).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sleepCtx sleeps for d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ProbeOnce exposes a single probe with an explicit timeout, used by
// the §4 timeout/retry experiment.
func (s *Scanner) ProbeOnce(ctx context.Context, ip ipaddr.Addr, port int, timeout time.Duration) (bool, error) {
	if err := s.wait(ctx); err != nil {
		return false, err
	}
	s.mProbes.Inc()
	ok, _ := s.timedProbe(ctx, ip, port, timeout)
	return ok, nil
}

// startProbeSpan opens the sampled per-IP span, or returns nil when
// the IP is unsampled (or tracing is off). The span parents to the
// round's scan span carried by ctx.
func (s *Scanner) startProbeSpan(ctx context.Context, ip ipaddr.Addr) *trace.Span {
	if !s.cfg.Tracer.SampleIP(uint64(ip)) {
		return nil
	}
	attrs := []trace.Attr{
		trace.String("ip", ip.String()),
		trace.String("prefix", ip.Prefix22().String()),
	}
	if s.cfg.RegionOf != nil {
		attrs = append(attrs, trace.String("region", s.cfg.RegionOf(ip)))
	}
	return s.cfg.Tracer.Start("probe", trace.FromContext(ctx), attrs...)
}

// scanIP runs the §4 probe sequence for one IP: 80, then 443, then 22
// only if both web probes failed. Sampled IPs get a "probe" span
// wrapping the whole sequence; the fault injector sees it through the
// dial context and annotates the faults it injects.
func (s *Scanner) scanIP(ctx context.Context, ip ipaddr.Addr, stats *Stats) (uint8, error) {
	sp := s.startProbeSpan(ctx, ip)
	if sp != nil {
		ctx = trace.NewContext(ctx, sp)
	}
	open, probes, err := s.probeSequence(ctx, ip, stats)
	if sp != nil {
		sp.SetAttr(trace.Int("ports", int(open)), trace.Int64("probes", probes))
		if err != nil {
			sp.SetAttr(trace.String("error", "aborted"))
		}
		sp.End()
	}
	return open, err
}

func (s *Scanner) probeSequence(ctx context.Context, ip ipaddr.Addr, stats *Stats) (uint8, int64, error) {
	var open uint8
	var probes int64
	for _, port := range []int{80, 443} {
		ok, n, err := s.probePort(ctx, ip, port, stats)
		probes += n
		if err != nil {
			return 0, probes, err
		}
		if ok {
			if port == 80 {
				open |= store.PortHTTP
			} else {
				open |= store.PortHTTPS
			}
		}
	}
	if open == 0 {
		ok, n, err := s.probePort(ctx, ip, 22, stats)
		probes += n
		if err != nil {
			return 0, probes, err
		}
		if ok {
			open |= store.PortSSH
		}
	}
	return open, probes, nil
}

// ScanRanges probes every address in ranges (minus the blacklist),
// streaming Results for responsive IPs to the results channel, which
// is closed when the scan completes. The returned Stats are final only
// after the channel closes.
func (s *Scanner) ScanRanges(ctx context.Context, ranges *ipaddr.RangeList, blacklist *ipaddr.Set, results chan<- Result) (*Stats, error) {
	stats, err := s.ScanRangesInto(ctx, ranges, blacklist, results, 0)
	close(results)
	return stats, err
}

// ScanRangesInto is the pipeline-lane entry point: like ScanRanges it
// probes ranges minus the blacklist and streams Results, but it leaves
// the results channel open — a region-sharded lane feeds several
// sequential region scans into one stream the lane owns — and sizes
// this scan's worker pool explicitly (so N concurrent lanes can split
// one configured pool instead of multiplying it). workers <= 0 uses
// the configured pool size. All scans share the scanner's global rate
// limiter, which keeps the §7 probe budget campaign-wide no matter how
// many lanes run.
func (s *Scanner) ScanRangesInto(ctx context.Context, ranges *ipaddr.RangeList, blacklist *ipaddr.Set, results chan<- Result, workers int) (*Stats, error) {
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	stats := &Stats{}
	tasks := make(chan ipaddr.Addr, 4*workers)
	var wg sync.WaitGroup
	var firstErr atomic.Value

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ip := range tasks {
				open, err := s.scanIP(ctx, ip, stats)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					// Drain remaining tasks quickly on cancellation.
					continue
				}
				atomic.AddInt64(&stats.Probed, 1)
				s.mProbedIPs.Inc()
				if open != 0 {
					atomic.AddInt64(&stats.Responsive, 1)
					s.mResponsive.Inc()
					select {
					case results <- Result{IP: ip, OpenPorts: open}:
					case <-ctx.Done():
						firstErr.CompareAndSwap(nil, ctx.Err())
					}
				}
			}
		}()
	}

feed:
	for _, prefix := range ranges.Prefixes() {
		last := prefix.Last()
		for ip := prefix.First(); ; ip++ {
			if blacklist.Contains(ip) {
				atomic.AddInt64(&stats.Skipped, 1)
				s.mSkipped.Inc()
			} else {
				select {
				case tasks <- ip:
				case <-ctx.Done():
					break feed
				}
			}
			if ip == last {
				break
			}
		}
	}
	close(tasks)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return stats, err
	}
	return stats, ctx.Err()
}

// IsTimeout reports whether a dial error was a timeout (dropped SYN)
// rather than a refusal; exposed for diagnostics and tests. errors.As
// unwraps, so a *url.Error from an HTTP client and the raw net.Error
// underneath it classify identically.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
