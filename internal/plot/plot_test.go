package plot

import (
	"strings"
	"testing"
)

func TestLineBasics(t *testing.T) {
	out := Line("test chart", []Series{
		{Name: "up", Points: []float64{1, 2, 3, 4, 5}, Marker: '*'},
		{Name: "down", Points: []float64{5, 4, 3, 2, 1}, Marker: '+'},
	}, 40, 8)
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + legend
	if len(lines) != 1+8+1+1 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestLineRisingSeriesTopRight(t *testing.T) {
	out := Line("rise", []Series{{Name: "s", Points: []float64{0, 1, 2, 3, 4, 5, 6, 7}}}, 32, 6)
	rows := strings.Split(out, "\n")
	top := rows[1]
	bottom := rows[6]
	// The maximum lands on the top row's right side, minimum bottom-left.
	if !strings.Contains(top, "*") {
		t.Errorf("top row empty:\n%s", out)
	}
	if strings.LastIndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Errorf("rising series not rising:\n%s", out)
	}
}

func TestLineEmptyAndDegenerate(t *testing.T) {
	if out := Line("empty", nil, 40, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	// Constant series must not divide by zero.
	out := Line("flat", []Series{{Name: "c", Points: []float64{2, 2, 2}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("flat chart missing markers:\n%s", out)
	}
	// Tiny dimensions are clamped.
	_ = Line("tiny", []Series{{Name: "x", Points: []float64{1}}}, 1, 1)
}

func TestCDFClamps(t *testing.T) {
	out := CDF("cdf", []Series{{Name: "d", Points: []float64{-0.5, 0.5, 1.5}}}, 20, 5)
	if !strings.Contains(out, "cdf") {
		t.Error("missing title")
	}
}
