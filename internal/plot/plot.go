// Package plot renders small ASCII charts for the benchmark reports:
// the paper's figures are time series and CDFs, and a terminal sketch
// of each makes shape comparisons (growth, dips, crossovers) readable
// without exporting the CSV series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []float64 // y-values, evenly spaced on x
	Marker byte      // glyph used for this series ('*', '+', ...)
}

// Line renders series into a width x height ASCII chart with a
// y-axis scale and a legend. Series of different lengths are aligned
// at x=0; missing trailing points simply end a line early.
func Line(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
		for _, v := range s.Points {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if maxLen == 0 {
		return title + ": (no data)\n"
	}
	if lo == hi {
		hi = lo + 1
	}
	// Pad the range slightly so extremes stay visible.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i, v := range s.Points {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			y := int(math.Round((v - lo) / (hi - lo) * float64(height-1)))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = marker
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(title + "\n")
	for r, row := range grid {
		// Label the top, middle and bottom rows with their values.
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.4g ", hi)
		case height / 2:
			label = fmt.Sprintf("%9.4g ", lo+(hi-lo)*float64(height-1-r)/float64(height-1))
		case height - 1:
			label = fmt.Sprintf("%9.4g ", lo)
		}
		sb.WriteString(label + "|" + string(row) + "\n")
	}
	sb.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	var legend []string
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	sb.WriteString(strings.Repeat(" ", 11) + strings.Join(legend, "   ") + "\n")
	return sb.String()
}

// CDF renders cumulative-distribution curves: xs are the sorted
// distinct x-values per series, ys the cumulative fractions (0..1).
func CDF(title string, series []Series, width, height int) string {
	// A CDF is just a line chart of y in [0,1]; reuse Line after
	// clamping.
	for si := range series {
		for pi, v := range series[si].Points {
			if v < 0 {
				series[si].Points[pi] = 0
			}
			if v > 1 {
				series[si].Points[pi] = 1
			}
		}
	}
	return Line(title, series, width, height)
}
