// Package ratelimit provides a token-bucket rate limiter. The WhoWas
// scanner uses it to enforce the global probe budget (250 probes per
// second by default, §4) across all scanning workers; the cartography
// sweep uses a second instance for its "suitably low rate" DNS queries.
//
// The limiter is safe for concurrent use and supports a pluggable clock
// so the simulated campaigns and tests never sleep on the wall clock.
package ratelimit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for the limiter. The zero Limiter uses the real
// clock; simulations install a fake.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Limiter is a token bucket: capacity burst, refilled at rate tokens
// per second. Wait blocks until a token is available.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	clock  Clock
}

// ErrBadRate reports an invalid limiter configuration.
var ErrBadRate = errors.New("ratelimit: rate and burst must be positive")

// New builds a limiter issuing rate tokens per second with the given
// burst capacity, using the real clock.
func New(rate float64, burst int) (*Limiter, error) {
	return NewWithClock(rate, burst, realClock{})
}

// NewWithClock is New with an explicit clock (for simulation/tests).
func NewWithClock(rate float64, burst int, clock Clock) (*Limiter, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("%w: rate=%v burst=%d", ErrBadRate, rate, burst)
	}
	if clock == nil {
		clock = realClock{}
	}
	return &Limiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   clock.Now(),
		clock:  clock,
	}, nil
}

// MustNew is New but panics on configuration error; for package-level
// defaults built from constants.
func MustNew(rate float64, burst int) *Limiter {
	l, err := New(rate, burst)
	if err != nil {
		panic(err)
	}
	return l
}

// refillLocked advances the bucket to now. Callers hold mu.
func (l *Limiter) refillLocked(now time.Time) {
	elapsed := now.Sub(l.last)
	if elapsed <= 0 {
		return
	}
	l.last = now
	l.tokens += elapsed.Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// Allow reports whether one token is immediately available, consuming
// it if so. It never blocks.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(l.clock.Now())
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or ctx is cancelled.
func (l *Limiter) Wait(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.mu.Lock()
		now := l.clock.Now()
		l.refillLocked(now)
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		d := time.Duration(need * float64(time.Second))
		if d < time.Microsecond {
			d = time.Microsecond
		}
		if err := l.clock.Sleep(ctx, d); err != nil {
			return err
		}
	}
}

// Rate returns the configured tokens-per-second rate.
func (l *Limiter) Rate() float64 { return l.rate }

// FakeClock is a manually advanced clock for tests and simulated
// campaigns. Sleeps complete by advancing virtual time immediately, so
// rate-limited loops run at full speed while preserving limiter
// accounting.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d and returns immediately.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// Advance moves the virtual clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
