package ratelimit

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		rate  float64
		burst int
	}{{0, 1}, {-1, 1}, {1, 0}, {1, -5}} {
		if _, err := New(c.rate, c.burst); err == nil {
			t.Errorf("New(%v,%d) succeeded, want error", c.rate, c.burst)
		}
	}
	if _, err := New(250, 10); err != nil {
		t.Errorf("New(250,10): %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestAllowBurst(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	l, err := NewWithClock(10, 3, clock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("Allow %d denied within burst", i)
		}
	}
	if l.Allow() {
		t.Fatal("Allow granted beyond burst without refill")
	}
	clock.Advance(100 * time.Millisecond) // refills exactly 1 token at 10/s
	if !l.Allow() {
		t.Fatal("Allow denied after refill")
	}
	if l.Allow() {
		t.Fatal("Allow granted twice after single-token refill")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	l, _ := NewWithClock(1000, 2, clock)
	clock.Advance(time.Hour)
	granted := 0
	for l.Allow() {
		granted++
		if granted > 10 {
			break
		}
	}
	if granted != 2 {
		t.Errorf("granted %d tokens after long idle, want burst=2", granted)
	}
}

func TestWaitPacesRequests(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	l, _ := NewWithClock(250, 1, clock)
	ctx := context.Background()
	start := clock.Now()
	const n = 500
	for i := 0; i < n; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clock.Now().Sub(start).Seconds()
	// 500 tokens at 250/s must take >= ~2 virtual seconds (minus burst).
	if elapsed < 1.9 {
		t.Errorf("500 waits at 250/s advanced only %.3fs of virtual time", elapsed)
	}
	if elapsed > 2.5 {
		t.Errorf("500 waits at 250/s advanced %.3fs, want ~2s", elapsed)
	}
}

func TestWaitContextCancelled(t *testing.T) {
	l := MustNew(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Drain the burst token first so Wait must block.
	l.Allow()
	if err := l.Wait(ctx); err != context.Canceled {
		t.Errorf("Wait on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestConcurrentWaitTotalThroughput(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	l, _ := NewWithClock(1000, 5, clock)
	ctx := context.Background()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := l.Wait(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := workers * perWorker
	elapsed := clock.Now().Sub(time.Unix(0, 0)).Seconds()
	if min := float64(total-5)/1000 - 0.05; elapsed < min {
		t.Errorf("%d tokens at 1000/s advanced only %.3fs virtual time, want >= %.3f", total, elapsed, min)
	}
}

func TestRealClockSleepCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := realClock{}.Sleep(ctx, time.Hour)
	if err != context.Canceled {
		t.Errorf("Sleep = %v, want context.Canceled", err)
	}
}

func TestRate(t *testing.T) {
	l := MustNew(42, 1)
	if l.Rate() != 42 {
		t.Errorf("Rate = %v, want 42", l.Rate())
	}
}
