package ratelimit

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestBudget(t *testing.T, rate float64, ttl time.Duration) (*Budget, *FakeClock) {
	t.Helper()
	clk := NewFakeClock(time.Unix(1700000000, 0))
	b, err := NewBudget(rate, ttl, clk)
	if err != nil {
		t.Fatalf("NewBudget: %v", err)
	}
	return b, clk
}

func TestBudgetConfigErrors(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	if _, err := NewBudget(0, time.Second, clk); !errors.Is(err, ErrBadRate) {
		t.Errorf("rate 0: got %v, want ErrBadRate", err)
	}
	if _, err := NewBudget(-5, time.Second, clk); !errors.Is(err, ErrBadRate) {
		t.Errorf("rate -5: got %v, want ErrBadRate", err)
	}
	if _, err := NewBudget(100, 0, clk); err == nil {
		t.Error("ttl 0: want error, got nil")
	}
	b, err := NewBudget(100, time.Second, nil)
	if err != nil {
		t.Fatalf("nil clock: %v", err)
	}
	if b.Rate() != 100 || b.TTL() != time.Second {
		t.Errorf("Rate/TTL = %v/%v, want 100/1s", b.Rate(), b.TTL())
	}
}

func TestBudgetAcquireRelease(t *testing.T) {
	b, _ := newTestBudget(t, 250, time.Minute)
	l, err := b.Acquire("w1", 100)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.ID != "w1" || l.Rate != 100 {
		t.Errorf("lease = %+v", l)
	}
	if got := b.Leased(); got != 100 {
		t.Errorf("Leased = %v, want 100", got)
	}
	if _, err := b.Acquire("w2", 150); err != nil {
		t.Fatalf("Acquire w2: %v", err)
	}
	if got := b.Leased(); got != 250 {
		t.Errorf("Leased = %v, want 250", got)
	}
	if err := b.Release("w1"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := b.Leased(); got != 150 {
		t.Errorf("Leased after release = %v, want 150", got)
	}
	if err := b.Release("w1"); !errors.Is(err, ErrNoLease) {
		t.Errorf("double Release: got %v, want ErrNoLease", err)
	}
	if got := b.Holders(); len(got) != 1 || got[0] != "w2" {
		t.Errorf("Holders = %v, want [w2]", got)
	}
}

func TestBudgetOverSubscriptionRejected(t *testing.T) {
	b, _ := newTestBudget(t, 250, time.Minute)
	if _, err := b.Acquire("w1", 200); err != nil {
		t.Fatalf("Acquire w1: %v", err)
	}
	if _, err := b.Acquire("w2", 100); !errors.Is(err, ErrOverSubscribed) {
		t.Fatalf("over-subscribe: got %v, want ErrOverSubscribed", err)
	}
	// The rejected acquire must not count against the budget.
	if got := b.Leased(); got != 200 {
		t.Errorf("Leased after rejection = %v, want 200", got)
	}
	// The remaining slice is still grantable.
	if _, err := b.Acquire("w2", 50); err != nil {
		t.Errorf("Acquire exact remainder: %v", err)
	}
	if _, err := b.Acquire("w3", 1); !errors.Is(err, ErrOverSubscribed) {
		t.Errorf("full budget: got %v, want ErrOverSubscribed", err)
	}
	if _, err := b.Acquire("w3", 0); !errors.Is(err, ErrBadRate) {
		t.Errorf("zero-rate acquire: got %v, want ErrBadRate", err)
	}
}

func TestBudgetReacquireReplacesOwnLease(t *testing.T) {
	b, _ := newTestBudget(t, 100, time.Minute)
	if _, err := b.Acquire("w1", 100); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Re-registering under the same ID swaps the old slice for the new
	// one; it must not be double-counted against the budget.
	if _, err := b.Acquire("w1", 60); err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if got := b.Leased(); got != 60 {
		t.Errorf("Leased = %v, want 60", got)
	}
	if _, err := b.Acquire("w2", 40); err != nil {
		t.Errorf("Acquire freed remainder: %v", err)
	}
}

func TestBudgetLeaseExpiry(t *testing.T) {
	b, clk := newTestBudget(t, 250, 10*time.Second)
	l, err := b.Acquire("w1", 250)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if want := clk.Now().Add(10 * time.Second); !l.Expires.Equal(want) {
		t.Errorf("Expires = %v, want %v", l.Expires, want)
	}
	// Another worker cannot fit while the lease is alive.
	if _, err := b.Acquire("w2", 1); !errors.Is(err, ErrOverSubscribed) {
		t.Fatalf("live lease: got %v, want ErrOverSubscribed", err)
	}
	clk.Advance(10*time.Second + time.Millisecond)
	// Expiry returns the tokens to the pool...
	if got := b.Leased(); got != 0 {
		t.Errorf("Leased after expiry = %v, want 0", got)
	}
	// ...and the dead worker's slice is grantable to a replacement.
	if _, err := b.Acquire("w2", 250); err != nil {
		t.Errorf("Acquire after expiry: %v", err)
	}
	// The dead lease can no longer be renewed or released.
	if _, err := b.Renew("w1"); !errors.Is(err, ErrNoLease) {
		t.Errorf("Renew expired: got %v, want ErrNoLease", err)
	}
	if err := b.Release("w1"); !errors.Is(err, ErrNoLease) {
		t.Errorf("Release expired: got %v, want ErrNoLease", err)
	}
}

func TestBudgetRenewExtendsLease(t *testing.T) {
	b, clk := newTestBudget(t, 100, 10*time.Second)
	if _, err := b.Acquire("w1", 100); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Heartbeat inside the TTL keeps the lease alive indefinitely.
	for i := 0; i < 5; i++ {
		clk.Advance(8 * time.Second)
		l, err := b.Renew("w1")
		if err != nil {
			t.Fatalf("Renew #%d: %v", i, err)
		}
		if want := clk.Now().Add(10 * time.Second); !l.Expires.Equal(want) {
			t.Errorf("Renew #%d Expires = %v, want %v", i, l.Expires, want)
		}
	}
	if got := b.Leased(); got != 100 {
		t.Errorf("Leased = %v, want 100", got)
	}
	// Missing one heartbeat past the TTL loses the lease.
	clk.Advance(10*time.Second + time.Millisecond)
	if _, err := b.Renew("w1"); !errors.Is(err, ErrNoLease) {
		t.Errorf("Renew after expiry: got %v, want ErrNoLease", err)
	}
	if _, err := b.Renew("ghost"); !errors.Is(err, ErrNoLease) {
		t.Errorf("Renew unknown: got %v, want ErrNoLease", err)
	}
}

func TestBudgetReapReportsDeadLeases(t *testing.T) {
	b, clk := newTestBudget(t, 300, 5*time.Second)
	for _, id := range []string{"w3", "w1", "w2"} {
		if _, err := b.Acquire(id, 100); err != nil {
			t.Fatalf("Acquire %s: %v", id, err)
		}
	}
	if dead := b.Reap(); len(dead) != 0 {
		t.Errorf("Reap with live leases = %v, want none", dead)
	}
	clk.Advance(4 * time.Second)
	if _, err := b.Renew("w2"); err != nil {
		t.Fatalf("Renew w2: %v", err)
	}
	clk.Advance(2 * time.Second)
	dead := b.Reap()
	if len(dead) != 2 || dead[0] != "w1" || dead[1] != "w3" {
		t.Fatalf("Reap = %v, want [w1 w3]", dead)
	}
	if got := b.Leased(); got != 100 {
		t.Errorf("Leased after reap = %v, want 100", got)
	}
	// Reap is idempotent: the dead IDs are gone.
	if dead := b.Reap(); len(dead) != 0 {
		t.Errorf("second Reap = %v, want none", dead)
	}
}

// TestBudgetReapSurvivesSideEffectReaps is the regression test for a
// real fleet deadlock: every Budget method reaps expired leases as a
// side effect, so a survivor's Renew (or a status page's Holders)
// could collect a dead worker's lease before the coordinator's Reap
// tick — and the death, with the shard re-assignment it must trigger,
// was silently swallowed. Deaths must reach Reap no matter which call
// observes the expiry first.
func TestBudgetReapSurvivesSideEffectReaps(t *testing.T) {
	b, clk := newTestBudget(t, 300, 5*time.Second)
	for _, id := range []string{"victim", "survivor"} {
		if _, err := b.Acquire(id, 100); err != nil {
			t.Fatalf("Acquire %s: %v", id, err)
		}
	}
	clk.Advance(4 * time.Second)
	if _, err := b.Renew("survivor"); err != nil {
		t.Fatalf("Renew survivor: %v", err)
	}
	clk.Advance(2 * time.Second) // victim expires, survivor lives

	// Each of these observes (and internally collects) the expiry
	// before Reap gets a chance.
	if holders := b.Holders(); len(holders) != 1 || holders[0] != "survivor" {
		t.Fatalf("Holders = %v, want [survivor]", holders)
	}
	if got := b.Leased(); got != 100 {
		t.Fatalf("Leased = %v, want 100", got)
	}
	if _, err := b.Renew("survivor"); err != nil {
		t.Fatalf("Renew survivor: %v", err)
	}
	if _, err := b.Renew("victim"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("Renew victim = %v, want ErrNoLease", err)
	}

	if dead := b.Reap(); len(dead) != 1 || dead[0] != "victim" {
		t.Fatalf("Reap = %v, want [victim]", dead)
	}
	if dead := b.Reap(); len(dead) != 0 {
		t.Errorf("second Reap = %v, want none", dead)
	}
}

// TestBudgetReacquireScrubsDeath: a worker whose lease expired and
// who then re-registers under the same ID handles its own orphaned
// state at registration — Reap must not also report it as a death
// afterwards, or the coordinator would re-queue the live worker's
// fresh assignments out from under it.
func TestBudgetReacquireScrubsDeath(t *testing.T) {
	b, clk := newTestBudget(t, 300, 5*time.Second)
	if _, err := b.Acquire("phoenix", 100); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.Advance(6 * time.Second)
	// The expiry is observed by a side-effect reap, not by Reap.
	if holders := b.Holders(); len(holders) != 0 {
		t.Fatalf("Holders = %v, want none", holders)
	}
	if _, err := b.Acquire("phoenix", 100); err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if dead := b.Reap(); len(dead) != 0 {
		t.Errorf("Reap after re-acquire = %v, want none", dead)
	}
}

// TestBudgetNeverOverSubscribed hammers the budget concurrently and
// checks the §7 invariant after every successful acquire: the sum of
// outstanding leases never exceeds the global rate.
func TestBudgetNeverOverSubscribed(t *testing.T) {
	const global = 250.0
	b, _ := newTestBudget(t, global, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for i := 0; i < 200; i++ {
				slice := float64(10 + (w*37+i*13)%90)
				if _, err := b.Acquire(id, slice); err != nil {
					if !errors.Is(err, ErrOverSubscribed) {
						t.Errorf("Acquire: %v", err)
					}
					continue
				}
				if leased := b.Leased(); leased > global*(1+1e-9) {
					t.Errorf("invariant violated: Leased %v > %v", leased, global)
				}
				if i%3 == 0 {
					if err := b.Release(id); err != nil && !errors.Is(err, ErrNoLease) {
						t.Errorf("Release: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if leased := b.Leased(); leased > global*(1+1e-9) {
		t.Errorf("final Leased %v > %v", leased, global)
	}
}

// TestBudgetFleetSlices models the coordinator's actual division: N
// workers each lease rate/N, which must exactly fill the budget with
// no over-subscription rejection from float error.
func TestBudgetFleetSlices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		b, _ := newTestBudget(t, 250, time.Minute)
		slice := 250.0 / float64(n)
		for w := 0; w < n; w++ {
			if _, err := b.Acquire(fmt.Sprintf("w%d", w), slice); err != nil {
				t.Errorf("n=%d worker %d: %v", n, w, err)
			}
		}
		if _, err := b.Acquire("extra", slice); !errors.Is(err, ErrOverSubscribed) {
			t.Errorf("n=%d extra worker: got %v, want ErrOverSubscribed", n, err)
		}
	}
}
