// The leased-quota service. A distributed campaign still owes the §7
// politeness contract as a whole: the probes of every worker, summed,
// must stay inside one global budget. Budget makes that sum
// structural — the coordinator owns the global rate, workers lease
// token-bucket slices of it, and a slice only counts against the
// budget while its lease is alive. A worker that dies silently simply
// stops renewing; its lease expires and the tokens return to the pool
// for a replacement, so the fleet can churn without the aggregate rate
// ever exceeding the envelope.
package ratelimit

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Budget errors, matched by callers with errors.Is.
var (
	// ErrOverSubscribed reports an Acquire that would push the sum of
	// outstanding leases past the global rate.
	ErrOverSubscribed = errors.New("ratelimit: budget over-subscribed")
	// ErrNoLease reports a Renew or Release of a lease that does not
	// exist or has already expired.
	ErrNoLease = errors.New("ratelimit: no such lease")
)

// Lease is a snapshot of one outstanding slice of the budget.
type Lease struct {
	ID      string
	Rate    float64   // leased tokens per second
	Expires time.Time // instant the lease lapses unless renewed
}

// Budget divides one global token-per-second rate among named
// leaseholders. All methods are safe for concurrent use. The zero
// value is not usable; construct with NewBudget.
type Budget struct {
	mu     sync.Mutex
	rate   float64
	ttl    time.Duration
	clock  Clock
	leases map[string]*Lease
	// dead holds the IDs of expired leases that Reap has not yet
	// reported. Every method reaps expired leases as a side effect;
	// recording the deaths here keeps that from swallowing them —
	// Reap delivers each death exactly once no matter which call
	// happened to observe the expiry first.
	dead map[string]struct{}
}

// NewBudget builds a budget issuing at most rate tokens per second in
// total, with each lease living ttl past its last Acquire/Renew.
func NewBudget(rate float64, ttl time.Duration, clock Clock) (*Budget, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("%w: rate=%v burst=1", ErrBadRate, rate)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("ratelimit: lease ttl must be positive, got %v", ttl)
	}
	if clock == nil {
		clock = realClock{}
	}
	return &Budget{
		rate:   rate,
		ttl:    ttl,
		clock:  clock,
		leases: make(map[string]*Lease),
		dead:   make(map[string]struct{}),
	}, nil
}

// Rate returns the global budget in tokens per second.
func (b *Budget) Rate() float64 { return b.rate }

// TTL returns the configured lease lifetime.
func (b *Budget) TTL() time.Duration { return b.ttl }

// reapLocked drops expired leases and records their deaths for Reap
// to report. Callers hold mu.
func (b *Budget) reapLocked(now time.Time) {
	for id, l := range b.leases {
		if now.After(l.Expires) {
			delete(b.leases, id)
			b.dead[id] = struct{}{}
		}
	}
}

// leasedLocked sums the live leases. Callers hold mu.
func (b *Budget) leasedLocked() float64 {
	sum := 0.0
	for _, l := range b.leases {
		sum += l.Rate
	}
	return sum
}

// Acquire leases rate tokens per second under the given ID. Expired
// leases are reaped first; an ID that already holds a live lease is
// re-granted (its old slice is returned before the new one is
// counted, so a worker re-registering under its own name never
// double-books). Fails with ErrOverSubscribed when the requested
// slice does not fit the remaining budget.
func (b *Budget) Acquire(id string, rate float64) (Lease, error) {
	if rate <= 0 {
		return Lease{}, fmt.Errorf("%w: rate=%v burst=1", ErrBadRate, rate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	b.reapLocked(now)
	outstanding := b.leasedLocked()
	if prev, ok := b.leases[id]; ok {
		outstanding -= prev.Rate
	}
	// The epsilon absorbs float error when N workers lease rate/N.
	if outstanding+rate > b.rate*(1+1e-9) {
		return Lease{}, fmt.Errorf("%w: %v leased + %v requested > %v global",
			ErrOverSubscribed, outstanding, rate, b.rate)
	}
	l := &Lease{ID: id, Rate: rate, Expires: now.Add(b.ttl)}
	b.leases[id] = l
	// A re-registering worker handles its own orphaned state at
	// registration; its earlier expiry must not also surface from Reap
	// as a fresh death.
	delete(b.dead, id)
	return *l, nil
}

// Renew extends a live lease by the budget's TTL from now.
func (b *Budget) Renew(id string) (Lease, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	b.reapLocked(now)
	l, ok := b.leases[id]
	if !ok {
		return Lease{}, fmt.Errorf("%w: %q", ErrNoLease, id)
	}
	l.Expires = now.Add(b.ttl)
	return *l, nil
}

// Release returns a lease's tokens to the pool immediately.
func (b *Budget) Release(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapLocked(b.clock.Now())
	if _, ok := b.leases[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoLease, id)
	}
	delete(b.leases, id)
	return nil
}

// Reap drops every expired lease and returns the IDs of all deaths
// not yet reported, sorted — including leases another method's
// internal reap collected first. The coordinator calls it
// periodically: a returned ID is a worker that died silently, whose
// shards need re-assignment. Each death is reported exactly once.
func (b *Budget) Reap() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapLocked(b.clock.Now())
	if len(b.dead) == 0 {
		return nil
	}
	out := make([]string, 0, len(b.dead))
	for id := range b.dead {
		out = append(out, id)
	}
	clear(b.dead)
	sort.Strings(out)
	return out
}

// Leased returns the summed rate of the outstanding (unexpired)
// leases. The invariant Leased() <= Rate() holds at all times.
func (b *Budget) Leased() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapLocked(b.clock.Now())
	return b.leasedLocked()
}

// Leases snapshots the outstanding (unexpired) leases, sorted by ID —
// the fleet dashboard's per-worker lease-state view, with each slice's
// rate and expiry instant.
func (b *Budget) Leases() []Lease {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapLocked(b.clock.Now())
	out := make([]Lease, 0, len(b.leases))
	for _, l := range b.leases {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Holders returns the live lease IDs, sorted.
func (b *Budget) Holders() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapLocked(b.clock.Now())
	out := make([]string, 0, len(b.leases))
	for id := range b.leases {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
