package websim

import (
	"math/rand"
	"strings"
	"testing"

	"whowas/internal/htmlparse"
	"whowas/internal/simhash"
)

func genN(t *testing.T, cloud CloudKind, n int) []Profile {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	out := make([]Profile, n)
	cats := []Category{CategoryBlog, CategoryCorporate, CategoryShopping, CategorySaaS, CategoryDev}
	for i := range out {
		out[i] = GenProfile(rng, uint64(i), cloud, cats[i%len(cats)])
	}
	return out
}

func TestGenProfileDeterministic(t *testing.T) {
	a := GenProfile(rand.New(rand.NewSource(7)), 1, EC2Like, CategoryBlog)
	b := GenProfile(rand.New(rand.NewSource(7)), 1, EC2Like, CategoryBlog)
	if a.Server != b.Server || a.Title != b.Title || a.AnalyticsID != b.AnalyticsID || a.StatusCode != b.StatusCode {
		t.Errorf("profiles differ under identical seeds:\n%+v\n%+v", a, b)
	}
}

func TestEC2ServerMix(t *testing.T) {
	profiles := genN(t, EC2Like, 5000)
	counts := map[string]int{}
	for _, p := range profiles {
		switch {
		case strings.Contains(p.Server, "Apache"):
			counts["apache"]++
		case strings.Contains(p.Server, "nginx"):
			counts["nginx"]++
		case strings.Contains(p.Server, "IIS"):
			counts["iis"]++
		}
	}
	apache := float64(counts["apache"]) / 5000
	nginx := float64(counts["nginx"]) / 5000
	iis := float64(counts["iis"]) / 5000
	// Paper: Apache 55.2%, nginx 21.2%, IIS 12.2% (of identified); allow slack.
	if apache < 0.45 || apache > 0.65 {
		t.Errorf("EC2 Apache share = %.3f, want ~0.55", apache)
	}
	if nginx < 0.13 || nginx > 0.30 {
		t.Errorf("EC2 nginx share = %.3f, want ~0.21", nginx)
	}
	if iis < 0.06 || iis > 0.20 {
		t.Errorf("EC2 IIS share = %.3f, want ~0.12", iis)
	}
	if apache <= nginx || nginx <= iis {
		t.Errorf("EC2 server ordering violated: apache=%.3f nginx=%.3f iis=%.3f", apache, nginx, iis)
	}
}

func TestAzureIISDominance(t *testing.T) {
	profiles := genN(t, AzureLike, 3000)
	iis := 0
	for _, p := range profiles {
		if strings.Contains(p.Server, "IIS") {
			iis++
		}
	}
	share := float64(iis) / 3000
	if share < 0.80 || share > 0.95 {
		t.Errorf("Azure IIS share = %.3f, want ~0.89", share)
	}
}

func TestStatusMix(t *testing.T) {
	profiles := genN(t, EC2Like, 5000)
	var ok200, c4xx, c5xx int
	for _, p := range profiles {
		switch {
		case p.StatusCode == 200:
			ok200++
		case p.StatusCode >= 400 && p.StatusCode < 500:
			c4xx++
		case p.StatusCode >= 500:
			c5xx++
		}
	}
	f200 := float64(ok200) / 5000
	if f200 < 0.58 || f200 > 0.72 {
		t.Errorf("EC2 200 share = %.3f, want ~0.647", f200)
	}
	if c4xx <= c5xx {
		t.Errorf("4xx (%d) should dominate 5xx (%d)", c4xx, c5xx)
	}
}

func TestContentTypeMix(t *testing.T) {
	profiles := genN(t, EC2Like, 5000)
	html := 0
	for _, p := range profiles {
		if p.ContentType == "text/html" {
			html++
		}
	}
	share := float64(html) / 5000
	if share < 0.93 || share > 0.99 {
		t.Errorf("text/html share = %.3f, want ~0.959", share)
	}
}

func TestRenderedPageParsesBack(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		p := GenProfile(rng, uint64(i), EC2Like, CategoryShopping)
		if p.StatusCode != 200 || p.ContentType != "text/html" || p.DefaultPage {
			continue
		}
		doc := htmlparse.Parse(p.RenderPage(0))
		if doc.Title != p.Title {
			t.Errorf("profile %d: parsed title %q != %q", i, doc.Title, p.Title)
		}
		if doc.Generator != p.Template {
			t.Errorf("profile %d: parsed generator %q != %q", i, doc.Generator, p.Template)
		}
		if doc.AnalyticsID != p.AnalyticsID {
			t.Errorf("profile %d: parsed GA %q != %q", i, doc.AnalyticsID, p.AnalyticsID)
		}
		if doc.Keywords != p.Keywords {
			t.Errorf("profile %d: parsed keywords %q != %q", i, doc.Keywords, p.Keywords)
		}
	}
}

func TestRevisionsMoveSimhashSlightly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var p Profile
	for {
		p = GenProfile(rng, 11, EC2Like, CategoryBlog)
		if p.StatusCode == 200 && p.ContentType == "text/html" && !p.DefaultPage {
			break
		}
	}
	h0 := simhash.Hash(p.RenderPage(0))
	h1 := simhash.Hash(p.RenderPage(1))
	hSame := simhash.Hash(p.RenderPage(0))
	if d := simhash.Distance(h0, hSame); d != 0 {
		t.Errorf("same revision hash distance = %d", d)
	}
	if d := simhash.Distance(h0, h1); d == 0 || d > 12 {
		t.Errorf("adjacent revision distance = %d, want small nonzero", d)
	}
}

func TestDistinctServicesFarApart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pages []string
	for i := 0; len(pages) < 20; i++ {
		p := GenProfile(rng, uint64(1000+i), EC2Like, Category([]Category{CategoryBlog, CategoryGame, CategoryVideo}[i%3]))
		if p.StatusCode == 200 && p.ContentType == "text/html" && !p.DefaultPage {
			pages = append(pages, p.RenderPage(0))
		}
	}
	for i := 0; i < len(pages); i++ {
		for j := i + 1; j < len(pages); j++ {
			d := simhash.Distance(simhash.Hash(pages[i]), simhash.Hash(pages[j]))
			if d < 8 {
				t.Errorf("distinct services %d,%d at simhash distance %d", i, j, d)
			}
		}
	}
}

func TestMarkMalicious(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := GenProfile(rng, 77, EC2Like, CategoryDev)
	p.StatusCode = 200
	p.ContentType = "text/html"
	p.DefaultPage = false
	MarkMalicious(rng, &p, Malware, 5)
	if p.Malicious != Malware || len(p.MaliciousURLs) != 5 {
		t.Fatalf("MarkMalicious: kind=%v urls=%d", p.Malicious, len(p.MaliciousURLs))
	}
	doc := htmlparse.Parse(p.RenderPage(0))
	found := 0
	linkSet := map[string]bool{}
	for _, l := range doc.Links {
		linkSet[l] = true
	}
	for _, u := range p.MaliciousURLs {
		if linkSet[u] {
			found++
		}
	}
	if found != 5 {
		t.Errorf("only %d/5 malicious URLs present in rendered page", found)
	}
	// Clearing works.
	MarkMalicious(rng, &p, NotMalicious, 3)
	if p.Malicious != NotMalicious || p.MaliciousURLs != nil {
		t.Error("MarkMalicious(NotMalicious) did not clear")
	}
}

func TestRobotsTxt(t *testing.T) {
	p := Profile{RobotsDeny: true}
	if !strings.Contains(p.RobotsTxt(), "Disallow: /\n") {
		t.Error("deny profile robots.txt missing global disallow")
	}
	p.RobotsDeny = false
	if strings.Contains(p.RobotsTxt(), "Disallow: /\n") {
		t.Error("allow profile robots.txt has global disallow")
	}
}

func TestHeaders(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := GenProfile(rng, 5, EC2Like, CategoryBlog)
	h := p.Headers(0)
	if h["Server"] != p.Server {
		t.Errorf("Server header = %q", h["Server"])
	}
	if !strings.HasPrefix(h["Content-Type"], p.ContentType) {
		t.Errorf("Content-Type = %q", h["Content-Type"])
	}
	if p.Backend != "" && h["X-Powered-By"] != p.Backend {
		t.Errorf("X-Powered-By = %q, want %q", h["X-Powered-By"], p.Backend)
	}
}

func TestErrorPagesCarryServer(t *testing.T) {
	p := Profile{Server: "Apache/2.2.22 (Ubuntu)", StatusCode: 404, Domain: "x.example"}
	body := p.RenderPage(0)
	if !strings.Contains(body, "404") || !strings.Contains(body, p.Server) {
		t.Errorf("404 body missing status/server: %q", body)
	}
	p.StatusCode = 500
	if !strings.Contains(p.RenderPage(0), "500") {
		t.Error("500 body missing status")
	}
}

func TestVhost404NamesDomain(t *testing.T) {
	p := Profile{Server: "nginx/1.4.1", StatusCode: 404, MultiVhost: true, Domain: "shop77.example"}
	body := p.RenderPage(0)
	if !strings.Contains(body, p.Domain) {
		t.Error("vhost 404 does not reveal domain (needed for the paper's ownership heuristic)")
	}
}

func TestDefaultPages(t *testing.T) {
	for _, server := range []string{"Apache/2.2.22", "nginx/1.4.1", "Microsoft-IIS/8.0", "weird/1.0"} {
		p := Profile{Server: server, StatusCode: 200, DefaultPage: true, ContentType: "text/html"}
		body := p.RenderPage(0)
		if body == "" {
			t.Errorf("empty default page for %s", server)
		}
		doc := htmlparse.Parse(body)
		if doc.Title == "" {
			t.Errorf("default page for %s has no title", server)
		}
	}
}

func TestTrackersDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := GenProfile(rng, uint64(i), EC2Like, CategoryMarketing)
		seen := map[string]bool{}
		for _, tr := range p.Trackers {
			if seen[tr.Name] {
				t.Fatalf("duplicate tracker %q in profile %d", tr.Name, i)
			}
			seen[tr.Name] = true
		}
		if len(p.Trackers) > 4 {
			t.Fatalf("profile %d has %d trackers", i, len(p.Trackers))
		}
	}
}

func TestGoogleAnalyticsMostCommonTracker(t *testing.T) {
	profiles := genN(t, EC2Like, 8000)
	counts := map[string]int{}
	for _, p := range profiles {
		for _, tr := range p.Trackers {
			counts[tr.Name]++
		}
	}
	ga := counts["google-analytics"]
	for name, c := range counts {
		if name != "google-analytics" && c >= ga {
			t.Errorf("tracker %s (%d) outranks google-analytics (%d)", name, c, ga)
		}
	}
	if ga == 0 {
		t.Fatal("no google-analytics trackers generated")
	}
}

func TestAnalyticsIDWellFormed(t *testing.T) {
	profiles := genN(t, EC2Like, 4000)
	n := 0
	for _, p := range profiles {
		if p.AnalyticsID == "" {
			continue
		}
		n++
		if _, _, ok := htmlparse.SplitAnalyticsID(p.AnalyticsID); !ok {
			t.Errorf("malformed GA ID %q", p.AnalyticsID)
		}
	}
	if n == 0 {
		t.Fatal("no GA IDs generated")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	choices := []weightedChoice{{"a", 90}, {"b", 10}}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pick(rng, choices)]++
	}
	fa := float64(counts["a"]) / 10000
	if fa < 0.87 || fa > 0.93 {
		t.Errorf("weight-90 choice drawn %.3f, want ~0.9", fa)
	}
	if pick(rng, nil) != "" {
		t.Error("pick(nil) != \"\"")
	}
	if pick(rng, []weightedChoice{{"x", 0}}) != "" {
		t.Error("pick with zero total weight != \"\"")
	}
}

func BenchmarkRenderPage(b *testing.B) {
	p := GenProfile(rand.New(rand.NewSource(1)), 9, EC2Like, CategoryBlog)
	p.StatusCode = 200
	p.ContentType = "text/html"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RenderPage(i % 8)
	}
}
