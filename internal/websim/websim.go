// Package websim generates the synthetic web content served by the
// simulated clouds. It stands in for what the real EC2/Azure tenants of
// 2013 served: pages built from a software ecosystem (web server,
// backend language, site template), decorated with third-party tracker
// snippets and Google Analytics IDs, occasionally carrying malicious
// URLs, plus the robots.txt, default server pages, and error pages the
// WhoWas fetcher encountered.
//
// Generation is deterministic: a Profile fully determines the bytes
// served for a given content revision, so repeated fetches in a round
// are stable while page updates across rounds shift simhashes exactly
// the way real page revisions do.
//
// The ecosystem distributions are calibrated to §8.3 of the paper
// (Apache 55.2% / nginx 21.2% / IIS 12.2% on EC2; IIS 89% on Azure;
// PHP 52.6% / ASP.NET 29.0% backends; WordPress 71.1% of templates;
// Table 20's tracker mix).
package websim

import (
	"fmt"
	"math/rand"
	"strings"
)

// CloudKind selects the ecosystem distribution a profile draws from.
type CloudKind int

const (
	// EC2Like uses the Amazon EC2 ecosystem mix of §8.3.
	EC2Like CloudKind = iota
	// AzureLike uses the Microsoft Azure mix (IIS/ASP.NET dominated).
	AzureLike
)

func (k CloudKind) String() string {
	if k == AzureLike {
		return "azure"
	}
	return "ec2"
}

// Weighted selects among choices with integer weights using the given
// rng; weights need not sum to any particular value.
type weightedChoice struct {
	value  string
	weight int
}

func pick(rng *rand.Rand, choices []weightedChoice) string {
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	if total == 0 {
		return ""
	}
	n := rng.Intn(total)
	for _, c := range choices {
		n -= c.weight
		if n < 0 {
			return c.value
		}
	}
	return choices[len(choices)-1].value
}

// Ecosystem distributions (§8.3). Version weights skew dated: the
// paper found >40% of Apache on 2.2.*, 60% of PHP on 5.3.*, >68% of
// WordPress below 3.6.
var (
	ec2Servers = []weightedChoice{
		{"Apache/2.2.22 (Ubuntu)", 246},
		{"Apache-Coyote/1.1", 150},
		{"Apache/2.2.25 (Amazon)", 76},
		{"Apache/2.2.24 (Unix) mod_ssl/2.2.24 OpenSSL/1.0.0-fips mod_auth_passthrough/2.1 mod_bwlimited/1.4 FrontPage/5.0.2.2635", 6},
		{"Apache/2.4.6 (CentOS)", 40},
		{"Apache/2.4.7 (Ubuntu)", 14},
		{"Apache/2.2.15 (CentOS)", 12},
		{"Apache/1.3.42 (Unix)", 2},
		{"Apache", 6},
		{"nginx/1.4.1", 80},
		{"nginx/1.1.19", 60},
		{"nginx/1.5.8", 40},
		{"nginx", 32},
		{"Microsoft-IIS/6.0", 18},
		{"Microsoft-IIS/7.5", 62},
		{"Microsoft-IIS/8.0", 42},
		{"MochiWeb/1.0 (Any of you quaids got a smint?)", 44},
		{"lighttpd/1.4.28", 10},
		{"Jetty(8.1.7.v20120910)", 12},
		{"gunicorn/18.0", 10},
	}
	azureServers = []weightedChoice{
		{"Microsoft-IIS/8.0", 390},
		{"Microsoft-IIS/7.5", 237},
		{"Microsoft-IIS/7.0", 198},
		{"Microsoft-IIS/8.5", 34},
		{"Microsoft-IIS/6.0", 21},
		{"Apache/2.2.22 (Ubuntu)", 48},
		{"Apache/2.4.6 (CentOS)", 18},
		{"nginx/1.4.1", 14},
		{"nginx/1.1.19", 3},
	}
	ec2Backends = []weightedChoice{
		{"PHP/5.3.10-1ubuntu3.9", 122},
		{"PHP/5.3.27", 81},
		{"PHP/5.3.3", 48},
		{"PHP/5.4.23", 17},
		{"PHP/5.4.17", 18},
		{"ASP.NET", 145},
		{"Phusion Passenger 4.0.29", 40},
		{"Express", 14},
		{"Servlet/3.0", 9},
		{"", 106}, // backend not revealed (68% of servers in the paper)
	}
	azureBackends = []weightedChoice{
		{"ASP.NET", 471},
		{"PHP/5.3.27", 14},
		{"PHP/5.4.23", 8},
		{"Express", 3},
		{"", 104},
	}
	ec2Templates = []weightedChoice{
		// WordPress skews dated: >68% of WP sites ran versions below
		// 3.6, whose XSS vulnerabilities the paper flags (§8.3).
		{"WordPress 3.5.1", 280},
		{"WordPress 3.5", 60},
		{"WordPress 3.4.2", 120},
		{"WordPress 3.3.1", 80},
		{"WordPress 3.2.1", 40},
		{"WordPress 3.6", 120},
		{"WordPress 3.7.1", 70},
		{"WordPress 3.8", 50},
		{"Joomla! 1.5 - Open Source Content Management", 56},
		{"Joomla! 2.5 - Open Source Content Management", 41},
		{"Drupal 7 (http://drupal.org)", 41},
		{"", 9151}, // no generator tag: templates identified on only ~3% of IPs
	}
	azureTemplates = []weightedChoice{
		{"WordPress 3.5.1", 22},
		{"WordPress 3.4.2", 10},
		{"WordPress 3.3.1", 6},
		{"WordPress 3.6", 10},
		{"WordPress 3.8", 7},
		{"Joomla! 2.5 - Open Source Content Management", 12},
		{"Drupal 7 (http://drupal.org)", 6},
		{"", 9927},
	}
)

// Tracker describes a third-party tracker and its fingerprint URL, as
// matched by the §8.3 tracker census.
type Tracker struct {
	Name string // short name as in Table 20
	URL  string // fingerprint URL embedded in tracking code
}

// Trackers is the tracker catalogue of Table 20, ordered by EC2
// popularity. The fingerprint URLs follow each tracker's real 2013
// tracking-code endpoint.
var Trackers = []Tracker{
	{"google-analytics", "http://www.google-analytics.com/ga.js"},
	{"facebook", "http://connect.facebook.net/en_US/all.js"},
	{"twitter", "http://platform.twitter.com/widgets.js"},
	{"doubleclick", "http://ad.doubleclick.net/adj/site"},
	{"quantserve", "http://edge.quantserve.com/quant.js"},
	{"scorecardresearch", "http://b.scorecardresearch.com/beacon.js"},
	{"imrworldwide", "http://secure-us.imrworldwide.com/v60.js"},
	{"serving-sys", "http://bs.serving-sys.com/BurstingPipe/adServer.bs"},
	{"atdmt", "http://view.atdmt.com/action/site"},
	{"yieldmanager", "http://ad.yieldmanager.com/pixel"},
	{"adnxs", "http://ib.adnxs.com/ttj"},
}

// trackerWeightsEC2/Azure approximate Table 20 relative frequencies
// (per cloud) among tracker-using sites.
var trackerWeightsEC2 = []int{1276, 241, 147, 53, 22, 15, 5, 4, 3, 2, 1}
var trackerWeightsAzure = []int{684, 161, 111, 32, 5, 4, 3, 1, 5, 0, 1}

// Category labels the kind of site a service runs; Table 15 categorizes
// the largest clusters.
type Category string

// Categories observed among the paper's large clusters plus the long
// tail of ordinary sites.
const (
	CategoryPaaS         Category = "PaaS"
	CategoryCloudHosting Category = "Cloud hosting"
	CategoryVPN          Category = "VPN"
	CategorySaaS         Category = "SaaS"
	CategoryGame         Category = "Game"
	CategoryShopping     Category = "Shopping"
	CategoryVideo        Category = "Video"
	CategoryMarketing    Category = "Marketing"
	CategoryBlog         Category = "Blog"
	CategoryCorporate    Category = "Corporate"
	CategoryDev          Category = "Dev/testing"
)

// lexicon is a broad shared vocabulary mixed into page bodies so that
// same-category services still render clearly distinct text.
var lexicon = []string{
	"welcome", "discover", "premium", "quality", "trusted", "global", "modern",
	"simple", "powerful", "flexible", "reliable", "innovative", "seamless",
	"experience", "solutions", "features", "customers", "community", "partners",
	"resources", "insights", "updates", "stories", "events", "products",
	"learn", "explore", "connect", "create", "share", "grow", "start",
	"today", "tomorrow", "journey", "vision", "mission", "values", "team",
	"world", "digital", "network", "data", "secure", "fast", "easy",
	"professional", "enterprise", "personal", "custom", "advanced", "essential",
	"complete", "integrated", "optimized", "dedicated", "exclusive", "popular",
	"latest", "official", "original", "unique", "special", "everyday",
}

var categoryWords = map[Category][]string{
	CategoryPaaS:         {"platform", "deploy", "apps", "runtime", "scale", "build"},
	CategoryCloudHosting: {"hosting", "servers", "uptime", "managed", "support", "plans"},
	CategoryVPN:          {"vpn", "privacy", "secure", "tunnel", "anonymous", "locations"},
	CategorySaaS:         {"dashboard", "analytics", "workflow", "teams", "pricing", "signup"},
	CategoryGame:         {"game", "play", "leaderboard", "players", "arena", "quest"},
	CategoryShopping:     {"shop", "cart", "deals", "checkout", "catalog", "shipping"},
	CategoryVideo:        {"video", "stream", "watch", "episodes", "channels", "live"},
	CategoryMarketing:    {"campaign", "brand", "audience", "leads", "conversion", "reach"},
	CategoryBlog:         {"blog", "posts", "archive", "comments", "subscribe", "tags"},
	CategoryCorporate:    {"company", "services", "clients", "about", "careers", "contact"},
	CategoryDev:          {"staging", "test", "demo", "sandbox", "internal", "build"},
}

// MaliciousKind is the Safe-Browsing verdict class a malicious URL
// belongs to (§8.2).
type MaliciousKind int

const (
	// NotMalicious marks clean content.
	NotMalicious MaliciousKind = iota
	// Phishing URLs imitate login/payment pages.
	Phishing
	// Malware URLs serve or link to malicious software.
	Malware
)

func (k MaliciousKind) String() string {
	switch k {
	case Phishing:
		return "phishing"
	case Malware:
		return "malware"
	default:
		return "ok"
	}
}

// Profile fully determines a service's served content. Profiles are
// value types generated once per service by the cloud simulator.
type Profile struct {
	ID            uint64 // service identifier, drives all derived names
	Cloud         CloudKind
	Category      Category
	Server        string // HTTP Server header value
	Backend       string // X-Powered-By value, "" when hidden
	Template      string // meta generator value, "" when none
	Title         string
	Keywords      string
	Description   string
	AnalyticsID   string // "" when the site uses no GA
	Trackers      []Tracker
	ContentType   string        // of the top-level page
	RobotsDeny    bool          // robots.txt disallows fetching "/"
	HTTPSOnly     bool          // page served only on 443
	StatusCode    int           // top-level response status (200, 4xx, 5xx)
	DefaultPage   bool          // serves a default server test page ("welcome-apache" style)
	MultiVhost    bool          // name-based vhost: by-IP requests get a 404 page naming the domain
	Malicious     MaliciousKind // content carries malicious URLs
	MaliciousURLs []string      // the embedded malicious URLs (ground truth)
	Domain        string        // primary domain of the service
}

// GenProfile draws a service profile for the given cloud. The rng must
// be dedicated to this call sequence (cloudsim derives one per service
// from the campaign seed).
func GenProfile(rng *rand.Rand, id uint64, cloud CloudKind, cat Category) Profile {
	p := Profile{ID: id, Cloud: cloud, Category: cat}
	servers, backends, templates := ec2Servers, ec2Backends, ec2Templates
	trackerWeights := trackerWeightsEC2
	if cloud == AzureLike {
		servers, backends, templates = azureServers, azureBackends, azureTemplates
		trackerWeights = trackerWeightsAzure
	}
	p.Server = pick(rng, servers)
	p.Backend = pick(rng, backends)
	p.Template = pick(rng, templates)
	p.Domain = genDomain(rng, id, cat)

	words := categoryWords[cat]
	if len(words) == 0 {
		words = categoryWords[CategoryCorporate]
	}
	p.Title = fmt.Sprintf("%s %s - %s", strings.Title(words[rng.Intn(len(words))]), strings.Title(words[rng.Intn(len(words))]), p.Domain)
	p.Keywords = strings.Join([]string{words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))]}, ",")
	p.Description = fmt.Sprintf("%s offering %s and %s for %s", p.Domain, words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))])

	// Content type mix per Table 5 (EC2: text/html 95.9, text/plain 2.1,
	// application/json 1.0, application/xml 0.3, text/xml 0.3, other 0.4;
	// Azure: 97.8 / 1.0 / 0.2(json) / 0.7(xml) / 0.1(xhtml) / 0.2).
	ctypes := []weightedChoice{
		{"text/html", 959}, {"text/plain", 21}, {"application/json", 10},
		{"application/xml", 3}, {"text/xml", 3}, {"text/css", 4},
	}
	if cloud == AzureLike {
		ctypes = []weightedChoice{
			{"text/html", 978}, {"text/plain", 10}, {"application/xml", 7},
			{"application/json", 2}, {"application/xhtml+xml", 1}, {"text/css", 2},
		}
	}
	p.ContentType = pick(rng, ctypes)

	// Status mix per Table 4 (fraction of responsive IPs that are
	// available, i.e. return 200): EC2 64.7 / 28.0 (4xx) / 7.2 (5xx) /
	// 0.1 other; Azure 60.6 / 30.2 / 9.2 / 0.02. Non-200 arises mostly
	// from multi-vhost hosts and misconfigured apps.
	statusMix := []weightedChoice{{"200", 647}, {"4xx", 280}, {"5xx", 72}, {"other", 1}}
	if cloud == AzureLike {
		statusMix = []weightedChoice{{"200", 606}, {"4xx", 302}, {"5xx", 92}, {"other", 1}}
	}
	switch pick(rng, statusMix) {
	case "200":
		p.StatusCode = 200
	case "4xx":
		p.StatusCode = []int{404, 403, 401, 400}[rng.Intn(4)]
		p.MultiVhost = rng.Intn(100) < 60
	case "5xx":
		p.StatusCode = []int{500, 502, 503}[rng.Intn(3)]
	default:
		p.StatusCode = 301
	}

	// Trackers: ~26% of sites use at least one (Table 20: 81 K of 186 K
	//+ clusters use GA alone); of those, 77% one tracker, 16% two, 6%
	// three, 1% four (§8.3).
	if p.StatusCode == 200 && rng.Intn(100) < 26 {
		// §8.3: 77% of tracker-using pages embed one tracker, 16% two,
		// 6% three, the rest more.
		n := 1
		switch r := rng.Intn(100); {
		case r >= 99:
			n = 4
		case r >= 93:
			n = 3
		case r >= 77:
			n = 2
		}
		p.Trackers = drawTrackers(rng, trackerWeights, n)
		for _, tr := range p.Trackers {
			if tr.Name == "google-analytics" {
				// Accounts are drawn from a bounded space so that some
				// users own several sites: colliding accounts with
				// distinct profile numbers reproduce §8.3's profile
				// distribution (93.5% of accounts with one profile,
				// 4.8% two, a tail up to 35).
				account := 100000 + rng.Intn(30000)
				profile := 1
				switch r := rng.Intn(1000); {
				case r >= 999:
					profile = 14 + rng.Intn(22)
				case r >= 983:
					profile = 3 + rng.Intn(9)
				case r >= 935:
					profile = 2
				}
				p.AnalyticsID = fmt.Sprintf("UA-%d-%d", account, profile)
			}
		}
	}

	// ~3% of sites deny robots on "/" (opt-outs observed by the paper
	// were handled via robots exclusion).
	p.RobotsDeny = rng.Intn(1000) < 30
	// A handful of sites are HTTPS-only; Table 3 says 5.5% of EC2
	// responsive IPs (16.5% Azure) open only 443.
	// (Port openness itself is decided by cloudsim; this flag makes the
	// content consistent.)
	p.HTTPSOnly = false

	// Default server pages: sites that answer with the stock Apache/IIS
	// test page. These form the large default-page clusters the paper
	// removes during cleaning.
	if p.StatusCode == 200 && p.Template == "" && rng.Intn(100) < 6 {
		p.DefaultPage = true
		p.Trackers = nil
		p.AnalyticsID = ""
	}
	return p
}

func drawTrackers(rng *rand.Rand, weights []int, n int) []Tracker {
	var out []Tracker
	remaining := make([]weightedChoice, len(Trackers))
	for i, t := range Trackers {
		w := 0
		if i < len(weights) {
			w = weights[i]
		}
		remaining[i] = weightedChoice{value: t.Name, weight: w}
	}
	byName := map[string]Tracker{}
	for _, t := range Trackers {
		byName[t.Name] = t
	}
	for len(out) < n {
		name := pick(rng, remaining)
		if name == "" {
			break
		}
		out = append(out, byName[name])
		for i := range remaining {
			if remaining[i].value == name {
				remaining[i].weight = 0
			}
		}
	}
	return out
}

func genDomain(rng *rand.Rand, id uint64, cat Category) string {
	words := categoryWords[cat]
	if len(words) == 0 {
		words = categoryWords[CategoryCorporate]
	}
	tlds := []string{"com", "com", "com", "net", "org", "io", "co"}
	return fmt.Sprintf("%s%d.%s", words[rng.Intn(len(words))], id%100000, tlds[rng.Intn(len(tlds))])
}

// maliciousDomains reproduces Table 18's flavour: file-hosting and
// download-manager domains dominate malicious URLs.
var maliciousDomains = []weightedChoice{
	{"dl.dropboxusercontent.com", 993},
	{"dl.dropbox.com", 936},
	{"download-instantly.com", 295},
	{"tr.im", 268},
	{"www.wishdownload.com", 223},
	{"dlp.playmediaplayer.com", 206},
	{"www.extrimdownloadmanager.com", 128},
	{"dlp.123mediaplayer.com", 122},
	{"install.fusioninstall.com", 120},
	{"www.1disk.cn", 119},
	{"cdn.badupdates.example", 60},
	{"free-codec-pack.example", 45},
}

// MarkMalicious decorates a profile with malicious URLs of the given
// kind. count controls how many distinct URLs are embedded (linchpin
// pages carry over a hundred, §8.2).
func MarkMalicious(rng *rand.Rand, p *Profile, kind MaliciousKind, count int) {
	if kind == NotMalicious || count <= 0 {
		p.Malicious = NotMalicious
		p.MaliciousURLs = nil
		return
	}
	p.Malicious = kind
	p.MaliciousURLs = p.MaliciousURLs[:0]
	for i := 0; i < count; i++ {
		domain := pick(rng, maliciousDomains)
		path := fmt.Sprintf("s/%x/%d", rng.Uint32(), rng.Intn(10000))
		if kind == Phishing {
			path = fmt.Sprintf("login/verify/%x", rng.Uint32())
		}
		p.MaliciousURLs = append(p.MaliciousURLs, fmt.Sprintf("http://%s/%s", domain, path))
	}
}

// RobotsTxt returns the robots.txt body for the profile.
func (p *Profile) RobotsTxt() string {
	if p.RobotsDeny {
		return "User-agent: *\nDisallow: /\n"
	}
	return "User-agent: *\nDisallow: /admin/\nAllow: /\n"
}

// Headers returns the HTTP response headers for the top-level page.
// Header-name variety matters: WhoWas's feature 3 is the sorted header
// name string, used in level-1 clustering indirectly via server and in
// the stored record.
func (p *Profile) Headers(revision int) map[string]string {
	h := map[string]string{
		"Content-Type": p.ContentType + "; charset=utf-8",
		"Server":       p.Server,
	}
	if p.Backend != "" {
		h["X-Powered-By"] = p.Backend
	}
	if strings.Contains(p.Server, "nginx") || strings.Contains(p.Server, "Apache") {
		h["Accept-Ranges"] = "bytes"
	}
	if p.StatusCode == 200 && revision%2 == 0 {
		h["Cache-Control"] = "max-age=300"
	}
	return h
}

// RenderPage produces the page body for a content revision. Revisions
// model ordinary site updates: most of the page is stable, a revision
// counter and a few rotating words change, which moves the simhash a
// small Hamming distance — exactly the near-duplicate relation the
// clustering must tolerate.
func (p *Profile) RenderPage(revision int) string {
	switch {
	case p.MultiVhost && p.StatusCode != 200:
		return p.renderVhost404()
	case p.StatusCode >= 500:
		return p.renderError("500 Internal Server Error", "The server encountered an internal error")
	case p.StatusCode == 404:
		return p.renderError("404 Not Found", "The requested URL / was not found on this server")
	case p.StatusCode == 403:
		return p.renderError("403 Forbidden", "You don't have permission to access / on this server")
	case p.StatusCode == 401:
		return p.renderError("401 Unauthorized", "Authorization required")
	case p.StatusCode == 400:
		return p.renderError("400 Bad Request", "Your browser sent a request that this server could not understand")
	case p.StatusCode == 301:
		return p.renderError("301 Moved Permanently", "The document has moved")
	case p.DefaultPage:
		return p.renderDefaultPage()
	}
	switch p.ContentType {
	case "text/plain":
		return fmt.Sprintf("%s\nstatus: ok\nrevision: %d\n", p.Domain, revision)
	case "application/json":
		return fmt.Sprintf(`{"service":"%s","status":"ok","revision":%d,"category":"%s"}`, p.Domain, revision, p.Category)
	case "application/xml", "text/xml":
		return fmt.Sprintf("<?xml version=\"1.0\"?><service><name>%s</name><revision>%d</revision></service>", p.Domain, revision)
	case "text/css":
		return fmt.Sprintf("/* %s stylesheet r%d */ body { margin: 0; }", p.Domain, revision)
	}
	return p.renderHTML(revision)
}

func (p *Profile) renderHTML(revision int) string {
	var sb strings.Builder
	words := categoryWords[p.Category]
	if len(words) == 0 {
		words = categoryWords[CategoryCorporate]
	}
	sb.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", p.Title)
	fmt.Fprintf(&sb, "<meta name=\"description\" content=\"%s\">\n", p.Description)
	fmt.Fprintf(&sb, "<meta name=\"keywords\" content=\"%s\">\n", p.Keywords)
	if p.Template != "" {
		fmt.Fprintf(&sb, "<meta name=\"generator\" content=\"%s\">\n", p.Template)
	}
	for _, tr := range p.Trackers {
		if tr.Name == "google-analytics" && p.AnalyticsID != "" {
			fmt.Fprintf(&sb, "<script>var _gaq=_gaq||[];_gaq.push(['_setAccount','%s']);", p.AnalyticsID)
			fmt.Fprintf(&sb, "(function(){var ga=document.createElement('script');ga.src='%s';})();</script>\n", tr.URL)
		} else {
			fmt.Fprintf(&sb, "<script src=\"%s\"></script>\n", tr.URL)
		}
	}
	sb.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", p.Title)
	// Stable body paragraphs derived from the profile id. Half the
	// words come from a broad shared lexicon so that two services of
	// the same category still have clearly distinct bodies (and thus
	// distant simhashes), as real sites do.
	seed := p.ID*0x9e3779b97f4a7c15 + 0x3c6ef372fe94f82a
	for para := 0; para < 5; para++ {
		sb.WriteString("<p>")
		fmt.Fprintf(&sb, "%s section %d: ", p.Domain, para)
		for w := 0; w < 24; w++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			if w%2 == 0 {
				sb.WriteString(lexicon[int(seed>>33)%len(lexicon)])
			} else {
				sb.WriteString(words[int(seed>>33)%len(words)])
			}
			sb.WriteByte(' ')
		}
		sb.WriteString("</p>\n")
	}
	// Revision-dependent fragment: small, so simhash moves a few bits.
	fmt.Fprintf(&sb, "<p>updated build %d season %s</p>\n", revision, []string{"spring", "summer", "autumn", "winter"}[revision%4])
	for i, u := range p.MaliciousURLs {
		fmt.Fprintf(&sb, "<a href=\"%s\">download %d</a>\n", u, i)
	}
	fmt.Fprintf(&sb, "<a href=\"http://%s/about\">About</a> <a href=\"http://%s/contact\">Contact</a>\n", p.Domain, p.Domain)
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

// SubpagePaths lists the site's crawlable subpages. The paper's §9
// future work proposes "deeper crawling of websites by following links
// in HTML"; ordinary 200-status HTML sites here expose the /about and
// /contact pages their front page links to.
func (p *Profile) SubpagePaths() []string {
	if p.StatusCode != 200 || p.ContentType != "text/html" || p.DefaultPage || p.MultiVhost {
		return nil
	}
	return []string{"/about", "/contact"}
}

// RenderSubpage produces a subpage body, or "" for paths the site does
// not serve.
func (p *Profile) RenderSubpage(path string, revision int) string {
	for _, known := range p.SubpagePaths() {
		if path == known {
			name := strings.TrimPrefix(path, "/")
			return fmt.Sprintf(`<!DOCTYPE html>
<html><head><title>%s - %s</title></head>
<body><h1>%s</h1>
<p>%s page for %s, revision %d.</p>
<a href="http://%s/">Home</a>
</body></html>
`, strings.Title(name), p.Title, strings.Title(name), strings.Title(name), p.Domain, revision, p.Domain)
		}
	}
	return ""
}

func (p *Profile) renderVhost404() string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><title>404 Not Found</title></head>
<body><h1>Not Found</h1>
<p>The requested site was not found on this server. If you are the
administrator of %s, check your virtual host configuration.</p>
<hr><address>%s</address>
</body></html>
`, p.Domain, p.Server)
}

func (p *Profile) renderError(title, message string) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><title>%s</title></head>
<body><h1>%s</h1><p>%s.</p><hr><address>%s</address></body></html>
`, title, title, message, p.Server)
}

func (p *Profile) renderDefaultPage() string {
	switch {
	case strings.Contains(p.Server, "Apache"):
		return `<html><head><title>Welcome-Apache</title></head>
<body><h1>It works!</h1>
<p>This is the default web page for this server.</p>
<p>The web server software is running but no content has been added, yet.</p>
</body></html>
`
	case strings.Contains(p.Server, "nginx"):
		return `<html><head><title>Welcome to nginx!</title></head>
<body><h1>Welcome to nginx!</h1>
<p>If you see this page, the nginx web server is successfully installed and working.</p>
</body></html>
`
	case strings.Contains(p.Server, "IIS"):
		return `<html><head><title>IIS Windows Server</title></head>
<body><div><img src="http://127.0.0.1/iis-85.png" alt="IIS"></div></body></html>
`
	default:
		return `<html><head><title>Test Page</title></head>
<body><h1>Test Page</h1><p>This server is up.</p></body></html>
`
	}
}
