package netsim_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"whowas/internal/features"
	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/websim"
)

// TestLoopbackRealSockets drives the scanner and fetcher over the real
// kernel TCP stack: two simulated cloud IPs are routed to actual
// loopback listeners, a third is left unrouted so the dial must hit a
// genuine timeout.
func TestLoopbackRealSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test skipped in -short mode")
	}
	before := runtime.NumGoroutine()
	lb := netsim.NewLoopback()
	defer lb.Close()

	rng := rand.New(rand.NewSource(4))
	mkProfile := func(id uint64) websim.Profile {
		p := websim.GenProfile(rng, id, websim.EC2Like, websim.CategoryBlog)
		p.StatusCode = 200
		p.ContentType = "text/html"
		p.DefaultPage = false
		p.MultiVhost = false
		p.RobotsDeny = false
		return p
	}
	profA := mkProfile(1)
	profB := mkProfile(2)
	ipA := ipaddr.MustParseAddr("54.0.0.10")
	ipB := ipaddr.MustParseAddr("54.0.0.11")
	ipDead := ipaddr.MustParseAddr("54.0.0.12")
	if err := lb.ServeProfile(ipA, 80, profA, 0); err != nil {
		t.Fatal(err)
	}
	if err := lb.ServeProfile(ipB, 80, profB, 3); err != nil {
		t.Fatal(err)
	}

	// Scan the three addresses with a short real timeout.
	scn, err := scanner.New(lb, scanner.Config{Rate: 1000, Timeout: 300 * time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := ipaddr.NewRangeList([]ipaddr.Prefix{{Addr: ipA, Bits: 30}}) // covers .8-.11... adjust
	if err != nil {
		t.Fatal(err)
	}
	_ = ranges
	// Probe each address individually for precise assertions.
	ctx := context.Background()
	okA, err := scn.ProbeOnce(ctx, ipA, 80, 300*time.Millisecond)
	if err != nil || !okA {
		t.Fatalf("probe A = %v, %v", okA, err)
	}
	start := time.Now()
	okDead, err := scn.ProbeOnce(ctx, ipDead, 80, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if okDead {
		t.Fatal("unrouted IP answered")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("dead probe returned in %v; want a real timeout wait", elapsed)
	}

	// Fetch both live pages and extract features.
	ftc, err := fetcher.New(lb, fetcher.Config{Workers: 2, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		ip   ipaddr.Addr
		prof websim.Profile
		rev  int
	}{{ipA, profA, 0}, {ipB, profB, 3}} {
		page := ftc.FetchIP(ctx, scanner.Result{IP: tc.ip, OpenPorts: store.PortHTTP})
		if page.Err != nil {
			t.Fatalf("fetch %s: %v", tc.ip, page.Err)
		}
		if page.Status != 200 {
			t.Fatalf("fetch %s status %d", tc.ip, page.Status)
		}
		rec := features.FromPage(&page)
		if rec.Title != tc.prof.Title {
			t.Errorf("%s: title %q, want %q", tc.ip, rec.Title, tc.prof.Title)
		}
		if rec.Server != tc.prof.Server {
			t.Errorf("%s: server %q, want %q", tc.ip, rec.Server, tc.prof.Server)
		}
	}

	// Close is idempotent and unwinds every accept loop and connection
	// goroutine the fleet started.
	lb.Close()
	lb.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("%d goroutines after Close, %d before: listener fleet leaked", g, before)
	}
}
