package netsim

import (
	"fmt"
	"net"
	"strconv"
	"sync"
)

// DefaultFleetMax bounds a fleet that did not configure its own cap.
const DefaultFleetMax = 16

// FleetConfig sizes a listener fleet.
type FleetConfig struct {
	// Max is the listener cap; Listen fails once reached (<=0 uses
	// DefaultFleetMax). The bound is what keeps a misconfigured caller
	// from exhausting ephemeral ports or file descriptors.
	Max int
	// Host is the bind address (default "127.0.0.1").
	Host string
	// BasePort, when positive, makes port assignment deterministic:
	// the i-th listener binds BasePort+i. Zero asks the kernel for
	// ephemeral ports.
	BasePort int
}

// Fleet is a bounded set of real TCP listeners sharing one lifecycle:
// deterministic port assignment, per-connection goroutine tracking,
// and an idempotent Close that waits for every accept loop and
// handler to drain. It generalizes the single-listener loopback mode
// to the many-tenant data plane whowas-cloudd serves.
type Fleet struct {
	cfg FleetConfig

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewFleet returns an empty fleet.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Max <= 0 {
		cfg.Max = DefaultFleetMax
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	return &Fleet{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Listen binds the fleet's next listener and serves every accepted
// connection on its own tracked goroutine. The handler owns the
// connection for its lifetime; the fleet closes it when the handler
// returns and force-closes it on Close. Returns the bound address.
func (f *Fleet) Listen(handler func(net.Conn)) (string, error) {
	if handler == nil {
		return "", fmt.Errorf("netsim: fleet: nil handler")
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return "", fmt.Errorf("netsim: fleet: closed")
	}
	if len(f.listeners) >= f.cfg.Max {
		f.mu.Unlock()
		return "", fmt.Errorf("netsim: fleet full (%d listeners)", f.cfg.Max)
	}
	port := 0
	if f.cfg.BasePort > 0 {
		port = f.cfg.BasePort + len(f.listeners)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(f.cfg.Host, strconv.Itoa(port)))
	if err != nil {
		f.mu.Unlock()
		return "", fmt.Errorf("netsim: fleet listen: %w", err)
	}
	f.listeners = append(f.listeners, ln)
	f.wg.Add(1)
	f.mu.Unlock()

	go f.acceptLoop(ln, handler)
	return ln.Addr().String(), nil
}

func (f *Fleet) acceptLoop(ln net.Listener, handler func(net.Conn)) {
	defer f.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if !f.track(c) {
			_ = c.Close()
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer f.untrack(c)
			defer c.Close()
			handler(c)
		}()
	}
}

// track registers a live connection; false means the fleet closed
// while the connection was being accepted.
func (f *Fleet) track(c net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	f.conns[c] = struct{}{}
	return true
}

func (f *Fleet) untrack(c net.Conn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.conns, c)
}

// Addrs returns the bound addresses in listen order.
func (f *Fleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.listeners))
	for i, ln := range f.listeners {
		out[i] = ln.Addr().String()
	}
	return out
}

// NumListeners reports how many listeners are bound.
func (f *Fleet) NumListeners() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.listeners)
}

// Close shuts every listener and live connection down and waits for
// all accept loops and handlers to exit. Safe to call repeatedly and
// concurrently; later calls wait for the same drain.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		for _, ln := range f.listeners {
			_ = ln.Close()
		}
		for c := range f.conns {
			_ = c.Close()
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}
