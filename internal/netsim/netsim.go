// Package netsim is the virtual network between the WhoWas scanner/
// fetcher and the simulated clouds. It implements the same dial
// semantics the real Internet gave the paper's probes:
//
//   - unbound IPs drop SYNs (the dial times out),
//   - bound instances answer on their open ports and refuse others,
//   - a small population of hosts is persistently slow, answering only
//     probes willing to wait (the §4 2s-vs-8s timeout experiment),
//   - a small per-probe transient loss makes a first probe fail where
//     a retry would succeed (the §4 retry experiment),
//   - open web ports serve real HTTP — and real TLS on 443 — over
//     in-memory connections, with content from the cloud simulator.
//
// The scanner and fetcher consume the network through the Dialer
// interface, exactly as they would plug a custom DialContext into
// net.Dialer / http.Transport; swapping in a real dialer (see
// Loopback in this package) changes nothing else.
package netsim

import (
	"bufio"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
)

// Dialer is the scanner/fetcher-facing dial interface, matching the
// signature of net.Dialer.DialContext and http.Transport.DialContext.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// timeoutError reports a dropped SYN, satisfying net.Error so callers
// can distinguish timeouts from refusals.
type timeoutError struct{ addr string }

func (e *timeoutError) Error() string   { return fmt.Sprintf("dial tcp %s: i/o timeout", e.addr) }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// refusedError reports an RST from a bound instance with the port
// closed.
type refusedError struct{ addr string }

func (e *refusedError) Error() string   { return fmt.Sprintf("dial tcp %s: connection refused", e.addr) }
func (e *refusedError) Timeout() bool   { return false }
func (e *refusedError) Temporary() bool { return false }

// NewTimeoutError returns the dial-timeout error this network produces
// for a dropped SYN. Fault layers wrapping a Dialer (internal/faults)
// reuse it so injected failures are indistinguishable from organic
// ones to the scanner's timeout classification.
func NewTimeoutError(addr string) net.Error { return &timeoutError{addr: addr} }

// NewRefusedError returns the connection-refused error this network
// produces for a closed port on a bound instance.
func NewRefusedError(addr string) net.Error { return &refusedError{addr: addr} }

// Stats counts network activity, for the §7 politeness checks.
type Stats struct {
	Dials    atomic.Int64 // dial attempts
	Accepted atomic.Int64 // successful connections
	Requests atomic.Int64 // HTTP requests served
	TLSConns atomic.Int64 // TLS handshakes completed
}

// Network serves the simulated cloud's IP space. Safe for concurrent
// use; the measurement day is advanced between rounds with SetDay.
type Network struct {
	cloud *cloudsim.Cloud
	day   atomic.Int64

	// SlowThreshold is the patience a dialer needs for a slow host to
	// answer (default 5s; the paper compared 2s vs 8s timeouts).
	SlowThreshold time.Duration
	// LossPerMille is the per-probe transient failure rate (default 3,
	// i.e. 0.3%); a retry of a lost probe succeeds.
	LossPerMille int

	mu       sync.Mutex
	attempts map[attemptKey]int

	recordProbes  bool
	probeCounts   map[int]map[ipaddr.Addr]int // day -> ip -> probes
	requestCounts map[int]map[ipaddr.Addr]int // day -> ip -> HTTP requests

	tlsConf *tls.Config
	stats   Stats
}

type attemptKey struct {
	session string
	ip      ipaddr.Addr
	day     int
}

// probeSessionKey carries a WithProbeSession identity through dial
// contexts.
type probeSessionKey struct{}

// WithProbeSession scopes the network's per-(ip, day) transient-loss
// bookkeeping to the given session identity. Dials in different
// sessions count attempts independently, so re-measuring a range in a
// fresh session behaves exactly like a first measurement — which is
// what lets a distributed campaign re-run a dead worker's
// half-probed shard and still reproduce the single-process store
// digest. An unstamped context is the "" session; a campaign that
// never re-measures needs no stamping.
func WithProbeSession(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, probeSessionKey{}, id)
}

// ProbeSession returns the identity stamped by WithProbeSession, or
// "" when the context carries none.
func ProbeSession(ctx context.Context) string {
	s, _ := ctx.Value(probeSessionKey{}).(string)
	return s
}

// New builds a network over the given cloud.
func New(cloud *cloudsim.Cloud) (*Network, error) {
	tlsConf, err := selfSignedTLS()
	if err != nil {
		return nil, fmt.Errorf("netsim: generating TLS certificate: %w", err)
	}
	return &Network{
		cloud:         cloud,
		SlowThreshold: 5 * time.Second,
		LossPerMille:  3,
		attempts:      make(map[attemptKey]int),
		tlsConf:       tlsConf,
	}, nil
}

// SetDay advances the simulated day. Bookkeeping for the previous day
// (retry attempts) is dropped.
func (n *Network) SetDay(d int) {
	n.day.Store(int64(d))
	n.mu.Lock()
	n.attempts = make(map[attemptKey]int)
	n.mu.Unlock()
}

// Day returns the current simulated day.
func (n *Network) Day() int { return int(n.day.Load()) }

// Stats exposes the activity counters.
func (n *Network) Stats() *Stats { return &n.stats }

// RecordProbes enables per-IP probe and HTTP-request counting
// (politeness tests).
func (n *Network) RecordProbes(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.recordProbes = on
	if on && n.probeCounts == nil {
		n.probeCounts = make(map[int]map[ipaddr.Addr]int)
		n.requestCounts = make(map[int]map[ipaddr.Addr]int)
	}
}

// ProbeCount reports how many dials an IP received on a day (only
// meaningful when RecordProbes was enabled).
func (n *Network) ProbeCount(day int, ip ipaddr.Addr) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.probeCounts[day][ip]
}

// RequestCount reports how many HTTP requests an IP served on a day
// (only meaningful when RecordProbes was enabled).
func (n *Network) RequestCount(day int, ip ipaddr.Addr) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.requestCounts[day][ip]
}

// countRequest records one HTTP request when accounting is on.
func (n *Network) countRequest(day int, ip ipaddr.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.recordProbes {
		return
	}
	if n.requestCounts[day] == nil {
		n.requestCounts[day] = make(map[ipaddr.Addr]int)
	}
	n.requestCounts[day][ip]++
}

// DialContext implements Dialer against the simulated cloud.
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad port %q", portStr)
	}
	ip, err := ipaddr.ParseAddr(host)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	n.stats.Dials.Add(1)
	day := n.Day()

	if n.recordProbes {
		n.mu.Lock()
		if n.probeCounts[day] == nil {
			n.probeCounts[day] = make(map[ipaddr.Addr]int)
		}
		n.probeCounts[day][ip]++
		n.mu.Unlock()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := n.cloud.StateAt(day, ip)
	if !st.Bound {
		return nil, &timeoutError{addr: address}
	}
	if !st.Ports.OpensPort(port) {
		return nil, &refusedError{addr: address}
	}
	// Slow hosts answer only patient dialers: if the caller's deadline
	// arrives before SlowThreshold, the SYN goes unanswered.
	if st.Slow {
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < n.SlowThreshold {
			return nil, &timeoutError{addr: address}
		}
	}
	// Transient loss: hash-selected probes fail on their first attempt
	// and succeed on retry, counted per probe session.
	if n.lossDrop(ProbeSession(ctx), ip, port, day) {
		return nil, &timeoutError{addr: address}
	}

	n.stats.Accepted.Add(1)
	client, server := net.Pipe()
	switch port {
	case 80:
		go n.serveHTTP(server, ip, false)
	case 443:
		go n.serveHTTP(server, ip, true)
	default: // 22: answer with an SSH banner then close on input.
		go serveSSHBanner(server)
	}
	return client, nil
}

// lossDrop decides whether this attempt is transiently lost. Loss is
// correlated per host, as real congestion is: a "lossy" (ip, day)
// drops its first three connection attempts — a full 80/443/22 scan
// sequence — and answers retries after that. This is what the §4
// retry experiment measures: probing the same IP again minutes later
// recovers a small fraction of non-responders.
func (n *Network) lossDrop(session string, ip ipaddr.Addr, port, day int) bool {
	if n.LossPerMille <= 0 {
		return false
	}
	h := uint64(ip)*0x9e3779b97f4a7c15 ^ uint64(day)<<20
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	if h%1000 >= uint64(n.LossPerMille) {
		return false
	}
	k := attemptKey{session: session, ip: ip, day: day}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attempts[k]++
	return n.attempts[k] <= 3
}

// serveSSHBanner emulates an OpenSSH identification string; the
// scanner only needs the connection to succeed.
func serveSSHBanner(c net.Conn) {
	defer c.Close()
	_, _ = io.WriteString(c, "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1.1\r\n")
	// Wait for the peer to close (read until error), bounded.
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// serveHTTP answers HTTP requests on one connection with the cloud's
// content for the network's *current* day — a keep-alive connection
// held across SetDay serves fresh content, like a long-lived server
// would. On 443 the connection is wrapped in TLS with a self-signed
// certificate, as most 2013 cloud HTTPS endpoints were.
func (n *Network) serveHTTP(c net.Conn, ip ipaddr.Addr, useTLS bool) {
	defer c.Close()
	if useTLS {
		tc := tls.Server(c, n.tlsConf)
		if err := tc.Handshake(); err != nil {
			return
		}
		n.stats.TLSConns.Add(1)
		c = tc
	}
	br := bufio.NewReader(c)
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		n.stats.Requests.Add(1)
		day := n.Day()
		n.countRequest(day, ip)
		resp := n.respond(day, ip, req)
		if resp == nil {
			// Application-layer failure: the backend dies mid-request,
			// like the transient failures WhoWas observed — the client
			// sees a reset, and the IP counts as unavailable.
			return
		}
		if err := resp.Write(c); err != nil {
			return
		}
		if req.Close || resp.Close {
			return
		}
	}
}

// notFoundPage is the body every simulated server returns for an
// unknown path (netsim and loopback serving share it).
const notFoundPage = "<html><head><title>404 Not Found</title></head><body><h1>Not Found</h1></body></html>\n"

// respond builds the HTTP response for a request to ip on the given
// day.
func (n *Network) respond(day int, ip ipaddr.Addr, req *http.Request) *http.Response {
	profile, revision, ok := n.cloud.PageOn(day, ip)
	if !ok {
		// Port open but the application layer is failing today: no
		// HTTP response at all (nil -> connection closed).
		return nil
	}
	path := req.URL.Path
	switch {
	case path == "/robots.txt":
		return plainResponse(req, 200, "text/plain", profile.RobotsTxt(), nil)
	case path == "/" || path == "":
		body := profile.RenderPage(revision)
		headers := profile.Headers(revision)
		return plainResponse(req, profile.StatusCode, "", body, headers)
	default:
		if body := profile.RenderSubpage(path, revision); body != "" {
			return plainResponse(req, 200, "text/html", body,
				map[string]string{"Server": profile.Server})
		}
		return plainResponse(req, 404, "text/html", notFoundPage,
			map[string]string{"Server": profile.Server})
	}
}

// plainResponse assembles an *http.Response. When headers carries a
// Content-Type it wins over ctype.
func plainResponse(req *http.Request, status int, ctype, body string, headers map[string]string) *http.Response {
	h := http.Header{}
	for k, v := range headers {
		h.Set(k, v)
	}
	if h.Get("Content-Type") == "" {
		if ctype == "" {
			ctype = "text/html; charset=utf-8"
		}
		h.Set("Content-Type", ctype)
	}
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// selfSignedTLS builds a TLS config with a fresh ECDSA P-256
// self-signed certificate (fast handshakes; the fetcher, like the
// paper's, does not validate cloud certificates).
func selfSignedTLS() (*tls.Config, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "whowas-netsim"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:         true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	return &tls.Config{Certificates: []tls.Certificate{cert}}, nil
}
