package netsim

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// Loopback routes simulated cloud addresses to real TCP listeners on
// 127.0.0.1, so integration tests can run the scanner and fetcher over
// the actual kernel network stack (real dial timeouts, real sockets)
// against a handful of addresses. The listeners are a bounded Fleet:
// close-idempotent, goroutine-tracked, deterministic ports when
// FleetConfig.BasePort is set.
type Loopback struct {
	mu     sync.Mutex
	routes map[string]string // "ip:port" -> "127.0.0.1:nnnn"
	fleet  *Fleet
	dialer net.Dialer
}

// NewLoopback returns an empty farm with default fleet sizing.
func NewLoopback() *Loopback {
	return NewLoopbackFleet(FleetConfig{Max: 64})
}

// NewLoopbackFleet returns an empty farm whose listeners follow cfg
// (bound, host, deterministic base port).
func NewLoopbackFleet(cfg FleetConfig) *Loopback {
	return &Loopback{routes: make(map[string]string), fleet: NewFleet(cfg)}
}

// ServeProfile binds a real loopback listener serving the profile's
// content and routes the simulated ip:port to it. The listener speaks
// the same HTTP dialect as the in-memory network (serveHTTP), so page
// bytes match across transports.
func (l *Loopback) ServeProfile(ip ipaddr.Addr, port int, profile websim.Profile, revision int) error {
	prof := profile // copy for the handler closure
	addr, err := l.fleet.Listen(func(c net.Conn) {
		serveProfileConn(c, prof, revision)
	})
	if err != nil {
		return fmt.Errorf("netsim: loopback: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.routes[fmt.Sprintf("%s:%d", ip, port)] = addr
	return nil
}

// serveProfileConn answers HTTP requests on one real connection with a
// fixed profile's content, mirroring Network.respond's routing.
func serveProfileConn(c net.Conn, prof websim.Profile, revision int) {
	br := bufio.NewReader(c)
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		var resp *http.Response
		switch path := req.URL.Path; {
		case path == "/robots.txt":
			resp = plainResponse(req, 200, "text/plain", prof.RobotsTxt(), nil)
		case path == "/" || path == "":
			resp = plainResponse(req, prof.StatusCode, "", prof.RenderPage(revision), prof.Headers(revision))
		default:
			if body := prof.RenderSubpage(path, revision); body != "" {
				resp = plainResponse(req, 200, "text/html", body,
					map[string]string{"Server": prof.Server})
			} else {
				resp = plainResponse(req, 404, "text/html", notFoundPage,
					map[string]string{"Server": prof.Server})
			}
		}
		if err := resp.Write(c); err != nil {
			return
		}
		if req.Close || resp.Close {
			return
		}
	}
}

// ServeRaw routes ip:port to an externally managed listener address.
func (l *Loopback) ServeRaw(ip ipaddr.Addr, port int, realAddr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.routes[fmt.Sprintf("%s:%d", ip, port)] = realAddr
}

// DialContext routes known addresses to their real listeners; unknown
// addresses behave like dropped SYNs (block until the context
// expires), so real timeout paths are exercised.
func (l *Loopback) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	l.mu.Lock()
	real, ok := l.routes[address]
	l.mu.Unlock()
	if !ok {
		<-ctx.Done()
		return nil, &timeoutError{addr: address}
	}
	return l.dialer.DialContext(ctx, network, real)
}

// Close shuts the whole fleet down (listeners and live connections)
// and waits for its goroutines. Safe to call repeatedly.
func (l *Loopback) Close() {
	_ = l.fleet.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.routes = make(map[string]string)
}
