package netsim

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

// Loopback routes simulated cloud addresses to real TCP listeners on
// 127.0.0.1, so integration tests can run the scanner and fetcher over
// the actual kernel network stack (real dial timeouts, real sockets)
// against a handful of addresses.
type Loopback struct {
	mu        sync.Mutex
	routes    map[string]string // "ip:port" -> "127.0.0.1:nnnn"
	listeners []net.Listener
	servers   []*http.Server
	dialer    net.Dialer
}

// NewLoopback returns an empty farm.
func NewLoopback() *Loopback {
	return &Loopback{routes: make(map[string]string)}
}

// ServeProfile binds a real loopback listener serving the profile's
// content and routes the simulated ip:port to it.
func (l *Loopback) ServeProfile(ip ipaddr.Addr, port int, profile websim.Profile, revision int) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("netsim: loopback listen: %w", err)
	}
	mux := http.NewServeMux()
	prof := profile // copy for the closures
	mux.HandleFunc("/robots.txt", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, prof.RobotsTxt())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		for k, v := range prof.Headers(revision) {
			w.Header().Set(k, v)
		}
		w.WriteHeader(prof.StatusCode)
		fmt.Fprint(w, prof.RenderPage(revision))
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.routes[fmt.Sprintf("%s:%d", ip, port)] = ln.Addr().String()
	l.listeners = append(l.listeners, ln)
	l.servers = append(l.servers, srv)
	return nil
}

// ServeRaw routes ip:port to an externally managed listener address.
func (l *Loopback) ServeRaw(ip ipaddr.Addr, port int, realAddr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.routes[fmt.Sprintf("%s:%d", ip, port)] = realAddr
}

// DialContext routes known addresses to their real listeners; unknown
// addresses behave like dropped SYNs (block until the context
// expires), so real timeout paths are exercised.
func (l *Loopback) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	l.mu.Lock()
	real, ok := l.routes[address]
	l.mu.Unlock()
	if !ok {
		<-ctx.Done()
		return nil, &timeoutError{addr: address}
	}
	return l.dialer.DialContext(ctx, network, real)
}

// Close shuts every listener down.
func (l *Loopback) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.servers {
		_ = s.Close()
	}
	for _, ln := range l.listeners {
		_ = ln.Close()
	}
	l.servers = nil
	l.listeners = nil
	l.routes = make(map[string]string)
}
