package netsim

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// discardHandler drains the connection until the peer (or the fleet)
// closes it — the shape of a long-lived tunnel handler.
func discardHandler(c net.Conn) { _, _ = io.Copy(io.Discard, c) }

func TestFleetBoundedListeners(t *testing.T) {
	f := NewFleet(FleetConfig{Max: 2})
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Listen(discardHandler); err != nil {
			t.Fatalf("listener %d: %v", i, err)
		}
	}
	if _, err := f.Listen(discardHandler); err == nil {
		t.Fatal("third listener accepted past Max=2")
	}
	if n := f.NumListeners(); n != 2 {
		t.Errorf("NumListeners = %d, want 2", n)
	}
	if _, err := f.Listen(nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestFleetDeterministicPorts(t *testing.T) {
	// A fixed base makes the i-th listener's port predictable — the
	// property whowas-cloudd relies on for stable data-plane addresses.
	// The base may collide with another process, so scan a few.
	var f *Fleet
	var base int
	var first string
	for _, candidate := range []int{39120, 39370, 39620, 39870} {
		f = NewFleet(FleetConfig{Max: 3, BasePort: candidate})
		addr, err := f.Listen(discardHandler)
		if err == nil {
			base, first = candidate, addr
			break
		}
		_ = f.Close()
		f = nil
	}
	if f == nil {
		t.Skip("no candidate base port free")
	}
	defer f.Close()
	if want := fmt.Sprintf("127.0.0.1:%d", base); first != want {
		t.Fatalf("first listener at %s, want %s", first, want)
	}
	for i := 1; i < 3; i++ {
		addr, err := f.Listen(discardHandler)
		if err != nil {
			t.Fatalf("listener %d: %v", i, err)
		}
		if want := fmt.Sprintf("127.0.0.1:%d", base+i); addr != want {
			t.Errorf("listener %d at %s, want %s", i, addr, want)
		}
	}
	addrs := f.Addrs()
	if len(addrs) != 3 || addrs[0] != first {
		t.Errorf("Addrs() = %v", addrs)
	}
}

func TestFleetCloseIdempotentAndDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	f := NewFleet(FleetConfig{Max: 4})

	// Handlers that block forever on read: only a force-close from the
	// fleet can unwind them.
	started := make(chan struct{}, 16)
	addr, err := f.Listen(func(c net.Conn) {
		started <- struct{}{}
		discardHandler(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	var clients []net.Conn
	for i := 0; i < 5; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("handler never started")
		}
	}

	// Concurrent Closes must all succeed and all wait for the drain.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()

	// After Close returns, accept loops and handlers have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("%d goroutines after Close, %d before: fleet leaked", g, before)
	}

	// Listening on a closed fleet fails; closing again stays nil.
	if _, err := f.Listen(discardHandler); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Listen after Close = %v, want closed error", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("re-Close: %v", err)
	}
	for _, c := range clients {
		_ = c.Close()
	}
}

func TestFleetHandlerEcho(t *testing.T) {
	f := NewFleet(FleetConfig{})
	defer f.Close()
	addr, err := f.Listen(func(c net.Conn) {
		_, _ = io.Copy(c, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := io.WriteString(c, "ping"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("echo = %q", buf)
	}
}
