package netsim

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
)

// rawHTTP writes raw request bytes over a dialed connection and reads
// the raw response — exercising serveHTTP below the http.Client layer.
func rawHTTP(t *testing.T, n *Network, ip ipaddr.Addr, port int, raw string) (string, error) {
	t.Helper()
	c, err := n.DialContext(context.Background(), "tcp", ip.String()+":"+itoa(port))
	if err != nil {
		return "", err
	}
	defer c.Close()
	if _, err := io.WriteString(c, raw); err != nil {
		return "", err
	}
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	out, err := io.ReadAll(c)
	return string(out), err
}

func itoa(n int) string {
	if n == 80 {
		return "80"
	}
	if n == 443 {
		return "443"
	}
	return "22"
}

func TestRawRequestServed(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	resp, err := rawHTTP(t, n, ip, 80, "GET / HTTP/1.1\r\nHost: "+ip.String()+"\r\nConnection: close\r\n\r\n")
	if err != nil && !strings.Contains(err.Error(), "EOF") {
		t.Fatalf("raw read: %v", err)
	}
	if !strings.HasPrefix(resp, "HTTP/1.1 ") {
		t.Fatalf("response start = %.40q", resp)
	}
	if !strings.Contains(resp, "Content-Type:") {
		t.Error("missing Content-Type header")
	}
}

func TestGarbageRequestClosesConnection(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	resp, _ := rawHTTP(t, n, ip, 80, "THIS IS NOT HTTP\r\n\r\n")
	// The server must simply close; no panic, no partial garbage
	// beyond at most an error response.
	if strings.Contains(resp, "200 OK") {
		t.Errorf("garbage request got 200: %.60q", resp)
	}
}

func TestKeepAliveServesMultipleRequests(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	c, err := n.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	for i := 0; i < 3; i++ {
		if _, err := io.WriteString(c, "GET /robots.txt HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "User-agent") {
			t.Fatalf("request %d: status %d body %.40q", i, resp.StatusCode, body)
		}
	}
}

func TestKeepAliveTracksDayChanges(t *testing.T) {
	// A connection held across SetDay must serve the NEW day's truth —
	// the regression that once had pooled fetcher connections serving
	// stale content.
	n, cloud := testNetwork(t)
	// Find an IP that is web on day 0 and HTTPFails on a later day.
	var ip ipaddr.Addr
	var failDay int
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		s0 := cloud.StateAt(0, a)
		if !s0.Web || s0.Slow || s0.HTTPFail || s0.Down {
			return true
		}
		for d := 1; d < cloud.Days(); d++ {
			st := cloud.StateAt(d, a)
			if st.Web && st.HTTPFail {
				ip, failDay, found = a, d, true
				return false
			}
		}
		return true
	})
	if !found {
		t.Skip("no suitable flickering IP")
	}
	c, err := n.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	if _, err := io.WriteString(c, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	n.SetDay(failDay)
	if _, err := io.WriteString(c, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := http.ReadResponse(br, nil); err == nil {
		t.Error("connection served content on the IP's failure day; want reset")
	}
}

func TestConcurrentDials(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			client := &http.Client{Transport: &http.Transport{DialContext: n.DialContext, DisableKeepAlives: true}, Timeout: 5 * time.Second}
			resp, err := client.Get("http://" + ip.String() + "/")
			if err != nil {
				done <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			done <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDownServiceConnectionReset(t *testing.T) {
	n, cloud := testNetwork(t)
	var ip ipaddr.Addr
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		st := cloud.StateAt(0, a)
		if st.Web && st.Down && !st.Slow {
			ip, found = a, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no down service on day 0")
	}
	client := &http.Client{Transport: &http.Transport{DialContext: n.DialContext}, Timeout: 2 * time.Second}
	_, err := client.Get("http://" + ip.String() + "/")
	if err == nil {
		t.Error("down service answered HTTP")
	}
	_ = cloudsim.SSHOnly
}
