package netsim

import (
	"context"
	"crypto/tls"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/ipaddr"
	"whowas/internal/websim"
)

func testNetwork(t testing.TB) (*Network, *cloudsim.Cloud) {
	t.Helper()
	cloud, err := cloudsim.New(cloudsim.DefaultEC2Config(512, 11))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(cloud)
	if err != nil {
		t.Fatal(err)
	}
	return n, cloud
}

// findIP locates an IP in a given state on day 0.
func findIP(t testing.TB, cloud *cloudsim.Cloud, pred func(cloudsim.IPState) bool) ipaddr.Addr {
	t.Helper()
	var found ipaddr.Addr
	ok := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		if pred(cloud.StateAt(0, a)) {
			found, ok = a, true
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("no IP matches predicate")
	}
	return found
}

func TestDialUnboundTimesOut(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return !s.Bound })
	_, err := n.DialContext(context.Background(), "tcp", ip.String()+":80")
	if err == nil {
		t.Fatal("dial to unbound IP succeeded")
	}
	var ne net.Error
	if !asNetError(err, &ne) || !ne.Timeout() {
		t.Errorf("unbound dial error = %v, want timeout", err)
	}
}

func asNetError(err error, out *net.Error) bool {
	ne, ok := err.(net.Error)
	if ok {
		*out = ne
	}
	return ok
}

func TestDialClosedPortRefused(t *testing.T) {
	n, cloud := testNetwork(t)
	// SSH-only instance: port 80 must be refused, not timed out.
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return s.Bound && s.Ports == cloudsim.SSHOnly && !s.Slow })
	_, err := n.DialContext(context.Background(), "tcp", ip.String()+":80")
	var ne net.Error
	if err == nil || !asNetError(err, &ne) || ne.Timeout() {
		t.Errorf("closed-port dial error = %v, want refused (non-timeout)", err)
	}
}

func TestDialSSHGivesBanner(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return s.Bound && s.Ports == cloudsim.SSHOnly && !s.Slow })
	c, err := n.DialContext(context.Background(), "tcp", ip.String()+":22")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	n2, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n2]), "SSH-2.0-") {
		t.Errorf("banner = %q", buf[:n2])
	}
}

// findWebIP returns a live, non-slow, web-serving IP for the day with
// the given port open and no failure.
func findWebIP(t testing.TB, cloud *cloudsim.Cloud, port int) ipaddr.Addr {
	return findIP(t, cloud, func(s cloudsim.IPState) bool {
		return s.Bound && s.Web && !s.Slow && !s.HTTPFail && !s.Down && s.Ports.OpensPort(port) &&
			pageOK(cloud, s, port)
	})
}

func pageOK(cloud *cloudsim.Cloud, s cloudsim.IPState, port int) bool {
	svc := cloud.ServiceByID(s.ServiceID)
	return svc != nil
}

func TestHTTPFetchOverPipe(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	client := &http.Client{
		Transport: &http.Transport{DialContext: n.DialContext, DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	resp, err := client.Get("http://" + ip.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	profile, rev, ok := cloud.PageOn(0, ip)
	if !ok {
		t.Fatal("ground truth says no page")
	}
	if resp.StatusCode != profile.StatusCode {
		t.Errorf("status = %d, want %d", resp.StatusCode, profile.StatusCode)
	}
	if string(body) != profile.RenderPage(rev) {
		t.Errorf("body mismatch: got %d bytes", len(body))
	}
	if got := resp.Header.Get("Server"); got != profile.Server {
		t.Errorf("Server header = %q, want %q", got, profile.Server)
	}
}

func TestHTTPSFetchOverTLS(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 443)
	client := &http.Client{
		Transport: &http.Transport{
			DialContext:     n.DialContext,
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
		},
		Timeout: 5 * time.Second,
	}
	resp, err := client.Get("https://" + ip.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if n.Stats().TLSConns.Load() == 0 {
		t.Error("no TLS handshake recorded")
	}
}

func TestRobotsTxtServed(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	client := &http.Client{Transport: &http.Transport{DialContext: n.DialContext}, Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ip.String() + "/robots.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "User-agent:") {
		t.Errorf("robots.txt body = %q", body)
	}
}

func TestUnknownPathIs404(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	client := &http.Client{Transport: &http.Transport{DialContext: n.DialContext}, Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ip.String() + "/deep/page.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSlowHostRespectsDeadline(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return s.Bound && s.Slow })
	// Impatient dial (2 s budget): must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := n.DialContext(ctx, "tcp", ip.String()+":22")
	var ne net.Error
	if err == nil || !asNetError(err, &ne) || !ne.Timeout() {
		t.Errorf("impatient dial to slow host = %v, want timeout", err)
	}
	// Patient dial (8 s): must succeed.
	ctx8, cancel8 := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel8()
	c, err := n.DialContext(ctx8, "tcp", ip.String()+":22")
	if err != nil {
		t.Fatalf("patient dial to slow host: %v", err)
	}
	c.Close()
}

func TestTransientLossRecoversOnRetry(t *testing.T) {
	n, cloud := testNetwork(t)
	n.LossPerMille = 1000 // make every host lossy today
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return s.Bound && !s.Slow })
	// A lossy host drops a full scan sequence (3 attempts) and then
	// answers retries — the §4 retry experiment's recovery mechanism.
	var ne net.Error
	for attempt := 1; attempt <= 3; attempt++ {
		_, err := n.DialContext(context.Background(), "tcp", ip.String()+":22")
		if err == nil || !asNetError(err, &ne) || !ne.Timeout() {
			t.Fatalf("attempt %d = %v, want timeout", attempt, err)
		}
	}
	c, err := n.DialContext(context.Background(), "tcp", ip.String()+":22")
	if err != nil {
		t.Fatalf("retry after loss window failed: %v", err)
	}
	c.Close()
	// A new day resets attempt tracking: probes drop again.
	n.SetDay(1)
	if _, err := n.DialContext(context.Background(), "tcp", ip.String()+":22"); err == nil {
		t.Error("after day reset, first attempt succeeded; want drop")
	}
}

func TestTransientLossScopedPerSession(t *testing.T) {
	n, cloud := testNetwork(t)
	n.LossPerMille = 1000 // make every host lossy today
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return s.Bound && !s.Slow })
	var ne net.Error
	mustDrop := func(ctx context.Context, label string) {
		t.Helper()
		_, err := n.DialContext(ctx, "tcp", ip.String()+":22")
		if err == nil || !asNetError(err, &ne) || !ne.Timeout() {
			t.Fatalf("%s = %v, want timeout", label, err)
		}
	}
	// A victim session consumes part of the loss window, then dies
	// mid-probe (simply stops dialing).
	victim := WithProbeSession(context.Background(), "victim")
	mustDrop(victim, "victim attempt 1")
	mustDrop(victim, "victim attempt 2")
	// A fresh session re-measuring the same IP behaves like a first
	// measurement: the full loss window, then recovery. This is what
	// lets a coordinator re-run a dead worker's shard and still match
	// the single-process digest.
	rerun := WithProbeSession(context.Background(), "rerun")
	for attempt := 1; attempt <= 3; attempt++ {
		mustDrop(rerun, "rerun attempt")
	}
	c, err := n.DialContext(rerun, "tcp", ip.String()+":22")
	if err != nil {
		t.Fatalf("rerun retry after loss window failed: %v", err)
	}
	c.Close()
	// The unstamped (in-process) path is its own scope, untouched by
	// either session's history.
	mustDrop(context.Background(), "unstamped attempt 1")
	if got := ProbeSession(context.Background()); got != "" {
		t.Errorf("ProbeSession(background) = %q, want empty", got)
	}
}

func TestSetDayChangesContent(t *testing.T) {
	n, cloud := testNetwork(t)
	// Find an IP that is web on day 0 and unbound at some later day.
	var ip ipaddr.Addr
	var later int
	found := false
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		s0 := cloud.StateAt(0, a)
		if !s0.Web || s0.Slow {
			return true
		}
		for d := 10; d < cloud.Days(); d += 10 {
			if !cloud.StateAt(d, a).Bound {
				ip, later, found = a, d, true
				return false
			}
		}
		return true
	})
	if !found {
		t.Skip("no IP transitions from web to unbound in sample")
	}
	if _, err := n.DialContext(context.Background(), "tcp", ip.String()+":22"); err != nil {
		t.Fatalf("day-0 dial: %v", err)
	}
	n.SetDay(later)
	if _, err := n.DialContext(context.Background(), "tcp", ip.String()+":22"); err == nil {
		t.Error("dial succeeded on day the IP is unbound")
	}
}

func TestProbeRecording(t *testing.T) {
	n, cloud := testNetwork(t)
	n.RecordProbes(true)
	ip := findIP(t, cloud, func(s cloudsim.IPState) bool { return !s.Bound })
	for i := 0; i < 3; i++ {
		_, _ = n.DialContext(context.Background(), "tcp", ip.String()+":80")
	}
	if got := n.ProbeCount(0, ip); got != 3 {
		t.Errorf("ProbeCount = %d, want 3", got)
	}
}

func TestDialRejectsBadInput(t *testing.T) {
	n, _ := testNetwork(t)
	cases := []struct{ network, addr string }{
		{"udp", "1.2.3.4:80"},
		{"tcp", "1.2.3.4"},        // no port
		{"tcp", "1.2.3.4:notnum"}, // bad port
		{"tcp", "nothost:80"},     // bad host
	}
	for _, c := range cases {
		if _, err := n.DialContext(context.Background(), c.network, c.addr); err == nil {
			t.Errorf("DialContext(%q,%q) succeeded", c.network, c.addr)
		}
	}
}

func TestCancelledContext(t *testing.T) {
	n, cloud := testNetwork(t)
	ip := findWebIP(t, cloud, 80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.DialContext(ctx, "tcp", ip.String()+":80"); err == nil {
		t.Error("dial with cancelled context succeeded")
	}
}

func TestLoopbackRealTCP(t *testing.T) {
	lb := NewLoopback()
	defer lb.Close()
	profile := websim.GenProfile(rand.New(rand.NewSource(1)), 1, websim.EC2Like, websim.CategoryBlog)
	profile.StatusCode = 200
	profile.ContentType = "text/html"
	profile.DefaultPage = false
	profile.MultiVhost = false
	ip := ipaddr.MustParseAddr("54.1.2.3")
	if err := lb.ServeProfile(ip, 80, profile, 0); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{DialContext: lb.DialContext}, Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ip.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), profile.Title) {
		t.Errorf("loopback body missing title %q", profile.Title)
	}
	// Unrouted IP: dial must honor the context deadline (real timeout).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = lb.DialContext(ctx, "tcp", "54.9.9.9:80")
	if err == nil {
		t.Fatal("unrouted dial succeeded")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("unrouted dial returned after %v, want to block until deadline", elapsed)
	}
}

func BenchmarkDialUnbound(b *testing.B) {
	n, cloud := testNetwork(b)
	ip := findIP(b, cloud, func(s cloudsim.IPState) bool { return !s.Bound })
	addr := ip.String() + ":80"
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = n.DialContext(ctx, "tcp", addr)
	}
}

func BenchmarkHTTPFetch(b *testing.B) {
	n, cloud := testNetwork(b)
	ip := findWebIP(b, cloud, 80)
	client := &http.Client{Transport: &http.Transport{DialContext: n.DialContext, DisableKeepAlives: true}}
	url := "http://" + ip.String() + "/"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
