// Package core assembles the WhoWas platform (§4, Figure 1): the
// scanner, webpage fetcher and feature generator populating a
// round-oriented store, plus the analysis attachments — clustering,
// cloud cartography, and blacklist feeds. It is the public face of the
// library: the CLIs, the examples and the benchmark harness all drive
// a Platform.
//
// A Platform binds one simulated cloud (the measurement substrate
// standing in for 2013 EC2/Azure — see DESIGN.md) to one measurement
// campaign. Running a campaign executes the paper's §6 schedule: a
// round of scanning every three days for the first two months and
// daily for the final month.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"whowas/internal/atomicfile"
	"whowas/internal/carto"
	"whowas/internal/cloudapi"
	"whowas/internal/cluster"
	"whowas/internal/faults"
	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/ratelimit"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// CampaignConfig drives one measurement campaign.
type CampaignConfig struct {
	// RoundDays are the campaign day offsets on which rounds run; nil
	// means the paper's schedule (DefaultRoundSchedule).
	RoundDays []int
	// Scanner and Fetcher tune the pipeline; zero values take the
	// paper's defaults (see scanner.Config.WithDefaults and
	// fetcher.Config.WithDefaults for the resolved values). The
	// Fetcher.UserAgent is honored as configured — per §7 it must
	// identify the measurement as research and carry a contact
	// address; leaving it empty selects fetcher.DefaultUserAgent,
	// which does.
	Scanner scanner.Config
	Fetcher fetcher.Config
	// Blacklist lists opted-out IPs that are never probed (§4/§7).
	Blacklist *ipaddr.Set
	// Faults, when non-nil, wraps the platform's network with the
	// deterministic fault-injection layer (internal/faults) for chaos
	// campaigns: every scanner probe and fetcher GET dials through the
	// scenario's seeded faults, and the faults.* injection counters
	// land in the platform registry.
	Faults *faults.Scenario
	// RoundTimeout bounds each round's wall-clock time. A round that
	// exceeds it degrades gracefully — it finalizes with the records
	// collected so far and RoundReport.Degraded set — instead of
	// wedging the campaign. 0 means no deadline (the default).
	RoundTimeout time.Duration
	// KeepBodies retains raw page bodies in the store (memory-hungry;
	// features are extracted either way).
	KeepBodies bool
	// PipelineShards sets how many region lanes the round pipeline
	// runs: each lane is an independent scan→fetch→featurize chain over
	// its share of the cloud's regions, writing through its own store
	// shard. 0 (the default) means one lane per region; 1 recovers the
	// unsharded round; values above the region count are clamped. The
	// store contents are byte-identical for any shard count — shards
	// are merged and IP-sorted before the round digest is taken.
	PipelineShards int
	// Observer, when non-nil, receives one structured RoundReport as
	// each round completes. It is called synchronously from
	// RunCampaign between rounds, so it needs no locking but should
	// return promptly.
	Observer func(RoundReport)
}

// RoundReport is the structured per-round event delivered to
// CampaignConfig.Observer and accumulated on Platform.Reports. It
// joins the scanner's counts, the fetch/store pipeline's counts, and
// the round's stage timings into one flat record; the -metrics CLI
// flag serializes the whole campaign's reports as JSON.
type RoundReport struct {
	Round int `json:"round"` // round index, 0-based
	Day   int `json:"day"`   // campaign day offset

	// Scanning counts (this round only).
	Probed     int64 `json:"probed"`     // IPs probed
	Skipped    int64 `json:"skipped"`    // IPs skipped via the opt-out blacklist
	Probes     int64 `json:"probes"`     // individual port probes sent
	Responsive int64 `json:"responsive"` // IPs answering at least one probe

	// Fetching/storing counts (this round only).
	Fetched      int64 `json:"fetched"`       // pages with an HTTP response
	RobotsDenied int64 `json:"robots_denied"` // IPs whose robots.txt disallowed "/"
	FetchErrors  int64 `json:"fetch_errors"`  // transport-level fetch failures
	Records      int64 `json:"records"`       // records stored
	BodyBytes    int64 `json:"body_bytes"`    // page body bytes collected

	// Resilience (faulty-network campaigns).
	Retries  int64 `json:"retries"`  // scan probes retried after timeouts
	Degraded bool  `json:"degraded"` // round hit RoundTimeout; records are partial

	// Stage durations. Fetching overlaps scanning, so Scan covers the
	// scan of the whole address space, Drain the tail from scan
	// completion until the last page was stored, and Total the whole
	// round including store finalization.
	Scan  time.Duration `json:"scan_ns"`
	Drain time.Duration `json:"drain_ns"`
	Total time.Duration `json:"total_ns"`

	// Regions breaks the round down by cloud region (one entry per
	// region, in address-range order), reflecting the pipeline's
	// region-sharded lanes.
	Regions []RegionReport `json:"regions,omitempty"`
}

// RegionReport is one region's share of a round.
type RegionReport struct {
	Region     string `json:"region"`
	Probed     int64  `json:"probed"`
	Skipped    int64  `json:"skipped"`
	Responsive int64  `json:"responsive"`
	Fetched    int64  `json:"fetched"`
	Records    int64  `json:"records"`
	// Degraded marks a region whose scan had not completed when the
	// round hit its deadline; its counts are partial.
	Degraded bool `json:"degraded,omitempty"`
}

// DefaultRoundSchedule reproduces §6: one round every 3 days during
// the first two months, then daily for the final month. For the
// 93-day EC2 campaign this yields the paper's 51 rounds.
func DefaultRoundSchedule(days int) []int {
	var out []int
	dailyFrom := days - 30
	if dailyFrom < 0 {
		dailyFrom = 0
	}
	for d := 0; d < dailyFrom; d += 3 {
		out = append(out, d)
	}
	for d := dailyFrom; d < days; d++ {
		out = append(out, d)
	}
	return out
}

// FastCampaign returns a config that runs the full schedule at
// simulation speed: probing is unthrottled (simulation only — see
// scanner.UnlimitedRate) and worker pools are sized for throughput.
func FastCampaign() CampaignConfig {
	w := fastWorkers()
	return CampaignConfig{
		Scanner: scanner.Config{Rate: scanner.UnlimitedRate, Workers: w},
		Fetcher: fetcher.Config{Workers: w, Timeout: 10 * time.Second},
	}
}

// fastWorkers scales the simulation-speed pools with the hardware,
// floored at the historical fixed size of 128.
func fastWorkers() int {
	w := 32 * runtime.GOMAXPROCS(0)
	if w < 128 {
		w = 128
	}
	return w
}

// Platform is one cloud's measurement deployment. The cloud is
// consumed exclusively through the cloudapi boundary, so the same
// platform code drives an in-process simulation or a remote
// whowas-cloudd daemon.
type Platform struct {
	Cloud cloudapi.Cloud
	Store *store.Store
	// Feeds are the §8.2 blacklist attachments (nil for wire clouds,
	// whose feeds live on the daemon side).
	Feeds *cloudapi.Feeds
	// CartoMap is set by RunCartography (EC2-like clouds).
	CartoMap *carto.Map
	// Clusters is set by RunClustering.
	Clusters *cluster.Result
	// Metrics aggregates instrumentation from every pipeline stage
	// (scanner, fetcher, store, clustering, cartography). NewPlatform
	// installs a fresh registry; setting the field to nil before
	// RunCampaign disables instrumentation entirely (the benchmark
	// baseline does this).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records the campaign's span tree: a root
	// span per round, stage children (scan, fetch, featurize), and
	// sampled per-IP probe/get spans. Nil (the default) traces
	// nothing — every span call no-ops.
	Tracer *trace.Tracer
	// Reports holds one RoundReport per completed campaign round, in
	// round order, regardless of whether an Observer was configured.
	// RunCampaign appends between rounds; concurrent readers (the ops
	// server) should use RoundReports instead of the bare field.
	Reports []RoundReport

	reportsMu sync.Mutex // guards Reports against mid-campaign readers

	// putHook, when non-nil, replaces Store.Put in the round pipeline's
	// featurize sink. Tests inject store failures and mid-round
	// cancellations through it.
	putHook func(*store.Record) error
}

// RoundReports returns a copy of the completed rounds' reports. Safe
// to call while a campaign is running (the ops server's /rounds
// endpoint does).
func (p *Platform) RoundReports() []RoundReport {
	p.reportsMu.Lock()
	defer p.reportsMu.Unlock()
	return append([]RoundReport(nil), p.Reports...)
}

func (p *Platform) appendReport(r RoundReport) {
	p.reportsMu.Lock()
	defer p.reportsMu.Unlock()
	p.Reports = append(p.Reports, r)
}

// NewPlatform builds an in-process simulated cloud and an empty
// store. It is the convenience path for local campaigns; wire-mode
// callers Dial a daemon and hand the client to NewPlatformCloud.
func NewPlatform(cloudCfg cloudapi.SimConfig) (*Platform, error) {
	cloud, err := cloudapi.NewInProcess(cloudCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewPlatformCloud(cloud)
}

// NewPlatformCloud builds a platform over an already-constructed
// cloud — in-process or a cloudapi.Client speaking to whowas-cloudd.
func NewPlatformCloud(cloud cloudapi.Cloud) (*Platform, error) {
	if cloud == nil {
		return nil, fmt.Errorf("core: nil cloud")
	}
	reg := metrics.NewRegistry()
	st := store.New(cloud.Info().Name)
	st.SetMetrics(reg)
	return &Platform{
		Cloud:   cloud,
		Store:   st,
		Feeds:   cloudapi.FeedsOf(cloud),
		Metrics: reg,
	}, nil
}

// UseStoreBackend replaces the platform's store with a fresh one over
// the given backend — the hook through which the CLIs select the
// columnar engine (-store-dir). Call it before the campaign starts;
// any rounds already collected in the old store are not migrated. The
// platform's metrics registry and tracer are re-attached so store
// instrumentation is uninterrupted.
func (p *Platform) UseStoreBackend(b store.Backend) error {
	if p.Store.NumRounds() > 0 {
		return fmt.Errorf("core: store already holds %d rounds; select the backend before collecting", p.Store.NumRounds())
	}
	st := store.NewWithBackend(p.Store.CloudName, b)
	st.SetMetrics(p.Metrics)
	st.SetTracer(p.Tracer)
	st.KeepBodies = p.Store.KeepBodies
	p.Store = st
	return nil
}

// withPlatformDefaults threads the platform registry, tracer and
// region map through the pipeline components unless the caller
// supplied component-specific ones.
func withPlatformDefaults(p *Platform, cfg CampaignConfig) CampaignConfig {
	if cfg.Scanner.Metrics == nil {
		cfg.Scanner.Metrics = p.Metrics
	}
	if cfg.Fetcher.Metrics == nil {
		cfg.Fetcher.Metrics = p.Metrics
	}
	if cfg.Scanner.Tracer == nil {
		cfg.Scanner.Tracer = p.Tracer
	}
	if cfg.Fetcher.Tracer == nil {
		cfg.Fetcher.Tracer = p.Tracer
	}
	if cfg.Scanner.RegionOf == nil {
		cfg.Scanner.RegionOf = p.Cloud.RegionOf
	}
	if cfg.Fetcher.RegionOf == nil {
		cfg.Fetcher.RegionOf = p.Cloud.RegionOf
	}
	return cfg
}

// RunCampaign executes rounds per the config's schedule: each round
// advances the network day and runs the region-sharded pipeline
// (round.go) — scan the cloud's ranges, fetch pages for responsive web
// IPs, extract features, store the records — one lane per region
// shard. Each completed round appends a RoundReport to p.Reports and,
// when configured, invokes cfg.Observer with it.
func (p *Platform) RunCampaign(ctx context.Context, cfg CampaignConfig) error {
	days := cfg.RoundDays
	if days == nil {
		days = DefaultRoundSchedule(p.Cloud.Days())
	}
	cfg = withPlatformDefaults(p, cfg)
	if p.Tracer != nil {
		p.Store.SetTracer(p.Tracer)
	}
	// Chaos campaigns wrap the cloud's data plane with the fault
	// injector at this single point; its decisions are deterministic
	// per (ip, port, day, attempt), so the same scenario reproduces
	// the same campaign byte for byte — over any transport.
	cloud := p.Cloud
	if cfg.Faults != nil {
		fc, err := cloudapi.WithFaults(p.Cloud, *cfg.Faults, p.Metrics)
		if err != nil {
			return err
		}
		cloud = fc
	}
	c, err := newCampaign(p, cfg, cloud)
	if err != nil {
		return err
	}
	for i, day := range days {
		if err := ctx.Err(); err != nil {
			return err
		}
		if day < 0 || day >= p.Cloud.Days() {
			return fmt.Errorf("core: round day %d outside campaign [0,%d)", day, p.Cloud.Days())
		}
		if err := c.runRound(ctx, i, day); err != nil {
			return err
		}
	}
	return nil
}

// DisableMetrics detaches instrumentation from the platform and its
// store: subsequent campaigns take the uninstrumented fast path (no
// counter updates, no latency clock reads). The overhead benchmark
// uses it to measure the instrumented/uninstrumented gap.
func (p *Platform) DisableMetrics() {
	p.Metrics = nil
	p.Store.SetMetrics(nil)
}

// CampaignReport is the campaign-level observability document the
// CLIs' -metrics flag serializes: the per-round reports plus a full
// snapshot of every pipeline instrument.
type CampaignReport struct {
	Cloud   string           `json:"cloud"`
	Rounds  []RoundReport    `json:"rounds"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// Report assembles the platform's campaign report. Call it after the
// campaign (and any clustering/cartography passes) so every stage's
// instruments are populated.
func (p *Platform) Report() CampaignReport {
	return CampaignReport{
		Cloud:   p.Store.CloudName,
		Rounds:  p.RoundReports(),
		Metrics: p.Metrics.Snapshot(),
	}
}

// WriteMetricsJSON writes the campaign report as indented JSON.
func (p *Platform) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Report())
}

// WriteMetricsFile writes the campaign report to path atomically: the
// JSON lands in a temp file that is fsynced and renamed into place, so
// a crash mid-write never leaves a torn report at the destination.
func (p *Platform) WriteMetricsFile(path string) error {
	f, err := atomicfile.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteMetricsJSON(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// RunCartography performs the §5 one-time VPC/classic DNS sweep and
// joins the labels onto every stored record. Azure-like clouds have no
// VPC; the sweep still runs and labels everything classic.
func (p *Platform) RunCartography(ctx context.Context, cfg carto.Config) error {
	resolver := p.Cloud.Resolver(0)
	if cfg.Clock == nil {
		cfg.Clock = ratelimit.NewFakeClock(time.Unix(1380499200, 0))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = p.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = p.Tracer
	}
	m, err := carto.Sweep(ctx, resolver, p.Cloud.Ranges(), p.Cloud.RegionOf, cfg)
	if err != nil {
		return err
	}
	p.CartoMap = m
	if err := m.Apply(p.Store); err != nil {
		return err
	}
	return nil
}

// RunClustering executes the §5 clustering over the collected rounds
// and records the result on the platform.
func (p *Platform) RunClustering(cfg cluster.Config) error {
	if cfg.Seed == 0 {
		cfg.Seed = p.Cloud.Info().Seed
	}
	if cfg.Metrics == nil {
		cfg.Metrics = p.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = p.Tracer
	}
	res, err := cluster.Run(p.Store, cfg)
	if err != nil {
		return err
	}
	p.Clusters = res
	return nil
}

// History is the headline "whowas" lookup: the per-round records of
// one IP across the campaign.
func (p *Platform) History(ip ipaddr.Addr) []*store.Record {
	return p.Store.History(ip)
}

// IsEC2Like reports whether the platform's cloud models EC2 (and thus
// has VPC networking and a meaningful cartography).
func (p *Platform) IsEC2Like() bool {
	return p.Cloud.Info().IsEC2Like()
}
