// Package core assembles the WhoWas platform (§4, Figure 1): the
// scanner, webpage fetcher and feature generator populating a
// round-oriented store, plus the analysis attachments — clustering,
// cloud cartography, and blacklist feeds. It is the public face of the
// library: the CLIs, the examples and the benchmark harness all drive
// a Platform.
//
// A Platform binds one simulated cloud (the measurement substrate
// standing in for 2013 EC2/Azure — see DESIGN.md) to one measurement
// campaign. Running a campaign executes the paper's §6 schedule: a
// round of scanning every three days for the first two months and
// daily for the final month.
package core

import (
	"context"
	"fmt"
	"time"

	"whowas/internal/blacklist"
	"whowas/internal/carto"
	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/dnssim"
	"whowas/internal/features"
	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/netsim"
	"whowas/internal/ratelimit"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/websim"
)

// CampaignConfig drives one measurement campaign.
type CampaignConfig struct {
	// RoundDays are the campaign day offsets on which rounds run; nil
	// means the paper's schedule (DefaultRoundSchedule).
	RoundDays []int
	// Scanner and Fetcher tune the pipeline; zero values take the
	// paper's defaults (250 pps, 2 s probe timeout, 250 workers, 10 s
	// HTTP timeout).
	Scanner scanner.Config
	Fetcher fetcher.Config
	// Blacklist lists opted-out IPs that are never probed (§4/§7).
	Blacklist *ipaddr.Set
	// KeepBodies retains raw page bodies in the store (memory-hungry;
	// features are extracted either way).
	KeepBodies bool
	// Progress, when non-nil, receives a line per round.
	Progress func(round, day, responsive int)
}

// DefaultRoundSchedule reproduces §6: one round every 3 days during
// the first two months, then daily for the final month. For the
// 93-day EC2 campaign this yields the paper's 51 rounds.
func DefaultRoundSchedule(days int) []int {
	var out []int
	dailyFrom := days - 30
	if dailyFrom < 0 {
		dailyFrom = 0
	}
	for d := 0; d < dailyFrom; d += 3 {
		out = append(out, d)
	}
	for d := dailyFrom; d < days; d++ {
		out = append(out, d)
	}
	return out
}

// FastCampaign returns a config that runs the full schedule at
// simulation speed: probing is unthrottled (simulation only — see
// scanner.UnlimitedRate) and worker pools are sized for throughput.
func FastCampaign() CampaignConfig {
	return CampaignConfig{
		Scanner: scanner.Config{Rate: scanner.UnlimitedRate, Workers: 128},
		Fetcher: fetcher.Config{Workers: 128, Timeout: 10 * time.Second},
	}
}

// Platform is one cloud's measurement deployment.
type Platform struct {
	Cloud *cloudsim.Cloud
	Net   *netsim.Network
	Store *store.Store
	// Feeds are the §8.2 blacklist attachments.
	Feeds *blacklist.Feeds
	// CartoMap is set by RunCartography (EC2-like clouds).
	CartoMap *carto.Map
	// Clusters is set by RunClustering.
	Clusters *cluster.Result
}

// NewPlatform builds the cloud, its network, and an empty store.
func NewPlatform(cloudCfg cloudsim.Config) (*Platform, error) {
	cloud, err := cloudsim.New(cloudCfg)
	if err != nil {
		return nil, fmt.Errorf("core: building cloud: %w", err)
	}
	net, err := netsim.New(cloud)
	if err != nil {
		return nil, fmt.Errorf("core: building network: %w", err)
	}
	return &Platform{
		Cloud: cloud,
		Net:   net,
		Store: store.New(cloudCfg.Name),
		Feeds: blacklist.BuildFeeds(cloud),
	}, nil
}

// RunCampaign executes rounds per the config's schedule: each round
// advances the network day, scans the cloud's ranges, fetches pages
// for responsive web IPs, extracts features, and stores the records.
func (p *Platform) RunCampaign(ctx context.Context, cfg CampaignConfig) error {
	days := cfg.RoundDays
	if days == nil {
		days = DefaultRoundSchedule(p.Cloud.Days())
	}
	cfg.Fetcher.UserAgent = "" // force the research UA default
	scn, err := scanner.New(p.Net, cfg.Scanner)
	if err != nil {
		return err
	}
	ftc, err := fetcher.New(p.Net, cfg.Fetcher)
	if err != nil {
		return err
	}
	p.Store.KeepBodies = cfg.KeepBodies

	for i, day := range days {
		if err := ctx.Err(); err != nil {
			return err
		}
		if day < 0 || day >= p.Cloud.Days() {
			return fmt.Errorf("core: round day %d outside campaign [0,%d)", day, p.Cloud.Days())
		}
		p.Net.SetDay(day)
		if _, err := p.Store.BeginRound(day); err != nil {
			return err
		}

		results := make(chan scanner.Result, 1024)
		pages := make(chan fetcher.Page, 1024)
		go ftc.Run(ctx, results, pages)

		collectErr := make(chan error, 1)
		go func() {
			for page := range pages {
				rec := features.FromPage(&page)
				if err := p.Store.Put(rec); err != nil {
					collectErr <- err
					return
				}
			}
			collectErr <- nil
		}()

		stats, err := scn.ScanRanges(ctx, p.Cloud.Ranges(), cfg.Blacklist, results)
		if err != nil {
			<-collectErr
			return fmt.Errorf("core: round %d scan: %w", i, err)
		}
		if err := <-collectErr; err != nil {
			return fmt.Errorf("core: round %d collect: %w", i, err)
		}
		p.Store.AddProbed(stats.Probed)
		// Drop pooled connections: the next round is days away, and a
		// kept-alive connection must not outlive the IP's tenancy.
		ftc.CloseIdle()
		if err := p.Store.EndRound(); err != nil {
			return err
		}
		if cfg.Progress != nil {
			cfg.Progress(i, day, int(stats.Responsive))
		}
	}
	return nil
}

// RunCartography performs the §5 one-time VPC/classic DNS sweep and
// joins the labels onto every stored record. Azure-like clouds have no
// VPC; the sweep still runs and labels everything classic.
func (p *Platform) RunCartography(ctx context.Context, cfg carto.Config) error {
	resolver := dnssim.NewResolver(p.Cloud, 0)
	if cfg.Clock == nil {
		cfg.Clock = ratelimit.NewFakeClock(time.Unix(1380499200, 0))
	}
	m, err := carto.Sweep(ctx, resolver, p.Cloud.Ranges(), p.Cloud.RegionOf, cfg)
	if err != nil {
		return err
	}
	p.CartoMap = m
	m.Apply(p.Store)
	return nil
}

// RunClustering executes the §5 clustering over the collected rounds
// and records the result on the platform.
func (p *Platform) RunClustering(cfg cluster.Config) error {
	if cfg.Seed == 0 {
		cfg.Seed = p.Cloud.Config().Seed
	}
	res, err := cluster.Run(p.Store, cfg)
	if err != nil {
		return err
	}
	p.Clusters = res
	return nil
}

// History is the headline "whowas" lookup: the per-round records of
// one IP across the campaign.
func (p *Platform) History(ip ipaddr.Addr) []*store.Record {
	return p.Store.History(ip)
}

// IsEC2Like reports whether the platform's cloud models EC2 (and thus
// has VPC networking and a meaningful cartography).
func (p *Platform) IsEC2Like() bool {
	return p.Cloud.Config().Kind == websim.EC2Like
}
