package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"whowas/internal/carto"
	"whowas/internal/cloudapi"
	"whowas/internal/cluster"
	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
)

// smallCampaign runs a reduced but complete campaign (1:512 EC2 cloud;
// the full 51-round schedule, or 30 daily rounds under the race
// detector), shared across the package's tests — the
// campaign is immutable apart from the clustering/cartography labels,
// which only the dedicated tests touch.
var (
	smallOnce sync.Once
	smallP    *Platform
	smallErr  error
	// smallSchedule records the round schedule the fixture actually
	// ran; assertions derive round counts and sample indices from it.
	smallSchedule []int
)

func smallCampaign(t testing.TB) *Platform {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	smallOnce.Do(func() {
		p, err := NewPlatform(cloudapi.DefaultEC2Config(512, 61))
		if err != nil {
			smallErr = err
			return
		}
		cfg := FastCampaign()
		if raceDetectorOn {
			// The race detector effectively serializes this
			// channel-heavy pipeline (~6 s per round vs ~1 s); cap
			// the fixture at 30 daily rounds so the package fits the
			// default 10-minute test timeout. Every fixture-backed
			// assertion is schedule-derived, a ratio, or an
			// existence check, so fewer rounds stay valid.
			cfg.RoundDays = DefaultRoundSchedule(30)
		}
		smallSchedule = cfg.RoundDays
		if smallSchedule == nil {
			smallSchedule = DefaultRoundSchedule(p.Cloud.Days())
		}
		if err := p.RunCampaign(context.Background(), cfg); err != nil {
			smallErr = err
			return
		}
		smallP = p
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallP
}

func TestDefaultRoundSchedule(t *testing.T) {
	// The paper collected 51 rounds over the 93-day EC2 campaign.
	ec2 := DefaultRoundSchedule(93)
	if len(ec2) != 51 {
		t.Errorf("EC2 schedule = %d rounds, want 51", len(ec2))
	}
	if ec2[0] != 0 || ec2[len(ec2)-1] != 92 {
		t.Errorf("schedule endpoints = %d..%d", ec2[0], ec2[len(ec2)-1])
	}
	for i := 1; i < len(ec2); i++ {
		if ec2[i] <= ec2[i-1] {
			t.Fatal("schedule not increasing")
		}
		gap := ec2[i] - ec2[i-1]
		if gap != 1 && gap != 3 {
			t.Errorf("round gap %d at index %d", gap, i)
		}
	}
	az := DefaultRoundSchedule(62)
	if len(az) < 40 || len(az) > 46 {
		t.Errorf("Azure schedule = %d rounds, want ~41-46", len(az))
	}
	short := DefaultRoundSchedule(5)
	if len(short) != 5 {
		t.Errorf("short schedule = %v", short)
	}
}

func TestCampaignEndToEnd(t *testing.T) {
	p := smallCampaign(t)
	rounds := p.Store.Rounds()
	if len(rounds) != len(smallSchedule) {
		t.Fatalf("rounds = %d, want %d", len(rounds), len(smallSchedule))
	}
	total := float64(p.Cloud.Ranges().Total())
	for _, r := range []int{0, len(rounds) / 2, len(rounds) - 1} {
		round := rounds[r]
		if round.Probed != int64(total) {
			t.Errorf("round %d probed %d, want %d", r, round.Probed, int64(total))
		}
		respFrac := float64(round.Len()) / total
		if respFrac < 0.19 || respFrac > 0.29 {
			t.Errorf("round %d responsive fraction %.3f, want ~0.237", r, respFrac)
		}
		// Available fraction of responsive ~ 0.65-0.75 (Table 7 ratio).
		avail := 0
		round.Each(func(rec *store.Record) bool {
			if rec.Available() {
				avail++
			}
			return true
		})
		af := float64(avail) / float64(round.Len())
		if af < 0.55 || af > 0.82 {
			t.Errorf("round %d available/responsive = %.3f, want ~0.68", r, af)
		}
	}
}

func TestCampaignRecordsMatchGroundTruth(t *testing.T) {
	p := smallCampaign(t)
	sim := cloudapi.Sim(p.Cloud)
	round := p.Store.Round(0)
	day := round.Day
	checked := 0
	round.Each(func(rec *store.Record) bool {
		st := sim.StateAt(day, rec.IP)
		if !st.Bound {
			t.Errorf("record for unbound IP %s", rec.IP)
			return true
		}
		if rec.HTTPStatus == 200 && checked < 200 {
			prof, _, ok := sim.PageOn(day, rec.IP)
			if !ok {
				t.Errorf("200 record for IP %s with no ground-truth page", rec.IP)
				return true
			}
			if rec.Server != prof.Server {
				t.Errorf("IP %s: server %q, ground truth %q", rec.IP, rec.Server, prof.Server)
			}
			if rec.Title != prof.Title && prof.ContentType == "text/html" && !prof.DefaultPage {
				t.Errorf("IP %s: title %q, ground truth %q", rec.IP, rec.Title, prof.Title)
			}
			checked++
		}
		return true
	})
	if checked == 0 {
		t.Fatal("no 200 records verified")
	}
}

func TestHistoryLookup(t *testing.T) {
	p := smallCampaign(t)
	// Pick an IP bound for the whole campaign: a giant service member.
	var target ipaddr.Addr
	sim := cloudapi.Sim(p.Cloud)
	for _, svc := range sim.Services() {
		if svc.SizeOn(0) > 10 && svc.EndDay == p.Cloud.Days() && svc.DailyChurn < 0.01 {
			ips := sim.AssignedIPs(0, svc.ID)
			if len(ips) > 0 {
				target = ips[0]
				break
			}
		}
	}
	if target == 0 {
		t.Skip("no stable giant found")
	}
	hist := p.History(target)
	if len(hist) < 10 {
		t.Errorf("history of stable IP has %d records", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Round <= hist[i-1].Round {
			t.Fatal("history out of order")
		}
	}
}

func TestCartographyAccuracy(t *testing.T) {
	p := smallCampaign(t)
	if err := p.RunCartography(context.Background(), carto.Config{Rate: 1e6}); err != nil {
		t.Fatal(err)
	}
	// Compare the measured map against ground truth per /22.
	var correct, wrong int
	seen := map[ipaddr.Addr]bool{}
	p.Cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		p22 := a.Prefix22().Addr
		if seen[p22] {
			return true
		}
		seen[p22] = true
		if p.CartoMap.IsVPC(a) == p.Cloud.IsVPC(a) {
			correct++
		} else {
			wrong++
		}
		return true
	})
	// Sampling can miss sparse VPC prefixes; demand >= 90% accuracy.
	if float64(correct)/float64(correct+wrong) < 0.9 {
		t.Errorf("cartography accuracy %d/%d", correct, correct+wrong)
	}
	// Labels must be joined onto records.
	labeled := 0
	p.Store.Round(0).Each(func(rec *store.Record) bool {
		if rec.VPC {
			labeled++
		}
		return true
	})
	if labeled == 0 {
		t.Error("no records labeled VPC after cartography")
	}
}

func TestClusteringAttachment(t *testing.T) {
	p := smallCampaign(t)
	if err := p.RunClustering(cluster.Config{Threshold: 3}); err != nil {
		t.Fatal(err)
	}
	res := p.Clusters
	if res.Final == 0 || res.TopLevel == 0 || res.SecondLevel < res.TopLevel {
		t.Fatalf("cluster counts: top=%d l2=%d final=%d", res.TopLevel, res.SecondLevel, res.Final)
	}
	// Most available records should land in a final cluster.
	var clustered, available int
	for _, round := range p.Store.Rounds() {
		round.Each(func(rec *store.Record) bool {
			if rec.Available() {
				available++
				if rec.Cluster != 0 {
					clustered++
				}
			}
			return true
		})
	}
	if frac := float64(clustered) / float64(available); frac < 0.5 {
		t.Errorf("only %.2f of available records clustered", frac)
	}
}

func TestCampaignCancellation(t *testing.T) {
	p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 62))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.RunCampaign(ctx, FastCampaign()); err == nil {
		t.Error("cancelled campaign returned nil")
	}
}

func TestCampaignHonorsBlacklist(t *testing.T) {
	p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 63))
	if err != nil {
		t.Fatal(err)
	}
	bl := ipaddr.NewSet()
	for i := int64(0); i < 20; i++ {
		a, _ := p.Cloud.Ranges().AtIndex(i)
		bl.Add(a)
	}
	cfg := FastCampaign()
	cfg.Blacklist = bl
	cfg.RoundDays = []int{0, 3}
	if err := p.RunCampaign(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		a, _ := p.Cloud.Ranges().AtIndex(i)
		if len(p.History(a)) != 0 {
			t.Errorf("blacklisted IP %s has records", a)
		}
	}
}

func TestObserverCallback(t *testing.T) {
	p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 64))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastCampaign()
	cfg.RoundDays = []int{0, 5, 10}
	var reports []RoundReport
	cfg.Observer = func(r RoundReport) { reports = append(reports, r) }
	if err := p.RunCampaign(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 || reports[0].Day != 0 || reports[2].Day != 10 {
		t.Fatalf("observer reports = %+v", reports)
	}
	total := int64(p.Cloud.Ranges().Total())
	for i, r := range reports {
		if r.Round != i {
			t.Errorf("report %d: round = %d", i, r.Round)
		}
		if r.Probed != total {
			t.Errorf("report %d: probed = %d, want %d", i, r.Probed, total)
		}
		if r.Responsive <= 0 || r.Responsive > r.Probed {
			t.Errorf("report %d: responsive = %d", i, r.Responsive)
		}
		if r.Probes < r.Probed {
			t.Errorf("report %d: probes %d < probed IPs %d", i, r.Probes, r.Probed)
		}
		if r.Fetched <= 0 || r.Fetched > r.Responsive {
			t.Errorf("report %d: fetched = %d of %d responsive", i, r.Fetched, r.Responsive)
		}
		if r.Records != int64(p.Store.Round(i).Len()) {
			t.Errorf("report %d: records = %d, store has %d", i, r.Records, p.Store.Round(i).Len())
		}
		if r.BodyBytes <= 0 {
			t.Errorf("report %d: no body bytes collected", i)
		}
		if r.Scan <= 0 || r.Total < r.Scan {
			t.Errorf("report %d: stage durations scan=%v total=%v", i, r.Scan, r.Total)
		}
	}
	// The same reports accumulate on the platform, observer or not.
	if len(p.Reports) != 3 || !reflect.DeepEqual(p.Reports[1], reports[1]) {
		t.Errorf("platform reports = %+v", p.Reports)
	}
}

func TestCampaignMetricsRegistry(t *testing.T) {
	p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 66))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastCampaign()
	cfg.RoundDays = []int{0, 3}
	if err := p.RunCampaign(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	snap := p.Metrics.Snapshot()
	if snap.Counters["scanner.probes"] <= 0 {
		t.Errorf("scanner.probes = %d", snap.Counters["scanner.probes"])
	}
	if got, want := snap.Counters["scanner.probed_ips"], 2*int64(p.Cloud.Ranges().Total()); got != want {
		t.Errorf("scanner.probed_ips = %d, want %d", got, want)
	}
	if snap.Counters["fetcher.gets"] <= 0 || snap.Counters["fetcher.body_bytes"] <= 0 {
		t.Errorf("fetcher counters = %v", snap.Counters)
	}
	if snap.Counters["store.records"] <= 0 || snap.Counters["store.rounds"] != 2 {
		t.Errorf("store counters = %v", snap.Counters)
	}
	hist := snap.Histograms["fetcher.fetch_latency"]
	if hist.Count <= 0 || hist.P95MS < hist.P50MS || hist.P99MS < hist.P95MS {
		t.Errorf("fetch latency snapshot = %+v", hist)
	}
	if probeLat := snap.Histograms["scanner.probe_latency"]; probeLat.Count != snap.Counters["scanner.probes"] {
		t.Errorf("probe latency count %d != probes %d", probeLat.Count, snap.Counters["scanner.probes"])
	}
	if snap.Stages["core.round"].Passes != 2 {
		t.Errorf("core.round stage = %+v", snap.Stages["core.round"])
	}

	// The full campaign report marshals and round-trips.
	var buf bytes.Buffer
	if err := p.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep CampaignReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(rep.Rounds) != 2 || rep.Rounds[0].Probed != int64(p.Cloud.Ranges().Total()) {
		t.Errorf("serialized rounds = %+v", rep.Rounds)
	}
	if rep.Metrics.Counters["scanner.probes"] != snap.Counters["scanner.probes"] {
		t.Error("serialized snapshot diverges from registry")
	}
}

func TestCampaignHonorsUserAgent(t *testing.T) {
	// A caller-set UA must survive RunCampaign (it used to be
	// overwritten); the resolved default applies only when empty.
	custom := "Example-Research-Bot/2.0 (contact: ops@example.org)"
	got := fetcher.Config{UserAgent: custom}.WithDefaults()
	if got.UserAgent != custom {
		t.Errorf("WithDefaults clobbered UA: %q", got.UserAgent)
	}
	if def := (fetcher.Config{}).WithDefaults(); def.UserAgent != fetcher.DefaultUserAgent {
		t.Errorf("empty UA resolved to %q", def.UserAgent)
	}
	p, err := NewPlatform(cloudapi.DefaultEC2Config(4096, 67))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastCampaign()
	cfg.RoundDays = []int{0}
	cfg.Fetcher.UserAgent = custom
	if err := p.RunCampaign(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Fetcher.UserAgent != custom {
		t.Errorf("campaign mutated caller UA to %q", cfg.Fetcher.UserAgent)
	}
}

func TestBadRoundDay(t *testing.T) {
	p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 65))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastCampaign()
	cfg.RoundDays = []int{0, 999}
	if err := p.RunCampaign(context.Background(), cfg); err == nil {
		t.Error("out-of-range round day accepted")
	}
}
