// The round pipeline: region-sharded scan → fetch → featurize lanes on
// the internal/pipeline stage-graph runtime. RunCampaign (platform.go)
// assembles a campaign once — scanner, fetcher, region split, worker
// budgets — and then runs one graph per round through it.
package core

import (
	"context"
	"fmt"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/features"
	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/pipeline"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// campaign is one RunCampaign invocation's assembled state: the
// resolved config, the shared scanner/fetcher, and the region-to-lane
// layout every round reuses.
type campaign struct {
	p   *Platform
	cfg CampaignConfig
	scn *scanner.Scanner
	ftc *fetcher.Fetcher

	// regions lists the cloud's regions in address-range order; lanes
	// holds each lane's region slots (round-robin assignment). One
	// scanner and one fetcher are shared by every lane — the scanner's
	// global rate limiter is the §7 probe budget and must stay
	// campaign-wide — while the worker pools are split per lane.
	regions      []laneRegion
	lanes        [][]int
	slots        map[string]int // region name -> slot
	scanWorkers  int            // per-lane scan pool
	fetchWorkers int            // per-lane fetch pool

	put func(*store.Record) error

	scanStage      *metrics.Stage
	drainStage     *metrics.Stage
	roundStage     *metrics.Stage
	degradedRounds *metrics.Counter
}

// laneRegion is one region's slice of the probed address space.
type laneRegion struct {
	name   string
	ranges *ipaddr.RangeList
}

// regionTally accumulates one region's fetch-side counts for a round.
// Each slot is written by exactly one lane's single-worker featurize
// sink, so no locking is needed; the round loop reads after Run.
type regionTally struct {
	fetched      int64
	robotsDenied int64
	fetchErrors  int64
	records      int64
	bodyBytes    int64
}

// newCampaign resolves the config against the platform and builds the
// shared components and the lane layout. cfg must already have its
// metrics/tracer/region hooks threaded (RunCampaign does).
func newCampaign(p *Platform, cfg CampaignConfig, dialer cloudapi.Dialer) (*campaign, error) {
	scn, err := scanner.New(dialer, cfg.Scanner)
	if err != nil {
		return nil, err
	}
	ftc, err := fetcher.New(dialer, cfg.Fetcher)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		p:              p,
		cfg:            cfg,
		scn:            scn,
		ftc:            ftc,
		put:            p.Store.Put,
		scanStage:      p.Metrics.Stage("core.scan"),
		drainStage:     p.Metrics.Stage("core.drain"),
		roundStage:     p.Metrics.Stage("core.round"),
		degradedRounds: p.Metrics.Counter("core.degraded_rounds"),
	}
	if p.putHook != nil {
		c.put = p.putHook
	}

	c.regions, err = splitRegions(p.Cloud.Ranges(), cfg.Scanner.RegionOf)
	if err != nil {
		return nil, fmt.Errorf("core: splitting regions: %w", err)
	}
	c.slots = make(map[string]int, len(c.regions))
	for i, r := range c.regions {
		c.slots[r.name] = i
	}

	shards := cfg.PipelineShards
	if shards <= 0 {
		shards = len(c.regions)
	}
	if shards > len(c.regions) {
		shards = len(c.regions)
	}
	if shards < 1 {
		shards = 1
	}
	c.lanes = make([][]int, shards)
	for i := range c.regions {
		c.lanes[i%shards] = append(c.lanes[i%shards], i)
	}

	// Split the configured pools across lanes instead of multiplying
	// them: N lanes with W total workers keep the same concurrency
	// budget as the unsharded round.
	scanCfg := cfg.Scanner.WithDefaults()
	fetchCfg := cfg.Fetcher.WithDefaults()
	c.scanWorkers = poolShare(scanCfg.Workers, len(c.lanes))
	c.fetchWorkers = poolShare(fetchCfg.Workers, len(c.lanes))

	p.Store.KeepBodies = cfg.KeepBodies
	p.Store.SetShards(len(c.lanes))
	return c, nil
}

func poolShare(workers, lanes int) int {
	if lanes < 1 {
		lanes = 1
	}
	w := workers / lanes
	if w < 1 {
		w = 1
	}
	return w
}

// splitRegions groups the probed ranges by region, preserving the
// address-range order both of regions and of each region's prefixes
// (cloudsim regions are /22-contiguous, so a prefix's first address
// labels the whole prefix).
func splitRegions(ranges *ipaddr.RangeList, regionOf func(ipaddr.Addr) string) ([]laneRegion, error) {
	var out []laneRegion
	idx := map[string]int{}
	var groups [][]ipaddr.Prefix
	for _, p := range ranges.Prefixes() {
		name := ""
		if regionOf != nil {
			name = regionOf(p.First())
		}
		i, ok := idx[name]
		if !ok {
			i = len(groups)
			idx[name] = i
			groups = append(groups, nil)
			out = append(out, laneRegion{name: name})
		}
		groups[i] = append(groups[i], p)
	}
	for i := range out {
		rl, err := ipaddr.NewRangeList(groups[i])
		if err != nil {
			return nil, err
		}
		out[i].ranges = rl
	}
	return out, nil
}

// slotOf maps an IP to its region slot (for the featurize tallies).
func (c *campaign) slotOf(ip ipaddr.Addr) int {
	if c.cfg.Scanner.RegionOf != nil {
		if s, ok := c.slots[c.cfg.Scanner.RegionOf(ip)]; ok {
			return s
		}
	}
	return 0
}

// laneLabel names a lane by its comma-joined regions (a span attr).
func (c *campaign) laneLabel(slots []int) string {
	label := ""
	for i, s := range slots {
		if i > 0 {
			label += ","
		}
		label += c.regions[s].name
	}
	return label
}

// scanSlots runs the given region slots through a scanner,
// sequentially, into a lane's results stream. Per-region stats land in
// their slots even when a later region never runs (the deadline case);
// completion flags drive the per-region Degraded report bits. Shared
// by the in-process round's lanes and the distributed ShardRunner.
func scanSlots(ctx context.Context, scn *scanner.Scanner, regions []laneRegion, blacklist *ipaddr.Set, workers int, slots []int, out chan<- scanner.Result, scan []scanner.Stats, done []bool) error {
	for _, slot := range slots {
		st, err := scn.ScanRangesInto(ctx, regions[slot].ranges, blacklist, out, workers)
		if st != nil {
			scan[slot] = *st
		}
		if err != nil {
			return err
		}
		done[slot] = true
	}
	// Mirror the pre-pipeline round's scan-span attributes at lane
	// granularity (the span rides the node context).
	if sp := trace.FromContext(ctx); sp != nil {
		var probed, responsive, retries int64
		for _, slot := range slots {
			probed += scan[slot].Probed
			responsive += scan[slot].Responsive
			retries += scan[slot].Retries
		}
		sp.SetAttr(
			trace.Int64("probed", probed),
			trace.Int64("responsive", responsive),
			trace.Int64("retries", retries),
		)
	}
	return nil
}

// scanLane runs one lane's regions through the shared scanner.
func (c *campaign) scanLane(ctx context.Context, slots []int, out chan<- scanner.Result, scan []scanner.Stats, done []bool) error {
	return scanSlots(ctx, c.scn, c.regions, c.cfg.Blacklist, c.scanWorkers, slots, out, scan, done)
}

// wireLane adds one scan → fetch → featurize lane to a graph: the scan
// source feeds a fetch stage pool, whose pages drain into a
// single-worker featurize sink. Both the in-process round and the
// distributed ShardRunner build their lanes through it, so the two
// execution modes stay structurally identical.
func wireLane(g *pipeline.Graph, ftc *fetcher.Fetcher, fetchWorkers int, laneAttr trace.Attr,
	scan func(context.Context, chan<- scanner.Result) error,
	sink func(context.Context, fetcher.Page) error) {
	results := pipeline.NewStream[scanner.Result](1024)
	pages := pipeline.NewStream[fetcher.Page](1024)
	pipeline.SourceChan(g, "scan", results, scan, laneAttr)
	pipeline.Stage(g, "fetch", fetchWorkers, results, pages,
		func(ctx context.Context, res scanner.Result, emit func(fetcher.Page) error) error {
			return emit(ftc.Exchange(ctx, res))
		}, laneAttr)
	pipeline.Sink(g, "featurize", 1, pages, sink, laneAttr)
}

// tallyPage folds one fetched page into its region tally and extracts
// its store record. The caller stores (or collects) the record and
// bumps t.records on success.
func tallyPage(page *fetcher.Page, t *regionTally) *store.Record {
	if page.Available() {
		t.fetched++
	}
	if page.RobotsDenied {
		t.robotsDenied++
	}
	if page.Err != nil {
		t.fetchErrors++
	}
	t.bodyBytes += int64(len(page.Body))
	return features.FromPage(page)
}

// featurize is the sink stage's per-page work: tally, extract
// features, store.
func (c *campaign) featurize(page *fetcher.Page, tallies []regionTally) error {
	t := &tallies[c.slotOf(page.IP)]
	rec := tallyPage(page, t)
	if err := c.put(rec); err != nil {
		return err
	}
	t.records++
	return nil
}

// runRound executes one round as a pipeline graph: one
// scan → fetch → featurize lane per shard, all writing through the
// sharded store, degrading gracefully on the round deadline.
func (c *campaign) runRound(ctx context.Context, roundIdx, day int) error {
	p := c.p
	roundStart := time.Now()
	if err := p.Cloud.SetDay(ctx, day); err != nil {
		return fmt.Errorf("core: round %d: %w", roundIdx, err)
	}
	if _, err := p.Store.BeginRound(day); err != nil {
		return err
	}
	rootSp := p.Tracer.Start("round", nil,
		trace.Int("round", roundIdx), trace.Int("day", day))

	// The round deadline, when configured, drives graceful
	// degradation: stages abort where they are and the round finalizes
	// with whatever was collected.
	roundCtx, cancelRound := ctx, context.CancelFunc(func() {})
	if c.cfg.RoundTimeout > 0 {
		roundCtx, cancelRound = context.WithTimeout(ctx, c.cfg.RoundTimeout)
	}
	defer cancelRound()
	// Drop pooled connections on every exit path — the next round is
	// days away, and a kept-alive connection must not outlive the IP's
	// tenancy. (The pre-pipeline loop missed its error paths here.)
	defer c.ftc.CloseIdle()

	g := pipeline.New(pipeline.Options{
		Metrics: p.Metrics,
		Tracer:  p.Tracer,
		Parent:  rootSp,
		Outer:   ctx,
	})
	scan := make([]scanner.Stats, len(c.regions))
	scanDone := make([]bool, len(c.regions))
	tallies := make([]regionTally, len(c.regions))
	for _, slots := range c.lanes {
		slots := slots
		wireLane(g, c.ftc, c.fetchWorkers, trace.String("regions", c.laneLabel(slots)),
			func(ctx context.Context, out chan<- scanner.Result) error {
				return c.scanLane(ctx, slots, out, scan, scanDone)
			},
			func(ctx context.Context, page fetcher.Page) error {
				return c.featurize(&page, tallies)
			})
	}

	res, runErr := g.Run(roundCtx)
	if runErr != nil {
		// A hard failure (campaign cancellation, a store error) must
		// not leave the store wedged on an open round: drop the
		// partial round so the completed ones stay digestable.
		_ = p.Store.AbortRound()
		rootSp.SetAttr(trace.String("error", "pipeline"))
		rootSp.End()
		return fmt.Errorf("core: round %d: %w", roundIdx, runErr)
	}
	degraded := res.Degraded
	if degraded {
		if err := p.Store.MarkDegraded(); err != nil {
			rootSp.End()
			return err
		}
		c.degradedRounds.Inc()
	}
	var probed int64
	for _, st := range scan {
		probed += st.Probed
	}
	p.Store.AddProbed(probed)
	if err := p.Store.EndRound(); err != nil {
		rootSp.End()
		return err
	}

	// Fetching overlaps scanning: Scan covers until the last lane's
	// scan finished, Drain the tail until the last page was stored.
	scanEnd := roundStart
	for _, st := range res.Stages {
		if st.Name == "scan" && st.End.After(scanEnd) {
			scanEnd = st.End
		}
	}
	scanDur := scanEnd.Sub(roundStart)
	drainDur := res.End.Sub(scanEnd)
	if drainDur < 0 {
		drainDur = 0
	}
	totalDur := time.Since(roundStart)
	c.scanStage.Add(scanDur)
	c.drainStage.Add(drainDur)
	c.roundStage.Add(totalDur)

	report := RoundReport{
		Round:    roundIdx,
		Day:      day,
		Degraded: degraded,
		Scan:     scanDur,
		Drain:    drainDur,
		Total:    totalDur,
	}
	for slot, rr := range c.regions {
		reg := RegionReport{
			Region:     rr.name,
			Probed:     scan[slot].Probed,
			Skipped:    scan[slot].Skipped,
			Responsive: scan[slot].Responsive,
			Fetched:    tallies[slot].fetched,
			Records:    tallies[slot].records,
			Degraded:   degraded && !scanDone[slot],
		}
		report.Regions = append(report.Regions, reg)
		report.Probed += reg.Probed
		report.Skipped += reg.Skipped
		report.Probes += scan[slot].Probes
		report.Retries += scan[slot].Retries
		report.Responsive += reg.Responsive
		report.Fetched += reg.Fetched
		report.RobotsDenied += tallies[slot].robotsDenied
		report.FetchErrors += tallies[slot].fetchErrors
		report.Records += reg.Records
		report.BodyBytes += tallies[slot].bodyBytes
	}
	rootSp.SetAttr(
		trace.Int64("records", report.Records),
		trace.Bool("degraded", degraded),
	)
	rootSp.End()
	p.appendReport(report)
	if c.cfg.Observer != nil {
		c.cfg.Observer(report)
	}
	return nil
}
