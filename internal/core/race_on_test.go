//go:build race

package core

// raceDetectorOn reports whether this test binary was built with
// -race. The detector effectively serializes the channel-heavy
// campaign pipeline, so the shared fixture runs a shorter round
// schedule to keep `go test -race ./internal/core` inside the
// default test timeout.
const raceDetectorOn = true
