package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"whowas/internal/store"
)

// quickConfig is a fast fault-free campaign over the two-region chaos
// cloud, the substrate for the pipeline tests below.
func quickConfig(days []int) CampaignConfig {
	cfg := chaosCampaignConfig(nil, 0)
	cfg.RoundDays = days
	return cfg
}

func runQuick(t *testing.T, cfg CampaignConfig) chaosOutcome {
	t.Helper()
	p, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := p.RunCampaign(ctx, cfg); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	digest, err := p.Store.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return chaosOutcome{digest: digest, reports: p.Reports, store: p.Store, p: p}
}

// TestPipelineShardDigestIdentity is the sharding correctness oracle:
// the same campaign run unsharded, with one lane per region, and with
// a clamped oversized shard count must produce byte-identical store
// digests and identical (timing-stripped) reports. Shard maps are
// merged and IP-sorted at round finalize, so the digest must not see
// the lane layout at all.
func TestPipelineShardDigestIdentity(t *testing.T) {
	days := []int{0, 2, 4}
	base := runQuick(t, quickConfig(days))
	baseR := deterministicReports(base.reports)
	for _, shards := range []int{0, 2, 7} {
		cfg := quickConfig(days)
		cfg.PipelineShards = shards
		got := runQuick(t, cfg)
		if got.digest != base.digest {
			t.Errorf("shards=%d digest %s, unsharded %s", shards, got.digest, base.digest)
		}
		gotR := deterministicReports(got.reports)
		if !reflect.DeepEqual(baseR, gotR) {
			t.Errorf("shards=%d reports diverged from unsharded run", shards)
		}
	}
	// The unsharded round still breaks the report down by region.
	for i, r := range base.reports {
		if len(r.Regions) != 2 {
			t.Fatalf("round %d: %d region reports, want 2", i, len(r.Regions))
		}
		var probed, records int64
		for _, reg := range r.Regions {
			if reg.Degraded {
				t.Errorf("round %d region %s degraded in a healthy campaign", i, reg.Region)
			}
			probed += reg.Probed
			records += reg.Records
		}
		if probed != r.Probed || records != r.Records {
			t.Errorf("round %d: region sums probed=%d records=%d, round %d/%d",
				i, probed, records, r.Probed, r.Records)
		}
	}
}

// TestRoundStorePutFailure is the goroutine-leak regression test: a
// failing store put must abort the round, propagate the error, and
// unwind every pipeline goroutine (the pre-pipeline collector returned
// without draining the page channel, leaving the fetcher and scanner
// pools blocked forever). The store must stay usable afterwards.
func TestRoundStorePutFailure(t *testing.T) {
	p, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("store full")
	var puts int64
	p.putHook = func(rec *store.Record) error {
		if atomic.AddInt64(&puts, 1) > 10 {
			return errBoom
		}
		return p.Store.Put(rec)
	}
	before := runtime.NumGoroutine()
	err = p.RunCampaign(context.Background(), quickConfig([]int{0}))
	if !errors.Is(err, errBoom) {
		t.Fatalf("campaign error = %v, want %v", err, errBoom)
	}
	// Every pipeline goroutine must unwind; give the unblocked pools a
	// moment to exit before comparing.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+3 {
		t.Errorf("%d goroutines after failed round, %d before: pipeline leaked", g, before)
	}
	// The failed round was aborted, not left open: no round landed,
	// the store digests, and a rerun on the same platform succeeds.
	if n := p.Store.NumRounds(); n != 0 {
		t.Errorf("store has %d rounds after aborted round, want 0", n)
	}
	if _, err := p.Store.Digest(); err != nil {
		t.Errorf("store digest after aborted round: %v", err)
	}
	p.putHook = nil
	if err := p.RunCampaign(context.Background(), quickConfig([]int{0})); err != nil {
		t.Fatalf("campaign after aborted round: %v", err)
	}
	if n := p.Store.NumRounds(); n != 1 {
		t.Errorf("store has %d rounds after recovery campaign, want 1", n)
	}
}

// TestCampaignCancelMidRound cancels the campaign context from inside
// round 1's featurize sink: the campaign must return the cancellation
// as a failure (not a degraded round), abort the in-flight round, and
// leave round 0 finalized and digestable.
func TestCampaignCancelMidRound(t *testing.T) {
	p, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var puts int64
	p.putHook = func(rec *store.Record) error {
		if p.Store.NumRounds() == 1 && atomic.AddInt64(&puts, 1) == 5 {
			cancel()
		}
		return p.Store.Put(rec)
	}
	err = p.RunCampaign(ctx, quickConfig([]int{0, 2}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error = %v, want context.Canceled", err)
	}
	if len(p.Reports) != 1 {
		t.Errorf("%d round reports, want only round 0's", len(p.Reports))
	}
	if n := p.Store.NumRounds(); n != 1 {
		t.Fatalf("store has %d rounds, want round 0 only", n)
	}
	if p.Store.Round(0).Len() == 0 {
		t.Error("round 0 lost its records")
	}
	if _, err := p.Store.Digest(); err != nil {
		t.Errorf("store digest after mid-round cancel: %v", err)
	}
}

// TestSplitRegions pins the lane layout: regions come out in
// address-range order, and shard counts clamp to [1, regions].
func TestSplitRegions(t *testing.T) {
	p, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	regions, err := splitRegions(p.Cloud.Ranges(), p.Cloud.RegionOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 || regions[0].name != "east" || regions[1].name != "south" {
		t.Fatalf("splitRegions = %+v, want [east south]", regions)
	}
	var total int64
	for _, r := range regions {
		total += int64(r.ranges.Total())
	}
	if total != int64(p.Cloud.Ranges().Total()) {
		t.Errorf("region ranges cover %d IPs, cloud has %d", total, p.Cloud.Ranges().Total())
	}
	for _, tc := range []struct{ shards, lanes int }{
		{0, 2}, {1, 1}, {2, 2}, {9, 2},
	} {
		cfg := quickConfig([]int{0})
		cfg.PipelineShards = tc.shards
		c, err := newCampaign(p, withPlatformDefaults(p, cfg), p.Cloud)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.lanes) != tc.lanes {
			t.Errorf("shards=%d: %d lanes, want %d", tc.shards, len(c.lanes), tc.lanes)
		}
	}
}
