// The distributed round's worker half: a ShardRunner executes the same
// scan → fetch → featurize lane as the in-process round (round.go) over
// an assigned subset of the cloud's regions, but collects the records
// instead of storing them — the coordinator owns the one store and
// merges shard submissions exactly as EndRound merges lanes, so store
// digests stay byte-identical for any worker count.
package core

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"

	"whowas/internal/cloudapi"
	"whowas/internal/fetcher"
	"whowas/internal/pipeline"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// shardSession distinguishes probe sessions across RunShard calls in
// one process; os.Getpid distinguishes them across worker processes.
var shardSession atomic.Int64

// RegionResult is one region's share of a shard run. It carries the
// scanner's counts and the fetch-side tallies the coordinator folds
// into the round's RegionReport.
type RegionResult struct {
	Region       string        `json:"region"`
	Stats        scanner.Stats `json:"stats"`
	Fetched      int64         `json:"fetched"`
	RobotsDenied int64         `json:"robots_denied"`
	FetchErrors  int64         `json:"fetch_errors"`
	Records      int64         `json:"records"`
	BodyBytes    int64         `json:"body_bytes"`
	// ScanDone reports whether the region's scan ran to completion; a
	// false value under a degraded shard marks the region partial.
	ScanDone bool `json:"scan_done"`
}

// ShardResult is everything one shard run produced: the per-region
// counts, the extracted records, and whether the shard degraded under
// its deadline.
type ShardResult struct {
	Regions  []RegionResult  `json:"regions"`
	Records  []*store.Record `json:"records"`
	Degraded bool            `json:"degraded"`
}

// ShardRunner executes assigned region shards against a cloud. It owns
// a scanner and fetcher configured exactly like a campaign's — the
// scanner's rate is the worker's leased slice of the global §7
// budget — but never touches a store or the cloud's day schedule; both
// belong to the coordinator.
type ShardRunner struct {
	cfg          CampaignConfig
	scn          *scanner.Scanner
	ftc          *fetcher.Fetcher
	regions      []laneRegion
	slots        map[string]int // region name -> slot
	scanWorkers  int
	fetchWorkers int
}

// NewShardRunner builds a runner over the cloud. The config is
// resolved the same way RunCampaign resolves it: region hooks default
// to the cloud's, and a fault scenario wraps the data plane through
// cloudapi.WithFaults so chaos campaigns reproduce identically over
// workers.
func NewShardRunner(cloud cloudapi.Cloud, cfg CampaignConfig) (*ShardRunner, error) {
	if cloud == nil {
		return nil, fmt.Errorf("core: nil cloud")
	}
	if cfg.Scanner.RegionOf == nil {
		cfg.Scanner.RegionOf = cloud.RegionOf
	}
	if cfg.Fetcher.RegionOf == nil {
		cfg.Fetcher.RegionOf = cloud.RegionOf
	}
	var dialer cloudapi.Dialer = cloud
	if cfg.Faults != nil {
		fc, err := cloudapi.WithFaults(cloud, *cfg.Faults, cfg.Scanner.Metrics)
		if err != nil {
			return nil, err
		}
		dialer = fc
	}
	scn, err := scanner.New(dialer, cfg.Scanner)
	if err != nil {
		return nil, err
	}
	ftc, err := fetcher.New(dialer, cfg.Fetcher)
	if err != nil {
		return nil, err
	}
	r := &ShardRunner{cfg: cfg, scn: scn, ftc: ftc}
	r.regions, err = splitRegions(cloud.Ranges(), cfg.Scanner.RegionOf)
	if err != nil {
		return nil, fmt.Errorf("core: splitting regions: %w", err)
	}
	r.slots = make(map[string]int, len(r.regions))
	for i, reg := range r.regions {
		r.slots[reg.name] = i
	}
	// A worker runs one lane at a time, so unlike the sharded
	// in-process round its pools are not divided.
	r.scanWorkers = cfg.Scanner.WithDefaults().Workers
	r.fetchWorkers = cfg.Fetcher.WithDefaults().Workers
	return r, nil
}

// RegionNames lists the cloud's regions in address-range order — the
// order the coordinator assigns shards in.
func (r *ShardRunner) RegionNames() []string {
	out := make([]string, len(r.regions))
	for i, reg := range r.regions {
		out[i] = reg.name
	}
	return out
}

// CloudRegionNames lists a cloud's regions in address-range order —
// the same split and order the round pipeline lanes use, so a
// coordinator's shard layout lines up with the in-process round's.
func CloudRegionNames(cloud cloudapi.Cloud) ([]string, error) {
	regs, err := splitRegions(cloud.Ranges(), cloud.RegionOf)
	if err != nil {
		return nil, fmt.Errorf("core: splitting regions: %w", err)
	}
	out := make([]string, len(regs))
	for i, reg := range regs {
		out[i] = reg.name
	}
	return out, nil
}

// CloseIdle drops the fetcher's pooled connections. RunShard calls it
// on every exit path; workers call it again at shutdown.
func (r *ShardRunner) CloseIdle() {
	r.ftc.CloseIdle()
}

// RunShard executes one shard — the named regions, in the given
// order — as a single scan → fetch → featurize lane and returns the
// counts and records. When the config carries a RoundTimeout the shard
// degrades gracefully at the deadline (partial records, Degraded set)
// instead of failing, mirroring the in-process round.
func (r *ShardRunner) RunShard(ctx context.Context, regions []string) (*ShardResult, error) {
	// Every run gets a fresh probe session so the simulated network's
	// transient-loss bookkeeping treats it as a first measurement. A
	// shard re-run after its original worker died mid-probe must not
	// inherit the victim's partial attempt counts — that would flip
	// lossy IPs responsive and break 1-vs-N digest identity.
	ctx = cloudapi.WithProbeSession(ctx,
		fmt.Sprintf("shard-%d-%d", os.Getpid(), shardSession.Add(1)))
	slots := make([]int, 0, len(regions))
	label := ""
	for i, name := range regions {
		slot, ok := r.slots[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown region %q", name)
		}
		slots = append(slots, slot)
		if i > 0 {
			label += ","
		}
		label += name
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("core: empty shard")
	}

	shardCtx, cancel := ctx, context.CancelFunc(func() {})
	if r.cfg.RoundTimeout > 0 {
		shardCtx, cancel = context.WithTimeout(ctx, r.cfg.RoundTimeout)
	}
	defer cancel()
	// As in runRound: pooled connections must not outlive the round —
	// the next assignment is a different day.
	defer r.ftc.CloseIdle()

	g := pipeline.New(pipeline.Options{
		Metrics: r.cfg.Scanner.Metrics,
		Tracer:  r.cfg.Scanner.Tracer,
		Outer:   ctx,
	})
	scan := make([]scanner.Stats, len(r.regions))
	done := make([]bool, len(r.regions))
	tallies := make([]regionTally, len(r.regions))
	var recs []*store.Record
	wireLane(g, r.ftc, r.fetchWorkers, trace.String("regions", label),
		func(ctx context.Context, out chan<- scanner.Result) error {
			return scanSlots(ctx, r.scn, r.regions, r.cfg.Blacklist, r.scanWorkers, slots, out, scan, done)
		},
		func(ctx context.Context, page fetcher.Page) error {
			slot := 0
			if r.cfg.Scanner.RegionOf != nil {
				if s, ok := r.slots[r.cfg.Scanner.RegionOf(page.IP)]; ok {
					slot = s
				}
			}
			t := &tallies[slot]
			rec := tallyPage(&page, t)
			if !r.cfg.KeepBodies {
				// The coordinator's EndRound would drop the body anyway;
				// shedding it here keeps it off the wire.
				rec.Body = ""
			}
			recs = append(recs, rec)
			t.records++
			return nil
		})

	res, runErr := g.Run(shardCtx)
	if runErr != nil {
		return nil, fmt.Errorf("core: shard %s: %w", label, runErr)
	}
	out := &ShardResult{Degraded: res.Degraded, Records: recs}
	for _, slot := range slots {
		out.Regions = append(out.Regions, RegionResult{
			Region:       r.regions[slot].name,
			Stats:        scan[slot],
			Fetched:      tallies[slot].fetched,
			RobotsDenied: tallies[slot].robotsDenied,
			FetchErrors:  tallies[slot].fetchErrors,
			Records:      tallies[slot].records,
			BodyBytes:    tallies[slot].bodyBytes,
			ScanDone:     done[slot],
		})
	}
	return out, nil
}
