package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"whowas/internal/faults"
	"whowas/internal/trace"
)

// The traced chaos tests close the observability loop: a faulty
// campaign's journal alone must attribute what happened — which rounds
// degraded, which stage the time went to, which spans were hit by
// injected faults — and, scheduling noise aside, the same scenario
// must journal the same span tree.

// runTracedChaosCampaign is runChaosCampaign plus a full-sampling
// tracer journaling to path.
func runTracedChaosCampaign(t *testing.T, sc *faults.Scenario, roundTimeout time.Duration, journalPath string) chaosOutcome {
	t.Helper()
	p, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	j, err := trace.CreateJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{SamplePerMille: 1000, Journal: j})
	p.Tracer = tr
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := p.RunCampaign(ctx, chaosCampaignConfig(sc, roundTimeout)); err != nil {
		t.Fatalf("traced chaos campaign: %v", err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("journal write error: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("closing tracer: %v", err)
	}
	digest, err := p.Store.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return chaosOutcome{digest: digest, reports: p.Reports, snap: p.Metrics.Snapshot(), store: p.Store, p: p}
}

// timingAttrs are span attributes whose values ride on real-time
// scheduling — a CPU-starved probe can spuriously time out and spend
// an extra attempt — mirroring the report fields deterministicReports
// strips. They are journaled faithfully but not replayed exactly.
var timingAttrs = map[string]bool{"probes": true, "retries": true, "error": true}

// canonicalSpans reduces a journal to a sorted multiset of
// timing-free span descriptions: round, parent name, span name, and
// the deterministic attributes. Two campaigns with the same seed must
// produce equal canonical forms.
func canonicalSpans(t *testing.T, spans []trace.SpanSnapshot) []string {
	t.Helper()
	byID := make(map[uint64]trace.SpanSnapshot, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	roundOf := func(s trace.SpanSnapshot) string {
		for s.Parent != 0 {
			p, ok := byID[s.Parent]
			if !ok {
				t.Fatalf("span %d orphaned: parent %d not in journal", s.ID, s.Parent)
			}
			s = p
		}
		return s.Attr("round")
	}
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		parent := ""
		if p, ok := byID[s.Parent]; ok {
			parent = p.Name
		}
		attrs := make([]string, 0, len(s.Attrs))
		for k, v := range s.Attrs {
			if !timingAttrs[k] {
				attrs = append(attrs, k+"="+v)
			}
		}
		sort.Strings(attrs)
		out = append(out, fmt.Sprintf("round=%s parent=%s name=%s %s",
			roundOf(s), parent, s.Name, strings.Join(attrs, ",")))
	}
	sort.Strings(out)
	return out
}

// TestTracedChaosSpanTreeDeterminism runs the stream-faults scenario
// twice with full sampling and demands the two journals describe the
// same span tree — same spans, same parentage, same fault
// annotations — modulo timestamps and scheduling-dependent attempt
// counts.
func TestTracedChaosSpanTreeDeterminism(t *testing.T) {
	chaosTest(t)
	sc := &faults.Scenario{
		Name:             "stream-faults",
		Seed:             13,
		ResetPerMille:    200,
		ResetAfterBytes:  64,
		StallPerMille:    80,
		StallMS:          250,
		TruncatePerMille: 150,
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.jsonl")
	pathB := filepath.Join(dir, "b.jsonl")
	a := runTracedChaosCampaign(t, sc, 0, pathA)
	b := runTracedChaosCampaign(t, sc, 0, pathB)
	if a.digest != b.digest {
		t.Fatalf("traced runs diverged before tracing is even at issue: %s vs %s", a.digest, b.digest)
	}

	spansA, err := trace.LoadJournal(pathA)
	if err != nil {
		t.Fatal(err)
	}
	spansB, err := trace.LoadJournal(pathB)
	if err != nil {
		t.Fatal(err)
	}
	canonA, canonB := canonicalSpans(t, spansA), canonicalSpans(t, spansB)
	if len(canonA) != len(canonB) {
		t.Fatalf("span counts differ: %d vs %d", len(canonA), len(canonB))
	}
	diffs := 0
	for i := range canonA {
		if canonA[i] != canonB[i] {
			if diffs < 5 {
				t.Errorf("span tree diverged:\n first %s\nsecond %s", canonA[i], canonB[i])
			}
			diffs++
		}
	}
	if diffs > 0 {
		t.Errorf("%d of %d canonical spans diverged", diffs, len(canonA))
	}

	// The stream faults left their marks: some get spans carry
	// fault.reset / fault.stall / fault.truncate annotations.
	marks := map[string]int{}
	for _, s := range spansA {
		for k := range s.Attrs {
			if strings.HasPrefix(k, "fault.") {
				marks[k]++
			}
		}
	}
	for _, k := range []string{"fault.reset", "fault.stall", "fault.truncate"} {
		if marks[k] == 0 {
			t.Errorf("no spans annotated with %s; marks: %v", k, marks)
		}
	}
}

// TestTracedBlackoutJournalAttribution is the flight-recorder
// acceptance test: given nothing but the journal of a blackout
// campaign, reconstruct which rounds degraded, where each round's
// time went, and which probes the blackout swallowed.
func TestTracedBlackoutJournalAttribution(t *testing.T) {
	chaosTest(t)
	sc := &faults.Scenario{
		Name:             "south-blackout",
		Seed:             11,
		DialLossPerMille: 200,
		Episodes:         []faults.Episode{faults.Blackout("south", 6, 8, true)},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "blackout.jsonl")
	got := runTracedChaosCampaign(t, sc, chaosRoundTimeout, path)

	// From here on, only the journal.
	spans, err := trace.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rounds := trace.BreakdownRounds(spans)
	if len(rounds) != len(chaosDays) {
		t.Fatalf("journal reconstructs %d rounds, want %d", len(rounds), len(chaosDays))
	}
	blackout := map[int]bool{6: true, 8: true}
	for i, rb := range rounds {
		if rb.Round != i || rb.Day != chaosDays[i] {
			t.Errorf("breakdown %d: round %d day %d, want %d/%d", i, rb.Round, rb.Day, i, chaosDays[i])
		}
		if want := blackout[rb.Day]; rb.Degraded != want {
			t.Errorf("day %d: journal says degraded=%v, want %v", rb.Day, rb.Degraded, want)
		}
		for _, stage := range []string{"scan", "fetch", "featurize", "store.finalize"} {
			if rb.Stages[stage] <= 0 {
				t.Errorf("day %d: stage %q missing from journal breakdown (stages %v)", rb.Day, stage, rb.Stages)
			}
		}
		// Stage durations accumulate across the pipeline's per-region
		// lanes (the chaos cloud has two), so concurrent scan spans may
		// sum past the round's wall time — but not past lanes × total.
		if rb.Total <= 0 || rb.Stages["scan"] > 2*rb.Total {
			t.Errorf("day %d: scan %v exceeds %v across 2 lanes", rb.Day, rb.Stages["scan"], 2*rb.Total)
		}
		// The blackout's swallowed probes are attributable: held dials
		// annotate their probe spans, which appear exactly in the
		// degraded rounds and only against the blacked-out region.
		// Slowest holds every non-stage span of the round, so scanning
		// it sees each probe and get span once.
		var blackoutSpans int
		for _, s := range rb.Slowest {
			if s.Attr("fault.blackout") != "true" {
				continue
			}
			blackoutSpans++
			if region := s.Attr("region"); region != "south" {
				t.Errorf("day %d: fault.blackout span %d in region %q, want south", rb.Day, s.ID, region)
			}
		}
		if blackout[rb.Day] && blackoutSpans == 0 {
			t.Errorf("day %d degraded but journal holds no fault.blackout spans", rb.Day)
		}
		if !blackout[rb.Day] && blackoutSpans > 0 {
			t.Errorf("day %d healthy but journal holds %d fault.blackout spans", rb.Day, blackoutSpans)
		}
		// Steady 20% dial loss runs the whole campaign; every round's
		// journal should show the injector at work.
		if rb.FaultInjected == 0 {
			t.Errorf("day %d: no fault-injected spans despite 20%% dial loss", rb.Day)
		}
		if len(rb.Slowest) == 0 {
			t.Errorf("day %d: no slowest-span candidates", rb.Day)
		}
	}

	// The journal agrees with the run's own reports.
	for i, r := range got.reports {
		if rounds[i].Degraded != r.Degraded {
			t.Errorf("round %d: journal degraded=%v, report %v", i, rounds[i].Degraded, r.Degraded)
		}
	}
}
