//go:build !race

package core

// raceDetectorOn is false without -race; see race_on_test.go.
const raceDetectorOn = false
