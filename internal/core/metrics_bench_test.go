package core

import (
	"context"
	"testing"

	"whowas/internal/cloudsim"
)

// benchmarkRunCampaign measures a three-round campaign over a small
// EC2-like cloud. The instrumented/baseline pair quantifies the
// metrics subsystem's overhead; the acceptance bar is instrumented
// within 5% of baseline:
//
//	go test ./internal/core -bench 'RunCampaign' -benchtime 5x
func benchmarkRunCampaign(b *testing.B, instrumented bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := NewPlatform(cloudsim.DefaultEC2Config(2048, 99))
		if err != nil {
			b.Fatal(err)
		}
		if !instrumented {
			p.DisableMetrics()
		}
		cfg := FastCampaign()
		cfg.RoundDays = []int{0, 3, 6}
		b.StartTimer()
		if err := p.RunCampaign(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCampaignInstrumented(b *testing.B) { benchmarkRunCampaign(b, true) }
func BenchmarkRunCampaignBaseline(b *testing.B)     { benchmarkRunCampaign(b, false) }
