package core

import (
	"context"
	"testing"

	"whowas/internal/cloudapi"
	"whowas/internal/trace"
)

// benchmarkRunCampaign measures a three-round campaign over a small
// EC2-like cloud. The instrumented/baseline pair quantifies the
// metrics subsystem's overhead (acceptance bar: within 5% of
// baseline); the instrumented run also doubles as the nil-tracer
// measurement — tracing is off unless a Tracer is installed, and the
// nil-tracer path must stay within ~2% of it. The traced run measures
// the full-sampling cost for reference:
//
//	go test ./internal/core -bench 'RunCampaign' -benchtime 5x
func benchmarkRunCampaign(b *testing.B, instrumented, traced bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 99))
		if err != nil {
			b.Fatal(err)
		}
		if !instrumented {
			p.DisableMetrics()
		}
		if traced {
			p.Tracer = trace.New(trace.Config{SamplePerMille: 1000})
		}
		cfg := FastCampaign()
		cfg.RoundDays = []int{0, 3, 6}
		b.StartTimer()
		if err := p.RunCampaign(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCampaignInstrumented(b *testing.B) { benchmarkRunCampaign(b, true, false) }
func BenchmarkRunCampaignBaseline(b *testing.B)     { benchmarkRunCampaign(b, false, false) }
func BenchmarkRunCampaignTraced(b *testing.B)       { benchmarkRunCampaign(b, true, true) }
