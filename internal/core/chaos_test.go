package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/faults"
	"whowas/internal/fetcher"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/scanner"
	"whowas/internal/store"
	"whowas/internal/websim"
)

// The chaos suite replays whole campaigns through the fault-injection
// layer and asserts exact outcomes. Everything here leans on two
// properties established elsewhere: netsim answers probes in virtual
// time (an unbound dial fails instantly), and every faults decision is
// a pure function of (seed, ip, port, day, attempt). Together they make
// a faulty campaign reproducible byte for byte, which is what lets the
// tests demand identical store digests instead of loose statistics.

// chaosDays is the round schedule every chaos campaign runs.
var chaosDays = []int{0, 2, 4, 6, 8, 10}

// chaosCloudSeed fixes the substrate; scenario seeds vary per test.
const chaosCloudSeed = 91

// chaosScanTimeout and chaosRoundTimeout are tuned together for the
// blackout test: a held dial burns one scanner timeout per attempt, so
// a blacked-out IP needs 3 ports x 3 attempts x 2s = 18s of wall time —
// past the 15s round deadline even if it started the instant the round
// did. No blacked-out IP ever finishes its scan, which keeps the
// degraded rounds' probed counts (and thus the store digest)
// deterministic. A healthy round is all virtual time and finishes with
// seconds to spare even under the race detector on one CPU — the round
// deadline must clear the round's whole wall time, since the pipeline
// reports a deadline observed anywhere (scan, fetch or featurize) as
// degradation. The probe timeout is also deliberately large relative
// to scheduler latency: with ~64 runnable goroutines sharing one CPU a
// goroutine can wait hundreds of milliseconds for its slice, and a
// probe deadline in that range would expire spuriously.
const (
	chaosScanTimeout  = 2 * time.Second
	chaosRoundTimeout = 15 * time.Second
)

// chaosCloudConfig is a deliberately tiny two-region EC2-like cloud:
// "east" (2048 IPs) feeds the scanner first, "south" (1024 IPs) last,
// so a south blackout hits the tail of each round. Population mix
// follows DefaultEC2Config minus the giants, which don't fit 3K IPs.
func chaosCloudConfig() cloudapi.SimConfig {
	return cloudapi.SimConfig{
		Name:      "chaos-ec2",
		Kind:      websim.EC2Like,
		Days:      12,
		Seed:      chaosCloudSeed,
		BaseOctet: 54,
		Regions: []cloudapi.RegionConfig{
			{Name: "east", Prefixes22: 2, VPC22: 1},
			{Name: "south", Prefixes22: 1, VPC22: 0},
		},
		Population: cloudapi.PopulationConfig{
			TargetResponsive:     0.237,
			Growth:               0.033,
			SSHOnly:              0.259,
			HTTPOnly:             0.380,
			HTTPSOnly:            0.055,
			HTTPBoth:             0.306,
			HTTPFailRate:         0.006,
			DailyBackgroundChurn: 0.05,
			SingletonFrac:        0.788,
			SmallFrac:            0.208,
			MediumFrac:           0.0028,
			EphemeralFrac:        0.114,
			WebClusters:          250,
			VPCClusterShare:      0.27,
			RegisteredDNSShare:   0.55,
		},
	}
}

// chaosCampaignConfig is the resilient pipeline configuration under
// test: 3 scan attempts with near-zero backoff (timeouts are virtual),
// 3 fetch attempts with per-attempt deadlines, and keep-alives off so
// every GET maps to exactly one dial (see fetcher.Config).
func chaosCampaignConfig(sc *faults.Scenario, roundTimeout time.Duration) CampaignConfig {
	return CampaignConfig{
		RoundDays: chaosDays,
		Scanner: scanner.Config{
			Rate:         scanner.UnlimitedRate,
			Workers:      32,
			Timeout:      chaosScanTimeout,
			Attempts:     3,
			RetryBackoff: time.Microsecond,
		},
		Fetcher: fetcher.Config{
			Workers: 32,
			// Generous on purpose: the network is virtual, so a healthy
			// GET never nears this. A tight per-attempt deadline would
			// couple fetch outcomes to real scheduling latency (64
			// workers sharing one CPU) and break byte-identical replays;
			// the deadline-bounds-stalls behavior is unit-tested in the
			// fetcher package instead.
			Timeout:           30 * time.Second,
			Attempts:          3,
			RetryBackoff:      time.Microsecond,
			DisableKeepAlives: true,
		},
		Faults:       sc,
		RoundTimeout: roundTimeout,
	}
}

// chaosOutcome is everything a campaign run exposes for comparison.
type chaosOutcome struct {
	digest  string
	reports []RoundReport
	snap    metrics.Snapshot
	store   *store.Store
	p       *Platform
}

// runChaosCampaign executes one full campaign under the scenario. The
// outer 2-minute context is the anti-wedge guard: a campaign that
// hangs on an injected fault fails here instead of timing out the
// whole test binary.
func runChaosCampaign(t *testing.T, sc *faults.Scenario, roundTimeout time.Duration) chaosOutcome {
	t.Helper()
	p, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Every chaos campaign runs with an Observer wired up: degraded
	// rounds must reach the callback with the same report (regions and
	// all) that lands on p.Reports.
	var observed []RoundReport
	cfg := chaosCampaignConfig(sc, roundTimeout)
	cfg.Observer = func(r RoundReport) { observed = append(observed, r) }
	if err := p.RunCampaign(ctx, cfg); err != nil {
		t.Fatalf("chaos campaign: %v", err)
	}
	if len(p.Reports) != len(chaosDays) {
		t.Fatalf("completed %d rounds, want %d", len(p.Reports), len(chaosDays))
	}
	if !reflect.DeepEqual(observed, p.Reports) {
		t.Fatalf("observer saw %d reports diverging from the platform's %d", len(observed), len(p.Reports))
	}
	digest, err := p.Store.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return chaosOutcome{digest: digest, reports: p.Reports, snap: p.Metrics.Snapshot(), store: p.Store, p: p}
}

// deterministicReports strips the timing-dependent report fields:
// stage durations, and the probe/retry totals. Probe deadlines are
// real time, so a CPU-starved probe can spuriously time out and spend
// an extra attempt (and on a degraded round, how many doomed probes
// even started is a scheduling race) — the counts are reported
// faithfully, not replayed exactly. Every remaining field, and the
// store digest, must replay byte for byte.
func deterministicReports(rs []RoundReport) []RoundReport {
	out := append([]RoundReport(nil), rs...)
	for i := range out {
		out[i].Scan, out[i].Drain, out[i].Total = 0, 0, 0
		out[i].Probes, out[i].Retries = 0, 0
	}
	return out
}

// chaosDigests remembers each scenario's store digest across test
// repetitions in one binary: go test -count=5 reruns must reproduce
// the digest of the first run or the determinism claim is broken.
var (
	chaosDigestsMu sync.Mutex
	chaosDigests   = map[string]string{}
)

func assertStableAcrossRuns(t *testing.T, key, digest string) {
	t.Helper()
	chaosDigestsMu.Lock()
	defer chaosDigestsMu.Unlock()
	if prev, ok := chaosDigests[key]; ok {
		if prev != digest {
			t.Errorf("scenario %q digest changed across runs: %s then %s", key, prev, digest)
		}
		return
	}
	chaosDigests[key] = digest
}

// chaosBaseline runs the fault-free campaign once per binary; the
// scenario tests compare against it.
var (
	chaosBaselineOnce sync.Once
	chaosBaseline     chaosOutcome
	chaosBaselineErr  error
)

func baselineCampaign(t *testing.T) chaosOutcome {
	t.Helper()
	chaosBaselineOnce.Do(func() {
		p, err := NewPlatform(chaosCloudConfig())
		if err != nil {
			chaosBaselineErr = err
			return
		}
		if err := p.RunCampaign(context.Background(), chaosCampaignConfig(nil, 0)); err != nil {
			chaosBaselineErr = err
			return
		}
		digest, err := p.Store.Digest()
		if err != nil {
			chaosBaselineErr = err
			return
		}
		chaosBaseline = chaosOutcome{digest: digest, reports: p.Reports, snap: p.Metrics.Snapshot(), store: p.Store, p: p}
	})
	if chaosBaselineErr != nil {
		t.Fatal(chaosBaselineErr)
	}
	return chaosBaseline
}

func chaosTest(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode")
	}
}

// TestChaosLossRampCampaign drives the full pipeline through steady
// dial loss climbing to 50% (150 steady + a 0->350 per-mille ramp),
// staggered host flapping, and a mid-campaign slow-network episode.
// The retrying scanner must keep every round productive, and the whole
// campaign must replay byte-identically.
func TestChaosLossRampCampaign(t *testing.T) {
	chaosTest(t)
	base := baselineCampaign(t)
	sc := &faults.Scenario{
		Name:             "loss-ramp",
		Seed:             7,
		DialLossPerMille: 150,
		FlapPerMille:     100,
		FlapPeriodDays:   4,
		FlapDownDays:     2,
		Episodes: []faults.Episode{
			faults.LossRamp(0, 10, 0, 350),
			faults.SlowNetwork(4, 6, 5),
		},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runChaosCampaign(t, sc, 0)

	var totalRetries int64
	for i, r := range got.reports {
		if r.Degraded {
			t.Errorf("round %d degraded with no round deadline", i)
		}
		if r.Responsive <= 0 || r.Records <= 0 {
			t.Errorf("round %d starved: responsive=%d records=%d", i, r.Responsive, r.Records)
		}
		// Retries recover most of the injected loss: with 3 attempts
		// even the worst round (50% loss) misses an open port only
		// 12.5% of the time, plus ~5% of hosts in a flap window.
		if base := base.reports[i].Responsive; r.Responsive < base*3/4 || r.Responsive > base {
			t.Errorf("round %d responsive %d vs fault-free %d", i, r.Responsive, base)
		}
		totalRetries += r.Retries
	}
	if totalRetries == 0 {
		t.Error("no scan retries under 15-50% dial loss")
	}
	c := got.snap.Counters
	if c["scanner.retries"] != totalRetries {
		t.Errorf("scanner.retries = %d, reports sum %d", c["scanner.retries"], totalRetries)
	}
	for _, name := range []string{"faults.dials_dropped", "faults.flap_drops", "faults.dials_delayed", "fetcher.retries"} {
		if c[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, c[name])
		}
	}
	if got.digest == base.digest {
		t.Error("faulty campaign produced the fault-free store")
	}

	// Same seed, same schedule: byte-identical store and reports.
	again := runChaosCampaign(t, sc, 0)
	if again.digest != got.digest {
		t.Errorf("same scenario, different digests: %s vs %s", got.digest, again.digest)
	}
	wantR, gotR := deterministicReports(got.reports), deterministicReports(again.reports)
	for i := range wantR {
		if !reflect.DeepEqual(wantR[i], gotR[i]) {
			t.Errorf("round %d report diverged:\n first %+v\nsecond %+v", i, wantR[i], gotR[i])
		}
	}
	assertStableAcrossRuns(t, "loss-ramp", got.digest)

	// A different fault seed must not reproduce the same campaign.
	reseeded := *sc
	reseeded.Seed = 8
	other := runChaosCampaign(t, &reseeded, 0)
	if other.digest == got.digest {
		t.Error("different fault seeds produced identical stores")
	}
}

// TestChaosBlackoutDegradesRounds is the acceptance scenario: 20% dial
// loss everywhere plus a hold-mode blackout of the south region on
// days 6-8. The two covered rounds must finalize degraded with only
// east records — never wedge — and the whole campaign must replay
// byte-identically.
func TestChaosBlackoutDegradesRounds(t *testing.T) {
	chaosTest(t)
	sc := &faults.Scenario{
		Name:             "south-blackout",
		Seed:             11,
		DialLossPerMille: 200,
		Episodes:         []faults.Episode{faults.Blackout("south", 6, 8, true)},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	// The design requires south to feed last; verify against the cloud
	// rather than assuming.
	p0, err := NewPlatform(chaosCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	ranges := p0.Cloud.Ranges()
	total := int64(ranges.Total())
	first, _ := ranges.AtIndex(0)
	last, _ := ranges.AtIndex(total - 1)
	if p0.Cloud.RegionOf(first) != "east" || p0.Cloud.RegionOf(last) != "south" {
		t.Fatalf("region feed order broken: first in %q, last in %q",
			p0.Cloud.RegionOf(first), p0.Cloud.RegionOf(last))
	}
	var eastIPs int64
	ranges.Each(func(a ipaddr.Addr) bool {
		if p0.Cloud.RegionOf(a) == "east" {
			eastIPs++
		}
		return true
	})

	start := time.Now()
	got := runChaosCampaign(t, sc, chaosRoundTimeout)
	elapsed := time.Since(start)

	blackout := map[int]bool{6: true, 8: true}
	var degradedRounds int64
	for i, r := range got.reports {
		if want := blackout[r.Day]; r.Degraded != want {
			t.Errorf("round %d (day %d): degraded = %v, want %v", i, r.Day, r.Degraded, want)
		}
		round := got.store.Round(i)
		if round.Degraded != r.Degraded {
			t.Errorf("round %d: store degraded %v, report %v", i, round.Degraded, r.Degraded)
		}
		if !r.Degraded {
			if r.Probed != total {
				t.Errorf("healthy round %d probed %d of %d", i, r.Probed, total)
			}
			continue
		}
		degradedRounds++
		// A held dial outlives the round deadline, so no south IP ever
		// completes its scan: the degraded rounds' probed counts and
		// records cover exactly the east region.
		if r.Probed != eastIPs {
			t.Errorf("degraded round %d probed %d, want east's %d", i, r.Probed, eastIPs)
		}
		if r.Records <= 0 {
			t.Errorf("degraded round %d kept no partial records", i)
		}
		// The per-region breakdown pins the blame: east completed and
		// kept its records, south never finished its scan.
		regions := map[string]RegionReport{}
		for _, reg := range r.Regions {
			regions[reg.Region] = reg
		}
		if east := regions["east"]; east.Degraded || east.Records <= 0 || east.Probed != eastIPs {
			t.Errorf("degraded round %d east region = %+v, want completed with records", i, east)
		}
		if south := regions["south"]; !south.Degraded || south.Records != 0 {
			t.Errorf("degraded round %d south region = %+v, want degraded with no records", i, south)
		}
		round.Each(func(rec *store.Record) bool {
			if p0.Cloud.RegionOf(rec.IP) == "south" {
				t.Errorf("degraded round %d stored blacked-out IP %s", i, rec.IP)
				return false
			}
			return true
		})
	}
	c := got.snap.Counters
	if c["core.degraded_rounds"] != degradedRounds || degradedRounds != 2 {
		t.Errorf("core.degraded_rounds = %d, degraded reports = %d, want 2", c["core.degraded_rounds"], degradedRounds)
	}
	for _, name := range []string{"faults.blackout_drops", "faults.dials_dropped", "scanner.retries"} {
		if c[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, c[name])
		}
	}
	// Zero wedged rounds: the campaign's wall clock is bounded by the
	// two deadline-limited rounds plus fast healthy rounds.
	if budget := 4*chaosRoundTimeout + time.Minute; elapsed > budget {
		t.Errorf("blackout campaign took %v, budget %v", elapsed, budget)
	}

	again := runChaosCampaign(t, sc, chaosRoundTimeout)
	if again.digest != got.digest {
		t.Errorf("same scenario, different digests: %s vs %s", got.digest, again.digest)
	}
	wantR, gotR := deterministicReports(got.reports), deterministicReports(again.reports)
	for i := range wantR {
		if !reflect.DeepEqual(wantR[i], gotR[i]) {
			t.Errorf("round %d report diverged:\n first %+v\nsecond %+v", i, wantR[i], gotR[i])
		}
	}
	assertStableAcrossRuns(t, "south-blackout", got.digest)
}

// TestChaosStreamFaultsCampaign injects only connection-stream faults:
// mid-stream resets, stalled first reads and truncated bodies. Probing
// never reads, so responsiveness must match the fault-free campaign
// exactly; the fetcher must retry through the damage without wedging.
func TestChaosStreamFaultsCampaign(t *testing.T) {
	chaosTest(t)
	base := baselineCampaign(t)
	sc := &faults.Scenario{
		Name:             "stream-faults",
		Seed:             13,
		ResetPerMille:    200,
		ResetAfterBytes:  64,
		StallPerMille:    80,
		StallMS:          250, // the stall timer expires and the read proceeds; outcome unchanged, just late
		TruncatePerMille: 150,
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runChaosCampaign(t, sc, 0)

	for i, r := range got.reports {
		if r.Degraded {
			t.Errorf("round %d degraded with no round deadline", i)
		}
		if r.Responsive != base.reports[i].Responsive {
			t.Errorf("round %d responsive %d, fault-free %d — stream faults must not affect probing",
				i, r.Responsive, base.reports[i].Responsive)
		}
		if r.Fetched <= 0 || r.Records <= 0 {
			t.Errorf("round %d starved: fetched=%d records=%d", i, r.Fetched, r.Records)
		}
	}
	c := got.snap.Counters
	for _, name := range []string{"faults.resets", "faults.stalls", "faults.truncations", "fetcher.retries"} {
		if c[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, c[name])
		}
	}
	// No dial faults were injected, so nothing was dropped or delayed.
	for _, name := range []string{"faults.dials_dropped", "faults.blackout_drops", "faults.flap_drops", "faults.dials_delayed"} {
		if c[name] != 0 {
			t.Errorf("%s = %d, want 0", name, c[name])
		}
	}

	again := runChaosCampaign(t, sc, 0)
	if again.digest != got.digest {
		t.Errorf("same scenario, different digests: %s vs %s", got.digest, again.digest)
	}
	assertStableAcrossRuns(t, "stream-faults", got.digest)
}

// TestChaosBaselineDeterminism anchors the comparisons above: the
// fault-free campaign itself replays byte-identically, so any digest
// drift in the chaos tests is attributable to the fault layer.
func TestChaosBaselineDeterminism(t *testing.T) {
	chaosTest(t)
	base := baselineCampaign(t)
	again := runChaosCampaign(t, nil, 0)
	if again.digest != base.digest {
		t.Errorf("fault-free campaign not deterministic: %s vs %s", base.digest, again.digest)
	}
	assertStableAcrossRuns(t, "baseline", base.digest)
}
