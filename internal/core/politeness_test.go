package core

import (
	"context"
	"testing"

	"whowas/internal/cloudapi"
	"whowas/internal/ipaddr"
)

// TestPolitenessInvariants asserts the §7 ethics properties over a
// whole measurement round: at most 4 TCP connections per IP per day
// (the scanner's <=3 probes, plus the fetcher's robots.txt and page
// GETs sharing a connection unless the first dies), at most 2 HTTP
// requests per IP per day, and no contact with blacklisted IPs.
func TestPolitenessInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	p, err := NewPlatform(cloudapi.DefaultEC2Config(2048, 71))
	if err != nil {
		t.Fatal(err)
	}
	inp := p.Cloud.(*cloudapi.InProcess)
	inp.RecordProbes(true)

	bl := ipaddr.NewSet()
	for i := int64(100); i < 110; i++ {
		a, _ := p.Cloud.Ranges().AtIndex(i)
		bl.Add(a)
	}
	cfg := FastCampaign()
	cfg.RoundDays = []int{0, 3}
	cfg.Blacklist = bl
	if err := p.RunCampaign(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	var probeViolations, requestViolations int
	for _, day := range cfg.RoundDays {
		p.Cloud.Ranges().Each(func(a ipaddr.Addr) bool {
			if n := inp.ProbeCount(day, a); n > 4 {
				probeViolations++
			}
			if n := inp.RequestCount(day, a); n > 2 {
				requestViolations++
			}
			if bl.Contains(a) && (inp.ProbeCount(day, a) > 0 || inp.RequestCount(day, a) > 0) {
				t.Errorf("blacklisted IP %s was contacted on day %d", a, day)
			}
			return true
		})
	}
	if probeViolations > 0 {
		t.Errorf("%d IP-days exceeded 4 connections", probeViolations)
	}
	if requestViolations > 0 {
		t.Errorf("%d IP-days exceeded 2 HTTP requests", requestViolations)
	}
}
