package core

import "testing"

// TestDefaultRoundScheduleEdgeCases pins the §6 schedule's behaviour
// at the boundaries: campaigns of 30 days or fewer are entirely inside
// the final daily month, zero-day campaigns have no rounds, and the
// paper's 93-day EC2 campaign yields exactly its 51 rounds.
func TestDefaultRoundScheduleEdgeCases(t *testing.T) {
	t.Run("paper 93 days is 51 rounds", func(t *testing.T) {
		got := DefaultRoundSchedule(93)
		if len(got) != 51 {
			t.Fatalf("93-day schedule = %d rounds, want the paper's 51", len(got))
		}
		// 63 days of every-3-days (21 rounds) then 30 daily rounds.
		if got[20] != 60 || got[21] != 63 || got[22] != 64 {
			t.Errorf("phase boundary = ...%d, %d, %d...", got[20], got[21], got[22])
		}
	})

	t.Run("under 30 days is all daily", func(t *testing.T) {
		for _, days := range []int{1, 7, 29, 30} {
			got := DefaultRoundSchedule(days)
			if len(got) != days {
				t.Errorf("%d-day schedule = %d rounds, want daily (%d)", days, len(got), days)
				continue
			}
			for i, d := range got {
				if d != i {
					t.Errorf("%d-day schedule round %d on day %d, want %d", days, i, d, i)
					break
				}
			}
		}
	})

	t.Run("zero days is empty", func(t *testing.T) {
		if got := DefaultRoundSchedule(0); len(got) != 0 {
			t.Errorf("0-day schedule = %v, want empty", got)
		}
	})

	t.Run("negative days is empty", func(t *testing.T) {
		if got := DefaultRoundSchedule(-5); len(got) != 0 {
			t.Errorf("negative-day schedule = %v, want empty", got)
		}
	})

	t.Run("31 days has one 3-day round then dailies", func(t *testing.T) {
		got := DefaultRoundSchedule(31)
		if len(got) != 31 {
			t.Fatalf("31-day schedule = %d rounds", len(got))
		}
		if got[0] != 0 || got[1] != 1 {
			t.Errorf("31-day schedule starts %d, %d", got[0], got[1])
		}
	})

	t.Run("every schedule is strictly increasing and in range", func(t *testing.T) {
		for _, days := range []int{0, 1, 2, 29, 30, 31, 33, 62, 93, 365} {
			got := DefaultRoundSchedule(days)
			for i, d := range got {
				if d < 0 || d >= days {
					t.Errorf("days=%d: round day %d out of [0,%d)", days, d, days)
				}
				if i > 0 && d <= got[i-1] {
					t.Errorf("days=%d: schedule not strictly increasing at %d", days, i)
				}
			}
		}
	})
}
