// Package pipeline is the round's stage-graph runtime: a small, typed
// Source → Stage → Sink framework over bounded channels. WhoWas's
// round is inherently a streaming pipeline (§4, Figure 1 — scan →
// fetch → featurize → store), and the core package used to hand-wire
// it from channels and goroutines inline; this package makes the graph
// an explicit object so sharding, instrumentation and deadline
// handling live in one layer.
//
// A Graph is a set of nodes connected by Streams (bounded channels
// that exert backpressure). Each node runs its function once —
// internally fanning out over a worker pool for stages and sinks — and
// the graph as a whole has errgroup semantics: the first hard error
// cancels every other node, so a failing sink can never strand an
// upstream producer on a full channel (the goroutine-leak class of bug
// the old hand-wired round had).
//
// Deadline degradation is built in: a node whose error is
// context.DeadlineExceeded while the campaign's outer context is still
// live reports Partial completion instead of failing the graph — the
// round finalizes with whatever was collected, which is the §6
// campaign's graceful-degradation contract.
//
// Observability hooks mirror the rest of the platform: an optional
// metrics.Registry receives a pipeline.<name> stage timer plus item
// counter per node, and an optional trace.Tracer opens one span per
// node (child of Options.Parent) whose context is handed to the node
// function, so sampled per-IP spans parent correctly under it.
package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// Options configures a Graph's hooks; the zero value runs bare.
type Options struct {
	// Metrics, when non-nil, receives a "pipeline.<node name>" stage
	// timer (one pass per node run) and a "pipeline.<node name>.items"
	// counter per node.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records one span per node, named after the
	// node, as a child of Parent. The span rides the context handed to
	// the node function, so spans the node starts nest under it.
	Tracer *trace.Tracer
	// Parent is the span the node spans are children of (typically the
	// round's root span). Nil starts them parentless.
	Parent *trace.Span
	// Outer is the long-lived context surrounding the graph's run
	// context (the campaign context surrounding the round deadline).
	// It is the degradation blame test: a node error of
	// context.DeadlineExceeded while Outer is still live means the run
	// context's deadline fired, and the node reports Partial instead
	// of failing the graph. Nil treats the outer context as live.
	Outer context.Context
}

// Graph is one assembled pipeline run. Build it with New, add nodes
// with Source/SourceChan/Stage/Sink, then call Run exactly once.
type Graph struct {
	opts  Options
	nodes []*node

	cancel context.CancelFunc

	failMu  sync.Mutex
	failErr error
}

// New builds an empty graph.
func New(opts Options) *Graph {
	return &Graph{opts: opts}
}

// node is one vertex of the graph.
type node struct {
	name  string
	attrs []trace.Attr
	items atomic.Int64
	run   func(ctx context.Context) error
	res   StageResult
}

// StageResult reports one node's outcome after Run.
type StageResult struct {
	Name  string
	Start time.Time
	End   time.Time
	// Items counts emitted items for sources and stages, and consumed
	// items for sinks. Channel-bridged sources (SourceChan) write to
	// their channel directly, so their count stays 0.
	Items int64
	// Partial marks a node that hit the run context's deadline while
	// the outer context was live: it completed with partial output and
	// the graph degraded instead of failing.
	Partial bool
	// Err is the node's hard error, nil for clean, partial, and
	// cancelled-as-a-consequence nodes.
	Err error
}

// Result is the whole graph's outcome.
type Result struct {
	// Stages holds one result per node, in the order the nodes were
	// added.
	Stages []StageResult
	// Degraded reports that at least one node completed Partial (and
	// none failed hard): the run deadline fired under a live outer
	// context.
	Degraded bool
	// Start and End bound the graph's execution.
	Start, End time.Time
}

// Stream is a bounded queue connecting two nodes. The producing node
// closes it when done; consumers block on it, so a full stream exerts
// backpressure on the producer.
type Stream[T any] struct {
	ch chan T
}

// NewStream builds a stream with the given buffer capacity (minimum 1).
func NewStream[T any](capacity int) *Stream[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Stream[T]{ch: make(chan T, capacity)}
}

func (g *Graph) add(name string, attrs []trace.Attr) *node {
	n := &node{name: name, attrs: attrs}
	g.nodes = append(g.nodes, n)
	return n
}

// fail records the graph's first hard error and cancels every node.
func (g *Graph) fail(err error) {
	g.failMu.Lock()
	defer g.failMu.Unlock()
	if g.failErr == nil {
		g.failErr = err
		g.cancel()
	}
}

func (g *Graph) failed() error {
	g.failMu.Lock()
	defer g.failMu.Unlock()
	return g.failErr
}

// outerLive reports whether the campaign-level context is still live —
// the blame test distinguishing a round deadline (degrade) from an
// outer cancellation (fail).
func (g *Graph) outerLive() bool {
	return g.opts.Outer == nil || g.opts.Outer.Err() == nil
}

// emitFn builds the send-or-cancel closure handed to node functions.
func emitFn[T any](ctx context.Context, n *node, out *Stream[T]) func(T) error {
	return func(v T) error {
		select {
		case out.ch <- v:
			n.items.Add(1)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Source adds a producer node: fn emits items until done. The output
// stream is closed when fn returns, whatever the outcome, so
// downstream nodes always terminate. Constructors are package
// functions rather than methods because methods cannot introduce type
// parameters.
func Source[T any](g *Graph, name string, out *Stream[T], fn func(ctx context.Context, emit func(T) error) error, attrs ...trace.Attr) {
	n := g.add(name, attrs)
	n.run = func(ctx context.Context) error {
		defer close(out.ch)
		return fn(ctx, emitFn(ctx, n, out))
	}
}

// SourceChan adds a producer node for code that needs the raw channel
// (the scanner streams into a chan it does not own). fn must not close
// out's channel; the node does when fn returns. Item counting is
// skipped — the node cannot see individual sends.
func SourceChan[T any](g *Graph, name string, out *Stream[T], fn func(ctx context.Context, out chan<- T) error, attrs ...trace.Attr) {
	n := g.add(name, attrs)
	n.run = func(ctx context.Context) error {
		defer close(out.ch)
		return fn(ctx, out.ch)
	}
}

// Stage adds a transform node: a pool of workers each consuming from
// in and emitting to out via fn. The output stream closes when every
// worker is done. A worker's hard error fails the whole graph
// immediately (the other workers see the cancellation); context errors
// propagate for Run to classify.
func Stage[In, Out any](g *Graph, name string, workers int, in *Stream[In], out *Stream[Out], fn func(ctx context.Context, item In, emit func(Out) error) error, attrs ...trace.Attr) {
	n := g.add(name, attrs)
	n.run = func(ctx context.Context) error {
		defer close(out.ch)
		return g.pool(ctx, n, workers, func(ctx context.Context) error {
			emit := emitFn(ctx, n, out)
			return consume(ctx, in, func(item In) error { return fn(ctx, item, emit) })
		})
	}
}

// Sink adds a terminal node: a pool of workers consuming from in.
func Sink[T any](g *Graph, name string, workers int, in *Stream[T], fn func(ctx context.Context, item T) error, attrs ...trace.Attr) {
	n := g.add(name, attrs)
	n.run = func(ctx context.Context) error {
		return g.pool(ctx, n, workers, func(ctx context.Context) error {
			return consume(ctx, in, func(item T) error {
				if err := fn(ctx, item); err != nil {
					return err
				}
				n.items.Add(1)
				return nil
			})
		})
	}
}

// consume drains in, applying fn per item, until the stream closes or
// the context ends.
func consume[T any](ctx context.Context, in *Stream[T], fn func(T) error) error {
	for {
		select {
		case item, ok := <-in.ch:
			if !ok {
				return nil
			}
			if err := fn(item); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// pool runs worker copies of body. A hard (non-context) error from any
// worker fails the graph at once, so sibling nodes unblock without
// waiting for this pool to drain; the pool itself still waits for all
// its workers before returning the most informative error.
func (g *Graph) pool(ctx context.Context, n *node, workers int, body func(ctx context.Context) error) error {
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := body(ctx)
			if err != nil && !isCtxErr(err) {
				g.fail(err)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !isCtxErr(err) {
			return err
		}
		if ctxErr == nil || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
		}
	}
	return ctxErr
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes every node concurrently and blocks until all finish.
// It returns a non-nil error only for hard failures (a node error that
// is neither a deadline degradation nor a consequence of another
// node's failure); deadline degradations surface as Result.Degraded
// with per-node Partial flags.
func (g *Graph) Run(ctx context.Context) (Result, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	g.cancel = cancel

	res := Result{Start: time.Now()}
	var wg sync.WaitGroup
	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			g.runNode(runCtx, n)
		}(n)
	}
	wg.Wait()
	res.End = time.Now()

	failErr := g.failed()
	for _, n := range g.nodes {
		if n.res.Partial && failErr == nil {
			res.Degraded = true
		}
		res.Stages = append(res.Stages, n.res)
	}
	if failErr != nil {
		return res, failErr
	}
	// No node failed hard; if the outer context died (campaign
	// cancellation rather than a round deadline) the graph still
	// failed, even when every node happened to exit cleanly first.
	if o := g.opts.Outer; o != nil && o.Err() != nil {
		return res, o.Err()
	}
	// A direct cancellation of the run context (no outer configured,
	// or an outer that is somehow still live) is likewise a failure;
	// only its deadline expiring is a degradation.
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return res, err
	}
	return res, nil
}

// runNode executes one node with its span, stage timer, and outcome
// classification.
func (g *Graph) runNode(ctx context.Context, n *node) {
	sp := g.opts.Tracer.Start(n.name, g.opts.Parent, n.attrs...)
	if sp != nil {
		ctx = trace.NewContext(ctx, sp)
	}
	st := g.opts.Metrics.Stage("pipeline." + n.name)
	n.res.Name = n.name
	n.res.Start = time.Now()
	err := n.run(ctx)
	n.res.End = time.Now()
	st.Add(n.res.End.Sub(n.res.Start))
	n.res.Items = n.items.Load()
	if n.res.Items > 0 {
		g.opts.Metrics.Counter("pipeline." + n.name + ".items").Add(n.res.Items)
		sp.SetAttr(trace.Int64("items", n.res.Items))
	}
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) && g.outerLive():
		// The run deadline fired under a live campaign: partial
		// completion, not failure. The span keeps an "error" mark for
		// journal analysis (a timing attr, excluded from determinism
		// comparisons).
		n.res.Partial = true
		sp.SetAttr(trace.String("error", "deadline"))
	case errors.Is(err, context.Canceled):
		// A consequence of another node's failure, of an outer
		// cancellation, or of a caller-cancelled run context — all
		// classified by Run, not blamed on this node.
		sp.SetAttr(trace.String("error", "canceled"))
	default:
		n.res.Err = err
		sp.SetAttr(trace.String("error", "failed"))
		g.fail(err)
	}
	sp.End()
}
