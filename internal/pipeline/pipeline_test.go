package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"whowas/internal/metrics"
	"whowas/internal/trace"
)

// TestLinearGraph runs the canonical source → stage → sink shape and
// checks items, ordering-independent delivery, and per-node results.
func TestLinearGraph(t *testing.T) {
	reg := metrics.NewRegistry()
	g := New(Options{Metrics: reg})
	nums := NewStream[int](4)
	doubled := NewStream[int](4)
	var sum atomic.Int64

	Source(g, "nums", nums, func(ctx context.Context, emit func(int) error) error {
		for i := 1; i <= 100; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	})
	Stage(g, "double", 4, nums, doubled, func(ctx context.Context, n int, emit func(int) error) error {
		return emit(2 * n)
	})
	Sink(g, "sum", 2, doubled, func(ctx context.Context, n int) error {
		sum.Add(int64(n))
		return nil
	})

	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Load(), int64(100*101); got != want { // 2 * sum(1..100)
		t.Errorf("sum = %d, want %d", got, want)
	}
	if res.Degraded {
		t.Error("clean run reported degraded")
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stage results = %d, want 3", len(res.Stages))
	}
	byName := map[string]StageResult{}
	for _, s := range res.Stages {
		if s.Err != nil || s.Partial {
			t.Errorf("node %s: err=%v partial=%v", s.Name, s.Err, s.Partial)
		}
		if s.End.Before(s.Start) {
			t.Errorf("node %s: end before start", s.Name)
		}
		byName[s.Name] = s
	}
	for name, want := range map[string]int64{"nums": 100, "double": 100, "sum": 100} {
		if got := byName[name].Items; got != want {
			t.Errorf("node %s items = %d, want %d", name, got, want)
		}
	}
	snap := reg.Snapshot()
	if snap.Stages["pipeline.double"].Passes != 1 {
		t.Errorf("pipeline.double stage = %+v", snap.Stages["pipeline.double"])
	}
	if snap.Counters["pipeline.sum.items"] != 100 {
		t.Errorf("pipeline.sum.items = %d", snap.Counters["pipeline.sum.items"])
	}
}

// TestSinkErrorUnblocksProducers is the regression for the round's old
// goroutine leak: a sink that fails mid-stream must cancel the graph
// so producers blocked on full streams return instead of leaking. The
// streams here hold 1 item each and the source has far more to emit,
// so without the cancellation Run would never return.
func TestSinkErrorUnblocksProducers(t *testing.T) {
	g := New(Options{})
	in := NewStream[int](1)
	out := NewStream[int](1)
	boom := errors.New("store full")
	sourceDone := make(chan error, 1)

	Source(g, "src", in, func(ctx context.Context, emit func(int) error) error {
		var err error
		for i := 0; i < 10000 && err == nil; i++ {
			err = emit(i)
		}
		sourceDone <- err
		return err
	})
	Stage(g, "mid", 2, in, out, func(ctx context.Context, n int, emit func(int) error) error {
		return emit(n)
	})
	Sink(g, "failing", 1, out, func(ctx context.Context, n int) error {
		return boom
	})

	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		defer close(done)
		res, err = g.Run(context.Background())
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("graph wedged after sink error (producer leak)")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if res.Degraded {
		t.Error("hard failure reported as degradation")
	}
	if srcErr := <-sourceDone; !errors.Is(srcErr, context.Canceled) {
		t.Errorf("source exited with %v, want context.Canceled", srcErr)
	}
	for _, s := range res.Stages {
		if s.Name == "failing" && !errors.Is(s.Err, boom) {
			t.Errorf("failing node err = %v", s.Err)
		}
	}
}

// TestDeadlineDegrades: a run-context deadline under a live outer
// context is partial completion, not failure.
func TestDeadlineDegrades(t *testing.T) {
	outer := context.Background()
	runCtx, cancel := context.WithTimeout(outer, 50*time.Millisecond)
	defer cancel()

	g := New(Options{Outer: outer})
	s := NewStream[int](1)
	Source(g, "slow", s, func(ctx context.Context, emit func(int) error) error {
		<-ctx.Done() // a scan that outlives the round deadline
		return ctx.Err()
	})
	Sink(g, "drain", 1, s, func(ctx context.Context, n int) error { return nil })

	res, err := g.Run(runCtx)
	if err != nil {
		t.Fatalf("deadline treated as failure: %v", err)
	}
	if !res.Degraded {
		t.Error("deadline did not degrade the graph")
	}
	partial := false
	for _, st := range res.Stages {
		if st.Name == "slow" {
			partial = st.Partial
		}
		if st.Err != nil {
			t.Errorf("node %s hard error %v", st.Name, st.Err)
		}
	}
	if !partial {
		t.Error("deadline-hit node not marked Partial")
	}
}

// TestOuterCancelFails: the same shape, but the *outer* context dies —
// that is a campaign cancellation and must fail the graph.
func TestOuterCancelFails(t *testing.T) {
	outer, cancelOuter := context.WithCancel(context.Background())
	g := New(Options{Outer: outer})
	s := NewStream[int](1)
	Source(g, "slow", s, func(ctx context.Context, emit func(int) error) error {
		cancelOuter()
		<-ctx.Done()
		return ctx.Err()
	})
	Sink(g, "drain", 1, s, func(ctx context.Context, n int) error { return nil })

	res, err := g.Run(outer)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if res.Degraded {
		t.Error("outer cancellation reported as degradation")
	}
}

// TestRunCtxCancelFails: cancelling the run context directly (no outer
// configured) fails the graph rather than degrading it.
func TestRunCtxCancelFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(Options{})
	s := NewStream[int](1)
	Source(g, "src", s, func(ctx context.Context, emit func(int) error) error {
		cancel()
		<-ctx.Done()
		return ctx.Err()
	})
	Sink(g, "drain", 1, s, func(ctx context.Context, n int) error { return nil })
	if _, err := g.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestSourceChanClosesStream: the channel-bridged source still closes
// its stream so downstream terminates.
func TestSourceChanClosesStream(t *testing.T) {
	g := New(Options{})
	s := NewStream[string](2)
	var seen atomic.Int64
	SourceChan(g, "chan-src", s, func(ctx context.Context, out chan<- string) error {
		out <- "a"
		out <- "b"
		return nil
	})
	Sink(g, "count", 3, s, func(ctx context.Context, v string) error {
		seen.Add(1)
		return nil
	})
	if _, err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 2 {
		t.Errorf("sink saw %d items, want 2", seen.Load())
	}
}

// TestNodeSpans: each node records one span, named after it, parented
// to Options.Parent, and the node fn's context carries the span.
func TestNodeSpans(t *testing.T) {
	tr := trace.New(trace.Config{})
	root := tr.Start("round", nil, trace.Int("round", 0))
	g := New(Options{Tracer: tr, Parent: root})
	s := NewStream[int](1)
	sawSpan := make(chan bool, 1)
	Source(g, "scan", s, func(ctx context.Context, emit func(int) error) error {
		sawSpan <- trace.FromContext(ctx) != nil
		return emit(1)
	})
	Sink(g, "store", 1, s, func(ctx context.Context, n int) error { return nil })
	if _, err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	root.End()
	if !<-sawSpan {
		t.Error("node fn context carries no span")
	}
	names := map[string]uint64{}
	for _, sp := range tr.Slowest(10) {
		names[sp.Name] = sp.Parent
	}
	for _, want := range []string{"scan", "store"} {
		parent, ok := names[want]
		if !ok {
			t.Errorf("no span recorded for node %q (have %v)", want, names)
			continue
		}
		if parent == 0 {
			t.Errorf("node span %q not parented to the round span", want)
		}
	}
}

// TestManyLanes exercises the region-sharded shape: N independent
// source→stage→sink lanes in one graph, all completing.
func TestManyLanes(t *testing.T) {
	g := New(Options{})
	var total atomic.Int64
	const lanes, perLane = 8, 500
	for l := 0; l < lanes; l++ {
		in := NewStream[int](16)
		out := NewStream[int](16)
		Source(g, fmt.Sprintf("src-%d", l), in, func(ctx context.Context, emit func(int) error) error {
			for i := 0; i < perLane; i++ {
				if err := emit(i); err != nil {
					return err
				}
			}
			return nil
		})
		Stage(g, "xform", 3, in, out, func(ctx context.Context, n int, emit func(int) error) error {
			return emit(n + 1)
		})
		Sink(g, "tally", 2, out, func(ctx context.Context, n int) error {
			total.Add(1)
			return nil
		})
	}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != lanes*perLane {
		t.Errorf("delivered %d items, want %d", total.Load(), lanes*perLane)
	}
	if len(res.Stages) != 3*lanes {
		t.Errorf("stage results = %d, want %d", len(res.Stages), 3*lanes)
	}
}
