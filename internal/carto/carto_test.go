package carto

import (
	"context"
	"testing"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/ratelimit"
	"whowas/internal/store"
)

func testCloud(t testing.TB) *cloudsim.Cloud {
	t.Helper()
	c, err := cloudsim.New(cloudsim.DefaultEC2Config(512, 71))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fastSweep(t testing.TB, cloud *cloudsim.Cloud, cfg Config) *Map {
	t.Helper()
	cfg.Rate = 1e6
	cfg.Clock = ratelimit.NewFakeClock(time.Unix(0, 0))
	resolver := dnssim.NewResolver(cloud, 0)
	m, err := Sweep(context.Background(), resolver, cloud.Ranges(), cloud.RegionOf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSweepAccuracy(t *testing.T) {
	cloud := testCloud(t)
	m := fastSweep(t, cloud, Config{SamplePerPrefix: 64})
	var correct, total int
	seen := map[ipaddr.Addr]bool{}
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		p22 := a.Prefix22().Addr
		if seen[p22] {
			return true
		}
		seen[p22] = true
		total++
		if m.IsVPC(a) == cloud.IsVPC(a) {
			correct++
		}
		return true
	})
	if frac := float64(correct) / float64(total); frac < 0.9 {
		t.Errorf("prefix label accuracy = %.2f (%d/%d)", frac, correct, total)
	}
}

func TestSweepNoFalseVPC(t *testing.T) {
	// A classic prefix must never be labeled VPC: the only way to get
	// a PublicA answer is a genuine VPC instance.
	cloud := testCloud(t)
	m := fastSweep(t, cloud, Config{SamplePerPrefix: 32})
	seen := map[ipaddr.Addr]bool{}
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		p22 := a.Prefix22().Addr
		if seen[p22] {
			return true
		}
		seen[p22] = true
		if m.IsVPC(a) && !cloud.IsVPC(a) {
			t.Errorf("classic prefix %s labeled VPC", a.Prefix22())
		}
		return true
	})
}

func TestCountByRegion(t *testing.T) {
	cloud := testCloud(t)
	m := fastSweep(t, cloud, Config{SamplePerPrefix: 64})
	counts := m.CountByRegion(cloud.RegionOf)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != m.VPCPrefixCount() {
		t.Errorf("region counts sum %d != VPCPrefixCount %d", total, m.VPCPrefixCount())
	}
	if total == 0 {
		t.Error("no VPC prefixes found")
	}
}

func TestApplyLabelsRecords(t *testing.T) {
	cloud := testCloud(t)
	m := fastSweep(t, cloud, Config{SamplePerPrefix: 64})
	st := store.New("ec2")
	_, _ = st.BeginRound(0)
	// One record per distinct /22.
	seen := map[ipaddr.Addr]bool{}
	cloud.Ranges().Each(func(a ipaddr.Addr) bool {
		p22 := a.Prefix22().Addr
		if seen[p22] {
			return true
		}
		seen[p22] = true
		_ = st.Put(&store.Record{IP: a, OpenPorts: store.PortHTTP})
		return true
	})
	_ = st.EndRound()
	if err := m.Apply(st); err != nil {
		t.Fatal(err)
	}
	var vpcRecs int
	st.Round(0).Each(func(rec *store.Record) bool {
		if rec.VPC != m.IsVPC(rec.IP) {
			t.Errorf("record %s label %v != map %v", rec.IP, rec.VPC, m.IsVPC(rec.IP))
		}
		if rec.VPC {
			vpcRecs++
		}
		return true
	})
	if vpcRecs == 0 {
		t.Error("no VPC-labeled records")
	}
}

func TestSweepCancellation(t *testing.T) {
	cloud := testCloud(t)
	resolver := dnssim.NewResolver(cloud, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, resolver, cloud.Ranges(), cloud.RegionOf, Config{Rate: 1e6, Clock: ratelimit.NewFakeClock(time.Unix(0, 0))})
	if err == nil {
		t.Error("cancelled sweep succeeded")
	}
}

func TestSweepRateLimited(t *testing.T) {
	cloud := testCloud(t)
	clock := ratelimit.NewFakeClock(time.Unix(0, 0))
	resolver := dnssim.NewResolver(cloud, 0)
	start := clock.Now()
	_, err := Sweep(context.Background(), resolver, cloud.Ranges(), cloud.RegionOf,
		Config{SamplePerPrefix: 8, Rate: 100, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start).Seconds()
	rate := float64(resolver.Queries) / elapsed
	if rate > 110 {
		t.Errorf("effective DNS query rate %.1f qps exceeds 100", rate)
	}
}

func TestNilMap(t *testing.T) {
	var m *Map
	if m.IsVPC(ipaddr.MustParseAddr("1.2.3.4")) {
		t.Error("nil map claims VPC")
	}
}
