// Package carto implements WhoWas's cloud cartography (§5): a one-time
// DNS sweep that labels each public /22 prefix of an EC2-like cloud as
// VPC or classic networking. For every sampled IP the sweep forms the
// EC2-style public DNS name and interprets the internal resolver's
// answer: an SOA means no active instance (classic by the paper's
// rule), a public-IP answer means VPC, and a private-IP answer means
// classic. A /22 becomes VPC when any sampled IP in it answers with a
// public address.
//
// The resulting map is joined onto round records so every analysis can
// split by networking type (Figures 13 and 14, Table 2).
package carto

import (
	"context"
	"fmt"
	"time"

	"whowas/internal/dnssim"
	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/ratelimit"
	"whowas/internal/store"
	"whowas/internal/trace"
)

// Map labels /22 prefixes as VPC or classic.
type Map struct {
	vpc map[ipaddr.Addr]bool // keyed by /22 network address
}

// IsVPC reports whether an address lies in a VPC-labeled /22.
func (m *Map) IsVPC(a ipaddr.Addr) bool {
	return m != nil && m.vpc[a.Prefix22().Addr]
}

// VPCPrefixCount returns the number of VPC-labeled /22s.
func (m *Map) VPCPrefixCount() int {
	n := 0
	for _, v := range m.vpc {
		if v {
			n++
		}
	}
	return n
}

// CountByRegion tallies VPC /22 prefixes per region (Table 2's left
// column). regionOf maps a prefix's network address to its region.
func (m *Map) CountByRegion(regionOf func(ipaddr.Addr) string) map[string]int {
	out := map[string]int{}
	for p, v := range m.vpc {
		if v {
			out[regionOf(p)]++
		}
	}
	return out
}

// Apply writes the VPC label into every record of every round,
// persisting through the store's update path so the join survives a
// lazy storage backend.
func (m *Map) Apply(st *store.Store) error {
	return st.UpdateRounds(func(round *store.Round) bool {
		changed := false
		round.Each(func(rec *store.Record) bool {
			if vpc := m.IsVPC(rec.IP); rec.VPC != vpc {
				rec.VPC = vpc
				changed = true
			}
			return true
		})
		return changed
	})
}

// Config tunes the sweep.
type Config struct {
	// SamplePerPrefix is how many addresses of each /22 are queried
	// (default 48; one public-IP answer suffices to label the prefix,
	// and at default utilization a /22 holds ~240 bound IPs).
	SamplePerPrefix int
	// Rate caps DNS queries per second ("a suitably low rate limit",
	// §5; default 100).
	Rate float64
	// Clock feeds the rate limiter (nil = wall clock).
	Clock ratelimit.Clock
	// Metrics, when non-nil, receives the sweep instrumentation:
	// carto.* counters and the carto.sweep stage timing.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records a "carto" span covering the sweep
	// with prefix and query counts as attributes.
	Tracer *trace.Tracer
}

// WithDefaults returns the config with zero fields resolved to the
// paper's defaults (48 samples per /22, 100 qps). Sweep applies it
// internally; it is exported so callers and tests can observe the
// resolved values instead of re-stating them.
func (c Config) WithDefaults() Config {
	out := c
	if out.SamplePerPrefix <= 0 {
		out.SamplePerPrefix = 48
	}
	if out.Rate <= 0 {
		out.Rate = 100
	}
	return out
}

// Resolver is the DNS surface the sweep needs. *dnssim.Resolver
// satisfies it directly; cloudapi resolvers put the same lookups
// behind a wire.
type Resolver interface {
	LookupPublicName(ctx context.Context, name string) (dnssim.Response, error)
}

// Sweep performs the cartography measurement over every /22 in ranges,
// querying through the resolver.
func Sweep(ctx context.Context, resolver Resolver, ranges *ipaddr.RangeList, regionOf func(ipaddr.Addr) string, cfg Config) (*Map, error) {
	cfg = cfg.WithDefaults()
	reg := cfg.Metrics
	sp := cfg.Tracer.Start("carto", nil)
	start := time.Now()
	queries := reg.Counter("carto.dns_queries")
	limiter, err := ratelimit.NewWithClock(cfg.Rate, 10, cfg.Clock)
	if err != nil {
		sp.SetAttr(trace.String("error", "config"))
		sp.End()
		return nil, fmt.Errorf("carto: %w", err)
	}
	m := &Map{vpc: make(map[ipaddr.Addr]bool)}
	for _, prefix := range ranges.Prefixes() {
		first := prefix.First() &^ 0x3ff
		last := prefix.Last() &^ 0x3ff
		for p22 := first; ; p22 += 1024 {
			if _, seen := m.vpc[p22]; !seen {
				vpc, err := sweepPrefix(ctx, resolver, limiter, queries, p22, regionOf, cfg.SamplePerPrefix)
				if err != nil {
					sp.SetAttr(trace.String("error", "sweep"))
					sp.End()
					return nil, err
				}
				m.vpc[p22] = vpc
			}
			if p22 == last {
				break
			}
		}
	}
	reg.Stage("carto.sweep").Add(time.Since(start))
	reg.Counter("carto.prefixes").Add(int64(len(m.vpc)))
	reg.Counter("carto.vpc_prefixes").Add(int64(m.VPCPrefixCount()))
	sp.SetAttr(
		trace.Int("prefixes", len(m.vpc)),
		trace.Int("vpc_prefixes", m.VPCPrefixCount()),
	)
	sp.End()
	return m, nil
}

// sweepPrefix samples addresses of one /22 and reports whether any
// resolves as VPC. Samples spread evenly across the block so clustered
// allocations are still hit.
func sweepPrefix(ctx context.Context, resolver Resolver, limiter *ratelimit.Limiter, queries *metrics.Counter, p22 ipaddr.Addr, regionOf func(ipaddr.Addr) string, samples int) (bool, error) {
	if samples > 1024 {
		samples = 1024
	}
	step := 1024 / samples
	if step < 1 {
		step = 1
	}
	region := regionOf(p22)
	for i := 0; i < samples; i++ {
		if err := limiter.Wait(ctx); err != nil {
			return false, err
		}
		ip := p22 + ipaddr.Addr(i*step)
		queries.Inc()
		resp, err := resolver.LookupPublicName(ctx, dnssim.PublicName(ip, region))
		if err != nil {
			return false, fmt.Errorf("carto: %w", err)
		}
		if resp.Type == dnssim.PublicA {
			return true, nil
		}
	}
	return false, nil
}
