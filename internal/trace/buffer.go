// An in-memory journal sink for processes whose spans belong to
// someone else's journal: a distributed campaign's worker plugs a
// Buffer into Config.Journal, and every completed span accumulates as
// a parsed SpanSnapshot until the worker drains the buffer into its
// next /coord/submit. The coordinator then renumbers the drained spans
// into its own tracer (Tracer.Record), producing one merged journal
// for the whole fleet.
package trace

import (
	"bytes"
	"encoding/json"
	"sync"
)

// Buffer is a bounded, in-memory Config.Journal sink. It parses each
// JSONL line back into a SpanSnapshot and keeps the most recent Cap of
// them (drop-oldest), so a worker that cannot reach its coordinator
// for a while loses the oldest spans, not the newest. Safe for
// concurrent use; the zero value is unusable — call NewBuffer.
type Buffer struct {
	mu      sync.Mutex
	max     int
	spans   []SpanSnapshot
	next    int // ring cursor once len(spans) == max
	dropped int64
	partial []byte // incomplete trailing line across Write calls
}

// NewBuffer builds a buffer holding up to max spans (default 4096).
func NewBuffer(max int) *Buffer {
	if max <= 0 {
		max = 4096
	}
	return &Buffer{max: max}
}

// Write accepts journal bytes — one JSON line per completed span. The
// sink never fails the tracer: malformed lines count as dropped, and
// an incomplete trailing line is held until the rest arrives.
func (b *Buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data := p
	if len(b.partial) > 0 {
		data = append(b.partial, p...)
		b.partial = nil
	}
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		line := bytes.TrimSpace(data[:i])
		data = data[i+1:]
		if len(line) == 0 {
			continue
		}
		var snap SpanSnapshot
		if err := json.Unmarshal(line, &snap); err != nil {
			b.dropped++
			continue
		}
		b.addLocked(snap)
	}
	if len(data) > 0 {
		b.partial = append([]byte(nil), data...)
	}
	return len(p), nil
}

// addLocked files one span into the ring, dropping the oldest at
// capacity; callers hold b.mu.
func (b *Buffer) addLocked(snap SpanSnapshot) {
	if len(b.spans) < b.max {
		b.spans = append(b.spans, snap)
		return
	}
	b.spans[b.next] = snap
	b.next = (b.next + 1) % len(b.spans)
	b.dropped++
}

// Drain returns the buffered spans in arrival order and empties the
// buffer. A nil buffer drains nothing.
func (b *Buffer) Drain() []SpanSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []SpanSnapshot
	if b.next > 0 {
		out = make([]SpanSnapshot, 0, len(b.spans))
		out = append(out, b.spans[b.next:]...)
		out = append(out, b.spans[:b.next]...)
	} else {
		out = b.spans
	}
	b.spans, b.next = nil, 0
	return out
}

// Len reports how many spans are currently buffered.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spans)
}

// Dropped reports how many spans were lost to capacity or parse
// failures over the buffer's lifetime.
func (b *Buffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
