// Post-mortem reporting over journaled spans: the per-round stage
// breakdown behind `whowas-query trace` and the chaos suite's
// journal-attribution assertions.
package trace

import (
	"sort"
	"strconv"
	"time"
)

// RoundBreakdown summarizes one round's subtree of a journal.
type RoundBreakdown struct {
	Round    int
	Day      int
	Degraded bool
	// Total is the round root span's duration.
	Total time.Duration
	// Stages maps each direct stage child (scan, fetch, featurize,
	// finalize, ...) to its duration; repeated names accumulate.
	Stages map[string]time.Duration
	// Spans counts every span attributed to the round (the subtree
	// plus round-tagged orphans like store.finalize).
	Spans int
	// FaultInjected counts the round's spans carrying any fault.*
	// attribute.
	FaultInjected int
	// Slowest holds the round's spans sorted worst-latency first
	// (root and stage spans excluded — they dominate trivially).
	Slowest []SpanSnapshot
}

// stageNames are the per-round stage children whose durations feed
// RoundBreakdown.Stages and which Slowest excludes.
var stageNames = map[string]bool{
	"scan": true, "fetch": true, "featurize": true,
	"finalize": true, "store.finalize": true,
}

// BreakdownRounds reconstructs per-round stage latencies from a
// journal's spans: one breakdown per "round" root span, ascending by
// round index. Spans join a round either through the parent chain or,
// for parentless spans (store.finalize), through a matching "round"
// attribute.
func BreakdownRounds(spans []SpanSnapshot) []RoundBreakdown {
	byID := make(map[uint64]SpanSnapshot, len(spans))
	children := make(map[uint64][]SpanSnapshot)
	for _, s := range spans {
		byID[s.ID] = s
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	// Resolve each span to its root ancestor once (memoized walk).
	roots := make(map[uint64]uint64, len(spans))
	var rootOf func(id uint64) uint64
	rootOf = func(id uint64) uint64 {
		if r, ok := roots[id]; ok {
			return r
		}
		s, ok := byID[id]
		if !ok {
			return 0
		}
		r := id
		if s.Parent != 0 {
			r = rootOf(s.Parent)
		}
		roots[id] = r
		return r
	}

	// Index round roots by span id and by round-attr value (the join
	// key for parentless round-tagged spans like store.finalize).
	builds := make(map[uint64]*RoundBreakdown)
	byRoundAttr := make(map[string]*RoundBreakdown)
	var order []uint64
	for _, s := range spans {
		if s.Name != "round" {
			continue
		}
		b := &RoundBreakdown{
			Round:    atoiAttr(s, "round"),
			Day:      atoiAttr(s, "day"),
			Degraded: s.Attr("degraded") == "true",
			Total:    s.Duration(),
			Stages:   make(map[string]time.Duration),
		}
		for _, c := range children[s.ID] {
			b.Stages[c.Name] += c.Duration()
		}
		builds[s.ID] = b
		byRoundAttr[s.Attr("round")] = b
		order = append(order, s.ID)
	}
	for _, s := range spans {
		if s.Name == "round" {
			continue
		}
		b := builds[rootOf(s.ID)]
		if b == nil && s.Parent == 0 && s.Attrs != nil {
			if rb, ok := byRoundAttr[s.Attr("round")]; ok && s.Attr("round") != "" {
				b = rb
				b.Stages[s.Name] += s.Duration()
			}
		}
		if b == nil {
			continue
		}
		b.Spans++
		if s.FaultInjected() {
			b.FaultInjected++
		}
		if !stageNames[s.Name] {
			b.Slowest = append(b.Slowest, s)
		}
	}
	out := make([]RoundBreakdown, 0, len(order))
	for _, id := range order {
		b := builds[id]
		sort.Slice(b.Slowest, func(i, j int) bool {
			if b.Slowest[i].DurNS != b.Slowest[j].DurNS {
				return b.Slowest[i].DurNS > b.Slowest[j].DurNS
			}
			return b.Slowest[i].ID < b.Slowest[j].ID
		})
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

func atoiAttr(s SpanSnapshot, key string) int {
	n, _ := strconv.Atoi(s.Attr(key))
	return n
}
